(* Pin `bosec --version`: one line, "<package>+<git>", with the package
   half matching the dune-project version. The git half varies by
   checkout (describe output or "unknown"), so only require it to be
   non-empty. *)
let () =
  let path = Sys.argv.(1) in
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> "" in
  close_in ic;
  let prefix = "0.5.0+" in
  let n = String.length prefix in
  let ok = String.length line > n && String.sub line 0 n = prefix in
  if not ok then begin
    Printf.eprintf "check_version: expected \"%s<git>\", got %S\n" prefix line;
    exit 1
  end
