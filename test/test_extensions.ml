(* Tests for the extension features: Clements decomposition, threshold
   detection, generic coupling graphs, the MZI-2 realization, Gaussian
   marginals, and the point-process application. *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
module Givens = Bose_linalg.Givens
open Bose_hardware
open Bose_decomp
open Bose_gbs
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

let haar seed n = Unitary.haar_random (Rng.create seed) n

(* ------------------------------------------------------------- Clements *)

let test_clements_roundtrip () =
  List.iter
    (fun n ->
       let u = haar n n in
       let c = Clements.decompose u in
       Alcotest.(check int) "rotation count" (n * (n - 1) / 2) (Clements.rotation_count c);
       Alcotest.(check bool)
         (Printf.sprintf "reconstruct n=%d" n)
         true
         (Mat.equal ~tol:1e-9 (Clements.reconstruct c) u))
    [ 2; 3; 5; 8; 16 ]

let test_clements_adjacent_pairs () =
  let u = haar 4 8 in
  let c = Clements.decompose u in
  List.iter
    (fun { Givens.m; n; _ } -> Alcotest.(check int) "adjacent" 1 (abs (m - n)))
    (c.Clements.left @ c.Clements.right)

let test_clements_lambda () =
  let u = haar 5 10 in
  let c = Clements.decompose u in
  Array.iter (fun lam -> check_close "unit modulus" 1e-9 1. (Cx.abs lam)) c.Clements.lambda

let test_clements_circuit_equivalence () =
  let n = 5 in
  let u = haar 6 n in
  let circuit = Clements.to_circuit (Clements.decompose u) in
  let s1 = Gaussian.vacuum n and s2 = Gaussian.vacuum n in
  for i = 0 to n - 1 do
    Gaussian.squeeze s1 i (Cx.re 0.3);
    Gaussian.squeeze s2 i (Cx.re 0.3)
  done;
  Gaussian.interferometer s1 u;
  Gaussian.run_circuit s2 circuit;
  let v1 = Gaussian.cov s1 and v2 = Gaussian.cov s2 in
  let worst = ref 0. in
  for i = 0 to (2 * n) - 1 do
    for j = 0 to (2 * n) - 1 do
      worst := Float.max !worst (Float.abs (v1.(i).(j) -. v2.(i).(j)))
    done
  done;
  Alcotest.(check bool) "clements circuit implements U" true (!worst < 1e-9)

let test_clements_vs_reck_angles () =
  (* Both baselines produce the same number of rotations on the same
     unitary; their angle multisets differ but both reconstruct. *)
  let u = haar 7 12 in
  let reck = Eliminate.decompose_baseline u in
  let clem = Clements.decompose u in
  Alcotest.(check int) "same count" (Plan.rotation_count reck) (Clements.rotation_count clem)

(* ------------------------------------------------------------ Threshold *)

let test_threshold_coherent () =
  let s = Gaussian.vacuum 1 in
  Gaussian.displace s 0 (Cx.re 0.8);
  check_close "click prob" 1e-9 (1. -. exp (-0.64)) (Threshold.click_probability s [| true |]);
  check_close "silent prob" 1e-9 (exp (-0.64)) (Threshold.click_probability s [| false |])

let test_threshold_squeezed () =
  let s = Gaussian.vacuum 1 in
  Gaussian.squeeze s 0 (Cx.re 0.7);
  check_close "click prob" 1e-9 (1. -. (1. /. cosh 0.7))
    (Threshold.click_probability s [| true |])

let test_threshold_tms_correlated () =
  let s = Gaussian.vacuum 2 in
  Gaussian.squeeze s 0 (Cx.re 0.5);
  Gaussian.squeeze s 1 (Cx.re (-0.5));
  Gaussian.beamsplitter s 0 1 (Float.pi /. 4.) 0.;
  check_close "P(10) = 0" 1e-9 0. (Threshold.click_probability s [| true; false |]);
  check_close "P(01) = 0" 1e-9 0. (Threshold.click_probability s [| false; true |]);
  Alcotest.(check bool) "P(11) > 0" true (Threshold.click_probability s [| true; true |] > 0.)

let test_threshold_distribution_normalized () =
  let rng = Rng.create 12 in
  let s = Gaussian.vacuum 4 in
  Gaussian.squeeze s 0 (Cx.re 0.5);
  Gaussian.squeeze s 1 (Cx.re 0.4);
  Gaussian.displace s 2 (Cx.make 0.2 0.3);
  Gaussian.interferometer s (Unitary.haar_random rng 4);
  Gaussian.loss s 0 0.1;
  let d = Threshold.click_distribution s in
  Alcotest.(check int) "16 patterns" 16 (List.length d);
  check_close "sums to 1" 1e-9 1. (List.fold_left (fun a (_, p) -> a +. p) 0. d);
  List.iter (fun (_, p) -> Alcotest.(check bool) "nonneg" true (p >= 0.)) d

let test_threshold_matches_fock_aggregation () =
  let rng = Rng.create 13 in
  let s = Gaussian.vacuum 3 in
  Gaussian.squeeze s 0 (Cx.re 0.5);
  Gaussian.squeeze s 1 (Cx.re 0.4);
  Gaussian.interferometer s (Unitary.haar_random rng 3);
  let fock = Fock.pattern_distribution ~max_photons:10 s in
  let click_of pattern = List.map (fun c -> if c > 0 then 1 else 0) pattern in
  List.iter
    (fun target ->
       let aggregated =
         List.fold_left
           (fun acc (pattern, p) -> if click_of pattern = target then acc +. p else acc)
           0. fock
       in
       let exact =
         Threshold.click_probability s (Array.of_list (List.map (fun b -> b = 1) target))
       in
       check_close
         (Printf.sprintf "pattern %s" (String.concat "" (List.map string_of_int target)))
         1e-4 aggregated exact)
    [ [ 0; 0; 0 ]; [ 1; 0; 0 ]; [ 1; 1; 0 ]; [ 1; 1; 1 ] ]

let test_expected_clicks_bounds () =
  let s = Gaussian.vacuum 3 in
  Gaussian.squeeze s 0 (Cx.re 0.6);
  let e = Threshold.expected_clicks s in
  Alcotest.(check bool) "within [0, N]" true (e > 0. && e < 3.)

(* ------------------------------------------------------------- Marginals *)

let test_reduce_covariance () =
  let rng = Rng.create 14 in
  let s = Gaussian.vacuum 4 in
  Gaussian.squeeze s 0 (Cx.re 0.5);
  Gaussian.displace s 2 (Cx.make 0.4 (-0.1));
  Gaussian.interferometer s (Unitary.haar_random rng 4);
  let r = Gaussian.reduce s [ 1; 3 ] in
  Alcotest.(check int) "modes" 2 (Gaussian.modes r);
  check_close "photon number preserved" 1e-9
    (Gaussian.mean_photons s 1 +. Gaussian.mean_photons s 3)
    (Gaussian.total_mean_photons r);
  Alcotest.(check bool) "marginal physical" true (Gaussian.is_valid r)

let test_reduce_rejects_duplicates () =
  let s = Gaussian.vacuum 3 in
  Alcotest.check_raises "duplicates" (Invalid_argument "Gaussian.reduce: duplicate qumodes")
    (fun () -> ignore (Gaussian.reduce s [ 1; 1 ]))

(* -------------------------------------------------------------- Coupling *)

let test_coupling_shapes () =
  let square = Coupling.of_lattice (Lattice.create ~rows:4 ~cols:5) in
  Alcotest.(check int) "square size" 20 (Coupling.size square);
  Alcotest.(check int) "square max degree" 4 (Coupling.max_degree square);
  let tri = Coupling.triangular ~rows:4 ~cols:5 in
  Alcotest.(check int) "triangular max degree" 6 (Coupling.max_degree tri);
  Alcotest.(check int) "triangular edges" (31 + 12) (List.length (Coupling.edges tri));
  let hex = Coupling.hexagonal ~rows:4 ~cols:5 in
  Alcotest.(check bool) "hexagonal max degree ≤ 3" true (Coupling.max_degree hex <= 3)

let test_coupling_disconnected_rejected () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Coupling.of_edges: graph is disconnected") (fun () ->
        ignore (Coupling.of_edges ~n:4 [ (0, 1); (2, 3) ]))

let test_dominating_path_covers () =
  List.iter
    (fun coupling ->
       let path = Coupling.dominating_path coupling in
       (* Simple path over existing edges... *)
       let rec adjacent_steps = function
         | a :: (b :: _ as rest) ->
           Coupling.adjacent coupling a b && adjacent_steps rest
         | _ -> true
       in
       Alcotest.(check bool) "steps adjacent" true (adjacent_steps path);
       Alcotest.(check int) "simple" (List.length path)
         (List.length (List.sort_uniq compare path));
       (* ...whose closed neighborhood covers most of the device (the
          rest become deeper branches in the embedding). *)
       let covered = Array.make (Coupling.size coupling) false in
       List.iter
         (fun v ->
            covered.(v) <- true;
            List.iter (fun w -> covered.(w) <- true) (Coupling.neighbors coupling v))
         path;
       let fraction =
         float_of_int (Array.fold_left (fun a b -> if b then a + 1 else a) 0 covered)
         /. float_of_int (Coupling.size coupling)
       in
       Alcotest.(check bool)
         (Printf.sprintf "covers %.0f%%" (100. *. fraction))
         true (fraction >= 0.8))
    [
      Coupling.of_lattice (Lattice.create ~rows:5 ~cols:5);
      Coupling.triangular ~rows:4 ~cols:6;
      Coupling.hexagonal ~rows:5 ~cols:6;
    ]

let test_generic_embedding_valid_and_exact () =
  List.iter
    (fun (name, coupling) ->
       let p = Embedding.of_coupling coupling in
       (match Pattern.validate p with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (name ^ ": " ^ e));
       (* Tree edges are physical couplings. *)
       for v = 0 to Pattern.size p - 1 do
         List.iter
           (fun w ->
              let sv = Option.get (Pattern.site p v) and sw = Option.get (Pattern.site p w) in
              Alcotest.(check bool) (name ^ " physical edge") true
                (Coupling.adjacent coupling sv sw))
           (Pattern.neighbors p v)
       done;
       (* Decomposition through the pattern is exact. *)
       let n = Pattern.size p in
       let u = haar 21 n in
       let plan = Eliminate.decompose p u in
       Alcotest.(check bool) (name ^ " roundtrip") true
         (Mat.equal ~tol:1e-8 (Plan.reconstruct plan) u))
    [
      ("square", Coupling.of_lattice (Lattice.create ~rows:4 ~cols:4));
      ("triangular", Coupling.triangular ~rows:4 ~cols:4);
      ("hexagonal", Coupling.hexagonal ~rows:4 ~cols:4);
    ]

let test_generic_embedding_beats_chain () =
  (* The point of the generalization: more small angles than the chain
     on non-square layouts. *)
  let coupling = Coupling.triangular ~rows:4 ~cols:6 in
  let p = Embedding.of_coupling coupling in
  let n = Pattern.size p in
  let u = haar 22 n in
  let tree = Eliminate.decompose p u in
  let chain = Eliminate.decompose_baseline u in
  Alcotest.(check bool) "tree beats chain" true
    (Plan.small_angle_count tree ~threshold:0.25
     > Plan.small_angle_count chain ~threshold:0.25)

(* ----------------------------------------------------------------- MZI 2 *)

let test_mzi2_matches_t_matrix () =
  List.iter
    (fun (theta, phi) ->
       let t = Givens.matrix 2 (Givens.of_angles ~m:0 ~n:1 ~theta ~phi) in
       let s1 = Gaussian.vacuum 2 and s2 = Gaussian.vacuum 2 in
       Gaussian.squeeze s1 0 (Cx.re 0.4);
       Gaussian.squeeze s2 0 (Cx.re 0.4);
       Gaussian.displace s1 1 (Cx.make 0.3 0.1);
       Gaussian.displace s2 1 (Cx.make 0.3 0.1);
       Gaussian.interferometer s1 t;
       Gaussian.run_circuit s2
         (Circuit.add_all (Circuit.create ~modes:2) (Gate.mzi2 ~m:0 ~n:1 ~theta ~phi));
       let v1 = Gaussian.cov s1 and v2 = Gaussian.cov s2 in
       let worst = ref 0. in
       for i = 0 to 3 do
         for j = 0 to 3 do
           worst := Float.max !worst (Float.abs (v1.(i).(j) -. v2.(i).(j)))
         done
       done;
       Alcotest.(check bool)
         (Printf.sprintf "theta=%.2f phi=%.2f" theta phi)
         true (!worst < 1e-9))
    [ (0.3, 0.7); (0., 1.2); (Float.pi /. 2., 0.); (1.1, -2.3) ]

let test_mzi2_uses_only_fixed_beamsplitters () =
  List.iter
    (fun gate ->
       match gate with
       | Gate.Beamsplitter (_, _, theta, phi) ->
         check_close "theta = pi/4" 1e-12 (Float.pi /. 4.) theta;
         check_close "phi = pi/2" 1e-12 (Float.pi /. 2.) phi
       | Gate.Phase _ -> ()
       | Gate.Squeeze _ | Gate.Displace _ -> Alcotest.fail "unexpected gate kind")
    (Gate.mzi2 ~m:0 ~n:1 ~theta:0.77 ~phi:0.3)

let test_plan_circuit_styles_equivalent () =
  let n = 4 in
  let u = haar 23 n in
  let plan = Eliminate.decompose_baseline u in
  let run style =
    let s = Gaussian.vacuum n in
    for i = 0 to n - 1 do
      Gaussian.squeeze s i (Cx.re 0.3)
    done;
    Gaussian.run_circuit s (Plan.to_circuit ~style plan);
    Gaussian.cov s
  in
  let v1 = run Plan.Tunable and v2 = run Plan.Fixed_fifty_fifty in
  let worst = ref 0. in
  for i = 0 to (2 * n) - 1 do
    for j = 0 to (2 * n) - 1 do
      worst := Float.max !worst (Float.abs (v1.(i).(j) -. v2.(i).(j)))
    done
  done;
  Alcotest.(check bool) "styles agree" true (!worst < 1e-9)

let test_mzi2_gate_counts () =
  let u = haar 24 5 in
  let plan = Eliminate.decompose_baseline u in
  let counts = Circuit.gate_counts (Plan.to_circuit ~style:Plan.Fixed_fifty_fifty plan) in
  (* 10 rotations × 2 fixed beamsplitters each. *)
  Alcotest.(check int) "double beamsplitters" 20 counts.Circuit.beamsplitter

(* ------------------------------------------------------------ Powertrace *)

let random_symmetric rng n =
  let m = Mat.create n n in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let re, im = Rng.gaussian_pair rng in
      let z = Cx.make re im in
      Mat.set m i j z;
      Mat.set m j i z
    done
  done;
  m

let test_powertrace_vs_brute () =
  let rng = Rng.create 31 in
  List.iter
    (fun n ->
       let m = random_symmetric rng n in
       let brute = Hafnian.hafnian_brute m in
       let pt = Hafnian.hafnian_powertrace m in
       Alcotest.(check bool)
         (Printf.sprintf "n=%d" n)
         true
         (Cx.abs Cx.(brute -: pt) <= 1e-9 *. Float.max 1. (Cx.abs brute)))
    [ 0; 2; 3; 4; 6; 8; 10 ]

let test_powertrace_vs_dp () =
  let rng = Rng.create 32 in
  List.iter
    (fun n ->
       let m = random_symmetric rng n in
       (* Zero-diagonal loop hafnian equals the hafnian; the subset DP
          handles 16 indices easily. *)
       let zero_diag = Mat.init n n (fun i j -> if i = j then Cx.zero else Mat.get m i j) in
       let dp = Hafnian.loop_hafnian zero_diag in
       let pt = Hafnian.hafnian_powertrace m in
       Alcotest.(check bool)
         (Printf.sprintf "n=%d" n)
         true
         (Cx.abs Cx.(dp -: pt) <= 1e-9 *. Float.max 1. (Cx.abs dp)))
    [ 12; 14; 16 ]

let test_hafnian_dispatch_large () =
  (* The dispatcher must reach sizes the memoized DP cannot. *)
  let rng = Rng.create 33 in
  let m = random_symmetric rng 26 in
  let h = Hafnian.hafnian m in
  Alcotest.(check bool) "finite" true (Float.is_finite (Cx.abs h))

(* --------------------------------------------------- Symplectic spectrum *)

let test_symplectic_pure_states () =
  let s = Gaussian.vacuum 3 in
  Gaussian.squeeze s 0 (Cx.re 0.8);
  Gaussian.squeeze s 1 (Cx.polar 0.5 1.3);
  Gaussian.beamsplitter s 0 2 0.7 0.2;
  Gaussian.displace s 1 (Cx.make 0.4 0.1);
  Array.iter
    (fun nu -> check_close "pure state nu = 1" 1e-8 1. nu)
    (Gaussian.symplectic_eigenvalues s);
  check_close "purity 1" 1e-8 1. (Gaussian.purity s)

let test_symplectic_thermal () =
  let s = Gaussian.thermal 2 [| 0.5; 1.0 |] in
  let nu = Gaussian.symplectic_eigenvalues s in
  check_close "nu max" 1e-9 3. nu.(0);
  check_close "nu min" 1e-9 2. nu.(1);
  check_close "photons" 1e-9 1.5 (Gaussian.total_mean_photons s);
  check_close "purity 1/6" 1e-9 (1. /. 6.) (Gaussian.purity s)

let test_symplectic_loss_mixes () =
  let s = Gaussian.vacuum 1 in
  Gaussian.squeeze s 0 (Cx.re 0.8);
  Gaussian.loss s 0 0.3;
  let nu = (Gaussian.symplectic_eigenvalues s).(0) in
  Alcotest.(check bool) "nu > 1 after loss" true (nu > 1.001);
  Alcotest.(check bool) "purity < 1" true (Gaussian.purity s < 0.999);
  Alcotest.(check bool) "still valid" true (Gaussian.is_valid s)

(* -------------------------------------------------------------- Homodyne *)

let test_homodyne_vacuum_statistics () =
  let rng = Rng.create 34 in
  let s = Gaussian.vacuum 1 in
  let xs = Array.init 20_000 (fun _ -> Gaussian.homodyne_sample rng s 0) in
  check_close "mean 0" 0.03 0. (Bose_util.Stats.mean xs);
  check_close "variance 1" 0.05 1. (Bose_util.Stats.variance xs)

let test_homodyne_conditioning_tms () =
  (* Two-mode squeezed light: measuring x on one arm displaces the other
     arm deterministically and leaves it pure. *)
  let tms () =
    let s = Gaussian.vacuum 2 in
    Gaussian.squeeze s 0 (Cx.re 0.6);
    Gaussian.squeeze s 1 (Cx.re (-0.6));
    Gaussian.beamsplitter s 0 1 (Float.pi /. 4.) 0.;
    s
  in
  let s = tms () in
  let post = Gaussian.homodyne_condition s 0 1.5 in
  Alcotest.(check int) "one qumode left" 1 (Gaussian.modes post);
  Alcotest.(check bool) "valid" true (Gaussian.is_valid post);
  check_close "conditioning purifies" 1e-6 1. (Gaussian.purity post);
  (* The conditional mean is linear in the outcome with the TMS
     correlation coefficient. *)
  let post2 = Gaussian.homodyne_condition (tms ()) 0 3.0 in
  check_close "mean linear in outcome" 1e-9
    (2. *. (Gaussian.mean post).(0))
    (Gaussian.mean post2).(0)

(* ----------------------------------------------------------------- Expm *)

let test_expm_zero_and_diag () =
  let z = Mat.create 3 3 in
  Alcotest.(check bool) "expm(0) = I" true
    (Mat.equal ~tol:1e-12 (Bose_linalg.Expm.expm z) (Mat.identity 3));
  let d = Mat.create 2 2 in
  Mat.set d 0 0 (Cx.re 1.);
  Mat.set d 1 1 (Cx.re (-2.));
  let e = Bose_linalg.Expm.expm d in
  check_close "e^1" 1e-12 (exp 1.) (Mat.get e 0 0).Complex.re;
  check_close "e^-2" 1e-12 (exp (-2.)) (Mat.get e 1 1).Complex.re

let test_expm_rotation () =
  (* exp(θ·[[0,−1],[1,0]]) is the rotation matrix. *)
  let theta = 0.83 in
  let g = Mat.create 2 2 in
  Mat.set g 0 1 (Cx.re (-.theta));
  Mat.set g 1 0 (Cx.re theta);
  let e = Bose_linalg.Expm.expm g in
  check_close "cos" 1e-12 (cos theta) (Mat.get e 0 0).Complex.re;
  check_close "sin" 1e-12 (sin theta) (Mat.get e 1 0).Complex.re

let test_expm_inverse () =
  let rng = Rng.create 41 in
  let a =
    Mat.init 5 5 (fun _ _ ->
        let re, im = Rng.gaussian_pair rng in
        Cx.make re im)
  in
  let e = Bose_linalg.Expm.expm a and einv = Bose_linalg.Expm.expm (Mat.scale (Cx.re (-1.)) a) in
  Alcotest.(check bool) "e^A·e^−A = I" true (Mat.equal ~tol:1e-9 (Mat.mul e einv) (Mat.identity 5))

let test_expm_antihermitian_unitary () =
  let rng = Rng.create 42 in
  let h =
    Mat.init 6 6 (fun _ _ ->
        let re, im = Rng.gaussian_pair rng in
        Cx.make re im)
  in
  let g = Mat.scale (Cx.re 0.5) (Mat.sub h (Mat.adjoint h)) in
  Alcotest.(check bool) "exp of anti-Hermitian is unitary" true
    (Mat.is_unitary (Bose_linalg.Expm.expm g))

(* ----------------------------------------------------------- Fock backend *)

let test_fock_backend_squeezed_vacuum () =
  (* Against the closed form: only even photon numbers. *)
  let r = 0.5 in
  let circ =
    Circuit.add (Circuit.create ~modes:1) (Gate.Squeeze (0, Cx.re r))
  in
  let fb = Fock_backend.run_circuit (Fock_backend.vacuum ~modes:1 ~cutoff:18) circ in
  check_close "p0" 1e-8 (1. /. cosh r) (Fock_backend.probability fb [ 0 ]);
  check_close "p1" 1e-10 0. (Fock_backend.probability fb [ 1 ]);
  check_close "p2" 1e-8 (tanh r ** 2. /. (2. *. cosh r)) (Fock_backend.probability fb [ 2 ])

let test_fock_backend_coherent () =
  let alpha = Cx.make 0.5 0.2 in
  let a2 = Cx.abs2 alpha in
  let circ = Circuit.add (Circuit.create ~modes:1) (Gate.Displace (0, alpha)) in
  let fb = Fock_backend.run_circuit (Fock_backend.vacuum ~modes:1 ~cutoff:16) circ in
  for n = 0 to 4 do
    check_close
      (Printf.sprintf "Poisson p(%d)" n)
      1e-8
      (exp (-.a2) *. (a2 ** float_of_int n) /. Bose_util.Combin.factorial n)
      (Fock_backend.probability fb [ n ])
  done

let test_fock_backend_cross_validates_gaussian () =
  (* The headline check: an arbitrary 2-qumode GBS circuit gives the
     same Fock probabilities from the truncated-operator backend and
     from the covariance + hafnian pipeline. *)
  let circ =
    Circuit.add_all (Circuit.create ~modes:2)
      [
        Gate.Squeeze (0, Cx.re 0.4);
        Gate.Squeeze (1, Cx.polar 0.3 0.9);
        Gate.Beamsplitter (0, 1, 0.7, 0.4);
        Gate.Phase (0, 1.1);
        Gate.Displace (1, Cx.make 0.25 (-0.1));
      ]
  in
  let fb = Fock_backend.run_circuit (Fock_backend.vacuum ~modes:2 ~cutoff:14) circ in
  check_close "norm ~1" 1e-6 1. (Fock_backend.norm fb);
  let prepared = Fock.prepare (Simulator.run circ) in
  List.iter
    (fun pattern ->
       check_close
         (Printf.sprintf "p[%s]" (String.concat ";" (List.map string_of_int pattern)))
         1e-7
         (Fock.probability prepared (Array.of_list pattern))
         (Fock_backend.probability fb pattern))
    (Bose_util.Combin.patterns_up_to ~modes:2 ~max_photons:4)

let test_fock_backend_beamsplitter_exact_norm () =
  (* Photon-conserving gates leak nothing past the cutoff. *)
  let circ =
    Circuit.add_all (Circuit.create ~modes:2)
      [ Gate.Squeeze (0, Cx.re 0.5); Gate.Beamsplitter (0, 1, 0.6, 0.2); Gate.Phase (1, 0.4) ]
  in
  let before =
    Fock_backend.norm
      (Fock_backend.run_circuit (Fock_backend.vacuum ~modes:2 ~cutoff:12)
         (Circuit.add (Circuit.create ~modes:2) (Gate.Squeeze (0, Cx.re 0.5))))
  in
  let after = Fock_backend.norm (Fock_backend.run_circuit (Fock_backend.vacuum ~modes:2 ~cutoff:12) circ) in
  check_close "BS and R conserve the truncated norm" 1e-10 before after

(* -------------------------------------------------------- Density backend *)

let lossy_test_circuit () =
  Circuit.add_all (Circuit.create ~modes:2)
    [
      Gate.Squeeze (0, Cx.re 0.45);
      Gate.Squeeze (1, Cx.re 0.3);
      Gate.Beamsplitter (0, 1, 0.7, 0.4);
      Gate.Phase (0, 1.1);
      Gate.Beamsplitter (0, 1, 0.3, -0.2);
    ]

let test_density_matches_gaussian_lossy () =
  (* The headline noise validation: the Kraus-operator density-matrix
     simulation of a lossy circuit agrees with the covariance-formalism
     + hafnian pipeline on probabilities, purity and photon number. *)
  let circuit = lossy_test_circuit () in
  let noise = Bose_circuit.Noise.uniform 0.15 in
  let db =
    Density_backend.run_circuit ~noise (Density_backend.vacuum ~modes:2 ~cutoff:12) circuit
  in
  let gs = Simulator.run ~noise circuit in
  check_close "trace preserved" 1e-6 1. (Density_backend.trace db);
  check_close "purity agrees" 1e-5 (Gaussian.purity gs) (Density_backend.purity db);
  check_close "photons agree" 1e-5 (Gaussian.total_mean_photons gs)
    (Density_backend.mean_photons db);
  let prepared = Fock.prepare gs in
  List.iter
    (fun pattern ->
       check_close
         (Printf.sprintf "p[%s]" (String.concat ";" (List.map string_of_int pattern)))
         1e-6
         (Fock.probability prepared (Array.of_list pattern))
         (Density_backend.probability db pattern))
    (Bose_util.Combin.patterns_up_to ~modes:2 ~max_photons:4)

let test_density_pure_roundtrip () =
  let circuit = lossy_test_circuit () in
  let psi = Fock_backend.run_circuit (Fock_backend.vacuum ~modes:2 ~cutoff:10) circuit in
  let rho = Density_backend.of_pure psi in
  check_close "pure purity" 1e-9 1. (Density_backend.purity rho /. Density_backend.trace rho ** 2.);
  List.iter
    (fun pattern ->
       check_close "pure probabilities match" 1e-10 (Fock_backend.probability psi pattern)
         (Density_backend.probability rho pattern))
    (Bose_util.Combin.patterns_up_to ~modes:2 ~max_photons:3)

let test_density_full_loss () =
  let circuit = Circuit.add (Circuit.create ~modes:2) (Gate.Squeeze (0, Cx.re 0.6)) in
  let db = Density_backend.run_circuit (Density_backend.vacuum ~modes:2 ~cutoff:10) circuit in
  let db = Density_backend.loss db 0 1.0 in
  check_close "all photons lost" 1e-9 0. (Density_backend.mean_photons db);
  check_close "trace kept" 1e-9 1. (Density_backend.trace db)

(* ---------------------------------------------------------- Circuit depth *)

let test_circuit_depth () =
  let c =
    Circuit.add_all (Circuit.create ~modes:4)
      [
        Gate.Beamsplitter (0, 1, 0.1, 0.);
        Gate.Beamsplitter (2, 3, 0.1, 0.);
        (* parallel with the first *)
        Gate.Beamsplitter (1, 2, 0.1, 0.);
        (* must wait for both *)
        Gate.Phase (0, 0.5);
        (* parallel with the previous layer *)
      ]
  in
  Alcotest.(check int) "depth" 2 (Circuit.depth c);
  Alcotest.(check int) "empty depth" 0 (Circuit.depth (Circuit.create ~modes:2))

let test_tree_depth_tradeoff () =
  (* The chain baseline packs into the classic ~2N-layer Reck mesh; the
     tree pattern serializes along its main path and comes out deeper —
     the price paid for droppable small-angle gates. Dropping gates
     recovers part of the depth. *)
  let u = haar 51 24 in
  let chain = Circuit.depth (Plan.to_circuit (Eliminate.decompose_baseline u)) in
  let plan =
    Eliminate.decompose (Embedding.for_program (Lattice.create ~rows:6 ~cols:6) 24) u
  in
  let tree = Circuit.depth (Plan.to_circuit plan) in
  Alcotest.(check bool)
    (Printf.sprintf "chain %d ≤ tree %d" chain tree)
    true (chain <= tree);
  (* Dropping the smallest third of the rotations shrinks the depth. *)
  let angles = Plan.angles plan in
  let order = Array.init (Array.length angles) (fun i -> i) in
  Array.sort (fun i j -> compare angles.(i) angles.(j)) order;
  let kept = Array.make (Array.length angles) true in
  Array.iteri (fun rank i -> if rank < Array.length angles / 3 then kept.(i) <- false) order;
  let dropped = Circuit.depth (Plan.to_circuit ~kept plan) in
  Alcotest.(check bool)
    (Printf.sprintf "dropped %d < full %d" dropped tree)
    true (dropped < tree)

(* ---------------------------------------------------------- Serialization *)

let test_plan_save_load_roundtrip () =
  let u = haar 52 9 in
  let plan = Eliminate.decompose_baseline u in
  let path = Filename.temp_file "bosehedral" ".plan" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let oc = open_out path in
       Plan.save oc plan;
       close_out oc;
       let ic = open_in path in
       let loaded = Plan.load ic in
       close_in ic;
       Alcotest.(check int) "modes" plan.Plan.modes loaded.Plan.modes;
       Alcotest.(check int) "rotations" (Plan.rotation_count plan) (Plan.rotation_count loaded);
       (* Hex-float roundtrip is bit-exact, so reconstruction matches. *)
       Alcotest.(check bool) "reconstruction identical" true
         (Mat.equal ~tol:0. (Plan.reconstruct plan) (Plan.reconstruct loaded)))

let test_plan_load_rejects_garbage () =
  let path = Filename.temp_file "bosehedral" ".plan" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let oc = open_out path in
       output_string oc "not a plan\n";
       close_out oc;
       let ic = open_in path in
       Fun.protect
         ~finally:(fun () -> close_in ic)
         (fun () ->
            match Plan.load ic with
            | _ -> Alcotest.fail "expected failure"
            | exception Failure _ -> ()))

(* ----------------------------------------------------- Compiler self-check *)

let test_compiler_verify_all_configs () =
  let rng = Rng.create 53 in
  let u = haar 53 9 in
  let device = Lattice.create ~rows:3 ~cols:3 in
  List.iter
    (fun config ->
       let compiled = Bosehedral.Compiler.compile ~rng ~device ~config ~tau:0.98 u in
       match Bosehedral.Compiler.verify compiled with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Bosehedral.Config.name config ^ ": " ^ e))
    Bosehedral.Config.all

let test_compiler_verify_generic_pattern () =
  let rng = Rng.create 54 in
  let coupling = Coupling.triangular ~rows:3 ~cols:4 in
  let pattern = Embedding.of_coupling coupling in
  let u = haar 54 (Pattern.size pattern) in
  let compiled =
    Bosehedral.Compiler.compile_with_pattern ~rng ~pattern
      ~config:Bosehedral.Config.Full_opt ~tau:0.98 u
  in
  match Bosehedral.Compiler.verify compiled with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* -------------------------------------------------------- Boson sampling *)

let test_permanent_vs_brute () =
  let rng = Rng.create 81 in
  List.iter
    (fun n ->
       let a =
         Mat.init n n (fun _ _ ->
             let re, im = Rng.gaussian_pair rng in
             Cx.make re im)
       in
       let fast = Permanent.permanent a and brute = Permanent.permanent_brute a in
       Alcotest.(check bool)
         (Printf.sprintf "n=%d" n)
         true
         (Cx.abs Cx.(fast -: brute) <= 1e-9 *. Float.max 1. (Cx.abs brute)))
    [ 0; 1; 2; 3; 5; 7 ]

let test_permanent_known () =
  (* perm(J₃) = 3! and perm(I) = 1. *)
  Alcotest.(check bool) "all-ones" true
    (Cx.is_close ~tol:1e-9 (Permanent.permanent (Mat.init 3 3 (fun _ _ -> Cx.one))) (Cx.re 6.));
  Alcotest.(check bool) "identity" true
    (Cx.is_close ~tol:1e-12 (Permanent.permanent (Mat.identity 4)) Cx.one)

let test_hong_ou_mandel () =
  (* Two photons on a 50:50 beamsplitter never exit separately —
     quantum interference the distinguishable baseline lacks. *)
  let bs =
    Givens.matrix 2 (Givens.of_angles ~m:0 ~n:1 ~theta:(Float.pi /. 4.) ~phi:0.)
  in
  let quantum = Boson_sampling.distribution bs ~input:[| 1; 1 |] in
  check_close "HOM dip" 1e-12 0. (List.assoc [ 1; 1 ] quantum);
  check_close "bunched" 1e-9 0.5 (List.assoc [ 2; 0 ] quantum);
  let classical = Boson_sampling.distinguishable_distribution bs ~input:[| 1; 1 |] in
  check_close "classical coincidences" 1e-9 0.5 (List.assoc [ 1; 1 ] classical)

let test_boson_sampling_normalized () =
  let rng = Rng.create 82 in
  let u = Unitary.haar_random rng 5 in
  let input = Boson_sampling.single_photons ~modes:5 ~photons:3 in
  let d = Boson_sampling.distribution u ~input in
  check_close "sums to 1" 1e-9 1. (List.fold_left (fun a (_, p) -> a +. p) 0. d);
  let c = Boson_sampling.distinguishable_distribution u ~input in
  check_close "classical sums to 1" 1e-9 1. (List.fold_left (fun a (_, p) -> a +. p) 0. c)

let test_boson_sampling_vs_fock_backend () =
  let rng = Rng.create 83 in
  let u = Unitary.haar_random rng 4 in
  let input = Boson_sampling.single_photons ~modes:4 ~photons:2 in
  let circuit = Plan.to_circuit (Eliminate.decompose_baseline u) in
  let fb =
    Fock_backend.run_circuit
      (Fock_backend.basis_state ~modes:4 ~cutoff:4 (Array.to_list input))
      circuit
  in
  List.iter
    (fun (pattern, p) ->
       check_close
         (Printf.sprintf "p(%s)" (String.concat "," (List.map string_of_int pattern)))
         1e-9 p (Fock_backend.probability fb pattern))
    (Boson_sampling.distribution u ~input)

let test_boson_sampling_total_mismatch () =
  let rng = Rng.create 84 in
  let u = Unitary.haar_random rng 3 in
  check_close "photon totals disagree" 1e-12 0.
    (Boson_sampling.probability u ~input:[| 1; 1; 0 |] ~output:[| 1; 0; 0 |])

(* ----------------------------------------------------------- State prep *)

let random_pure_state rng n =
  let s = Gaussian.vacuum n in
  for i = 0 to n - 1 do
    Gaussian.squeeze s i (Cx.polar (Rng.float rng 0.7) (Rng.float rng 6.28))
  done;
  Gaussian.interferometer s (Unitary.haar_random rng n);
  for i = 0 to n - 1 do
    Gaussian.displace s i (Cx.make (Rng.gaussian rng *. 0.3) (Rng.gaussian rng *. 0.3))
  done;
  s

let test_state_prep_roundtrip () =
  let rng = Rng.create 71 in
  List.iter
    (fun n ->
       let target = random_pure_state rng n in
       let circuit = State_prep.synthesize target in
       let rebuilt = Simulator.run circuit in
       let v1 = Gaussian.cov target and v2 = Gaussian.cov rebuilt in
       let worst = ref 0. in
       for i = 0 to (2 * n) - 1 do
         for j = 0 to (2 * n) - 1 do
           worst := Float.max !worst (Float.abs (v1.(i).(j) -. v2.(i).(j)))
         done
       done;
       Alcotest.(check bool)
         (Printf.sprintf "n=%d covariance rebuilt (%.1e)" n !worst)
         true (!worst < 1e-9);
       let m1 = Gaussian.mean target and m2 = Gaussian.mean rebuilt in
       Array.iteri
         (fun i x -> check_close "mean rebuilt" 1e-9 x m2.(i))
         m1)
    [ 1; 2; 4; 7 ]

let test_state_prep_parts_unitary () =
  let rng = Rng.create 72 in
  let target = random_pure_state rng 5 in
  let r, u, _ = State_prep.synthesis_parts target in
  Alcotest.(check int) "one r per mode" 5 (Array.length r);
  Alcotest.(check bool) "interferometer unitary" true (Mat.is_unitary u)

let test_state_prep_rejects_mixed () =
  let s = Gaussian.vacuum 2 in
  Gaussian.squeeze s 0 (Cx.re 0.6);
  Gaussian.loss s 0 0.3;
  Alcotest.check_raises "mixed state" (Invalid_argument "State_prep: state is not pure")
    (fun () -> ignore (State_prep.synthesize s))

let test_state_prep_vacuum_is_trivial () =
  let circuit = State_prep.synthesize (Gaussian.vacuum 3) in
  (* No squeezers or displacements; only the identity interferometer's
     bookkeeping gates (phases and zero-angle beamsplitters). *)
  let counts = Circuit.gate_counts circuit in
  Alcotest.(check int) "no squeezers" 0 counts.Circuit.squeezing;
  Alcotest.(check int) "no displacements" 0 counts.Circuit.displacement

(* ---------------------------------------------------- Chain-rule sampler *)

let test_chain_rule_matches_exact () =
  let rng = Rng.create 61 in
  let s = Gaussian.vacuum 2 in
  Gaussian.squeeze s 0 (Cx.re 0.45);
  Gaussian.squeeze s 1 (Cx.re 0.3);
  Gaussian.beamsplitter s 0 1 0.8 0.3;
  let exact = Fock.truncated ~max_photons:6 s in
  let samples = Sampler.chain_rule_many ~max_per_mode:6 rng s 1500 in
  let empirical = Bose_util.Dist.of_samples samples in
  let jsd = Bose_util.Dist.jsd empirical exact in
  Alcotest.(check bool) (Printf.sprintf "JSD %.4f small" jsd) true (jsd < 0.02)

let test_chain_rule_scales_past_enumeration () =
  (* 12 qumodes: the full pattern space is astronomically larger than
     anything we enumerate, yet per-shot cost stays tiny. *)
  let rng = Rng.create 62 in
  let s = Gaussian.vacuum 12 in
  for i = 0 to 11 do
    Gaussian.squeeze s i (Cx.re 0.2)
  done;
  Gaussian.interferometer s (Unitary.haar_random (Rng.create 63) 12);
  let shots = Sampler.chain_rule_many ~max_per_mode:4 rng s 50 in
  Alcotest.(check int) "50 shots" 50 (List.length shots);
  List.iter
    (fun pattern ->
       Alcotest.(check int) "12 modes" 12 (List.length pattern);
       List.iter (fun c -> Alcotest.(check bool) "count in range" true (c >= 0 && c <= 4)) pattern)
    shots;
  (* Mean photon number of the empirical sample is in the right
     neighbourhood of the state's. *)
  let mean =
    List.fold_left (fun a p -> a +. float_of_int (List.fold_left ( + ) 0 p)) 0. shots /. 50.
  in
  let expected = Gaussian.total_mean_photons s in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f near %.2f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.5)

(* ----------------------------------------------------------- Point process *)

let test_point_process_kernel () =
  let points = Bose_apps.Point_process.grid_points ~rows:2 ~cols:2 ~spacing:1.0 in
  let k = Bose_apps.Point_process.rbf_kernel ~sigma:1.0 points in
  check_close "diagonal 1" 1e-12 1. k.(0).(0);
  check_close "unit distance" 1e-12 (exp (-0.5)) k.(0).(1);
  check_close "symmetric" 1e-12 k.(1).(2) k.(2).(1)

let test_point_process_clusters () =
  let rng = Rng.create 17 in
  let points = Bose_apps.Point_process.grid_points ~rows:3 ~cols:3 ~spacing:1.0 in
  let pp = Bose_apps.Point_process.create ~sigma:0.9 points in
  let program = Bose_apps.Point_process.program ~mean_photons:2.5 pp in
  let dist = Bosehedral.Runner.ideal_distribution ~max_photons:5 program in
  let configs = Bose_apps.Point_process.sample_configurations ~rng ~shots:1500 dist pp in
  Alcotest.(check bool) "got configurations" true (List.length configs > 100);
  let gbs = Bose_apps.Point_process.mean_pairwise_distance configs in
  let uniform =
    Bose_apps.Point_process.mean_pairwise_distance
      (Bose_apps.Point_process.uniform_configurations ~rng pp ~match_sizes:configs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "clustered: gbs %.3f < uniform %.3f" gbs uniform)
    true (gbs < uniform)

(* ------------------------------------------------------------ properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"clements roundtrips random unitaries" ~count:25
      (pair (int_range 2 10) small_int)
      (fun (n, seed) ->
         let u = Unitary.haar_random (Rng.create seed) n in
         let c = Clements.decompose u in
         Mat.equal ~tol:1e-8 (Clements.reconstruct c) u);
    Test.make ~name:"threshold distributions always normalize" ~count:15 small_int
      (fun seed ->
         let rng = Rng.create seed in
         let s = Gaussian.vacuum 3 in
         Gaussian.squeeze s 0 (Cx.re (Rng.float rng 0.7));
         Gaussian.squeeze s 1 (Cx.polar (Rng.float rng 0.5) (Rng.float rng 6.28));
         Gaussian.displace s 2 (Cx.make (Rng.gaussian rng *. 0.3) (Rng.gaussian rng *. 0.3));
         Gaussian.interferometer s (Unitary.haar_random rng 3);
         if Rng.bool rng then Gaussian.loss s 1 (Rng.float rng 0.5);
         let total =
           List.fold_left (fun a (_, p) -> a +. p) 0. (Threshold.click_distribution s)
         in
         Float.abs (total -. 1.) < 1e-8);
    Test.make ~name:"generic embeddings always valid and exact" ~count:10
      (pair (int_range 2 5) (int_range 2 5))
      (fun (r, c) ->
         let coupling = Coupling.triangular ~rows:r ~cols:c in
         let p = Embedding.of_coupling coupling in
         let n = Pattern.size p in
         let u = Unitary.haar_random (Rng.create ((r * 100) + c)) n in
         Result.is_ok (Pattern.validate p)
         && Mat.equal ~tol:1e-8 (Plan.reconstruct (Eliminate.decompose p u)) u);
    Test.make ~name:"mzi2 blocks keep states normalized" ~count:20 small_int
      (fun seed ->
         let rng = Rng.create seed in
         let theta = Rng.float rng 1.5 and phi = Rng.float rng 6.28 -. 3.14 in
         let fb = Fock_backend.vacuum ~modes:2 ~cutoff:6 in
         let fb = Fock_backend.apply_gate fb (Gate.Squeeze (0, Cx.re 0.3)) in
         let before = Fock_backend.norm fb in
         let fb =
           List.fold_left Fock_backend.apply_gate fb (Gate.mzi2 ~m:0 ~n:1 ~theta ~phi)
         in
         Float.abs (Fock_backend.norm fb -. before) < 1e-9);
    Test.make ~name:"expm of anti-Hermitian generators is unitary" ~count:20 small_int
      (fun seed ->
         let rng = Rng.create seed in
         let n = 2 + (abs seed mod 5) in
         let h =
           Mat.init n n (fun _ _ ->
               let re, im = Rng.gaussian_pair rng in
               Cx.make re im)
         in
         let g = Mat.scale (Cx.re 0.5) (Mat.sub h (Mat.adjoint h)) in
         Mat.is_unitary (Bose_linalg.Expm.expm g));
  ]

let () =
  Alcotest.run "extensions"
    [
      ( "clements",
        [
          Alcotest.test_case "roundtrip" `Quick test_clements_roundtrip;
          Alcotest.test_case "adjacent pairs" `Quick test_clements_adjacent_pairs;
          Alcotest.test_case "lambda" `Quick test_clements_lambda;
          Alcotest.test_case "circuit equivalence" `Quick test_clements_circuit_equivalence;
          Alcotest.test_case "vs reck" `Quick test_clements_vs_reck_angles;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "coherent" `Quick test_threshold_coherent;
          Alcotest.test_case "squeezed" `Quick test_threshold_squeezed;
          Alcotest.test_case "TMS correlated" `Quick test_threshold_tms_correlated;
          Alcotest.test_case "normalized" `Quick test_threshold_distribution_normalized;
          Alcotest.test_case "matches Fock" `Quick test_threshold_matches_fock_aggregation;
          Alcotest.test_case "expected clicks" `Quick test_expected_clicks_bounds;
        ] );
      ( "marginals",
        [
          Alcotest.test_case "reduce" `Quick test_reduce_covariance;
          Alcotest.test_case "duplicates" `Quick test_reduce_rejects_duplicates;
        ] );
      ( "coupling",
        [
          Alcotest.test_case "shapes" `Quick test_coupling_shapes;
          Alcotest.test_case "disconnected" `Quick test_coupling_disconnected_rejected;
          Alcotest.test_case "dominating path" `Quick test_dominating_path_covers;
          Alcotest.test_case "generic embedding" `Quick test_generic_embedding_valid_and_exact;
          Alcotest.test_case "beats chain" `Quick test_generic_embedding_beats_chain;
        ] );
      ( "mzi2",
        [
          Alcotest.test_case "matches T" `Quick test_mzi2_matches_t_matrix;
          Alcotest.test_case "fixed beamsplitters" `Quick test_mzi2_uses_only_fixed_beamsplitters;
          Alcotest.test_case "styles equivalent" `Quick test_plan_circuit_styles_equivalent;
          Alcotest.test_case "gate counts" `Quick test_mzi2_gate_counts;
        ] );
      ( "powertrace",
        [
          Alcotest.test_case "vs brute" `Quick test_powertrace_vs_brute;
          Alcotest.test_case "vs dp" `Quick test_powertrace_vs_dp;
          Alcotest.test_case "dispatch large" `Slow test_hafnian_dispatch_large;
        ] );
      ( "symplectic",
        [
          Alcotest.test_case "pure states" `Quick test_symplectic_pure_states;
          Alcotest.test_case "thermal" `Quick test_symplectic_thermal;
          Alcotest.test_case "loss mixes" `Quick test_symplectic_loss_mixes;
        ] );
      ( "homodyne",
        [
          Alcotest.test_case "vacuum statistics" `Quick test_homodyne_vacuum_statistics;
          Alcotest.test_case "TMS conditioning" `Quick test_homodyne_conditioning_tms;
        ] );
      ( "expm",
        [
          Alcotest.test_case "zero and diag" `Quick test_expm_zero_and_diag;
          Alcotest.test_case "rotation" `Quick test_expm_rotation;
          Alcotest.test_case "inverse" `Quick test_expm_inverse;
          Alcotest.test_case "anti-Hermitian" `Quick test_expm_antihermitian_unitary;
        ] );
      ( "fock_backend",
        [
          Alcotest.test_case "squeezed vacuum" `Quick test_fock_backend_squeezed_vacuum;
          Alcotest.test_case "coherent" `Quick test_fock_backend_coherent;
          Alcotest.test_case "cross-validates Gaussian" `Quick
            test_fock_backend_cross_validates_gaussian;
          Alcotest.test_case "conserving gates" `Quick test_fock_backend_beamsplitter_exact_norm;
        ] );
      ( "density_backend",
        [
          Alcotest.test_case "matches Gaussian (lossy)" `Quick test_density_matches_gaussian_lossy;
          Alcotest.test_case "pure roundtrip" `Quick test_density_pure_roundtrip;
          Alcotest.test_case "full loss" `Quick test_density_full_loss;
        ] );
      ( "depth",
        [
          Alcotest.test_case "layering" `Quick test_circuit_depth;
          Alcotest.test_case "depth tradeoff" `Quick test_tree_depth_tradeoff;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_plan_save_load_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_plan_load_rejects_garbage;
        ] );
      ( "compiler_verify",
        [
          Alcotest.test_case "all configs" `Quick test_compiler_verify_all_configs;
          Alcotest.test_case "generic pattern" `Quick test_compiler_verify_generic_pattern;
        ] );
      ( "boson_sampling",
        [
          Alcotest.test_case "permanent vs brute" `Quick test_permanent_vs_brute;
          Alcotest.test_case "permanent known" `Quick test_permanent_known;
          Alcotest.test_case "Hong-Ou-Mandel" `Quick test_hong_ou_mandel;
          Alcotest.test_case "normalized" `Quick test_boson_sampling_normalized;
          Alcotest.test_case "vs Fock backend" `Quick test_boson_sampling_vs_fock_backend;
          Alcotest.test_case "total mismatch" `Quick test_boson_sampling_total_mismatch;
        ] );
      ( "state_prep",
        [
          Alcotest.test_case "roundtrip" `Quick test_state_prep_roundtrip;
          Alcotest.test_case "parts" `Quick test_state_prep_parts_unitary;
          Alcotest.test_case "rejects mixed" `Quick test_state_prep_rejects_mixed;
          Alcotest.test_case "vacuum trivial" `Quick test_state_prep_vacuum_is_trivial;
        ] );
      ( "chain_rule",
        [
          Alcotest.test_case "matches exact" `Slow test_chain_rule_matches_exact;
          Alcotest.test_case "scales past enumeration" `Quick
            test_chain_rule_scales_past_enumeration;
        ] );
      ( "point_process",
        [
          Alcotest.test_case "kernel" `Quick test_point_process_kernel;
          Alcotest.test_case "clusters" `Quick test_point_process_clusters;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_tests);
    ]
