(* bosec serve: the disk-backed artifact store and the JSON request
   engine. Pins the PR's headline contract — a compile artifact served
   from the on-disk cache after a restart is bit-identical to the one
   the original compile returned — plus the failure modes: corrupted
   objects are quarantined (and reported as BH12xx diagnostics), never
   raised, and concurrent socket clients each get their own replies. *)

module Rng = Bose_util.Rng
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
module Plan = Bose_decomp.Plan
module Lattice = Bose_hardware.Lattice
module Diskcache = Bose_store.Diskcache
module Lint = Bose_lint.Lint
module Diag = Bose_lint.Diag
module Json = Bose_serve.Json
module Serve = Bose_serve.Serve

(* Fresh temp directory per test; contents removed best-effort. *)
let temp_dir_counter = ref 0

let fresh_dir () =
  incr temp_dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "bosec-test-serve.%d.%d" (Unix.getpid ()) !temp_dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let sample_artifacts seed n =
  let u = Unitary.haar_random (Rng.create seed) n in
  let device = Lattice.create ~rows:n ~cols:1 in
  let c =
    Bosehedral.Compiler.compile ~rng:(Rng.create (seed + 1)) ~device
      ~config:Bosehedral.Config.Baseline u
  in
  ( c.Bosehedral.Compiler.plan,
    c.Bosehedral.Compiler.mapping.Bose_mapping.Mapping.permuted )

(* A PR 6-era object file: v1 container, text artifacts, no format
   line. The store must keep reading these. *)
let render_v1 ~key ~meta ~plan_text ~unitary_text =
  Printf.sprintf "bosec-object 1\nkey %s\nmeta %s\nplan %d\n%sunitary %d\n%send\n" key
    meta (String.length plan_text) plan_text (String.length unitary_text) unitary_text

(* ------------------------------------------------- unitary strings *)

let test_unitary_string_roundtrip () =
  let u = Unitary.haar_random (Rng.create 5) 6 in
  let text = Unitary.to_string u in
  match Unitary.of_string text with
  | Error (msg, l) -> Alcotest.failf "of_string failed: %s (line %d)" msg l
  | Ok v ->
    Alcotest.(check bool) "bit-exact round-trip" true (Mat.equal u v);
    Alcotest.(check string) "re-serialization identical" text (Unitary.to_string v)

(* Codec round-trip: text → binary → text must reproduce the text
   bytes exactly, for both artifact kinds, and a flipped payload byte
   must fail the checksum rather than decode silently. *)
let test_binary_codec_roundtrip () =
  let plan, unitary = sample_artifacts 16 5 in
  let ptext = Plan.to_string plan in
  let pbin = Plan.to_binary_string plan in
  Alcotest.(check bool) "plan binary is a distinct encoding" true (ptext <> pbin);
  (match Plan.of_string pbin with
   | Error (msg, l) -> Alcotest.failf "binary plan parse failed: %s (line %d)" msg l
   | Ok p2 ->
     Alcotest.(check string) "plan text→binary→text bit-identical" ptext
       (Plan.to_string p2));
  let utext = Unitary.to_string unitary in
  let ubin = Unitary.to_binary_string unitary in
  (match Unitary.of_string ubin with
   | Error (msg, l) -> Alcotest.failf "binary unitary parse failed: %s (line %d)" msg l
   | Ok u2 ->
     Alcotest.(check string) "unitary text→binary→text bit-identical" utext
       (Unitary.to_string u2));
  let corrupt = Bytes.of_string ubin in
  let mid = Bytes.length corrupt / 2 in
  Bytes.set corrupt mid (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x40));
  (match Unitary.of_string (Bytes.to_string corrupt) with
   | Ok _ -> Alcotest.fail "checksum must reject a flipped payload byte"
   | Error (msg, _) ->
     Alcotest.(check bool) "rejected via checksum" true
       (String.length msg > 0))

(* ------------------------------------------------------- diskcache *)

let test_store_persists_verbatim () =
  with_dir @@ fun dir ->
  let plan, unitary = sample_artifacts 11 4 in
  let plan_text = Plan.to_string plan and unitary_text = Unitary.to_string unitary in
  let key = "aaaa000011112222" in
  let t = Diskcache.open_ ~dir ~max_bytes:(1 lsl 20) in
  Diskcache.store t ~key ~meta:"fidelity=0x1p+0 rotations=6 modes=4" ~plan ~unitary;
  (match Diskcache.find t key with
   | None -> Alcotest.fail "hit expected on the writing process"
   | Some h ->
     Alcotest.(check bool) "stored binary by default" true
       (h.Diskcache.format = Diskcache.Binary);
     Alcotest.(check string) "plan text-identical" plan_text
       (Plan.to_string h.Diskcache.plan);
     Alcotest.(check string) "unitary text-identical" unitary_text
       (Unitary.to_string h.Diskcache.unitary));
  (* Cold start: a second open of the same directory serves artifacts
     identical to what the first process stored. *)
  let t2 = Diskcache.open_ ~dir ~max_bytes:(1 lsl 20) in
  (match Diskcache.find t2 key with
   | None -> Alcotest.fail "hit expected after reopen"
   | Some h ->
     Alcotest.(check string) "meta survives restart" "fidelity=0x1p+0 rotations=6 modes=4"
       h.Diskcache.meta;
     Alcotest.(check string) "plan survives restart" plan_text
       (Plan.to_string h.Diskcache.plan);
     Alcotest.(check string) "unitary survives restart" unitary_text
       (Unitary.to_string h.Diskcache.unitary));
  let s = Diskcache.stats t2 in
  Alcotest.(check int) "one entry" 1 s.Diskcache.entries;
  Alcotest.(check int) "one hit" 1 s.Diskcache.hits;
  (* On little-endian hosts the binary read is served from the mmap. *)
  if not Sys.big_endian then
    Alcotest.(check int) "served zero-copy" 1 s.Diskcache.mmap_hits

(* A directory mixing v1 text objects (written by a PR 6 binary), v2
   text objects and v2 binary objects serves all three — the restart
   compatibility story of the format migration. *)
let test_mixed_version_directory () =
  with_dir @@ fun dir ->
  let plan, unitary = sample_artifacts 15 4 in
  let plan_text = Plan.to_string plan and unitary_text = Unitary.to_string unitary in
  let kbin = "b1b1b1b1b1b1b1b1" and ktext = "a2a2a2a2a2a2a2a2" and kv1 = "c3c3c3c3c3c3c3c3" in
  let t = Diskcache.open_ ~dir ~max_bytes:(1 lsl 20) in
  Diskcache.store t ~key:kbin ~meta:"m" ~plan ~unitary;
  Diskcache.store ~format:Diskcache.Text t ~key:ktext ~meta:"m" ~plan ~unitary;
  write_file
    (Filename.concat (Filename.concat dir "objects") kv1)
    (render_v1 ~key:kv1 ~meta:"m" ~plan_text ~unitary_text);
  (* Reopen: the v1 file is adopted from disk like any other object. *)
  let t2 = Diskcache.open_ ~dir ~max_bytes:(1 lsl 20) in
  let check_hit key expected_format label =
    match Diskcache.find t2 key with
    | None -> Alcotest.failf "%s: expected a hit" label
    | Some h ->
      Alcotest.(check bool) (label ^ ": format") true (h.Diskcache.format = expected_format);
      Alcotest.(check string) (label ^ ": plan") plan_text (Plan.to_string h.Diskcache.plan);
      Alcotest.(check string) (label ^ ": unitary") unitary_text
        (Unitary.to_string h.Diskcache.unitary)
  in
  check_hit kbin Diskcache.Binary "v2 binary";
  check_hit ktext Diskcache.Text "v2 text";
  check_hit kv1 Diskcache.Text "v1 text";
  let s = Diskcache.stats t2 in
  Alcotest.(check int) "all three live" 3 s.Diskcache.entries;
  Alcotest.(check int) "no quarantines" 0 s.Diskcache.quarantined;
  (* Only the binary object is mmap-servable. *)
  if not Sys.big_endian then
    Alcotest.(check int) "one zero-copy hit" 1 s.Diskcache.mmap_hits;
  (* The mixed directory audits clean. *)
  Alcotest.(check int) "audit clean" 0 (List.length (Diskcache.audit dir))

let test_corrupt_entry_quarantined () =
  with_dir @@ fun dir ->
  let plan, unitary = sample_artifacts 12 4 in
  let key = "feedbead00000001" in
  let t = Diskcache.open_ ~dir ~max_bytes:(1 lsl 20) in
  Diskcache.store t ~key ~meta:"m" ~plan ~unitary;
  (* Truncate the object behind the store's back. *)
  let path = Filename.concat (Filename.concat dir "objects") key in
  let content = read_file path in
  write_file path (String.sub content 0 (String.length content / 2));
  let t2 = Diskcache.open_ ~dir ~max_bytes:(1 lsl 20) in
  Alcotest.(check bool) "find does not raise, reports a miss" true
    (Diskcache.find t2 key = None);
  let s = Diskcache.stats t2 in
  Alcotest.(check int) "quarantined" 1 s.Diskcache.quarantined;
  Alcotest.(check int) "no live entries" 0 s.Diskcache.entries;
  Alcotest.(check bool) "object file moved aside" false (Sys.file_exists path);
  Alcotest.(check bool) "quarantine holds the bytes" true
    (Sys.readdir (Filename.concat dir "quarantine") <> [||]);
  (* The key is recompilable: a fresh store heals it. *)
  Diskcache.store t2 ~key ~meta:"m" ~plan ~unitary;
  Alcotest.(check bool) "healed" true (Diskcache.find t2 key <> None)

let test_audit_reports_bh12xx () =
  with_dir @@ fun dir ->
  let plan, unitary = sample_artifacts 13 4 in
  let t = Diskcache.open_ ~dir ~max_bytes:(1 lsl 20) in
  Diskcache.store t ~key:"aaaaaaaaaaaaaaa1" ~meta:"m" ~plan ~unitary;
  Diskcache.store t ~key:"aaaaaaaaaaaaaaa2" ~meta:"m" ~plan ~unitary;
  Diskcache.store t ~key:"aaaaaaaaaaaaaaa4" ~meta:"m" ~plan ~unitary;
  (* Corrupt one object, delete another, drop an orphan in, and stamp
     one with a container version from the future. *)
  let obj k = Filename.concat (Filename.concat dir "objects") k in
  write_file (obj "aaaaaaaaaaaaaaa1") "bosec-object 1\ngarbage\n";
  Sys.remove (obj "aaaaaaaaaaaaaaa2");
  write_file (obj "bbbbbbbbbbbbbbb3") "not even framed\n";
  write_file (obj "aaaaaaaaaaaaaaa4") "bosec-object 9\nkey aaaaaaaaaaaaaaa4\n";
  let diags = Lint.run { Lint.empty with Lint.cache_dir = Some dir } in
  let codes = List.map (fun (d : Diag.t) -> d.Diag.code) diags in
  let has c = List.mem c codes in
  Alcotest.(check bool) "BH1202 missing object" true (has "BH1202");
  Alcotest.(check bool) "BH1203 corrupt object" true (has "BH1203");
  Alcotest.(check bool) "BH1204 orphan object" true (has "BH1204");
  (* Size mismatch (corrupted-in-place file with a stale index). *)
  Alcotest.(check bool) "BH1205 size mismatch" true (has "BH1205");
  (* Version mismatch is its own diagnostic, not generic corruption. *)
  Alcotest.(check bool) "BH1206 version mismatch" true (has "BH1206");
  (* The runtime quarantines a wrong-version object like a corrupt one. *)
  let t2 = Diskcache.open_ ~dir ~max_bytes:(1 lsl 20) in
  Alcotest.(check bool) "wrong version reads as a miss" true
    (Diskcache.find t2 "aaaaaaaaaaaaaaa4" = None);
  Alcotest.(check bool) "wrong version quarantined" true
    ((Diskcache.stats t2).Diskcache.quarantined >= 1);
  (* A malformed index is BH1201 and still not a crash. *)
  write_file (Filename.concat dir "index") "not an index\n";
  let diags = Lint.run { Lint.empty with Lint.cache_dir = Some dir } in
  Alcotest.(check bool) "BH1201 bad index" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "BH1201") diags);
  (* A clean directory audits clean. *)
  let clean = fresh_dir () in
  let t2 = Diskcache.open_ ~dir:clean ~max_bytes:(1 lsl 20) in
  Diskcache.store t2 ~key:"cccccccccccccccc" ~meta:"m" ~plan ~unitary;
  let diags = Lint.run { Lint.empty with Lint.cache_dir = Some clean } in
  Alcotest.(check int) "clean cache: no diagnostics" 0 (List.length diags);
  rm_rf clean

let test_lru_eviction () =
  with_dir @@ fun dir ->
  let plan, unitary = sample_artifacts 14 4 in
  let size =
    String.length (Plan.to_binary_string plan)
    + String.length (Unitary.to_binary_string unitary)
    + 128 (* container framing slack *)
  in
  (* Room for two entries, not three. *)
  let t = Diskcache.open_ ~dir ~max_bytes:(2 * size) in
  Diskcache.store t ~key:"aaaaaaaaaaaaaaa1" ~meta:"m" ~plan ~unitary;
  Diskcache.store t ~key:"aaaaaaaaaaaaaaa2" ~meta:"m" ~plan ~unitary;
  ignore (Diskcache.find t "aaaaaaaaaaaaaaa1");
  (* 2 is now least-recently-used; adding 3 evicts it. *)
  Diskcache.store t ~key:"aaaaaaaaaaaaaaa3" ~meta:"m" ~plan ~unitary;
  Alcotest.(check bool) "recently-used survives" true (Diskcache.mem t "aaaaaaaaaaaaaaa1");
  Alcotest.(check bool) "LRU evicted" false (Diskcache.mem t "aaaaaaaaaaaaaaa2");
  Alcotest.(check bool) "new entry present" true (Diskcache.mem t "aaaaaaaaaaaaaaa3");
  let s = Diskcache.stats t in
  Alcotest.(check int) "one eviction" 1 s.Diskcache.evictions;
  Alcotest.(check bool) "bound respected" true (s.Diskcache.bytes <= 2 * size)

(* ------------------------------------------------- request engine *)

let get_str path reply =
  match Json.parse reply with
  | Error msg -> Alcotest.failf "reply is not JSON: %s (%s)" msg reply
  | Ok v ->
    let rec go v = function
      | [] -> Json.str v
      | k :: rest -> (match Json.mem k v with Some v -> go v rest | None -> None)
    in
    go v path

let ok_reply reply =
  match Json.parse reply with
  | Ok v -> Json.mem "ok" v = Some (Json.Bool true)
  | Error _ -> false

let compile_req ~id ~seed =
  Printf.sprintf
    {|{"id":%d,"op":"compile","params":{"modes":4,"rows":2,"cols":2,"seed":%d}}|} id seed

let test_protocol_basics () =
  let t = Serve.create () in
  Alcotest.(check bool) "ping" true (ok_reply (Serve.handle_line t {|{"id":1,"op":"ping"}|}));
  (* Errors are structured replies, never exceptions. *)
  Alcotest.(check (option string)) "parse error" (Some "parse")
    (get_str [ "error"; "code" ] (Serve.handle_line t "not json"));
  Alcotest.(check (option string)) "unknown op" (Some "bad-request")
    (get_str [ "error"; "code" ] (Serve.handle_line t {|{"id":2,"op":"frobnicate"}|}));
  Alcotest.(check (option string)) "missing op" (Some "bad-request")
    (get_str [ "error"; "code" ] (Serve.handle_line t {|{"id":3}|}));
  Alcotest.(check (option string)) "bad params" (Some "bad-request")
    (get_str [ "error"; "code" ]
       (Serve.handle_line t {|{"op":"compile","params":{"modes":0}}|}));
  Alcotest.(check bool) "stats" true
    (ok_reply (Serve.handle_line t {|{"op":"stats"}|}));
  Alcotest.(check bool) "sample" true
    (ok_reply
       (Serve.handle_line t
          {|{"op":"sample","params":{"modes":2,"shots":4,"max_photons":2}}|}));
  Alcotest.(check bool) "not stopping yet" false (Serve.stopping t);
  Alcotest.(check bool) "shutdown" true
    (ok_reply (Serve.handle_line t {|{"op":"shutdown"}|}));
  Alcotest.(check bool) "stopping" true (Serve.stopping t);
  Serve.shutdown t

let get_num path reply =
  match Json.parse reply with
  | Error msg -> Alcotest.failf "reply is not JSON: %s (%s)" msg reply
  | Ok v ->
    let rec go v = function
      | [] -> Json.num v
      | k :: rest -> (match Json.mem k v with Some v -> go v rest | None -> None)
    in
    go v path

let test_analyze_op () =
  with_dir @@ fun dir ->
  let t = Serve.create ~cache_dir:dir () in
  (* Inline plan: clean analysis, report fields present. *)
  let plan, _ = sample_artifacts 5 4 in
  let req =
    Json.to_string
      (Json.Obj
         [
           ("id", Json.Num 1.);
           ("op", Json.Str "analyze");
           ("params", Json.Obj [ ("plan", Json.Str (Plan.to_string plan)) ]);
         ])
  in
  let r = Serve.handle_line t req in
  Alcotest.(check bool) "inline plan ok" true (ok_reply r);
  Alcotest.(check (option (float 0.))) "no errors" (Some 0.)
    (get_num [ "result"; "errors" ] r);
  Alcotest.(check bool) "depth reported" true
    (get_num [ "result"; "report"; "depth" ] r <> None);
  Alcotest.(check bool) "fidelity interval reported" true
    (get_num [ "result"; "report"; "fidelity"; "lo" ] r <> None);
  (* Neither plan nor key is a bad request, not an exception. *)
  Alcotest.(check (option string)) "no plan, no key" (Some "bad-request")
    (get_str [ "error"; "code" ] (Serve.handle_line t {|{"id":2,"op":"analyze"}|}));
  Alcotest.(check (option string)) "unknown key" (Some "bad-request")
    (get_str [ "error"; "code" ]
       (Serve.handle_line t {|{"id":3,"op":"analyze","params":{"key":"nope"}}|}));
  (* Compile through the cache, then analyze the stored artifact by
     key with a depth ceiling low enough to trip BH1102. *)
  let rc = Serve.handle_line t (compile_req ~id:4 ~seed:9) in
  let key = match get_str [ "result"; "key" ] rc with
    | Some k -> k
    | None -> Alcotest.fail "compile reply has no key"
  in
  let ra =
    Serve.handle_line t
      (Printf.sprintf
         {|{"id":5,"op":"analyze","params":{"key":"%s","tau":0.999,"max_depth":1}}|}
         key)
  in
  Alcotest.(check bool) "by-key ok" true (ok_reply ra);
  Alcotest.(check bool) "depth ceiling trips errors" true
    (match get_num [ "result"; "errors" ] ra with Some e -> e > 0. | None -> false);
  Serve.shutdown t

let test_restart_disk_hit_bit_identical () =
  with_dir @@ fun dir ->
  (* First server: cold compile, killed. *)
  let t1 = Serve.create ~cache_dir:dir () in
  let r1 = Serve.handle_line t1 (compile_req ~id:1 ~seed:42) in
  Alcotest.(check (option string)) "cold" (Some "none") (get_str [ "result"; "cached" ] r1);
  (* With a disk store attached, the compile is persisted in the v2
     binary encoding and the reply says so. *)
  Alcotest.(check (option string)) "cold stores binary" (Some "binary")
    (get_str [ "result"; "format" ] r1);
  (* The write-through makes a repeat request a disk hit immediately —
     disk is checked before the pass cache, so the reply skips the
     compile machinery entirely. *)
  let r2 = Serve.handle_line t1 (compile_req ~id:2 ~seed:42) in
  Alcotest.(check (option string)) "warm in-process" (Some "disk")
    (get_str [ "result"; "cached" ] r2);
  Alcotest.(check (option string)) "disk hit reports stored format" (Some "binary")
    (get_str [ "result"; "format" ] r2);
  Serve.shutdown t1;
  (* Without a disk store, the warm path is the in-memory pass cache:
     every pass replays its recorded artifact, bit-identically. *)
  let tm = Serve.create () in
  let m1 = Serve.handle_line tm (compile_req ~id:10 ~seed:42) in
  let m2 = Serve.handle_line tm (compile_req ~id:11 ~seed:42) in
  Alcotest.(check (option string)) "no disk: cold" (Some "none")
    (get_str [ "result"; "cached" ] m1);
  Alcotest.(check (option string)) "no disk: nothing persisted" (Some "none")
    (get_str [ "result"; "format" ] m1);
  Alcotest.(check (option string)) "no disk: pass-cache hit" (Some "mem")
    (get_str [ "result"; "cached" ] m2);
  List.iter
    (fun field ->
       Alcotest.(check (option string))
         (field ^ " bit-identical on mem replay")
         (get_str [ "result"; field ] m1)
         (get_str [ "result"; field ] m2))
    [ "plan"; "unitary" ];
  Serve.shutdown tm;
  (* Second server, same cache dir: the recompile must be a disk hit
     returning bit-identical plan and unitary text. *)
  let t2 = Serve.create ~cache_dir:dir () in
  let r3 = Serve.handle_line t2 (compile_req ~id:3 ~seed:42) in
  Alcotest.(check (option string)) "disk hit after restart" (Some "disk")
    (get_str [ "result"; "cached" ] r3);
  Alcotest.(check (option string)) "restart hit served from binary" (Some "binary")
    (get_str [ "result"; "format" ] r3);
  List.iter
    (fun field ->
       Alcotest.(check (option string))
         (field ^ " bit-identical across restart")
         (get_str [ "result"; field ] r1)
         (get_str [ "result"; field ] r3))
    [ "plan"; "unitary"; "key" ];
  Serve.shutdown t2

(* ------------------------------------------------------- targets *)

let target_req ~id ~seed target =
  Printf.sprintf {|{"id":%d,"op":"compile","params":{"modes":8,"seed":%d,"target":"%s"}}|}
    id seed target

let test_target_compile_protocol () =
  with_dir @@ fun dir ->
  (* Disk-backed so the by-key analyze at the end can find the artifact. *)
  let t = Serve.create ~cache_dir:dir () in
  let r = Serve.handle_line t (target_req ~id:1 ~seed:7 "zigzag") in
  Alcotest.(check bool) "targeted compile ok" true (ok_reply r);
  Alcotest.(check (option string)) "target echoed" (Some "zigzag")
    (get_str [ "result"; "target" ] r);
  (* The key namespace discriminates: same job on another target, and
     the same job with no target at all, are three distinct entries. *)
  let r_orca = Serve.handle_line t (target_req ~id:2 ~seed:7 "orca-shallow") in
  Alcotest.(check bool) "orca compile ok" true (ok_reply r_orca);
  Alcotest.(check (option string)) "orca echoed" (Some "orca-shallow")
    (get_str [ "result"; "target" ] r_orca);
  let r_plain =
    Serve.handle_line t {|{"id":3,"op":"compile","params":{"modes":8,"seed":7}}|}
  in
  let key r = get_str [ "result"; "key" ] r in
  Alcotest.(check bool) "zigzag vs orca keys differ" false (key r = key r_orca);
  Alcotest.(check bool) "target vs no-target keys differ" false (key r = key r_plain);
  Alcotest.(check (option string)) "no target, no echo" None
    (get_str [ "result"; "target" ] r_plain);
  (* Unknown targets and conflicting geometry are structured errors. *)
  Alcotest.(check (option string)) "unknown target" (Some "bad-request")
    (get_str [ "error"; "code" ] (Serve.handle_line t (target_req ~id:4 ~seed:7 "nokia")));
  Alcotest.(check (option string)) "target + rows rejected" (Some "bad-request")
    (get_str [ "error"; "code" ]
       (Serve.handle_line t
          {|{"id":5,"op":"compile","params":{"modes":8,"rows":3,"target":"zigzag"}}|}));
  (* analyze accepts a target in place of manual backend knobs, but not
     both. *)
  (match key r with
   | None -> Alcotest.fail "compile reply has no key"
   | Some k ->
     let ra =
       Serve.handle_line t
         (Printf.sprintf {|{"id":6,"op":"analyze","params":{"key":"%s","target":"zigzag"}}|} k)
     in
     Alcotest.(check bool) "analyze with target ok" true (ok_reply ra);
     Alcotest.(check (option string)) "analyze echoes target" (Some "zigzag")
       (get_str [ "result"; "target" ] ra);
     Alcotest.(check (option string)) "analyze target + max_depth rejected"
       (Some "bad-request")
       (get_str [ "error"; "code" ]
          (Serve.handle_line t
             (Printf.sprintf
                {|{"id":7,"op":"analyze","params":{"key":"%s","target":"zigzag","max_depth":4}}|}
                k))));
  Serve.shutdown t

let test_target_restart_disk_hit () =
  with_dir @@ fun dir ->
  (* Cold targeted compile, write-through to disk, server killed. *)
  let t1 = Serve.create ~cache_dir:dir () in
  let r1 = Serve.handle_line t1 (target_req ~id:1 ~seed:42 "timebin-loop") in
  Alcotest.(check (option string)) "cold" (Some "none") (get_str [ "result"; "cached" ] r1);
  Alcotest.(check (option string)) "target in cold reply" (Some "timebin-loop")
    (get_str [ "result"; "target" ] r1);
  Serve.shutdown t1;
  (* Fresh server on the same directory: the disk hit must carry the
     target provenance back out of the stored meta, bit-identically. *)
  let t2 = Serve.create ~cache_dir:dir () in
  let r2 = Serve.handle_line t2 (target_req ~id:2 ~seed:42 "timebin-loop") in
  Alcotest.(check (option string)) "disk hit after restart" (Some "disk")
    (get_str [ "result"; "cached" ] r2);
  Alcotest.(check (option string)) "target survives the meta round-trip"
    (Some "timebin-loop")
    (get_str [ "result"; "target" ] r2);
  List.iter
    (fun field ->
       Alcotest.(check (option string))
         (field ^ " bit-identical across restart")
         (get_str [ "result"; field ] r1)
         (get_str [ "result"; field ] r2))
    [ "plan"; "unitary"; "key"; "fidelity"; "rotations" ];
  (* A target-less request with the same geometry stays a cold miss:
     the legacy key namespace is untouched. *)
  let r3 = Serve.handle_line t2 {|{"id":3,"op":"compile","params":{"modes":8,"seed":42}}|} in
  Alcotest.(check (option string)) "legacy namespace unaffected" (Some "none")
    (get_str [ "result"; "cached" ] r3);
  Serve.shutdown t2

(* ------------------------------------------------------- socket *)

let connect_with_retry path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then Alcotest.fail "server did not come up";
      Unix.sleepf 0.02;
      go ()
  in
  go ()

let send_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let rec go off =
    if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let recv_line fd =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> Alcotest.fail "server closed the connection mid-reply"
    | _ ->
      if Bytes.get one 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get one 0);
        go ()
      end
  in
  go ()

let test_socket_concurrent_clients () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "sock" in
  Sys.mkdir dir 0o755;
  (* The server owns its state entirely inside its domain. *)
  let server = Domain.spawn (fun () ->
      let t = Serve.create () in
      Serve.serve_socket t ~path)
  in
  let a = connect_with_retry path in
  let b = connect_with_retry path in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      (try Unix.close b with Unix.Unix_error _ -> ()))
    (fun () ->
       (* Interleave: both clients write before either reads. Replies
          must land on the right connection with the right id. *)
       send_line a (compile_req ~id:101 ~seed:7);
       send_line b {|{"id":202,"op":"ping"}|};
       let ra = recv_line a in
       let rb = recv_line b in
       Alcotest.(check bool) "client a ok" true (ok_reply ra);
       Alcotest.(check bool) "client b ok" true (ok_reply rb);
       let id reply =
         match Json.parse reply with
         | Ok v -> Json.mem "id" v
         | Error _ -> None
       in
       Alcotest.(check bool) "a got its own id" true (id ra = Some (Json.Num 101.));
       Alcotest.(check bool) "b got its own id" true (id rb = Some (Json.Num 202.));
       Alcotest.(check (option string)) "a is a compile reply" (Some "none")
         (get_str [ "result"; "cached" ] ra);
       (* Second request on a live connection still works. *)
       send_line b (compile_req ~id:203 ~seed:7);
       Alcotest.(check bool) "b compile ok" true (ok_reply (recv_line b));
       send_line a {|{"id":104,"op":"shutdown"}|};
       Alcotest.(check bool) "shutdown acked" true (ok_reply (recv_line a)));
  Domain.join server;
  Alcotest.(check bool) "socket file removed on exit" false (Sys.file_exists path)

let () =
  Alcotest.run "serve"
    [
      ( "store",
        [
          Alcotest.test_case "unitary string round-trip" `Quick
            test_unitary_string_roundtrip;
          Alcotest.test_case "binary codec round-trip and checksum" `Quick
            test_binary_codec_roundtrip;
          Alcotest.test_case "persists verbatim across reopen" `Quick
            test_store_persists_verbatim;
          Alcotest.test_case "mixed v1/v2 text/binary directory" `Quick
            test_mixed_version_directory;
          Alcotest.test_case "corrupt entry quarantined, not raised" `Quick
            test_corrupt_entry_quarantined;
          Alcotest.test_case "audit reports BH12xx" `Quick test_audit_reports_bh12xx;
          Alcotest.test_case "LRU eviction under the size bound" `Quick
            test_lru_eviction;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "ping/stats/sample/errors/shutdown" `Quick
            test_protocol_basics;
          Alcotest.test_case "analyze op: inline, by key, errors" `Quick
            test_analyze_op;
          Alcotest.test_case "restart disk hit is bit-identical" `Quick
            test_restart_disk_hit_bit_identical;
        ] );
      ( "target",
        [
          Alcotest.test_case "compile/analyze with target" `Quick
            test_target_compile_protocol;
          Alcotest.test_case "targeted disk hit across restart" `Quick
            test_target_restart_disk_hit;
        ] );
      ( "socket",
        [
          Alcotest.test_case "two concurrent clients" `Quick
            test_socket_concurrent_clients;
        ] );
    ]
