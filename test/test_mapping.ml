(* Unit and property tests for the qumode mapping optimization (§V). *)

module Rng = Bose_util.Rng
module Mat = Bose_linalg.Mat
module Perm = Bose_linalg.Perm
module Unitary = Bose_linalg.Unitary
open Bose_hardware
open Bose_mapping
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate

let haar seed n = Unitary.haar_random (Rng.create seed) n

let pattern24 = Embedding.for_program (Lattice.create ~rows:6 ~cols:6) 24

let test_trivial_mapping () =
  let u = haar 1 8 in
  let m = Mapping.trivial u in
  Alcotest.(check bool) "identity rows" true (Perm.is_identity m.Mapping.row_perm);
  Alcotest.(check bool) "identity cols" true (Perm.is_identity m.Mapping.col_perm);
  Alcotest.(check bool) "permuted = u" true (Mat.equal m.Mapping.permuted u);
  Alcotest.(check bool) "recovered = u" true (Mat.equal (Mapping.recovered_unitary m) u)

let test_recovered_unitary () =
  (* The zero-cost relabeling identity U = P_rᵀ·U_per·P_cᵀ (§V-B). *)
  let u = haar 2 24 in
  let m = Mapping.optimize pattern24 u in
  Alcotest.(check bool) "U recovered exactly" true
    (Mat.equal ~tol:1e-9 (Mapping.recovered_unitary m) u)

let test_permuted_still_unitary () =
  let u = haar 3 24 in
  let m = Mapping.optimize pattern24 u in
  Alcotest.(check bool) "U_per unitary" true (Mat.is_unitary m.Mapping.permuted)

let test_mapping_improves_small_angles () =
  (* The whole point of §V: more small rotations than the unmapped
     decomposition on the same pattern. Checked on several seeds. *)
  let improvements =
    List.map
      (fun seed ->
         let u = haar seed 24 in
         let plain = Eliminate.decompose pattern24 u in
         let m = Mapping.optimize pattern24 u in
         let mapped = Eliminate.decompose pattern24 m.Mapping.permuted in
         let s p = Plan.small_angle_count p ~threshold:0.1 in
         (s mapped, s plain))
      [ 10; 11; 12; 13 ]
  in
  (* Greedy search is heuristic; require improvement in aggregate and no
     catastrophic regression. *)
  let total_mapped = List.fold_left (fun a (m, _) -> a + m) 0 improvements in
  let total_plain = List.fold_left (fun a (_, p) -> a + p) 0 improvements in
  Alcotest.(check bool)
    (Printf.sprintf "mapped %d > plain %d" total_mapped total_plain)
    true (total_mapped > total_plain)

let test_small_angles_field_consistent () =
  let u = haar 4 24 in
  let m = Mapping.optimize pattern24 u in
  let plan = Eliminate.decompose pattern24 m.Mapping.permuted in
  Alcotest.(check int) "reported = recomputed" (Plan.small_angle_count plan ~threshold:0.1)
    m.Mapping.small_angles

let test_row_mass () =
  let u = haar 5 24 in
  let alpha = Mapping.main_region_row_mass pattern24 u in
  Alcotest.(check int) "one mass per row" 24 (Array.length alpha);
  Array.iter
    (fun a -> Alcotest.(check bool) "mass in [0,1]" true (a >= 0. && a <= 1. +. 1e-9))
    alpha;
  (* Total mass = number of main-path columns (unitary columns have unit
     norm). *)
  let total = Array.fold_left ( +. ) 0. alpha in
  Alcotest.(check (float 1e-6)) "total = main path size"
    (float_of_int (List.length (Pattern.main_path_labels pattern24)))
    total

let test_relabel_output () =
  let u = haar 6 24 in
  let m = Mapping.optimize pattern24 u in
  (* relabel_output maps physical pattern to logical: logical i reads
     physical row_perm(i). *)
  let physical = Array.init 24 (fun i -> i * 10) in
  let logical = Mapping.relabel_output m physical in
  for i = 0 to 23 do
    Alcotest.(check int) "relabeled" (physical.(Perm.apply m.Mapping.row_perm i)) logical.(i)
  done

let test_input_site () =
  let u = haar 7 24 in
  let m = Mapping.optimize pattern24 u in
  let sites = List.init 24 (Mapping.input_site m) in
  Alcotest.(check (list int)) "input sites are a permutation" (List.init 24 (fun i -> i))
    (List.sort compare sites)

let test_polish_preserves_identity () =
  (* The hill-climbing polish composes its swaps into the permutations,
     so the zero-cost relabeling identity must keep holding. *)
  let rng = Rng.create 20 in
  let u = haar 20 24 in
  let m = Mapping.optimize pattern24 u in
  let polished = Mapping.polish ~trials:120 ~tau:0.99 ~rng pattern24 m in
  Alcotest.(check bool) "U recovered after polish" true
    (Mat.equal ~tol:1e-8 (Mapping.recovered_unitary polished) u);
  Alcotest.(check bool) "permuted still unitary" true (Mat.is_unitary polished.Mapping.permuted)

let test_polish_does_not_regress () =
  (* The acceptance rule only ever keeps equal-or-better droppable
     counts, measured at the polish tau. *)
  let budget_count plan tau =
    let a = Plan.angles plan in
    Array.sort compare a;
    let budget = (1. -. tau) *. 24. in
    let rec go i acc =
      if i >= Array.length a then i
      else begin
        let acc = acc +. (2. *. (1. -. cos a.(i))) in
        if acc > budget then i else go (i + 1) acc
      end
    in
    go 0 0.
  in
  let rng = Rng.create 21 in
  let u = haar 21 24 in
  let m = Mapping.optimize pattern24 u in
  let before = budget_count (Eliminate.decompose pattern24 m.Mapping.permuted) 0.95 in
  let polished = Mapping.polish ~trials:150 ~tau:0.95 ~rng pattern24 m in
  let after = budget_count (Eliminate.decompose pattern24 polished.Mapping.permuted) 0.95 in
  Alcotest.(check bool)
    (Printf.sprintf "polish %d ≥ %d" after before)
    true (after >= before)

let test_size_mismatch () =
  let u = haar 8 10 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Mapping.optimize: unitary and pattern sizes differ") (fun () ->
        ignore (Mapping.optimize pattern24 u))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"optimize always recovers the original unitary" ~count:15
      (pair (int_range 2 5) (int_range 2 5))
      (fun (r, c) ->
         let lattice = Lattice.create ~rows:r ~cols:c in
         let n = Lattice.size lattice in
         let pattern = Embedding.zigzag lattice in
         let u = haar ((r * 31) + c) n in
         let m = Mapping.optimize pattern u in
         Mat.equal ~tol:1e-8 (Mapping.recovered_unitary m) u);
    Test.make ~name:"decomposing U_per and undoing perms reproduces sampling unitary"
      ~count:10 small_int
      (fun seed ->
         let lattice = Lattice.create ~rows:4 ~cols:4 in
         let pattern = Embedding.zigzag lattice in
         let u = haar seed 16 in
         let m = Mapping.optimize pattern u in
         let plan = Eliminate.decompose pattern m.Mapping.permuted in
         let u_eff =
           Perm.permute_rows
             (Perm.inverse m.Mapping.row_perm)
             (Perm.permute_cols (Perm.inverse m.Mapping.col_perm) (Plan.reconstruct plan))
         in
         Mat.equal ~tol:1e-8 u_eff u);
  ]

let () =
  Alcotest.run "bose_mapping"
    [
      ( "mapping",
        [
          Alcotest.test_case "trivial" `Quick test_trivial_mapping;
          Alcotest.test_case "recovered unitary" `Quick test_recovered_unitary;
          Alcotest.test_case "permuted unitary" `Quick test_permuted_still_unitary;
          Alcotest.test_case "improves small angles" `Quick test_mapping_improves_small_angles;
          Alcotest.test_case "small_angles field" `Quick test_small_angles_field_consistent;
          Alcotest.test_case "row mass" `Quick test_row_mass;
          Alcotest.test_case "relabel output" `Quick test_relabel_output;
          Alcotest.test_case "input sites" `Quick test_input_site;
          Alcotest.test_case "polish identity" `Quick test_polish_preserves_identity;
          Alcotest.test_case "polish monotone" `Quick test_polish_does_not_regress;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_tests);
    ]
