(* Unit and property tests for the bose_util library. *)

module Rng = Bose_util.Rng
module Stats = Bose_util.Stats
module Dist = Bose_util.Dist
module Combin = Bose_util.Combin
module Broaden = Bose_util.Broaden

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_uniform_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let u = Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 8 in
  let xs = Array.init 50_000 (fun _ -> Rng.uniform rng) in
  check_close "mean near 0.5" 0.01 0.5 (Stats.mean xs)

let test_rng_int_bounds () =
  let rng = Rng.create 9 in
  let counts = Array.make 7 0 in
  for _ = 1 to 14_000 do
    let k = Rng.int rng 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
       Alcotest.(check bool) (Printf.sprintf "bucket %d roughly uniform" i) true
         (c > 1600 && c < 2400))
    counts

let test_rng_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_gaussian_moments () =
  let rng = Rng.create 10 in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian rng) in
  check_close "mean near 0" 0.02 0. (Stats.mean xs);
  check_close "variance near 1" 0.05 1. (Stats.variance xs)

let test_rng_shuffle_is_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted

let test_choose_weighted_frequencies () =
  let rng = Rng.create 12 in
  let w = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 20_000 do
    let i = Rng.choose_weighted rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  check_close "3:1 ratio" 0.15 3.
    (float_of_int counts.(2) /. float_of_int (max 1 counts.(0)))

let test_choose_weighted_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.choose_weighted: weights sum to zero") (fun () ->
        ignore (Rng.choose_weighted rng [| 0.; 0. |]))

let test_swr_distinct_and_count () =
  let rng = Rng.create 13 in
  for _ = 1 to 200 do
    let w = Array.init 10 (fun i -> float_of_int (i mod 3)) in
    let picked = Rng.sample_without_replacement rng w 7 in
    Alcotest.(check int) "count" 7 (List.length picked);
    Alcotest.(check int) "distinct" 7 (List.length (List.sort_uniq compare picked))
  done

let test_swr_prefers_heavy () =
  let rng = Rng.create 14 in
  (* Index 0 has overwhelming weight: it must appear in a 1-of-3 draw
     almost always. *)
  let hits = ref 0 in
  for _ = 1 to 2000 do
    match Rng.sample_without_replacement rng [| 1e9; 1.; 1. |] 1 with
    | [ 0 ] -> incr hits
    | _ -> ()
  done;
  Alcotest.(check bool) "heavy index dominates" true (!hits > 1950)

let test_swr_zero_weights_come_last () =
  let rng = Rng.create 15 in
  for _ = 1 to 100 do
    match Rng.sample_without_replacement rng [| 0.; 5.; 0.; 5. |] 2 with
    | picked ->
      List.iter
        (fun i -> Alcotest.(check bool) "positive first" true (i = 1 || i = 3))
        picked
  done

let test_split_independence () =
  let parent = Rng.create 5 in
  let children = Rng.split parent 4 in
  Alcotest.(check int) "stream count" 4 (Array.length children);
  let draws = Array.map Rng.bits64 children in
  let a = Rng.bits64 parent in
  Array.iter
    (fun b ->
       Alcotest.(check bool) "parent and child streams differ" true
         (not (Int64.equal a b)))
    draws;
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      Alcotest.(check bool) "child streams pairwise differ" true
        (not (Int64.equal draws.(i) draws.(j)))
    done
  done;
  (* Same parent seed => same child streams, independent of use order. *)
  let again = Rng.split (Rng.create 5) 4 in
  Array.iteri
    (fun i c ->
       Alcotest.(check bool) "split is deterministic" true
         (Int64.equal draws.(i) (Rng.bits64 c)))
    again;
  Alcotest.(check int) "zero streams" 0 (Array.length (Rng.split parent 0))

let test_same_is_physical_identity () =
  let r = Rng.create 7 in
  Alcotest.(check bool) "same rng" true (Rng.same r r);
  Alcotest.(check bool) "copy is a fresh state" false (Rng.same r (Rng.copy r));
  Alcotest.(check bool) "of_key is a fresh state" false (Rng.same r (Rng.of_key 7L))

(* ---------------------------------------------------------------- Stats *)

let test_stats_mean_var () =
  check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  check_float "variance" (5. /. 3.) (Stats.variance [| 1.; 2.; 3.; 4. |]);
  check_float "stddev" (sqrt (5. /. 3.)) (Stats.stddev [| 1.; 2.; 3.; 4. |])

let test_stats_pearson () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  check_float "perfect positive" 1. (Stats.pearson xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_float "perfect negative" (-1.) (Stats.pearson xs zs);
  check_float "zero variance gives 0" 0. (Stats.pearson xs (Array.make 5 3.))

let test_stats_median_percentile () =
  check_float "odd median" 3. (Stats.median [| 5.; 1.; 3. |]);
  check_float "even median" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  check_float "p0" 1. (Stats.percentile [| 1.; 2.; 3. |] 0.);
  check_float "p100" 3. (Stats.percentile [| 1.; 2.; 3. |] 100.);
  check_float "p50" 2. (Stats.percentile [| 1.; 2.; 3. |] 50.)

let test_stats_histogram () =
  let h = Stats.histogram ~min:0. ~max:10. ~bins:5 [| 0.5; 1.; 9.9; 11.; -3. |] in
  Alcotest.(check (array int)) "buckets" [| 3; 0; 0; 0; 2 |] h

(* ----------------------------------------------------------------- Dist *)

let test_dist_of_counts () =
  let d = Dist.of_counts [ ("a", 1); ("b", 3) ] in
  check_float "p(a)" 0.25 (Dist.prob d "a");
  check_float "p(b)" 0.75 (Dist.prob d "b");
  check_float "p(c)" 0. (Dist.prob d "c");
  check_float "total" 1. (Dist.total d)

let test_dist_merge_duplicates () =
  let d = Dist.of_weights [ (1, 1.); (1, 1.); (2, 2.) ] in
  check_float "merged" 0.5 (Dist.prob d 1)

let test_dist_jsd_bounds () =
  let p = Dist.of_weights [ (0, 1.) ] and q = Dist.of_weights [ (1, 1.) ] in
  check_close "disjoint = ln 2" 1e-12 (log 2.) (Dist.jsd p q);
  check_float "self = 0" 0. (Dist.jsd p p);
  check_float "symmetric" (Dist.jsd p q) (Dist.jsd q p)

let test_dist_kl () =
  let p = Dist.of_weights [ (0, 0.5); (1, 0.5) ] in
  let q = Dist.of_weights [ (0, 0.25); (1, 0.75) ] in
  check_close "kl value" 1e-12
    ((0.5 *. log (0.5 /. 0.25)) +. (0.5 *. log (0.5 /. 0.75)))
    (Dist.kl p q);
  let r = Dist.of_weights [ (0, 1.) ] in
  Alcotest.(check bool) "kl infinite on missing support" true
    (Dist.kl p r = infinity)

let test_dist_tvd_fidelity () =
  let p = Dist.of_weights [ (0, 0.5); (1, 0.5) ] in
  let q = Dist.of_weights [ (0, 0.5); (1, 0.5) ] in
  check_float "tvd self" 0. (Dist.tvd p q);
  check_close "fidelity self" 1e-12 1. (Dist.fidelity p q);
  let r = Dist.of_weights [ (2, 1.) ] in
  check_float "tvd disjoint" 1. (Dist.tvd p r);
  check_float "fidelity disjoint" 0. (Dist.fidelity p r)

let test_dist_mix () =
  let p = Dist.of_weights [ (0, 1.) ] and q = Dist.of_weights [ (1, 1.) ] in
  let m = Dist.mix [ (1., p); (3., q) ] in
  check_float "mix p0" 0.25 (Dist.prob m 0);
  check_float "mix p1" 0.75 (Dist.prob m 1)

let test_dist_map_outcomes () =
  let d = Dist.of_weights [ (1, 0.25); (2, 0.25); (3, 0.5) ] in
  let e = Dist.map_outcomes (fun x -> x mod 2) d in
  check_float "odd mass" 0.75 (Dist.prob e 1);
  check_float "even mass" 0.25 (Dist.prob e 0)

let test_dist_sample_frequencies () =
  let rng = Rng.create 99 in
  let d = Dist.of_weights [ ("x", 0.2); ("y", 0.8) ] in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Dist.sample rng d = "y" then incr hits
  done;
  check_close "sample matches prob" 0.03 0.8 (float_of_int !hits /. 10_000.)

let test_dist_of_samples () =
  let d = Dist.of_samples [ 1; 1; 2; 2; 2; 3 ] in
  check_float "empirical" 0.5 (Dist.prob d 2)

(* --------------------------------------------------------------- Combin *)

let test_combin_factorial () =
  check_float "0!" 1. (Combin.factorial 0);
  check_float "5!" 120. (Combin.factorial 5);
  check_close "log 10!" 1e-9 (log (Combin.factorial 10)) (Combin.log_factorial 10)

let test_combin_binomial () =
  check_float "C(5,2)" 10. (Combin.binomial 5 2);
  check_float "C(n,0)" 1. (Combin.binomial 7 0);
  check_float "C(n,k>n)" 0. (Combin.binomial 3 5)

let test_combin_compositions () =
  let c = Combin.compositions 3 2 in
  Alcotest.(check int) "count = C(4,1)" 4 (List.length c);
  List.iter
    (fun comp -> Alcotest.(check int) "sums to 3" 3 (Combin.pattern_total comp))
    c

let test_combin_patterns () =
  let pats = Combin.patterns_up_to ~modes:3 ~max_photons:2 in
  (* C(2,2) + C(3,2) + C(4,2) = 1 + 3 + 6 *)
  Alcotest.(check int) "count" 10 (List.length pats);
  List.iter (fun p -> Alcotest.(check int) "length" 3 (List.length p)) pats

let test_combin_matchings () =
  Alcotest.(check int) "2 vertices" 1 (List.length (Combin.perfect_matchings 2));
  Alcotest.(check int) "4 vertices" 3 (List.length (Combin.perfect_matchings 4));
  Alcotest.(check int) "6 vertices" 15 (List.length (Combin.perfect_matchings 6));
  Alcotest.(check int) "odd gives none" 0 (List.length (Combin.perfect_matchings 3))

(* -------------------------------------------------------------- Broaden *)

let test_broaden_normalization () =
  (* A Lorentzian integrates to ~1 over a wide grid. *)
  let grid = Broaden.grid ~min:(-200.) ~max:200. ~points:4001 in
  let values = Broaden.broaden ~gamma:1. ~grid [ (0., 1.) ] in
  let step = 400. /. 4000. in
  let integral = Array.fold_left (fun acc v -> acc +. (v *. step)) 0. values in
  check_close "integral near 1" 0.01 1. integral

let test_broaden_peak_location () =
  let grid = Broaden.grid ~min:0. ~max:10. ~points:101 in
  let values = Broaden.broaden ~gamma:0.5 ~grid [ (4., 2.) ] in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > values.(!best) then best := i) values;
  check_close "peak at stick" 0.11 4. grid.(!best)

(* ------------------------------------------------------------ properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"jsd is within [0, ln 2]" ~count:200
      (pair (list (pair small_nat pos_float)) (list (pair small_nat pos_float)))
      (fun (a, b) ->
         let clean l = List.filter (fun (_, w) -> w > 0. && Float.is_finite w) l in
         let a = clean a and b = clean b in
         assume (a <> [] && b <> []);
         let p = Dist.of_weights a and q = Dist.of_weights b in
         let j = Dist.jsd p q in
         j >= 0. && j <= log 2. +. 1e-9);
    Test.make ~name:"tvd triangle with fidelity bound" ~count:200
      (list (pair small_nat pos_float))
      (fun a ->
         let a = List.filter (fun (_, w) -> w > 0. && Float.is_finite w) a in
         assume (a <> []);
         let p = Dist.of_weights a in
         Dist.tvd p p = 0. && Dist.fidelity p p > 1. -. 1e-9);
    Test.make ~name:"compositions count matches binomial" ~count:50
      (pair (int_range 0 6) (int_range 1 5))
      (fun (n, k) ->
         List.length (Combin.compositions n k)
         = int_of_float (Combin.binomial (n + k - 1) (k - 1)));
    Test.make ~name:"sample_without_replacement returns distinct sorted-compatible"
      ~count:100
      (pair (int_range 1 12) int)
      (fun (n, seed) ->
         let rng = Rng.create seed in
         let w = Array.init n (fun i -> float_of_int (1 + (i mod 4))) in
         let m = 1 + (abs seed mod n) in
         let picked = Rng.sample_without_replacement rng w m in
         List.length picked = m
         && List.length (List.sort_uniq compare picked) = m
         && List.for_all (fun i -> i >= 0 && i < n) picked);
  ]

let () =
  Alcotest.run "bose_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_is_permutation;
          Alcotest.test_case "weighted frequencies" `Quick test_choose_weighted_frequencies;
          Alcotest.test_case "weighted invalid" `Quick test_choose_weighted_invalid;
          Alcotest.test_case "swr distinct" `Quick test_swr_distinct_and_count;
          Alcotest.test_case "swr prefers heavy" `Quick test_swr_prefers_heavy;
          Alcotest.test_case "swr zeros last" `Quick test_swr_zero_weights_come_last;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "same identity" `Quick test_same_is_physical_identity;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/var" `Quick test_stats_mean_var;
          Alcotest.test_case "pearson" `Quick test_stats_pearson;
          Alcotest.test_case "median/percentile" `Quick test_stats_median_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "dist",
        [
          Alcotest.test_case "of_counts" `Quick test_dist_of_counts;
          Alcotest.test_case "merge duplicates" `Quick test_dist_merge_duplicates;
          Alcotest.test_case "jsd bounds" `Quick test_dist_jsd_bounds;
          Alcotest.test_case "kl" `Quick test_dist_kl;
          Alcotest.test_case "tvd/fidelity" `Quick test_dist_tvd_fidelity;
          Alcotest.test_case "mix" `Quick test_dist_mix;
          Alcotest.test_case "map_outcomes" `Quick test_dist_map_outcomes;
          Alcotest.test_case "sample frequencies" `Quick test_dist_sample_frequencies;
          Alcotest.test_case "of_samples" `Quick test_dist_of_samples;
        ] );
      ( "combin",
        [
          Alcotest.test_case "factorial" `Quick test_combin_factorial;
          Alcotest.test_case "binomial" `Quick test_combin_binomial;
          Alcotest.test_case "compositions" `Quick test_combin_compositions;
          Alcotest.test_case "patterns" `Quick test_combin_patterns;
          Alcotest.test_case "matchings" `Quick test_combin_matchings;
        ] );
      ( "broaden",
        [
          Alcotest.test_case "normalization" `Quick test_broaden_normalization;
          Alcotest.test_case "peak location" `Quick test_broaden_peak_location;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_tests);
    ]
