(* Kernel smoke check, run by `dune runtest`: the flat linalg kernels
   (gemm, Givens rotations, elimination) must agree with naive get/set
   references at N=16, and a workspace-backed decomposition must
   allocate zero matrices once the scratch is warm. Deterministic — no
   timing — so a kernel regression fails CI without flakes. *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
module Givens = Bose_linalg.Givens
module Pattern = Bose_hardware.Pattern
module Eliminate = Bose_decomp.Eliminate
module Clements = Bose_decomp.Clements
module Plan = Bose_decomp.Plan

let failures = ref 0

let check name ok =
  if ok then Printf.printf "[kernel-smoke] ok   %s\n" name
  else begin
    incr failures;
    Printf.printf "[kernel-smoke] FAIL %s\n" name
  end

let naive_mul a b =
  let open Cx in
  Mat.init (Mat.rows a) (Mat.cols b) (fun i j ->
      let acc = ref Cx.zero in
      for k = 0 to Mat.cols a - 1 do
        acc := !acc +: (Mat.get a i k *: Mat.get b k j)
      done;
      !acc)

let () =
  let n = 16 in
  let rng = Rng.create 2026 in
  let u = Unitary.haar_random rng n in
  let v = Unitary.haar_random rng n in

  (* gemm vs naive reference. *)
  let dst = Mat.create n n in
  Mat.gemm ~dst u v;
  check "gemm-16 matches naive mul" (Mat.equal ~tol:1e-10 dst (naive_mul u v));

  (* Givens rotation kernel vs dense product. *)
  let r = Givens.of_angles ~m:3 ~n:9 ~theta:0.77 ~phi:(-0.4) in
  let rotated = Mat.copy u in
  Givens.apply_t_right rotated r;
  check "givens-rot-16 matches dense product"
    (Mat.equal ~tol:1e-10 rotated (naive_mul u (Givens.matrix n r)));

  (* Chain elimination reconstructs its input. *)
  let plan = Eliminate.decompose_baseline u in
  check "decompose-16 reconstructs" (Plan.fidelity plan u > 1. -. 1e-9);

  (* Clements agrees with elimination on the same unitary. *)
  let c = Clements.decompose u in
  check "clements-16 reconstructs" (Mat.equal ~tol:1e-8 (Clements.reconstruct c) u);

  (* Workspace discipline: after a warm-up decomposition, a ws-backed
     decompose allocates zero matrices. *)
  let ws = Mat.workspace () in
  ignore (Eliminate.decompose ~ws (Pattern.chain n) u);
  let before = Mat.allocations () in
  ignore (Eliminate.decompose ~ws (Pattern.chain n) u);
  check "ws decompose allocates no matrices" (Mat.allocations () = before);
  ignore (Plan.fidelity ~ws plan u);
  let before = Mat.allocations () in
  ignore (Plan.fidelity ~ws plan u);
  check "ws fidelity allocates no matrices" (Mat.allocations () = before);

  if !failures > 0 then exit 1
