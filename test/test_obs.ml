(* Tests for the bose_obs telemetry layer: span nesting, counter and
   gauge accumulation, histogram bucketing, JSON round-trip of the
   report, and the no-observable-effect guarantee (a compiler run with
   telemetry enabled produces byte-identical circuits). *)

module Obs = Bose_obs.Obs
module Rng = Bose_util.Rng
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Circuit = Bose_circuit.Circuit
open Bosehedral

(* Every test runs against the same global registry: start from a clean
   window and leave recording off for the next test. *)
let with_clean_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* ------------------------------------------------------------ counters *)

let test_counter_accumulation () =
  with_clean_obs (fun () ->
      let c = Obs.Counter.make "test.counter_acc" in
      Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
      Obs.Counter.incr c;
      Obs.Counter.incr c;
      Obs.Counter.incr c ~by:5;
      Alcotest.(check int) "accumulates" 7 (Obs.Counter.value c);
      let c' = Obs.Counter.make "test.counter_acc" in
      Obs.Counter.incr c';
      Alcotest.(check int) "make is idempotent per name" 8 (Obs.Counter.value c))

let test_counter_disabled_is_noop () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.Counter.make "test.counter_off" in
  Obs.Counter.incr c ~by:100;
  Alcotest.(check int) "disabled incr does not count" 0 (Obs.Counter.value c)

(* -------------------------------------------------------------- gauges *)

let test_gauge_set_and_max () =
  with_clean_obs (fun () ->
      let g = Obs.Gauge.make "test.gauge" in
      Alcotest.(check (option (float 0.))) "unset" None (Obs.Gauge.value g);
      Obs.Gauge.set g 3.5;
      Alcotest.(check (option (float 0.))) "set" (Some 3.5) (Obs.Gauge.value g);
      Obs.Gauge.set g 1.0;
      Alcotest.(check (option (float 0.))) "set overwrites" (Some 1.0) (Obs.Gauge.value g);
      let m = Obs.Gauge.make "test.gauge_max" in
      Obs.Gauge.observe_max m 2.;
      Obs.Gauge.observe_max m 7.;
      Obs.Gauge.observe_max m 4.;
      Alcotest.(check (option (float 0.))) "keeps max" (Some 7.) (Obs.Gauge.value m);
      Obs.reset ();
      Alcotest.(check (option (float 0.))) "reset clears" None (Obs.Gauge.value g))

(* ---------------------------------------------------------- histograms *)

let test_histogram_buckets () =
  with_clean_obs (fun () ->
      let h = Obs.Histo.make "test.histo" ~bounds:[| 0.1; 1.0 |] in
      List.iter (Obs.Histo.observe h) [ 0.05; 0.1; 0.5; 2.0; 3.0 ];
      Alcotest.(check int) "total" 5 (Obs.Histo.total h);
      let r = Obs.Report.capture () in
      match List.find_opt (fun hh -> hh.Obs.Report.name = "test.histo") r.Obs.Report.histograms with
      | None -> Alcotest.fail "histogram missing from report"
      | Some hh ->
        Alcotest.(check (array int)) "bucket counts (<=0.1, <=1.0, overflow)"
          [| 2; 1; 2 |] hh.Obs.Report.counts;
        Alcotest.(check (float 1e-9)) "sum" 5.65 hh.Obs.Report.sum)

let test_histogram_bad_bounds () =
  Alcotest.check_raises "non-increasing bounds rejected"
    (Invalid_argument "Obs.Histo.make: bounds must be strictly increasing")
    (fun () -> ignore (Obs.Histo.make "test.histo_bad" ~bounds:[| 1.0; 1.0 |]))

(* --------------------------------------------------------------- spans *)

let test_span_nesting () =
  with_clean_obs (fun () ->
      let result =
        Obs.Span.with_ "test.outer" (fun () ->
            let x = Obs.Span.with_ "test.inner" (fun () -> 21) in
            let y = Obs.Span.with_ "test.inner" (fun () -> 21) in
            x + y)
      in
      Alcotest.(check int) "value passes through" 42 result;
      let r = Obs.Report.capture () in
      match (Obs.Report.span r "test.outer", Obs.Report.span r "test.inner") with
      | Some outer, Some inner ->
        Alcotest.(check int) "outer count" 1 outer.Obs.Report.count;
        Alcotest.(check int) "inner count" 2 inner.Obs.Report.count;
        Alcotest.(check int) "outer depth" 0 outer.Obs.Report.depth;
        Alcotest.(check int) "inner depth" 1 inner.Obs.Report.depth;
        Alcotest.(check bool) "inner time within outer" true
          (inner.Obs.Report.total_s <= outer.Obs.Report.total_s +. 1e-9)
      | _ -> Alcotest.fail "span missing from report")

let test_span_survives_exception () =
  with_clean_obs (fun () ->
      (try Obs.Span.with_ "test.raiser" (fun () -> failwith "boom")
       with Failure _ -> ());
      let r = Obs.Report.capture () in
      (match Obs.Report.span r "test.raiser" with
       | Some s -> Alcotest.(check int) "span closed despite raise" 1 s.Obs.Report.count
       | None -> Alcotest.fail "span missing after exception");
      (* Nesting depth must be balanced again: a fresh top-level span
         reports depth 0. *)
      Obs.Span.with_ "test.after_raise" (fun () -> ());
      let r = Obs.Report.capture () in
      match Obs.Report.span r "test.after_raise" with
      | Some s -> Alcotest.(check int) "depth rebalanced" 0 s.Obs.Report.depth
      | None -> Alcotest.fail "follow-up span missing")

let test_span_disabled_is_identity () =
  Obs.reset ();
  Obs.disable ();
  let v = Obs.Span.with_ "test.disabled_span" (fun () -> 99) in
  Alcotest.(check int) "value" 99 v;
  let r = Obs.Report.capture () in
  Alcotest.(check bool) "no span recorded" true
    (Obs.Report.span r "test.disabled_span" = None)

(* ----------------------------------------------------- JSON round-trip *)

let test_json_roundtrip () =
  with_clean_obs (fun () ->
      let c = Obs.Counter.make "test.rt_counter" in
      Obs.Counter.incr c ~by:12345;
      let g = Obs.Gauge.make "test.rt_gauge" in
      Obs.Gauge.set g 0.123456789012345678;
      let h = Obs.Histo.make "test.rt_histo" ~bounds:[| 0.5; 1.5 |] in
      Obs.Histo.observe h 0.25;
      Obs.Histo.observe h 10.;
      Obs.Span.with_ "test.rt_span" (fun () ->
          Obs.Span.with_ "test.rt_span.child" (fun () -> ()));
      let r = Obs.Report.capture () in
      match Obs.Report.of_json (Obs.Report.to_json r) with
      | Error msg -> Alcotest.fail ("round-trip failed: " ^ msg)
      | Ok r' ->
        Alcotest.(check bool) "round-trip is exact (incl. floats)" true (r = r'))

let test_json_rejects_garbage () =
  let bad input =
    match Obs.Report.of_json input with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "not json" true (bad "hello");
  Alcotest.(check bool) "missing fields" true (bad "{\"version\":1}");
  Alcotest.(check bool) "wrong version" true
    (bad "{\"version\":2,\"spans\":[],\"counters\":[],\"gauges\":[],\"histograms\":[]}");
  Alcotest.(check bool) "trailing garbage" true
    (bad "{\"version\":1,\"spans\":[],\"counters\":[],\"gauges\":[],\"histograms\":[]}x")

let test_json_escaping () =
  with_clean_obs (fun () ->
      let c = Obs.Counter.make "test.\"quoted\\name\"\n" in
      Obs.Counter.incr c;
      let r = Obs.Report.capture () in
      match Obs.Report.of_json (Obs.Report.to_json r) with
      | Error msg -> Alcotest.fail ("escaped round-trip failed: " ^ msg)
      | Ok r' ->
        Alcotest.(check (option int)) "escaped name survives"
          (Some 1)
          (Obs.Report.counter r' "test.\"quoted\\name\"\n"))

(* ------------------------------------- telemetry has no observable effect *)

(* Compile the same program twice — telemetry off, then on — and require
   byte-identical results: same plan, same policy, same per-shot
   circuits. Telemetry must never touch RNG streams or control flow. *)
let compile_once () =
  let rng = Rng.create 20240806 in
  let u = Unitary.haar_random rng 8 in
  let device = Lattice.create ~rows:3 ~cols:3 in
  let compiled = Compiler.compile ~rng ~device ~config:Config.Full_opt ~tau:0.99 u in
  let circuits = List.init 5 (fun _ -> Compiler.shot_circuit rng compiled) in
  (compiled, circuits)

let test_disabled_and_enabled_runs_identical () =
  Obs.reset ();
  Obs.disable ();
  let compiled_off, circuits_off = compile_once () in
  let r = Obs.Report.capture () in
  Alcotest.(check bool) "disabled run records nothing" true (Obs.Report.is_empty r);
  let compiled_on, circuits_on =
    with_clean_obs (fun () -> compile_once ())
  in
  Alcotest.(check bool) "plans identical" true
    (compiled_off.Compiler.plan = compiled_on.Compiler.plan);
  Alcotest.(check bool) "policies identical" true
    (compiled_off.Compiler.policy = compiled_on.Compiler.policy);
  List.iter2
    (fun a b ->
       Alcotest.(check bool) "shot circuits byte-identical" true
         (Circuit.gates a = Circuit.gates b))
    circuits_off circuits_on

let test_enabled_compile_records_pass_spans () =
  let report =
    with_clean_obs (fun () ->
        ignore (compile_once ());
        Obs.Report.capture ())
  in
  List.iter
    (fun name ->
       match Obs.Report.span report name with
       | Some s ->
         Alcotest.(check bool) (name ^ " ran") true (s.Obs.Report.count > 0)
       | None -> Alcotest.fail ("missing pass span " ^ name))
    [ "compile"; "compile.embed"; "compile.map"; "compile.decompose"; "compile.dropout" ];
  List.iter
    (fun name ->
       match Obs.Report.counter report name with
       | Some v -> Alcotest.(check bool) (name ^ " nonzero") true (v > 0)
       | None -> Alcotest.fail ("missing counter " ^ name))
    [ "decomp.eliminations"; "decomp.beamsplitters"; "dropout.dropped_gates";
      "circuit.beamsplitters_emitted"; "map.polish_trials" ]

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "accumulation" `Quick test_counter_accumulation;
          Alcotest.test_case "disabled is a no-op" `Quick test_counter_disabled_is_noop;
        ] );
      ( "gauges",
        [ Alcotest.test_case "set and observe_max" `Quick test_gauge_set_and_max ] );
      ( "histograms",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_buckets;
          Alcotest.test_case "bad bounds rejected" `Quick test_histogram_bad_bounds;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_survives_exception;
          Alcotest.test_case "disabled is identity" `Quick test_span_disabled_is_identity;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "name escaping" `Quick test_json_escaping;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "off/on runs byte-identical" `Quick
            test_disabled_and_enabled_runs_identical;
          Alcotest.test_case "pass spans recorded" `Quick
            test_enabled_compile_records_pass_spans;
        ] );
    ]
