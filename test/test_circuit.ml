(* Unit tests for the bose_circuit library. *)

module Cx = Bose_linalg.Cx
open Bose_circuit

let test_gate_qumodes () =
  Alcotest.(check (list int)) "squeeze" [ 2 ] (Gate.qumodes (Gate.Squeeze (2, Cx.re 0.5)));
  Alcotest.(check (list int)) "bs" [ 1; 4 ] (Gate.qumodes (Gate.Beamsplitter (1, 4, 0.3, 0.)));
  Alcotest.(check bool) "bs two-qumode" true (Gate.is_two_qumode (Gate.Beamsplitter (0, 1, 0.1, 0.)));
  Alcotest.(check bool) "phase single" false (Gate.is_two_qumode (Gate.Phase (0, 0.1)))

let test_gate_validate () =
  Gate.validate ~modes:3 (Gate.Phase (2, 0.1));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Gate.validate: qumode 3 out of range [0,3)") (fun () ->
        Gate.validate ~modes:3 (Gate.Phase (3, 0.1)));
  Alcotest.check_raises "self beamsplitter"
    (Invalid_argument "Gate.validate: beamsplitter on a single qumode") (fun () ->
        Gate.validate ~modes:3 (Gate.Beamsplitter (1, 1, 0.1, 0.)))

let test_gate_mzi () =
  match Gate.mzi ~m:0 ~n:1 ~theta:0.3 ~phi:0.7 with
  | [ Gate.Phase (0, phi); Gate.Beamsplitter (0, 1, theta, 0.) ] ->
    Alcotest.(check (float 1e-12)) "phi" 0.7 phi;
    Alcotest.(check (float 1e-12)) "theta" 0.3 theta
  | _ -> Alcotest.fail "unexpected MZI structure"

let test_circuit_counts () =
  let c =
    Circuit.add_all (Circuit.create ~modes:4)
      [
        Gate.Squeeze (0, Cx.re 0.3);
        Gate.Squeeze (1, Cx.re 0.3);
        Gate.Phase (0, 0.1);
        Gate.Beamsplitter (0, 1, 0.2, 0.);
        Gate.Beamsplitter (2, 3, 0.2, 0.);
        Gate.Displace (3, Cx.i);
      ]
  in
  let k = Circuit.gate_counts c in
  Alcotest.(check int) "S" 2 k.Circuit.squeezing;
  Alcotest.(check int) "R" 1 k.Circuit.phase_shifter;
  Alcotest.(check int) "BS" 2 k.Circuit.beamsplitter;
  Alcotest.(check int) "D" 1 k.Circuit.displacement;
  Alcotest.(check int) "length" 6 (Circuit.length c)

let test_circuit_order_preserved () =
  let c =
    Circuit.add_all (Circuit.create ~modes:2) [ Gate.Phase (0, 1.); Gate.Phase (1, 2.) ]
  in
  match Circuit.gates c with
  | [ Gate.Phase (0, a); Gate.Phase (1, b) ] ->
    Alcotest.(check (float 0.)) "first" 1. a;
    Alcotest.(check (float 0.)) "second" 2. b
  | _ -> Alcotest.fail "order not preserved"

let test_circuit_invalid_gate () =
  Alcotest.check_raises "bad qumode"
    (Invalid_argument "Gate.validate: qumode 5 out of range [0,2)") (fun () ->
        ignore (Circuit.add (Circuit.create ~modes:2) (Gate.Phase (5, 0.))))

let test_two_qumode_pairs () =
  let c =
    Circuit.add_all (Circuit.create ~modes:4)
      [
        Gate.Beamsplitter (2, 1, 0.1, 0.);
        Gate.Beamsplitter (1, 2, 0.4, 0.);
        Gate.Beamsplitter (0, 3, 0.2, 0.);
      ]
  in
  Alcotest.(check (list (pair int int))) "normalized distinct pairs" [ (0, 3); (1, 2) ]
    (Circuit.two_qumode_pairs c)

let test_check_connectivity () =
  let c =
    Circuit.add_all (Circuit.create ~modes:4)
      [ Gate.Beamsplitter (0, 1, 0.1, 0.); Gate.Beamsplitter (0, 3, 0.1, 0.) ]
  in
  let line a b = abs (a - b) = 1 in
  Alcotest.(check (list (pair int int))) "violations" [ (0, 3) ]
    (Circuit.check_connectivity line c)

let test_noise_model () =
  let m = Noise.uniform 0.05 in
  Noise.validate m;
  Alcotest.(check (float 1e-12)) "bs loss" 0.05
    (Noise.loss_of_gate m (Gate.Beamsplitter (0, 1, 0.1, 0.)));
  Alcotest.(check (float 1e-12)) "single loss" 0.005
    (Noise.loss_of_gate m (Gate.Phase (0, 0.1)));
  Alcotest.(check (float 1e-12)) "ideal" 0.
    (Noise.loss_of_gate Noise.ideal (Gate.Beamsplitter (0, 1, 0.1, 0.)))

let test_noise_invalid () =
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Noise.validate: beamsplitter_loss out of [0,1]") (fun () ->
        Noise.validate { Noise.beamsplitter_loss = 1.5; single_qumode_loss = 0. })

let () =
  Alcotest.run "bose_circuit"
    [
      ( "gate",
        [
          Alcotest.test_case "qumodes" `Quick test_gate_qumodes;
          Alcotest.test_case "validate" `Quick test_gate_validate;
          Alcotest.test_case "mzi block" `Quick test_gate_mzi;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "gate counts" `Quick test_circuit_counts;
          Alcotest.test_case "order preserved" `Quick test_circuit_order_preserved;
          Alcotest.test_case "invalid gate" `Quick test_circuit_invalid_gate;
          Alcotest.test_case "two-qumode pairs" `Quick test_two_qumode_pairs;
          Alcotest.test_case "connectivity check" `Quick test_check_connectivity;
        ] );
      ( "noise",
        [
          Alcotest.test_case "model" `Quick test_noise_model;
          Alcotest.test_case "invalid" `Quick test_noise_invalid;
        ] );
    ]
