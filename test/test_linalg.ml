(* Unit and property tests for the bose_linalg library. *)

module Rng = Bose_util.Rng
open Bose_linalg

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------------- Cx *)

let test_cx_arith () =
  let a = Cx.make 1. 2. and b = Cx.make 3. (-1.) in
  Alcotest.(check bool) "add" true Cx.(is_close (a +: b) (make 4. 1.));
  Alcotest.(check bool) "mul" true Cx.(is_close (a *: b) (make 5. 5.));
  check_close "abs2" 1e-12 5. (Cx.abs2 a);
  Alcotest.(check bool) "exp_i" true Cx.(is_close (exp_i Float.pi) (make (-1.) 0.) ~tol:1e-12)

(* ------------------------------------------------------------------ Mat *)

let test_mat_identity_mul () =
  let rng = Rng.create 1 in
  let a = Unitary.haar_random rng 5 in
  Alcotest.(check bool) "I·a = a" true (Mat.equal (Mat.mul (Mat.identity 5) a) a);
  Alcotest.(check bool) "a·I = a" true (Mat.equal (Mat.mul a (Mat.identity 5)) a)

let test_mat_adjoint_involution () =
  let rng = Rng.create 2 in
  let a = Unitary.haar_random rng 4 in
  Alcotest.(check bool) "(a†)† = a" true (Mat.equal (Mat.adjoint (Mat.adjoint a)) a)

let test_mat_mul_associative () =
  let rng = Rng.create 3 in
  let a = Unitary.haar_random rng 4
  and b = Unitary.haar_random rng 4
  and c = Unitary.haar_random rng 4 in
  Alcotest.(check bool) "(ab)c = a(bc)" true
    (Mat.equal ~tol:1e-12 (Mat.mul (Mat.mul a b) c) (Mat.mul a (Mat.mul b c)))

let test_mat_trace_frobenius () =
  let m = Mat.of_arrays [| [| Cx.re 1.; Cx.i |]; [| Cx.zero; Cx.re 3. |] |] in
  Alcotest.(check bool) "trace" true (Cx.is_close (Mat.trace m) (Cx.re 4.));
  check_close "frobenius" 1e-12 (sqrt 11.) (Mat.frobenius_norm m)

let test_mat_row_col_norms () =
  let rng = Rng.create 4 in
  let u = Unitary.haar_random rng 6 in
  for i = 0 to 5 do
    check_close "unit row" 1e-10 1. (Mat.row_norm2 u i);
    check_close "unit col" 1e-10 1. (Mat.col_norm2 u i)
  done

let test_mat_swap () =
  let m = Mat.of_arrays [| [| Cx.re 1.; Cx.re 2. |]; [| Cx.re 3.; Cx.re 4. |] |] in
  Mat.swap_rows m 0 1;
  Alcotest.(check bool) "rows swapped" true (Cx.is_close (Mat.get m 0 0) (Cx.re 3.));
  Mat.swap_cols m 0 1;
  Alcotest.(check bool) "cols swapped" true (Cx.is_close (Mat.get m 0 0) (Cx.re 4.))

let test_mat_fidelity_metric () =
  let rng = Rng.create 5 in
  let u = Unitary.haar_random rng 8 in
  check_close "self fidelity" 1e-10 1. (Mat.unitary_fidelity u u);
  (* Global phase leaves the modulus-based fidelity at 1. *)
  let phased = Mat.scale (Cx.exp_i 0.7) u in
  check_close "phase invariant" 1e-10 1. (Mat.unitary_fidelity phased u);
  (* Against an independent Haar unitary the overlap is far below 1. *)
  let v = Unitary.haar_random rng 8 in
  Alcotest.(check bool) "random pair below 0.9" true (Mat.unitary_fidelity u v < 0.9)

let test_rot_cols_roundtrip () =
  let rng = Rng.create 6 in
  let u = Unitary.haar_random rng 7 in
  let w = Mat.copy u in
  Mat.rot_cols_t_dagger w ~m:2 ~n:5 ~theta:0.43 ~phi:1.2;
  Alcotest.(check bool) "changed" true (not (Mat.equal w u));
  Alcotest.(check bool) "still unitary" true (Mat.is_unitary w);
  Mat.rot_cols_t w ~m:2 ~n:5 ~theta:0.43 ~phi:1.2;
  Alcotest.(check bool) "restored" true (Mat.equal ~tol:1e-12 w u)

let test_rot_matches_dense () =
  (* The in-place kernel must agree with dense multiplication by T†. *)
  let rng = Rng.create 7 in
  let u = Unitary.haar_random rng 5 in
  let r = Givens.of_angles ~m:1 ~n:3 ~theta:0.7 ~phi:(-0.4) in
  let kernel = Mat.copy u in
  Givens.apply_t_dagger_right kernel r;
  let dense = Mat.mul u (Mat.adjoint (Givens.matrix 5 r)) in
  Alcotest.(check bool) "kernel = dense" true (Mat.equal ~tol:1e-12 kernel dense)

(* --------------------------------------------------------------- Givens *)

let test_givens_eliminates () =
  let rng = Rng.create 8 in
  let u = Unitary.haar_random rng 6 in
  let w = Mat.copy u in
  let before = Cx.abs2 (Mat.get w 5 2) +. Cx.abs2 (Mat.get w 5 4) in
  let rot = Givens.eliminate w ~row:5 ~m:2 ~n:4 in
  check_close "entry zeroed" 1e-12 0. (Cx.abs (Mat.get w 5 2));
  check_close "amplitude accumulated" 1e-10 before (Cx.abs2 (Mat.get w 5 4));
  let theta = Givens.theta rot in
  Alcotest.(check bool) "theta in range" true (theta >= 0. && theta <= Float.pi /. 2.)

let test_givens_small_angle_for_small_entry () =
  (* Eliminating a small entry against a large one gives a small theta. *)
  let m =
    Mat.of_arrays
      [| [| Cx.re 0.0995; Cx.re 0.995; Cx.zero |];
         [| Cx.re 0.995; Cx.re (-0.0995); Cx.zero |];
         [| Cx.zero; Cx.zero; Cx.one |] |]
  in
  let theta = Givens.angle_for m ~row:0 ~m:0 ~n:1 in
  check_close "theta = atan(0.1)" 1e-6 (atan 0.1) theta

let test_givens_zero_entry () =
  let m = Mat.identity 3 in
  let rot = Givens.eliminate m ~row:0 ~m:1 ~n:2 in
  check_close "theta 0 when already zero" 1e-12 0. (Givens.theta rot)

(* ----------------------------------------------------------------- Perm *)

let test_perm_compose_inverse () =
  let rng = Rng.create 9 in
  let p = Perm.random rng 10 and q = Perm.random rng 10 in
  Alcotest.(check bool) "p∘p⁻¹ = id" true (Perm.is_identity (Perm.compose p (Perm.inverse p)));
  let pq = Perm.compose p q in
  for i = 0 to 9 do
    Alcotest.(check int) "compose applies q first" (Perm.apply p (Perm.apply q i))
      (Perm.apply pq i)
  done

let test_perm_matrix_consistency () =
  let rng = Rng.create 10 in
  let p = Perm.random rng 6 in
  let u = Unitary.haar_random rng 6 in
  (* permute_rows p u = P·u with P = matrix p. *)
  Alcotest.(check bool) "row perm = P·u" true
    (Mat.equal (Perm.permute_rows p u) (Mat.mul (Perm.matrix p) u));
  (* permute_cols p u = u·Pᵀ. *)
  Alcotest.(check bool) "col perm = u·Pᵀ" true
    (Mat.equal (Perm.permute_cols p u) (Mat.mul u (Mat.transpose (Perm.matrix p))))

let test_perm_permute_list () =
  let p = Perm.of_array [| 2; 0; 1 |] in
  Alcotest.(check (list string)) "list relabeled" [ "b"; "c"; "a" ]
    (Perm.permute_list p [ "a"; "b"; "c" ])

let test_perm_invalid () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Perm.of_array: not a permutation")
    (fun () -> ignore (Perm.of_array [| 0; 0; 2 |]))

(* -------------------------------------------------------------- Unitary *)

let test_qr_reconstruction () =
  let rng = Rng.create 11 in
  let a =
    Mat.init 6 6 (fun _ _ ->
        let re, im = Rng.gaussian_pair rng in
        Cx.make re im)
  in
  let q, r = Unitary.qr a in
  Alcotest.(check bool) "q unitary" true (Mat.is_unitary q);
  Alcotest.(check bool) "qr = a" true (Mat.equal ~tol:1e-10 (Mat.mul q r) a);
  (* r upper triangular *)
  let ok = ref true in
  for i = 0 to 5 do
    for j = 0 to i - 1 do
      if Cx.abs (Mat.get r i j) > 1e-10 then ok := false
    done
  done;
  Alcotest.(check bool) "r triangular" true !ok

let test_haar_unitary () =
  let rng = Rng.create 12 in
  List.iter
    (fun n -> Alcotest.(check bool) "unitary" true (Mat.is_unitary (Unitary.haar_random rng n)))
    [ 1; 2; 5; 16 ]

let test_orthogonal_real () =
  let rng = Rng.create 13 in
  let o = Unitary.random_orthogonal rng 7 in
  Alcotest.(check bool) "unitary" true (Mat.is_unitary o);
  let all_real = ref true in
  for i = 0 to 6 do
    for j = 0 to 6 do
      if Float.abs (Mat.get o i j).Complex.im > 1e-12 then all_real := false
    done
  done;
  Alcotest.(check bool) "entries real" true !all_real

(* ---------------------------------------------------------------- Eigen *)

let test_eigen_known () =
  let lambda, v = Eigen.jacobi [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  check_close "λ₁" 1e-9 3. lambda.(0);
  check_close "λ₂" 1e-9 1. lambda.(1);
  (* Eigenvector for λ=3 is (1,1)/√2 up to sign. *)
  check_close "evec component" 1e-9 (Float.abs v.(0).(0)) (Float.abs v.(1).(0))

let test_eigen_reconstruct () =
  let rng = Rng.create 14 in
  let n = 8 in
  let a =
    Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian rng))
  in
  let sym = Array.init n (fun i -> Array.init n (fun j -> (a.(i).(j) +. a.(j).(i)) /. 2.)) in
  let lambda, v = Eigen.jacobi sym in
  let recon = Eigen.reconstruct lambda v in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      worst := Float.max !worst (Float.abs (recon.(i).(j) -. sym.(i).(j)))
    done
  done;
  Alcotest.(check bool) "reconstruction" true (!worst < 1e-8);
  (* eigenvalues decreasing *)
  for i = 0 to n - 2 do
    Alcotest.(check bool) "sorted" true (lambda.(i) >= lambda.(i + 1))
  done

let test_eigen_rejects_asymmetric () =
  Alcotest.check_raises "asymmetric" (Invalid_argument "Eigen.jacobi: not symmetric")
    (fun () -> ignore (Eigen.jacobi [| [| 1.; 2. |]; [| 0.; 1. |] |]))

(* --------------------------------------------------------------- Takagi *)

let test_takagi_roundtrip () =
  let rng = Rng.create 15 in
  let n = 7 in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian rng)) in
  let sym = Array.init n (fun i -> Array.init n (fun j -> (a.(i).(j) +. a.(j).(i)) /. 2.)) in
  let lambda, u = Takagi.decompose sym in
  Alcotest.(check bool) "u unitary" true (Mat.is_unitary u);
  Array.iter (fun l -> Alcotest.(check bool) "λ ≥ 0" true (l >= 0.)) lambda;
  Alcotest.(check bool) "A = U·diag·Uᵀ" true
    (Mat.equal ~tol:1e-8 (Takagi.reconstruct lambda u) (Mat.of_real sym))

(* ------------------------------------------------------------- Linsolve *)

let test_linsolve_known_det () =
  let m = Mat.of_arrays [| [| Cx.re 2.; Cx.re 1. |]; [| Cx.re 1.; Cx.re 3. |] |] in
  Alcotest.(check bool) "det" true (Cx.is_close (Linsolve.det m) (Cx.re 5.))

let test_linsolve_unitary_det_modulus () =
  let rng = Rng.create 16 in
  let u = Unitary.haar_random rng 6 in
  check_close "det modulus 1" 1e-9 1. (Cx.abs (Linsolve.det u))

let test_linsolve_inverse () =
  let rng = Rng.create 17 in
  let a =
    Mat.init 6 6 (fun _ _ ->
        let re, im = Rng.gaussian_pair rng in
        Cx.make re im)
  in
  let inv = Linsolve.inverse a in
  Alcotest.(check bool) "a·a⁻¹ = I" true (Mat.equal ~tol:1e-9 (Mat.mul a inv) (Mat.identity 6))

let test_linsolve_solve () =
  let rng = Rng.create 18 in
  let a = Unitary.haar_random rng 5 in
  let b = Array.init 5 (fun i -> Cx.make (float_of_int i) 1.) in
  let x = Linsolve.solve a b in
  let residual = Mat.mul_vec a x in
  Array.iteri
    (fun i r -> Alcotest.(check bool) "residual" true (Cx.is_close ~tol:1e-9 r b.(i)))
    residual

let test_linsolve_singular () =
  let m = Mat.create 3 3 in
  Alcotest.check_raises "singular" (Invalid_argument "Linsolve: singular matrix") (fun () ->
      ignore (Linsolve.det m))

(* -------------------------------------------------------------- kernels *)

(* Naive get/set references for the flat kernels: everything below only
   touches the public element API, so a layout or blocking bug in the
   kernels cannot also be in the reference. *)

let random_mat rng rows cols =
  Mat.init rows cols (fun _ _ ->
      let re, im = Rng.gaussian_pair rng in
      Cx.make re im)

let naive_mul a b =
  let open Cx in
  Mat.init (Mat.rows a) (Mat.cols b) (fun i j ->
      let acc = ref Cx.zero in
      for k = 0 to Mat.cols a - 1 do
        acc := !acc +: (Mat.get a i k *: Mat.get b k j)
      done;
      !acc)

let test_of_arrays_zero_cols () =
  Alcotest.check_raises "zero columns" (Invalid_argument "Mat.of_arrays: zero columns")
    (fun () -> ignore (Mat.of_arrays [| [||]; [||] |]))

let test_gemm_matches_naive () =
  let rng = Rng.create 40 in
  (* Non-square shapes, including degenerate 1×1, straddle the blocking
     boundary (block size 64 needs > 64 columns to exercise wraparound). *)
  List.iter
    (fun (m, k, n) ->
       let a = random_mat rng m k and b = random_mat rng k n in
       let dst = Mat.create m n in
       Mat.gemm ~dst a b;
       Alcotest.(check bool)
         (Printf.sprintf "gemm %dx%d·%dx%d" m k k n)
         true
         (Mat.equal ~tol:1e-10 dst (naive_mul a b));
       (* acc:true adds on top. *)
       Mat.gemm ~acc:true ~dst a b;
       Alcotest.(check bool) "gemm acc" true
         (Mat.equal ~tol:1e-10 dst (Mat.scale (Cx.re 2.) (naive_mul a b))))
    [ (1, 1, 1); (3, 5, 4); (5, 3, 7); (8, 8, 8); (2, 70, 3) ]

let test_gemm_variants_match_naive () =
  let rng = Rng.create 41 in
  let a = random_mat rng 4 6 and b = random_mat rng 5 6 in
  let dst = Mat.create 4 5 in
  Mat.gemm_adjoint ~dst a b;
  Alcotest.(check bool) "gemm_adjoint = a·b†" true
    (Mat.equal ~tol:1e-10 dst (naive_mul a (Mat.adjoint b)));
  let c = random_mat rng 6 4 and d = random_mat rng 6 5 in
  let dst2 = Mat.create 4 5 in
  Mat.gemm_adjoint_left ~dst:dst2 c d;
  Alcotest.(check bool) "gemm_adjoint_left = c†·d" true
    (Mat.equal ~tol:1e-10 dst2 (naive_mul (Mat.adjoint c) d));
  let e = random_mat rng 4 6 and f = random_mat rng 5 6 in
  let dst3 = Mat.create 4 5 in
  Mat.gemm_transpose ~dst:dst3 e f;
  Alcotest.(check bool) "gemm_transpose = e·fᵀ" true
    (Mat.equal ~tol:1e-10 dst3 (naive_mul e (Mat.transpose f)))

let test_gemm_rejects_aliasing () =
  let m = Mat.identity 3 in
  Alcotest.check_raises "dst aliases a" (Invalid_argument "Mat.gemm: dst aliases an input")
    (fun () -> Mat.gemm ~dst:m m (Mat.identity 3))

let test_axpy_scale_match_reference () =
  let rng = Rng.create 42 in
  let x = random_mat rng 3 5 and y = random_mat rng 3 5 in
  let alpha = Cx.make 0.3 (-1.1) in
  let expected =
    Mat.init 3 5 (fun i j -> Cx.( +: ) (Mat.get y i j) (Cx.( *: ) alpha (Mat.get x i j)))
  in
  let y' = Mat.copy y in
  Mat.axpy alpha x y';
  Alcotest.(check bool) "axpy" true (Mat.equal ~tol:1e-12 y' expected);
  let s = Mat.copy x in
  Mat.scale_inplace alpha s;
  Alcotest.(check bool) "scale_inplace = scale" true
    (Mat.equal ~tol:1e-12 s (Mat.scale alpha x))

let test_rot_rows_matches_dense () =
  let rng = Rng.create 43 in
  let u = Unitary.haar_random rng 5 in
  let r = Givens.of_angles ~m:0 ~n:4 ~theta:1.1 ~phi:0.3 in
  let kernel = Mat.copy u in
  Givens.apply_t_left kernel r;
  Alcotest.(check bool) "T·u" true
    (Mat.equal ~tol:1e-12 kernel (Mat.mul (Givens.matrix 5 r) u));
  let kernel2 = Mat.copy u in
  Givens.apply_t_dagger_left kernel2 r;
  Alcotest.(check bool) "T†·u" true
    (Mat.equal ~tol:1e-12 kernel2 (Mat.mul (Mat.adjoint (Givens.matrix 5 r)) u))

(* The ranged kernels (?nrows on column rotations, ?first on row
   rotations) must match the full kernel on the covered range and
   leave everything outside it untouched. *)
let test_ranged_rotations () =
  let rng = Rng.create 47 in
  let u = random_mat rng 7 7 in
  let c = cos 0.9 and s = sin 0.9 in
  let ere = cos (-0.7) and eim = sin (-0.7) in
  let full = Mat.copy u in
  Mat.rot_cols_t_dagger_cs full ~m:1 ~n:4 ~c ~s ~ere ~eim;
  let ranged = Mat.copy u in
  Mat.rot_cols_t_dagger_cs ~nrows:3 ranged ~m:1 ~n:4 ~c ~s ~ere ~eim;
  for i = 0 to 6 do
    for j = 0 to 6 do
      let expected = if i < 3 then Mat.get full i j else Mat.get u i j in
      Alcotest.(check bool)
        (Printf.sprintf "cols nrows (%d,%d)" i j)
        true
        (Cx.is_close ~tol:1e-12 (Mat.get ranged i j) expected)
    done
  done;
  let full = Mat.copy u in
  Mat.rot_rows_t_cs full ~m:2 ~n:5 ~c ~s ~ere ~eim;
  let ranged = Mat.copy u in
  Mat.rot_rows_t_cs ~first:4 ranged ~m:2 ~n:5 ~c ~s ~ere ~eim;
  for i = 0 to 6 do
    for j = 0 to 6 do
      let expected = if j >= 4 then Mat.get full i j else Mat.get u i j in
      Alcotest.(check bool)
        (Printf.sprintf "rows first (%d,%d)" i j)
        true
        (Cx.is_close ~tol:1e-12 (Mat.get ranged i j) expected)
    done
  done;
  Alcotest.check_raises "bad nrows" (Invalid_argument "Mat.rot_cols_t_dagger: bad nrows")
    (fun () -> Mat.rot_cols_t_dagger_cs ~nrows:8 (Mat.copy u) ~m:0 ~n:1 ~c ~s ~ere ~eim);
  Alcotest.check_raises "bad first" (Invalid_argument "Mat.rot_rows_t: bad first")
    (fun () -> Mat.rot_rows_t_cs ~first:(-1) (Mat.copy u) ~m:0 ~n:1 ~c ~s ~ere ~eim)

(* Kernel-form rotations: of_angles and the theta/phi accessors are
   inverses, and an eliminate-derived rotation agrees with one rebuilt
   from its own angles. *)
let test_rotation_angle_accessors () =
  let theta0 = 0.41 and phi0 = -2.3 in
  let r = Givens.of_angles ~m:0 ~n:1 ~theta:theta0 ~phi:phi0 in
  check_close "theta roundtrip" 1e-12 theta0 (Givens.theta r);
  check_close "phi roundtrip" 1e-12 phi0 (Givens.phi r);
  let rng = Rng.create 48 in
  let w = Unitary.haar_random rng 6 in
  let rot = Givens.eliminate w ~row:3 ~m:1 ~n:2 in
  let rebuilt =
    Givens.of_angles ~m:1 ~n:2 ~theta:(Givens.theta rot) ~phi:(Givens.phi rot)
  in
  check_close "c" 1e-12 rot.Givens.c rebuilt.Givens.c;
  check_close "s" 1e-12 rot.Givens.s rebuilt.Givens.s;
  check_close "ere" 1e-12 rot.Givens.ere rebuilt.Givens.ere;
  check_close "eim" 1e-12 rot.Givens.eim rebuilt.Givens.eim

let test_permute_inplace_matches_pure () =
  let rng = Rng.create 44 in
  (* Non-square: rows and cols exercised with different sizes. *)
  let m = random_mat rng 6 4 in
  let pr = Perm.random rng 6 and pc = Perm.random rng 4 in
  let rows_inplace = Mat.copy m in
  Perm.permute_rows_inplace pr rows_inplace;
  Alcotest.(check bool) "rows" true
    (Mat.equal ~tol:0. rows_inplace (Perm.permute_rows pr m));
  let cols_inplace = Mat.copy m in
  Perm.permute_cols_inplace pc cols_inplace;
  Alcotest.(check bool) "cols" true
    (Mat.equal ~tol:0. cols_inplace (Perm.permute_cols pc m))

let test_views_match_submatrix () =
  let rng = Rng.create 45 in
  let m = random_mat rng 6 5 in
  let rows = [| 4; 0; 4 |] and cols = [| 1; 3 |] in
  let v = Mat.view m ~rows ~cols in
  Alcotest.(check int) "rows" 3 (Mat.View.rows v);
  Alcotest.(check int) "cols" 2 (Mat.View.cols v);
  let materialized = Mat.of_view v in
  let expected = Mat.init 3 2 (fun i j -> Mat.get m rows.(i) cols.(j)) in
  Alcotest.(check bool) "of_view = submatrix" true (Mat.equal ~tol:0. materialized expected);
  (* Views are live: writing through the base is visible. *)
  Mat.set m 4 1 (Cx.re 9.);
  Alcotest.(check bool) "view is zero-copy" true
    (Cx.is_close (Mat.View.get v 0 0) (Cx.re 9.));
  Alcotest.check_raises "bad index" (Invalid_argument "Mat.view: row index out of bounds")
    (fun () -> ignore (Mat.view m ~rows:[| 6 |] ~cols:[| 0 |]))

let test_workspace_reuses_scratch () =
  let ws = Mat.workspace () in
  let a = Mat.scratch ws 8 8 in
  let b = Mat.scratch ws 8 8 in
  Alcotest.(check bool) "same matrix back" true (a == b);
  let c = Mat.scratch ~slot:1 ws 8 8 in
  Alcotest.(check bool) "slots are distinct" true (not (a == c));
  let d = Mat.scratch ws 4 4 in
  Alcotest.(check bool) "shapes are distinct" true (not (a == d));
  Alcotest.(check int) "hits" 1 (Mat.workspace_hits ws);
  Alcotest.(check int) "misses" 3 (Mat.workspace_misses ws);
  (* A second same-shape round trip allocates nothing. *)
  let before = Mat.allocations () in
  ignore (Mat.scratch ws 8 8);
  ignore (Mat.scratch ~slot:1 ws 8 8);
  Alcotest.(check int) "no allocations on reuse" before (Mat.allocations ())

let test_trace_mul_matches () =
  let rng = Rng.create 46 in
  let a = random_mat rng 5 5 and b = random_mat rng 5 5 in
  Alcotest.(check bool) "trace_mul = trace(a·b)" true
    (Cx.is_close ~tol:1e-10 (Mat.trace_mul a b) (Mat.trace (Mat.mul a b)))

(* ------------------------------------------- native kernels vs reference *)

(* Pure-OCaml references for the four C rotation kernels, written
   against the public element API only (Mat.get/Mat.set), so a layout,
   stride or lock-discipline bug in mat_stubs.c cannot also be in the
   reference. The loop bodies mirror the C [rot_pre]/[rot_post] shapes;
   the comparison tolerance covers FMA contraction in the -mfma C build
   (a ulp-scale difference per element, never more). *)

let cx (re, im) = Cx.make re im
let parts z = (z.Complex.re, z.Complex.im)

(* pre: the phase lands on the m entry before the real rotation. *)
let pre_step (mre, mim) (nre, nim) c s ere eim =
  let wre = (mre *. ere) -. (mim *. eim) in
  let wim = (mre *. eim) +. (mim *. ere) in
  ( ((wre *. c) -. (nre *. s), (wim *. c) -. (nim *. s)),
    ((wre *. s) +. (nre *. c), (wim *. s) +. (nim *. c)) )

(* post: the real rotation runs first, the phase lands on rotated m. *)
let post_step (mre, mim) (nre, nim) c s ere eim =
  let wre = (mre *. c) +. (nre *. s) in
  let wim = (mim *. c) +. (nim *. s) in
  ( ((wre *. ere) -. (wim *. eim), (wre *. eim) +. (wim *. ere)),
    ((nre *. c) -. (mre *. s), (nim *. c) -. (mim *. s)) )

let ref_rot_cols_t_dagger ?nrows u ~m ~n ~c ~s ~ere ~eim =
  let count = match nrows with None -> Mat.rows u | Some r -> r in
  let eim = -.eim in
  for i = 0 to count - 1 do
    let a, b = pre_step (parts (Mat.get u i m)) (parts (Mat.get u i n)) c s ere eim in
    Mat.set u i m (cx a);
    Mat.set u i n (cx b)
  done

let ref_rot_cols_t u ~m ~n ~c ~s ~ere ~eim =
  for i = 0 to Mat.rows u - 1 do
    let a, b = post_step (parts (Mat.get u i m)) (parts (Mat.get u i n)) c s ere eim in
    Mat.set u i m (cx a);
    Mat.set u i n (cx b)
  done

let ref_rot_rows_t ?(first = 0) u ~m ~n ~c ~s ~ere ~eim =
  for j = first to Mat.cols u - 1 do
    let a, b = pre_step (parts (Mat.get u m j)) (parts (Mat.get u n j)) c s ere eim in
    Mat.set u m j (cx a);
    Mat.set u n j (cx b)
  done

let ref_rot_rows_t_dagger u ~m ~n ~c ~s ~ere ~eim =
  let eim = -.eim in
  for j = 0 to Mat.cols u - 1 do
    let a, b = post_step (parts (Mat.get u m j)) (parts (Mat.get u n j)) c s ere eim in
    Mat.set u m j (cx a);
    Mat.set u n j (cx b)
  done

let test_rot_kernels_match_reference () =
  let rng = Rng.create 60 in
  (* Ragged shapes from degenerate through odd primes up to past the
     blocking threshold, so both lock disciplines are exercised and
     compared against the same reference. *)
  let shapes =
    [ (1, 2); (2, 1); (2, 2); (3, 5); (5, 3); (7, 13); (31, 33); (64, 64);
      (Mat.blocking_threshold, 5); (5, Mat.blocking_threshold);
      (Mat.blocking_threshold + 22, Mat.blocking_threshold + 22) ]
  in
  let pick2 rng dim =
    let m = Rng.int rng dim and n = Rng.int rng dim in
    let n = if n = m then (m + 1) mod dim else n in
    (min m n, max m n)
  in
  let check_kernel label shape_lbl native reference u =
    let got = Mat.copy u and want = Mat.copy u in
    native got;
    reference want;
    Alcotest.(check bool)
      (Printf.sprintf "%s %s" label shape_lbl)
      true
      (Mat.equal ~tol:1e-12 got want)
  in
  List.iter
    (fun (nr, nc) ->
       let u = random_mat rng nr nc in
       let shape_lbl = Printf.sprintf "%dx%d" nr nc in
       let theta = Rng.float rng 6.3 and phi = Rng.float rng 6.3 -. 3.15 in
       let c = cos theta and s = sin theta in
       let ere = cos phi and eim = sin phi in
       if nc >= 2 then begin
         let m, n = pick2 rng nc in
         check_kernel "cols t_dagger" shape_lbl
           (fun w -> Mat.rot_cols_t_dagger_cs w ~m ~n ~c ~s ~ere ~eim)
           (fun w -> ref_rot_cols_t_dagger w ~m ~n ~c ~s ~ere ~eim)
           u;
         check_kernel "cols t" shape_lbl
           (fun w -> Mat.rot_cols_t_cs w ~m ~n ~c ~s ~ere ~eim)
           (fun w -> ref_rot_cols_t w ~m ~n ~c ~s ~ere ~eim)
           u;
         (* Ranged: an odd prefix, empty, and full-range spellings. *)
         List.iter
           (fun nrows ->
              check_kernel (Printf.sprintf "cols t_dagger nrows=%d" nrows) shape_lbl
                (fun w -> Mat.rot_cols_t_dagger_cs ~nrows w ~m ~n ~c ~s ~ere ~eim)
                (fun w -> ref_rot_cols_t_dagger ~nrows w ~m ~n ~c ~s ~ere ~eim)
                u)
           [ 0; (nr / 2) + 1; nr ]
       end;
       if nr >= 2 then begin
         let m, n = pick2 rng nr in
         check_kernel "rows t" shape_lbl
           (fun w -> Mat.rot_rows_t_cs w ~m ~n ~c ~s ~ere ~eim)
           (fun w -> ref_rot_rows_t w ~m ~n ~c ~s ~ere ~eim)
           u;
         check_kernel "rows t_dagger" shape_lbl
           (fun w -> Mat.rot_rows_t_dagger_cs w ~m ~n ~c ~s ~ere ~eim)
           (fun w -> ref_rot_rows_t_dagger w ~m ~n ~c ~s ~ere ~eim)
           u;
         List.iter
           (fun first ->
              check_kernel (Printf.sprintf "rows t first=%d" first) shape_lbl
                (fun w -> Mat.rot_rows_t_cs ~first w ~m ~n ~c ~s ~ere ~eim)
                (fun w -> ref_rot_rows_t ~first w ~m ~n ~c ~s ~ere ~eim)
                u)
           [ 0; (nc / 2) + 1; nc ]
       end)
    shapes

(* The size dispatch is observable: a kernel whose run length reaches
   Mat.blocking_threshold goes through the lock-releasing C entry
   points and bumps the lock_releases counter; a small one does not. *)
let test_blocking_dispatch_observable () =
  let rng = Rng.create 62 in
  let small = random_mat rng 8 8 in
  let locks0 = Mat.lock_releases () in
  Mat.rot_cols_t_cs small ~m:0 ~n:1 ~c:0.8 ~s:0.6 ~ere:1.0 ~eim:0.0;
  Alcotest.(check int) "small kernel stays on the fast path" locks0 (Mat.lock_releases ());
  let big = random_mat rng Mat.blocking_threshold 4 in
  Mat.rot_cols_t_cs big ~m:0 ~n:1 ~c:0.8 ~s:0.6 ~ere:1.0 ~eim:0.0;
  Alcotest.(check int) "threshold-size kernel releases the lock" (locks0 + 1)
    (Mat.lock_releases ());
  (* Row rotations dispatch on the column count. *)
  let wide = random_mat rng 4 Mat.blocking_threshold in
  Mat.rot_rows_t_cs wide ~m:0 ~n:1 ~c:0.8 ~s:0.6 ~ere:1.0 ~eim:0.0;
  Alcotest.(check int) "wide row rotation releases the lock" (locks0 + 2)
    (Mat.lock_releases ())

(* ------------------------------------------- fused sweep kernels *)

(* Pure get/set references for the fused sweep stubs: apply the packed
   rotations one at a time, honoring each rotation's bound (row limit
   for the column sweeps, first column for the row sweep). Rotation-
   outer here vs row-outer in C is immaterial — rows are independent —
   so any disagreement is a real stub bug, not an ordering artifact. *)

type sweep_rot = {
  sm : int; sn : int; sc : float; ss : float; sere : float; seim : float; sbound : int;
}

let random_sweep_rots rng ~count ~dim ~max_bound =
  Array.init count (fun _ ->
      let m = Rng.int rng dim in
      let n = Rng.int rng dim in
      let n = if n = m then (m + 1) mod dim else n in
      let theta = Rng.float rng 6.3 and phi = Rng.float rng 6.3 -. 3.15 in
      { sm = m; sn = n; sc = cos theta; ss = sin theta; sere = cos phi;
        seim = sin phi; sbound = Rng.int rng (max_bound + 1) })

let pack_rots rots =
  let seq = Mat.Rotseq.create ~capacity:4 () in
  Array.iter
    (fun r ->
       Mat.Rotseq.push seq ~m:r.sm ~n:r.sn ~c:r.sc ~s:r.ss ~ere:r.sere ~eim:r.seim
         ~bound:r.sbound)
    rots;
  seq

let ref_sweep_cols step u rots ~rot_lo ~rot_hi ~row_lo ~row_hi =
  for t = rot_lo to rot_hi - 1 do
    let r = rots.(t) in
    for i = row_lo to row_hi - 1 do
      if i < r.sbound then begin
        let a, b =
          step (parts (Mat.get u i r.sm)) (parts (Mat.get u i r.sn)) r.sc r.ss r.sere
            r.seim
        in
        Mat.set u i r.sm (cx a);
        Mat.set u i r.sn (cx b)
      end
    done
  done

let ref_sweep_rows_pre u rots ~rot_lo ~rot_hi ~col_lo ~col_hi =
  for t = rot_lo to rot_hi - 1 do
    let r = rots.(t) in
    for j = max col_lo r.sbound to col_hi - 1 do
      let a, b =
        pre_step (parts (Mat.get u r.sm j)) (parts (Mat.get u r.sn j)) r.sc r.ss r.sere
          r.seim
      in
      Mat.set u r.sm j (cx a);
      Mat.set u r.sn j (cx b)
    done
  done

let test_sweep_kernels_match_reference () =
  let rng = Rng.create 63 in
  (* Ragged sizes from degenerate through the blocking threshold up to
     the paper's N=500 tier, so both lock disciplines run against the
     same reference. *)
  let sizes = [ 2; 3; 7; 31; 64; 127; Mat.blocking_threshold; 129; 200; 500 ] in
  let check label native reference u =
    let got = Mat.copy u and want = Mat.copy u in
    native got;
    reference want;
    Alcotest.(check bool) label true (Mat.equal ~tol:1e-12 got want)
  in
  List.iter
    (fun dim ->
       let u = random_mat rng dim dim in
       let count = min dim 40 in
       (* Column sweeps: bound is an exclusive row limit. *)
       let rots = random_sweep_rots rng ~count ~dim ~max_bound:dim in
       let seq = pack_rots rots in
       let rot_mid = count / 2 and row_mid = dim / 2 in
       List.iter
         (fun (rot_lo, rot_hi, row_lo, row_hi) ->
            let lbl =
              Printf.sprintf "N=%d rots=[%d,%d) rows=[%d,%d)" dim rot_lo rot_hi row_lo
                row_hi
            in
            check ("sweep_cols_pre " ^ lbl)
              (fun w -> Mat.sweep_cols_pre w seq ~rot_lo ~rot_hi ~row_lo ~row_hi)
              (fun w -> ref_sweep_cols pre_step w rots ~rot_lo ~rot_hi ~row_lo ~row_hi)
              u;
            check ("sweep_cols_post " ^ lbl)
              (fun w -> Mat.sweep_cols_post w seq ~rot_lo ~rot_hi ~row_lo ~row_hi)
              (fun w -> ref_sweep_cols post_step w rots ~rot_lo ~rot_hi ~row_lo ~row_hi)
              u)
         [ (0, count, 0, dim); (0, count, row_mid, dim); (rot_mid, count, 0, row_mid);
           (0, 0, 0, dim); (0, count, 0, 0) ];
       (* Row sweep: bound is the first column touched. *)
       let rots = random_sweep_rots rng ~count ~dim ~max_bound:(dim - 1) in
       let seq = pack_rots rots in
       List.iter
         (fun (rot_lo, rot_hi, col_lo, col_hi) ->
            let lbl =
              Printf.sprintf "N=%d rots=[%d,%d) cols=[%d,%d)" dim rot_lo rot_hi col_lo
                col_hi
            in
            check ("sweep_rows_pre " ^ lbl)
              (fun w -> Mat.sweep_rows_pre w seq ~rot_lo ~rot_hi ~col_lo ~col_hi)
              (fun w -> ref_sweep_rows_pre w rots ~rot_lo ~rot_hi ~col_lo ~col_hi)
              u)
         [ (0, count, 0, dim); (0, count, row_mid, dim); (rot_mid, count, 0, row_mid) ])
    sizes

(* The determinism contract of the parallel engines: splitting a sweep's
   row (or column) range at any point yields bitwise-identical planes,
   because each row sees the same rotation subsequence in the same
   order. Pinned at tol 0. *)
let test_sweep_split_bit_identity () =
  let rng = Rng.create 64 in
  List.iter
    (fun dim ->
       let u = random_mat rng dim dim in
       let count = min dim 24 in
       let rots = random_sweep_rots rng ~count ~dim ~max_bound:dim in
       let seq = pack_rots rots in
       let whole = Mat.copy u in
       Mat.sweep_cols_pre whole seq ~rot_lo:0 ~rot_hi:count ~row_lo:0 ~row_hi:dim;
       List.iter
         (fun cut ->
            let split = Mat.copy u in
            Mat.sweep_cols_pre split seq ~rot_lo:0 ~rot_hi:count ~row_lo:0 ~row_hi:cut;
            Mat.sweep_cols_pre split seq ~rot_lo:0 ~rot_hi:count ~row_lo:cut ~row_hi:dim;
            Alcotest.(check bool)
              (Printf.sprintf "cols split at %d of %d bit-identical" cut dim)
              true (Mat.equal ~tol:0. split whole))
         [ 1; dim / 3; dim / 2; dim - 1 ];
       let rots = random_sweep_rots rng ~count ~dim ~max_bound:(dim - 1) in
       let seq = pack_rots rots in
       let whole = Mat.copy u in
       Mat.sweep_rows_pre whole seq ~rot_lo:0 ~rot_hi:count ~col_lo:0 ~col_hi:dim;
       List.iter
         (fun cut ->
            let split = Mat.copy u in
            Mat.sweep_rows_pre split seq ~rot_lo:0 ~rot_hi:count ~col_lo:0 ~col_hi:cut;
            Mat.sweep_rows_pre split seq ~rot_lo:0 ~rot_hi:count ~col_lo:cut ~col_hi:dim;
            Alcotest.(check bool)
              (Printf.sprintf "rows split at %d of %d bit-identical" cut dim)
              true (Mat.equal ~tol:0. split whole))
         [ 1; dim / 3; dim - 1 ])
    [ 5; 64; Mat.blocking_threshold + 22 ]

(* A fused sweep must agree with the per-rotation _cs kernels applied in
   the same order. Tolerance, not bitwise: the fused and per-call C
   loops are separate compilation contexts, so FMA contraction may
   differ — which is exactly why the engines select by size only and
   never mix the two paths within one decomposition. *)
let test_sweep_agrees_with_percall_kernels () =
  let rng = Rng.create 65 in
  let dim = 40 in
  let count = 12 in
  let u = random_mat rng dim dim in
  let rots =
    Array.map
      (fun r -> { r with sbound = dim })
      (random_sweep_rots rng ~count ~dim ~max_bound:0)
  in
  let seq = pack_rots rots in
  let fused = Mat.copy u and percall = Mat.copy u in
  Mat.sweep_cols_post fused seq ~rot_lo:0 ~rot_hi:count ~row_lo:0 ~row_hi:dim;
  Array.iter
    (fun r ->
       Mat.rot_cols_t_cs percall ~m:r.sm ~n:r.sn ~c:r.sc ~s:r.ss ~ere:r.sere ~eim:r.seim)
    rots;
  Alcotest.(check bool) "sweep_cols_post = rot_cols_t_cs chain" true
    (Mat.equal ~tol:1e-12 fused percall);
  let rrots = random_sweep_rots rng ~count ~dim ~max_bound:(dim - 1) in
  let rseq = pack_rots rrots in
  let fused = Mat.copy u and percall = Mat.copy u in
  Mat.sweep_rows_pre fused rseq ~rot_lo:0 ~rot_hi:count ~col_lo:0 ~col_hi:dim;
  Array.iter
    (fun r ->
       Mat.rot_rows_t_cs ~first:r.sbound percall ~m:r.sm ~n:r.sn ~c:r.sc ~s:r.ss
         ~ere:r.sere ~eim:r.seim)
    rrots;
  Alcotest.(check bool) "sweep_rows_pre = rot_rows_t_cs chain" true
    (Mat.equal ~tol:1e-12 fused percall)

(* Binary plane codec: encode → decode must be bit-exact through both
   the string reader and the (possibly misaligned) bigbytes reader,
   and the Bigarray FNV-1a stub must agree with the pure-OCaml hash. *)
let test_plane_codec_roundtrip () =
  let rng = Rng.create 61 in
  List.iter
    (fun (r, cdim) ->
       let m = random_mat rng r cdim in
       let buf = Buffer.create 64 in
       Mat.encode_planes buf m;
       let s = Buffer.contents buf in
       Alcotest.(check int) "encoded length" (16 * r * cdim) (String.length s);
       let d = Mat.decode_planes_string ~rows:r ~cols:cdim s ~pos:0 in
       Alcotest.(check bool) "string decode bit-exact" true (Mat.equal ~tol:0. d m);
       (* Offset 3 forces a misaligned mmap-style read. *)
       let ba =
         Bigarray.Array1.create Bigarray.char Bigarray.c_layout (String.length s + 3)
       in
       String.iteri (fun i ch -> Bigarray.Array1.set ba (i + 3) ch) s;
       let d2 = Mat.decode_planes_bigbytes ~rows:r ~cols:cdim ba ~pos:3 in
       Alcotest.(check bool) "bigbytes decode bit-exact" true (Mat.equal ~tol:0. d2 m);
       Alcotest.(check string) "bigbytes_sub_string round-trips" s
         (Mat.bigbytes_sub_string ba ~pos:3 ~len:(String.length s));
       Alcotest.(check bool) "bigarray FNV agrees with pure-OCaml FNV" true
         (Mat.fnv1a64_bigbytes ba ~pos:3 ~len:(String.length s)
          = Bose_util.Fnv.string Bose_util.Fnv.seed s))
    [ (1, 1); (3, 5); (8, 8); (1, 17) ]

(* ------------------------------------------------------------ properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"haar unitaries stay unitary under products" ~count:30
      (pair small_int small_int)
      (fun (s1, s2) ->
         let rng = Rng.create ((s1 * 1000) + s2) in
         let n = 2 + (abs s1 mod 6) in
         let u = Unitary.haar_random rng n and v = Unitary.haar_random rng n in
         Mat.is_unitary (Mat.mul u v));
    Test.make ~name:"elimination preserves unitarity and row norms" ~count:50 small_int
      (fun seed ->
         let rng = Rng.create seed in
         let n = 3 + (abs seed mod 5) in
         let u = Unitary.haar_random rng n in
         let w = Mat.copy u in
         ignore (Givens.eliminate w ~row:(n - 1) ~m:0 ~n:1);
         Mat.is_unitary w
         && Float.abs (Mat.row_norm2 w (n - 1) -. 1.) < 1e-9);
    Test.make ~name:"perm matrix is orthogonal" ~count:50 small_int (fun seed ->
        let rng = Rng.create seed in
        let n = 2 + (abs seed mod 8) in
        Mat.is_unitary (Perm.matrix (Perm.random rng n)));
    Test.make ~name:"takagi roundtrips random symmetric matrices" ~count:25 small_int
      (fun seed ->
         let rng = Rng.create seed in
         let n = 2 + (abs seed mod 5) in
         let a = Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian rng)) in
         let sym =
           Array.init n (fun i -> Array.init n (fun j -> (a.(i).(j) +. a.(j).(i)) /. 2.))
         in
         let lambda, u = Takagi.decompose sym in
         Mat.equal ~tol:1e-7 (Takagi.reconstruct lambda u) (Mat.of_real sym));
    Test.make ~name:"inverse_det consistent with det" ~count:25 small_int (fun seed ->
        let rng = Rng.create (seed + 7) in
        let n = 2 + (abs seed mod 5) in
        let u = Unitary.haar_random rng n in
        let _, d1 = Linsolve.inverse_det u in
        let d2 = Linsolve.det u in
        Cx.is_close ~tol:1e-9 d1 d2);
    Test.make ~name:"gemm matches naive on random shapes" ~count:40 small_int (fun seed ->
        let rng = Rng.create (seed + 31) in
        let m = 1 + (abs seed mod 7)
        and k = 1 + (abs (seed * 13) mod 7)
        and n = 1 + (abs (seed * 29) mod 7) in
        let a = random_mat rng m k and b = random_mat rng k n in
        let dst = Mat.create m n in
        Mat.gemm ~dst a b;
        Mat.equal ~tol:1e-10 dst (naive_mul a b));
    Test.make ~name:"rot kernels match dense rotation products" ~count:40 small_int
      (fun seed ->
         let rng = Rng.create (seed + 53) in
         let dim = 2 + (abs seed mod 7) in
         let u = Unitary.haar_random rng dim in
         let m = abs (seed * 7) mod dim in
         let n = abs (seed * 11) mod dim in
         let n = if n = m then (m + 1) mod dim else n in
         let m, n = (min m n, max m n) in
         let r = Givens.of_angles ~m ~n ~theta:(Rng.float rng 3.0) ~phi:(Rng.float rng 6.0) in
         let t = Givens.matrix dim r in
         let right = Mat.copy u in
         Givens.apply_t_right right r;
         let dright = Mat.copy u in
         Givens.apply_t_dagger_right dright r;
         let left = Mat.copy u in
         Givens.apply_t_left left r;
         Mat.equal ~tol:1e-10 right (Mat.mul u t)
         && Mat.equal ~tol:1e-10 dright (Mat.mul u (Mat.adjoint t))
         && Mat.equal ~tol:1e-10 left (Mat.mul t u));
    Test.make ~name:"in-place permutes invert with the inverse perm" ~count:40 small_int
      (fun seed ->
         let rng = Rng.create (seed + 97) in
         let rows = 1 + (abs seed mod 8) and cols = 1 + (abs (seed * 17) mod 8) in
         let m = random_mat rng rows cols in
         let pr = Perm.random rng rows and pc = Perm.random rng cols in
         let w = Mat.copy m in
         Perm.permute_rows_inplace pr w;
         Perm.permute_cols_inplace pc w;
         Perm.permute_cols_inplace (Perm.inverse pc) w;
         Perm.permute_rows_inplace (Perm.inverse pr) w;
         Mat.equal ~tol:0. w m);
    Test.make ~name:"views agree with materialized submatrices" ~count:40 small_int
      (fun seed ->
         let rng = Rng.create (seed + 131) in
         let rows = 1 + (abs seed mod 6) and cols = 1 + (abs (seed * 19) mod 6) in
         let m = random_mat rng rows cols in
         let vr = Array.init (1 + (abs (seed * 3) mod rows)) (fun i -> (i + abs seed) mod rows) in
         let vc = Array.init (1 + (abs (seed * 5) mod cols)) (fun i -> (i + abs (seed * 7)) mod cols) in
         let v = Mat.view m ~rows:vr ~cols:vc in
         let expected =
           Mat.init (Array.length vr) (Array.length vc) (fun i j -> Mat.get m vr.(i) vc.(j))
         in
         Mat.equal ~tol:0. (Mat.of_view v) expected);
  ]

let () =
  Alcotest.run "bose_linalg"
    [
      ("cx", [ Alcotest.test_case "arithmetic" `Quick test_cx_arith ]);
      ( "mat",
        [
          Alcotest.test_case "identity mul" `Quick test_mat_identity_mul;
          Alcotest.test_case "adjoint involution" `Quick test_mat_adjoint_involution;
          Alcotest.test_case "mul associative" `Quick test_mat_mul_associative;
          Alcotest.test_case "trace/frobenius" `Quick test_mat_trace_frobenius;
          Alcotest.test_case "unitary norms" `Quick test_mat_row_col_norms;
          Alcotest.test_case "swap" `Quick test_mat_swap;
          Alcotest.test_case "fidelity metric" `Quick test_mat_fidelity_metric;
          Alcotest.test_case "rot roundtrip" `Quick test_rot_cols_roundtrip;
          Alcotest.test_case "rot matches dense" `Quick test_rot_matches_dense;
        ] );
      ( "givens",
        [
          Alcotest.test_case "eliminates entry" `Quick test_givens_eliminates;
          Alcotest.test_case "small angle" `Quick test_givens_small_angle_for_small_entry;
          Alcotest.test_case "zero entry" `Quick test_givens_zero_entry;
        ] );
      ( "perm",
        [
          Alcotest.test_case "compose/inverse" `Quick test_perm_compose_inverse;
          Alcotest.test_case "matrix consistency" `Quick test_perm_matrix_consistency;
          Alcotest.test_case "permute list" `Quick test_perm_permute_list;
          Alcotest.test_case "invalid input" `Quick test_perm_invalid;
        ] );
      ( "unitary",
        [
          Alcotest.test_case "qr reconstruction" `Quick test_qr_reconstruction;
          Alcotest.test_case "haar unitary" `Quick test_haar_unitary;
          Alcotest.test_case "orthogonal real" `Quick test_orthogonal_real;
        ] );
      ( "eigen",
        [
          Alcotest.test_case "known 2x2" `Quick test_eigen_known;
          Alcotest.test_case "reconstruct" `Quick test_eigen_reconstruct;
          Alcotest.test_case "rejects asymmetric" `Quick test_eigen_rejects_asymmetric;
        ] );
      ("takagi", [ Alcotest.test_case "roundtrip" `Quick test_takagi_roundtrip ]);
      ( "kernels",
        [
          Alcotest.test_case "of_arrays zero cols" `Quick test_of_arrays_zero_cols;
          Alcotest.test_case "gemm vs naive" `Quick test_gemm_matches_naive;
          Alcotest.test_case "gemm variants vs naive" `Quick test_gemm_variants_match_naive;
          Alcotest.test_case "gemm aliasing" `Quick test_gemm_rejects_aliasing;
          Alcotest.test_case "axpy/scale" `Quick test_axpy_scale_match_reference;
          Alcotest.test_case "rot rows vs dense" `Quick test_rot_rows_matches_dense;
          Alcotest.test_case "ranged rotations" `Quick test_ranged_rotations;
          Alcotest.test_case "rotation angle accessors" `Quick test_rotation_angle_accessors;
          Alcotest.test_case "permute in place" `Quick test_permute_inplace_matches_pure;
          Alcotest.test_case "views" `Quick test_views_match_submatrix;
          Alcotest.test_case "workspace" `Quick test_workspace_reuses_scratch;
          Alcotest.test_case "trace_mul" `Quick test_trace_mul_matches;
          Alcotest.test_case "rot kernels vs pure-OCaml reference" `Quick
            test_rot_kernels_match_reference;
          Alcotest.test_case "blocking dispatch observable" `Quick
            test_blocking_dispatch_observable;
          Alcotest.test_case "sweep kernels vs pure-OCaml reference" `Quick
            test_sweep_kernels_match_reference;
          Alcotest.test_case "sweep split bit-identity" `Quick
            test_sweep_split_bit_identity;
          Alcotest.test_case "sweep vs per-rotation kernels" `Quick
            test_sweep_agrees_with_percall_kernels;
          Alcotest.test_case "plane codec round-trip" `Quick test_plane_codec_roundtrip;
        ] );
      ( "linsolve",
        [
          Alcotest.test_case "known det" `Quick test_linsolve_known_det;
          Alcotest.test_case "unitary det" `Quick test_linsolve_unitary_det_modulus;
          Alcotest.test_case "inverse" `Quick test_linsolve_inverse;
          Alcotest.test_case "solve" `Quick test_linsolve_solve;
          Alcotest.test_case "singular" `Quick test_linsolve_singular;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_tests);
    ]
