(* Unit and property tests for the bose_linalg library. *)

module Rng = Bose_util.Rng
open Bose_linalg

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------------- Cx *)

let test_cx_arith () =
  let a = Cx.make 1. 2. and b = Cx.make 3. (-1.) in
  Alcotest.(check bool) "add" true Cx.(is_close (a +: b) (make 4. 1.));
  Alcotest.(check bool) "mul" true Cx.(is_close (a *: b) (make 5. 5.));
  check_close "abs2" 1e-12 5. (Cx.abs2 a);
  Alcotest.(check bool) "exp_i" true Cx.(is_close (exp_i Float.pi) (make (-1.) 0.) ~tol:1e-12)

(* ------------------------------------------------------------------ Mat *)

let test_mat_identity_mul () =
  let rng = Rng.create 1 in
  let a = Unitary.haar_random rng 5 in
  Alcotest.(check bool) "I·a = a" true (Mat.equal (Mat.mul (Mat.identity 5) a) a);
  Alcotest.(check bool) "a·I = a" true (Mat.equal (Mat.mul a (Mat.identity 5)) a)

let test_mat_adjoint_involution () =
  let rng = Rng.create 2 in
  let a = Unitary.haar_random rng 4 in
  Alcotest.(check bool) "(a†)† = a" true (Mat.equal (Mat.adjoint (Mat.adjoint a)) a)

let test_mat_mul_associative () =
  let rng = Rng.create 3 in
  let a = Unitary.haar_random rng 4
  and b = Unitary.haar_random rng 4
  and c = Unitary.haar_random rng 4 in
  Alcotest.(check bool) "(ab)c = a(bc)" true
    (Mat.equal ~tol:1e-12 (Mat.mul (Mat.mul a b) c) (Mat.mul a (Mat.mul b c)))

let test_mat_trace_frobenius () =
  let m = Mat.of_arrays [| [| Cx.re 1.; Cx.i |]; [| Cx.zero; Cx.re 3. |] |] in
  Alcotest.(check bool) "trace" true (Cx.is_close (Mat.trace m) (Cx.re 4.));
  check_close "frobenius" 1e-12 (sqrt 11.) (Mat.frobenius_norm m)

let test_mat_row_col_norms () =
  let rng = Rng.create 4 in
  let u = Unitary.haar_random rng 6 in
  for i = 0 to 5 do
    check_close "unit row" 1e-10 1. (Mat.row_norm2 u i);
    check_close "unit col" 1e-10 1. (Mat.col_norm2 u i)
  done

let test_mat_swap () =
  let m = Mat.of_arrays [| [| Cx.re 1.; Cx.re 2. |]; [| Cx.re 3.; Cx.re 4. |] |] in
  Mat.swap_rows m 0 1;
  Alcotest.(check bool) "rows swapped" true (Cx.is_close (Mat.get m 0 0) (Cx.re 3.));
  Mat.swap_cols m 0 1;
  Alcotest.(check bool) "cols swapped" true (Cx.is_close (Mat.get m 0 0) (Cx.re 4.))

let test_mat_fidelity_metric () =
  let rng = Rng.create 5 in
  let u = Unitary.haar_random rng 8 in
  check_close "self fidelity" 1e-10 1. (Mat.unitary_fidelity u u);
  (* Global phase leaves the modulus-based fidelity at 1. *)
  let phased = Mat.scale (Cx.exp_i 0.7) u in
  check_close "phase invariant" 1e-10 1. (Mat.unitary_fidelity phased u);
  (* Against an independent Haar unitary the overlap is far below 1. *)
  let v = Unitary.haar_random rng 8 in
  Alcotest.(check bool) "random pair below 0.9" true (Mat.unitary_fidelity u v < 0.9)

let test_rot_cols_roundtrip () =
  let rng = Rng.create 6 in
  let u = Unitary.haar_random rng 7 in
  let w = Mat.copy u in
  Mat.rot_cols_t_dagger w ~m:2 ~n:5 ~theta:0.43 ~phi:1.2;
  Alcotest.(check bool) "changed" true (not (Mat.equal w u));
  Alcotest.(check bool) "still unitary" true (Mat.is_unitary w);
  Mat.rot_cols_t w ~m:2 ~n:5 ~theta:0.43 ~phi:1.2;
  Alcotest.(check bool) "restored" true (Mat.equal ~tol:1e-12 w u)

let test_rot_matches_dense () =
  (* The in-place kernel must agree with dense multiplication by T†. *)
  let rng = Rng.create 7 in
  let u = Unitary.haar_random rng 5 in
  let r = { Givens.m = 1; n = 3; theta = 0.7; phi = -0.4 } in
  let kernel = Mat.copy u in
  Givens.apply_t_dagger_right kernel r;
  let dense = Mat.mul u (Mat.adjoint (Givens.matrix 5 r)) in
  Alcotest.(check bool) "kernel = dense" true (Mat.equal ~tol:1e-12 kernel dense)

(* --------------------------------------------------------------- Givens *)

let test_givens_eliminates () =
  let rng = Rng.create 8 in
  let u = Unitary.haar_random rng 6 in
  let w = Mat.copy u in
  let before = Cx.abs2 (Mat.get w 5 2) +. Cx.abs2 (Mat.get w 5 4) in
  let rot = Givens.eliminate w ~row:5 ~m:2 ~n:4 in
  check_close "entry zeroed" 1e-12 0. (Cx.abs (Mat.get w 5 2));
  check_close "amplitude accumulated" 1e-10 before (Cx.abs2 (Mat.get w 5 4));
  Alcotest.(check bool) "theta in range" true (rot.Givens.theta >= 0. && rot.Givens.theta <= Float.pi /. 2.)

let test_givens_small_angle_for_small_entry () =
  (* Eliminating a small entry against a large one gives a small theta. *)
  let m =
    Mat.of_arrays
      [| [| Cx.re 0.0995; Cx.re 0.995; Cx.zero |];
         [| Cx.re 0.995; Cx.re (-0.0995); Cx.zero |];
         [| Cx.zero; Cx.zero; Cx.one |] |]
  in
  let theta = Givens.angle_for m ~row:0 ~m:0 ~n:1 in
  check_close "theta = atan(0.1)" 1e-6 (atan 0.1) theta

let test_givens_zero_entry () =
  let m = Mat.identity 3 in
  let rot = Givens.eliminate m ~row:0 ~m:1 ~n:2 in
  check_close "theta 0 when already zero" 1e-12 0. rot.Givens.theta

(* ----------------------------------------------------------------- Perm *)

let test_perm_compose_inverse () =
  let rng = Rng.create 9 in
  let p = Perm.random rng 10 and q = Perm.random rng 10 in
  Alcotest.(check bool) "p∘p⁻¹ = id" true (Perm.is_identity (Perm.compose p (Perm.inverse p)));
  let pq = Perm.compose p q in
  for i = 0 to 9 do
    Alcotest.(check int) "compose applies q first" (Perm.apply p (Perm.apply q i))
      (Perm.apply pq i)
  done

let test_perm_matrix_consistency () =
  let rng = Rng.create 10 in
  let p = Perm.random rng 6 in
  let u = Unitary.haar_random rng 6 in
  (* permute_rows p u = P·u with P = matrix p. *)
  Alcotest.(check bool) "row perm = P·u" true
    (Mat.equal (Perm.permute_rows p u) (Mat.mul (Perm.matrix p) u));
  (* permute_cols p u = u·Pᵀ. *)
  Alcotest.(check bool) "col perm = u·Pᵀ" true
    (Mat.equal (Perm.permute_cols p u) (Mat.mul u (Mat.transpose (Perm.matrix p))))

let test_perm_permute_list () =
  let p = Perm.of_array [| 2; 0; 1 |] in
  Alcotest.(check (list string)) "list relabeled" [ "b"; "c"; "a" ]
    (Perm.permute_list p [ "a"; "b"; "c" ])

let test_perm_invalid () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Perm.of_array: not a permutation")
    (fun () -> ignore (Perm.of_array [| 0; 0; 2 |]))

(* -------------------------------------------------------------- Unitary *)

let test_qr_reconstruction () =
  let rng = Rng.create 11 in
  let a =
    Mat.init 6 6 (fun _ _ ->
        let re, im = Rng.gaussian_pair rng in
        Cx.make re im)
  in
  let q, r = Unitary.qr a in
  Alcotest.(check bool) "q unitary" true (Mat.is_unitary q);
  Alcotest.(check bool) "qr = a" true (Mat.equal ~tol:1e-10 (Mat.mul q r) a);
  (* r upper triangular *)
  let ok = ref true in
  for i = 0 to 5 do
    for j = 0 to i - 1 do
      if Cx.abs (Mat.get r i j) > 1e-10 then ok := false
    done
  done;
  Alcotest.(check bool) "r triangular" true !ok

let test_haar_unitary () =
  let rng = Rng.create 12 in
  List.iter
    (fun n -> Alcotest.(check bool) "unitary" true (Mat.is_unitary (Unitary.haar_random rng n)))
    [ 1; 2; 5; 16 ]

let test_orthogonal_real () =
  let rng = Rng.create 13 in
  let o = Unitary.random_orthogonal rng 7 in
  Alcotest.(check bool) "unitary" true (Mat.is_unitary o);
  let all_real = ref true in
  for i = 0 to 6 do
    for j = 0 to 6 do
      if Float.abs (Mat.get o i j).Complex.im > 1e-12 then all_real := false
    done
  done;
  Alcotest.(check bool) "entries real" true !all_real

(* ---------------------------------------------------------------- Eigen *)

let test_eigen_known () =
  let lambda, v = Eigen.jacobi [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  check_close "λ₁" 1e-9 3. lambda.(0);
  check_close "λ₂" 1e-9 1. lambda.(1);
  (* Eigenvector for λ=3 is (1,1)/√2 up to sign. *)
  check_close "evec component" 1e-9 (Float.abs v.(0).(0)) (Float.abs v.(1).(0))

let test_eigen_reconstruct () =
  let rng = Rng.create 14 in
  let n = 8 in
  let a =
    Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian rng))
  in
  let sym = Array.init n (fun i -> Array.init n (fun j -> (a.(i).(j) +. a.(j).(i)) /. 2.)) in
  let lambda, v = Eigen.jacobi sym in
  let recon = Eigen.reconstruct lambda v in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      worst := Float.max !worst (Float.abs (recon.(i).(j) -. sym.(i).(j)))
    done
  done;
  Alcotest.(check bool) "reconstruction" true (!worst < 1e-8);
  (* eigenvalues decreasing *)
  for i = 0 to n - 2 do
    Alcotest.(check bool) "sorted" true (lambda.(i) >= lambda.(i + 1))
  done

let test_eigen_rejects_asymmetric () =
  Alcotest.check_raises "asymmetric" (Invalid_argument "Eigen.jacobi: not symmetric")
    (fun () -> ignore (Eigen.jacobi [| [| 1.; 2. |]; [| 0.; 1. |] |]))

(* --------------------------------------------------------------- Takagi *)

let test_takagi_roundtrip () =
  let rng = Rng.create 15 in
  let n = 7 in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian rng)) in
  let sym = Array.init n (fun i -> Array.init n (fun j -> (a.(i).(j) +. a.(j).(i)) /. 2.)) in
  let lambda, u = Takagi.decompose sym in
  Alcotest.(check bool) "u unitary" true (Mat.is_unitary u);
  Array.iter (fun l -> Alcotest.(check bool) "λ ≥ 0" true (l >= 0.)) lambda;
  Alcotest.(check bool) "A = U·diag·Uᵀ" true
    (Mat.equal ~tol:1e-8 (Takagi.reconstruct lambda u) (Mat.of_real sym))

(* ------------------------------------------------------------- Linsolve *)

let test_linsolve_known_det () =
  let m = Mat.of_arrays [| [| Cx.re 2.; Cx.re 1. |]; [| Cx.re 1.; Cx.re 3. |] |] in
  Alcotest.(check bool) "det" true (Cx.is_close (Linsolve.det m) (Cx.re 5.))

let test_linsolve_unitary_det_modulus () =
  let rng = Rng.create 16 in
  let u = Unitary.haar_random rng 6 in
  check_close "det modulus 1" 1e-9 1. (Cx.abs (Linsolve.det u))

let test_linsolve_inverse () =
  let rng = Rng.create 17 in
  let a =
    Mat.init 6 6 (fun _ _ ->
        let re, im = Rng.gaussian_pair rng in
        Cx.make re im)
  in
  let inv = Linsolve.inverse a in
  Alcotest.(check bool) "a·a⁻¹ = I" true (Mat.equal ~tol:1e-9 (Mat.mul a inv) (Mat.identity 6))

let test_linsolve_solve () =
  let rng = Rng.create 18 in
  let a = Unitary.haar_random rng 5 in
  let b = Array.init 5 (fun i -> Cx.make (float_of_int i) 1.) in
  let x = Linsolve.solve a b in
  let residual = Mat.mul_vec a x in
  Array.iteri
    (fun i r -> Alcotest.(check bool) "residual" true (Cx.is_close ~tol:1e-9 r b.(i)))
    residual

let test_linsolve_singular () =
  let m = Mat.create 3 3 in
  Alcotest.check_raises "singular" (Invalid_argument "Linsolve: singular matrix") (fun () ->
      ignore (Linsolve.det m))

(* ------------------------------------------------------------ properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"haar unitaries stay unitary under products" ~count:30
      (pair small_int small_int)
      (fun (s1, s2) ->
         let rng = Rng.create ((s1 * 1000) + s2) in
         let n = 2 + (abs s1 mod 6) in
         let u = Unitary.haar_random rng n and v = Unitary.haar_random rng n in
         Mat.is_unitary (Mat.mul u v));
    Test.make ~name:"elimination preserves unitarity and row norms" ~count:50 small_int
      (fun seed ->
         let rng = Rng.create seed in
         let n = 3 + (abs seed mod 5) in
         let u = Unitary.haar_random rng n in
         let w = Mat.copy u in
         ignore (Givens.eliminate w ~row:(n - 1) ~m:0 ~n:1);
         Mat.is_unitary w
         && Float.abs (Mat.row_norm2 w (n - 1) -. 1.) < 1e-9);
    Test.make ~name:"perm matrix is orthogonal" ~count:50 small_int (fun seed ->
        let rng = Rng.create seed in
        let n = 2 + (abs seed mod 8) in
        Mat.is_unitary (Perm.matrix (Perm.random rng n)));
    Test.make ~name:"takagi roundtrips random symmetric matrices" ~count:25 small_int
      (fun seed ->
         let rng = Rng.create seed in
         let n = 2 + (abs seed mod 5) in
         let a = Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian rng)) in
         let sym =
           Array.init n (fun i -> Array.init n (fun j -> (a.(i).(j) +. a.(j).(i)) /. 2.))
         in
         let lambda, u = Takagi.decompose sym in
         Mat.equal ~tol:1e-7 (Takagi.reconstruct lambda u) (Mat.of_real sym));
    Test.make ~name:"inverse_det consistent with det" ~count:25 small_int (fun seed ->
        let rng = Rng.create (seed + 7) in
        let n = 2 + (abs seed mod 5) in
        let u = Unitary.haar_random rng n in
        let _, d1 = Linsolve.inverse_det u in
        let d2 = Linsolve.det u in
        Cx.is_close ~tol:1e-9 d1 d2);
  ]

let () =
  Alcotest.run "bose_linalg"
    [
      ("cx", [ Alcotest.test_case "arithmetic" `Quick test_cx_arith ]);
      ( "mat",
        [
          Alcotest.test_case "identity mul" `Quick test_mat_identity_mul;
          Alcotest.test_case "adjoint involution" `Quick test_mat_adjoint_involution;
          Alcotest.test_case "mul associative" `Quick test_mat_mul_associative;
          Alcotest.test_case "trace/frobenius" `Quick test_mat_trace_frobenius;
          Alcotest.test_case "unitary norms" `Quick test_mat_row_col_norms;
          Alcotest.test_case "swap" `Quick test_mat_swap;
          Alcotest.test_case "fidelity metric" `Quick test_mat_fidelity_metric;
          Alcotest.test_case "rot roundtrip" `Quick test_rot_cols_roundtrip;
          Alcotest.test_case "rot matches dense" `Quick test_rot_matches_dense;
        ] );
      ( "givens",
        [
          Alcotest.test_case "eliminates entry" `Quick test_givens_eliminates;
          Alcotest.test_case "small angle" `Quick test_givens_small_angle_for_small_entry;
          Alcotest.test_case "zero entry" `Quick test_givens_zero_entry;
        ] );
      ( "perm",
        [
          Alcotest.test_case "compose/inverse" `Quick test_perm_compose_inverse;
          Alcotest.test_case "matrix consistency" `Quick test_perm_matrix_consistency;
          Alcotest.test_case "permute list" `Quick test_perm_permute_list;
          Alcotest.test_case "invalid input" `Quick test_perm_invalid;
        ] );
      ( "unitary",
        [
          Alcotest.test_case "qr reconstruction" `Quick test_qr_reconstruction;
          Alcotest.test_case "haar unitary" `Quick test_haar_unitary;
          Alcotest.test_case "orthogonal real" `Quick test_orthogonal_real;
        ] );
      ( "eigen",
        [
          Alcotest.test_case "known 2x2" `Quick test_eigen_known;
          Alcotest.test_case "reconstruct" `Quick test_eigen_reconstruct;
          Alcotest.test_case "rejects asymmetric" `Quick test_eigen_rejects_asymmetric;
        ] );
      ("takagi", [ Alcotest.test_case "roundtrip" `Quick test_takagi_roundtrip ]);
      ( "linsolve",
        [
          Alcotest.test_case "known det" `Quick test_linsolve_known_det;
          Alcotest.test_case "unitary det" `Quick test_linsolve_unitary_det_modulus;
          Alcotest.test_case "inverse" `Quick test_linsolve_inverse;
          Alcotest.test_case "solve" `Quick test_linsolve_solve;
          Alcotest.test_case "singular" `Quick test_linsolve_singular;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
