(* Doc-consistency gate (runtest): every registered telemetry metric
   must appear in docs/METRICS.md, every lint diagnostic code in
   docs/DIAGNOSTICS.md, and every registered hardware target in
   docs/TARGETS.md, so the operator docs cannot silently rot as
   instrumentation (or a new target) is added.

   Metric registration happens in module initializers, and the linker
   only runs initializers of modules something references — so below,
   every metric-registering module in the tree is referenced
   explicitly. Adding a new instrumented module without extending this
   list leaves its metrics unchecked; grep `Obs.Counter.make` when in
   doubt. Span names are not checked: spans register on first close,
   not at load ([Obs.registered] excludes them by design). *)

module Obs = Bose_obs.Obs
module Lint = Bose_lint.Lint
module Target = Bose_hardware.Target

(* Force-link every module that registers metrics at init. *)
let _ = Bosehedral.Compiler.predicted_fidelity
let _ = Bosehedral.Runner.ideal_distribution
let _ = Bose_decomp.Eliminate.decompose
let _ = Bose_decomp.Plan.to_string
let _ = Bose_mapping.Mapping.optimize
let _ = Bose_dropout.Dropout.make_policy
let _ = Bose_gbs.Fock.tail
let _ = Bose_gbs.Hafnian.hafnian
let _ = Bose_gbs.Permanent.permanent
let _ = Bose_gbs.Sampler.tail_mass
let _ = Bose_par.Pool.create
let _ = Bose_lint.Lint.run
let _ = Bose_flow.Flow.analyze
let _ = Bose_serve.Serve.create

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n > 0 && go 0

(* Codes emitted outside the pass registry: the flood-cap note and the
   artifact-loader parse failures. *)
let extra_codes = [ "BH0001"; "BH0801"; "BH0802" ]

let () =
  let metrics_path, diagnostics_path, targets_path =
    match Sys.argv with
    | [| _; m; d; t |] -> (m, d, t)
    | _ ->
      prerr_endline "usage: check_docs METRICS.md DIAGNOSTICS.md TARGETS.md";
      exit 2
  in
  let metrics_text = read_file metrics_path in
  let diagnostics_text = read_file diagnostics_path in
  let targets_text = read_file targets_path in
  let failures = ref 0 in
  let require text ~from name =
    if not (contains ~needle:name text) then begin
      Printf.printf "check_docs: %s is missing %s\n" from name;
      incr failures
    end
  in
  let metrics = Obs.registered () in
  List.iter (require metrics_text ~from:(Filename.basename metrics_path)) metrics;
  let codes =
    List.sort_uniq String.compare
      (extra_codes @ List.concat_map (fun p -> p.Lint.codes) Lint.passes)
  in
  List.iter (require diagnostics_text ~from:(Filename.basename diagnostics_path)) codes;
  let targets = Target.names () in
  List.iter (require targets_text ~from:(Filename.basename targets_path)) targets;
  if !failures > 0 then begin
    Printf.printf "check_docs: %d missing entr%s\n" !failures
      (if !failures = 1 then "y" else "ies");
    exit 1
  end;
  Printf.printf
    "check_docs: ok (%d metrics, %d diagnostic codes, %d targets documented)\n"
    (List.length metrics) (List.length codes) (List.length targets)
