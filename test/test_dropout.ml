(* Unit and property tests for the probabilistic gate dropout (§VI). *)

module Rng = Bose_util.Rng
module Unitary = Bose_linalg.Unitary
open Bose_hardware
open Bose_decomp
module Dropout = Bose_dropout.Dropout

let haar seed n = Unitary.haar_random (Rng.create seed) n

let tree_plan seed n rows cols =
  let u = haar seed n in
  let pattern = Embedding.for_program (Lattice.create ~rows ~cols) n in
  let m = Bose_mapping.Mapping.optimize pattern u in
  (Eliminate.decompose pattern m.Bose_mapping.Mapping.permuted, m.Bose_mapping.Mapping.permuted)

let test_find_threshold_respects_tau () =
  let plan, u = tree_plan 1 16 4 4 in
  List.iter
    (fun tau ->
       let theta_cut, kept = Dropout.find_threshold plan u ~tau in
       (* Dropping everything strictly below the returned cut must stay
          above tau. *)
       let angles = Plan.angles plan in
       let mask = Array.map (fun a -> a > theta_cut -. 1e-15) angles in
       let dropped_count = Array.length (Array.of_list (List.filter not (Array.to_list mask))) in
       Alcotest.(check bool) "kept consistent" true
         (kept = Array.length angles - dropped_count || kept <= Array.length angles);
       let f = Dropout.(hard_kept { tau; theta_cut; kept_count = kept; power = 1;
                                    weights = Array.make (Array.length angles) 1.;
                                    expected_fidelity = 1. } plan) in
       Alcotest.(check bool) "hard mask meets tau" true (Plan.fidelity ~kept:f plan u >= tau -. 1e-9))
    [ 0.999; 0.99; 0.95 ]

let test_threshold_monotone_in_tau () =
  let plan, u = tree_plan 2 16 4 4 in
  let _, kept_strict = Dropout.find_threshold plan u ~tau:0.999 in
  let _, kept_loose = Dropout.find_threshold plan u ~tau:0.95 in
  Alcotest.(check bool) "looser tau keeps fewer" true (kept_loose <= kept_strict)

let test_policy_shapes () =
  let rng = Rng.create 3 in
  let plan, u = tree_plan 3 16 4 4 in
  let p = Dropout.make_policy ~iterations:10 rng plan u ~tau:0.95 in
  Alcotest.(check int) "weights per rotation" (Plan.rotation_count plan)
    (Array.length p.Dropout.weights);
  Alcotest.(check bool) "kept within range" true
    (p.Dropout.kept_count >= 0 && p.Dropout.kept_count <= Plan.rotation_count plan);
  Alcotest.(check bool) "expected fidelity plausible" true
    (p.Dropout.expected_fidelity > 0.8 && p.Dropout.expected_fidelity <= 1.)

let test_sample_kept_count () =
  let rng = Rng.create 4 in
  let plan, u = tree_plan 4 16 4 4 in
  let p = Dropout.make_policy ~iterations:10 rng plan u ~tau:0.95 in
  for _ = 1 to 50 do
    let kept = Dropout.sample_kept rng p plan in
    let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 kept in
    Alcotest.(check int) "exactly M kept" p.Dropout.kept_count count
  done

let test_large_angles_always_survive () =
  (* With the |θ/Θ|^K weights, rotations far above the threshold are
     essentially never dropped. *)
  let rng = Rng.create 5 in
  let plan, u = tree_plan 5 16 4 4 in
  let p = Dropout.make_policy ~iterations:10 rng plan u ~tau:0.95 in
  let angles = Plan.angles plan in
  for _ = 1 to 30 do
    let kept = Dropout.sample_kept rng p plan in
    Array.iteri
      (fun i a ->
         if a > 3. *. Float.max p.Dropout.theta_cut 0.05 then
           Alcotest.(check bool) "large angle kept" true kept.(i))
      angles
  done

let test_hard_kept_is_largest () =
  let plan, u = tree_plan 6 12 3 4 in
  let p = Dropout.make_policy ~iterations:10 (Rng.create 6) plan u ~tau:0.95 in
  let kept = Dropout.hard_kept p plan in
  let angles = Plan.angles plan in
  let max_dropped =
    Array.to_list (Array.mapi (fun i a -> (kept.(i), a)) angles)
    |> List.filter_map (fun (k, a) -> if k then None else Some a)
    |> List.fold_left Float.max 0.
  in
  let min_kept =
    Array.to_list (Array.mapi (fun i a -> (kept.(i), a)) angles)
    |> List.filter_map (fun (k, a) -> if k then Some a else None)
    |> List.fold_left Float.min infinity
  in
  Alcotest.(check bool) "threshold separation" true (max_dropped <= min_kept +. 1e-12)

let test_degenerate_policy_keeps_all () =
  (* tau = 1.0 forbids dropping anything. *)
  let rng = Rng.create 7 in
  let plan, u = tree_plan 7 12 3 4 in
  let p = Dropout.make_policy ~iterations:5 rng plan u ~tau:1.0 in
  Alcotest.(check int) "keeps all" (Plan.rotation_count plan) p.Dropout.kept_count;
  Alcotest.(check (float 1e-12)) "no reduction" 0. (Dropout.dropped_fraction p plan)

let test_invalid_tau () =
  let plan, u = tree_plan 8 12 3 4 in
  Alcotest.check_raises "tau 0" (Invalid_argument "Dropout.find_threshold: tau out of (0,1]")
    (fun () -> ignore (Dropout.find_threshold plan u ~tau:0.))

let test_expected_fidelity_near_tau () =
  (* τ_K should land in the neighbourhood of the requested τ — it is the
     average fidelity of the per-shot approximations. *)
  let rng = Rng.create 9 in
  let plan, u = tree_plan 9 20 4 5 in
  let p = Dropout.make_policy ~iterations:20 rng plan u ~tau:0.95 in
  Alcotest.(check bool)
    (Printf.sprintf "tauK=%.4f near tau" p.Dropout.expected_fidelity)
    true
    (p.Dropout.expected_fidelity > 0.90 && p.Dropout.expected_fidelity <= 1.)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sampled masks keep exactly M with valid weights" ~count:20
      small_int
      (fun seed ->
         let rng = Rng.create seed in
         let plan, u = tree_plan (seed + 100) 12 3 4 in
         let p = Dropout.make_policy ~iterations:5 rng plan u ~tau:0.93 in
         let kept = Dropout.sample_kept rng p plan in
         Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 kept
         = p.Dropout.kept_count);
    Test.make ~name:"per-shot fidelity stays reasonable" ~count:10 small_int
      (fun seed ->
         let rng = Rng.create seed in
         let plan, u = tree_plan (seed + 200) 12 3 4 in
         let p = Dropout.make_policy ~iterations:5 rng plan u ~tau:0.95 in
         let kept = Dropout.sample_kept rng p plan in
         Plan.fidelity ~kept plan u > 0.7);
  ]

let () =
  Alcotest.run "bose_dropout"
    [
      ( "threshold",
        [
          Alcotest.test_case "respects tau" `Quick test_find_threshold_respects_tau;
          Alcotest.test_case "monotone in tau" `Quick test_threshold_monotone_in_tau;
          Alcotest.test_case "invalid tau" `Quick test_invalid_tau;
        ] );
      ( "policy",
        [
          Alcotest.test_case "shapes" `Quick test_policy_shapes;
          Alcotest.test_case "sample count" `Quick test_sample_kept_count;
          Alcotest.test_case "large angles survive" `Quick test_large_angles_always_survive;
          Alcotest.test_case "hard mask largest" `Quick test_hard_kept_is_largest;
          Alcotest.test_case "degenerate keeps all" `Quick test_degenerate_policy_keeps_all;
          Alcotest.test_case "tauK near tau" `Quick test_expected_fidelity_near_tau;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_tests);
    ]
