(* Boundary-condition tests across the whole stack: single qumodes,
   empty structures, degenerate parameters, and size-1 devices. *)

module Rng = Bose_util.Rng
module Dist = Bose_util.Dist
module Combin = Bose_util.Combin
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
open Bose_hardware
open Bose_decomp
open Bosehedral

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------- smallest *)

let test_one_by_one_unitary () =
  (* A 1×1 unitary is a pure phase: zero rotations, one Λ entry. *)
  let u = Mat.init 1 1 (fun _ _ -> Cx.exp_i 0.7) in
  let plan = Eliminate.decompose (Pattern.chain 1) u in
  Alcotest.(check int) "no rotations" 0 (Plan.rotation_count plan);
  Alcotest.(check bool) "reconstructs" true (Mat.equal ~tol:1e-12 (Plan.reconstruct plan) u)

let test_two_mode_device () =
  let rng = Rng.create 1 in
  let u = Unitary.haar_random rng 2 in
  let device = Lattice.create ~rows:1 ~cols:2 in
  List.iter
    (fun config ->
       let c = Compiler.compile ~rng ~device ~config ~tau:0.99 u in
       Alcotest.(check int) "one rotation" 1 (Plan.rotation_count c.Compiler.plan);
       Alcotest.(check bool) "exact without drops" true
         (Mat.equal ~tol:1e-9 (Compiler.approx_unitary c)
            u
          || Compiler.beamsplitter_reduction c > 0.))
    Config.all

let test_identity_unitary_all_angles_zero () =
  (* The identity decomposes into all-zero rotations: everything is
     droppable at any fidelity. *)
  let n = 9 in
  let u = Mat.identity n in
  let plan = Eliminate.decompose_baseline u in
  Array.iter (fun a -> check_close "zero angle" 1e-12 0. a) (Plan.angles plan);
  let rng = Rng.create 2 in
  let device = Lattice.create ~rows:3 ~cols:3 in
  let c = Compiler.compile ~rng ~device ~config:Config.Full_opt ~tau:0.9999 u in
  check_close "everything dropped" 1e-9 1. (Compiler.beamsplitter_reduction c)

let test_permutation_unitary () =
  (* Permutation matrices have entries 0/1 only: eliminations meet exact
     zeros and exact ones. *)
  let rng = Rng.create 3 in
  let p = Bose_linalg.Perm.random rng 8 in
  let u = Bose_linalg.Perm.matrix p in
  let plan = Eliminate.decompose_baseline u in
  Alcotest.(check bool) "reconstructs" true (Mat.equal ~tol:1e-9 (Plan.reconstruct plan) u)

(* ------------------------------------------------------------ emptiness *)

let test_empty_distribution_errors () =
  Alcotest.check_raises "sample empty" (Invalid_argument "Dist.sample: empty distribution")
    (fun () -> ignore (Dist.sample (Rng.create 1) Dist.empty));
  Alcotest.check_raises "normalize empty" (Invalid_argument "Dist.normalize: zero total mass")
    (fun () -> ignore (Dist.normalize Dist.empty))

let test_empty_circuit () =
  let c = Bose_circuit.Circuit.create ~modes:3 in
  Alcotest.(check int) "no gates" 0 (Bose_circuit.Circuit.length c);
  Alcotest.(check int) "depth 0" 0 (Bose_circuit.Circuit.depth c);
  let s = Bose_gbs.Simulator.run c in
  check_close "vacuum stays vacuum" 1e-12 0. (Bose_gbs.Gaussian.total_mean_photons s)

let test_patterns_zero_cutoff () =
  let d = Bose_gbs.Fock.truncated ~max_photons:0 (Bose_gbs.Gaussian.vacuum 2) in
  check_close "vacuum only" 1e-12 1. (Dist.prob d [ 0; 0 ]);
  Alcotest.(check int) "two outcomes incl. tail slot" 1 (List.length (Dist.support d))

let test_edgeless_graph_encoding_fails () =
  Alcotest.check_raises "no edges"
    (Invalid_argument "Encoding.scaling_for: graph has no edges") (fun () ->
        ignore (Bose_apps.Encoding.encode ~mean_photons:1. (Bose_apps.Graph.create 4)))

(* ----------------------------------------------------------- degeneracy *)

let test_full_squeezing_angle_pi_over_two () =
  (* Eliminating against an exactly-zero pivot gives θ = π/2. *)
  let u = Mat.of_arrays [| [| Cx.zero; Cx.one |]; [| Cx.one; Cx.zero |] |] in
  let plan = Eliminate.decompose_baseline u in
  check_close "theta = pi/2" 1e-12 (Float.pi /. 2.) (Plan.angles plan).(0);
  Alcotest.(check bool) "reconstructs" true (Mat.equal ~tol:1e-12 (Plan.reconstruct plan) u)

let test_tau_one_never_drops () =
  let rng = Rng.create 4 in
  let u = Unitary.haar_random rng 9 in
  let c =
    Compiler.compile ~rng ~device:(Lattice.create ~rows:3 ~cols:3) ~config:Config.Full_opt
      ~tau:1.0 u
  in
  check_close "no reduction" 1e-12 0. (Compiler.beamsplitter_reduction c);
  Alcotest.(check (option (array bool))) "no mask" None (Compiler.shot_mask rng c)

let test_zero_loss_noise_is_ideal () =
  let model = Bose_circuit.Noise.uniform 0. in
  Alcotest.(check (float 0.)) "bs" 0.
    (Bose_circuit.Noise.loss_of_gate model (Bose_circuit.Gate.Beamsplitter (0, 1, 0.1, 0.)))

let test_zero_squeezing_gate_is_identity () =
  let s = Bose_gbs.Gaussian.vacuum 1 in
  Bose_gbs.Gaussian.squeeze s 0 Cx.zero;
  check_close "still vacuum" 1e-12 0. (Bose_gbs.Gaussian.mean_photons s 0)

let test_thermal_zero_is_vacuum () =
  let t = Bose_gbs.Gaussian.thermal 2 [| 0.; 0. |] in
  check_close "vacuum" 1e-12 0. (Bose_gbs.Gaussian.total_mean_photons t);
  Array.iter
    (fun nu -> check_close "nu = 1" 1e-9 1. nu)
    (Bose_gbs.Gaussian.symplectic_eigenvalues t)

(* -------------------------------------------------------------- devices *)

let test_single_row_device_compiles () =
  (* A 1×N line has no branches: the tree degenerates to the chain but
     everything must still work. *)
  let rng = Rng.create 5 in
  let u = Unitary.haar_random rng 6 in
  let device = Lattice.create ~rows:1 ~cols:6 in
  List.iter
    (fun config ->
       let c = Compiler.compile ~rng ~device ~config ~tau:0.99 u in
       match Compiler.verify c with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Config.name config ^ ": " ^ e))
    Config.all

let test_single_qumode_program_on_big_device () =
  let u = Mat.init 1 1 (fun _ _ -> Cx.one) in
  let rng = Rng.create 6 in
  let c =
    Compiler.compile ~rng ~device:(Lattice.create ~rows:6 ~cols:6) ~config:Config.Full_opt
      ~tau:0.99 u
  in
  Alcotest.(check int) "no rotations" 0 (Plan.rotation_count c.Compiler.plan)

let test_combin_degenerate () =
  Alcotest.(check int) "0 photons 1 mode" 1 (List.length (Combin.compositions 0 1));
  Alcotest.(check (list (list int))) "pattern [0]" [ [ 0 ] ] (Combin.compositions 0 1);
  Alcotest.(check int) "n into 0 parts" 0 (List.length (Combin.compositions 3 0))

let () =
  Alcotest.run "edge_cases"
    [
      ( "smallest",
        [
          Alcotest.test_case "1x1 unitary" `Quick test_one_by_one_unitary;
          Alcotest.test_case "two-mode device" `Quick test_two_mode_device;
          Alcotest.test_case "identity unitary" `Quick test_identity_unitary_all_angles_zero;
          Alcotest.test_case "permutation unitary" `Quick test_permutation_unitary;
        ] );
      ( "emptiness",
        [
          Alcotest.test_case "empty distribution" `Quick test_empty_distribution_errors;
          Alcotest.test_case "empty circuit" `Quick test_empty_circuit;
          Alcotest.test_case "zero cutoff" `Quick test_patterns_zero_cutoff;
          Alcotest.test_case "edgeless graph" `Quick test_edgeless_graph_encoding_fails;
        ] );
      ( "degeneracy",
        [
          Alcotest.test_case "pi/2 rotation" `Quick test_full_squeezing_angle_pi_over_two;
          Alcotest.test_case "tau = 1" `Quick test_tau_one_never_drops;
          Alcotest.test_case "zero loss" `Quick test_zero_loss_noise_is_ideal;
          Alcotest.test_case "zero squeeze" `Quick test_zero_squeezing_gate_is_identity;
          Alcotest.test_case "thermal zero" `Quick test_thermal_zero_is_vacuum;
        ] );
      ( "devices",
        [
          Alcotest.test_case "1xN line" `Quick test_single_row_device_compiles;
          Alcotest.test_case "1-qumode program" `Quick test_single_qumode_program_on_big_device;
          Alcotest.test_case "combinatorics" `Quick test_combin_degenerate;
        ] );
    ]
