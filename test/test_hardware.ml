(* Unit and property tests for the bose_hardware library: lattices,
   elimination-pattern templates, zigzag embedding. *)

open Bose_hardware

(* -------------------------------------------------------------- Lattice *)

let test_lattice_basics () =
  let l = Lattice.create ~rows:3 ~cols:4 in
  Alcotest.(check int) "size" 12 (Lattice.size l);
  Alcotest.(check int) "index" 7 (Lattice.index l 1 3);
  Alcotest.(check (pair int int)) "coords" (1, 3) (Lattice.coords l 7)

let test_lattice_neighbors () =
  let l = Lattice.create ~rows:3 ~cols:3 in
  Alcotest.(check (list int)) "corner" [ 1; 3 ] (Lattice.neighbors l 0);
  Alcotest.(check (list int)) "center" [ 1; 3; 5; 7 ] (Lattice.neighbors l 4);
  Alcotest.(check bool) "adjacent" true (Lattice.adjacent l 4 5);
  Alcotest.(check bool) "diagonal not adjacent" false (Lattice.adjacent l 0 4)

let test_lattice_edge_count () =
  (* r×c grid has r(c−1) + c(r−1) edges. *)
  List.iter
    (fun (r, c) ->
       let l = Lattice.create ~rows:r ~cols:c in
       Alcotest.(check int)
         (Printf.sprintf "%dx%d edges" r c)
         ((r * (c - 1)) + (c * (r - 1)))
         (List.length (Lattice.edges l)))
    [ (1, 5); (2, 3); (6, 6); (5, 7); (3, 8) ]

let test_lattice_snake () =
  let l = Lattice.create ~rows:3 ~cols:3 in
  let path = Lattice.snake_path l in
  Alcotest.(check int) "visits all" 9 (List.length (List.sort_uniq compare path));
  (* Consecutive snake sites are physically adjacent. *)
  let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
  List.iter
    (fun (a, b) -> Alcotest.(check bool) "adjacent steps" true (Lattice.adjacent l a b))
    (pairs path)

let test_lattice_invalid () =
  Alcotest.check_raises "zero rows"
    (Invalid_argument "Lattice.create: dimensions must be positive") (fun () ->
        ignore (Lattice.create ~rows:0 ~cols:3))

(* -------------------------------------------------------------- Pattern *)

let test_chain_is_reck () =
  let p = Pattern.chain 4 in
  Alcotest.(check string) "valid" "ok" (Result.get_ok (Pattern.validate p));
  (* Reck order: row 3 eliminated by the chain 0→1→2→3, etc. *)
  Alcotest.(check (list (pair int int))) "row 3" [ (0, 1); (1, 2); (2, 3) ]
    (Pattern.schedule p ~stage:4);
  Alcotest.(check (list (pair int int))) "row 2" [ (0, 1); (1, 2) ]
    (Pattern.schedule p ~stage:3);
  Alcotest.(check (list (pair int int))) "row 1" [ (0, 1) ] (Pattern.schedule p ~stage:2)

let test_schedule_counts () =
  let p = Pattern.chain 9 in
  let total =
    List.fold_left (fun acc (_, l) -> acc + List.length l) 0 (Pattern.full_schedule p)
  in
  Alcotest.(check int) "N(N-1)/2 rotations" 36 total

let test_schedule_dependency_order () =
  (* A child must be eliminated before its parent is eliminated. *)
  let l = Lattice.create ~rows:6 ~cols:6 in
  let p = Embedding.for_program l 24 in
  List.iter
    (fun (_, elims) ->
       let eliminated = Hashtbl.create 24 in
       List.iter
         (fun (m, n) ->
            Alcotest.(check bool) "eliminator still active" false (Hashtbl.mem eliminated n);
            Alcotest.(check bool) "no double elimination" false (Hashtbl.mem eliminated m);
            Hashtbl.add eliminated m ())
         elims)
    (Pattern.full_schedule p)

let test_schedule_root_is_stage_minus_one () =
  (* Each stage accumulates everything into label stage−1: that label is
     the target of the final elimination and never a source. *)
  let p = Pattern.chain 7 in
  List.iter
    (fun stage ->
       let elims = Pattern.schedule p ~stage in
       let root = stage - 1 in
       let sources = List.map fst elims in
       Alcotest.(check bool) "root not a source" false (List.mem root sources);
       let _, last_n = List.nth elims (List.length elims - 1) in
       Alcotest.(check int) "last elimination targets root" root last_n)
    [ 2; 3; 4; 5; 6; 7 ]

let test_branch_regions_partition () =
  let l = Lattice.create ~rows:6 ~cols:6 in
  let p = Embedding.for_program l 24 in
  let regions = Pattern.branch_regions p in
  let all = List.sort compare (List.concat regions) in
  Alcotest.(check (list int)) "partition" (List.init 24 (fun i -> i)) all;
  (* First region is the main path. *)
  Alcotest.(check (list int)) "main first" (Pattern.main_path_labels p) (List.hd regions)

let test_restrict_validity () =
  let l = Lattice.create ~rows:4 ~cols:8 in
  let full = Embedding.zigzag l in
  List.iter
    (fun k ->
       let p = Pattern.restrict full k in
       Alcotest.(check int) "size" k (Pattern.size p);
       Alcotest.(check string) (Printf.sprintf "restrict %d valid" k) "ok"
         (Result.get_ok (Pattern.validate p)))
    [ 1; 2; 8; 17; 24; 32 ]

let test_max_degree_four () =
  (* The template promises at most four neighbors per node (§IV-A). *)
  List.iter
    (fun (r, c) ->
       let p = Embedding.zigzag (Lattice.create ~rows:r ~cols:c) in
       for v = 0 to Pattern.size p - 1 do
         Alcotest.(check bool) "degree ≤ 4" true (List.length (Pattern.neighbors p v) <= 4)
       done)
    [ (6, 6); (5, 7); (3, 8); (4, 8); (7, 9); (2, 5); (1, 6) ]

(* ------------------------------------------------------------ Embedding *)

let test_embedding_hardware_compatible () =
  (* Every tree edge must be a physical lattice coupling: this is the
     §III-B connectivity constraint. *)
  List.iter
    (fun (r, c) ->
       let l = Lattice.create ~rows:r ~cols:c in
       let p = Embedding.zigzag l in
       for v = 0 to Pattern.size p - 1 do
         let sv = Option.get (Pattern.site p v) in
         List.iter
           (fun w ->
              let sw = Option.get (Pattern.site p w) in
              Alcotest.(check bool)
                (Printf.sprintf "%dx%d edge %d-%d physical" r c v w)
                true (Lattice.adjacent l sv sw))
           (Pattern.neighbors p v)
       done)
    [ (6, 6); (5, 7); (3, 8); (4, 8); (8, 4); (7, 7); (2, 6); (1, 5); (9, 3) ]

let test_embedding_valid_many_shapes () =
  for r = 1 to 9 do
    for c = 1 to 9 do
      let p = Embedding.zigzag (Lattice.create ~rows:r ~cols:c) in
      match Pattern.validate p with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%dx%d invalid: %s" r c e)
    done
  done

let test_embedding_has_branches () =
  (* On a 6×6 device the tree pattern must have strictly fewer main-path
     nodes than total nodes — branches exist for small-angle creation. *)
  let p = Embedding.zigzag (Lattice.create ~rows:6 ~cols:6) in
  let mains = List.length (Pattern.main_path_labels p) in
  Alcotest.(check bool) "has branches" true (mains < Pattern.size p);
  Alcotest.(check bool) "main path nonempty" true (mains > 0)

let test_for_program_sizes () =
  let l = Lattice.create ~rows:6 ~cols:6 in
  Alcotest.(check int) "24 of 36" 24 (Pattern.size (Embedding.for_program l 24));
  Alcotest.check_raises "too big"
    (Invalid_argument "Embedding.for_program: program larger than device") (fun () ->
        ignore (Embedding.for_program l 37))

let test_baseline_is_chain () =
  let l = Lattice.create ~rows:6 ~cols:6 in
  let p = Embedding.baseline l 24 in
  Alcotest.(check string) "valid" "ok" (Result.get_ok (Pattern.validate p));
  (* A chain: every node has ≤ 2 neighbors. *)
  for v = 0 to 23 do
    Alcotest.(check bool) "chain degree" true (List.length (Pattern.neighbors p v) <= 2)
  done;
  (* And sits on physically adjacent sites. *)
  for v = 0 to 23 do
    let sv = Option.get (Pattern.site p v) in
    List.iter
      (fun w ->
         Alcotest.(check bool) "physical" true
           (Lattice.adjacent l sv (Option.get (Pattern.site p w))))
      (Pattern.neighbors p v)
  done

(* ------------------------------------------------------------- Coupling *)

let test_of_kind_string () =
  (* One parser for every lattice-kind spelling, shared by `bosec
     analyze --coupling`, `bosec layouts` and the examples. *)
  Alcotest.(check (list string)) "kinds" [ "square"; "triangular"; "hexagonal" ]
    Coupling.kind_names;
  List.iter
    (fun kind ->
       match Coupling.of_kind_string ~rows:3 ~cols:4 kind with
       | Ok c -> Alcotest.(check int) (kind ^ " size") 12 (Coupling.size c)
       | Error msg -> Alcotest.fail (kind ^ ": " ^ msg))
    Coupling.kind_names;
  (match Coupling.of_kind_string ~rows:3 ~cols:4 "moebius" with
   | Ok _ -> Alcotest.fail "moebius parsed"
   | Error msg ->
     let contains needle =
       let nh = String.length needle and nm = String.length msg in
       let rec at i = i + nh <= nm && (String.sub msg i nh = needle || at (i + 1)) in
       at 0
     in
     List.iter
       (fun kind ->
          Alcotest.(check bool) ("error names " ^ kind) true (contains kind))
       Coupling.kind_names);
  (* Parsing is case-sensitive, like Config.of_string. *)
  Alcotest.(check bool) "case sensitive" true
    (Result.is_error (Coupling.of_kind_string ~rows:2 ~cols:2 "Square"))

let test_coupling_single_node () =
  (* n = 1: no edges to give, trivially connected. *)
  let c = Coupling.of_edges ~n:1 [] in
  Alcotest.(check int) "size" 1 (Coupling.size c);
  Alcotest.(check (list int)) "dominating path" [ 0 ] (Coupling.dominating_path c);
  let p = Embedding.of_coupling c in
  Alcotest.(check int) "pattern size" 1 (Pattern.size p);
  Alcotest.(check string) "pattern valid" "ok" (Result.get_ok (Pattern.validate p));
  Alcotest.(check (list int)) "main path" [ 0 ] (Pattern.main_path_labels p)

let test_coupling_disconnected () =
  (* of_edges is the single point that rejects disconnected graphs, so
     everything downstream (dominating_path, of_coupling) can assume
     connectivity. *)
  Alcotest.check_raises "two components"
    (Invalid_argument "Coupling.of_edges: graph is disconnected") (fun () ->
        ignore (Coupling.of_edges ~n:4 [ (0, 1); (2, 3) ]));
  Alcotest.check_raises "isolated vertex"
    (Invalid_argument "Coupling.of_edges: graph is disconnected") (fun () ->
        ignore (Coupling.of_edges ~n:3 [ (0, 1) ]));
  Alcotest.check_raises "no edges at all"
    (Invalid_argument "Coupling.of_edges: graph is disconnected") (fun () ->
        ignore (Coupling.of_edges ~n:2 []))

let test_dominating_path_covers () =
  (* The path's closed neighborhood covers every qumode on layouts the
     greedy walk handles (rings, chains, grids). *)
  List.iter
    (fun (name, c) ->
       let path = Coupling.dominating_path c in
       let n = Coupling.size c in
       let covered = Array.make n false in
       List.iter
         (fun v ->
            covered.(v) <- true;
            List.iter (fun w -> covered.(w) <- true) (Coupling.neighbors c v))
         path;
       Alcotest.(check bool) (name ^ " covered") true
         (Array.for_all Fun.id covered))
    [
      ("chain 8", Coupling.of_edges ~n:8 (List.init 7 (fun i -> (i, i + 1))));
      ( "ring 8",
        Coupling.of_edges ~n:8 ((0, 7) :: List.init 7 (fun i -> (i, i + 1))) );
      ("grid 4x4", Coupling.of_lattice (Lattice.create ~rows:4 ~cols:4));
    ]

(* -------------------------------------------------------------- Target *)

let test_target_registry () =
  let names = Target.names () in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "zigzag"; "timebin-loop"; "orca-shallow" ];
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
  Alcotest.(check bool) "find hit" true (Option.is_some (Target.find "zigzag"));
  Alcotest.(check bool) "find miss" true (Option.is_none (Target.find "nokia-3310"));
  Alcotest.(check int) "all matches names" (List.length names)
    (List.length (Target.all ()))

let test_target_register_validation () =
  let dummy name = { Target.zigzag with Target.name } in
  Alcotest.check_raises "empty name"
    (Invalid_argument "Target.register: empty name") (fun () ->
        Target.register (dummy ""));
  Alcotest.check_raises "whitespace"
    (Invalid_argument "Target.register: name must not contain whitespace") (fun () ->
        Target.register (dummy "bad name"));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Target.register: duplicate target zigzag") (fun () ->
        Target.register (dummy "zigzag"))

let test_target_builtins () =
  (* zigzag is a grid target whose device holds the program... *)
  (match Target.device Target.zigzag 10 with
   | None -> Alcotest.fail "zigzag has no device"
   | Some l -> Alcotest.(check bool) "device fits" true (Lattice.size l >= 10));
  Alcotest.(check (option int)) "zigzag unbounded depth" None
    (Target.zigzag.Target.max_depth 32);
  (* ...the graph targets have no lattice and bounded depth. *)
  List.iter
    (fun (t : Target.t) ->
       Alcotest.(check bool) (t.Target.name ^ " no device") true
         (Option.is_none (Target.device t 8));
       Alcotest.(check bool) (t.Target.name ^ " bounded depth") true
         (Option.is_some (t.Target.max_depth 8)))
    [ Target.timebin_loop; Target.orca_shallow ];
  (* Derived patterns are valid, correctly sized, and sited on the
     coupling graph for every program size. *)
  List.iter
    (fun (t : Target.t) ->
       List.iter
         (fun n ->
            let p = Target.pattern t n in
            Alcotest.(check int) (Printf.sprintf "%s n=%d size" t.Target.name n) n
              (Pattern.size p);
            Alcotest.(check string)
              (Printf.sprintf "%s n=%d valid" t.Target.name n)
              "ok"
              (Result.get_ok (Pattern.validate p));
            let c = Target.coupling t n in
            for v = 0 to n - 1 do
              match Pattern.site p v with
              | None -> ()
              | Some sv ->
                List.iter
                  (fun w ->
                     match Pattern.site p w with
                     | None -> ()
                     | Some sw ->
                       Alcotest.(check bool)
                         (Printf.sprintf "%s n=%d edge %d-%d coupled" t.Target.name n
                            v w)
                         true (Coupling.adjacent c sv sw))
                  (Pattern.neighbors p v)
            done)
         [ 1; 2; 3; 8; 16; 25 ])
    (Target.all ());
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Target.pattern: program needs at least one qumode") (fun () ->
        ignore (Target.pattern Target.zigzag 0))

let test_target_depth_headroom () =
  (* The built-in ceilings must clear the worst-case chain (Reck) ASAP
     depth 2N-3, or every full-plan compile would lint BH1102/BH1303. *)
  List.iter
    (fun n ->
       (match Target.orca_shallow.Target.max_depth n with
        | Some limit ->
          Alcotest.(check bool)
            (Printf.sprintf "orca n=%d headroom" n)
            true
            (limit >= (2 * n) - 3)
        | None -> Alcotest.fail "orca has a ceiling");
       match Target.timebin_loop.Target.max_depth n with
       | Some limit ->
         Alcotest.(check bool)
           (Printf.sprintf "timebin n=%d headroom" n)
           true
           (limit >= (2 * n) - 3)
       | None -> Alcotest.fail "timebin has a ceiling")
    [ 2; 8; 16; 32; 64 ]

(* ------------------------------------------------------------ properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"zigzag restriction always valid" ~count:100
      (triple (int_range 1 8) (int_range 1 8) small_nat)
      (fun (r, c, k) ->
         let l = Lattice.create ~rows:r ~cols:c in
         let size = Lattice.size l in
         let k = 1 + (k mod size) in
         let p = Embedding.for_program l k in
         Result.is_ok (Pattern.validate p) && Pattern.size p = k);
    Test.make ~name:"full_schedule emits N(N-1)/2 rotations" ~count:50
      (pair (int_range 2 7) (int_range 2 7))
      (fun (r, c) ->
         let p = Embedding.zigzag (Lattice.create ~rows:r ~cols:c) in
         let n = Pattern.size p in
         let total =
           List.fold_left (fun acc (_, l) -> acc + List.length l) 0 (Pattern.full_schedule p)
         in
         total = n * (n - 1) / 2);
    Test.make ~name:"schedule pairs are tree edges" ~count:50
      (pair (int_range 2 7) (int_range 2 7))
      (fun (r, c) ->
         let p = Embedding.zigzag (Lattice.create ~rows:r ~cols:c) in
         List.for_all
           (fun (_, elims) ->
              List.for_all (fun (m, n) -> List.mem n (Pattern.neighbors p m)) elims)
           (Pattern.full_schedule p));
  ]

let () =
  Alcotest.run "bose_hardware"
    [
      ( "lattice",
        [
          Alcotest.test_case "basics" `Quick test_lattice_basics;
          Alcotest.test_case "neighbors" `Quick test_lattice_neighbors;
          Alcotest.test_case "edge count" `Quick test_lattice_edge_count;
          Alcotest.test_case "snake path" `Quick test_lattice_snake;
          Alcotest.test_case "invalid" `Quick test_lattice_invalid;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "chain is Reck" `Quick test_chain_is_reck;
          Alcotest.test_case "schedule counts" `Quick test_schedule_counts;
          Alcotest.test_case "dependency order" `Quick test_schedule_dependency_order;
          Alcotest.test_case "stage roots" `Quick test_schedule_root_is_stage_minus_one;
          Alcotest.test_case "branch regions" `Quick test_branch_regions_partition;
          Alcotest.test_case "restrict validity" `Quick test_restrict_validity;
          Alcotest.test_case "max degree 4" `Quick test_max_degree_four;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "hardware compatible" `Quick test_embedding_hardware_compatible;
          Alcotest.test_case "many shapes valid" `Quick test_embedding_valid_many_shapes;
          Alcotest.test_case "has branches" `Quick test_embedding_has_branches;
          Alcotest.test_case "for_program sizes" `Quick test_for_program_sizes;
          Alcotest.test_case "baseline chain" `Quick test_baseline_is_chain;
        ] );
      ( "coupling",
        [
          Alcotest.test_case "of_kind_string" `Quick test_of_kind_string;
          Alcotest.test_case "single node" `Quick test_coupling_single_node;
          Alcotest.test_case "disconnected rejected" `Quick test_coupling_disconnected;
          Alcotest.test_case "dominating path covers" `Quick test_dominating_path_covers;
        ] );
      ( "target",
        [
          Alcotest.test_case "registry" `Quick test_target_registry;
          Alcotest.test_case "register validation" `Quick test_target_register_validation;
          Alcotest.test_case "builtins" `Quick test_target_builtins;
          Alcotest.test_case "depth headroom" `Quick test_target_depth_headroom;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_tests);
    ]
