(* Tests for the bose_lint static-verification engine: a clean compile
   produces zero diagnostics at several sizes, every corruption class
   fires its catalogued code (docs/DIAGNOSTICS.md), parse failures come
   back as line-located diagnostics instead of exceptions, view
   aliasing is detected, and the settings (disable / werror) behave. *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Perm = Bose_linalg.Perm
module Givens = Bose_linalg.Givens
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Plan = Bose_decomp.Plan
module Mapping = Bose_mapping.Mapping
module Dropout = Bose_dropout.Dropout
module Lint = Bose_lint.Lint
module Diag = Bose_lint.Diag
open Bosehedral

let codes ds = List.map (fun (d : Diag.t) -> d.Diag.code) ds
let has_code code ds = List.mem code (codes ds)

let check_code name code ds =
  Alcotest.(check bool) (name ^ ": fires " ^ code) true (has_code code ds)

let compile_n n =
  let rng = Rng.create (1000 + n) in
  let rows = if n <= 4 then 2 else if n <= 8 then 2 else 4 in
  let device = Lattice.create ~rows ~cols:(n / rows) in
  let u = Unitary.haar_random rng n in
  (Compiler.compile ~rng ~device ~config:Config.Full_opt ~tau:0.999 u, u)

(* --- positive: clean compiles lint clean ------------------------- *)

let test_clean_compile () =
  List.iter
    (fun n ->
       let compiled, u = compile_n n in
       let ds = Compiler.lint ~unitary:u compiled in
       Alcotest.(check (list string))
         (Printf.sprintf "N=%d: no diagnostics" n)
         [] (codes ds);
       Alcotest.(check bool)
         (Printf.sprintf "N=%d: verify ok" n)
         true
         (Compiler.verify compiled = Ok ()))
    [ 4; 8; 16 ]

let test_empty_subject () =
  Alcotest.(check (list string)) "empty subject is clean" [] (codes (Lint.run Lint.empty))

let test_summary_wording () =
  Alcotest.(check string) "zero summary" "0 errors, 0 warnings, 0 info" (Diag.summary []);
  let ds = [ Diag.error ~code:"BH0401" "x"; Diag.warning ~code:"BH0407" "y" ] in
  Alcotest.(check string) "singular forms" "1 error, 1 warning, 0 info" (Diag.summary ds)

(* --- unitary health ---------------------------------------------- *)

let test_unitary_health () =
  let not_square = Mat.create 3 4 in
  check_code "non-square" "BH0101"
    (Lint.run { Lint.empty with Lint.unitary = Some not_square });
  let u = Unitary.haar_random (Rng.create 7) 5 in
  Mat.set u 2 3 (Cx.make Float.nan 0.);
  let ds = Lint.run { Lint.empty with Lint.unitary = Some u } in
  check_code "NaN entry" "BH0102" ds;
  Alcotest.(check bool) "NaN is an error" true (List.exists Diag.is_error ds);
  let not_unitary = Mat.identity 4 in
  Mat.set not_unitary 1 1 (Cx.make 3. 0.);
  check_code "unitarity residual" "BH0103"
    (Lint.run { Lint.empty with Lint.unitary = Some not_unitary })

(* --- permutations and mapping ------------------------------------ *)

let test_non_bijective_perm () =
  let ds = Lint.run { Lint.empty with Lint.perms = [ ("rowp", [| 0; 0; 2 |]) ] } in
  check_code "duplicate image" "BH0302" ds;
  let ds = Lint.run { Lint.empty with Lint.perms = [ ("rowp", [| 0; 5; 1 |]) ] } in
  check_code "out of range" "BH0302" ds;
  let ds = Lint.run { Lint.empty with Lint.perms = [ ("ok", [| 2; 0; 1 |]) ] } in
  Alcotest.(check (list string)) "valid perm is clean" [] (codes ds)

let test_mapping_size_mismatch () =
  let m =
    {
      Mapping.permuted = Mat.identity 3;
      row_perm = Perm.identity 2;
      col_perm = Perm.identity 3;
      indicator_k = 1;
      small_angles = 0;
    }
  in
  check_code "perm/unitary size" "BH0301"
    (Lint.run { Lint.empty with Lint.mapping = Some m })

let test_mapping_recovery_mismatch () =
  (* A mapping whose permuted matrix is NOT the permutation of the
     claimed program unitary: recovery cannot be bit-exact. *)
  let u = Unitary.haar_random (Rng.create 11) 4 in
  let m = Mapping.trivial (Unitary.haar_random (Rng.create 12) 4) in
  check_code "recovery not bit-exact" "BH0304"
    (Lint.run { Lint.empty with Lint.unitary = Some u; mapping = Some m })

(* --- plan corruption --------------------------------------------- *)

let test_corrupted_plan_step () =
  let compiled, _ = compile_n 4 in
  let plan = compiled.Compiler.plan in
  (* Swap cos/sin of the first rotation: still normalized (so no
     structural complaint), but the replay no longer matches. *)
  let elements = Array.copy plan.Plan.elements in
  let e = elements.(0) in
  let r = e.Plan.rotation in
  elements.(0) <- { e with Plan.rotation = { r with Givens.c = r.Givens.s; s = r.Givens.c } };
  let corrupted = { plan with Plan.elements = elements } in
  let subject =
    {
      Lint.empty with
      Lint.plan = Some corrupted;
      reference = Some compiled.Compiler.mapping.Mapping.permuted;
    }
  in
  check_code "replay residual" "BH0401" (Lint.run subject);
  (* Out-of-range qumode pair: structural, and it must gate the replay
     checks (no BH0401 alongside, and no kernel assertion tripped). *)
  let elements = Array.copy plan.Plan.elements in
  let e = elements.(0) in
  elements.(0) <- { e with Plan.rotation = { e.Plan.rotation with Givens.m = 99 } } ;
  let broken = { plan with Plan.elements = elements } in
  let ds =
    Lint.run
      {
        Lint.empty with
        Lint.plan = Some broken;
        reference = Some compiled.Compiler.mapping.Mapping.permuted;
      }
  in
  check_code "invalid qumode pair" "BH0403" ds;
  Alcotest.(check bool) "structural gates replay" false (has_code "BH0401" ds)

let test_dead_rotation_warns () =
  let compiled, _ = compile_n 4 in
  let plan = compiled.Compiler.plan in
  let elements = Array.copy plan.Plan.elements in
  let e = elements.(0) in
  elements.(0) <-
    { e with Plan.rotation = { e.Plan.rotation with Givens.c = 1.; s = 0.; ere = 1.; eim = 0. } };
  let ds = Lint.run { Lint.empty with Lint.plan = Some { plan with Plan.elements = elements } } in
  let dead = List.filter (fun (d : Diag.t) -> d.Diag.code = "BH0407") ds in
  Alcotest.(check int) "one dead rotation" 1 (List.length dead);
  Alcotest.(check bool) "it is a warning, not an error" false
    (List.exists Diag.is_error dead);
  (* --werror promotes it. *)
  let settings = { Lint.default_settings with Lint.werror = true } in
  let ds = Lint.run ~settings { Lint.empty with Lint.plan = Some { plan with Plan.elements = elements } } in
  Alcotest.(check bool) "werror promotes to error" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "BH0407" && Diag.is_error d) ds)

let test_disable_code () =
  let ds =
    Lint.run
      ~settings:{ Lint.default_settings with Lint.disabled_codes = [ "BH0302" ] }
      { Lint.empty with Lint.perms = [ ("p", [| 0; 0 |]) ] }
  in
  Alcotest.(check (list string)) "disabled code is dropped" [] (codes ds);
  let ds =
    Lint.run
      ~settings:{ Lint.default_settings with Lint.disabled_passes = [ "perms" ] }
      { Lint.empty with Lint.perms = [ ("p", [| 0; 0 |]) ] }
  in
  Alcotest.(check (list string)) "disabled pass is skipped" [] (codes ds)

(* --- dropout policy ---------------------------------------------- *)

let test_policy_below_tau () =
  let compiled, _ = compile_n 8 in
  let plan = compiled.Compiler.plan in
  let policy =
    match compiled.Compiler.policy with
    | Some p -> p
    | None -> Alcotest.fail "full-opt compile must carry a policy"
  in
  (* The real policy with a doctored fidelity claim: below its own tau. *)
  let liar = { policy with Dropout.expected_fidelity = policy.Dropout.tau /. 2. } in
  check_code "fidelity below tau" "BH0503"
    (Lint.run { Lint.empty with Lint.plan = Some plan; policy = Some liar });
  (* The honest policy held to an impossible min_fidelity. *)
  check_code "min_fidelity raises the bar" "BH0503"
    (Lint.run
       {
         Lint.empty with
         Lint.plan = Some plan;
         policy = Some policy;
         min_fidelity = Some 1.5;
       });
  (* NaN weight. *)
  let weights = Array.copy policy.Dropout.weights in
  weights.(0) <- Float.nan;
  check_code "NaN weight" "BH0502"
    (Lint.run
       { Lint.empty with Lint.plan = Some plan; policy = Some { policy with Dropout.weights } })

(* --- view aliasing ----------------------------------------------- *)

let test_views_overlap () =
  let base = Mat.identity 6 in
  let other = Mat.identity 6 in
  let v1 = Mat.view base ~rows:[| 0; 1; 2 |] ~cols:[| 0; 1 |] in
  let v2 = Mat.view base ~rows:[| 2; 3 |] ~cols:[| 1; 4 |] in
  let v3 = Mat.view base ~rows:[| 4; 5 |] ~cols:[| 0; 1 |] in
  let v4 = Mat.view other ~rows:[| 0; 1; 2 |] ~cols:[| 0; 1 |] in
  Alcotest.(check bool) "shared rows+cols overlap" true (Mat.views_overlap v1 v2);
  Alcotest.(check bool) "disjoint rows do not" false (Mat.views_overlap v1 v3);
  Alcotest.(check bool) "different parents do not" false (Mat.views_overlap v1 v4);
  let ds =
    Lint.run { Lint.empty with Lint.views = [ ("dst", v1); ("src", v2); ("far", v3) ] }
  in
  let overlaps = List.filter (fun (d : Diag.t) -> d.Diag.code = "BH0701") ds in
  Alcotest.(check int) "exactly the one overlapping pair" 1 (List.length overlaps)

(* --- loaders: malformed input as diagnostics --------------------- *)

let with_temp_file content f =
  let path = Filename.temp_file "lint_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let oc = open_out path in
       output_string oc content;
       close_out oc;
       f path)

let test_load_plan_diagnostics () =
  with_temp_file "plan 4 1\nr 0 0 1 bogus 0x0p0 0x1p0 0x0p0\n" (fun path ->
      match Lint.load_plan path with
      | Ok _ -> Alcotest.fail "corrupt plan must not load"
      | Error d ->
        Alcotest.(check string) "code" "BH0801" d.Diag.code;
        Alcotest.(check bool) "line location" true (d.Diag.location = Diag.Line 2));
  match Lint.load_plan "/nonexistent/lint.plan" with
  | Ok _ -> Alcotest.fail "missing file must not load"
  | Error d -> Alcotest.(check string) "missing file code" "BH0801" d.Diag.code

let test_load_unitary_diagnostics () =
  with_temp_file "unitary 2\ne 0x1p0 0x0p0\ne nope 0x0p0\n" (fun path ->
      match Lint.load_unitary path with
      | Ok _ -> Alcotest.fail "corrupt unitary must not load"
      | Error d ->
        Alcotest.(check string) "code" "BH0802" d.Diag.code;
        Alcotest.(check bool) "line location" true (d.Diag.location = Diag.Line 3))

let test_plan_save_load_roundtrip () =
  let compiled, _ = compile_n 8 in
  let plan = compiled.Compiler.plan in
  match Plan.of_string (Plan.to_string plan) with
  | Error (msg, line) -> Alcotest.fail (Printf.sprintf "line %d: %s" line msg)
  | Ok plan' -> Alcotest.(check bool) "bit-exact round-trip" true (plan = plan')

(* --- hardware targets (BH13xx) ----------------------------------- *)

module Target = Bose_hardware.Target
module Flow = Bose_flow.Flow

let test_bh1301_unknown_target () =
  let ds = Lint.run { Lint.empty with Lint.target_name = Some "nokia-3310" } in
  check_code "unknown target" "BH1301" ds;
  Alcotest.(check int) "it is an error" 1 (Lint.errors ds);
  (* A registered name alone is clean — nothing else to check. *)
  Alcotest.(check (list string)) "known target clean" []
    (codes (Lint.run { Lint.empty with Lint.target_name = Some "zigzag" }))

let test_bh1302_provenance_mismatch () =
  let compiled, _ = compile_n 8 in
  let subject compiled_target =
    {
      Lint.empty with
      Lint.plan = Some compiled.Compiler.plan;
      target_name = Some "zigzag";
      compiled_target;
    }
  in
  check_code "cross-target plan" "BH1302" (Lint.run (subject (Some "orca-shallow")));
  Alcotest.(check (list string)) "matching provenance clean" []
    (codes (Lint.run (subject (Some "zigzag"))));
  Alcotest.(check (list string)) "absent provenance clean" []
    (codes (Lint.run (subject None)))

(* A registered-for-the-test target with a ceiling no real plan can
   meet: depth 1 regardless of size. Registration is process-global,
   which is fine — the name is unique to this suite. *)
let tiny_depth =
  let t =
    { Target.zigzag with Target.name = "test-tiny-depth"; max_depth = (fun _ -> Some 1) }
  in
  Target.register t;
  t

let test_bh1303_depth_ceiling () =
  let compiled, _ = compile_n 8 in
  let subject =
    {
      Lint.empty with
      Lint.plan = Some compiled.Compiler.plan;
      target_name = Some tiny_depth.Target.name;
    }
  in
  check_code "over ceiling" "BH1303" (Lint.run subject);
  (* With a flow backend attached, depth gating belongs to BH1102 —
     BH1303 must stay silent instead of double-reporting. *)
  let with_backend = { subject with Lint.backend = Some (Flow.backend ()) } in
  Alcotest.(check bool) "backend silences BH1303" false
    (has_code "BH1303" (Lint.run with_backend));
  (* zigzag has no ceiling: same plan, no diagnostic. *)
  Alcotest.(check (list string)) "unbounded target clean" []
    (codes (Lint.run { subject with Lint.target_name = Some "zigzag" }))

(* --- rendering --------------------------------------------------- *)

let test_json_shape () =
  let ds =
    [
      Diag.error ~code:"BH0401" ~loc:(Diag.Step 3) ~hint:"resync" "replay mismatch";
      Diag.warning ~code:"BH0407" "dead \"rotation\"";
    ]
  in
  let json = Diag.to_json ds in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("json contains " ^ needle) true (contains needle))
    [
      "\"version\":1"; "\"BH0401\""; "\"step\""; "\"resync\""; "\"errors\":1";
      "\"dead \\\"rotation\\\"\"";
    ]

let () =
  Alcotest.run "lint"
    [
      ( "positive",
        [
          Alcotest.test_case "clean compiles lint clean (N=4,8,16)" `Slow
            test_clean_compile;
          Alcotest.test_case "empty subject" `Quick test_empty_subject;
          Alcotest.test_case "summary wording" `Quick test_summary_wording;
        ] );
      ( "unitary",
        [ Alcotest.test_case "health checks" `Quick test_unitary_health ] );
      ( "mapping",
        [
          Alcotest.test_case "non-bijective permutation" `Quick test_non_bijective_perm;
          Alcotest.test_case "size mismatch" `Quick test_mapping_size_mismatch;
          Alcotest.test_case "recovery mismatch" `Quick test_mapping_recovery_mismatch;
        ] );
      ( "plan",
        [
          Alcotest.test_case "corrupted step" `Quick test_corrupted_plan_step;
          Alcotest.test_case "dead rotation warns; werror promotes" `Quick
            test_dead_rotation_warns;
          Alcotest.test_case "disable code and pass" `Quick test_disable_code;
          Alcotest.test_case "save/load round-trip" `Quick test_plan_save_load_roundtrip;
        ] );
      ( "policy", [ Alcotest.test_case "fidelity and weights" `Quick test_policy_below_tau ] );
      ( "aliasing", [ Alcotest.test_case "views_overlap" `Quick test_views_overlap ] );
      ( "loaders",
        [
          Alcotest.test_case "plan diagnostics" `Quick test_load_plan_diagnostics;
          Alcotest.test_case "unitary diagnostics" `Quick test_load_unitary_diagnostics;
        ] );
      ( "target",
        [
          Alcotest.test_case "BH1301 unknown target" `Quick test_bh1301_unknown_target;
          Alcotest.test_case "BH1302 provenance mismatch" `Quick
            test_bh1302_provenance_mismatch;
          Alcotest.test_case "BH1303 depth ceiling" `Quick test_bh1303_depth_ceiling;
        ] );
      ( "render", [ Alcotest.test_case "json shape" `Quick test_json_shape ] );
    ]
