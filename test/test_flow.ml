(* Tests for the bose_flow dataflow engine: hand-built negative
   fixtures fire each BH11xx code exactly (docs/DIAGNOSTICS.md), the
   ASAP depth matches an independent greedy-front oracle and
   Circuit.depth on random plans, the fidelity interval brackets the
   measured replay fidelity, and the transmission walk agrees with a
   gate-by-gate traversal of the emitted circuit. *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Givens = Bose_linalg.Givens
module Unitary = Bose_linalg.Unitary
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit
module Noise = Bose_circuit.Noise
module Lattice = Bose_hardware.Lattice
module Coupling = Bose_hardware.Coupling
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate
module Dropout = Bose_dropout.Dropout
module Lint = Bose_lint.Lint
module Diag = Bose_lint.Diag
module Flow = Bose_flow.Flow

let haar seed n = Unitary.haar_random (Rng.create seed) n

(* A structurally valid plan with chosen rotation pairs: unit-modulus
   phases, a fixed mixing angle, rows in elimination order. *)
let rot m n = { Givens.m; n; c = cos 0.5; s = sin 0.5; ere = 1.; eim = 0. }

let mk_plan modes pairs =
  {
    Plan.modes;
    elements =
      Array.of_list
        (List.mapi (fun i (m, n) -> { Plan.rotation = rot m n; row = i }) pairs);
    lambda = Array.init modes (fun _ -> Cx.one);
  }

let codes ds = List.map (fun (d : Diag.t) -> d.Diag.code) ds
let has_code code ds = List.mem code (codes ds)

let check_code name code ds =
  Alcotest.(check bool) (name ^ ": fires " ^ code) true (has_code code ds)

let check_no_code name code ds =
  Alcotest.(check bool) (name ^ ": no " ^ code) false (has_code code ds)

let random_kept rng k = Array.init k (fun _ -> Rng.uniform rng > 0.4)

(* --- layering ----------------------------------------------------- *)

let test_layering_basic () =
  (* (0,1) (2,3) commute; (1,2) and (0,3) each depend on both, then
     commute with each other. *)
  let plan = mk_plan 4 [ (0, 1); (2, 3); (1, 2); (0, 3) ] in
  let l = Flow.layering plan in
  Alcotest.(check int) "depth" 2 l.Flow.depth;
  Alcotest.(check (array int)) "asap" [| 0; 0; 1; 1 |] l.Flow.asap;
  Alcotest.(check int) "front 0 width" 2 (Array.length l.Flow.fronts.(0));
  (* Every rotation here is on the critical path except none: slack 0. *)
  Alcotest.(check (array int)) "slack" [| 0; 0; 0; 0 |] (Flow.slack l)

let test_layering_dropped () =
  let plan = mk_plan 4 [ (0, 1); (0, 2); (0, 3) ] in
  let l = Flow.layering ~kept:[| true; false; true |] plan in
  Alcotest.(check int) "depth skips dropped" 2 l.Flow.depth;
  Alcotest.(check int) "dropped is -1" (-1) l.Flow.asap.(1);
  let l0 = Flow.layering ~kept:[| false; false; false |] plan in
  Alcotest.(check int) "all dropped" 0 l0.Flow.depth

let test_liveness () =
  let plan = mk_plan 5 [ (0, 1); (1, 2) ] in
  let live = Flow.liveness plan in
  Alcotest.(check (list int)) "dead modes" [ 3; 4 ] live.Flow.dead;
  Alcotest.(check int) "mode 1 touches" 2 live.Flow.touches.(1);
  Alcotest.(check int) "mode 3 first" (-1) live.Flow.first_touch.(3);
  let live = Flow.liveness ~kept:[| true; false |] plan in
  Alcotest.(check (list int)) "dropout kills mode 2" [ 2; 3; 4 ] live.Flow.dead

(* --- BH11xx fixtures ---------------------------------------------- *)

let chain4 = Coupling.of_lattice (Lattice.create ~rows:1 ~cols:4)

let test_bh1101_infeasible_coupling () =
  let plan = mk_plan 4 [ (0, 1); (0, 3) ] in
  let backend = Flow.backend ~coupling:chain4 () in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; backend = Some backend } in
  check_code "non-adjacent pair" "BH1101" ds;
  (* Routing budget covers the 3-hop pair: clean. *)
  let backend = Flow.backend ~coupling:chain4 ~routing_budget:2 () in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; backend = Some backend } in
  check_no_code "within routing budget" "BH1101" ds;
  (* A site map sending label 3 off the graph: distance -1. *)
  let backend = Flow.backend ~coupling:chain4 ~sites:[| 0; 1; 2; 9 |] () in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; backend = Some backend } in
  check_code "unmapped site" "BH1101" ds

let test_bh1102_depth_limit () =
  let plan = mk_plan 4 [ (0, 1); (0, 2); (0, 3) ] in
  let backend = Flow.backend ~max_depth:2 () in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; backend = Some backend } in
  check_code "depth 3 > limit 2" "BH1102" ds;
  let backend = Flow.backend ~max_depth:3 () in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; backend = Some backend } in
  check_no_code "depth at the limit" "BH1102" ds

let test_bh1103_dead_mode () =
  let plan = mk_plan 4 [ (0, 1); (1, 2) ] in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan } in
  check_code "mode 3 never mixes" "BH1103" ds;
  Alcotest.(check bool) "dead mode is a warning, not an error" false
    (List.exists Diag.is_error ds);
  let plan = mk_plan 4 [ (0, 1); (1, 2); (2, 3) ] in
  check_no_code "all modes live" "BH1103"
    (Lint.run { Lint.empty with Lint.plan = Some plan })

let test_bh1104_loss_budget () =
  let plan = mk_plan 2 [ (0, 1) ] in
  let backend =
    Flow.backend ~noise:(Noise.uniform 0.2) ~min_transmission:0.9 ()
  in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; backend = Some backend } in
  check_code "transmission under floor" "BH1104" ds;
  let backend =
    Flow.backend ~noise:(Noise.uniform 1e-4) ~min_transmission:0.9 ()
  in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; backend = Some backend } in
  check_no_code "tiny loss passes" "BH1104" ds

let test_bh1105_bad_fronts () =
  let plan = mk_plan 3 [ (0, 1); (1, 2) ] in
  let bad = [ [ 0; 1 ] ] in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; fronts = Some bad } in
  check_code "shared mode in one front" "BH1105" ds;
  let good = [ [ 0 ]; [ 1 ] ] in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; fronts = Some good } in
  check_no_code "sequential fronts" "BH1105" ds;
  (* Elimination order: rotation 1 scheduled before rotation 0. *)
  let reversed = [ [ 1 ]; [ 0 ] ] in
  let ds = Lint.run { Lint.empty with Lint.plan = Some plan; fronts = Some reversed } in
  check_code "order violation" "BH1105" ds

let test_check_fronts_messages () =
  let plan = mk_plan 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "missing rotation" true
    (Flow.check_fronts plan [ [ 0 ] ] <> None);
  Alcotest.(check bool) "duplicate rotation" true
    (Flow.check_fronts plan [ [ 0 ]; [ 1; 1 ] ] <> None);
  Alcotest.(check bool) "out of range" true
    (Flow.check_fronts plan [ [ 0 ]; [ 7 ] ] <> None);
  Alcotest.(check bool) "dropped rotation scheduled" true
    (Flow.check_fronts ~kept:[| true; false |] plan [ [ 0 ]; [ 1 ] ] <> None);
  Alcotest.(check (option string)) "dropped rotation omitted"
    None
    (Flow.check_fronts ~kept:[| true; false |] plan [ [ 0 ] ])

(* --- analyze / report --------------------------------------------- *)

let test_analyze_clean_compile () =
  let n = 8 in
  let u = haar 2024 n in
  let plan = Eliminate.decompose_baseline u in
  let report = Flow.analyze plan in
  Alcotest.(check int) "modes" n report.Flow.modes;
  Alcotest.(check int) "all kept" report.Flow.rotations report.Flow.kept_rotations;
  Alcotest.(check (list int)) "no dead modes" [] report.Flow.live.Flow.dead;
  Alcotest.(check bool) "depth positive" true (report.Flow.layers.Flow.depth > 0);
  Alcotest.(check (list int)) "no unused sites" [] report.Flow.unused_sites;
  let json = Flow.report_to_json report in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("json has " ^ needle) true
         (let nl = String.length needle and hl = String.length json in
          let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
          go 0))
    [ "\"depth\""; "\"fronts\""; "\"liveness\""; "\"fidelity\""; "\"dead_modes\"" ]

let test_analyze_policy_mask () =
  let n = 6 in
  let u = haar 11 n in
  let plan = Eliminate.decompose_baseline u in
  let policy = Dropout.make_policy (Rng.create 11) plan u ~tau:0.9 in
  let kept = Dropout.hard_kept policy plan in
  let report = Flow.analyze ~kept plan in
  let expect = Array.fold_left (fun a k -> if k then a + 1 else a) 0 kept in
  Alcotest.(check int) "kept count from mask" expect report.Flow.kept_rotations

(* --- property / differential tests -------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"ASAP depth equals greedy front oracle" ~count:40
      (pair (oneofl [ 4; 8; 16 ]) small_int)
      (fun (n, seed) ->
         let plan = Eliminate.decompose_baseline (haar seed n) in
         let rng = Rng.create (seed + 1) in
         let kept = random_kept rng (Plan.rotation_count plan) in
         Flow.greedy_front_count plan = (Flow.layering plan).Flow.depth
         && Flow.greedy_front_count ~kept plan
            = (Flow.layering ~kept plan).Flow.depth);
    Test.make ~name:"ASAP depth achieved by the circuit scheduler" ~count:30
      (pair (oneofl [ 4; 8; 16 ]) small_int)
      (fun (n, seed) ->
         (* A beamsplitters-only circuit of the kept rotations has the
            same dependency structure; Circuit.depth greedy-schedules
            it independently. *)
         let plan = Eliminate.decompose_baseline (haar (seed + 2) n) in
         let rng = Rng.create seed in
         let kept = random_kept rng (Plan.rotation_count plan) in
         let c =
           Array.to_seq plan.Plan.elements
           |> Seq.mapi (fun i e -> (i, e))
           |> Seq.filter (fun (i, _) -> kept.(i))
           |> Seq.fold_left
                (fun c (_, e) ->
                   let { Givens.m; n = nn; _ } = e.Plan.rotation in
                   Circuit.add c (Gate.Beamsplitter (m, nn, 0.5, 0.)))
                (Circuit.create ~modes:n)
         in
         Circuit.depth c = (Flow.layering ~kept plan).Flow.depth);
    Test.make ~name:"fidelity interval brackets the measured fidelity" ~count:40
      (pair (int_range 3 10) small_int)
      (fun (n, seed) ->
         let plan = Eliminate.decompose_baseline (haar (seed + 3) n) in
         let rng = Rng.create (seed + 4) in
         let kept = random_kept rng (Plan.rotation_count plan) in
         let f = Plan.fidelity ~kept plan (Plan.reconstruct plan) in
         let iv = Flow.fidelity_interval ~kept plan in
         iv.Flow.lo -. 1e-9 <= f && f <= iv.Flow.hi +. 1e-9);
    Test.make ~name:"transmission agrees with a circuit gate walk" ~count:30
      (pair (int_range 2 8) small_int)
      (fun (n, seed) ->
         let plan = Eliminate.decompose_baseline (haar (seed + 5) n) in
         let rng = Rng.create (seed + 6) in
         let kept = random_kept rng (Plan.rotation_count plan) in
         let noise = Noise.uniform 0.01 in
         let eta = Array.make n 1. in
         List.iter
           (fun g ->
              let l = Noise.loss_of_gate noise g in
              match g with
              | Gate.Phase (k, _) -> eta.(k) <- eta.(k) *. (1. -. l)
              | Gate.Beamsplitter (k, j, _, _) ->
                eta.(k) <- eta.(k) *. (1. -. l);
                eta.(j) <- eta.(j) *. (1. -. l)
              | Gate.Squeeze (k, _) | Gate.Displace (k, _) ->
                eta.(k) <- eta.(k) *. (1. -. l))
           (Circuit.gates (Plan.to_circuit ~style:Plan.Tunable ~kept plan));
         let got = Flow.transmission ~kept ~noise plan in
         Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-12) eta got);
    Test.make ~name:"layering fronts always validate" ~count:40
      (pair (oneofl [ 4; 8; 16 ]) small_int)
      (fun (n, seed) ->
         let plan = Eliminate.decompose_baseline (haar (seed + 7) n) in
         let rng = Rng.create (seed + 8) in
         let kept = random_kept rng (Plan.rotation_count plan) in
         let l = Flow.layering ~kept plan in
         let fronts =
           Array.to_list (Array.map Array.to_list l.Flow.fronts)
         in
         Flow.check_fronts ~kept plan fronts = None);
  ]

let () =
  Alcotest.run "bose_flow"
    [
      ( "layering",
        [
          Alcotest.test_case "basic" `Quick test_layering_basic;
          Alcotest.test_case "dropped" `Quick test_layering_dropped;
          Alcotest.test_case "liveness" `Quick test_liveness;
        ] );
      ( "lint",
        [
          Alcotest.test_case "BH1101 coupling" `Quick test_bh1101_infeasible_coupling;
          Alcotest.test_case "BH1102 depth" `Quick test_bh1102_depth_limit;
          Alcotest.test_case "BH1103 dead mode" `Quick test_bh1103_dead_mode;
          Alcotest.test_case "BH1104 loss" `Quick test_bh1104_loss_budget;
          Alcotest.test_case "BH1105 fronts" `Quick test_bh1105_bad_fronts;
          Alcotest.test_case "check_fronts" `Quick test_check_fronts_messages;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "clean compile" `Quick test_analyze_clean_compile;
          Alcotest.test_case "policy mask" `Quick test_analyze_policy_mask;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_tests);
    ]
