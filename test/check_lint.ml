(* Smoke assertion over `bosec check` output (test/dune generates
   lint_smoke.out by checking a freshly compiled 8-mode plan against
   its replay reference): the run must end with a clean summary line.
   Mirrors check_metrics.ml — a grep with a real exit code. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let read path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  body

let () =
  match Sys.argv with
  | [| _; "--usage"; path |] ->
    (* check_usage.out: stderr of `bosec check` with no inputs. The
       dune rule already pinned exit code 2; here we pin the hint. *)
    let body = read path in
    if not (contains ~needle:"nothing to check" body) then begin
      Printf.eprintf "check_lint: %s lacks the usage hint:\n%s" path body;
      exit 1
    end;
    print_endline "check_lint: ok (bosec check with no inputs exits 2 with a hint)"
  | [| _; "--analyze"; path |] ->
    (* analyze_smoke.out: `bosec analyze` on the 8-mode smoke plan. The
       report JSON line must carry the dataflow fields and the lint
       summary must be clean. *)
    let body = read path in
    let want =
      [
        "\"depth\"";
        "\"fronts\"";
        "\"liveness\"";
        "\"fidelity\"";
        "\"transmission\"";
        "0 errors, 0 warnings, 0 info";
      ]
    in
    List.iter
      (fun needle ->
         if not (contains ~needle body) then begin
           Printf.eprintf "check_lint: %s lacks %s:\n%s" path needle body;
           exit 1
         end)
      want;
    print_endline "check_lint: ok (bosec analyze reports depth/liveness/budgets, 0 errors)"
  | [| _; "--disable-typo"; err_path; out_path |] ->
    (* disable_typo.{err,out}: an unknown --disable code must warn on
       stderr without changing the clean verdict (the dune rule already
       pinned exit code 0). *)
    let err = read err_path in
    if not (contains ~needle:"matches no known diagnostic code" err) then begin
      Printf.eprintf "check_lint: %s lacks the unknown-disable warning:\n%s" err_path
        err;
      exit 1
    end;
    let out = read out_path in
    if not (contains ~needle:"0 errors, 0 warnings, 0 info" out) then begin
      Printf.eprintf "check_lint: %s is not a clean check:\n%s" out_path out;
      exit 1
    end;
    print_endline "check_lint: ok (unknown --disable warns without changing the verdict)"
  | [| _; "--targets"; path |] ->
    (* targets_list.out: `bosec targets` must list every built-in — a
       registry regression (or a renamed target) fails runtest here. *)
    let body = read path in
    List.iter
      (fun name ->
         if not (contains ~needle:name body) then begin
           Printf.eprintf "check_lint: %s does not list target %s:\n%s" path name body;
           exit 1
         end)
      [ "zigzag"; "timebin-loop"; "orca-shallow" ];
    print_endline "check_lint: ok (bosec targets lists all built-ins)"
  | [| _; path |] ->
    let body = read path in
    if not (contains ~needle:"0 errors, 0 warnings, 0 info" body) then begin
      Printf.eprintf "check_lint: %s does not report a clean check:\n%s" path body;
      exit 1
    end;
    print_endline "check_lint: ok (bosec check reports 0 errors)"
  | _ ->
    prerr_endline
      "usage: check_lint [--usage | --analyze | --disable-typo ERR OUT | --targets] FILE";
    exit 2
