(* Unit tests for the GBS application layer: graphs, encodings, and the
   four benchmark applications. *)

module Rng = Bose_util.Rng
module Dist = Bose_util.Dist
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
open Bose_apps
module Runner = Bosehedral.Runner

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

(* ---------------------------------------------------------------- Graph *)

let triangle_plus_isolated () =
  (* Vertices 0,1,2 form a triangle; 3 hangs off vertex 0. *)
  List.fold_left
    (fun g (a, b) -> Graph.add_edge g a b)
    (Graph.create 4)
    [ (0, 1); (1, 2); (0, 2); (0, 3) ]

let test_graph_basics () =
  let g = triangle_plus_isolated () in
  Alcotest.(check int) "vertices" 4 (Graph.vertices g);
  Alcotest.(check int) "edges" 4 (Graph.edge_count g);
  Alcotest.(check bool) "has edge" true (Graph.has_edge g 1 2);
  Alcotest.(check bool) "symmetric" true (Graph.has_edge g 2 1);
  Alcotest.(check int) "degree" 3 (Graph.degree g 0);
  Alcotest.(check (list int)) "neighbors" [ 1; 2; 3 ] (Graph.neighbors g 0)

let test_graph_density () =
  let g = triangle_plus_isolated () in
  check_close "triangle density" 1e-12 1. (Graph.subgraph_density g [ 0; 1; 2 ]);
  check_close "full density" 1e-12 (4. /. 6.) (Graph.subgraph_density g [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "triangle clique" true (Graph.is_clique g [ 0; 1; 2 ]);
  Alcotest.(check bool) "not clique" false (Graph.is_clique g [ 0; 1; 2; 3 ])

let test_graph_densest () =
  let g = triangle_plus_isolated () in
  let vs, d = Graph.densest_subgraph_of_size g 3 in
  check_close "optimum density" 1e-12 1. d;
  Alcotest.(check (list int)) "the triangle" [ 0; 1; 2 ] (List.sort compare vs)

let test_graph_max_clique () =
  let g = triangle_plus_isolated () in
  Alcotest.(check int) "clique number" 3 (Graph.max_clique_size g);
  let complete = Graph.random (Rng.create 1) ~n:5 ~p:1.0 in
  Alcotest.(check int) "K5" 5 (Graph.max_clique_size complete);
  let empty = Graph.create 5 in
  Alcotest.(check int) "empty graph" 1 (Graph.max_clique_size empty)

let test_graph_random_edge_density () =
  let rng = Rng.create 2 in
  let g = Graph.random rng ~n:40 ~p:0.8 in
  let possible = 40 * 39 / 2 in
  let ratio = float_of_int (Graph.edge_count g) /. float_of_int possible in
  Alcotest.(check bool) "density near p" true (ratio > 0.7 && ratio < 0.9)

let test_graph_perturb () =
  let rng = Rng.create 3 in
  let g = Graph.random rng ~n:10 ~p:0.5 in
  let h = Graph.perturb rng g ~flips:3 in
  let diff = ref 0 in
  for a = 0 to 9 do
    for b = a + 1 to 9 do
      if Graph.has_edge g a b <> Graph.has_edge h a b then incr diff
    done
  done;
  Alcotest.(check int) "exactly 3 flips" 3 !diff

let test_subsets () =
  Alcotest.(check int) "C(5,2)" 10 (List.length (Graph.subsets_of_size 2 [ 1; 2; 3; 4; 5 ]))

(* ------------------------------------------------------------- Encoding *)

let test_encoding_mean_photons () =
  let rng = Rng.create 4 in
  let g = Graph.random rng ~n:8 ~p:0.75 in
  let program = Encoding.encode ~mean_photons:2.0 g in
  Runner.validate_program program;
  (* Rebuild the state and check the photon budget. *)
  let s = Bose_gbs.Gaussian.vacuum 8 in
  Array.iteri
    (fun i a -> if Cx.abs a > 0. then Bose_gbs.Gaussian.squeeze s i a)
    program.Runner.squeezing;
  check_close "mean photons" 1e-6 2.0 (Bose_gbs.Gaussian.total_mean_photons s)

let test_encoding_unitary () =
  let rng = Rng.create 5 in
  let g = Graph.random rng ~n:8 ~p:0.8 in
  Alcotest.(check bool) "takagi unitary" true (Mat.is_unitary (Encoding.unitary_of g))

let test_scaling_bounds () =
  let lambda = [| 3.; 2.; 1. |] in
  let c = Encoding.scaling_for lambda ~target:1.5 in
  Alcotest.(check bool) "c in (0, 1/λmax)" true (c > 0. && c < 1. /. 3.)

(* -------------------------------------------------------- Dense subgraph *)

let test_clicked () =
  Alcotest.(check (list int)) "clicked" [ 0; 2 ] (Dense_subgraph.clicked [ 1; 0; 3; 0 ]);
  Alcotest.(check (list int)) "tail empty" [] (Dense_subgraph.clicked Bose_gbs.Fock.tail)

let test_ds_success_logic () =
  let g = triangle_plus_isolated () in
  (* Clicking the triangle succeeds for k=3 at optimum density 1. *)
  Alcotest.(check bool) "triangle clicks" true
    (Dense_subgraph.sample_succeeds g ~k:3 ~optimum:1. [ 1; 1; 1; 0 ]);
  (* Clicking a sparse set fails. *)
  Alcotest.(check bool) "sparse clicks" false
    (Dense_subgraph.sample_succeeds g ~k:3 ~optimum:1. [ 1; 1; 0; 1 ]);
  (* Too few clicks fails. *)
  Alcotest.(check bool) "too few" false
    (Dense_subgraph.sample_succeeds g ~k:3 ~optimum:1. [ 1; 1; 0; 0 ])

let test_ds_gbs_beats_uniform () =
  (* GBS samples should find the planted dense subgraph more often than
     uniform random clicking — the application's raison d'être. *)
  let rng = Rng.create 6 in
  (* Planted: a 4-clique inside a sparse 8-vertex graph. *)
  let g = ref (Graph.create 8) in
  List.iter (fun (a, b) -> g := Graph.add_edge !g a b)
    [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (4, 5); (5, 6); (6, 7) ];
  let g = !g in
  let program = Encoding.encode ~mean_photons:3.0 g in
  let ideal = Runner.ideal_distribution ~max_photons:6 program in
  let gbs = Dense_subgraph.evaluate ~rng ~shots:600 ~k:4 g ideal in
  (* Uniform baseline: every vertex clicks independently with the same
     average click probability. *)
  let uniform_dist =
    Dist.of_weights
      (List.map
         (fun pattern -> (pattern, 1.))
         (Bose_util.Combin.patterns_up_to ~modes:8 ~max_photons:4))
  in
  let uni = Dense_subgraph.evaluate ~rng ~shots:600 ~k:4 g uniform_dist in
  Alcotest.(check bool)
    (Printf.sprintf "gbs %.3f > uniform %.3f" (Dense_subgraph.success_rate gbs)
       (Dense_subgraph.success_rate uni))
    true
    (Dense_subgraph.success_rate gbs > Dense_subgraph.success_rate uni)

(* ------------------------------------------------------------ Max clique *)

let test_shrink_to_clique () =
  let g = triangle_plus_isolated () in
  let clique = Max_clique.shrink_to_clique g [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "result is clique" true (Graph.is_clique g clique);
  Alcotest.(check int) "triangle found" 3 (List.length clique)

let test_greedy_expand () =
  let g = triangle_plus_isolated () in
  let clique = Max_clique.greedy_expand ~rng:(Rng.create 1) g [ 1 ] in
  Alcotest.(check bool) "expanded set is clique" true (Graph.is_clique g clique);
  Alcotest.(check bool) "grew" true (List.length clique >= 2)

let test_refine_reaches_max () =
  let rng = Rng.create 7 in
  let g = Graph.random rng ~n:10 ~p:0.85 in
  let target = Graph.max_clique_size g in
  (* Refining from the full vertex set should find a maximum-or-near
     clique on dense graphs. *)
  let rng = Rng.create 99 in
  (* Random expansion: take the best of a few restarts. *)
  let found =
    List.fold_left
      (fun best _ ->
         max best (List.length (Max_clique.refine ~rng g (List.init 10 (fun i -> i)))))
      0 (List.init 10 (fun i -> i))
  in
  Alcotest.(check bool)
    (Printf.sprintf "found %d of %d" found target)
    true
    (found >= target - 1)

(* ------------------------------------------------------- Graph similarity *)

let test_orbit () =
  Alcotest.(check (list int)) "orbit sorts" [ 2; 1; 1 ] (Graph_similarity.orbit [ 1; 0; 2; 1; 0 ]);
  Alcotest.(check (list int)) "tail orbit" [ -1 ] (Graph_similarity.orbit Bose_gbs.Fock.tail)

let test_feature_vector () =
  let d = Dist.of_weights [ ([ 1; 1; 0 ], 0.5); ([ 2; 0; 0 ], 0.25); ([ 0; 0; 0 ], 0.25) ] in
  let f = Graph_similarity.feature_vector d in
  check_close "[1;1] prob" 1e-12 0.5 f.(0);
  check_close "[2] prob" 1e-12 0.25 f.(1)

let test_separation_metric () =
  let c1 = [ [| 0.; 0. |]; [| 0.1; 0. |] ] in
  let c2 = [ [| 1.; 0. |]; [| 1.1; 0. |] ] in
  Alcotest.(check bool) "well separated" true (Graph_similarity.separation c1 c2 > 5.);
  let mixed = [ [| 0.; 0. |]; [| 1.; 0. |] ] in
  Alcotest.(check bool) "overlapping less separated" true
    (Graph_similarity.separation mixed mixed < 1e-6)

let test_similar_graphs_have_close_features () =
  let rng = Rng.create 8 in
  let seed_graph = Graph.random rng ~n:8 ~p:0.8 in
  let near = Graph.perturb rng seed_graph ~flips:1 in
  let far = Graph.random rng ~n:8 ~p:0.3 in
  let feature g =
    Graph_similarity.feature_vector
      (Runner.ideal_distribution ~max_photons:5 (Encoding.encode ~mean_photons:2.0 g))
  in
  let f0 = feature seed_graph and f1 = feature near and f2 = feature far in
  Alcotest.(check bool) "perturbed closer than unrelated" true
    (Graph_similarity.euclidean f0 f1 < Graph_similarity.euclidean f0 f2)

(* --------------------------------------------------------------- Vibronic *)

let test_synthetic_molecule () =
  let rng = Rng.create 9 in
  let mol = Vibronic.synthetic rng ~modes:6 in
  Alcotest.(check int) "mode count" 6 (Array.length mol.Vibronic.frequencies);
  Array.iter
    (fun w -> Alcotest.(check bool) "band" true (w >= 600. && w <= 3500.))
    mol.Vibronic.frequencies;
  Alcotest.(check bool) "duschinsky unitary" true (Mat.is_unitary mol.Vibronic.duschinsky)

let test_vibronic_temperature_monotone () =
  let rng = Rng.create 10 in
  let mol = Vibronic.synthetic rng ~modes:6 in
  let photons t =
    let p = Vibronic.program mol ~temperature:t in
    let s = Bose_gbs.Gaussian.thermal 6 p.Runner.thermal in
    Array.iteri
      (fun i a -> if Cx.abs a > 0. then Bose_gbs.Gaussian.squeeze s i a)
      p.Runner.squeezing;
    Bose_gbs.Gaussian.total_mean_photons s
  in
  Alcotest.(check bool) "hotter = more photons" true (photons 1000. > photons 250.)

let test_vibronic_energy () =
  let rng = Rng.create 11 in
  let mol = Vibronic.synthetic rng ~modes:3 in
  let w = mol.Vibronic.frequencies in
  check_close "energy" 1e-9 (w.(0) +. (2. *. w.(2))) (Vibronic.energy mol [ 1; 0; 2 ]);
  Alcotest.(check bool) "tail nan" true (Float.is_nan (Vibronic.energy mol Bose_gbs.Fock.tail))

let test_vibronic_spectrum () =
  let rng = Rng.create 12 in
  let mol = Vibronic.synthetic rng ~modes:4 in
  let program = Vibronic.program mol ~temperature:750. in
  let d = Runner.ideal_distribution ~max_photons:5 program in
  let grid = Vibronic.default_grid mol in
  let spec = Vibronic.spectrum mol ~grid ~gamma:80. d in
  Alcotest.(check int) "grid length" (Array.length grid) (Array.length spec);
  Array.iter (fun v -> Alcotest.(check bool) "nonnegative" true (v >= 0.)) spec;
  check_close "self correlation" 1e-9 1. (Vibronic.correlation spec spec)

let () =
  Alcotest.run "bose_apps"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "density" `Quick test_graph_density;
          Alcotest.test_case "densest subgraph" `Quick test_graph_densest;
          Alcotest.test_case "max clique" `Quick test_graph_max_clique;
          Alcotest.test_case "random density" `Quick test_graph_random_edge_density;
          Alcotest.test_case "perturb" `Quick test_graph_perturb;
          Alcotest.test_case "subsets" `Quick test_subsets;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "mean photons" `Quick test_encoding_mean_photons;
          Alcotest.test_case "unitary" `Quick test_encoding_unitary;
          Alcotest.test_case "scaling bounds" `Quick test_scaling_bounds;
        ] );
      ( "dense_subgraph",
        [
          Alcotest.test_case "clicked" `Quick test_clicked;
          Alcotest.test_case "success logic" `Quick test_ds_success_logic;
          Alcotest.test_case "gbs beats uniform" `Quick test_ds_gbs_beats_uniform;
        ] );
      ( "max_clique",
        [
          Alcotest.test_case "shrink" `Quick test_shrink_to_clique;
          Alcotest.test_case "expand" `Quick test_greedy_expand;
          Alcotest.test_case "refine" `Quick test_refine_reaches_max;
        ] );
      ( "graph_similarity",
        [
          Alcotest.test_case "orbit" `Quick test_orbit;
          Alcotest.test_case "feature vector" `Quick test_feature_vector;
          Alcotest.test_case "separation" `Quick test_separation_metric;
          Alcotest.test_case "similar close" `Quick test_similar_graphs_have_close_features;
        ] );
      ( "vibronic",
        [
          Alcotest.test_case "synthetic molecule" `Quick test_synthetic_molecule;
          Alcotest.test_case "temperature monotone" `Quick test_vibronic_temperature_monotone;
          Alcotest.test_case "energy" `Quick test_vibronic_energy;
          Alcotest.test_case "spectrum" `Quick test_vibronic_spectrum;
        ] );
    ]
