(* Integration tests: the full Bosehedral pipeline — compile, generate
   shot circuits, execute on the noisy Gaussian simulator, relabel
   outputs — plus the headline qualitative claims of the paper's
   evaluation. *)

module Rng = Bose_util.Rng
module Dist = Bose_util.Dist
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Noise = Bose_circuit.Noise
module Circuit = Bose_circuit.Circuit
module Plan = Bose_decomp.Plan
open Bosehedral


let device33 = Lattice.create ~rows:3 ~cols:3

let random_program seed n =
  let rng = Rng.create seed in
  Runner.pure_program
    ~squeezing:(Array.init n (fun _ -> Cx.re (0.25 +. Rng.float rng 0.2)))
    ~unitary:(Unitary.haar_random rng n) ()

let test_compile_all_configs () =
  let rng = Rng.create 1 in
  let u = Unitary.haar_random rng 9 in
  List.iter
    (fun config ->
       let c = Compiler.compile ~rng ~device:device33 ~config ~tau:0.98 u in
       Alcotest.(check bool) "approx unitary is unitary" true
         (Mat.is_unitary (Compiler.approx_unitary c));
       Alcotest.(check bool) "predicted fidelity sane" true
         (Compiler.predicted_fidelity c > 0.9 && Compiler.predicted_fidelity c <= 1.);
       Alcotest.(check int) "rotation count" 36 (Plan.rotation_count c.Compiler.plan))
    Config.all

let test_undropped_approx_equals_input () =
  (* approx_unitary with nothing dropped must reproduce the input for
     every configuration — permutations and all. *)
  let rng = Rng.create 2 in
  let u = Unitary.haar_random rng 9 in
  List.iter
    (fun config ->
       let c = Compiler.compile ~rng ~device:device33 ~config ~tau:1.0 u in
       Alcotest.(check bool)
         (Config.name config ^ " exact")
         true
         (Mat.equal ~tol:1e-8 (Compiler.approx_unitary c) u))
    Config.all

let test_dropped_fidelity_matches_claim () =
  let rng = Rng.create 3 in
  let u = Unitary.haar_random rng 16 in
  let device = Lattice.create ~rows:4 ~cols:4 in
  let c = Compiler.compile ~rng ~device ~config:Config.Full_opt ~tau:0.98 u in
  (match Compiler.shot_mask rng c with
   | None -> Alcotest.fail "expected dropout at tau=0.98"
   | Some kept ->
     let f = Mat.unitary_fidelity (Compiler.approx_unitary ~kept c) u in
     Alcotest.(check bool) (Printf.sprintf "shot fidelity %.4f ≥ 0.9" f) true (f >= 0.9))

let test_lossless_execution_equals_ideal () =
  (* The paper's correctness baseline: with zero loss and no dropout,
     executing the compiled physical circuit and relabeling outputs is
     indistinguishable from applying the high-level unitary. *)
  let program = random_program 4 9 in
  let ideal = Runner.ideal_distribution ~max_photons:5 program in
  let rng = Rng.create 5 in
  List.iter
    (fun config ->
       let c =
         Compiler.compile ~rng ~device:device33 ~config ~tau:1.0 program.Runner.unitary
       in
       let executed =
         Runner.noisy_distribution ~rng ~noise:Noise.ideal ~max_photons:5 c program
       in
       Alcotest.(check bool)
         (Config.name config ^ " lossless equivalence")
         true
         (Dist.jsd ideal executed < 1e-10))
    Config.all

let test_displacements_relabel_correctly () =
  (* Same lossless equivalence but with displaced measurement and a
     nontrivial mapping, exercising the row-permutation relabeling of
     final displacements. *)
  let rng = Rng.create 6 in
  let n = 9 in
  let program =
    Runner.pure_program
      ~squeezing:(Array.init n (fun i -> if i mod 2 = 0 then Cx.re 0.3 else Cx.zero))
      ~unitary:(Unitary.haar_random rng n)
      ~displacements:(Array.init n (fun i -> if i = 2 then Cx.make 0.3 0.1 else Cx.zero))
      ()
  in
  let ideal = Runner.ideal_distribution ~max_photons:5 program in
  let c =
    Compiler.compile ~rng ~device:device33 ~config:Config.Full_opt ~tau:1.0
      program.Runner.unitary
  in
  let executed = Runner.noisy_distribution ~rng ~noise:Noise.ideal ~max_photons:5 c program in
  Alcotest.(check bool) "displaced lossless equivalence" true (Dist.jsd ideal executed < 1e-10)

let test_loss_hurts_and_bosehedral_helps () =
  (* Qualitative Fig. 10 claim on a small instance: JSD grows with loss,
     and Full-Opt beats Baseline at equal loss. *)
  let program = random_program 7 9 in
  let rng = Rng.create 8 in
  let jsd config loss =
    let c =
      Compiler.compile ~rng ~device:device33 ~config ~tau:0.985 program.Runner.unitary
    in
    Runner.jsd_vs_ideal ~realizations:8 ~rng ~noise:(Noise.uniform loss) ~max_photons:5 c
      program
  in
  let base_low = jsd Config.Baseline 0.02 in
  let base_high = jsd Config.Baseline 0.08 in
  Alcotest.(check bool)
    (Printf.sprintf "loss monotone: %.4f < %.4f" base_low base_high)
    true (base_low < base_high);
  let full_high = jsd Config.Full_opt 0.08 in
  Alcotest.(check bool)
    (Printf.sprintf "full-opt %.4f ≤ baseline %.4f" full_high base_high)
    true
    (full_high <= base_high +. 0.002)

let test_beamsplitter_reduction_ordering () =
  (* Table II's qualitative structure: Rot-Cut ≤ Decomp-Opt ≤ Full-Opt
     beamsplitter reduction at the same accuracy threshold (allowing
     small heuristic slack on Full vs Decomp). *)
  let rng = Rng.create 9 in
  let u = Unitary.haar_random rng 24 in
  let device = Lattice.create ~rows:6 ~cols:6 in
  let reduction config =
    Compiler.beamsplitter_reduction
      (Compiler.compile ~rng ~device ~config ~tau:0.99 u)
  in
  let rot = reduction Config.Rot_cut in
  let dec = reduction Config.Decomp_opt in
  let full = reduction Config.Full_opt in
  Alcotest.(check bool)
    (Printf.sprintf "rot %.3f ≤ dec %.3f" rot dec)
    true (rot <= dec +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "dec %.3f ≤ full %.3f (+slack)" dec full)
    true (dec <= full +. 0.02)

let test_shot_circuit_hardware_legal () =
  (* Every generated shot circuit only uses beamsplitters on coupled
     qumode pairs of the device. *)
  let rng = Rng.create 10 in
  let program = random_program 11 9 in
  List.iter
    (fun config ->
       let c =
         Compiler.compile ~rng ~device:device33 ~config ~tau:0.98 program.Runner.unitary
       in
       let pattern = c.Compiler.pattern in
       for _ = 1 to 5 do
         let circuit = Compiler.shot_circuit rng c in
         let violations =
           Circuit.check_connectivity
             (fun a b ->
                match (Bose_hardware.Pattern.site pattern a, Bose_hardware.Pattern.site pattern b) with
                | Some sa, Some sb -> Lattice.adjacent device33 sa sb
                | _ -> false)
             circuit
         in
         Alcotest.(check (list (pair int int))) (Config.name config ^ " legal") [] violations
       done)
    Config.all

let test_compiler_rejects_oversize () =
  let rng = Rng.create 11 in
  let u = Unitary.haar_random rng 10 in
  Alcotest.check_raises "program larger than device"
    (Invalid_argument "Compiler.compile: program larger than device") (fun () ->
        ignore (Compiler.compile ~rng ~device:device33 ~config:Config.Baseline u))

let test_timings_populated () =
  let rng = Rng.create 12 in
  let u = Unitary.haar_random rng 9 in
  let c = Compiler.compile ~rng ~device:device33 ~config:Config.Full_opt ~tau:0.98 u in
  Alcotest.(check bool) "decomp time ≥ 0" true (c.Compiler.timings.Compiler.decomposition_s >= 0.);
  Alcotest.(check bool) "total ≥ decomp" true
    (c.Compiler.timings.Compiler.total_s >= c.Compiler.timings.Compiler.decomposition_s)

let test_thermal_program_lossless_equivalence () =
  (* Finite-temperature input (the VS benchmark's thermal occupations)
     must survive the compile-execute-relabel pipeline too. *)
  let rng = Rng.create 15 in
  let n = 6 in
  let program =
    {
      Runner.squeezing = Array.make n (Cx.re 0.15);
      unitary = Unitary.haar_random rng n;
      displacements = Array.init n (fun i -> if i = 1 then Cx.re 0.2 else Cx.zero);
      thermal = Array.init n (fun i -> 0.05 *. float_of_int i);
    }
  in
  let device = Lattice.create ~rows:3 ~cols:2 in
  let ideal = Runner.ideal_distribution ~max_photons:5 program in
  let c =
    Compiler.compile ~rng ~device ~config:Config.Full_opt ~tau:1.0 program.Runner.unitary
  in
  let executed = Runner.noisy_distribution ~rng ~noise:Noise.ideal ~max_photons:5 c program in
  Alcotest.(check bool) "thermal lossless equivalence" true (Dist.jsd ideal executed < 1e-10)

let test_gate_counts_table1_shape () =
  (* Table I: an N-qumode GBS program decomposes into N squeezers and
     N(N−1)/2 beamsplitters. *)
  let program = random_program 13 9 in
  let counts = Runner.gate_counts program ~device:device33 in
  Alcotest.(check int) "squeezers" 9 counts.Circuit.squeezing;
  Alcotest.(check int) "beamsplitters" 36 counts.Circuit.beamsplitter;
  Alcotest.(check int) "no displacement" 0 counts.Circuit.displacement

let test_fast_effort_equivalent_shape () =
  let rng = Rng.create 14 in
  let u = Unitary.haar_random rng 16 in
  let device = Lattice.create ~rows:4 ~cols:4 in
  let c = Compiler.compile ~effort:Compiler.Fast ~rng ~device ~config:Config.Full_opt ~tau:0.95 u in
  Alcotest.(check bool) "fast effort still drops gates" true
    (Compiler.beamsplitter_reduction c > 0.05);
  Alcotest.(check bool) "approx unitary unitary" true (Mat.is_unitary (Compiler.approx_unitary c))

let () =
  Alcotest.run "integration"
    [
      ( "compiler",
        [
          Alcotest.test_case "all configs compile" `Quick test_compile_all_configs;
          Alcotest.test_case "undropped is exact" `Quick test_undropped_approx_equals_input;
          Alcotest.test_case "shot fidelity" `Quick test_dropped_fidelity_matches_claim;
          Alcotest.test_case "rejects oversize" `Quick test_compiler_rejects_oversize;
          Alcotest.test_case "timings" `Quick test_timings_populated;
          Alcotest.test_case "fast effort" `Quick test_fast_effort_equivalent_shape;
        ] );
      ( "runner",
        [
          Alcotest.test_case "lossless equivalence" `Quick test_lossless_execution_equals_ideal;
          Alcotest.test_case "displacement relabel" `Quick test_displacements_relabel_correctly;
          Alcotest.test_case "thermal input" `Quick test_thermal_program_lossless_equivalence;
          Alcotest.test_case "gate counts" `Quick test_gate_counts_table1_shape;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "loss hurts, Bosehedral helps" `Slow test_loss_hurts_and_bosehedral_helps;
          Alcotest.test_case "reduction ordering" `Slow test_beamsplitter_reduction_ordering;
          Alcotest.test_case "hardware legal shots" `Quick test_shot_circuit_hardware_legal;
        ] );
    ]
