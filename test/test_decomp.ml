(* Unit and property tests for the bose_decomp library: elimination
   engine, plans, reconstruction, circuit generation. *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
module Givens = Bose_linalg.Givens
open Bose_hardware
open Bose_decomp
module Circuit = Bose_circuit.Circuit

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

let haar seed n = Unitary.haar_random (Rng.create seed) n

let test_baseline_exact () =
  let u = haar 1 10 in
  let plan = Eliminate.decompose_baseline u in
  Alcotest.(check int) "rotation count" 45 (Plan.rotation_count plan);
  check_close "exact reconstruction" 1e-10 1. (Plan.fidelity plan u);
  Alcotest.(check bool) "entrywise match" true
    (Mat.equal ~tol:1e-9 (Plan.reconstruct plan) u)

let test_tree_exact () =
  let u = haar 2 24 in
  let pattern = Embedding.for_program (Lattice.create ~rows:6 ~cols:6) 24 in
  let plan = Eliminate.decompose pattern u in
  Alcotest.(check int) "rotation count" 276 (Plan.rotation_count plan);
  Alcotest.(check bool) "entrywise match" true
    (Mat.equal ~tol:1e-9 (Plan.reconstruct plan) u)

let test_lambda_unit_modulus () =
  let u = haar 3 12 in
  let plan = Eliminate.decompose_baseline u in
  Array.iter
    (fun lam -> check_close "unit modulus" 1e-9 1. (Cx.abs lam))
    plan.Plan.lambda

let test_residual_diagnostic () =
  let u = haar 4 9 in
  Alcotest.(check bool) "baseline drives to diagonal" true
    (Eliminate.residual_off_diagonal u (Pattern.chain 9) < 1e-10)

let test_tree_yields_more_small_angles () =
  (* The Bosehedral template's purpose: more small-rotation MZIs than
     the chain baseline on the same unitary (§IV). *)
  let u = haar 5 24 in
  let chain = Eliminate.decompose_baseline u in
  let tree =
    Eliminate.decompose (Embedding.for_program (Lattice.create ~rows:6 ~cols:6) 24) u
  in
  let small p = Plan.small_angle_count p ~threshold:0.25 in
  Alcotest.(check bool)
    (Printf.sprintf "tree %d > chain %d" (small tree) (small chain))
    true
    (small tree > small chain)

let test_dropout_reconstruction_identity () =
  (* Dropping a rotation replaces it by θ=0 but keeps its phase: the
     kept-mask reconstruction with all true equals the full one. *)
  let u = haar 6 8 in
  let plan = Eliminate.decompose_baseline u in
  let all = Array.make (Plan.rotation_count plan) true in
  Alcotest.(check bool) "all-kept equals full" true
    (Mat.equal (Plan.reconstruct ~kept:all plan) (Plan.reconstruct plan))

let test_dropout_fidelity_bounds () =
  let u = haar 7 10 in
  let plan = Eliminate.decompose_baseline u in
  let total = Plan.rotation_count plan in
  let rng = Rng.create 70 in
  for _ = 1 to 20 do
    let kept = Array.init total (fun _ -> Rng.uniform rng > 0.3) in
    let f = Plan.fidelity ~kept plan u in
    Alcotest.(check bool) "fidelity in [0,1]" true (f >= 0. && f <= 1. +. 1e-9)
  done

let test_dropping_small_angle_costs_theta_squared () =
  (* Single-drop fidelity loss ≈ (1 − cos θ)·2/ (2N) = θ²/(2N)… exactly
     |N − 2(1−cosθ)|/N for one dropped rotation. *)
  let u = haar 8 12 in
  let plan = Eliminate.decompose_baseline u in
  let total = Plan.rotation_count plan in
  let angles = Plan.angles plan in
  let idx = ref 0 in
  Array.iteri (fun i a -> if a < angles.(!idx) then idx := i) angles;
  let kept = Array.make total true in
  kept.(!idx) <- false;
  let expected = (12. -. (2. *. (1. -. cos angles.(!idx)))) /. 12. in
  check_close "single-drop cost" 1e-9 expected (Plan.fidelity ~kept plan u)

let test_to_circuit_structure () =
  let u = haar 9 6 in
  let plan = Eliminate.decompose_baseline u in
  let c = Plan.to_circuit plan in
  let k = Circuit.gate_counts c in
  Alcotest.(check int) "BS count" 15 k.Circuit.beamsplitter;
  (* One phase per rotation plus N final Λ phases. *)
  Alcotest.(check int) "R count" (15 + 6) k.Circuit.phase_shifter;
  Alcotest.(check int) "no squeezers" 0 k.Circuit.squeezing

let test_to_circuit_dropped () =
  let u = haar 10 6 in
  let plan = Eliminate.decompose_baseline u in
  let kept = Array.make 15 true in
  kept.(3) <- false;
  kept.(7) <- false;
  let c = Plan.to_circuit ~kept plan in
  let k = Circuit.gate_counts c in
  Alcotest.(check int) "two fewer BS" 13 k.Circuit.beamsplitter;
  (* The dropped rotations keep their phase shifters. *)
  Alcotest.(check int) "R unchanged" 21 k.Circuit.phase_shifter

let test_to_circuit_hardware_compatible () =
  (* Circuit beamsplitters from an embedded pattern only touch
     physically coupled qumode pairs (label space = BFS labels; the
     pattern's tree edges are lattice-adjacent by the embedding tests,
     and the circuit only uses tree edges). *)
  let device = Lattice.create ~rows:5 ~cols:7 in
  let pattern = Embedding.for_program device 24 in
  let u = haar 11 24 in
  let plan = Eliminate.decompose pattern u in
  let c = Plan.to_circuit plan in
  List.iter
    (fun (a, b) ->
       Alcotest.(check bool) "pair is tree edge" true (List.mem b (Pattern.neighbors pattern a)))
    (Circuit.two_qumode_pairs c)

let test_prelude () =
  let u = haar 12 4 in
  let plan = Eliminate.decompose_baseline u in
  let prelude = [ Bose_circuit.Gate.Squeeze (0, Cx.re 0.4) ] in
  let c = Plan.to_circuit ~prelude plan in
  (match Circuit.gates c with
   | Bose_circuit.Gate.Squeeze (0, _) :: _ -> ()
   | _ -> Alcotest.fail "prelude must come first");
  Alcotest.(check int) "squeezer counted" 1 (Circuit.gate_counts c).Circuit.squeezing

let test_size_mismatch () =
  let u = haar 13 5 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Eliminate.decompose: unitary size does not match pattern") (fun () ->
        ignore (Eliminate.decompose (Pattern.chain 6) u))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"decomposition roundtrips on chain patterns" ~count:40
      (pair (int_range 2 12) small_int)
      (fun (n, seed) ->
         let u = haar seed n in
         let plan = Eliminate.decompose_baseline u in
         Mat.equal ~tol:1e-8 (Plan.reconstruct plan) u);
    Test.make ~name:"decomposition roundtrips on zigzag patterns" ~count:30
      (triple (int_range 2 6) (int_range 2 6) small_int)
      (fun (r, c, seed) ->
         let lattice = Lattice.create ~rows:r ~cols:c in
         let n = Lattice.size lattice in
         let u = haar seed n in
         let plan = Eliminate.decompose (Embedding.zigzag lattice) u in
         Mat.equal ~tol:1e-8 (Plan.reconstruct plan) u);
    Test.make ~name:"partial reconstruction is still unitary" ~count:30
      (pair (int_range 3 10) small_int)
      (fun (n, seed) ->
         let u = haar (seed + 1) n in
         let plan = Eliminate.decompose_baseline u in
         let rng = Rng.create seed in
         let kept =
           Array.init (Plan.rotation_count plan) (fun _ -> Rng.uniform rng > 0.5)
         in
         Mat.is_unitary (Plan.reconstruct ~kept plan));
    Test.make ~name:"rotations always reference valid adjacent labels" ~count:20
      (pair (int_range 2 5) (int_range 2 6))
      (fun (r, c) ->
         let lattice = Lattice.create ~rows:r ~cols:c in
         let pattern = Embedding.zigzag lattice in
         let n = Pattern.size pattern in
         let u = haar (r + (10 * c)) n in
         let plan = Eliminate.decompose pattern u in
         Array.for_all
           (fun e ->
              let { Givens.m; n = nn; _ } = e.Plan.rotation in
              m >= 0 && m < n && nn >= 0 && nn < n && m <> nn
              && List.mem nn (Pattern.neighbors pattern m))
           plan.Plan.elements);
  ]

let () =
  Alcotest.run "bose_decomp"
    [
      ( "eliminate",
        [
          Alcotest.test_case "baseline exact" `Quick test_baseline_exact;
          Alcotest.test_case "tree exact" `Quick test_tree_exact;
          Alcotest.test_case "lambda unit modulus" `Quick test_lambda_unit_modulus;
          Alcotest.test_case "residual diagnostic" `Quick test_residual_diagnostic;
          Alcotest.test_case "tree yields small angles" `Quick test_tree_yields_more_small_angles;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
        ] );
      ( "plan",
        [
          Alcotest.test_case "dropout identity" `Quick test_dropout_reconstruction_identity;
          Alcotest.test_case "fidelity bounds" `Quick test_dropout_fidelity_bounds;
          Alcotest.test_case "single-drop cost" `Quick test_dropping_small_angle_costs_theta_squared;
          Alcotest.test_case "circuit structure" `Quick test_to_circuit_structure;
          Alcotest.test_case "circuit with drops" `Quick test_to_circuit_dropped;
          Alcotest.test_case "circuit hardware compatible" `Quick test_to_circuit_hardware_compatible;
          Alcotest.test_case "prelude first" `Quick test_prelude;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_tests);
    ]
