(* Smoke check for `bosec --metrics-out` (wired into `dune runtest` by
   test/dune): parse the emitted JSON with the report reader and require
   one span per compiler pass and the headline counters to be nonzero.
   Exits nonzero with a diagnostic on any violation. *)

module Report = Bose_obs.Obs.Report

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_metrics: " ^ msg); exit 1) fmt

let () =
  if Array.length Sys.argv <> 2 then fail "usage: check_metrics FILE";
  let path = Sys.argv.(1) in
  let text =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Report.of_json text with
  | Error msg -> fail "%s is not a valid metrics report: %s" path msg
  | Ok report ->
    List.iter
      (fun name ->
         match Report.span report name with
         | Some s when s.Report.count > 0 -> ()
         | Some _ -> fail "span %S has zero count" name
         | None -> fail "missing compiler-pass span %S" name)
      [ "compile"; "compile.map"; "compile.decompose"; "compile.dropout" ];
    List.iter
      (fun name ->
         match Report.counter report name with
         | Some v when v > 0 -> ()
         | Some _ -> fail "counter %S is zero" name
         | None -> fail "missing counter %S" name)
      [ "decomp.eliminations"; "decomp.beamsplitters"; "dropout.dropped_gates" ];
    Printf.printf "check_metrics: ok (%d spans, %d counters)\n"
      (List.length report.Report.spans)
      (List.length report.Report.counters)
