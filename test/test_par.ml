(* Domain-pool torture tests and parallel-determinism pins: the pool
   schedules but never draws randomness, so every parallel entry point
   (batch compile, sampler chains, dropout trials) must produce output
   bit-identical to its sequential run for a fixed seed. *)

module Pool = Bose_par.Pool
module Rng = Bose_util.Rng
module Obs = Bose_obs.Obs
module Cx = Bose_linalg.Cx
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Mat = Bose_linalg.Mat
module Plan = Bose_decomp.Plan
module Clements = Bose_decomp.Clements
module Eliminate = Bose_decomp.Eliminate
module Mapping = Bose_mapping.Mapping
module Dropout = Bose_dropout.Dropout
module Gaussian = Bose_gbs.Gaussian
module Sampler = Bose_gbs.Sampler
module Boson_sampling = Bose_gbs.Boson_sampling
module Lint = Bose_lint.Lint
module Diag = Bose_lint.Diag
open Bosehedral

let device33 = Lattice.create ~rows:3 ~cols:3

(* ------------------------------------------------------------- pool *)

let test_run_covers_all () =
  Pool.with_pool ~domains:3 (fun pool ->
      (* More tasks than domains; every task runs exactly once. The
         pool is reusable, so exercise two batches back to back. *)
      for _round = 1 to 2 do
        let hits = Array.make 100 0 in
        Pool.run pool ~tasks:100 (fun i -> hits.(i) <- hits.(i) + 1);
        Alcotest.(check bool) "each task ran once" true (Array.for_all (( = ) 1) hits)
      done;
      Alcotest.(check int) "domains" 3 (Pool.domains pool))

let test_zero_and_empty () =
  Pool.with_pool ~domains:2 (fun pool ->
      Pool.run pool ~tasks:0 (fun _ -> Alcotest.fail "no task should run");
      Alcotest.(check (array int)) "empty map" [||] (Pool.map pool (fun x -> x) [||]);
      Pool.chunked_iter pool ~chunks:4 ~n:0 (fun ~chunk:_ ~lo:_ ~hi:_ ->
          Alcotest.fail "no chunk should run"))

let test_map_order () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 50 (fun i -> i) in
      Alcotest.(check (array int)) "input order" (Array.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let test_chunked_iter_partition () =
  Pool.with_pool ~domains:3 (fun pool ->
      (* Slices must cover [0, n) disjointly and contiguously, and the
         boundaries must depend only on (chunks, n). *)
      List.iter
        (fun (chunks, n) ->
           let seen = Array.make n 0 in
           let count = ref 0 in
           let mu = Mutex.create () in
           Pool.chunked_iter pool ~chunks ~n (fun ~chunk:_ ~lo ~hi ->
               Mutex.lock mu;
               incr count;
               Mutex.unlock mu;
               Alcotest.(check bool) "non-empty slice" true (lo < hi);
               for i = lo to hi - 1 do
                 seen.(i) <- seen.(i) + 1
               done);
           Alcotest.(check bool) "covers every index once" true
             (Array.for_all (( = ) 1) seen);
           Alcotest.(check bool) "at most chunks slices" true (!count <= chunks))
        [ (4, 10); (8, 3); (1, 7); (3, 3) ])

let test_exception_propagation () =
  Pool.with_pool ~domains:3 (fun pool ->
      let ran = Array.make 10 false in
      (match
         Pool.run pool ~tasks:10 (fun i ->
             ran.(i) <- true;
             if i = 3 || i = 7 then failwith (Printf.sprintf "task %d" i))
       with
       | () -> Alcotest.fail "expected the task failure to re-raise"
       | exception Failure msg ->
         Alcotest.(check string) "lowest-index failure wins" "task 3" msg);
      Alcotest.(check bool) "remaining tasks still ran" true (Array.for_all Fun.id ran);
      (* The pool survives a failed batch. *)
      let ok = Array.make 5 false in
      Pool.run pool ~tasks:5 (fun i -> ok.(i) <- true);
      Alcotest.(check bool) "pool reusable after failure" true (Array.for_all Fun.id ok))

let test_nested_run_rejected () =
  Pool.with_pool ~domains:3 (fun pool ->
      match Pool.run pool ~tasks:4 (fun _ -> Pool.run pool ~tasks:1 (fun _ -> ())) with
      | () -> Alcotest.fail "expected Invalid_argument for nested run"
      | exception Invalid_argument _ -> ())

let test_shutdown_and_validation () =
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0));
  let pool = Pool.create ~domains:2 in
  (match Pool.run pool ~tasks:(-1) (fun _ -> ()) with
   | () -> Alcotest.fail "expected Invalid_argument for negative tasks"
   | exception Invalid_argument _ -> ());
  Pool.shutdown pool;
  Pool.shutdown pool;
  (match Pool.run pool ~tasks:1 (fun _ -> ()) with
   | () -> Alcotest.fail "expected Invalid_argument after shutdown"
   | exception Invalid_argument _ -> ());
  Alcotest.(check int) "with_pool returns" 42
    (Pool.with_pool ~domains:1 (fun _ -> 42))

(* -------------------------------------------------------- telemetry *)

let c_local = Obs.Counter.make "test.par_counter"

let test_local_sink_merge () =
  Obs.reset ();
  Obs.enable ();
  let s1 = Obs.Local.create () and s2 = Obs.Local.create () in
  Obs.Local.install s1;
  Alcotest.(check bool) "installed" true (Obs.Local.installed ());
  Obs.Counter.incr c_local;
  Obs.Counter.incr ~by:4 c_local;
  Obs.Local.uninstall ();
  Obs.Local.install s2;
  Obs.Counter.incr ~by:2 c_local;
  Obs.Local.uninstall ();
  Alcotest.(check int) "global untouched before merge" 0 (Obs.Counter.value c_local);
  Obs.Local.merge s1;
  Obs.Local.merge s2;
  Alcotest.(check int) "counters add across sinks" 7 (Obs.Counter.value c_local);
  Obs.disable ();
  Obs.reset ()

let test_pool_gauges () =
  Obs.reset ();
  Obs.enable ();
  Pool.with_pool ~domains:2 (fun pool -> Pool.run pool ~tasks:5 (fun _ -> ()));
  let r = Obs.Report.capture () in
  Alcotest.(check (option (float 0.))) "par.domains" (Some 2.)
    (Obs.Report.gauge r "par.domains");
  Alcotest.(check (option (float 0.))) "par.tasks" (Some 5.)
    (Obs.Report.gauge r "par.tasks");
  Alcotest.(check bool) "par.steal_idle_ns recorded" true
    (Obs.Report.gauge r "par.steal_idle_ns" <> None);
  Obs.disable ();
  Obs.reset ()

(* ------------------------------------------------------ determinism *)

let batch_jobs () =
  let u k = Unitary.haar_random (Rng.create (100 + k)) 6 in
  [
    (u 0, Config.Full_opt);
    (u 1, Config.Baseline);
    (u 2, Config.Decomp_opt);
    (u 3, Config.Full_opt);
    (u 0, Config.Full_opt);
    (u 4, Config.Rot_cut);
    (u 5, Config.Full_opt);
    (u 6, Config.Full_opt);
  ]

let compile_batch_with ~jobs =
  Compiler.compile_batch ~tau:0.99 ~jobs ~rng:(Rng.create 42) ~device:device33
    (batch_jobs ())

(* Plans and policies (the semantic output) must be bit-identical at
   every jobs value; timings and cache-hit flags may differ. *)
let batch_key results =
  List.map (fun (c : Compiler.t) -> (Plan.to_string c.Compiler.plan, c.Compiler.policy)) results

let test_compile_batch_determinism () =
  let r1 = batch_key (compile_batch_with ~jobs:1) in
  let r2 = batch_key (compile_batch_with ~jobs:2) in
  let r4 = batch_key (compile_batch_with ~jobs:4) in
  Alcotest.(check bool) "jobs 2 = jobs 1" true (r2 = r1);
  Alcotest.(check bool) "jobs 4 = jobs 1" true (r4 = r1);
  Alcotest.check_raises "jobs 0 rejected"
    (Invalid_argument "Compiler.compile_batch: jobs must be >= 1") (fun () ->
      ignore (compile_batch_with ~jobs:0))

let test_compile_batch_cache_stats () =
  let cache = Pipeline.Cache.create () in
  ignore
    (Compiler.compile_batch ~tau:0.99 ~cache ~jobs:4 ~rng:(Rng.create 42)
       ~device:device33 (batch_jobs ()));
  let s = Pipeline.Cache.stats cache in
  Alcotest.(check bool) "chunk misses absorbed" true (s.Pipeline.Cache.misses > 0)

let gbs_state () =
  let u = Unitary.haar_random (Rng.create 5) 4 in
  let s = Gaussian.vacuum 4 in
  for i = 0 to 3 do
    Gaussian.squeeze s i (Cx.re 0.35)
  done;
  Gaussian.interferometer s u;
  s

let test_sampling_determinism () =
  let sampler = Sampler.of_state ~max_photons:4 (gbs_state ()) in
  let seq = Sampler.draw_chains ~chains:8 (Rng.create 7) sampler 200 in
  Alcotest.(check int) "shot count" 200 (List.length seq);
  List.iter
    (fun domains ->
       Pool.with_pool ~domains (fun pool ->
           Alcotest.(check bool)
             (Printf.sprintf "draw_chains pool %d = sequential" domains)
             true
             (Sampler.draw_chains ~chains:8 ~pool (Rng.create 7) sampler 200 = seq)))
    [ 1; 2; 4 ]

let test_chain_rule_determinism () =
  let seq = Sampler.chain_rule_chains ~chains:6 (Rng.create 9) (gbs_state ()) 48 in
  Alcotest.(check int) "shot count" 48 (List.length seq);
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check bool) "chain_rule_chains pool = sequential" true
        (Sampler.chain_rule_chains ~chains:6 ~pool (Rng.create 9) (gbs_state ()) 48 = seq))

let test_boson_sampling_determinism () =
  let u = Unitary.haar_random (Rng.create 11) 4 in
  let input = Boson_sampling.single_photons ~modes:4 ~photons:2 in
  let seq = Boson_sampling.sample ~chains:8 (Rng.create 3) u ~input 100 in
  Alcotest.(check int) "shot count" 100 (List.length seq);
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check bool) "sample pool = sequential" true
        (Boson_sampling.sample ~chains:8 ~pool (Rng.create 3) u ~input 100 = seq))

let test_dropout_pool_determinism () =
  let u = Unitary.haar_random (Rng.create 21) 6 in
  let c =
    Compiler.compile ~tau:0.99 ~rng:(Rng.create 42) ~device:device33
      ~config:Config.Full_opt u
  in
  let plan = c.Compiler.plan in
  let reference = c.Compiler.mapping.Mapping.permuted in
  let policy domains =
    Pool.with_pool ~domains (fun pool ->
        Dropout.make_policy ~pool (Rng.create 8) plan reference ~tau:0.99)
  in
  Alcotest.(check bool) "policy at 3 domains = 1 domain" true (policy 3 = policy 1)

(* ------------------------------------------------- fused elimination *)

(* Above [Mat.blocking_threshold] the decompositions run on the fused
   sweep engine. The pool only picks chunk boundaries; every row sees
   the same rotation subsequence in the same order, so the output must
   be bit-identical at every pool size — including no pool at all. *)
let test_fused_decompose_pool_invariant () =
  let n = Mat.blocking_threshold + 22 in
  let u = Unitary.haar_random (Rng.create 77) n in
  let base_plan = Plan.to_string (Eliminate.decompose_baseline u) in
  let base_clements = Clements.decompose u in
  List.iter
    (fun domains ->
       Pool.with_pool ~domains (fun pool ->
           Alcotest.(check bool)
             (Printf.sprintf "plan at %d domains = no pool" domains)
             true
             (Plan.to_string (Eliminate.decompose_baseline ~pool u) = base_plan);
           Alcotest.(check bool)
             (Printf.sprintf "clements at %d domains = no pool" domains)
             true
             (Clements.decompose ~pool u = base_clements)))
    [ 1; 2; 4 ]

(* The fused engine has no serial reference at the same N (engine choice
   is by size), so correctness is pinned the mathematical way: the
   decomposition must replay back to its input. *)
let test_fused_decompose_reconstructs () =
  let n = Mat.blocking_threshold + 5 in
  let u = Unitary.haar_random (Rng.create 78) n in
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check bool) "fused plan replays to the input" true
        (Mat.equal ~tol:1e-9 (Plan.reconstruct (Eliminate.decompose_baseline ~pool u)) u);
      Alcotest.(check bool) "fused clements replays to the input" true
        (Mat.equal ~tol:1e-9 (Clements.reconstruct (Clements.decompose ~pool u)) u))

(* Full compile with --jobs: plan bytes, dropout policy and the replayed
   approximate unitary must all be bit-identical at jobs ∈ {1, 2, 4} —
   below the fused threshold (N = 64, legacy engines everywhere) and
   above it (fused decompose + fused replay, pool-chunked). *)
let test_compile_jobs_bit_identity () =
  let check ~modes ~rows ~cols ~config =
    let device = Lattice.create ~rows ~cols in
    let u = Unitary.haar_random (Rng.create 31) modes in
    let go pool =
      Compiler.compile ~effort:Compiler.Fast ~tau:0.99 ?pool ~rng:(Rng.create 5) ~device
        ~config u
    in
    let base = go None in
    let base_plan = Plan.to_binary_string base.Compiler.plan in
    let base_app = Compiler.approx_unitary base in
    List.iter
      (fun jobs ->
         let c = Pool.with_pool ~domains:jobs (fun p -> go (Some p)) in
         Alcotest.(check bool)
           (Printf.sprintf "N=%d jobs %d plan bits" modes jobs)
           true
           (Plan.to_binary_string c.Compiler.plan = base_plan);
         Alcotest.(check bool)
           (Printf.sprintf "N=%d jobs %d policy" modes jobs)
           true
           (c.Compiler.policy = base.Compiler.policy);
         Alcotest.(check bool)
           (Printf.sprintf "N=%d jobs %d approx unitary bits" modes jobs)
           true
           (Mat.equal ~tol:0. (Compiler.approx_unitary c) base_app))
      [ 1; 2; 4 ]
  in
  check ~modes:64 ~rows:8 ~cols:8 ~config:Config.Full_opt;
  check ~modes:(Mat.blocking_threshold + 22) ~rows:13 ~cols:12 ~config:Config.Baseline

(* ------------------------------------------------------------- lint *)

let test_bh1001_shared_stream () =
  let r = Rng.create 1 in
  let streams = Rng.split r 2 in
  let diags =
    Lint.run
      {
        Lint.empty with
        Lint.rngs =
          [ ("task0", r); ("task1", r); ("task2", streams.(0)); ("task3", streams.(1)) ];
      }
  in
  Alcotest.(check (list string)) "one shared pair flagged" [ "BH1001" ]
    (List.map (fun d -> d.Diag.code) diags);
  Alcotest.(check bool) "shared-stream diagnostic is an error" true
    (List.for_all Diag.is_error diags);
  let clean =
    Lint.run
      { Lint.empty with Lint.rngs = [ ("task0", streams.(0)); ("task1", streams.(1)) ] }
  in
  Alcotest.(check (list string)) "split streams lint clean" []
    (List.map (fun d -> d.Diag.code) clean)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "run covers all tasks" `Quick test_run_covers_all;
          Alcotest.test_case "zero tasks" `Quick test_zero_and_empty;
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "chunked partition" `Quick test_chunked_iter_partition;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "nested run rejected" `Quick test_nested_run_rejected;
          Alcotest.test_case "shutdown and validation" `Quick test_shutdown_and_validation;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "local sink merge" `Quick test_local_sink_merge;
          Alcotest.test_case "pool gauges" `Quick test_pool_gauges;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "compile_batch jobs 1/2/4" `Quick
            test_compile_batch_determinism;
          Alcotest.test_case "batch cache stats absorbed" `Quick
            test_compile_batch_cache_stats;
          Alcotest.test_case "draw_chains pool sizes" `Quick test_sampling_determinism;
          Alcotest.test_case "chain_rule_chains pool" `Quick test_chain_rule_determinism;
          Alcotest.test_case "boson sampling pool" `Quick
            test_boson_sampling_determinism;
          Alcotest.test_case "dropout policy pool sizes" `Quick
            test_dropout_pool_determinism;
        ] );
      ( "fused",
        [
          Alcotest.test_case "fused decompose pool-invariant" `Quick
            test_fused_decompose_pool_invariant;
          Alcotest.test_case "fused decompose reconstructs" `Quick
            test_fused_decompose_reconstructs;
          Alcotest.test_case "compile --jobs bit-identity" `Quick
            test_compile_jobs_bit_identity;
        ] );
      ( "lint",
        [ Alcotest.test_case "BH1001 shared rng stream" `Quick test_bh1001_shared_stream ] );
    ]
