(* Unit and property tests for the Gaussian-state GBS simulator:
   covariance formalism, hafnians, Fock probabilities, sampling. *)

module Rng = Bose_util.Rng
module Combin = Bose_util.Combin
module Dist = Bose_util.Dist
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
open Bose_gbs
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit
module Noise = Bose_circuit.Noise

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

let dist_total state cutoff =
  List.fold_left (fun acc (_, p) -> acc +. p) 0. (Fock.pattern_distribution ~max_photons:cutoff state)

let dist_mean state cutoff =
  List.fold_left
    (fun acc (pat, p) -> acc +. (p *. float_of_int (Combin.pattern_total pat)))
    0.
    (Fock.pattern_distribution ~max_photons:cutoff state)

(* ------------------------------------------------------------- Gaussian *)

let test_vacuum () =
  let s = Gaussian.vacuum 3 in
  Alcotest.(check int) "modes" 3 (Gaussian.modes s);
  check_close "no photons" 1e-12 0. (Gaussian.total_mean_photons s);
  Alcotest.(check bool) "valid" true (Gaussian.is_valid s)

let test_squeeze_mean_photons () =
  let s = Gaussian.vacuum 1 in
  Gaussian.squeeze s 0 (Cx.re 0.7);
  check_close "sinh² r" 1e-9 (sinh 0.7 ** 2.) (Gaussian.mean_photons s 0);
  Alcotest.(check bool) "valid" true (Gaussian.is_valid s)

let test_squeeze_angle_invariance () =
  (* ⟨n⟩ depends only on |α| of the squeezing. *)
  let s1 = Gaussian.vacuum 1 and s2 = Gaussian.vacuum 1 in
  Gaussian.squeeze s1 0 (Cx.re 0.5);
  Gaussian.squeeze s2 0 (Cx.polar 0.5 2.3);
  check_close "same photon number" 1e-9 (Gaussian.mean_photons s1 0) (Gaussian.mean_photons s2 0)

let test_phase_preserves_photons () =
  let s = Gaussian.vacuum 1 in
  Gaussian.squeeze s 0 (Cx.re 0.4);
  Gaussian.displace s 0 (Cx.make 0.2 0.5);
  let before = Gaussian.mean_photons s 0 in
  Gaussian.phase s 0 1.234;
  check_close "R preserves n" 1e-9 before (Gaussian.mean_photons s 0)

let test_displace_alpha () =
  let s = Gaussian.vacuum 2 in
  Gaussian.displace s 1 (Cx.make 0.3 (-0.4));
  Alcotest.(check bool) "alpha read back" true
    (Cx.is_close ~tol:1e-12 (Gaussian.alpha s 1) (Cx.make 0.3 (-0.4)));
  check_close "|α|² photons" 1e-9 0.25 (Gaussian.mean_photons s 1)

let test_beamsplitter_conserves_photons () =
  let s = Gaussian.vacuum 2 in
  Gaussian.squeeze s 0 (Cx.re 0.6);
  Gaussian.displace s 1 (Cx.re 0.5);
  let before = Gaussian.total_mean_photons s in
  Gaussian.beamsplitter s 0 1 0.7 0.3;
  check_close "BS conserves photons" 1e-9 before (Gaussian.total_mean_photons s);
  Alcotest.(check bool) "valid" true (Gaussian.is_valid s)

let test_fifty_fifty_splits_coherent () =
  (* BS(π/4, 0) splits a coherent beam's energy in half. *)
  let s = Gaussian.vacuum 2 in
  Gaussian.displace s 0 (Cx.re 1.0);
  Gaussian.beamsplitter s 0 1 (Float.pi /. 4.) 0.;
  check_close "half here" 1e-9 0.5 (Gaussian.mean_photons s 0);
  check_close "half there" 1e-9 0.5 (Gaussian.mean_photons s 1)

let test_loss_decay () =
  let s = Gaussian.vacuum 1 in
  Gaussian.squeeze s 0 (Cx.re 0.8);
  let before = Gaussian.mean_photons s 0 in
  Gaussian.loss s 0 0.25;
  check_close "⟨n⟩ → (1−ℓ)⟨n⟩" 1e-9 (0.75 *. before) (Gaussian.mean_photons s 0);
  Alcotest.(check bool) "still physical" true (Gaussian.is_valid s)

let test_loss_full_kills_state () =
  let s = Gaussian.vacuum 1 in
  Gaussian.squeeze s 0 (Cx.re 1.0);
  Gaussian.displace s 0 (Cx.re 2.0);
  Gaussian.loss s 0 1.0;
  check_close "back to vacuum" 1e-9 0. (Gaussian.mean_photons s 0)

let test_interferometer_matches_gates () =
  (* Applying a full unitary at once equals applying its decomposed MZI
     circuit gate by gate — ties the simulator to the compiler IR. *)
  let rng = Rng.create 42 in
  let n = 5 in
  let u = Unitary.haar_random rng n in
  let plan = Bose_decomp.Eliminate.decompose_baseline u in
  let circuit = Bose_decomp.Plan.to_circuit plan in
  let s1 = Gaussian.vacuum n in
  Array.iteri (fun i _ -> Gaussian.squeeze s1 i (Cx.re (0.2 +. (0.05 *. float_of_int i)))) (Array.make n ()) ;
  let s2 = Gaussian.copy s1 in
  Gaussian.interferometer s1 u;
  Gaussian.run_circuit s2 circuit;
  let v1 = Gaussian.cov s1 and v2 = Gaussian.cov s2 in
  let worst = ref 0. in
  for i = 0 to (2 * n) - 1 do
    for j = 0 to (2 * n) - 1 do
      worst := Float.max !worst (Float.abs (v1.(i).(j) -. v2.(i).(j)))
    done
  done;
  Alcotest.(check bool) (Printf.sprintf "covariances agree (%.2e)" !worst) true (!worst < 1e-9)

let test_run_circuit_with_noise () =
  let c =
    Circuit.add_all (Circuit.create ~modes:2)
      [ Gate.Squeeze (0, Cx.re 0.5); Gate.Beamsplitter (0, 1, 0.6, 0.) ]
  in
  let clean = Simulator.run c in
  let noisy = Simulator.run ~noise:(Noise.uniform 0.1) c in
  Alcotest.(check bool) "loss reduces photons" true
    (Gaussian.total_mean_photons noisy < Gaussian.total_mean_photons clean);
  Alcotest.(check bool) "still valid" true (Gaussian.is_valid noisy)

(* -------------------------------------------------------------- Hafnian *)

let test_hafnian_known () =
  let x = Mat.of_arrays [| [| Cx.zero; Cx.one |]; [| Cx.one; Cx.zero |] |] in
  Alcotest.(check bool) "haf [[0,1],[1,0]] = 1" true (Cx.is_close (Hafnian.hafnian x) Cx.one);
  let ones4 = Mat.init 4 4 (fun _ _ -> Cx.one) in
  Alcotest.(check bool) "haf(J₄) = 3" true (Cx.is_close (Hafnian.hafnian ones4) (Cx.re 3.));
  Alcotest.(check bool) "haf odd = 0" true
    (Cx.is_close (Hafnian.hafnian (Mat.identity 3)) Cx.zero);
  Alcotest.(check bool) "haf empty = 1" true
    (Cx.is_close (Hafnian.hafnian (Mat.create 0 0)) Cx.one)

let test_loop_hafnian_known () =
  (* For a diagonal matrix the loop hafnian is the diagonal product. *)
  let d = Mat.create 3 3 in
  Mat.set d 0 0 (Cx.re 2.);
  Mat.set d 1 1 (Cx.re 3.);
  Mat.set d 2 2 (Cx.re 5.);
  Alcotest.(check bool) "lhaf diag = product" true
    (Cx.is_close (Hafnian.loop_hafnian d) (Cx.re 30.));
  (* 2×2 with loops: A₀₀A₁₁ + A₀₁. *)
  let m = Mat.of_arrays [| [| Cx.re 2.; Cx.re 7. |]; [| Cx.re 7.; Cx.re 3. |] |] in
  Alcotest.(check bool) "lhaf 2x2" true (Cx.is_close (Hafnian.loop_hafnian m) (Cx.re 13.))

let random_symmetric rng n =
  let m = Mat.create n n in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let re, im = Rng.gaussian_pair rng in
      let z = Cx.make re im in
      Mat.set m i j z;
      Mat.set m j i z
    done
  done;
  m

let test_hafnian_vs_brute () =
  let rng = Rng.create 77 in
  List.iter
    (fun n ->
       let m = random_symmetric rng n in
       Alcotest.(check bool)
         (Printf.sprintf "haf dp=brute n=%d" n)
         true
         (Cx.is_close ~tol:1e-9 (Hafnian.hafnian m) (Hafnian.hafnian_brute m));
       Alcotest.(check bool)
         (Printf.sprintf "lhaf dp=brute n=%d" n)
         true
         (Cx.is_close ~tol:1e-9 (Hafnian.loop_hafnian m) (Hafnian.loop_hafnian_brute m)))
    [ 2; 4; 6; 8 ]

(* ----------------------------------------------------------------- Fock *)

let test_coherent_distribution () =
  let alpha = Cx.make 0.6 (-0.3) in
  let a2 = Cx.abs2 alpha in
  let s = Gaussian.vacuum 1 in
  Gaussian.displace s 0 alpha;
  let p = Fock.prepare s in
  for n = 0 to 5 do
    check_close
      (Printf.sprintf "Poisson p(%d)" n)
      1e-10
      (exp (-.a2) *. (a2 ** float_of_int n) /. Combin.factorial n)
      (Fock.probability p [| n |])
  done

let test_squeezed_distribution () =
  let r = 0.6 in
  let s = Gaussian.vacuum 1 in
  Gaussian.squeeze s 0 (Cx.re r) ;
  let p = Fock.prepare s in
  check_close "p(0)" 1e-10 (1. /. cosh r) (Fock.probability p [| 0 |]);
  check_close "p(1)" 1e-10 0. (Fock.probability p [| 1 |]);
  let p2n n =
    Combin.factorial (2 * n)
    /. ((4. ** float_of_int n) *. (Combin.factorial n ** 2.))
    *. (tanh r ** float_of_int (2 * n))
    /. cosh r
  in
  check_close "p(2)" 1e-10 (p2n 1) (Fock.probability p [| 2 |]);
  check_close "p(4)" 1e-10 (p2n 2) (Fock.probability p [| 4 |])

let test_lossy_thermalish_state () =
  (* Squeezed light through loss: distribution must stay normalized and
     reproduce the covariance mean photon number. *)
  let s = Gaussian.vacuum 1 in
  Gaussian.squeeze s 0 (Cx.re 0.6);
  Gaussian.loss s 0 0.3;
  check_close "normalized" 1e-4 1. (dist_total s 10);
  check_close "mean matches covariance" 1e-3 (Gaussian.total_mean_photons s) (dist_mean s 10)

let test_multimode_normalization () =
  let rng = Rng.create 5 in
  let s = Gaussian.vacuum 3 in
  Gaussian.squeeze s 0 (Cx.re 0.4);
  Gaussian.squeeze s 1 (Cx.polar 0.3 0.8);
  Gaussian.displace s 2 (Cx.make 0.2 0.1);
  Gaussian.interferometer s (Unitary.haar_random rng 3);
  Gaussian.loss s 1 0.08;
  check_close "normalized" 2e-3 1. (dist_total s 8);
  check_close "mean matches covariance" 2e-2 (Gaussian.total_mean_photons s) (dist_mean s 8)

let test_two_mode_squeezed_correlations () =
  (* Two equal squeezers + 50:50 BS produce a two-mode squeezed state:
     photon numbers are perfectly correlated (only even totals, and
     p(n,m) = 0 unless n = m with opposite squeezing axes). Use the
     textbook construction: S(r) ⊗ S(−r) → BS(π/4). *)
  let r = 0.5 in
  let s = Gaussian.vacuum 2 in
  Gaussian.squeeze s 0 (Cx.re r);
  Gaussian.squeeze s 1 (Cx.re (-.r));
  Gaussian.beamsplitter s 0 1 (Float.pi /. 4.) 0.;
  let p = Fock.prepare s in
  check_close "p(1,0) = 0" 1e-9 0. (Fock.probability p [| 1; 0 |]);
  check_close "p(2,1) = 0" 1e-9 0. (Fock.probability p [| 2; 1 |]);
  let p00 = Fock.probability p [| 0; 0 |] in
  let p11 = Fock.probability p [| 1; 1 |] in
  check_close "p(0,0) = 1/cosh²r" 1e-9 (1. /. (cosh r ** 2.)) p00;
  check_close "p(1,1) = tanh²r·p(0,0)" 1e-9 (tanh r ** 2. *. p00) p11

let test_graph_hafnian_identity () =
  (* GBS graph sampling: p(n̄) ∝ |haf((cA)_n̄)|² for the Takagi encoding
     of a symmetric matrix A (Hamilton et al.). Verified on a 4-vertex
     graph for several patterns. *)
  let rng = Rng.create 9 in
  let g = Bose_apps.Graph.random rng ~n:4 ~p:0.8 in
  let program = Bose_apps.Encoding.encode ~mean_photons:1.0 g in
  let lambda, _u = Bose_linalg.Takagi.decompose (Bose_apps.Graph.adjacency g) in
  let c = Bose_apps.Encoding.scaling_for lambda ~target:1.0 in
  let s = Gaussian.vacuum 4 in
  Array.iteri (fun i a -> if Cx.abs a > 0. then Gaussian.squeeze s i a) program.Bosehedral.Runner.squeezing;
  Gaussian.interferometer s program.Bosehedral.Runner.unitary;
  let prep = Fock.prepare s in
  let adj = Bose_apps.Graph.adjacency g in
  let scaled = Mat.init 4 4 (fun i j -> Cx.re (c *. adj.(i).(j))) in
  let p0 = Fock.vacuum_probability prep in
  List.iter
    (fun pattern ->
       let expand =
         Array.concat
           (Array.to_list (Array.mapi (fun k cnt -> Array.make cnt k) pattern))
       in
       let size = Array.length expand in
       let sub = Mat.init size size (fun i j -> Mat.get scaled expand.(i) expand.(j)) in
       let h = Hafnian.hafnian sub in
       let expected =
         p0 *. Cx.abs2 h
         /. Array.fold_left (fun acc cnt -> acc *. Combin.factorial cnt) 1. pattern
       in
       check_close
         (Printf.sprintf "pattern [%s]"
            (String.concat ";" (Array.to_list (Array.map string_of_int pattern))))
         1e-9 expected
         (Fock.probability prep pattern))
    [ [| 1; 1; 0; 0 |]; [| 1; 0; 1; 0 |]; [| 2; 0; 0; 0 |]; [| 1; 1; 1; 1 |]; [| 2; 2; 0; 0 |] ]

let test_truncated_has_tail () =
  let s = Gaussian.vacuum 2 in
  Gaussian.squeeze s 0 (Cx.re 0.8);
  let d = Fock.truncated ~max_photons:2 s in
  check_close "total mass 1" 1e-9 1. (Dist.total d);
  Alcotest.(check bool) "tail positive" true (Dist.prob d Fock.tail > 0.)

(* -------------------------------------------------------------- Sampler *)

let test_sampler_empirical_matches_exact () =
  let rng = Rng.create 123 in
  let s = Gaussian.vacuum 2 in
  Gaussian.squeeze s 0 (Cx.re 0.5);
  Gaussian.beamsplitter s 0 1 (Float.pi /. 4.) 0.;
  let sampler = Sampler.of_state ~max_photons:6 s in
  let exact = Sampler.exact sampler in
  let empirical = Sampler.empirical rng sampler 20_000 in
  Alcotest.(check bool) "JSD small" true (Dist.jsd exact empirical < 0.01)

let test_sampler_draw_shapes () =
  let rng = Rng.create 124 in
  let s = Gaussian.vacuum 3 in
  Gaussian.squeeze s 1 (Cx.re 0.4);
  let sampler = Sampler.of_state ~max_photons:5 s in
  List.iter
    (fun pat ->
       Alcotest.(check bool) "pattern length or tail" true
         (pat = Fock.tail || List.length pat = 3))
    (Sampler.draw_many rng sampler 200)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"gaussian ops preserve physicality" ~count:25 small_int (fun seed ->
        let rng = Rng.create seed in
        let s = Gaussian.vacuum 3 in
        Gaussian.squeeze s 0 (Cx.polar (Rng.float rng 0.8) (Rng.float rng 6.28));
        Gaussian.beamsplitter s 0 1 (Rng.float rng 1.5) (Rng.float rng 6.28);
        Gaussian.phase s 2 (Rng.float rng 6.28);
        Gaussian.displace s 1 (Cx.make (Rng.gaussian rng *. 0.3) (Rng.gaussian rng *. 0.3));
        Gaussian.loss s 0 (Rng.float rng 0.9);
        Gaussian.is_valid s);
    Test.make ~name:"loss scales mean photons linearly" ~count:25 small_int (fun seed ->
        let rng = Rng.create seed in
        let s = Gaussian.vacuum 1 in
        Gaussian.squeeze s 0 (Cx.re (0.1 +. Rng.float rng 0.9));
        let rate = Rng.float rng 1.0 in
        let before = Gaussian.mean_photons s 0 in
        Gaussian.loss s 0 rate;
        Float.abs (Gaussian.mean_photons s 0 -. ((1. -. rate) *. before)) < 1e-9);
    Test.make ~name:"hafnian agrees with brute force" ~count:20 small_int (fun seed ->
        let rng = Rng.create seed in
        let n = 2 * (1 + (abs seed mod 3)) in
        let m = random_symmetric rng n in
        Cx.is_close ~tol:1e-8 (Hafnian.hafnian m) (Hafnian.hafnian_brute m));
  ]

let () =
  Alcotest.run "bose_gbs"
    [
      ( "gaussian",
        [
          Alcotest.test_case "vacuum" `Quick test_vacuum;
          Alcotest.test_case "squeeze photons" `Quick test_squeeze_mean_photons;
          Alcotest.test_case "squeeze angle invariance" `Quick test_squeeze_angle_invariance;
          Alcotest.test_case "phase preserves photons" `Quick test_phase_preserves_photons;
          Alcotest.test_case "displace alpha" `Quick test_displace_alpha;
          Alcotest.test_case "BS conserves photons" `Quick test_beamsplitter_conserves_photons;
          Alcotest.test_case "50:50 splits coherent" `Quick test_fifty_fifty_splits_coherent;
          Alcotest.test_case "loss decay" `Quick test_loss_decay;
          Alcotest.test_case "full loss" `Quick test_loss_full_kills_state;
          Alcotest.test_case "interferometer = gates" `Quick test_interferometer_matches_gates;
          Alcotest.test_case "noisy circuit" `Quick test_run_circuit_with_noise;
        ] );
      ( "hafnian",
        [
          Alcotest.test_case "known values" `Quick test_hafnian_known;
          Alcotest.test_case "loop known" `Quick test_loop_hafnian_known;
          Alcotest.test_case "dp vs brute" `Quick test_hafnian_vs_brute;
        ] );
      ( "fock",
        [
          Alcotest.test_case "coherent Poisson" `Quick test_coherent_distribution;
          Alcotest.test_case "squeezed even" `Quick test_squeezed_distribution;
          Alcotest.test_case "lossy normalization" `Quick test_lossy_thermalish_state;
          Alcotest.test_case "multimode normalization" `Quick test_multimode_normalization;
          Alcotest.test_case "two-mode squeezed" `Quick test_two_mode_squeezed_correlations;
          Alcotest.test_case "graph hafnian identity" `Quick test_graph_hafnian_identity;
          Alcotest.test_case "truncated tail" `Quick test_truncated_has_tail;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "empirical matches exact" `Quick test_sampler_empirical_matches_exact;
          Alcotest.test_case "draw shapes" `Quick test_sampler_draw_shapes;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest t) qcheck_tests);
    ]
