(* Tests for the pass-manager pipeline: the registry, the
   fingerprint-keyed artifact cache, the batch driver, disabled passes,
   and the BH09xx pipeline lint checker.

   The load-bearing property throughout is bit-exactness: the pipeline
   must reproduce the pre-refactor monolithic compiler byte for byte
   (same artifacts, same RNG draw order), and a cache-hit compile must
   be indistinguishable from a cold one. *)

module Rng = Bose_util.Rng
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Coupling = Bose_hardware.Coupling
module Emb = Bose_hardware.Embedding
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate
module Mapping = Bose_mapping.Mapping
module Dropout = Bose_dropout.Dropout
module Obs = Bose_obs.Obs
module Lint = Bose_lint.Lint
module Diag = Bose_lint.Diag
open Bosehedral

let device33 = Lattice.create ~rows:3 ~cols:3

(* Bit-exact artifact comparison: Plan.to_string is the hex-float
   serialization, Mat.equal ~tol:0. is exact float equality, policies
   compare field by field. *)
let check_plan_eq label (a : Plan.t) (b : Plan.t) =
  Alcotest.(check string) (label ^ ": plan bytes") (Plan.to_string a) (Plan.to_string b)

let check_mapping_eq label (a : Mapping.t) (b : Mapping.t) =
  Alcotest.(check bool)
    (label ^ ": permuted bytes")
    true
    (Mat.equal ~tol:0. a.Mapping.permuted b.Mapping.permuted);
  Alcotest.(check (array int))
    (label ^ ": row perm")
    (Bose_linalg.Perm.to_array a.Mapping.row_perm)
    (Bose_linalg.Perm.to_array b.Mapping.row_perm);
  Alcotest.(check (array int))
    (label ^ ": col perm")
    (Bose_linalg.Perm.to_array a.Mapping.col_perm)
    (Bose_linalg.Perm.to_array b.Mapping.col_perm)

let check_policy_eq label (a : Dropout.policy option) (b : Dropout.policy option) =
  match (a, b) with
  | None, None -> ()
  | Some a, Some b ->
    Alcotest.(check (float 0.)) (label ^ ": theta_cut") a.Dropout.theta_cut b.Dropout.theta_cut;
    Alcotest.(check int) (label ^ ": kept_count") a.Dropout.kept_count b.Dropout.kept_count;
    Alcotest.(check int) (label ^ ": power") a.Dropout.power b.Dropout.power;
    Alcotest.(check (float 0.))
      (label ^ ": expected_fidelity")
      a.Dropout.expected_fidelity b.Dropout.expected_fidelity;
    Alcotest.(check (array (float 0.))) (label ^ ": weights") a.Dropout.weights b.Dropout.weights
  | _ -> Alcotest.fail (label ^ ": one policy is None, the other is not")

let check_compiled_eq label (a : Compiler.t) (b : Compiler.t) =
  check_mapping_eq label a.Compiler.mapping b.Compiler.mapping;
  check_plan_eq label a.Compiler.plan b.Compiler.plan;
  check_policy_eq label a.Compiler.policy b.Compiler.policy

(* ------------------------------------------------- bit-exact refactor *)

(* Hand-rolled replica of the pre-pipeline monolithic Compiler.compile:
   the exact stage bodies, knob functions and RNG draw order the pass
   registry now encapsulates. The pipeline must match it byte for
   byte on every configuration. *)
let legacy_compile ~effort ~tau ~rng ~device ~config u =
  let n = Mat.rows u in
  let ws = Mat.workspace () in
  let pattern =
    if Config.uses_tree_pattern config then Emb.for_program device n
    else Emb.baseline device n
  in
  let mapping =
    if Config.uses_mapping config then begin
      let first =
        Mapping.optimize ~ws ?candidate_ks:(Pass.mapping_candidates effort n) pattern u
      in
      let trials = Pass.polish_trials effort n in
      if trials > 0 then Mapping.polish ~ws ~trials ~tau ~rng pattern first else first
    end
    else Mapping.trivial u
  in
  let plan = Eliminate.decompose ~ws pattern mapping.Mapping.permuted in
  let policy =
    if Config.uses_dropout config then begin
      let powers, iterations = Pass.dropout_knobs effort n in
      Some
        (Dropout.make_policy ~ws ~powers ~iterations rng plan mapping.Mapping.permuted
           ~tau)
    end
    else None
  in
  (mapping, plan, policy)

let test_bit_exact_vs_legacy () =
  let u = Unitary.haar_random (Rng.create 11) 9 in
  List.iter
    (fun effort ->
       List.iter
         (fun config ->
            let label =
              Config.name config ^ "/" ^ Pass.effort_name effort
            in
            let c =
              Compiler.compile ~effort ~tau:0.99 ~rng:(Rng.create 42) ~device:device33
                ~config u
            in
            let mapping, plan, policy =
              legacy_compile ~effort ~tau:0.99 ~rng:(Rng.create 42) ~device:device33
                ~config u
            in
            check_mapping_eq label c.Compiler.mapping mapping;
            check_plan_eq label c.Compiler.plan plan;
            check_policy_eq label c.Compiler.policy policy)
         Config.all)
    [ Compiler.Standard; Compiler.Fast ]

(* A compiled plan survives the v2 binary artifact codec bit-exactly:
   text → binary → text reproduces the hex-float bytes, for every
   config (phases, eliminations and lambdas all make the trip). *)
let test_plan_binary_roundtrip_bit_exact () =
  let u = Unitary.haar_random (Rng.create 19) 9 in
  List.iter
    (fun config ->
       let c =
         Compiler.compile ~tau:0.99 ~rng:(Rng.create 42) ~device:device33 ~config u
       in
       let text = Plan.to_string c.Compiler.plan in
       match Plan.of_string (Plan.to_binary_string c.Compiler.plan) with
       | Error (msg, l) ->
         Alcotest.failf "%s: binary plan parse failed: %s (line %d)" (Config.name config)
           msg l
       | Ok p ->
         Alcotest.(check string)
           (Config.name config ^ ": text→binary→text")
           text (Plan.to_string p))
    Config.all

(* --------------------------------------------------------- the cache *)

let compile_cached cache seed u =
  Compiler.compile ?cache ~tau:0.99 ~rng:(Rng.create seed) ~device:device33
    ~config:Config.Full_opt u

let test_cache_hit_bit_identical () =
  let u = Unitary.haar_random (Rng.create 12) 9 in
  let cache = Pipeline.Cache.create () in
  let cold = compile_cached (Some cache) 42 u in
  let s1 = Pipeline.Cache.stats cache in
  Alcotest.(check int) "cold run misses every pass" 4 s1.Pipeline.Cache.misses;
  Alcotest.(check int) "cold run hits nothing" 0 s1.Pipeline.Cache.hits;
  Alcotest.(check int) "one entry per pass" 4 s1.Pipeline.Cache.entries;
  let warm = compile_cached (Some cache) 42 u in
  let s2 = Pipeline.Cache.stats cache in
  Alcotest.(check int) "warm run hits every pass" 4 s2.Pipeline.Cache.hits;
  Alcotest.(check int) "no new misses" 4 s2.Pipeline.Cache.misses;
  check_compiled_eq "warm vs cold" cold warm;
  (* The replayed artifacts are deep copies: mutating the warm result
     must not corrupt the cache for a third compile. *)
  Mat.set warm.Compiler.mapping.Mapping.permuted 0 0 (Bose_linalg.Cx.re 999.);
  let warm2 = compile_cached (Some cache) 42 u in
  check_compiled_eq "cache unpoisoned by caller mutation" cold warm2

let test_cache_gauges () =
  (* The per-compile hit/miss gauges surface in telemetry reports. *)
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      let u = Unitary.haar_random (Rng.create 13) 6 in
      let cache = Pipeline.Cache.create () in
      ignore (compile_cached (Some cache) 7 u);
      let r = Obs.Report.capture () in
      Alcotest.(check (option (float 0.))) "cold: no hits" (Some 0.)
        (Obs.Report.gauge r "compile.cache_hits");
      Alcotest.(check (option (float 0.))) "cold: all misses" (Some 4.)
        (Obs.Report.gauge r "compile.cache_misses");
      ignore (compile_cached (Some cache) 7 u);
      let r = Obs.Report.capture () in
      Alcotest.(check (option (float 0.))) "warm: all hits" (Some 4.)
        (Obs.Report.gauge r "compile.cache_hits");
      Alcotest.(check (option (float 0.))) "warm: no misses" (Some 0.)
        (Obs.Report.gauge r "compile.cache_misses"))

let test_cache_uncached_compile_untouched () =
  (* Without ?cache the compile is cold by construction — bit-exact
     with a cached cold compile of the same job. *)
  let u = Unitary.haar_random (Rng.create 14) 9 in
  let plain = compile_cached None 42 u in
  let cached = compile_cached (Some (Pipeline.Cache.create ())) 42 u in
  check_compiled_eq "plain vs cached-cold" plain cached

let test_cache_capacity_and_eviction () =
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Pipeline.Cache.create: capacity must be positive") (fun () ->
      ignore (Pipeline.Cache.create ~capacity:0 ()));
  let u = Unitary.haar_random (Rng.create 15) 6 in
  let cache = Pipeline.Cache.create ~capacity:1 () in
  let a = compile_cached (Some cache) 42 u in
  let b = compile_cached (Some cache) 42 u in
  let s = Pipeline.Cache.stats cache in
  Alcotest.(check int) "bounded at capacity" 1 s.Pipeline.Cache.entries;
  Alcotest.(check bool) "evictions happened" true (s.Pipeline.Cache.evictions > 0);
  (* With capacity 1 every pass but the last is evicted before reuse:
     the second compile is effectively cold — and still identical. *)
  check_compiled_eq "evicting cache stays correct" a b;
  Pipeline.Cache.clear cache;
  let s = Pipeline.Cache.stats cache in
  Alcotest.(check int) "clear empties" 0 s.Pipeline.Cache.entries;
  Alcotest.(check bool) "clear keeps stats" true (s.Pipeline.Cache.misses > 0)

let test_cache_keys_discriminate () =
  (* Different unitaries, configs, tau or effort must never collide. *)
  let cache = Pipeline.Cache.create () in
  let u1 = Unitary.haar_random (Rng.create 16) 6 in
  let u2 = Unitary.haar_random (Rng.create 17) 6 in
  let compile ?(tau = 0.99) ?(effort = Compiler.Standard) ~config u =
    Compiler.compile ~effort ~tau ~cache ~rng:(Rng.create 42) ~device:device33 ~config u
  in
  ignore (compile ~config:Config.Full_opt u1);
  ignore (compile ~config:Config.Full_opt u2);
  ignore (compile ~config:Config.Baseline u1);
  ignore (compile ~config:Config.Full_opt ~tau:0.999 u1);
  ignore (compile ~config:Config.Full_opt ~effort:Compiler.Fast u1);
  let s = Pipeline.Cache.stats cache in
  (* Embed's fingerprint covers config, tau, effort and N but not the
     unitary entries, so only u2's embed hits; every other combination
     changes some fingerprinted input and misses. *)
  Alcotest.(check int) "only structural hits" 1 s.Pipeline.Cache.hits

(* ------------------------------------------------------------- batch *)

let test_compile_batch_shares_cache () =
  let u1 = Unitary.haar_random (Rng.create 18) 6 in
  let u2 = Unitary.haar_random (Rng.create 19) 6 in
  let cache = Pipeline.Cache.create () in
  let results =
    Compiler.compile_batch ~tau:0.99 ~cache ~rng:(Rng.create 42) ~device:device33
      [ (u1, Config.Full_opt); (u2, Config.Baseline); (u1, Config.Full_opt) ]
  in
  (match results with
   | [ a; b; c ] ->
     check_compiled_eq "duplicate jobs identical" a c;
     Alcotest.(check bool) "distinct jobs distinct" false
       (Plan.to_string a.Compiler.plan = Plan.to_string b.Compiler.plan)
   | _ -> Alcotest.fail "expected three results");
  let s = Pipeline.Cache.stats cache in
  Alcotest.(check int) "third job replays the first" 4 s.Pipeline.Cache.hits

(* ---------------------------------------------------- disabled passes *)

let test_disabled_dropout () =
  let u = Unitary.haar_random (Rng.create 20) 9 in
  let c =
    Compiler.compile ~tau:0.99 ~disabled_passes:[ "dropout" ] ~rng:(Rng.create 42)
      ~device:device33 ~config:Config.Full_opt u
  in
  Alcotest.(check bool) "no policy" true (c.Compiler.policy = None);
  Alcotest.(check (list string)) "trace still lints clean" []
    (List.map (fun d -> d.Diag.code) (Compiler.lint ~unitary:u c))

let test_disabled_map () =
  let u = Unitary.haar_random (Rng.create 21) 9 in
  let c =
    Compiler.compile ~tau:0.99 ~disabled_passes:[ "map" ] ~rng:(Rng.create 42)
      ~device:device33 ~config:Config.Full_opt u
  in
  Alcotest.(check bool) "trivial mapping" true
    (Mat.equal ~tol:0. c.Compiler.mapping.Mapping.permuted u);
  Alcotest.(check (list string)) "trace still lints clean" []
    (List.map (fun d -> d.Diag.code) (Compiler.lint ~unitary:u c))

let test_disabled_validation () =
  let u = Unitary.haar_random (Rng.create 22) 6 in
  let compile disabled () =
    ignore
      (Compiler.compile ~disabled_passes:disabled ~rng:(Rng.create 42) ~device:device33
         ~config:Config.Full_opt u)
  in
  Alcotest.check_raises "unknown pass"
    (Invalid_argument "Pipeline.run: unknown pass fuse")
    (compile [ "fuse" ]);
  Alcotest.check_raises "mandatory pass"
    (Invalid_argument "Pipeline.run: pass decompose is mandatory and cannot be disabled")
    (compile [ "decompose" ])

(* ---------------------------------------------------------- registry *)

let test_registry_shape () =
  Alcotest.(check (list string)) "default order"
    [ "embed"; "map"; "decompose"; "dropout" ]
    (Pipeline.names Pipeline.default);
  let passes = Pipeline.passes Pipeline.default in
  let deps name =
    match Pipeline.find Pipeline.default name with
    | None -> Alcotest.fail ("missing pass " ^ name)
    | Some p -> Pipeline.dep_names passes p
  in
  Alcotest.(check (list string)) "embed deps" [] (deps "embed");
  Alcotest.(check (list string)) "map deps" [ "embed" ] (deps "map");
  Alcotest.(check (list string)) "decompose deps" [ "embed"; "map" ] (deps "decompose");
  Alcotest.(check (list string)) "dropout deps" [ "decompose"; "map" ] (deps "dropout")

let test_registry_validation () =
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Pipeline.make: duplicate pass name embed") (fun () ->
      ignore (Pipeline.make [ Pass.embed; Pass.embed ]));
  Alcotest.check_raises "dependency before producer"
    (Invalid_argument
       "Pipeline.make: pass map depends on an artifact no earlier pass produces")
    (fun () -> ignore (Pipeline.make [ Pass.map ]));
  Alcotest.check_raises "two producers of one artifact"
    (Invalid_argument "Pipeline.make: two passes produce the artifact of embed2")
    (fun () ->
       ignore (Pipeline.make [ Pass.embed; { Pass.embed with Pass.name = "embed2" } ]))

(* ------------------------------------------------------ BH09xx codes *)

let lint_trace trace =
  Lint.run { Lint.empty with Lint.pipeline = Some trace }

let codes ds = List.sort_uniq compare (List.map (fun d -> d.Diag.code) ds)

let full_registry =
  [ ("embed", []); ("map", [ "embed" ]); ("decompose", [ "embed"; "map" ]);
    ("dropout", [ "decompose"; "map" ]) ]

let executed_clean = [ ("embed", false); ("map", false); ("decompose", false); ("dropout", false) ]

let test_bh0901_missing_or_repeated () =
  (* Drop a leaf pass (dropout) so the only violation is the missing
     run — dropping embed would also fire BH0903 downstream. *)
  let missing =
    lint_trace
      {
        Lint.registered = full_registry;
        executed = List.filter (fun (n, _) -> n <> "dropout") executed_clean;
      }
  in
  Alcotest.(check (list string)) "missing pass" [ "BH0901" ] (codes missing);
  let repeated =
    lint_trace
      { Lint.registered = full_registry; executed = ("embed", true) :: executed_clean }
  in
  Alcotest.(check (list string)) "repeated pass" [ "BH0901" ] (codes repeated)

let test_bh0902_unregistered () =
  let ds =
    lint_trace
      { Lint.registered = full_registry; executed = executed_clean @ [ ("fuse", false) ] }
  in
  Alcotest.(check (list string)) "unregistered pass" [ "BH0902" ] (codes ds)

let test_bh0903_out_of_order () =
  let ds =
    lint_trace
      {
        Lint.registered = full_registry;
        executed =
          [ ("map", false); ("embed", false); ("decompose", false); ("dropout", false) ];
      }
  in
  Alcotest.(check (list string)) "map before embed" [ "BH0903" ] (codes ds)

let test_compile_trace_lints_clean () =
  let u = Unitary.haar_random (Rng.create 23) 6 in
  let cache = Pipeline.Cache.create () in
  let cold = compile_cached (Some cache) 42 u in
  let warm = compile_cached (Some cache) 42 u in
  Alcotest.(check (list string)) "cold trace clean" [] (codes (lint_trace cold.Compiler.trace));
  Alcotest.(check (list string)) "warm trace clean" [] (codes (lint_trace warm.Compiler.trace));
  (* A cache hit still counts as the pass having run: the executed
     names match cold byte for byte, only the hit flags differ. *)
  Alcotest.(check (list string)) "same executed passes"
    (List.map fst cold.Compiler.trace.Lint.executed)
    (List.map fst warm.Compiler.trace.Lint.executed);
  Alcotest.(check bool) "warm ran from cache" true
    (List.for_all snd warm.Compiler.trace.Lint.executed)

(* -------------------------------------- irregular coupling + caching *)

let test_irregular_pattern_cold_vs_warm () =
  (* Satellite: compile_with_pattern on a genuinely non-lattice coupling
     graph (odd cycle lengths, a degree-5 hub, no grid structure), cold
     vs cache-hit — plans and policies must be bit-identical and both
     compiles must lint clean. *)
  let n = 10 in
  let coupling =
    Coupling.of_edges ~n
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7); (7, 8); (8, 9);
        (0, 4); (4, 7); (4, 9); (2, 6); (1, 8) ]
  in
  let pattern = Emb.of_coupling_for_program coupling n in
  let u = Unitary.haar_random (Rng.create 24) n in
  let cache = Pipeline.Cache.create () in
  let compile () =
    Compiler.compile_with_pattern ~tau:0.99 ~cache ~rng:(Rng.create 42) ~pattern
      ~config:Config.Full_opt u
  in
  let cold = compile () in
  let warm = compile () in
  Alcotest.(check int) "warm hit every pass" 4 (Pipeline.Cache.stats cache).Pipeline.Cache.hits;
  check_compiled_eq "irregular cold vs warm" cold warm;
  Alcotest.(check bool) "dropout engaged" true (cold.Compiler.policy <> None);
  let lint c = List.map (fun d -> d.Diag.code) (Compiler.lint ~unitary:u c) in
  Alcotest.(check (list string)) "cold lints clean" [] (lint cold);
  Alcotest.(check (list string)) "warm lints clean" [] (lint warm)

(* ---------------------------------------------------- hardware targets *)

module Target = Bose_hardware.Target

let compile_target ?cache ?(effort = Compiler.Standard) target u =
  Compiler.compile_for_target ?cache ~effort ~tau:0.99 ~rng:(Rng.create 42) ~target
    ~config:Config.Full_opt u

let test_target_zigzag_bit_exact () =
  (* --target zigzag IS today's device path: same lattice, same pass
     bodies, same RNG draw order — artifacts bit-identical to a plain
     compile on the equivalent device. *)
  List.iter
    (fun n ->
       let u = Unitary.haar_random (Rng.create (30 + n)) n in
       let device = Option.get (Target.device Target.zigzag n) in
       let via_target = compile_target Target.zigzag u in
       let via_device =
         Compiler.compile ~tau:0.99 ~rng:(Rng.create 42) ~device ~config:Config.Full_opt u
       in
       check_compiled_eq (Printf.sprintf "zigzag n=%d" n) via_target via_device)
    [ 6; 9; 12 ]

let test_target_cache_keys_discriminate () =
  (* The target name is folded into every pass fingerprint: the same
     unitary compiled with and without --target zigzag (identical
     device, config, tau, effort) must occupy distinct cache entries,
     and distinct targets never share entries. *)
  let u = Unitary.haar_random (Rng.create 33) 9 in
  let cache = Pipeline.Cache.create () in
  ignore
    (Compiler.compile ~cache ~tau:0.99 ~rng:(Rng.create 42) ~device:device33
       ~config:Config.Full_opt u);
  let s = Pipeline.Cache.stats cache in
  Alcotest.(check int) "plain compile: all misses" 0 s.Pipeline.Cache.hits;
  ignore (compile_target ~cache Target.zigzag u);
  let s = Pipeline.Cache.stats cache in
  Alcotest.(check int) "same job + target: still no hits" 0 s.Pipeline.Cache.hits;
  ignore (compile_target ~cache Target.orca_shallow u);
  let s = Pipeline.Cache.stats cache in
  Alcotest.(check int) "different target: still no hits" 0 s.Pipeline.Cache.hits;
  (* Re-running each keyed job replays it fully from cache. *)
  ignore (compile_target ~cache Target.zigzag u);
  let s = Pipeline.Cache.stats cache in
  Alcotest.(check int) "zigzag rerun: full hit" 4 s.Pipeline.Cache.hits;
  ignore (compile_target ~cache Target.orca_shallow u);
  let s = Pipeline.Cache.stats cache in
  Alcotest.(check int) "orca rerun: full hit" 8 s.Pipeline.Cache.hits;
  (* And the replayed artifacts are the right ones per key. *)
  let a = compile_target ~cache Target.zigzag u in
  let b = compile_target ~cache Target.orca_shallow u in
  Alcotest.(check bool) "distinct targets, distinct plans" false
    (Plan.to_string a.Compiler.plan = Plan.to_string b.Compiler.plan)

let test_graph_targets_compile_clean () =
  (* ISSUE acceptance: timebin-loop and orca-shallow compile N = 8..32
     with zero lint diagnostics (depth ceilings included, via the
     backend the target derives). Standard effort at N=8, Fast above to
     keep the suite quick — same ladder the CLI smoke uses. *)
  List.iter
    (fun (target : Target.t) ->
       List.iter
         (fun (n, effort) ->
            let u = Unitary.haar_random (Rng.create (40 + n)) n in
            let c = compile_target ~effort target u in
            Alcotest.(check (list string))
              (Printf.sprintf "%s n=%d clean" target.Target.name n)
              []
              (List.map (fun d -> d.Diag.code) (Compiler.lint ~unitary:u c));
            Alcotest.(check bool)
              (Printf.sprintf "%s n=%d within ceiling" target.Target.name n)
              true
              (match target.Target.max_depth n with
               | None -> true
               | Some limit ->
                 (Compiler.analyze c).Bose_flow.Flow.layers.Bose_flow.Flow.depth <= limit))
         [ (8, Compiler.Standard); (16, Compiler.Fast); (32, Compiler.Fast) ])
    [ Target.timebin_loop; Target.orca_shallow ]

let () =
  Alcotest.run "pipeline"
    [
      ( "bit-exact",
        [
          Alcotest.test_case "pipeline vs legacy monolith" `Quick test_bit_exact_vs_legacy;
          Alcotest.test_case "plan binary codec bit-exact" `Quick
            test_plan_binary_roundtrip_bit_exact;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit replays bit-identical" `Quick test_cache_hit_bit_identical;
          Alcotest.test_case "hit/miss gauges" `Quick test_cache_gauges;
          Alcotest.test_case "uncached equals cached-cold" `Quick
            test_cache_uncached_compile_untouched;
          Alcotest.test_case "capacity, eviction, clear" `Quick
            test_cache_capacity_and_eviction;
          Alcotest.test_case "keys discriminate inputs" `Quick test_cache_keys_discriminate;
        ] );
      ( "batch",
        [ Alcotest.test_case "shared cache across jobs" `Quick test_compile_batch_shares_cache ] );
      ( "disable",
        [
          Alcotest.test_case "dropout disabled" `Quick test_disabled_dropout;
          Alcotest.test_case "map disabled" `Quick test_disabled_map;
          Alcotest.test_case "validation" `Quick test_disabled_validation;
        ] );
      ( "registry",
        [
          Alcotest.test_case "default shape" `Quick test_registry_shape;
          Alcotest.test_case "make validation" `Quick test_registry_validation;
        ] );
      ( "lint",
        [
          Alcotest.test_case "BH0901 missing/repeated" `Quick test_bh0901_missing_or_repeated;
          Alcotest.test_case "BH0902 unregistered" `Quick test_bh0902_unregistered;
          Alcotest.test_case "BH0903 out of order" `Quick test_bh0903_out_of_order;
          Alcotest.test_case "compile traces lint clean" `Quick
            test_compile_trace_lints_clean;
        ] );
      ( "irregular",
        [
          Alcotest.test_case "non-lattice coupling, cold vs warm" `Quick
            test_irregular_pattern_cold_vs_warm;
        ] );
      ( "target",
        [
          Alcotest.test_case "zigzag bit-exact vs device" `Quick
            test_target_zigzag_bit_exact;
          Alcotest.test_case "cache keys discriminate targets" `Quick
            test_target_cache_keys_discriminate;
          Alcotest.test_case "graph targets compile clean N=8..32" `Quick
            test_graph_targets_compile_clean;
        ] );
    ]
