(* bosec — command-line front end for the Bosehedral compiler.

   Subcommands:
     compile    compile an interferometer and print the plan summary
     check      statically verify serialized artifacts (lint engine)
     analyze    dataflow analysis of a plan: depth, fronts, liveness,
                coupling feasibility, fidelity/loss budgets (JSON)
     simulate   compile + execute on the noisy simulator, report JSD
     sample     draw GBS samples from a squeezed-light interferometer
     layouts    compare square / triangular / hexagonal couplings
     targets    list the registered hardware targets (docs/TARGETS.md)
     serve      long-running compile/sample service (docs/SERVING.md)

   Every subcommand accepts --metrics-out FILE (write the telemetry
   report as JSON, schema in docs/METRICS.md) and --trace (stream span
   closures to stderr as passes finish). `check` and `analyze` exit 1
   when any error-severity diagnostic fires (codes in
   docs/DIAGNOSTICS.md). *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Dist = Bose_util.Dist
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Coupling = Bose_hardware.Coupling
module Target = Bose_hardware.Target
module Emb = Bose_hardware.Embedding
module Pattern = Bose_hardware.Pattern
module Plan = Bose_decomp.Plan
module Noise = Bose_circuit.Noise
module Obs = Bose_obs.Obs
module Lint = Bose_lint.Lint
module Diag = Bose_lint.Diag
module Pool = Bose_par.Pool
module Gaussian = Bose_gbs.Gaussian
module Sampler = Bose_gbs.Sampler
module Fock = Bose_gbs.Fock
open Bosehedral

(* Run [f] under the telemetry switch implied by --metrics-out/--trace:
   spans/counters enabled, wall-clock span times, live stderr trace on
   --trace, and a JSON report written afterwards when requested. *)
let with_obs ~metrics_out ~trace f =
  let active = metrics_out <> None || trace in
  if active then begin
    Obs.set_clock Unix.gettimeofday;
    Obs.reset ();
    Obs.enable ();
    if trace then
      Obs.on_span_close :=
        Some
          (fun ~name ~depth ~elapsed_s ->
             Printf.eprintf "[trace] %s%-30s %.6fs\n%!"
               (String.make (2 * depth) ' ')
               name elapsed_s)
  end;
  f ();
  if active then begin
    let report = Obs.Report.capture () in
    (match metrics_out with
     | Some path ->
       (try
          Obs.Report.write_file path report;
          Printf.printf "metrics: %s\n" path
        with Sys_error msg ->
          Printf.eprintf "bosec: cannot write metrics file: %s\n" msg;
          exit 1)
     | None -> Format.printf "@.%a@." Obs.Report.pp report);
    Obs.on_span_close := None;
    Obs.disable ()
  end

let make_unitary rng ~modes ~graph_p =
  match graph_p with
  | None -> Unitary.haar_random rng modes
  | Some p ->
    let g = Bose_apps.Graph.random rng ~n:modes ~p in
    Bose_apps.Encoding.unitary_of g

(* `bosec compile --list-passes`: the compiler's pass registry, one
   entry per registered pass with its telemetry span, dependencies and
   one-line doc. *)
let print_pipeline () =
  let passes = Pipeline.passes Pipeline.default in
  List.iter
    (fun (p : Pass.t) ->
       let deps =
         match Pipeline.dep_names passes p with
         | [] -> "-"
         | names -> String.concat ", " names
       in
       Printf.printf "%-10s span %-18s after %-16s %s%s\n" p.Pass.name p.Pass.span deps
         p.Pass.doc
         (if Pass.can_skip p then "" else " [mandatory]"))
    passes

(* `bosec compile --batch K --jobs N`: compile K seed-varied programs
   as one batch, sharded over N domains. Per-job RNG streams are keyed
   by job content, so the summaries are identical at every N. *)
let run_batch_compile ~rows ~cols ~modes ~seed ~config ~tau ~graph_p ~effort ~jobs ~batch
    ~cache_stats ~metrics_out ~trace =
  let device = Lattice.create ~rows ~cols in
  let modes = match modes with Some n -> n | None -> Lattice.size device in
  if modes > Lattice.size device then begin
    Printf.eprintf "error: %d qumodes do not fit on a %dx%d device\n" modes rows cols;
    exit 1
  end;
  let job_list =
    List.init batch (fun k ->
        (make_unitary (Rng.create (seed + 1 + k)) ~modes ~graph_p, config))
  in
  let cache = if cache_stats then Some (Pipeline.Cache.create ()) else None in
  with_obs ~metrics_out ~trace @@ fun () ->
  let results =
    Compiler.compile_batch ~effort ~tau ?cache ~jobs ~rng:(Rng.create seed) ~device
      job_list
  in
  List.iteri
    (fun i c -> Format.printf "[job %d] %a@." i Compiler.pp_summary c)
    results;
  (match cache with
   | None -> ()
   | Some c -> Format.printf "cache: %a@." Pipeline.Cache.pp c)

let run_compile rows cols modes target seed config tau graph_p effort jobs batch verbose
    plan_out unitary_out list_passes disable_passes cache_stats metrics_out trace =
  if list_passes then begin
    print_pipeline ();
    exit 0
  end;
  if jobs < 1 then begin
    Printf.eprintf "bosec compile: --jobs must be >= 1\n";
    exit 2
  end;
  if batch < 0 then begin
    Printf.eprintf "bosec compile: --batch must be >= 0\n";
    exit 2
  end;
  if Option.is_some target && batch > 0 then begin
    Printf.eprintf "bosec compile: --target is not supported with --batch\n";
    exit 2
  end;
  if batch > 0 then begin
    run_batch_compile ~rows ~cols ~modes ~seed ~config ~tau ~graph_p ~effort ~jobs ~batch
      ~cache_stats ~metrics_out ~trace;
    exit 0
  end;
  List.iter
    (fun name ->
       match Pipeline.find Pipeline.default name with
       | None ->
         Printf.eprintf "bosec compile: unknown pass %s (see --list-passes)\n" name;
         exit 2
       | Some p ->
         if not (Pass.can_skip p) then begin
           Printf.eprintf "bosec compile: pass %s is mandatory and cannot be disabled\n"
             name;
           exit 2
         end)
    disable_passes;
  let rng = Rng.create seed in
  let device = Lattice.create ~rows ~cols in
  (* With --target the target sizes its own device; a 16-qumode default
     keeps the quickstart fast. Without it, the program fills the
     --rows x --cols device as before. *)
  let modes =
    match (modes, target) with
    | Some n, _ -> n
    | None, Some _ -> 16
    | None, None -> Lattice.size device
  in
  if Option.is_none target && modes > Lattice.size device then begin
    Printf.eprintf "error: %d qumodes do not fit on a %dx%d device\n" modes rows cols;
    exit 1
  end;
  let cache = if cache_stats then Some (Pipeline.Cache.create ()) else None in
  with_obs ~metrics_out ~trace @@ fun () ->
  let u = make_unitary rng ~modes ~graph_p in
  (* --jobs on a single compile: intra-compile parallelism. The pool
     only chunks the fused sweep engine's bulk passes, so the compiled
     artifacts are bit-identical at every jobs value. *)
  let with_pool f =
    if jobs > 1 then Pool.with_pool ~domains:jobs (fun p -> f (Some p)) else f None
  in
  let compiled =
    with_pool (fun pool ->
        match target with
        | Some target ->
          Compiler.compile_for_target ~effort ~tau ?cache ~disabled_passes:disable_passes
            ?pool ~rng ~target ~config u
        | None ->
          Compiler.compile ~effort ~tau ?cache ~disabled_passes:disable_passes ?pool ~rng
            ~device ~config u)
  in
  (match target with
   | Some (t : Target.t) -> Format.printf "target: %s@." t.Target.name
   | None -> ());
  (match cache with
   | None -> ()
   | Some c -> Format.printf "cache: %a@." Pipeline.Cache.pp c);
  Format.printf "%a@." Compiler.pp_summary compiled;
  Format.printf "small rotations (θ < 0.1): %d of %d@."
    (Compiler.small_angles compiled ~threshold:0.1)
    (Plan.rotation_count compiled.Compiler.plan);
  (match compiled.Compiler.policy with
   | None -> Format.printf "dropout: disabled@."
   | Some p ->
     Format.printf "dropout: |Θ| = %.4f, M = %d, K = %d, τ_K = %.6f@."
       p.Bose_dropout.Dropout.theta_cut p.Bose_dropout.Dropout.kept_count
       p.Bose_dropout.Dropout.power p.Bose_dropout.Dropout.expected_fidelity);
  (* Full static verification against the program unitary, not just
     the yes/no shim — warnings and all (docs/DIAGNOSTICS.md). *)
  (match Compiler.lint ~unitary:u compiled with
   | [] -> Format.printf "self-check: ok (0 diagnostics)@."
   | diags -> Format.printf "self-check:@.%a@." Diag.pp_list diags);
  (match plan_out with
   | None -> ()
   | Some path ->
     (try
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
            Plan.save oc compiled.Compiler.plan);
        Format.printf "plan: %s@." path
      with Sys_error msg ->
        Printf.eprintf "bosec: cannot write plan file: %s\n" msg;
        exit 1));
  (match unitary_out with
   | None -> ()
   | Some path ->
     (try
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
            Unitary.save oc compiled.Compiler.mapping.Bose_mapping.Mapping.permuted);
        Format.printf "unitary: %s@." path
      with Sys_error msg ->
        Printf.eprintf "bosec: cannot write unitary file: %s\n" msg;
        exit 1));
  if verbose then begin
    Format.printf "@.pattern:@.%a@." Pattern.pp compiled.Compiler.pattern;
    Format.printf "plan:@.%a@." Plan.pp compiled.Compiler.plan
  end

(* Every code the lint engine can emit: the per-pass registries plus
   the engine's own codes (BH0001 suppression notes, BH08xx loader
   diagnostics) that belong to no pass. *)
let known_codes =
  "BH0001" :: "BH0801" :: "BH0802"
  :: List.concat_map (fun p -> p.Lint.codes) Lint.passes

(* An unknown --disable entry used to pass silently — a typo like
   BH4042 would "work" while suppressing nothing. Warn (on stderr, exit
   unchanged: suppressing nothing is not an artifact defect). *)
let warn_unknown_disables cmd disable =
  List.iter
    (fun code ->
       if not (List.mem code known_codes) then
         Printf.eprintf
           "bosec %s: warning: --disable %s matches no known diagnostic code (see \
            bosec check --list-passes)\n%!"
           cmd code)
    disable

(* `bosec check`: the lint engine over serialized artifacts. Artifacts
   that fail to parse become BH08xx diagnostics rather than exceptions;
   the exit code is 1 iff any error-severity diagnostic fired. *)
let run_check plan_file unitary_file cache_dir target_name compiled_for seed tau
    min_fidelity json werror disable list_passes metrics_out trace =
  if list_passes then begin
    List.iter
      (fun p ->
         Printf.printf "%-10s %s\n           codes: %s\n" p.Lint.name p.Lint.doc
           (String.concat " " p.Lint.codes))
      Lint.passes;
    exit 0
  end;
  if plan_file = None && unitary_file = None && cache_dir = None && target_name = None
  then begin
    Printf.eprintf
      "bosec check: nothing to check (use --plan, --unitary, --cache-dir and/or \
       --target)\n";
    exit 2
  end;
  warn_unknown_disables "check" disable;
  let had_errors = ref false in
  with_obs ~metrics_out ~trace (fun () ->
      let load_diags = ref [] in
      let plan =
        match plan_file with
        | None -> None
        | Some path ->
          (match Lint.load_plan path with
           | Ok p -> Some p
           | Error d ->
             load_diags := d :: !load_diags;
             None)
      in
      let unitary =
        match unitary_file with
        | None -> None
        | Some path ->
          (match Lint.load_unitary path with
           | Ok u -> Some u
           | Error d ->
             load_diags := d :: !load_diags;
             None)
      in
      (* With --tau, rebuild the §VI dropout policy for the plan (over
         the provided unitary when dimensions agree, else the plan's own
         replay) and lint it; --min-fidelity raises the bar BH0503
         enforces above the policy's construction τ. *)
      let policy =
        match (tau, plan) with
        | Some tau, Some plan ->
          let reference =
            match unitary with
            | Some u when Mat.dims u = (plan.Plan.modes, plan.Plan.modes) -> u
            | Some _ | None -> Plan.reconstruct plan
          in
          Some (Bose_dropout.Dropout.make_policy (Rng.create seed) plan reference ~tau)
        | _ -> None
      in
      let subject =
        {
          Lint.empty with
          Lint.plan;
          unitary;
          reference =
            (match (plan, unitary) with
             | Some p, Some u when Mat.dims u = (p.Plan.modes, p.Plan.modes) -> unitary
             | _ -> None);
          policy;
          min_fidelity;
          cache_dir;
          (* No flow backend here, so the target pass owns the depth
             ceiling (BH1303); `bosec analyze --target` attaches the
             target-derived backend and gates depth as BH1102 instead. *)
          target_name;
          compiled_target = compiled_for;
        }
      in
      let settings = { Lint.default_settings with Lint.disabled_codes = disable; werror } in
      let diags = List.rev !load_diags @ Lint.run ~settings subject in
      if json then print_endline (Diag.to_json diags)
      else Format.printf "%a@." Diag.pp_list diags;
      had_errors := List.exists Diag.is_error diags);
  if !had_errors then exit 1

(* `bosec analyze`: dataflow analysis (lib/flow) of a serialized plan —
   ASAP depth and commuting fronts, per-mode liveness, sound
   fidelity/loss budget intervals, and (with --coupling) feasibility
   against a hardware coupling graph. Prints the JSON report, then the
   BH11xx-and-friends diagnostics; exits 1 iff any error fired, with
   --werror promoting warnings, mirroring `bosec check`. *)
let run_analyze plan_file unitary_file seed tau coupling_kind rows cols target
    routing_budget max_depth loss min_transmission json werror disable metrics_out trace
    =
  (match plan_file with
   | Some _ -> ()
   | None ->
     Printf.eprintf "bosec analyze: nothing to analyze (use --plan)\n";
     exit 2);
  if Option.is_some target && Option.is_some coupling_kind then begin
    Printf.eprintf
      "bosec analyze: --target and --coupling are mutually exclusive (the target \
       brings its own coupling graph)\n";
    exit 2
  end;
  warn_unknown_disables "analyze" disable;
  let coupling =
    match coupling_kind with
    | None -> None
    | Some kind ->
      (match Coupling.of_kind_string ~rows ~cols kind with
       | Ok c -> Some c
       | Error msg ->
         Printf.eprintf "bosec analyze: %s\n" msg;
         exit 2)
  in
  (* The manual backend knobs are usable immediately; a target backend
     needs the plan's mode count, so it is derived after the plan
     loads. *)
  let backend_for plan =
    match ((target : Target.t option), plan) with
    | Some t, Some p -> Bose_flow.Flow.backend_of_target ~n:p.Plan.modes t
    | Some _, None -> Bose_flow.Flow.backend ()
    | None, _ ->
      let noise = if loss > 0. then Noise.uniform loss else Noise.ideal in
      Bose_flow.Flow.backend ?coupling ~routing_budget ?max_depth ~noise
        ~min_transmission ()
  in
  let had_errors = ref false in
  with_obs ~metrics_out ~trace (fun () ->
      let load_diags = ref [] in
      let plan =
        match plan_file with
        | None -> None
        | Some path ->
          (match Lint.load_plan path with
           | Ok p -> Some p
           | Error d ->
             load_diags := d :: !load_diags;
             None)
      in
      let unitary =
        match unitary_file with
        | None -> None
        | Some path ->
          (match Lint.load_unitary path with
           | Ok u -> Some u
           | Error d ->
             load_diags := d :: !load_diags;
             None)
      in
      (* Same policy reconstruction as `bosec check --tau`: the report
         and the BH11xx pass then analyze under the policy's
         deterministic hard mask — what a shot actually keeps. *)
      let policy =
        match (tau, plan) with
        | Some tau, Some plan ->
          let reference =
            match unitary with
            | Some u when Mat.dims u = (plan.Plan.modes, plan.Plan.modes) -> u
            | Some _ | None -> Plan.reconstruct plan
          in
          Some (Bose_dropout.Dropout.make_policy (Rng.create seed) plan reference ~tau)
        | _ -> None
      in
      let backend = backend_for plan in
      let report =
        match plan with
        | None -> None
        | Some p ->
          let kept =
            Option.map (fun pol -> Bose_dropout.Dropout.hard_kept pol p) policy
          in
          Some (Bose_flow.Flow.analyze ?kept ~backend p)
      in
      let subject =
        {
          Lint.empty with
          Lint.plan;
          unitary;
          reference =
            (match (plan, unitary) with
             | Some p, Some u when Mat.dims u = (p.Plan.modes, p.Plan.modes) -> unitary
             | _ -> None);
          policy;
          backend = Some backend;
          target_name = Option.map (fun (t : Target.t) -> t.Target.name) target;
        }
      in
      let settings = { Lint.default_settings with Lint.disabled_codes = disable; werror } in
      let diags = List.rev !load_diags @ Lint.run ~settings subject in
      (match (json, report) with
       | true, _ ->
         Printf.printf {|{"report":%s,"diagnostics":%s}|}
           (match report with
            | Some r -> Bose_flow.Flow.report_to_json r
            | None -> "null")
           (Diag.to_json diags);
         print_newline ()
       | false, Some r ->
         print_endline (Bose_flow.Flow.report_to_json r);
         Format.printf "%a@.%a@." Bose_flow.Flow.pp_report r Diag.pp_list diags
       | false, None -> Format.printf "%a@." Diag.pp_list diags);
      had_errors := List.exists Diag.is_error diags);
  if !had_errors then exit 1

let run_simulate rows cols modes seed tau graph_p loss cutoff metrics_out trace =
  let rng = Rng.create seed in
  let device = Lattice.create ~rows ~cols in
  let modes = match modes with Some n -> n | None -> min 8 (Lattice.size device) in
  if modes > 10 then begin
    Printf.eprintf "error: exact simulation is limited to 10 qumodes\n";
    exit 1
  end;
  with_obs ~metrics_out ~trace @@ fun () ->
  let u = make_unitary rng ~modes ~graph_p in
  let program =
    Runner.pure_program ~squeezing:(Array.make modes (Cx.re 0.35)) ~unitary:u ()
  in
  let ideal = Runner.ideal_distribution ~max_photons:cutoff program in
  Format.printf "%d qumodes on %a, loss %.3f, tau %.4f@." modes Lattice.pp device loss tau;
  List.iter
    (fun config ->
       let compiled = Compiler.compile ~rng ~device ~config ~tau u in
       let noisy =
         Runner.noisy_distribution ~realizations:8 ~rng ~noise:(Noise.uniform loss)
           ~max_photons:cutoff compiled program
       in
       Format.printf "%-11s JSD vs ideal = %.5f  (BS kept %d/%d)@." (Config.name config)
         (Dist.jsd ideal noisy) (Compiler.beamsplitters_kept compiled)
         (Plan.rotation_count compiled.Compiler.plan))
    Config.all

(* `bosec sample`: draw GBS Fock samples from a squeezed-light state
   through a Haar-random (or graph-encoded) interferometer. Shots fan
   out over pre-split per-chain RNG streams, so the sample list is
   bit-identical at every --jobs value. *)
let run_sample modes target seed shots jobs chains squeezing max_photons use_chain_rule
    graph_p metrics_out trace =
  if jobs < 1 then begin
    Printf.eprintf "bosec sample: --jobs must be >= 1\n";
    exit 2
  end;
  if modes < 1 || modes > 10 then begin
    Printf.eprintf "bosec sample: --modes must be in 1..10 (exact Gaussian simulation)\n";
    exit 2
  end;
  with_obs ~metrics_out ~trace @@ fun () ->
  let rng = Rng.create seed in
  let u = make_unitary (Rng.create (seed + 1)) ~modes ~graph_p in
  (* With --target, sample the interferometer the hardware would
     actually run: compile for the target and push the approximate
     unitary (dropout's deterministic hard mask applied) through the
     Gaussian simulation instead of the exact program unitary. *)
  let u =
    match target with
    | None -> u
    | Some target ->
      let c =
        Compiler.compile_for_target ~rng:(Rng.create (seed + 2)) ~target
          ~config:Config.Full_opt u
      in
      let kept =
        Option.map
          (fun p -> Bose_dropout.Dropout.hard_kept p c.Compiler.plan)
          c.Compiler.policy
      in
      Format.printf "target %s: sampling the compiled approximation (%d of %d rotations kept)@."
        target.Target.name
        (Compiler.beamsplitters_kept c)
        (Plan.rotation_count c.Compiler.plan);
      Compiler.approx_unitary ?kept c
  in
  let state = Gaussian.vacuum modes in
  for i = 0 to modes - 1 do
    Gaussian.squeeze state i (Cx.re squeezing)
  done;
  Gaussian.interferometer state u;
  let with_pool f =
    if jobs > 1 then Pool.with_pool ~domains:jobs (fun p -> f (Some p)) else f None
  in
  let samples =
    with_pool (fun pool ->
        if use_chain_rule then Sampler.chain_rule_chains ~chains ?pool rng state shots
        else begin
          let s = Sampler.of_state ~max_photons state in
          Format.printf "truncation tail mass: %.6f@." (Sampler.tail_mass s);
          Sampler.draw_chains ~chains ?pool rng s shots
        end)
  in
  Format.printf "%d modes, %d shots over %d chains, jobs %d (%s)@." modes shots chains
    jobs
    (if use_chain_rule then "chain-rule" else "exact distribution");
  let dist = Dist.of_samples samples in
  let by_mass =
    List.sort
      (fun (_, p) (_, q) -> compare (q : float) p)
      (Dist.to_list dist)
  in
  List.iteri
    (fun i (pattern, p) ->
       if i < 8 then
         Format.printf "  %-24s %.4f@."
           (if pattern = Fock.tail then "(tail)"
            else "[" ^ String.concat "; " (List.map string_of_int pattern) ^ "]")
           p)
    by_mass;
  let mean =
    List.fold_left
      (fun acc s -> if s = Fock.tail then acc else acc + List.fold_left ( + ) 0 s)
      0 samples
  in
  Format.printf "mean photons per shot: %.3f@."
    (float_of_int mean /. float_of_int (max 1 shots))

(* `bosec serve`: the long-running compile/sample service. Wire
   protocol and on-disk cache layout are documented in docs/SERVING.md;
   without --socket the server speaks the same protocol on
   stdin/stdout (one JSON request per line, one reply per line). *)
let run_serve socket cache_dir max_cache_mb jobs metrics_out trace =
  if jobs < 1 then begin
    Printf.eprintf "bosec serve: --jobs must be >= 1\n";
    exit 2
  end;
  if max_cache_mb < 1 then begin
    Printf.eprintf "bosec serve: --max-cache-mb must be >= 1\n";
    exit 2
  end;
  with_obs ~metrics_out ~trace @@ fun () ->
  let state = Bose_serve.Serve.create ~jobs ?cache_dir ~max_cache_mb () in
  match socket with
  | Some path ->
    Printf.eprintf "bosec serve: listening on %s\n%!" path;
    Bose_serve.Serve.serve_socket state ~path
  | None -> Bose_serve.Serve.serve_channels state stdin stdout

let run_layouts rows cols modes seed tau metrics_out trace =
  let rng = Rng.create seed in
  with_obs ~metrics_out ~trace @@ fun () ->
  let layouts =
    List.map
      (fun kind ->
         match Coupling.of_kind_string ~rows ~cols kind with
         | Ok c -> (kind, c)
         | Error msg ->
           (* kind_names is the parser's own vocabulary, so this is
              unreachable; fail loudly rather than silently skipping. *)
           Printf.eprintf "bosec layouts: %s\n" msg;
           exit 2)
      Coupling.kind_names
  in
  let modes = match modes with Some n -> n | None -> rows * cols in
  let u = Unitary.haar_random rng modes in
  Format.printf "%-12s %8s %10s %12s %14s@." "layout" "max deg" "main path" "BS dropped"
    "small (θ<0.1)";
  List.iter
    (fun (name, coupling) ->
       let pattern = Emb.of_coupling_for_program coupling modes in
       let compiled =
         Compiler.compile_with_pattern ~rng ~pattern ~config:Config.Full_opt ~tau u
       in
       Format.printf "%-12s %8d %10d %11.1f%% %14d@." name
         (Coupling.max_degree coupling)
         (List.length (Pattern.main_path_labels pattern))
         (100. *. Compiler.beamsplitter_reduction compiled)
         (Compiler.small_angles compiled ~threshold:0.1))
    layouts

(* `bosec targets`: the hardware-target registry (docs/TARGETS.md). One
   line per target: name, topology class, routing budget, the depth
   ceiling evaluated at a 32-mode reference program, and the doc. *)
let run_targets () =
  List.iter
    (fun (t : Target.t) ->
       let topology =
         match t.Target.topology with Target.Grid _ -> "grid" | Target.Graph _ -> "graph"
       in
       let depth =
         match t.Target.max_depth 32 with
         | None -> "unlimited"
         | Some d -> Printf.sprintf "%d @ n=32" d
       in
       Printf.printf "%-14s %-6s routing %-2d depth %-11s %s\n" t.Target.name topology
         t.Target.routing_budget depth t.Target.doc)
    (Target.all ())

open Cmdliner

let rows =
  Arg.(value
       & opt int 6
       & info [ "rows" ]
           ~doc:"Device rows. Legacy spelling of the hardware description: prefer \
                 $(b,--target), which sizes its own device; with it this flag is \
                 ignored.")

let cols =
  Arg.(value
       & opt int 6
       & info [ "cols" ]
           ~doc:"Device columns. Legacy spelling of the hardware description: prefer \
                 $(b,--target), which sizes its own device; with it this flag is \
                 ignored.")

(* --target NAME, resolved against the registry at parse time. The
   check subcommand deliberately takes the raw string instead, so an
   unknown name reaches the lint engine as BH1301. *)
let target_conv =
  let parse s =
    match Target.find s with
    | Some t -> Ok t
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown target %s (registered: %s)" s
              (String.concat " | " (Target.names ()))))
  in
  let print fmt (t : Target.t) = Format.pp_print_string fmt t.Target.name in
  Arg.conv (parse, print)

let target_arg ~doc = Arg.(value & opt (some target_conv) None & info [ "target" ] ~docv:"NAME" ~doc)

let modes =
  Arg.(value
       & opt (some int) None
       & info [ "n"; "modes" ] ~doc:"Program qumodes (default: whole device).")

let seed = Arg.(value & opt int 2024 & info [ "seed" ] ~doc:"Random seed.")

let config =
  let parse s =
    match Config.of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg "expected baseline | rot-cut | decomp-opt | full-opt")
  in
  let print fmt c = Format.pp_print_string fmt (Config.name c) in
  Arg.(value
       & opt (conv (parse, print)) Config.Full_opt
       & info [ "c"; "config" ] ~doc:"Configuration: baseline, rot-cut, decomp-opt, full-opt.")

let tau =
  Arg.(value & opt float 0.999 & info [ "tau" ] ~doc:"Unitary approximation accuracy threshold.")

let graph_p =
  Arg.(value
       & opt (some float) None
       & info [ "graph" ]
           ~doc:"Compile a random-graph GBS encoding with this edge probability instead of a Haar-random unitary.")

let effort =
  let parse = function
    | "fast" -> Ok Compiler.Fast
    | "standard" -> Ok Compiler.Standard
    | _ -> Error (`Msg "expected fast | standard")
  in
  let print fmt = function
    | Compiler.Fast -> Format.pp_print_string fmt "fast"
    | Compiler.Standard -> Format.pp_print_string fmt "standard"
  in
  Arg.(value
       & opt (conv (parse, print)) Compiler.Standard
       & info [ "effort" ] ~doc:"Search effort: fast or standard.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the pattern and full plan.")

let plan_out =
  Arg.(value
       & opt (some string) None
       & info [ "plan-out" ] ~docv:"FILE"
           ~doc:"Write the compiled plan to $(docv) (text format, loadable by \
                 $(b,bosec check --plan)).")

let unitary_out =
  Arg.(value
       & opt (some string) None
       & info [ "unitary-out" ] ~docv:"FILE"
           ~doc:"Write the permuted unitary — the plan's replay reference — to $(docv) \
                 (loadable by $(b,bosec check --unitary)).")

let list_compile_passes =
  Arg.(value
       & flag
       & info [ "list-passes" ]
           ~doc:"List the registered compiler passes (name, telemetry span, \
                 dependencies) and exit.")

let disable_passes =
  Arg.(value
       & opt (list string) []
       & info [ "disable-pass" ] ~docv:"NAMES"
           ~doc:"Comma-separated pass names to skip; each skipped pass stores its \
                 neutral artifact (e.g. $(b,dropout) compiles with no dropout policy). \
                 Mandatory passes cannot be disabled.")

let cache_stats =
  Arg.(value
       & flag
       & info [ "cache-stats" ]
           ~doc:"Compile through a fresh artifact cache and print its hit/miss/entry \
                 statistics.")

let metrics_out =
  Arg.(value
       & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Enable telemetry and write the per-run report as JSON to $(docv) \
                 (schema documented in docs/METRICS.md).")

let trace =
  Arg.(value
       & flag
       & info [ "trace" ]
           ~doc:"Enable telemetry and stream span timings to stderr as passes \
                 finish; without $(b,--metrics-out) the report table is printed \
                 on exit.")
let loss = Arg.(value & opt float 0.05 & info [ "loss" ] ~doc:"Per-beamsplitter photon loss rate.")
let cutoff = Arg.(value & opt int 5 & info [ "cutoff" ] ~doc:"Photon-number truncation.")

let jobs =
  Arg.(value
       & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Parallel domains (including the calling one). Output is bit-identical \
                 at every $(docv) for a fixed seed; only wall-clock time changes.")

let batch =
  Arg.(value
       & opt int 0
       & info [ "batch" ] ~docv:"K"
           ~doc:"Compile $(docv) seed-varied programs as one batch (sharded across \
                 $(b,--jobs) domains) instead of a single program.")

let compile_target =
  target_arg
    ~doc:
      "Compile for a registered hardware target (see $(b,bosec targets)). The target \
       supplies the coupling graph, embedding, routing budget, depth ceiling and \
       noise model; $(b,--rows)/$(b,--cols) are ignored and $(b,--modes) defaults \
       to 16. Not supported with $(b,--batch)."

let compile_term =
  Term.(
    const (fun rows cols modes target seed config tau graph_p effort jobs batch verbose
             plan_out unitary_out list_passes disable_passes cache_stats metrics_out
             trace ->
        run_compile rows cols modes target seed config tau graph_p effort jobs batch
          verbose plan_out unitary_out list_passes disable_passes cache_stats
          metrics_out trace)
    $ rows $ cols $ modes $ compile_target $ seed $ config $ tau $ graph_p $ effort
    $ jobs $ batch $ verbose $ plan_out $ unitary_out $ list_compile_passes
    $ disable_passes $ cache_stats $ metrics_out $ trace)

let compile_cmd =
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile an interferometer and print the plan summary")
    compile_term

let check_cmd =
  let plan_file =
    Arg.(value
         & opt (some string) None
         & info [ "plan" ] ~docv:"FILE" ~doc:"Plan file to verify (written by \
                                              $(b,--plan-out)).")
  in
  let unitary_file =
    Arg.(value
         & opt (some string) None
         & info [ "unitary" ] ~docv:"FILE"
             ~doc:"Unitary file to verify (Unitary.save format). With $(b,--plan), also \
                   used as the plan's replay reference.")
  in
  let cache_dir =
    Arg.(value
         & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Audit a $(b,bosec serve) disk-cache directory (read-only): index \
                   integrity, object framing, orphans (BH12xx).")
  in
  let check_tau =
    Arg.(value
         & opt (some float) None
         & info [ "tau" ]
             ~doc:"Rebuild the dropout policy for the plan at this accuracy threshold and \
                   lint it.")
  in
  let min_fidelity =
    Arg.(value
         & opt (some float) None
         & info [ "min-fidelity" ]
             ~doc:"Require the policy's expected fidelity to reach this value (default: \
                   the policy's own tau) — BH0503 fires below it.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON instead of text.")
  in
  let werror =
    Arg.(value & flag & info [ "werror" ] ~doc:"Promote warnings to errors (-Werror).")
  in
  let disable =
    Arg.(value
         & opt (list string) []
         & info [ "disable" ] ~docv:"CODES"
             ~doc:"Comma-separated diagnostic codes to suppress, e.g. BH0407,BH0104.")
  in
  let list_passes =
    Arg.(value
         & flag
         & info [ "list-passes" ] ~doc:"List the registered lint passes and their codes.")
  in
  let target_name =
    Arg.(value
         & opt (some string) None
         & info [ "target" ] ~docv:"NAME"
             ~doc:"Check the artifacts against a hardware target: unknown names are \
                   BH1301, a plan deeper than the target's depth ceiling is BH1303, \
                   and a mismatching $(b,--compiled-for) is BH1302.")
  in
  let compiled_for =
    Arg.(value
         & opt (some string) None
         & info [ "compiled-for" ] ~docv:"NAME"
             ~doc:"Target the plan was originally compiled for (its provenance); \
                   differing from $(b,--target) is BH1302.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically verify serialized compiler artifacts; exit 1 on any error \
             diagnostic")
    Term.(
      const (fun plan_file unitary_file cache_dir target_name compiled_for seed tau
               min_fidelity json werror disable list_passes metrics_out trace ->
          run_check plan_file unitary_file cache_dir target_name compiled_for seed tau
            min_fidelity json werror disable list_passes metrics_out trace)
      $ plan_file $ unitary_file $ cache_dir $ target_name $ compiled_for $ seed
      $ check_tau $ min_fidelity $ json $ werror $ disable $ list_passes $ metrics_out
      $ trace)

let analyze_cmd =
  let plan_file =
    Arg.(value
         & opt (some string) None
         & info [ "plan" ] ~docv:"FILE"
             ~doc:"Plan file to analyze (written by $(b,bosec compile --plan-out)).")
  in
  let unitary_file =
    Arg.(value
         & opt (some string) None
         & info [ "unitary" ] ~docv:"FILE"
             ~doc:"Replay reference for the plan (enables the replay lint checks and \
                   grounds the $(b,--tau) policy).")
  in
  let analyze_tau =
    Arg.(value
         & opt (some float) None
         & info [ "tau" ]
             ~doc:"Rebuild the dropout policy at this accuracy threshold and analyze \
                   under its hard mask — the rotations a shot actually keeps.")
  in
  let coupling_kind =
    Arg.(value
         & opt (some string) None
         & info [ "coupling" ] ~docv:"KIND"
             ~doc:"Check coupling feasibility against a $(docv) graph (square, \
                   triangular or hexagonal on $(b,--rows) x $(b,--cols)) whose sites \
                   are the plan's qumode labels. Without it, feasibility is skipped. \
                   Legacy spelling of the hardware description: prefer $(b,--target), \
                   which also brings the routing budget, depth ceiling and noise \
                   model.")
  in
  let analyze_target =
    target_arg
      ~doc:
        "Analyze against a registered hardware target (see $(b,bosec targets)): its \
         coupling graph sized to the plan, routing budget, depth ceiling and noise \
         model. Mutually exclusive with $(b,--coupling) and the manual backend \
         knobs."
  in
  let routing_budget =
    Arg.(value
         & opt int 0
         & info [ "routing-budget" ] ~docv:"HOPS"
             ~doc:"Extra swap hops allowed per rotation: a mode pair is feasible at \
                   coupling distance <= 1 + $(docv).")
  in
  let max_depth =
    Arg.(value
         & opt (some int) None
         & info [ "max-depth" ]
             ~doc:"Backend depth ceiling; BH1102 fires when the schedule is deeper.")
  in
  let analyze_loss =
    Arg.(value
         & opt float 0.
         & info [ "loss" ]
             ~doc:"Per-beamsplitter photon loss rate for the transmission budget \
                   (single-qumode gates lose at a tenth of it); 0 means ideal.")
  in
  let min_transmission =
    Arg.(value
         & opt float 0.
         & info [ "min-transmission" ]
             ~doc:"Loss-budget floor: BH1104 fires for every mode whose transmission \
                   falls below it.")
  in
  let json =
    Arg.(value
         & flag
         & info [ "json" ]
             ~doc:"Emit one JSON object with the report and the diagnostics instead \
                   of text.")
  in
  let werror =
    Arg.(value & flag & info [ "werror" ] ~doc:"Promote warnings to errors (-Werror).")
  in
  let disable =
    Arg.(value
         & opt (list string) []
         & info [ "disable" ] ~docv:"CODES"
             ~doc:"Comma-separated diagnostic codes to suppress, e.g. BH1103; unknown \
                   codes draw a warning.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Dataflow analysis of a plan: schedule depth and commuting fronts, \
             per-mode liveness, coupling feasibility, fidelity/loss budget intervals \
             (JSON report); exit 1 on any error diagnostic")
    Term.(
      const (fun plan_file unitary_file seed tau coupling_kind rows cols target
               routing_budget max_depth loss min_transmission json werror disable
               metrics_out trace ->
          run_analyze plan_file unitary_file seed tau coupling_kind rows cols target
            routing_budget max_depth loss min_transmission json werror disable
            metrics_out trace)
      $ plan_file $ unitary_file $ seed $ analyze_tau $ coupling_kind $ rows $ cols
      $ analyze_target $ routing_budget $ max_depth $ analyze_loss $ min_transmission
      $ json $ werror $ disable $ metrics_out $ trace)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Compile and execute on the lossy simulator; report JSD per config")
    Term.(
      const (fun rows cols modes seed tau graph_p loss cutoff metrics_out trace ->
          run_simulate rows cols modes seed tau graph_p loss cutoff metrics_out trace)
      $ rows $ cols $ modes $ seed $ tau $ graph_p $ loss $ cutoff $ metrics_out
      $ trace)

let sample_cmd =
  let sample_modes =
    Arg.(value
         & opt int 5
         & info [ "n"; "modes" ] ~doc:"Program qumodes (exact simulation, 1..10).")
  in
  let shots = Arg.(value & opt int 1024 & info [ "shots" ] ~doc:"Shots to draw.") in
  let chains =
    Arg.(value
         & opt int 16
         & info [ "chains" ]
             ~doc:"Independent shot chains; the sample layout (and therefore the \
                   output) depends on this, not on $(b,--jobs).")
  in
  let squeezing =
    Arg.(value
         & opt float 0.35
         & info [ "squeezing" ] ~doc:"Squeezing parameter applied to every qumode.")
  in
  let max_photons =
    Arg.(value
         & opt int 5
         & info [ "max-photons" ]
             ~doc:"Photon-number truncation of the exact output distribution.")
  in
  let use_chain_rule =
    Arg.(value
         & flag
         & info [ "chain-rule" ]
             ~doc:"Sample mode-by-mode via conditional loop hafnians instead of \
                   enumerating the truncated distribution.")
  in
  let sample_target =
    target_arg
      ~doc:
        "Compile the interferometer for a registered hardware target first (see \
         $(b,bosec targets)) and sample its approximate unitary — dropout's \
         deterministic hard mask applied — instead of the exact program unitary."
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Draw GBS samples from a squeezed-light interferometer; $(b,--jobs) fans \
             shot chains out over a domain pool with bit-identical output")
    Term.(
      const (fun modes target seed shots jobs chains squeezing max_photons
               use_chain_rule graph_p metrics_out trace ->
          run_sample modes target seed shots jobs chains squeezing max_photons
            use_chain_rule graph_p metrics_out trace)
      $ sample_modes $ sample_target $ seed $ shots $ jobs $ chains $ squeezing
      $ max_photons $ use_chain_rule $ graph_p $ metrics_out $ trace)

let serve_cmd =
  let socket =
    Arg.(value
         & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at $(docv) (any number of \
                   concurrent clients); without it the server speaks the protocol \
                   on stdin/stdout.")
  in
  let cache_dir =
    Arg.(value
         & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist compile artifacts to a disk cache under $(docv) \
                   (created if missing); artifacts survive restarts and disk hits \
                   are bit-identical to the original compile.")
  in
  let max_cache_mb =
    Arg.(value
         & opt int 64
         & info [ "max-cache-mb" ] ~docv:"MB"
             ~doc:"Disk-cache size bound; least-recently-used entries are evicted \
                   past it.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running compile/sample service over stdin/stdout or a Unix-domain \
             socket (line-delimited JSON; protocol in docs/SERVING.md)")
    Term.(
      const (fun socket cache_dir max_cache_mb jobs metrics_out trace ->
          run_serve socket cache_dir max_cache_mb jobs metrics_out trace)
      $ socket $ cache_dir $ max_cache_mb $ jobs $ metrics_out $ trace)

let layouts_cmd =
  Cmd.v
    (Cmd.info "layouts" ~doc:"Compare square / triangular / hexagonal couplings")
    Term.(
      const (fun rows cols modes seed tau metrics_out trace ->
          run_layouts rows cols modes seed tau metrics_out trace)
      $ rows $ cols $ modes $ seed $ tau $ metrics_out $ trace)

let targets_cmd =
  Cmd.v
    (Cmd.info "targets"
       ~doc:"List the registered hardware targets (docs/TARGETS.md); pass a name to \
             $(b,--target) on compile, check, analyze or sample")
    Term.(const run_targets $ const ())

let () =
  let doc = "Bosehedral compiler for (Gaussian) Boson sampling programs" in
  let default = compile_term in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "bosec" ~doc ~version:Version.version)
          [ compile_cmd; check_cmd; analyze_cmd; simulate_cmd; sample_cmd; layouts_cmd;
            targets_cmd; serve_cmd ]))
