(* GBS point processes (Jahangiri et al. 2020): sample clustered point
   configurations from an RBF kernel loaded into a GBS device, and watch
   photon loss wash the clustering out — unless the circuit was compiled
   with Bosehedral.

   Run with: dune exec examples/point_process.exe *)

module Rng = Bose_util.Rng
module Lattice = Bose_hardware.Lattice
module Noise = Bose_circuit.Noise
open Bose_apps
open Bosehedral

let () =
  let rng = Rng.create 2026 in
  let points = Point_process.grid_points ~rows:3 ~cols:3 ~spacing:1.0 in
  let pp = Point_process.create ~sigma:0.9 points in
  let program = Point_process.program ~mean_photons:2.5 pp in
  let shots = 2000 in

  let clustering dist =
    let configs = Point_process.sample_configurations ~rng ~shots dist pp in
    let gbs = Point_process.mean_pairwise_distance configs in
    let uniform =
      Point_process.mean_pairwise_distance
        (Point_process.uniform_configurations ~rng pp ~match_sizes:configs)
    in
    (gbs, uniform)
  in

  let ideal = Runner.ideal_distribution ~max_photons:5 program in
  let g, u = clustering ideal in
  Format.printf "noise-free: mean pairwise distance %.4f (uniform baseline %.4f)@." g u;
  Format.printf "clustering ratio (lower = more clustered): %.3f@.@." (g /. u);

  let device = Lattice.create ~rows:3 ~cols:3 in
  List.iter
    (fun loss ->
       List.iter
         (fun config ->
            let compiled =
              Compiler.compile ~rng ~device ~config ~tau:0.995 program.Runner.unitary
            in
            let noisy =
              Runner.noisy_distribution ~realizations:8 ~rng ~noise:(Noise.uniform loss)
                ~max_photons:5 compiled program
            in
            let g, u = clustering noisy in
            Format.printf "loss %.2f %-11s clustering ratio %.3f@." loss
              (Config.name config) (g /. u))
         [ Config.Baseline; Config.Full_opt ])
    [ 0.04; 0.10 ]
