(* A look inside the qumode-mapping optimization (paper §V): shows the
   elimination pattern, the main-path row masses before and after the
   column/row permutations, and the resulting small-angle statistics.

   Run with: dune exec examples/mapping_study.exe *)

module Rng = Bose_util.Rng
module Mat = Bose_linalg.Mat
module Perm = Bose_linalg.Perm
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Pattern = Bose_hardware.Pattern
module Embedding = Bose_hardware.Embedding
module Mapping = Bose_mapping.Mapping
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate

let print_mass label alpha =
  Format.printf "%s:@." label;
  Format.printf "  ";
  Array.iteri
    (fun i a ->
       if i > 0 && i mod 8 = 0 then Format.printf "@.  ";
       Format.printf "%5.2f " a)
    alpha;
  Format.printf "@."

let () =
  let rng = Rng.create 31 in
  let n = 24 in
  let device = Lattice.create ~rows:6 ~cols:6 in
  let pattern = Embedding.for_program device n in

  Format.printf "device %a, program %d qumodes@." Lattice.pp device n;
  Format.printf "main path labels: %a@.@."
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Format.pp_print_int)
    (Pattern.main_path_labels pattern);

  let u = Unitary.haar_random rng n in
  print_mass "main-region row mass α_i (trivial mapping)"
    (Mapping.main_region_row_mass pattern u);

  let m = Mapping.optimize pattern u in
  print_mass "after column exchanges + row sort"
    (Mapping.main_region_row_mass pattern m.Mapping.permuted);

  Format.printf "@.chosen indicator K = %d@." m.Mapping.indicator_k;
  Format.printf "column permutation: %a@." Perm.pp m.Mapping.col_perm;
  Format.printf "row permutation:    %a@.@." Perm.pp m.Mapping.row_perm;

  let count plan = Plan.small_angle_count plan ~threshold:0.1 in
  let baseline = Eliminate.decompose_baseline u in
  let tree_only = Eliminate.decompose pattern u in
  let mapped = Eliminate.decompose pattern m.Mapping.permuted in
  Format.printf "small rotations (θ < 0.1) out of %d:@." (Plan.rotation_count baseline);
  Format.printf "  chain baseline        : %d@." (count baseline);
  Format.printf "  tree pattern          : %d@." (count tree_only);
  Format.printf "  tree pattern + mapping: %d@." (count mapped);

  (* The relabeling identity: undoing the permutations recovers U. *)
  Format.printf "@.P_rᵀ·U_per·P_cᵀ = U exactly: %b@."
    (Mat.equal ~tol:1e-9 (Mapping.recovered_unitary m) u)
