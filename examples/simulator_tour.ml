(* A tour of the three simulator backends and the samplers: the same
   GBS circuit simulated (1) in the Gaussian covariance formalism with
   hafnian probabilities, (2) as a truncated-Fock state vector, and
   (3) as a density matrix with Kraus-operator loss — plus threshold
   detection and chain-rule sampling.

   Run with: dune exec examples/simulator_tour.exe *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Dist = Bose_util.Dist
open Bose_gbs
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit
module Noise = Bose_circuit.Noise

let circuit =
  Circuit.add_all (Circuit.create ~modes:2)
    [
      Gate.Squeeze (0, Cx.re 0.45);
      Gate.Squeeze (1, Cx.polar 0.3 0.9);
      Gate.Beamsplitter (0, 1, 0.7, 0.4);
      Gate.Phase (0, 1.1);
      Gate.Displace (1, Cx.make 0.25 (-0.1));
    ]

let () =
  Format.printf "circuit: %a@.@." Circuit.pp_counts (Circuit.gate_counts circuit);

  (* Backend 1: Gaussian covariance + hafnian probabilities. *)
  let gaussian = Simulator.run circuit in
  let prepared = Fock.prepare gaussian in

  (* Backend 2: truncated Fock state vector. *)
  let fock = Fock_backend.run_circuit (Fock_backend.vacuum ~modes:2 ~cutoff:12) circuit in

  Format.printf "lossless, three ways (pattern: Gaussian/hafnian | Fock vector):@.";
  List.iter
    (fun pattern ->
       Format.printf "  p(%s) = %.8f | %.8f@."
         (String.concat "," (List.map string_of_int pattern))
         (Fock.probability prepared (Array.of_list pattern))
         (Fock_backend.probability fock pattern))
    [ [ 0; 0 ]; [ 1; 1 ]; [ 2; 0 ]; [ 0; 2 ]; [ 2; 1 ] ];

  (* Backend 3: density matrix with loss, vs the lossy Gaussian state. *)
  let noise = Noise.uniform 0.1 in
  let lossy_gaussian = Simulator.run ~noise circuit in
  let lossy_density =
    Density_backend.run_circuit ~noise (Density_backend.vacuum ~modes:2 ~cutoff:12) circuit
  in
  Format.printf "@.with 10%% beamsplitter loss (Gaussian | density matrix):@.";
  Format.printf "  purity      %.6f | %.6f@." (Gaussian.purity lossy_gaussian)
    (Density_backend.purity lossy_density);
  Format.printf "  mean photons %.6f | %.6f@."
    (Gaussian.total_mean_photons lossy_gaussian)
    (Density_backend.mean_photons lossy_density);

  (* Threshold (click/no-click) detection. *)
  Format.printf "@.threshold detector statistics of the lossy state:@.";
  List.iter
    (fun (bits, p) ->
       Format.printf "  P(clicks=%s) = %.6f@."
         (String.concat "" (List.map string_of_int bits))
         p)
    (Threshold.click_distribution lossy_gaussian);

  (* Chain-rule sampling: exact samples without enumerating patterns. *)
  let rng = Rng.create 7 in
  let shots = Sampler.chain_rule_many ~max_per_mode:5 rng lossy_gaussian 2000 in
  let empirical = Dist.of_samples shots in
  let exact = Fock.truncated ~max_photons:5 lossy_gaussian in
  Format.printf "@.chain-rule sampling: 2000 shots, JSD vs exact = %.5f@."
    (Dist.jsd empirical exact)
