(* Maximum-clique search seeded by GBS samples (paper Fig. 11b, at a
   classically-simulable scale): GBS samples seed a classical
   shrink-and-expand subroutine; Bosehedral compilation keeps the seeds
   useful under photon loss.

   Run with: dune exec examples/max_clique.exe *)

module Rng = Bose_util.Rng
module Lattice = Bose_hardware.Lattice
module Noise = Bose_circuit.Noise
open Bose_apps
open Bosehedral

let () =
  let rng = Rng.create 11 in
  let n = 8 in
  let g = Graph.random rng ~n ~p:0.72 in
  let target = Graph.max_clique_size g in
  Format.printf "graph: %d vertices, %d edges, clique number %d@." n (Graph.edge_count g)
    target;

  let program = Encoding.encode ~mean_photons:3.0 g in
  let device = Lattice.create ~rows:3 ~cols:3 in
  let shots = 2000 in

  let ideal = Runner.ideal_distribution ~max_photons:6 program in
  Format.printf "noise-free GBS success rate: %.3f@."
    (Max_clique.success_rate (Max_clique.evaluate ~rng ~shots ~target g ideal));

  List.iter
    (fun loss ->
       Format.printf "--- loss %.2f ---@." loss;
       List.iter
         (fun config ->
            let compiled =
              Compiler.compile ~rng ~device ~config ~tau:0.99 program.Runner.unitary
            in
            let noisy =
              Runner.noisy_distribution ~realizations:10 ~rng ~noise:(Noise.uniform loss)
                ~max_photons:6 compiled program
            in
            let outcome = Max_clique.evaluate ~rng ~shots ~target g noisy in
            Format.printf "%-11s success rate %.3f@." (Config.name config)
              (Max_clique.success_rate outcome))
         [ Config.Baseline; Config.Full_opt ])
    [ 0.03; 0.08 ]
