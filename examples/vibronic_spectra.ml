(* Vibrational-spectra simulation with GBS (paper Fig. 11d, synthetic
   molecule): sample energies E(n̄) = Σ n_i ω_i, broaden into a spectrum,
   and compare the noisy Baseline and Full-Opt spectra against the ideal
   one with the Pearson correlation.

   Run with: dune exec examples/vibronic_spectra.exe *)

module Rng = Bose_util.Rng
module Lattice = Bose_hardware.Lattice
module Noise = Bose_circuit.Noise
open Bose_apps
open Bosehedral

let ascii_plot label spectrum =
  (* A tiny terminal rendering of the spectrum: 50 columns, 8 rows. *)
  let columns = 50 in
  let n = Array.length spectrum in
  let bucket c =
    let start = c * n / columns and stop = ((c + 1) * n / columns) - 1 in
    let acc = ref 0. in
    for i = start to max start stop do
      acc := Float.max !acc spectrum.(i)
    done;
    !acc
  in
  let values = Array.init columns bucket in
  let peak = Array.fold_left Float.max 1e-30 values in
  Format.printf "%s@." label;
  for row = 3 downto 0 do
    let threshold = (float_of_int row +. 0.5) /. 4. in
    let line =
      String.concat ""
        (List.map
           (fun c -> if values.(c) /. peak > threshold then "#" else " ")
           (List.init columns (fun c -> c)))
    in
    Format.printf "  |%s|@." line
  done;
  Format.printf "  +%s+@." (String.make columns '-')

let () =
  let rng = Rng.create 5 in
  let mol = Vibronic.synthetic rng ~modes:6 in
  let grid = Vibronic.default_grid mol in
  let gamma = 90. in
  let device = Lattice.create ~rows:3 ~cols:2 in
  let loss = 0.02 in

  List.iter
    (fun temperature ->
       Format.printf "=== %s at %.0f K, loss %.2f ===@." mol.Vibronic.name temperature loss;
       let program = Vibronic.program mol ~temperature in
       let ideal = Runner.ideal_distribution ~max_photons:6 program in
       let standard = Vibronic.spectrum mol ~grid ~gamma ideal in
       ascii_plot "standard (noise-free)" standard;
       List.iter
         (fun config ->
            let compiled =
              Compiler.compile ~rng ~device ~config ~tau:0.98 program.Runner.unitary
            in
            let noisy =
              Runner.noisy_distribution ~realizations:10 ~rng ~noise:(Noise.uniform loss)
                ~max_photons:6 compiled program
            in
            let spectrum = Vibronic.spectrum mol ~grid ~gamma noisy in
            ascii_plot (Config.name config) spectrum;
            Format.printf "  Pearson correlation vs standard: %.3f@.@."
              (Vibronic.correlation standard spectrum))
         [ Config.Baseline; Config.Full_opt ])
    [ 1000.; 750. ]
