(* Beyond the square lattice: compile the same interferometer for
   triangular and hexagonal couplings (the paper's §IV generalization)
   and for hardware whose only native beamsplitter is a fixed 50:50
   (the 'MZI 2' realization of Fig. 2).

   Run with: dune exec examples/hardware_variants.exe *)

module Rng = Bose_util.Rng
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Coupling = Bose_hardware.Coupling
module Embedding = Bose_hardware.Embedding
module Pattern = Bose_hardware.Pattern
module Plan = Bose_decomp.Plan
module Circuit = Bose_circuit.Circuit
open Bosehedral

let () =
  let rng = Rng.create 2025 in
  let n = 16 in
  let u = Unitary.haar_random rng n in

  Format.printf "compiling a %d-qumode interferometer on three layouts (tau = 0.99):@.@." n;
  Format.printf "%-14s %10s %10s %12s %14s@." "layout" "max deg" "main path" "BS dropped"
    "small (θ<0.1)";
  List.iter
    (fun (name, coupling) ->
       let pattern = Embedding.of_coupling_for_program coupling n in
       let compiled =
         Compiler.compile_with_pattern ~rng ~pattern ~config:Config.Full_opt ~tau:0.99 u
       in
       Format.printf "%-14s %10d %10d %11.1f%% %14d@." name
         (Coupling.max_degree coupling)
         (List.length (Pattern.main_path_labels pattern))
         (100. *. Compiler.beamsplitter_reduction compiled)
         (Compiler.small_angles compiled ~threshold:0.1))
    (* The same parser `bosec analyze --coupling` and `bosec layouts`
       use, so the example stays in lockstep with the CLI vocabulary. *)
    (List.map
       (fun kind ->
          match Coupling.of_kind_string ~rows:4 ~cols:4 kind with
          | Ok c -> (kind ^ " 4x4", c)
          | Error msg -> failwith msg)
       Coupling.kind_names);

  (* MZI realizations: same plan, two hardware styles. *)
  let device = Lattice.create ~rows:4 ~cols:4 in
  let compiled = Compiler.compile ~rng ~device ~config:Config.Full_opt ~tau:0.99 u in
  Format.printf "@.MZI realizations of the same compiled plan:@.";
  List.iter
    (fun (name, style) ->
       let counts =
         Circuit.gate_counts (Plan.to_circuit ~style compiled.Compiler.plan)
       in
       Format.printf "  %-24s %a@." name Circuit.pp_counts counts)
    [
      ("MZI 1 (tunable BS)", Plan.Tunable);
      ("MZI 2 (fixed 50:50 BS)", Plan.Fixed_fifty_fifty);
    ]
