(* Dense-subgraph search with GBS, end to end (paper Fig. 11a, at a
   classically-simulable scale): encode a planted-clique graph, compile
   with Baseline and Full-Opt, execute on the lossy simulator, and
   compare how often each finds the densest 4-vertex subgraph.

   Run with: dune exec examples/dense_subgraph.exe *)

module Rng = Bose_util.Rng
module Lattice = Bose_hardware.Lattice
module Noise = Bose_circuit.Noise
open Bose_apps
open Bosehedral

let () =
  let rng = Rng.create 7 in
  let n = 8 in

  (* A sparse graph with a planted 4-clique on vertices 0..3. *)
  let g =
    List.fold_left
      (fun g (a, b) -> Graph.add_edge g a b)
      (Graph.create n)
      [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3);
        (4, 5); (5, 6); (6, 7); (3, 4); (2, 6) ]
  in
  let k = 4 in
  let _, optimum = Graph.densest_subgraph_of_size g k in
  Format.printf "graph: %d vertices, %d edges; densest %d-subgraph density %.2f@." n
    (Graph.edge_count g) k optimum;

  let program = Encoding.encode ~mean_photons:3.0 g in
  let device = Lattice.create ~rows:3 ~cols:3 in
  let shots = 2000 in
  let loss = 0.05 in

  let ideal = Runner.ideal_distribution ~max_photons:6 program in
  let ideal_outcome = Dense_subgraph.evaluate ~rng ~shots ~k g ideal in
  Format.printf "noise-free GBS success rate: %.3f@."
    (Dense_subgraph.success_rate ideal_outcome);

  List.iter
    (fun config ->
       let compiled =
         Compiler.compile ~rng ~device ~config ~tau:0.99 program.Runner.unitary
       in
       let noisy =
         Runner.noisy_distribution ~realizations:10 ~rng ~noise:(Noise.uniform loss)
           ~max_photons:6 compiled program
       in
       let outcome = Dense_subgraph.evaluate ~rng ~shots ~k g noisy in
       Format.printf "%-11s (loss %.2f): success rate %.3f, JSD vs ideal %.4f@."
         (Config.name config) loss
         (Dense_subgraph.success_rate outcome)
         (Bose_util.Dist.jsd ideal noisy))
    [ Config.Baseline; Config.Full_opt ]
