(* Quickstart: compile a random 24-qumode interferometer for a 6x6
   device with all Bosehedral optimizations and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

module Rng = Bose_util.Rng
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Plan = Bose_decomp.Plan
module Obs = Bose_obs.Obs
open Bosehedral

let () =
  (* Telemetry is off by default; enabling it makes every pass record
     spans/counters without changing any compiled output (docs/METRICS.md). *)
  Obs.enable ();

  let rng = Rng.create 2024 in

  (* The program's high-level semantics: an N x N unitary. *)
  let u = Unitary.haar_random rng 24 in

  (* The hardware: a 6x6 lattice of qumodes with nearest-neighbor
     beamsplitter coupling. *)
  let device = Lattice.create ~rows:6 ~cols:6 in

  (* Compile with every optimization (tree elimination pattern, qumode
     mapping, probabilistic dropout) at 99.9% approximation fidelity. *)
  let compiled = Compiler.compile ~rng ~device ~config:Config.Full_opt ~tau:0.999 u in

  Format.printf "%a@.@." Compiler.pp_summary compiled;
  Format.printf "beamsplitters per shot : %d of %d (%.1f%% dropped)@."
    (Compiler.beamsplitters_kept compiled)
    (Plan.rotation_count compiled.Compiler.plan)
    (100. *. Compiler.beamsplitter_reduction compiled);
  Format.printf "predicted fidelity     : %.4f@." (Compiler.predicted_fidelity compiled);

  (* Generate one shot circuit and count its gates. *)
  let circuit = Compiler.shot_circuit rng compiled in
  Format.printf "one shot circuit       : %a@."
    Bose_circuit.Circuit.pp_counts
    (Bose_circuit.Circuit.gate_counts circuit);

  (* The compile-time promise can be checked explicitly: reconstruct the
     approximated unitary of a sampled shot and measure its fidelity. *)
  (match Compiler.shot_mask rng compiled with
   | None -> Format.printf "nothing dropped at this accuracy@."
   | Some kept ->
     let u_app = Compiler.approx_unitary ~kept compiled in
     Format.printf "measured shot fidelity : %.6f@."
       (Bose_linalg.Mat.unitary_fidelity u_app u));

  (* Static verification: run the full lint registry over the compiled
     artifacts (docs/DIAGNOSTICS.md). Passing the program unitary also
     checks that un-permuting the mapping recovers it bit-exactly. A
     clean compile produces zero diagnostics; the same engine backs
     `bosec check` for artifacts on disk. *)
  (match Compiler.lint ~unitary:u compiled with
   | [] -> Format.printf "static verification    : ok (0 diagnostics)@."
   | diags ->
     Format.printf "static verification    : %s@.%a@."
       (Bose_lint.Diag.summary diags)
       Bose_lint.Diag.pp_list diags);

  (* What the compile cost, pass by pass: the telemetry report. The same
     data is available as JSON via [Obs.Report.to_json] or, from the
     CLI, `bosec compile --metrics-out metrics.json`. *)
  Format.printf "@.--- telemetry ---@.%a@." Obs.Report.pp (Obs.Report.capture ())
