(* Ablation studies on Bosehedral's design choices (DESIGN.md):
   the dropout power K (§VI) and the mapping indicator K (§V-D). *)

module Rng = Bose_util.Rng
module Stats = Bose_util.Stats
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Embedding = Bose_hardware.Embedding
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate
module Mapping = Bose_mapping.Mapping
module Dropout = Bose_dropout.Dropout

(* τ_K as a function of the dropout power K: shows the paper's tradeoff
   between angle-proportional sampling (K = 1) and the hard threshold
   (K → ∞). *)
let dropout_power () =
  Benchlib.header "Ablation — dropout power K vs average approximation fidelity (24 qumodes)";
  let rng = Rng.create 888 in
  let n = 24 in
  let device = Lattice.create ~rows:6 ~cols:6 in
  let pattern = Embedding.for_program device n in
  let powers = [ 1; 2; 5; 10; 20; 50; 100 ] in
  Printf.printf "%-8s" "tau";
  List.iter (fun k -> Printf.printf "  K=%-7d" k) powers;
  Printf.printf "  %s\n" "hard cut";
  List.iter
    (fun tau ->
       let u = Unitary.haar_random rng n in
       let mapping = Mapping.optimize pattern u in
       let plan = Eliminate.decompose pattern mapping.Mapping.permuted in
       Printf.printf "%-8.4f" tau;
       List.iter
         (fun k ->
            let policy =
              Dropout.make_policy ~powers:[ k ] ~iterations:60 rng plan
                mapping.Mapping.permuted ~tau
            in
            Printf.printf "  %-9.5f" policy.Dropout.expected_fidelity)
         powers;
       (* Hard threshold = deterministic top-M mask. *)
       let policy =
         Dropout.make_policy ~powers:[ 100 ] ~iterations:1 rng plan mapping.Mapping.permuted
           ~tau
       in
       let hard = Dropout.hard_kept policy plan in
       Printf.printf "  %.5f\n" (Plan.fidelity ~kept:hard plan mapping.Mapping.permuted))
    [ 0.999; 0.99; 0.95 ]

(* Small-angle yield as a function of the mapping indicator K. *)
let mapping_indicator () =
  Benchlib.header "Ablation — mapping indicator K vs small-rotation yield (24 qumodes)";
  let rng = Rng.create 999 in
  let n = 24 in
  let pattern = Embedding.for_program (Lattice.create ~rows:6 ~cols:6) n in
  let candidates = [ 4; 6; 8; 12; 16; 20 ] in
  Printf.printf "%-10s %14s %18s\n" "K" "small (θ<0.1)" "small (θ<0.25)";
  let unitaries = List.init 3 (fun _ -> Unitary.haar_random rng n) in
  List.iter
    (fun k ->
       let smalls threshold =
         Stats.mean
           (Array.of_list
              (List.map
                 (fun u ->
                    let m = Mapping.optimize ~candidate_ks:[ k ] pattern u in
                    let plan = Eliminate.decompose pattern m.Mapping.permuted in
                    float_of_int (Plan.small_angle_count plan ~threshold))
                 unitaries))
       in
       Printf.printf "%-10d %14.1f %18.1f\n" k (smalls 0.1) (smalls 0.25))
    candidates;
  (* Reference: no mapping at all. *)
  let none threshold =
    Stats.mean
      (Array.of_list
         (List.map
            (fun u ->
               float_of_int
                 (Plan.small_angle_count (Eliminate.decompose pattern u) ~threshold))
            unitaries))
  in
  Printf.printf "%-10s %14.1f %18.1f\n" "(none)" (none 0.1) (none 0.25)

(* Lattice aspect-ratio study beyond the paper's three shapes. *)
let lattice_shapes () =
  Benchlib.header "Ablation — lattice aspect ratio vs beamsplitter reduction (24 qumodes, tau 0.99)";
  let rng = Rng.create 1001 in
  Printf.printf "%-10s %12s %14s\n" "device" "BS drop" "small (θ<0.1)";
  List.iter
    (fun (r, c) ->
       let device = Lattice.create ~rows:r ~cols:c in
       let reductions =
         List.init 3 (fun i ->
             let u = Unitary.haar_random (Rng.create (7000 + i)) 24 in
             let compiled =
               Bosehedral.Compiler.compile ~rng ~device ~config:Bosehedral.Config.Full_opt
                 ~tau:0.99 u
             in
             (Bosehedral.Compiler.beamsplitter_reduction compiled,
              float_of_int (Bosehedral.Compiler.small_angles compiled ~threshold:0.1)))
       in
       Printf.printf "%dx%-8d %11.1f%% %14.1f\n" r c
         (100. *. Stats.mean (Array.of_list (List.map fst reductions)))
         (Stats.mean (Array.of_list (List.map snd reductions))))
    [ (6, 6); (5, 7); (4, 8); (3, 8); (2, 12); (4, 6); (5, 5) ]

(* Extension: the generic embedding on triangular / hexagonal couplings
   (the paper's §IV "other layouts" remark). *)
let generic_layouts () =
  Benchlib.header
    "Ablation — coupling layouts via the generic embedding (24 qumodes, tau 0.99)";
  let module Coupling = Bose_hardware.Coupling in
  let module Embedding = Bose_hardware.Embedding in
  let rng = Rng.create 1002 in
  Printf.printf "%-16s %9s %12s %14s\n" "layout" "max deg" "BS drop" "small (θ<0.1)";
  List.iter
    (fun (name, coupling) ->
       let pattern = Embedding.of_coupling_for_program coupling 24 in
       let results =
         List.init 3 (fun i ->
             let u = Unitary.haar_random (Rng.create (8000 + i)) 24 in
             let compiled =
               Bosehedral.Compiler.compile_with_pattern ~rng ~pattern
                 ~config:Bosehedral.Config.Full_opt ~tau:0.99 u
             in
             (Bosehedral.Compiler.beamsplitter_reduction compiled,
              float_of_int (Bosehedral.Compiler.small_angles compiled ~threshold:0.1)))
       in
       Printf.printf "%-16s %9d %11.1f%% %14.1f\n" name (Coupling.max_degree coupling)
         (100. *. Stats.mean (Array.of_list (List.map fst results)))
         (Stats.mean (Array.of_list (List.map snd results))))
    [
      ("square 5x5", Coupling.of_lattice (Lattice.create ~rows:5 ~cols:5));
      ("triangular 5x5", Coupling.triangular ~rows:5 ~cols:5);
      ("hexagonal 5x5", Coupling.hexagonal ~rows:5 ~cols:5);
      ("square zigzag*", Coupling.of_lattice (Lattice.create ~rows:6 ~cols:6));
    ];
  Printf.printf "(*24 of the device's qumodes; zigzag comparison uses the generic embedding too)\n"

(* Extension: the compiler on plain (Fock-input) Boson sampling — the
   non-Gaussian half of the paper's title. The dropout approximation is
   measured directly on permanent-based output distributions. *)
let boson_sampling () =
  Benchlib.header
    "Extension — plain Boson sampling under compilation (8 modes, 2 photons, algorithmic error only)";
  let rng = Rng.create 1003 in
  let n = 8 in
  let device = Lattice.create ~rows:2 ~cols:4 in
  let u = Unitary.haar_random rng n in
  let input = Bose_gbs.Boson_sampling.single_photons ~modes:n ~photons:2 in
  let ideal =
    Bose_util.Dist.of_weights (Bose_gbs.Boson_sampling.distribution u ~input)
  in
  Printf.printf "%-12s %10s %12s %12s\n" "config" "tau" "BS dropped" "JSD vs ideal";
  List.iter
    (fun tau ->
       List.iter
         (fun config ->
            let compiled = Bosehedral.Compiler.compile ~rng ~device ~config ~tau u in
            let realizations = 12 in
            let dists =
              List.init realizations (fun _ ->
                  let kept = Bosehedral.Compiler.shot_mask rng compiled in
                  let u_app = Bosehedral.Compiler.approx_unitary ?kept compiled in
                  ( 1.,
                    Bose_util.Dist.of_weights
                      (Bose_gbs.Boson_sampling.distribution u_app ~input) ))
            in
            let averaged = Bose_util.Dist.mix dists in
            Printf.printf "%-12s %10.4f %11.1f%% %12.5f\n"
              (Bosehedral.Config.name config) tau
              (100. *. Bosehedral.Compiler.beamsplitter_reduction compiled)
              (Bose_util.Dist.jsd ideal averaged))
         Bosehedral.Config.all;
       print_newline ())
    [ 0.999; 0.99 ]

let run () =
  dropout_power ();
  mapping_indicator ();
  lattice_shapes ();
  generic_layouts ();
  boson_sampling ()
