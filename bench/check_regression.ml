(* Bench-regression gate: compare per-row gauge values in
   BENCH_TELEMETRY.json against the committed floors in
   bench/bench_floors.json.

     check_regression [--require GAUGE]... BENCH_TELEMETRY.json bench_floors.json

   Dependency-free on purpose — it string-scans the two compact JSON
   files (both are machine-written by this repo, never hand-edited)
   instead of pulling in a parser. A floor whose row or gauge is absent
   from the telemetry is reported as SKIP and does not fail the gate:
   the parallel-scaling rows only exist on hosts with enough cores
   (bench_micro.ml gates them on [Domain.recommended_domain_count]), so
   the speedup floors bind on multi-core CI runners without producing
   false failures on single-core boxes. Skipped floors are enumerated
   in a trailing WARN line so CI logs show exactly which floors did not
   bind. On lanes that are supposed to have the cores, pass
   [--require GAUGE] (repeatable): a SKIP on a floor whose gauge is in
   the required set becomes a FAIL instead of silently not binding. A
   present value below its floor exits 1. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let find_from s pos sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go (max 0 pos)

let parse_float_at s pos =
  let n = String.length s in
  let j = ref pos in
  while
    !j < n
    && (match s.[!j] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false)
  do
    incr j
  done;
  if !j = pos then None else float_of_string_opt (String.sub s pos (!j - pos))

(* The telemetry writer emits one object per row containing
   ["row":"<label>", ... "gauges":[{"name":...,"value":...},...]]; the
   slice between this row's label and the next row label (or EOF) is
   exactly this row's report. *)
let gauge_value telemetry ~row ~gauge =
  let anchor = Printf.sprintf "\"row\":%S" row in
  match find_from telemetry 0 anchor with
  | None -> None
  | Some i ->
    let after = i + String.length anchor in
    let slice_end =
      match find_from telemetry after "\"row\":\"" with
      | Some j -> j
      | None -> String.length telemetry
    in
    let needle = Printf.sprintf "\"name\":%S,\"value\":" gauge in
    (match find_from telemetry after needle with
     | Some k when k < slice_end -> parse_float_at telemetry (k + String.length needle)
     | Some _ | None -> None)

(* Floors file shape (see bench/bench_floors.json):
   {"version":1,"floors":[{"row":"...","gauge":"...","min":N},...]} *)
let parse_floors s =
  let rec go pos acc =
    match find_from s pos "{\"row\":\"" with
    | None -> List.rev acc
    | Some i ->
      let start = i + 8 in
      let row_end = String.index_from s start '"' in
      let row = String.sub s start (row_end - start) in
      let gauge_key = "\"gauge\":\"" in
      let gi =
        match find_from s row_end gauge_key with
        | Some g -> g + String.length gauge_key
        | None -> failwith (Printf.sprintf "floors: row %S has no \"gauge\"" row)
      in
      let gauge_end = String.index_from s gi '"' in
      let gauge = String.sub s gi (gauge_end - gi) in
      let min_key = "\"min\":" in
      let mi =
        match find_from s gauge_end min_key with
        | Some m -> m + String.length min_key
        | None -> failwith (Printf.sprintf "floors: row %S has no \"min\"" row)
      in
      let min_v =
        match parse_float_at s mi with
        | Some v -> v
        | None -> failwith (Printf.sprintf "floors: row %S has a non-numeric min" row)
      in
      go gauge_end ((row, gauge, min_v) :: acc)
  in
  go 0 []

let usage () =
  prerr_endline
    "usage: check_regression [--require GAUGE]... BENCH_TELEMETRY.json bench_floors.json";
  exit 2

let () =
  let required = ref [] and positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--require" :: g :: rest ->
      required := g :: !required;
      parse rest
    | [ "--require" ] ->
      prerr_endline "check_regression: --require needs a gauge name";
      usage ()
    | a :: rest ->
      positional := a :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let telemetry_path, floors_path =
    match List.rev !positional with
    | [ t; f ] -> (t, f)
    | _ -> usage ()
  in
  let telemetry = read_file telemetry_path in
  let floors = parse_floors (read_file floors_path) in
  if floors = [] then begin
    Printf.eprintf "check_regression: no floors parsed from %s\n" floors_path;
    exit 2
  end;
  let required_gauge g = List.mem g !required in
  let failed = ref 0 and skipped = ref 0 in
  let skipped_floors = ref [] in
  List.iter
    (fun (row, gauge, min_v) ->
       match gauge_value telemetry ~row ~gauge with
       | None when required_gauge gauge ->
         incr failed;
         Printf.printf "FAIL  %-28s %-24s (row absent but --require %s)\n" row
           gauge gauge
       | None ->
         incr skipped;
         skipped_floors := (row, gauge) :: !skipped_floors;
         Printf.printf "SKIP  %-28s %-24s (row absent: not enough cores?)\n" row gauge
       | Some v when v >= min_v ->
         Printf.printf "OK    %-28s %-24s %8.2f >= %.2f\n" row gauge v min_v
       | Some v ->
         incr failed;
         Printf.printf "FAIL  %-28s %-24s %8.2f <  %.2f\n" row gauge v min_v)
    floors;
  Printf.printf "%d floors: %d failed, %d skipped\n" (List.length floors) !failed
    !skipped;
  if !skipped_floors <> [] then
    Printf.printf "WARN  floors that did not bind: %s\n"
      (String.concat ", "
         (List.rev_map (fun (row, gauge) -> row ^ "/" ^ gauge) !skipped_floors));
  if !failed > 0 then exit 1
