(* Fig. 10: JSD between the noisy output distribution and the noise-free
   standard distribution, as a function of the photon loss rate, for the
   four experiment configurations — run at the exactly-simulable scale
   (see DESIGN.md substitutions). Rows 1–4 use the default device per
   benchmark; rows 5–7 repeat one instance per benchmark on different
   lattice shapes. *)

module Rng = Bose_util.Rng
module Dist = Bose_util.Dist
module Stats = Bose_util.Stats
module Lattice = Bose_hardware.Lattice
module Noise = Bose_circuit.Noise
open Bosehedral

let jsd_series ~rng ~device ~tau program =
  let max_photons = Benchlib.max_photons_for program in
  let ideal = Runner.ideal_distribution ~max_photons program in
  List.map
    (fun config ->
       let compiled =
         Compiler.compile ~rng ~device ~config ~tau program.Runner.unitary
       in
       let series =
         List.map
           (fun loss ->
              let noisy =
                Runner.noisy_distribution ~realizations:6 ~rng ~noise:(Noise.uniform loss)
                  ~max_photons compiled program
              in
              Dist.jsd ideal noisy)
           Benchlib.losses
       in
       (config, series))
    Config.all

let print_series label per_config =
  Printf.printf "%-22s" label;
  List.iter (fun loss -> Printf.printf "  loss=%.2f" loss) Benchlib.losses;
  print_newline ();
  List.iter
    (fun (config, series) ->
       Printf.printf "  %-20s" (Config.name config);
       List.iter (fun j -> Printf.printf "  %9.4f" j) series;
       print_newline ())
    per_config

(* Average JSD reduction of Full-Opt vs Baseline across the loss sweep. *)
let improvement per_config =
  let series c =
    Array.of_list (List.assoc c per_config)
  in
  let base = series Config.Baseline and full = series Config.Full_opt in
  let ratios =
    Array.init (Array.length base) (fun i ->
        if base.(i) > 1e-12 then (base.(i) -. full.(i)) /. base.(i) else 0.)
  in
  100. *. Stats.mean ratios

let run () =
  Benchlib.header
    "Fig. 10 (rows 1-4) — JSD vs photon loss, four configurations (simulable scale)";
  let rng = Rng.create 4242 in
  let totals = ref [] in
  List.iter
    (fun b ->
       Printf.printf "\n[%s] tau = %.4f\n" b.Benchlib.name b.Benchlib.tau;
       List.iter
         (fun (label, program) ->
            let device = Benchlib.device_for_program program in
            let per_config =
              Benchlib.Telemetry.row ~experiment:"fig10"
                ~row:(b.Benchlib.name ^ " " ^ label)
                (fun () -> jsd_series ~rng ~device ~tau:b.Benchlib.tau program)
            in
            print_series (b.Benchlib.name ^ " " ^ label) per_config;
            let impr = improvement per_config in
            totals := (b.Benchlib.name, impr) :: !totals;
            Printf.printf "  Full-Opt reduces JSD vs Baseline by %.1f%% on average\n" impr)
         b.Benchlib.instances)
    (Benchlib.sim_suite ());
  print_newline ();
  List.iter
    (fun name ->
       let mine = List.filter (fun (n, _) -> n = name) !totals in
       let avg =
         Stats.mean (Array.of_list (List.map snd mine))
       in
       Printf.printf "%s: average JSD reduction %.1f%%\n" name avg)
    [ "DS"; "MC"; "GS"; "VS" ]

let run_hw () =
  Benchlib.header
    "Fig. 10 (rows 5-7) — hardware-structure impact: same programs on other lattices";
  let rng = Rng.create 4343 in
  let shapes_for modes =
    match modes with
    | 8 -> [ (3, 3); (2, 5); (2, 4) ]
    | 6 -> [ (3, 2); (2, 3); (1, 6) ]
    | _ -> [ (3, (modes + 2) / 3) ]
  in
  List.iter
    (fun b ->
       match b.Benchlib.instances with
       | [] -> ()
       | (label, program) :: _ ->
         Printf.printf "\n[%s %s] tau = %.4f\n" b.Benchlib.name label b.Benchlib.tau;
         List.iter
           (fun (r, c) ->
              let device = Lattice.create ~rows:r ~cols:c in
              let per_config = jsd_series ~rng ~device ~tau:b.Benchlib.tau program in
              print_series (Printf.sprintf "%dx%d lattice" r c) per_config;
              Printf.printf "  Full-Opt reduces JSD vs Baseline by %.1f%% on average\n"
                (improvement per_config))
           (shapes_for (Runner.program_modes program)))
    (Benchlib.sim_suite ~instances:1 ())
