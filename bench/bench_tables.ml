(* Tables I, II and III of the paper. *)

module Rng = Bose_util.Rng
module Stats = Bose_util.Stats
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Circuit = Bose_circuit.Circuit
module Plan = Bose_decomp.Plan
open Bosehedral

(* Table I: gate counts of the fully decomposed benchmarks. *)
let table1 () =
  Benchlib.header "Table I — benchmark information (gate counts, 24 qumodes)";
  Printf.printf "%-10s %8s %10s %13s %14s %13s\n" "Benchmark" "Qumode#" "Squeezing"
    "Displacement" "Phase Shifter" "Beamsplitter";
  List.iter
    (fun b ->
       (* Gate counts are instance-independent at fixed qumode count;
          report the first instance. *)
       match b.Benchlib.instances with
       | [] -> ()
       | (_, program) :: _ ->
         Benchlib.Telemetry.row ~experiment:"table1" ~row:b.Benchlib.name @@ fun () ->
         let device = Benchlib.device_for_program program in
         let counts = Runner.gate_counts program ~device in
         (* Count the MZI phase shifters the way the paper does: one per
            rotation (the final Λ phases fold into measurement). *)
         let n = Runner.program_modes program in
         let mzi_phases = n * (n - 1) / 2 in
         Printf.printf "%-10s %8d %10d %13d %14d %13d\n" b.Benchlib.name n
           counts.Circuit.squeezing counts.Circuit.displacement mzi_phases
           counts.Circuit.beamsplitter)
    (Benchlib.paper_suite ())

(* Table II: beamsplitter reduction and approximated unitary fidelity
   per configuration, averaged over the benchmark instances. *)
let table2 () =
  Benchlib.header
    "Table II — beamsplitter reduction and approximated unitary fidelity (24 qumodes, 6x6)";
  Printf.printf "%-18s %9s %12s %10s %18s\n" "Benchmark&Fidelity" "Rot-Cut" "Decomp-Opt"
    "Full-Opt" "(avg BS# Full-Opt)";
  let rng = Rng.create 99 in
  List.iter
    (fun b ->
       Benchlib.Telemetry.row ~experiment:"table2" ~row:b.Benchlib.name @@ fun () ->
       let reductions config =
         List.map
           (fun (_, program) ->
              let device = Benchlib.device_for_program program in
              let compiled =
                Compiler.compile ~rng ~device ~config ~tau:b.Benchlib.tau
                  program.Runner.unitary
              in
              (Compiler.beamsplitter_reduction compiled,
               float_of_int (Compiler.beamsplitters_kept compiled)))
           b.Benchlib.instances
       in
       let avg xs = Stats.mean (Array.of_list xs) in
       let rot = avg (List.map fst (reductions Config.Rot_cut)) in
       let dec = avg (List.map fst (reductions Config.Decomp_opt)) in
       let full = reductions Config.Full_opt in
       Printf.printf "%-4s %6.2f%%       %6.1f%% %10.1f%% %9.1f%% %13.0f\n" b.Benchlib.name
         (100. *. b.Benchlib.tau) (100. *. rot) (100. *. dec)
         (100. *. avg (List.map fst full))
         (avg (List.map snd full)))
    (Benchlib.paper_suite ())

(* Table III: scalability of the full optimization at fidelity 0.95 on
   3×(N/3) devices, averaged over random unitaries. *)
let table3 ?(sizes = [ 10; 15; 20; 60; 100; 200; 500 ]) () =
  Benchlib.header "Table III — performance at different problem scales (fidelity = 0.95)";
  Printf.printf "%-9s %14s %13s %12s\n" "Qumode#" "BS gate# drop" "Decomp time" "Total time";
  let rng = Rng.create 555 in
  List.iter
    (fun n ->
       Benchlib.Telemetry.row ~experiment:"table3" ~row:(string_of_int n) @@ fun () ->
       let trials = if n <= 100 then 5 else if n <= 200 then 2 else 1 in
       let effort = if n <= 60 then Compiler.Standard else Compiler.Fast in
       let device = Lattice.create ~rows:3 ~cols:((n + 2) / 3) in
       let results =
         List.init trials (fun _ ->
             let u = Unitary.haar_random rng n in
             let compiled =
               Compiler.compile ~effort ~rng ~device ~config:Config.Full_opt ~tau:0.95 u
             in
             (Compiler.beamsplitter_reduction compiled,
              compiled.Compiler.timings.Compiler.decomposition_s,
              compiled.Compiler.timings.Compiler.total_s))
       in
       let avg f = Stats.mean (Array.of_list (List.map f results)) in
       Printf.printf "%-9d %13.1f%% %12.3fs %11.3fs\n" n
         (100. *. avg (fun (r, _, _) -> r))
         (avg (fun (_, d, _) -> d))
         (avg (fun (_, _, t) -> t)))
    sizes
