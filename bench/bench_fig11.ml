(* Fig. 11: end-to-end application performance, Baseline vs Full-Opt,
   at the exactly-simulable scale. *)

module Rng = Bose_util.Rng
module Dist = Bose_util.Dist
module Stats = Bose_util.Stats
module Cx = Bose_linalg.Cx
module Lattice = Bose_hardware.Lattice
module Noise = Bose_circuit.Noise
open Bose_apps
open Bosehedral

let compile_and_run ?(realizations = 8) ~rng ~config ~tau ~loss program =
  let device = Benchlib.device_for_program program in
  let max_photons = Benchlib.max_photons_for program in
  let compiled = Compiler.compile ~rng ~device ~config ~tau program.Runner.unitary in
  Runner.noisy_distribution ~realizations ~rng ~noise:(Noise.uniform loss) ~max_photons
    compiled program

(* Planted-structure graphs make success measurable at 8 vertices. *)
let planted_graph rng =
  let g = ref (Graph.create 8) in
  let clique = [ 0; 1; 2; 3 ] in
  List.iter
    (fun a -> List.iter (fun b -> if a < b then g := Graph.add_edge !g a b) clique)
    clique;
  (* Sparse background. *)
  List.iter
    (fun (a, b) -> if not (Graph.has_edge !g a b) then g := Graph.add_edge !g a b)
    [ (4, 5); (5, 6); (6, 7); (3, 4) ];
  (* A couple of random extra edges for variety. *)
  for _ = 1 to 2 do
    let a = Rng.int rng 8 and b = Rng.int rng 8 in
    if a <> b && not (Graph.has_edge !g a b) then g := Graph.add_edge !g a b
  done;
  !g

let fig11a () =
  Benchlib.header "Fig. 11a — dense subgraph: end-to-end success probability";
  let rng = Rng.create 111 in
  let k = 4 in
  let shots = 3000 in
  let improvements = ref [] in
  List.iter
    (fun instance ->
       let g = planted_graph rng in
       let program = Encoding.encode ~mean_photons:3.0 g in
       Printf.printf "\ninstance %d: %d edges, optimum density %.2f\n" instance
         (Graph.edge_count g)
         (snd (Graph.densest_subgraph_of_size g k));
       Printf.printf "%-10s" "loss";
       List.iter (fun l -> Printf.printf " %8.2f" l) Benchlib.losses;
       print_newline ();
       let rates config =
         List.map
           (fun loss ->
              let dist = compile_and_run ~rng ~config ~tau:0.999 ~loss program in
              Dense_subgraph.success_rate (Dense_subgraph.evaluate ~rng ~shots ~k g dist))
           Benchlib.losses
       in
       let base = rates Config.Baseline in
       let full = rates Config.Full_opt in
       Printf.printf "%-10s" "Baseline";
       List.iter (fun r -> Printf.printf " %8.3f" r) base;
       print_newline ();
       Printf.printf "%-10s" "Full-Opt";
       List.iter (fun r -> Printf.printf " %8.3f" r) full;
       print_newline ();
       List.iter2
         (fun b f -> if b > 1e-9 then improvements := ((f -. b) /. b) :: !improvements)
         base full)
    [ 1; 2 ];
  Printf.printf "\naverage end-to-end success-probability increase: %.1f%%\n"
    (100. *. Stats.mean (Array.of_list !improvements))

(* Sparse background with one planted triangle and no other triangle. *)
let planted_triangle rng =
  let g = ref (Graph.create 8) in
  List.iter (fun (a, b) -> g := Graph.add_edge !g a b)
    [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (5, 6); (6, 7); (2, 3) ];
  (* One extra random edge that keeps the triangle unique. *)
  let ok a b =
    a <> b && (not (Graph.has_edge !g a b))
    && (let h = Graph.add_edge !g a b in
        Graph.max_clique_size h = 3
        && Graph.subgraph_density h [ 0; 1; 2 ] = 1.)
  in
  let rec add tries =
    if tries > 0 then begin
      let a = Rng.int rng 8 and b = Rng.int rng 8 in
      if ok a b then g := Graph.add_edge !g a b else add (tries - 1)
    end
  in
  add 20;
  !g

let fig11b () =
  Benchlib.header "Fig. 11b — maximum clique: end-to-end success probability";
  let rng = Rng.create 222 in
  let shots = 3000 in
  let improvements = ref [] in
  List.iter
    (fun seed ->
       (* A unique planted triangle in a sparse background, evaluated in
          shrink-only mode: success requires the GBS clicks themselves to
          cover the clique — the small-scale analogue of the paper's
          ≥10-vertex cliques in 24-vertex graphs, where the classical
          local search cannot recover from an uninformative seed. *)
       let grng = Rng.create seed in
       let g = planted_triangle grng in
       let target = 3 in
       let program = Encoding.encode ~mean_photons:3.0 g in
       Printf.printf "\ngraph seed %d: %d edges, clique number %d\n" seed
         (Graph.edge_count g) target;
       Printf.printf "%-10s" "loss";
       List.iter (fun l -> Printf.printf " %8.2f" l) Benchlib.losses;
       print_newline ();
       let rates config =
         List.map
           (fun loss ->
              let dist = compile_and_run ~rng ~config ~tau:0.9996 ~loss program in
              Max_clique.success_rate
                (Max_clique.evaluate ~expand:false ~rng ~shots ~target g dist))
           Benchlib.losses
       in
       let base = rates Config.Baseline in
       let full = rates Config.Full_opt in
       Printf.printf "%-10s" "Baseline";
       List.iter (fun r -> Printf.printf " %8.3f" r) base;
       print_newline ();
       Printf.printf "%-10s" "Full-Opt";
       List.iter (fun r -> Printf.printf " %8.3f" r) full;
       print_newline ();
       List.iter2
         (fun b f -> if b > 1e-9 then improvements := ((f -. b) /. b) :: !improvements)
         base full)
    [ 31; 47 ];
  Printf.printf "\naverage end-to-end success-probability increase: %.1f%%\n"
    (100. *. Stats.mean (Array.of_list !improvements))

let fig11c () =
  Benchlib.header "Fig. 11c — graph similarity: feature-cluster separation";
  let rng = Rng.create 333 in
  let loss = 0.10 in
  (* Two highly different seed graphs, each perturbed into a family. *)
  let seed1 = Graph.random rng ~n:8 ~p:0.85 in
  let seed2 = Graph.random rng ~n:8 ~p:0.35 in
  let family seed_graph = seed_graph :: List.init 5 (fun _ -> Graph.perturb rng seed_graph ~flips:1) in
  let g1 = family seed1 and g2 = family seed2 in
  let features config graphs =
    List.map
      (fun g ->
         let program = Encoding.encode ~mean_photons:2.5 g in
         (* Averaging more dropout realizations keeps the within-cluster
            spread down so the metric reflects graph identity. *)
         let dist = compile_and_run ~realizations:20 ~rng ~config ~tau:0.999 ~loss program in
         Graph_similarity.feature_vector dist)
      graphs
  in
  let report config =
    let f1 = features config g1 and f2 = features config g2 in
    let sep = Graph_similarity.separation f1 f2 in
    let centroid_distance =
      Graph_similarity.euclidean (Graph_similarity.centroid f1) (Graph_similarity.centroid f2)
    in
    Printf.printf "%-10s cluster separation %.3f, centroid distance %.5f\n"
      (Config.name config) sep centroid_distance;
    centroid_distance
  in
  Printf.printf "loss = %.2f, families of %d graphs each\n" loss (List.length g1);
  let base = report Config.Baseline in
  let full = report Config.Full_opt in
  Printf.printf "\ncentroid distance increased by %.0f%% with Full-Opt\n"
    (100. *. ((full -. base) /. Float.max base 1e-12))

(* Spectrum of inelastic events only: the elastic (vacuum) line sits at
   E = 0 for every configuration and would dominate the correlation;
   the paper's Fig. 11d histograms are of sampled photon energies. *)
let inelastic dist =
  let positive =
    List.filter
      (fun (pattern, _) ->
         pattern <> Bose_gbs.Fock.tail && Bose_util.Combin.pattern_total pattern > 0)
      (Dist.to_list dist)
  in
  Dist.of_weights positive

let fig11d () =
  Benchlib.header "Fig. 11d — vibration spectra: Pearson correlation vs standard";
  let rng = Rng.create 444 in
  let mol = Vibronic.synthetic rng ~modes:6 in
  let grid = Vibronic.default_grid mol in
  let gamma = 90. in
  let loss = 0.08 in
  List.iter
    (fun temperature ->
       let program = Vibronic.program mol ~temperature in
       let max_photons = Benchlib.max_photons_for program in
       let ideal = Runner.ideal_distribution ~max_photons program in
       let standard = Vibronic.spectrum mol ~grid ~gamma (inelastic ideal) in
       Printf.printf "\n%.0f K (loss %.2f):\n" temperature loss;
       List.iter
         (fun config ->
            let dist = compile_and_run ~rng ~config ~tau:0.995 ~loss program in
            let spectrum = Vibronic.spectrum mol ~grid ~gamma (inelastic dist) in
            Printf.printf "  %-10s Pearson correlation %.3f\n" (Config.name config)
              (Vibronic.correlation standard spectrum))
         [ Config.Baseline; Config.Full_opt ])
    [ 1000.; 750. ]

let run () =
  fig11a ();
  fig11b ();
  fig11c ();
  fig11d ()
