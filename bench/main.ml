(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md for the experiment index).

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table2    # one experiment
     dune exec bench/main.exe -- table3-full   # include the 500-qumode row

   Experiments: table1 table2 table3 table3-full fig10 fig10-hw fig11a
   fig11b fig11c fig11d ablation micro all *)

let experiments =
  [
    ("table1", fun () -> Bench_tables.table1 ());
    ("table2", fun () -> Bench_tables.table2 ());
    ("table3", fun () -> Bench_tables.table3 ~sizes:[ 10; 15; 20; 60; 100; 200 ] ());
    ("table3-full", fun () -> Bench_tables.table3 ());
    ("fig10", fun () -> Bench_fig10.run ());
    ("fig10-hw", fun () -> Bench_fig10.run_hw ());
    ("fig11a", fun () -> Bench_fig11.fig11a ());
    ("fig11b", fun () -> Bench_fig11.fig11b ());
    ("fig11c", fun () -> Bench_fig11.fig11c ());
    ("fig11d", fun () -> Bench_fig11.fig11d ());
    ("ablation", fun () -> Bench_ablation.run ());
    ("micro", fun () -> Bench_micro.run ());
  ]

let run_all () =
  (* Everything the paper reports, at default sizes (Table III stops at
     200 qumodes here; use `table3-full` for the 500-qumode row). *)
  List.iter
    (fun name -> (List.assoc name experiments) ())
    [
      "table1"; "table2"; "table3"; "fig10"; "fig10-hw"; "fig11a"; "fig11b"; "fig11c";
      "fig11d"; "ablation"; "micro";
    ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Span times in the per-row telemetry reports are wall-clock. *)
  Bose_obs.Obs.set_clock Unix.gettimeofday;
  let started = Unix.gettimeofday () in
  (match args with
   | [] | [ "all" ] -> run_all ()
   | names ->
     List.iter
       (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
            Printf.eprintf "unknown experiment %S; available: all %s\n" name
              (String.concat " " (List.map fst experiments));
            exit 1)
       names);
  Benchlib.Telemetry.flush ();
  Printf.printf "\n[bench] done in %.1fs\n" (Unix.gettimeofday () -. started)
