(* Shared definitions for the benchmark harness: the paper's four
   benchmark applications at compile scale (24 qumodes, §VII-A Table I)
   and at the exactly-simulable scale used for the distribution-level
   experiments (see DESIGN.md, substitutions). *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Lattice = Bose_hardware.Lattice
module Obs = Bose_obs.Obs
open Bosehedral

(* Per-row telemetry: every benchmark row runs inside [Telemetry.row],
   which opens a fresh metrics window and attaches the captured
   [Obs.Report.t] to the row. [Telemetry.flush] (called by bench/main.ml
   on exit) writes all rows to BENCH_TELEMETRY.json — override the path
   with BOSE_BENCH_JSON — so benchmark trajectories carry pass-level
   breakdowns alongside the printed tables. *)
module Telemetry = struct
  type entry = { experiment : string; row : string; report : Obs.Report.t }

  let rows : entry list ref = ref []

  let out_path () =
    match Sys.getenv_opt "BOSE_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_TELEMETRY.json"

  let row ~experiment ~row:label f =
    let was_enabled = Obs.enabled () in
    Obs.reset ();
    Obs.enable ();
    let finish () =
      rows := { experiment; row = label; report = Obs.Report.capture () } :: !rows;
      Obs.reset ();
      if not was_enabled then Obs.disable ()
    in
    match f () with
    | v -> finish (); v
    | exception e -> finish (); raise e

  let flush () =
    match List.rev !rows with
    | [] -> ()
    | entries ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\"version\":1,\"rows\":[";
      List.iteri
        (fun i e ->
           if i > 0 then Buffer.add_char buf ',';
           (* Labels are printf-generated ASCII; escape the quotes and
              backslashes anyway. *)
           let escape s =
             String.concat ""
               (List.map
                  (function
                    | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
                  (List.init (String.length s) (String.get s)))
           in
           Buffer.add_string buf
             (Printf.sprintf "{\"experiment\":\"%s\",\"row\":\"%s\",\"report\":%s}"
                (escape e.experiment) (escape e.row)
                (Obs.Report.to_json e.report)))
        entries;
      Buffer.add_string buf "]}\n";
      let oc = open_out (out_path ()) in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\n[bench] telemetry for %d rows written to %s\n"
        (List.length entries) (out_path ());
      rows := []
end

type benchmark = {
  name : string;  (** DS / MC / GS / VS *)
  tau : float;  (** Table II accuracy threshold for this benchmark. *)
  instances : (string * Runner.program) list;
}

let graph_program rng ~n ~mean_photons =
  (* Edge probability in the paper's 0.7–0.9 range. *)
  let p = 0.7 +. Rng.float rng 0.2 in
  let g = Bose_apps.Graph.random rng ~n ~p in
  (g, Bose_apps.Encoding.encode ~mean_photons g)

let graph_instances rng ~count ~n ~mean_photons =
  List.init count (fun i ->
      let g, program = graph_program rng ~n ~mean_photons in
      (Printf.sprintf "graph%d(%d edges)" (i + 1) (Bose_apps.Graph.edge_count g), program))

let vibronic_instances rng ~modes ~temperatures =
  let molecule = Bose_apps.Vibronic.synthetic rng ~modes in
  List.map
    (fun t ->
       (Printf.sprintf "%.0fK" t, Bose_apps.Vibronic.program molecule ~temperature:t))
    temperatures

(* The paper's benchmark suite: 24-qumode programs, four instances each.
   Used for compile-only experiments (Tables I and II). *)
let paper_suite ?(instances = 4) () =
  let rng = Rng.create 20240604 in
  let graphs name tau =
    { name; tau; instances = graph_instances rng ~count:instances ~n:24 ~mean_photons:6. }
  in
  [
    graphs "DS" 0.9990;
    graphs "MC" 0.9996;
    graphs "GS" 0.9990;
    {
      name = "VS";
      tau = 0.98;
      instances = vibronic_instances rng ~modes:24 ~temperatures:[ 1000.; 750.; 500.; 250. ];
    };
  ]

(* Simulable-scale suite for the JSD experiments: 8-qumode graphs and a
   6-mode molecule, where the exact lossy output distributions are
   computable. The VS accuracy threshold is scale-matched: a 6-mode
   circuit has ~18× fewer beamsplitters than a 24-mode one, so the
   acceptable algorithmic error shrinks proportionally (EXPERIMENTS.md). *)
let sim_suite ?(instances = 2) () =
  let rng = Rng.create 777 in
  let graphs name tau =
    { name; tau; instances = graph_instances rng ~count:instances ~n:8 ~mean_photons:2.5 }
  in
  [
    graphs "DS" 0.9990;
    graphs "MC" 0.9996;
    graphs "GS" 0.9990;
    {
      name = "VS";
      tau = 0.995;
      instances = vibronic_instances rng ~modes:6 ~temperatures:[ 1000.; 750. ];
    };
  ]

let device_for_program program =
  match Runner.program_modes program with
  | 8 -> Lattice.create ~rows:3 ~cols:3
  | 6 -> Lattice.create ~rows:3 ~cols:2
  | 24 -> Lattice.create ~rows:6 ~cols:6
  | n ->
    (* Smallest 3-row lattice that fits. *)
    Lattice.create ~rows:3 ~cols:((n + 2) / 3)

let losses = [ 0.01; 0.04; 0.07; 0.10 ]

let max_photons_for program = if Runner.program_modes program >= 8 then 5 else 6

let hline width = print_endline (String.make width '-')

let header title =
  print_newline ();
  hline 78;
  Printf.printf "%s\n" title;
  hline 78
