(* Shared definitions for the benchmark harness: the paper's four
   benchmark applications at compile scale (24 qumodes, §VII-A Table I)
   and at the exactly-simulable scale used for the distribution-level
   experiments (see DESIGN.md, substitutions). *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Lattice = Bose_hardware.Lattice
open Bosehedral

type benchmark = {
  name : string;  (** DS / MC / GS / VS *)
  tau : float;  (** Table II accuracy threshold for this benchmark. *)
  instances : (string * Runner.program) list;
}

let graph_program rng ~n ~mean_photons =
  (* Edge probability in the paper's 0.7–0.9 range. *)
  let p = 0.7 +. Rng.float rng 0.2 in
  let g = Bose_apps.Graph.random rng ~n ~p in
  (g, Bose_apps.Encoding.encode ~mean_photons g)

let graph_instances rng ~count ~n ~mean_photons =
  List.init count (fun i ->
      let g, program = graph_program rng ~n ~mean_photons in
      (Printf.sprintf "graph%d(%d edges)" (i + 1) (Bose_apps.Graph.edge_count g), program))

let vibronic_instances rng ~modes ~temperatures =
  let molecule = Bose_apps.Vibronic.synthetic rng ~modes in
  List.map
    (fun t ->
       (Printf.sprintf "%.0fK" t, Bose_apps.Vibronic.program molecule ~temperature:t))
    temperatures

(* The paper's benchmark suite: 24-qumode programs, four instances each.
   Used for compile-only experiments (Tables I and II). *)
let paper_suite ?(instances = 4) () =
  let rng = Rng.create 20240604 in
  let graphs name tau =
    { name; tau; instances = graph_instances rng ~count:instances ~n:24 ~mean_photons:6. }
  in
  [
    graphs "DS" 0.9990;
    graphs "MC" 0.9996;
    graphs "GS" 0.9990;
    {
      name = "VS";
      tau = 0.98;
      instances = vibronic_instances rng ~modes:24 ~temperatures:[ 1000.; 750.; 500.; 250. ];
    };
  ]

(* Simulable-scale suite for the JSD experiments: 8-qumode graphs and a
   6-mode molecule, where the exact lossy output distributions are
   computable. The VS accuracy threshold is scale-matched: a 6-mode
   circuit has ~18× fewer beamsplitters than a 24-mode one, so the
   acceptable algorithmic error shrinks proportionally (EXPERIMENTS.md). *)
let sim_suite ?(instances = 2) () =
  let rng = Rng.create 777 in
  let graphs name tau =
    { name; tau; instances = graph_instances rng ~count:instances ~n:8 ~mean_photons:2.5 }
  in
  [
    graphs "DS" 0.9990;
    graphs "MC" 0.9996;
    graphs "GS" 0.9990;
    {
      name = "VS";
      tau = 0.995;
      instances = vibronic_instances rng ~modes:6 ~temperatures:[ 1000.; 750. ];
    };
  ]

let device_for_program program =
  match Runner.program_modes program with
  | 8 -> Lattice.create ~rows:3 ~cols:3
  | 6 -> Lattice.create ~rows:3 ~cols:2
  | 24 -> Lattice.create ~rows:6 ~cols:6
  | n ->
    (* Smallest 3-row lattice that fits. *)
    Lattice.create ~rows:3 ~cols:((n + 2) / 3)

let losses = [ 0.01; 0.04; 0.07; 0.10 ]

let max_photons_for program = if Runner.program_modes program >= 8 then 5 else 6

let hline width = print_endline (String.make width '-')

let header title =
  print_newline ();
  hline 78;
  Printf.printf "%s\n" title;
  hline 78
