(* Bechamel micro-benchmarks of the compiler kernels. *)

module Rng = Bose_util.Rng
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
module Lattice = Bose_hardware.Lattice
module Embedding = Bose_hardware.Embedding
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate
module Mapping = Bose_mapping.Mapping
open Bechamel
open Toolkit

let benchmarks () =
  let n = 24 in
  let u = Unitary.haar_random (Rng.create 1) n in
  let device = Lattice.create ~rows:6 ~cols:6 in
  let pattern = Embedding.for_program device n in
  let plan = Eliminate.decompose pattern u in
  [
    Test.make ~name:"decompose/chain-24" (Staged.stage (fun () ->
        ignore (Eliminate.decompose_baseline u)));
    Test.make ~name:"decompose/tree-24" (Staged.stage (fun () ->
        ignore (Eliminate.decompose pattern u)));
    Test.make ~name:"reconstruct-24" (Staged.stage (fun () ->
        ignore (Plan.reconstruct plan)));
    Test.make ~name:"fidelity-24" (Staged.stage (fun () ->
        ignore (Plan.fidelity plan u)));
    Test.make ~name:"mapping-optimize-24" (Staged.stage (fun () ->
        ignore (Mapping.optimize ~candidate_ks:[ 12 ] pattern u)));
    Test.make ~name:"haar-random-24" (Staged.stage (fun () ->
        ignore (Unitary.haar_random (Rng.create 2) n)));
  ]

let run () =
  Benchlib.header "Micro-benchmarks (Bechamel): compiler kernels at 24 qumodes";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.6) ~kde:(Some 500) () in
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       Hashtbl.iter
         (fun name result ->
            let ols =
              Analyze.one
                (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
                Instance.monotonic_clock result
            in
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
            | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
         results)
    (benchmarks ())
