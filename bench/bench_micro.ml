(* Bechamel micro-benchmarks of the compiler kernels. *)

module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary
module Givens = Bose_linalg.Givens
module Lattice = Bose_hardware.Lattice
module Embedding = Bose_hardware.Embedding
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate
module Clements = Bose_decomp.Clements
module Mapping = Bose_mapping.Mapping
module Gaussian = Bose_gbs.Gaussian
module Sampler = Bose_gbs.Sampler
module Pool = Bose_par.Pool
module Obs = Bose_obs.Obs
open Bechamel
open Toolkit

(* Row gauges: Telemetry.row captures the metrics window per row, so
   these land in each row's report in BENCH_TELEMETRY.json where
   bench/check_regression.ml compares them against bench_floors.json. *)
let g_cold_us = Obs.Gauge.make "bench.cold_us"
let g_warm_us = Obs.Gauge.make "bench.warm_us"
let g_warm_speedup = Obs.Gauge.make "bench.warm_speedup"
let g_wall_s = Obs.Gauge.make "bench.wall_s"
let g_par_speedup = Obs.Gauge.make "bench.parallel_speedup"
let g_serve_rps = Obs.Gauge.make "bench.serve_rps"
let g_text_load_us = Obs.Gauge.make "bench.text_load_us"
let g_bin_load_us = Obs.Gauge.make "bench.binary_load_us"
let g_bin_speedup = Obs.Gauge.make "bench.binary_load_speedup"
let g_rot_melems = Obs.Gauge.make "bench.rot_melems_s"
let g_intra_speedup = Obs.Gauge.make "bench.intra_speedup"
let g_analyze_per_s = Obs.Gauge.make "bench.analyze_per_s"
let g_target_rotations = Obs.Gauge.make "bench.target_rotations"
let g_target_kept = Obs.Gauge.make "bench.target_kept"
let g_target_fidelity = Obs.Gauge.make "bench.target_fidelity"
let g_target_depth = Obs.Gauge.make "bench.target_depth"

(* Boxed get/set reference implementations: what the flat kernels are
   measured against, and what they replaced. *)
let naive_mul a b =
  let open Cx in
  let dst = Mat.create (Mat.rows a) (Mat.cols b) in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols b - 1 do
      let acc = ref Cx.zero in
      for k = 0 to Mat.cols a - 1 do
        acc := !acc +: (Mat.get a i k *: Mat.get b k j)
      done;
      Mat.set dst i j !acc
    done
  done;
  dst

let naive_rot_cols u ~m ~n ~theta ~phi =
  let open Cx in
  let c = Cx.re (cos theta) and s = Cx.re (sin theta) in
  let em = Cx.exp_i phi in
  for i = 0 to Mat.rows u - 1 do
    let um = Mat.get u i m and un = Mat.get u i n in
    Mat.set u i m ((em *: c *: um) +: (em *: s *: un));
    Mat.set u i n (Cx.neg s *: um +: (c *: un))
  done

let benchmarks () =
  let n = 24 in
  let u = Unitary.haar_random (Rng.create 1) n in
  let device = Lattice.create ~rows:6 ~cols:6 in
  let pattern = Embedding.for_program device n in
  let plan = Eliminate.decompose pattern u in
  let a64 = Unitary.haar_random (Rng.create 3) 64 in
  let b64 = Unitary.haar_random (Rng.create 4) 64 in
  let dst64 = Mat.create 64 64 in
  let u32 = Unitary.haar_random (Rng.create 5) 32 in
  let rot32 = Mat.copy u32 in
  let ws = Mat.workspace () in
  [
    Test.make ~name:"decompose/chain-24" (Staged.stage (fun () ->
        ignore (Eliminate.decompose_baseline u)));
    Test.make ~name:"decompose/tree-24" (Staged.stage (fun () ->
        ignore (Eliminate.decompose pattern u)));
    Test.make ~name:"reconstruct-24" (Staged.stage (fun () ->
        ignore (Plan.reconstruct plan)));
    Test.make ~name:"fidelity-24" (Staged.stage (fun () ->
        ignore (Plan.fidelity plan u)));
    Test.make ~name:"mapping-optimize-24" (Staged.stage (fun () ->
        ignore (Mapping.optimize ~candidate_ks:[ 12 ] pattern u)));
    Test.make ~name:"haar-random-24" (Staged.stage (fun () ->
        ignore (Unitary.haar_random (Rng.create 2) n)));
    (* Flat-kernel rows, each paired with its boxed get/set reference so
       the table shows the layout speedup directly. *)
    Test.make ~name:"gemm-64" (Staged.stage (fun () -> Mat.gemm ~dst:dst64 a64 b64));
    Test.make ~name:"gemm-64-reference" (Staged.stage (fun () ->
        ignore (naive_mul a64 b64)));
    Test.make ~name:"givens-rot-32" (Staged.stage (fun () ->
        Mat.rot_cols_t rot32 ~m:7 ~n:23 ~theta:0.3 ~phi:1.1));
    Test.make ~name:"givens-rot-32-reference" (Staged.stage (fun () ->
        naive_rot_cols rot32 ~m:7 ~n:23 ~theta:0.3 ~phi:1.1));
    Test.make ~name:"clements-32" (Staged.stage (fun () ->
        ignore (Clements.decompose u32)));
    Test.make ~name:"clements-32-ws" (Staged.stage (fun () ->
        ignore (Clements.decompose ~ws u32)));
  ]

(* Warm-cache recompile speedup: compile a job cold through a shared
   artifact cache, then recompile it several times warm — every pass
   replays its recorded artifact — and report cold/warm wall-clock.
   Each row runs inside Telemetry.row, so the cache_hits/cache_misses
   gauges land in BENCH_TELEMETRY.json next to the timings. *)
let cache_recompile_row ~n ~rows ~cols =
  Benchlib.Telemetry.row ~experiment:"micro" ~row:(Printf.sprintf "compile-cache-%d" n)
  @@ fun () ->
  let device = Lattice.create ~rows ~cols in
  let u = Unitary.haar_random (Rng.create 6) n in
  let cache = Bosehedral.Pipeline.Cache.create () in
  let compile () =
    ignore
      (Bosehedral.Compiler.compile ~tau:0.99 ~cache ~rng:(Rng.create 7) ~device
         ~config:Bosehedral.Config.Full_opt u)
  in
  let t0 = Unix.gettimeofday () in
  compile ();
  let cold_s = Unix.gettimeofday () -. t0 in
  let warm_runs = 5 in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to warm_runs do
    compile ()
  done;
  let warm_s = (Unix.gettimeofday () -. t1) /. float_of_int warm_runs in
  let speedup = if warm_s > 0. then cold_s /. warm_s else Float.infinity in
  Obs.Gauge.set g_cold_us (1e6 *. cold_s);
  Obs.Gauge.set g_warm_us (1e6 *. warm_s);
  Obs.Gauge.set g_warm_speedup speedup;
  Printf.printf "compile-cache-%-14d cold %8.1f us, warm %8.1f us, %8.2fx speedup\n" n
    (1e6 *. cold_s) (1e6 *. warm_s) speedup

(* Sustained serve throughput: drive the `bosec serve` request engine
   in-process (no socket — this measures the service, not the kernel's
   socket stack) against a warm disk cache. Every request after the
   warm-up is a disk hit: fingerprint the job, read + validate the
   stored object, render the reply. The floor in bench_floors.json
   binds requests/sec. *)
let serve_sustained_row () =
  Benchlib.Telemetry.row ~experiment:"micro" ~row:"serve-sustained" @@ fun () ->
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bosec-serve-bench.%d" (Unix.getpid ()))
  in
  let state = Bose_serve.Serve.create ~cache_dir:dir () in
  let distinct = 4 in
  let req k =
    Printf.sprintf
      {|{"id":%d,"op":"compile","params":{"modes":8,"rows":3,"cols":3,"seed":%d}}|} k
      (100 + (k mod distinct))
  in
  for k = 0 to distinct - 1 do
    ignore (Bose_serve.Serve.handle_line state (req k))
  done;
  let total = 200 in
  let t0 = Unix.gettimeofday () in
  for k = 0 to total - 1 do
    let reply = Bose_serve.Serve.handle_line state (req k) in
    assert (String.length reply > 0 && reply.[0] = '{')
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let rps = if wall > 0. then float_of_int total /. wall else Float.infinity in
  Obs.Gauge.set g_serve_rps rps;
  Printf.printf "serve-sustained (%d reqs, warm disk cache)  %9.1f req/s\n" total rps;
  Bose_serve.Serve.shutdown state;
  (* Best-effort temp-cache cleanup. *)
  let rm_files d =
    if Sys.file_exists d then
      Array.iter
        (fun f ->
           let p = Filename.concat d f in
           if not (Sys.is_directory p) then try Sys.remove p with Sys_error _ -> ())
        (Sys.readdir d)
  in
  List.iter rm_files
    [ Filename.concat dir "objects"; Filename.concat dir "quarantine"; dir ];
  List.iter
    (fun d -> try Sys.rmdir d with Sys_error _ -> ())
    [ Filename.concat dir "objects"; Filename.concat dir "quarantine"; dir ]

(* Artifact load latency, text vs binary: parse the same plan + unitary
   pair from both encodings. The binary path replaces hex-float
   scanning with plane blits + one FNV pass, which is where the disk
   cache's load-time speedup comes from; the floor in bench_floors.json
   binds the ratio. *)
let artifact_load_row ~n =
  Benchlib.Telemetry.row ~experiment:"micro" ~row:(Printf.sprintf "artifact-load-%d" n)
  @@ fun () ->
  let device = Lattice.create ~rows:6 ~cols:6 in
  let u = Unitary.haar_random (Rng.create 11) n in
  let pattern = Embedding.for_program device n in
  let plan = Eliminate.decompose pattern u in
  let ptext = Plan.to_string plan and pbin = Plan.to_binary_string plan in
  let utext = Unitary.to_string u and ubin = Unitary.to_binary_string u in
  let ok = function Ok _ -> () | Error _ -> assert false in
  let iters = 50 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  (* One warm round each so neither encoding pays first-touch costs. *)
  ok (Plan.of_string ptext);
  ok (Unitary.of_string utext);
  ok (Plan.of_string pbin);
  ok (Unitary.of_string ubin);
  let text_s = time (fun () -> ok (Plan.of_string ptext); ok (Unitary.of_string utext)) in
  let bin_s = time (fun () -> ok (Plan.of_string pbin); ok (Unitary.of_string ubin)) in
  let speedup = if bin_s > 0. then text_s /. bin_s else Float.infinity in
  Obs.Gauge.set g_text_load_us (1e6 *. text_s);
  Obs.Gauge.set g_bin_load_us (1e6 *. bin_s);
  Obs.Gauge.set g_bin_speedup speedup;
  Printf.printf "artifact-load-%-13d text %8.1f us, binary %8.1f us, %8.2fx speedup\n" n
    (1e6 *. text_s) (1e6 *. bin_s) speedup

(* Rotation-kernel throughput at sizes straddling the lock-release
   threshold (N >= Mat.blocking_threshold runs the blocking C entry
   points). Reported as million complex elements rotated per second;
   the floors are conservative lower bounds that catch a kernel
   falling off a cliff, not a tight performance pin. *)
let rot_throughput_row ~n =
  Benchlib.Telemetry.row ~experiment:"micro" ~row:(Printf.sprintf "rot-kernel-%d" n)
  @@ fun () ->
  let rng = Rng.create 13 in
  let u =
    Mat.init n n (fun _ _ ->
        let re, im = Rng.gaussian_pair rng in
        Cx.make re im)
  in
  let c = cos 0.3 and s = sin 0.3 in
  let ere = cos 1.1 and eim = sin 1.1 in
  let iters = max 64 (2_000_000 / n) in
  let locks0 = Mat.lock_releases () in
  let t0 = Unix.gettimeofday () in
  for k = 1 to iters do
    let m = k mod (n - 1) in
    Mat.rot_cols_t_cs u ~m ~n:(m + 1) ~c ~s ~ere ~eim
  done;
  let wall = Unix.gettimeofday () -. t0 in
  (* Each call rewrites two length-n columns: 2n complex elements. *)
  let melems =
    if wall > 0. then float_of_int (2 * n * iters) /. wall /. 1e6 else Float.infinity
  in
  Obs.Gauge.set g_rot_melems melems;
  let path = if Mat.lock_releases () > locks0 then "blocking" else "fast" in
  Printf.printf "rot-kernel-%-16d %9.1f Melem/s (%s path, %d iters)\n" n melems path
    iters

(* Fused sweep-kernel throughput: a whole commuting front of rotations
   (disjoint adjacent pairs, BLAS rotm-style) applied in one C call,
   versus rot-kernel-* which pays one call per rotation. Same gauge
   (bench.rot_melems_s) and the same conservative floors — the fused
   path must never fall below the per-rotation path's floor. *)
let sweep_throughput_row ~n =
  Benchlib.Telemetry.row ~experiment:"micro" ~row:(Printf.sprintf "sweep-kernel-%d" n)
  @@ fun () ->
  let rng = Rng.create 14 in
  let u =
    Mat.init n n (fun _ _ ->
        let re, im = Rng.gaussian_pair rng in
        Cx.make re im)
  in
  let rots = n / 2 in
  let seq = Mat.Rotseq.create ~capacity:rots () in
  let c = cos 0.3 and s = sin 0.3 in
  let ere = cos 1.1 and eim = sin 1.1 in
  for k = 0 to rots - 1 do
    let m = 2 * k in
    Mat.Rotseq.push seq ~m ~n:(m + 1) ~c ~s ~ere ~eim ~bound:n
  done;
  let iters = max 8 (4_000_000 / (n * rots)) in
  let locks0 = Mat.lock_releases () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Mat.sweep_cols_pre u seq ~rot_lo:0 ~rot_hi:rots ~row_lo:0 ~row_hi:n
  done;
  let wall = Unix.gettimeofday () -. t0 in
  (* Each pass rewrites two entries per (row, rotation) pair. *)
  let melems =
    if wall > 0. then float_of_int (2 * n * rots * iters) /. wall /. 1e6
    else Float.infinity
  in
  Obs.Gauge.set g_rot_melems melems;
  let path = if Mat.lock_releases () > locks0 then "blocking" else "fast" in
  Printf.printf "sweep-kernel-%-14d %9.1f Melem/s (%s path, %d rots/pass, %d iters)\n" n
    melems path rots iters

(* Dataflow-analysis throughput: full Flow.analyze reports (layering,
   liveness, feasibility BFS, budget intervals) over a synthetic
   N-mode plan with the Clements brickwork rotation pattern —
   N(N-1)/2 rotations, built directly so the row never pays an O(N^3)
   decomposition. The floor is analyses per second. *)
let analyze_row ~n ~rows ~cols =
  Benchlib.Telemetry.row ~experiment:"micro" ~row:(Printf.sprintf "analyze-%d" n)
  @@ fun () ->
  assert (rows * cols = n);
  let elements = ref [] in
  let count = ref 0 in
  for layer = 0 to n - 1 do
    let j = ref (layer mod 2) in
    while !j + 1 < n do
      incr count;
      elements :=
        {
          Bose_decomp.Plan.rotation =
            { Givens.m = !j; n = !j + 1; c = cos 0.3; s = sin 0.3; ere = 1.; eim = 0. };
          row = !count - 1;
        }
        :: !elements;
      j := !j + 2
    done
  done;
  let plan =
    {
      Bose_decomp.Plan.modes = n;
      elements = Array.of_list (List.rev !elements);
      lambda = Array.init n (fun _ -> Cx.one);
    }
  in
  let kept = Array.init (Array.length plan.Bose_decomp.Plan.elements) (fun i -> i mod 7 <> 0) in
  let backend =
    Bose_flow.Flow.backend
      ~coupling:(Bose_hardware.Coupling.of_lattice (Lattice.create ~rows ~cols))
      ~noise:(Bose_circuit.Noise.uniform 1e-4) ~min_transmission:0.2 ()
  in
  let iters = 10 in
  let t0 = Unix.gettimeofday () in
  let depth = ref 0 in
  for _ = 1 to iters do
    let r = Bose_flow.Flow.analyze ~kept ~backend plan in
    depth := r.Bose_flow.Flow.layers.Bose_flow.Flow.depth
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let per_s = if wall > 0. then float_of_int iters /. wall else Float.infinity in
  Obs.Gauge.set g_analyze_per_s per_s;
  Printf.printf "analyze-%-17d %9.1f analyses/s (depth %d, %d rotations)\n" n per_s
    !depth
    (Array.length plan.Bose_decomp.Plan.elements)

(* Parallel-scaling rows. Jobs values above the host's recommended
   domain count are skipped rather than reported: with more domains than
   cores the OCaml runtime's stop-the-world minor collections serialize
   the pool and the row would measure GC contention, not scaling. The
   speedup floors in bench_floors.json therefore only bind on multi-core
   runners (CI), and check_regression skips floors whose row is absent. *)
let scaling_jobs () =
  List.filter (fun j -> j <= Domain.recommended_domain_count ()) [ 1; 2; 4 ]

let batch_compile_scaling ~n ~rows ~cols ~job_count =
  let device = Lattice.create ~rows ~cols in
  let job_list =
    List.init job_count (fun k ->
        (Unitary.haar_random (Rng.create (50 + k)) n, Bosehedral.Config.Full_opt))
  in
  let base = ref 0. in
  List.iter
    (fun jobs ->
       Benchlib.Telemetry.row ~experiment:"micro"
         ~row:(Printf.sprintf "batch-compile-%d-jobs-%d" n jobs)
       @@ fun () ->
       let t0 = Unix.gettimeofday () in
       ignore
         (Bosehedral.Compiler.compile_batch ~tau:0.99 ~jobs ~rng:(Rng.create 8)
            ~device job_list);
       let wall = Unix.gettimeofday () -. t0 in
       if jobs = 1 then base := wall;
       let speedup = if wall > 0. then !base /. wall else 0. in
       Obs.Gauge.set g_wall_s wall;
       Obs.Gauge.set g_par_speedup speedup;
       Printf.printf "batch-compile-%-2d (%d jobs)  --jobs %d  %9.1f ms  %6.2fx\n" n
         job_count jobs (1e3 *. wall) speedup)
    (scaling_jobs ())

(* Intra-decomposition scaling: ONE Clements decomposition with the
   fused engine's bulk sweeps chunked over the pool, versus batch
   scaling above which parallelizes across independent compiles. Output
   is bit-identical at every jobs value (test/test_par.ml); only the
   wall clock moves. Speedup rows report bench.intra_speedup. *)
let clements_scaling ~n =
  let u = Unitary.haar_random (Rng.create 15) n in
  let base = ref 0. in
  List.iter
    (fun jobs ->
       Benchlib.Telemetry.row ~experiment:"micro"
         ~row:(Printf.sprintf "clements-%d-jobs-%d" n jobs)
       @@ fun () ->
       let with_pool f =
         if jobs > 1 then Pool.with_pool ~domains:jobs (fun p -> f (Some p)) else f None
       in
       let t0 = Unix.gettimeofday () in
       ignore (with_pool (fun pool -> Clements.decompose ?pool u));
       let wall = Unix.gettimeofday () -. t0 in
       if jobs = 1 then base := wall;
       let speedup = if wall > 0. then !base /. wall else 0. in
       Obs.Gauge.set g_wall_s wall;
       Obs.Gauge.set g_intra_speedup speedup;
       Printf.printf "clements-%-12d --jobs %d  %9.1f ms  %6.2fx\n" n jobs (1e3 *. wall)
         speedup)
    (scaling_jobs ())

(* The paper's N=500 tier end to end: one Compiler.compile with the
   pool threaded through the pass manager into the fused elimination.
   The jobs-4 intra_speedup floor (bench_floors.json) is the
   acceptance gate for intra-compile parallelism. *)
let intra_compile_scaling ~n ~rows ~cols =
  let device = Lattice.create ~rows ~cols in
  let u = Unitary.haar_random (Rng.create 16) n in
  let base = ref 0. in
  List.iter
    (fun jobs ->
       Benchlib.Telemetry.row ~experiment:"micro"
         ~row:(Printf.sprintf "intra-compile-%d-jobs-%d" n jobs)
       @@ fun () ->
       let with_pool f =
         if jobs > 1 then Pool.with_pool ~domains:jobs (fun p -> f (Some p)) else f None
       in
       let t0 = Unix.gettimeofday () in
       ignore
         (with_pool (fun pool ->
              Bosehedral.Compiler.compile ~tau:0.99 ?pool ~rng:(Rng.create 17) ~device
                ~config:Bosehedral.Config.Baseline u));
       let wall = Unix.gettimeofday () -. t0 in
       if jobs = 1 then base := wall;
       let speedup = if wall > 0. then !base /. wall else 0. in
       Obs.Gauge.set g_wall_s wall;
       Obs.Gauge.set g_intra_speedup speedup;
       Printf.printf "intra-compile-%-7d --jobs %d  %9.1f ms  %6.2fx\n" n jobs
         (1e3 *. wall) speedup)
    (scaling_jobs ())

let sampling_scaling ~modes ~shots =
  let u = Unitary.haar_random (Rng.create 9) modes in
  let state = Gaussian.vacuum modes in
  for i = 0 to modes - 1 do
    Gaussian.squeeze state i (Cx.re 0.35)
  done;
  Gaussian.interferometer state u;
  let base = ref 0. in
  List.iter
    (fun jobs ->
       Benchlib.Telemetry.row ~experiment:"micro"
         ~row:(Printf.sprintf "sample-chain-%d-jobs-%d" modes jobs)
       @@ fun () ->
       let with_pool f =
         if jobs > 1 then Pool.with_pool ~domains:jobs (fun p -> f (Some p))
         else f None
       in
       let t0 = Unix.gettimeofday () in
       let samples =
         with_pool (fun pool ->
             Sampler.chain_rule_chains ?pool (Rng.create 10) state shots)
       in
       let wall = Unix.gettimeofday () -. t0 in
       assert (List.length samples = shots);
       if jobs = 1 then base := wall;
       let speedup = if wall > 0. then !base /. wall else 0. in
       Obs.Gauge.set g_wall_s wall;
       Obs.Gauge.set g_par_speedup speedup;
       Printf.printf "sample-chain-%-2d (%d shots)  --jobs %d  %9.1f ms  %6.2fx\n"
         modes shots jobs (1e3 *. wall) speedup)
    (scaling_jobs ())

(* Cross-target compiles: the same 32-qumode Haar unitary on every
   registered hardware target, with plan size, hard-mask keep count,
   predicted fidelity and schedule depth as gauges. The floors pin the
   quality contract per target (a topology or ceiling regression that
   degrades plans fails here); wall-clock is reported but not bound —
   graph targets legitimately cost more than the grid path. *)
let target_compile_row ~n (target : Bose_hardware.Target.t) =
  Benchlib.Telemetry.row ~experiment:"micro"
    ~row:(Printf.sprintf "target-compile-%d-%s" n target.Bose_hardware.Target.name)
  @@ fun () ->
  let u = Unitary.haar_random (Rng.create 8) n in
  let t0 = Unix.gettimeofday () in
  let c =
    Bosehedral.Compiler.compile_for_target ~effort:Bosehedral.Compiler.Fast ~tau:0.99
      ~rng:(Rng.create 9) ~target ~config:Bosehedral.Config.Full_opt u
  in
  let wall = Unix.gettimeofday () -. t0 in
  let rotations = Plan.rotation_count c.Bosehedral.Compiler.plan in
  let kept = Bosehedral.Compiler.beamsplitters_kept c in
  let fidelity = Bosehedral.Compiler.predicted_fidelity c in
  let depth =
    (Bosehedral.Compiler.analyze c).Bose_flow.Flow.layers.Bose_flow.Flow.depth
  in
  Obs.Gauge.set g_wall_s wall;
  Obs.Gauge.set g_target_rotations (float_of_int rotations);
  Obs.Gauge.set g_target_kept (float_of_int kept);
  Obs.Gauge.set g_target_fidelity fidelity;
  Obs.Gauge.set g_target_depth (float_of_int depth);
  Printf.printf
    "target-compile-%d-%-13s %8.1f ms  %4d rot, keep %4d, fidelity %.4f, depth %3d\n" n
    target.Bose_hardware.Target.name (1e3 *. wall) rotations kept fidelity depth

let run () =
  Benchlib.header "Micro-benchmarks (Bechamel): compiler kernels at 24 qumodes";
  cache_recompile_row ~n:16 ~rows:4 ~cols:4;
  cache_recompile_row ~n:32 ~rows:6 ~cols:6;
  List.iter (target_compile_row ~n:32) (Bose_hardware.Target.all ());
  serve_sustained_row ();
  artifact_load_row ~n:32;
  rot_throughput_row ~n:128;
  rot_throughput_row ~n:256;
  rot_throughput_row ~n:500;
  sweep_throughput_row ~n:128;
  sweep_throughput_row ~n:256;
  sweep_throughput_row ~n:500;
  analyze_row ~n:500 ~rows:20 ~cols:25;
  batch_compile_scaling ~n:32 ~rows:6 ~cols:6 ~job_count:8;
  clements_scaling ~n:128;
  clements_scaling ~n:256;
  clements_scaling ~n:500;
  intra_compile_scaling ~n:500 ~rows:23 ~cols:22;
  sampling_scaling ~modes:6 ~shots:1024;
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.6) ~kde:(Some 500) () in
  let estimates = Hashtbl.create 16 in
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       Hashtbl.iter
         (fun name result ->
            let ols =
              Analyze.one
                (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
                Instance.monotonic_clock result
            in
            match Analyze.OLS.estimates ols with
            | Some [ est ] ->
              Hashtbl.replace estimates name est;
              Printf.printf "%-28s %12.1f ns/run\n" name est
            | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
         results)
    (benchmarks ());
  (* Kernel-vs-reference ratios: flat storage earns its keep here. *)
  List.iter
    (fun (kernel, reference) ->
       match (Hashtbl.find_opt estimates kernel, Hashtbl.find_opt estimates reference) with
       | Some k, Some r when k > 0. ->
         Printf.printf "%-28s %11.2fx vs %s\n" (kernel ^ " speedup") (r /. k) reference
       | _ -> ())
    [ ("gemm-64", "gemm-64-reference"); ("givens-rot-32", "givens-rot-32-reference") ];
  (* Pre-refactor Clements.decompose at N=32 measured 153.4 us/run on
     the CI host at the boxed-row storage layout (commit afc3fb3); the
     flat kernels + trig-free eliminations are expected to clear 2x. *)
  let clements_baseline_ns = 153_400. in
  (match Hashtbl.find_opt estimates "clements-32" with
   | Some k when k > 0. ->
     Printf.printf "%-28s %11.2fx vs pre-refactor (%.1f us)\n" "clements-32 speedup"
       (clements_baseline_ns /. k)
       (clements_baseline_ns /. 1e3)
   | Some _ | None -> ())
