module Diag = Diag
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Perm = Bose_linalg.Perm
module Givens = Bose_linalg.Givens
module Unitary = Bose_linalg.Unitary
module Pattern = Bose_hardware.Pattern
module Mapping = Bose_mapping.Mapping
module Plan = Bose_decomp.Plan
module Dropout = Bose_dropout.Dropout
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit
module Flow = Bose_flow.Flow
module Target = Bose_hardware.Target
module Obs = Bose_obs.Obs

let c_runs = Obs.Counter.make "lint.runs"
let c_diags = Obs.Counter.make "lint.diagnostics"
let c_errors = Obs.Counter.make "lint.errors"

type pipeline_trace = {
  registered : (string * string list) list;
  executed : (string * bool) list;
}

type subject = {
  unitary : Mat.t option;
  pattern : Pattern.t option;
  coupled : (int -> int -> bool) option;
  mapping : Mapping.t option;
  plan : Plan.t option;
  reference : Mat.t option;
  policy : Dropout.policy option;
  min_fidelity : float option;
  circuit : Circuit.t option;
  perms : (string * int array) list;
  views : (string * Mat.View.t) list;
  rngs : (string * Bose_util.Rng.t) list;
  pipeline : pipeline_trace option;
  cache_dir : string option;
  backend : Flow.backend option;
  fronts : int list list option;
  target_name : string option;
  compiled_target : string option;
}

let empty =
  {
    unitary = None;
    pattern = None;
    coupled = None;
    mapping = None;
    plan = None;
    reference = None;
    policy = None;
    min_fidelity = None;
    circuit = None;
    perms = [];
    views = [];
    rngs = [];
    pipeline = None;
    cache_dir = None;
    backend = None;
    fronts = None;
    target_name = None;
    compiled_target = None;
  }

(* Numeric thresholds shared with the pass contracts: the replay and
   unitarity tolerances mirror Compiler's documented 1e-8; the
   normalization tolerance matches the dev-build kernel assertion
   (Mat.rot_*_cs accept quadruples within 1e-6 of normalized), so a
   plan that lints replay-safe is also assertion-safe to replay. *)
let replay_tol = 1e-8
let unitarity_error_tol = 1e-6
let unitarity_warn_tol = 1e-8
let lambda_tol = 1e-8
let norm_warn_tol = 1e-9
let norm_replay_tol = 1e-6
let dead_angle = 1e-9

let is_finite_cx (v : Cx.t) = Float.is_finite v.re && Float.is_finite v.im

(* ------------------------------------------------------------------ *)
(* Passes. Each returns raw diagnostics; the engine applies per-code
   capping, code filtering and severity promotion.                     *)

(* BH01xx — unitary input health. *)
let check_unitary u =
  let n = Mat.rows u in
  if Mat.cols u <> n then
    [
      Diag.error ~code:"BH0101"
        (Printf.sprintf "input matrix is %dx%d, not square" n (Mat.cols u));
    ]
  else begin
    let diags = ref [] in
    let poisoned = ref false in
    for i = n - 1 downto 0 do
      for j = n - 1 downto 0 do
        if not (is_finite_cx (Mat.get u i j)) then begin
          poisoned := true;
          diags :=
            Diag.error ~code:"BH0102" ~loc:(Diag.Entry (i, j))
              ~hint:"re-generate the unitary; NaN/Inf propagates through every pass"
              "entry is NaN or infinite"
            :: !diags
        end
      done
    done;
    if not !poisoned then begin
      (* Residual max|U†U − I|: the compiled artifacts inherit whatever
         non-unitarity the input carries, so gate it at the front door. *)
      let p = Mat.create n n in
      Mat.gemm_adjoint_left ~dst:p u u;
      let residual = Mat.max_abs_diff p (Mat.identity n) in
      if residual > unitarity_error_tol then
        diags :=
          Diag.error ~code:"BH0103"
            ~hint:"the decomposition assumes an exactly unitary input (paper Eq. 1)"
            (Printf.sprintf "unitarity residual max|U\xe2\x80\xa0U - I| = %.3e exceeds %.0e"
               residual unitarity_error_tol)
          :: !diags
      else if residual > unitarity_warn_tol then
        diags :=
          Diag.warning ~code:"BH0104"
            (Printf.sprintf "unitarity residual %.3e is above the replay tolerance %.0e"
               residual unitarity_warn_tol)
          :: !diags
    end;
    !diags
  end

(* BH02xx — elimination-pattern validity. *)
let check_pattern ?coupled p =
  match Pattern.validate p with
  | Error msg -> [ Diag.error ~code:"BH0201" ("pattern structure invalid: " ^ msg) ]
  | Ok _ ->
    let n = Pattern.size p in
    let diags = ref [] in
    (* Duplicate physical sites: two labels embedded on one qumode. *)
    let by_site = Hashtbl.create 16 in
    for label = 0 to n - 1 do
      match Pattern.site p label with
      | None -> ()
      | Some site ->
        (match Hashtbl.find_opt by_site site with
         | Some prev ->
           diags :=
             Diag.error ~code:"BH0203" ~loc:(Diag.Mode label)
               (Printf.sprintf "labels %d and %d are embedded on the same physical site %d"
                  prev label site)
             :: !diags
         | None -> Hashtbl.add by_site site label)
    done;
    (* Every tree edge must be a physically coupled site pair. *)
    (match coupled with
     | None -> ()
     | Some coupled ->
       for m = 0 to n - 1 do
         List.iter
           (fun nb ->
              if nb > m then
                match (Pattern.site p m, Pattern.site p nb) with
                | Some sm, Some sn when not (coupled sm sn) ->
                  diags :=
                    Diag.error ~code:"BH0202" ~loc:(Diag.Edge (m, nb))
                      (Printf.sprintf
                         "pattern edge (%d,%d) sits on uncoupled sites (%d,%d)" m nb sm
                         sn)
                    :: !diags
                | _ -> ())
           (Pattern.neighbors p m)
       done);
    List.rev !diags

(* BH0302 — raw permutation arrays must be bijections. *)
let check_perm_array (name, a) =
  let n = Array.length a in
  let seen = Array.make (max n 1) false in
  let diags = ref [] in
  Array.iteri
    (fun i x ->
       if x < 0 || x >= n then
         diags :=
           Diag.error ~code:"BH0302" ~loc:(Diag.Mode i)
             (Printf.sprintf "permutation %s maps %d to %d, outside [0,%d)" name i x n)
           :: !diags
       else if seen.(x) then
         diags :=
           Diag.error ~code:"BH0302" ~loc:(Diag.Mode i)
             (Printf.sprintf "permutation %s is not a bijection: %d hit twice" name x)
           :: !diags
       else seen.(x) <- true)
    a;
  List.rev !diags

(* BH03xx — mapping validity: shape, and the §V-B zero-cost-relabeling
   identity, which must hold bit-exactly (permutations only move
   entries, they never do arithmetic). *)
let check_mapping ?unitary (m : Mapping.t) =
  let rows = Mat.rows m.Mapping.permuted and cols = Mat.cols m.Mapping.permuted in
  if
    rows <> cols
    || Perm.size m.Mapping.row_perm <> rows
    || Perm.size m.Mapping.col_perm <> cols
  then
    [
      Diag.error ~code:"BH0301"
        (Printf.sprintf
           "permutation sizes (%d rows, %d cols) do not match the %dx%d permuted unitary"
           (Perm.size m.Mapping.row_perm) (Perm.size m.Mapping.col_perm) rows cols);
    ]
  else begin
    let diags = ref [] in
    let recovered = Mapping.recovered_unitary m in
    let reapplied =
      Perm.permute_cols m.Mapping.col_perm (Perm.permute_rows m.Mapping.row_perm recovered)
    in
    if Mat.max_abs_diff reapplied m.Mapping.permuted <> 0. then
      diags :=
        Diag.error ~code:"BH0303"
          "re-permuting the recovered unitary does not reproduce the permuted unitary \
           bit-exactly"
        :: !diags;
    (match unitary with
     | Some u when Mat.dims u = Mat.dims recovered ->
       if Mat.max_abs_diff recovered u <> 0. then
         diags :=
           Diag.error ~code:"BH0304"
             ~hint:"permutations are zero-cost relabelings; recovery must be bit-exact \
                    (paper \xc2\xa7V-B)"
             "un-permuting the permuted unitary does not recover the program unitary \
              bit-exactly"
           :: !diags
     | Some u ->
       diags :=
         Diag.error ~code:"BH0304"
           (Printf.sprintf "program unitary is %dx%d but the mapping is on %d qumodes"
              (Mat.rows u) (Mat.cols u) rows)
         :: !diags
     | None -> ());
    List.rev !diags
  end

(* BH04xx — plan validity. Structural checks run first; the
   replay-based checks (BH0401/BH0402/BH0405/BH0407) only run when the
   plan is structurally sound and its quadruples are normalized within
   the kernel assertion tolerance, so linting a corrupted plan never
   trips the dev-build kernel guards. *)
let check_plan ?pattern ?reference (t : Plan.t) =
  let diags = ref [] in
  let structural_ok = ref true in
  let emit d = diags := d :: !diags in
  let structural d =
    structural_ok := false;
    emit d
  in
  if t.Plan.modes <= 0 then
    structural
      (Diag.error ~code:"BH0403" (Printf.sprintf "plan has %d modes" t.Plan.modes));
  if Array.length t.Plan.lambda <> t.Plan.modes then
    structural
      (Diag.error ~code:"BH0403"
         (Printf.sprintf "lambda has %d entries for %d modes" (Array.length t.Plan.lambda)
            t.Plan.modes));
  Array.iteri
    (fun i { Plan.rotation = { Givens.m; n; c; s; ere; eim }; row } ->
       let loc = Diag.Step i in
       if m < 0 || m >= t.Plan.modes || n < 0 || n >= t.Plan.modes || m = n then
         structural
           (Diag.error ~code:"BH0403" ~loc
              (Printf.sprintf "rotation addresses invalid qumode pair (%d,%d)" m n))
       else if row < 0 || row >= t.Plan.modes then
         structural
           (Diag.error ~code:"BH0403" ~loc
              (Printf.sprintf "eliminated row %d is outside [0,%d)" row t.Plan.modes))
       else if
         not
           (Float.is_finite c && Float.is_finite s && Float.is_finite ere
            && Float.is_finite eim)
       then
         structural
           (Diag.error ~code:"BH0403" ~loc "rotation quadruple contains NaN or infinity")
       else begin
         let dc = Float.abs ((c *. c) +. (s *. s) -. 1.)
         and de = Float.abs ((ere *. ere) +. (eim *. eim) -. 1.) in
         let dev = Float.max dc de in
         if dev > norm_replay_tol then
           structural
             (Diag.error ~code:"BH0406" ~loc
                ~hint:"cos\xc2\xb2\xce\xb8+sin\xc2\xb2\xce\xb8 and |e^{i\xcf\x86}| must be 1; \
                       the in-place kernels corrupt the matrix otherwise"
                (Printf.sprintf "rotation quadruple denormalized by %.3e" dev))
         else if dev > norm_warn_tol then
           emit
             (Diag.warning ~code:"BH0406" ~loc
                (Printf.sprintf "rotation quadruple denormalized by %.3e" dev))
       end)
    t.Plan.elements;
  Array.iteri
    (fun i lam ->
       if not (is_finite_cx lam) then
         structural
           (Diag.error ~code:"BH0403" ~loc:(Diag.Mode i) "lambda entry is NaN or infinite")
       else if Float.abs (Cx.abs lam -. 1.) > lambda_tol then
         emit
           (Diag.error ~code:"BH0404" ~loc:(Diag.Mode i)
              (Printf.sprintf "lambda entry has modulus %.12g, not 1" (Cx.abs lam))))
    t.Plan.lambda;
  if !structural_ok then begin
    (* Every rotation must sit on an elimination-pattern tree edge
       (hence, post-embedding, on a physical coupling). *)
    (match pattern with
     | Some p when Pattern.size p <> t.Plan.modes ->
       emit
         (Diag.error ~code:"BH0402"
            (Printf.sprintf "pattern is on %d qumodes but the plan has %d" (Pattern.size p)
               t.Plan.modes))
     | Some p ->
       Array.iteri
         (fun i { Plan.rotation = { Givens.m; n; _ }; _ } ->
            if not (List.mem n (Pattern.neighbors p m)) then
              emit
                (Diag.error ~code:"BH0402" ~loc:(Diag.Step i)
                   (Printf.sprintf "rotation (%d,%d) is not a pattern tree edge" m n)))
         t.Plan.elements
     | None -> ());
    (* Exactness: replaying the plan must reconstruct the reference
       (the permuted unitary) to the documented tolerance. *)
    (match reference with
     | Some u when Mat.dims u <> (t.Plan.modes, t.Plan.modes) ->
       emit
         (Diag.error ~code:"BH0401"
            (Printf.sprintf "replay reference is %dx%d but the plan has %d modes"
               (Mat.rows u) (Mat.cols u) t.Plan.modes))
     | Some u ->
       let residual = Mat.max_abs_diff (Plan.reconstruct t) u in
       if residual > replay_tol then
         emit
           (Diag.error ~code:"BH0401"
              ~hint:"the plan is exact by construction (paper Eq. 1); a mismatch means \
                     plan and unitary are out of sync"
              (Printf.sprintf "replay residual %.3e exceeds %.0e" residual replay_tol))
     | None -> ());
    (* Serialization integrity: save/load must be the identity. *)
    (match Plan.of_string (Plan.to_string t) with
     | Error (msg, line) ->
       emit
         (Diag.error ~code:"BH0405" ~loc:(Diag.Line line)
            ("serialized plan does not parse back: " ^ msg))
     | Ok t' ->
       if t' <> t then
         emit (Diag.error ~code:"BH0405" "save/load round-trip altered the plan"));
    (* Dead rotations: a kept beamsplitter within numerical zero of the
       identity is free to drop — the quantity dropout maximizes. *)
    Array.iteri
      (fun i { Plan.rotation; _ } ->
         let th = Float.abs (Givens.theta rotation) in
         if th < dead_angle then
           emit
             (Diag.warning ~code:"BH0407" ~loc:(Diag.Step i)
                ~hint:"dropout would remove this gate at zero fidelity cost (paper \xc2\xa7VI)"
                (Printf.sprintf "near-identity rotation (|\xce\xb8| = %.2e)" th)))
      t.Plan.elements
  end;
  List.rev !diags

(* BH05xx — dropout-policy validity. *)
let check_policy ?min_fidelity plan (p : Dropout.policy) =
  let total = Plan.rotation_count plan in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  if not (p.Dropout.tau > 0. && p.Dropout.tau <= 1.) then
    emit
      (Diag.error ~code:"BH0501"
         (Printf.sprintf "accuracy threshold tau = %g is outside (0,1]" p.Dropout.tau));
  if Array.length p.Dropout.weights <> total then
    emit
      (Diag.error ~code:"BH0501"
         (Printf.sprintf "policy has %d weights for a plan with %d rotations"
            (Array.length p.Dropout.weights) total))
  else begin
    if p.Dropout.kept_count < 0 || p.Dropout.kept_count > total then
      emit
        (Diag.error ~code:"BH0501"
           (Printf.sprintf "kept count %d is outside [0,%d]" p.Dropout.kept_count total));
    let positive = ref 0 in
    Array.iteri
      (fun i w ->
         if (not (Float.is_finite w)) || w < 0. then
           emit
             (Diag.error ~code:"BH0502" ~loc:(Diag.Step i)
                (Printf.sprintf "selection weight %g is not a finite non-negative number" w))
         else if w > 0. then incr positive)
      p.Dropout.weights;
    if !positive < p.Dropout.kept_count then
      emit
        (Diag.error ~code:"BH0504"
           (Printf.sprintf
              "only %d rotations have positive weight but %d must be kept per shot: \
               sampling without replacement cannot fill the mask"
              !positive p.Dropout.kept_count))
  end;
  let threshold = match min_fidelity with Some f -> f | None -> p.Dropout.tau in
  if p.Dropout.expected_fidelity < threshold then
    emit
      (Diag.error ~code:"BH0503"
         ~hint:"the policy search must return tau_K >= tau (paper \xc2\xa7VI-B)"
         (Printf.sprintf "expected fidelity %.6f is below the required %.6f"
            p.Dropout.expected_fidelity threshold));
  List.rev !diags

(* BH11xx — dataflow analysis over the plan ([Bose_flow.Flow]):
   schedule depth vs. the backend limit, coupling feasibility within
   the routing budget, per-mode transmission vs. the loss-budget floor,
   modes left dead by dropout, and externally supplied commuting-front
   schedules. When a policy is present the analysis runs under its
   deterministic hard mask — the same rotations a shot of the compiled
   program keeps — but only if the policy structurally matches the plan
   (shape mismatches are the policy pass's BH05xx findings; this pass
   must not raise on them). *)
let check_flow ?backend ?policy ?fronts plan =
  let total = Plan.rotation_count plan in
  (* Structurally broken plans (out-of-range mode pairs — the plan
     pass's BH0403) would make the analysis index out of bounds; lint
     passes never raise, so gate on the same structural condition. *)
  let structurally_sound =
    plan.Plan.modes > 0
    && Array.for_all
         (fun { Plan.rotation = { Givens.m; n; _ }; _ } ->
            m >= 0 && m < plan.Plan.modes && n >= 0 && n < plan.Plan.modes && m <> n)
         plan.Plan.elements
  in
  if not structurally_sound then []
  else begin
  let kept =
    match (policy : Dropout.policy option) with
    | Some p
      when Array.length p.Dropout.weights = total
           && p.Dropout.kept_count >= 0
           && p.Dropout.kept_count <= total ->
      Some (Dropout.hard_kept p plan)
    | Some _ | None -> None
  in
  let b = match backend with Some b -> b | None -> Flow.backend () in
  let report = Flow.analyze ?kept ?backend plan in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun { Flow.rotation; pair = m, n; distance } ->
       emit
         (Diag.error ~code:"BH1101" ~loc:(Diag.Step rotation)
            ~hint:"route the pair (raise the routing budget) or re-embed the pattern"
            (if distance < 0 then
               Printf.sprintf "rotation (%d,%d) maps to no valid backend site" m n
             else
               Printf.sprintf
                 "rotation (%d,%d) needs %d coupling hops; the backend allows %d" m n
                 distance (1 + b.Flow.routing_budget))))
    report.Flow.infeasible_rotations;
  (match report.Flow.max_depth with
   | Some limit when report.Flow.layers.Flow.depth > limit ->
     emit
       (Diag.error ~code:"BH1102"
          ~hint:"deepen dropout (lower tau) or pick a backend with more depth headroom"
          (Printf.sprintf "schedule depth %d exceeds the backend limit %d"
             report.Flow.layers.Flow.depth limit))
   | Some _ | None -> ());
  List.iter
    (fun v ->
       emit
         (Diag.warning ~code:"BH1103" ~loc:(Diag.Mode v)
            ~hint:
              (if kept = None then
                 "the mode never mixes with the interferometer; shrink the program \
                  or re-embed"
               else "dropout removed every beamsplitter on this mode; raise tau")
            "no kept rotation touches this mode"))
    report.Flow.live.Flow.dead;
  if report.Flow.transmission_range.Flow.lo < b.Flow.min_transmission then begin
    Array.iteri
      (fun v eta ->
         if eta < b.Flow.min_transmission then
           emit
             (Diag.error ~code:"BH1104" ~loc:(Diag.Mode v)
                ~hint:"fewer kept rotations (lower tau) or better hardware; loss \
                       compounds per gate"
                (Printf.sprintf "transmission %.6f is below the loss-budget floor %.6f"
                   eta b.Flow.min_transmission)))
      report.Flow.per_mode_transmission
  end;
  (match fronts with
   | None -> ()
   | Some fronts ->
     (match Flow.check_fronts ?kept plan fronts with
      | None -> ()
      | Some reason ->
        emit
          (Diag.error ~code:"BH1105"
             ~hint:"fronts must partition the kept rotations into mode-disjoint sets \
                    in elimination order (Flow.layering computes a valid schedule)"
             ("commuting-front schedule invalid: " ^ reason))));
    List.rev !diags
  end

(* BH13xx — hardware-target identity. The subject names the target the
   artifact is being checked against ([target_name], e.g. `bosec check
   --target`); [compiled_target] is what the artifact itself records it
   was compiled for (e.g. serve cache metadata). The depth check
   (BH1303) only runs when no flow backend is attached — with one, the
   BH11xx pass already gates depth against the same ceiling (BH1102),
   and double-reporting the same violation under two codes would force
   every consumer to dedup. *)
let check_target ?compiled_target ?plan ?policy ~has_backend name =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (match Target.find name with
   | None ->
     emit
       (Diag.error ~code:"BH1301"
          ~hint:
            (Printf.sprintf "registered targets: %s"
               (String.concat ", " (Target.names ())))
          (Printf.sprintf "unknown hardware target %S" name))
   | Some tgt ->
     (match compiled_target with
      | Some other when other <> name ->
        emit
          (Diag.error ~code:"BH1302"
             ~hint:"recompile for this target; plans do not transfer across targets"
             (Printf.sprintf "plan was compiled for target %S, checked against %S"
                other name))
      | Some _ | None -> ());
     (match plan with
      | Some plan when not has_backend ->
        (* Same structural gate as the flow pass: lint never raises. *)
        let structurally_sound =
          plan.Plan.modes > 0
          && Array.for_all
               (fun { Plan.rotation = { Bose_linalg.Givens.m; n; _ }; _ } ->
                  m >= 0 && m < plan.Plan.modes && n >= 0 && n < plan.Plan.modes
                  && m <> n)
               plan.Plan.elements
        in
        (match
           (structurally_sound, tgt.Target.max_depth plan.Plan.modes)
         with
         | true, Some limit ->
           let total = Plan.rotation_count plan in
           let kept =
             match (policy : Dropout.policy option) with
             | Some p
               when Array.length p.Dropout.weights = total
                    && p.Dropout.kept_count >= 0
                    && p.Dropout.kept_count <= total ->
               Some (Dropout.hard_kept p plan)
             | Some _ | None -> None
           in
           let depth = (Flow.layering ?kept plan).Flow.depth in
           if depth > limit then
             emit
               (Diag.error ~code:"BH1303"
                  ~hint:"deepen dropout (lower tau) or pick a target with more \
                         depth headroom"
                  (Printf.sprintf
                     "schedule depth %d exceeds target %s's depth ceiling %d" depth
                     name limit))
         | _ -> ())
      | Some _ | None -> ()));
  List.rev !diags

(* BH06xx — circuit-level checks. *)
let check_circuit ?coupled ?plan ?policy c =
  let modes = Circuit.modes c in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* Mode bounds, rechecked gate by gate (defense in depth: Circuit.add
     validates, but lint also covers circuits from future loaders). *)
  List.iteri
    (fun i g ->
       let bad = List.exists (fun q -> q < 0 || q >= modes) (Gate.qumodes g) in
       let degenerate =
         match g with Gate.Beamsplitter (k, l, _, _) -> k = l | _ -> false
       in
       if bad || degenerate then
         emit
           (Diag.error ~code:"BH0601" ~loc:(Diag.Gate i)
              (Format.asprintf "gate %a addresses an invalid qumode" Gate.pp g)))
    (Circuit.gates c);
  (* Hardware compatibility of every beamsplitter pair. *)
  (match coupled with
   | None -> ()
   | Some coupled ->
     List.iter
       (fun (k, l) ->
          emit
            (Diag.error ~code:"BH0602" ~loc:(Diag.Edge (k, l))
               (Printf.sprintf "beamsplitter pair (%d,%d) is not physically coupled" k l)))
       (Circuit.check_connectivity coupled c));
  (* Table-I counter consistency: recompute the per-kind totals from
     the gate list and compare with the circuit's own counters. *)
  let recount =
    List.fold_left
      (fun (sq, d, ph, bs) -> function
         | Gate.Squeeze _ -> (sq + 1, d, ph, bs)
         | Gate.Displace _ -> (sq, d + 1, ph, bs)
         | Gate.Phase _ -> (sq, d, ph + 1, bs)
         | Gate.Beamsplitter _ -> (sq, d, ph, bs + 1))
      (0, 0, 0, 0) (Circuit.gates c)
  in
  let counts = Circuit.gate_counts c in
  let sq, d, ph, bs = recount in
  if
    sq <> counts.Circuit.squeezing
    || d <> counts.Circuit.displacement
    || ph <> counts.Circuit.phase_shifter
    || bs <> counts.Circuit.beamsplitter
  then
    emit
      (Diag.error ~code:"BH0603"
         "gate-kind counters disagree with a direct recount of the gate list");
  let depth = Circuit.depth c and len = Circuit.length c in
  if depth < 0 || depth > len || (depth = 0 && len > 0) then
    emit
      (Diag.error ~code:"BH0603"
         (Printf.sprintf "circuit depth %d is inconsistent with %d gates" depth len));
  (* Cross-artifact: a shot circuit carries one beamsplitter per kept
     rotation (Tunable MZI) or two (fixed 50:50 MZI). The prelude may
     add state-preparation gates but no interferometer beamsplitters. *)
  (match plan with
   | None -> ()
   | Some plan ->
     let kept =
       match (policy : Dropout.policy option) with
       | Some p -> p.Dropout.kept_count
       | None -> Plan.rotation_count plan
     in
     if bs <> kept && bs <> 2 * kept then
       emit
         (Diag.warning ~code:"BH0604"
            (Printf.sprintf
               "circuit has %d beamsplitters; a shot of this plan should carry %d (or %d \
                with fixed 50:50 MZIs)"
               bs kept (2 * kept))));
  List.rev !diags

(* BH0701 — view aliasing at kernel call sites. *)
let check_views views =
  let rec pairs = function
    | [] -> []
    | (name1, v1) :: rest ->
      List.filter_map
        (fun (name2, v2) ->
           if Mat.views_overlap v1 v2 then
             Some
               (Diag.error ~code:"BH0701"
                  ~hint:"in-place kernels require non-overlapping source and destination; \
                         materialize one side with Mat.of_view"
                  (Printf.sprintf "views %s and %s overlap in the same parent buffer" name1
                     name2))
           else None)
        rest
      @ pairs rest
  in
  pairs views

(* BH1001 — one RNG stream shared between concurrent tasks. [Rng.t] is
   single-stream mutable state with no internal locking: two pool tasks
   drawing from the same stream race on it and destroy replayability.
   The subject carries the named streams handed to each parallel task;
   any physically-equal pair is an error. *)
let check_rngs rngs =
  let rec pairs = function
    | [] -> []
    | (name1, r1) :: rest ->
      List.filter_map
        (fun (name2, r2) ->
           if Bose_util.Rng.same r1 r2 then
             Some
               (Diag.error ~code:"BH1001"
                  ~hint:"pre-split one stream per task with Rng.split so results depend \
                         only on the task index, never on domain interleaving"
                  (Printf.sprintf "parallel tasks %s and %s share one RNG stream" name1
                     name2))
           else None)
        rest
      @ pairs rest
  in
  pairs rngs

(* BH09xx — pass-manager execution discipline. The trace is pure data
   (pass names + cache-hit flags), so the checker works on traces from
   any pipeline, including hand-built ones in tests. A cache hit counts
   as the pass having run: cold and warm compiles of the same job must
   produce traces that lint identically. *)
let check_pipeline (t : pipeline_trace) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let runs name =
    List.length (List.filter (fun (n, _) -> n = name) t.executed)
  in
  (* Every registered pass runs exactly once. *)
  List.iter
    (fun (name, _) ->
       match runs name with
       | 1 -> ()
       | 0 ->
         emit
           (Diag.error ~code:"BH0901"
              ~hint:"a dependency that never materializes poisons every downstream pass"
              (Printf.sprintf "registered pass %s did not run" name))
       | k ->
         emit
           (Diag.error ~code:"BH0901"
              (Printf.sprintf "registered pass %s ran %d times" name k)))
    t.registered;
  (* No unregistered pass executes. *)
  List.iter
    (fun (name, _) ->
       if not (List.mem_assoc name t.registered) then
         emit
           (Diag.error ~code:"BH0902"
              (Printf.sprintf "pass %s executed but is not in the registry" name)))
    t.executed;
  (* Dependency order: a pass may only execute once every declared
     dependency has. *)
  let done_ = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
       (match List.assoc_opt name t.registered with
        | None -> ()
        | Some deps ->
          List.iter
            (fun dep ->
               if not (Hashtbl.mem done_ dep) then
                 emit
                   (Diag.error ~code:"BH0903"
                      ~hint:"the registry declares artifact inputs; executing early reads \
                             a stale or absent artifact"
                      (Printf.sprintf "pass %s executed before its dependency %s" name dep)))
            deps);
       Hashtbl.replace done_ name ())
    t.executed;
  List.rev !diags

(* BH12xx — on-disk artifact-cache integrity. The decision procedure is
   [Bose_store.Diskcache.audit] (read-only; it never repairs or
   quarantines); this pass only translates its findings into coded
   diagnostics. The runtime store self-heals everything reported here —
   reconciling the index on open, quarantining corrupt objects on read —
   so errors mean "this entry will miss", never "the server will crash". *)
let check_cache_dir dir =
  let module D = Bose_store.Diskcache in
  let msg issue = Format.asprintf "%a" D.pp_issue issue in
  List.map
    (fun issue ->
       match issue with
       | D.Bad_index _ ->
         Diag.error ~code:"BH1201"
           ~hint:"the index is a rebuildable hint; delete it (or the whole cache \
                  directory) to recover"
           (msg issue)
       | D.Missing_object _ ->
         Diag.error ~code:"BH1202"
           ~hint:"the entry will miss and recompile; reopening the cache drops it \
                  from the index"
           (msg issue)
       | D.Corrupt_object _ ->
         Diag.error ~code:"BH1203"
           ~hint:"the serve daemon quarantines this object on first read and \
                  recompiles; deleting the file is also safe"
           (msg issue)
       | D.Orphan_object _ ->
         Diag.warning ~code:"BH1204"
           ~hint:"reopening the cache adopts orphans as least-recently-used entries"
           (msg issue)
       | D.Size_mismatch _ ->
         Diag.warning ~code:"BH1205"
           ~hint:"usually a stale index after an external edit; reopening the cache \
                  re-measures every object"
           (msg issue)
       | D.Version_mismatch _ ->
         Diag.error ~code:"BH1206"
           ~hint:"the object was written by a binary with a newer container format; \
                  upgrade this binary to read it, or delete the file to recompile \
                  (the serve daemon quarantines it on first read)"
           (msg issue))
    (D.audit dir)

(* ------------------------------------------------------------------ *)
(* Registry and engine.                                                *)

type pass = { name : string; codes : string list; doc : string; run : subject -> Diag.t list }

let on_opt f = function None -> [] | Some x -> f x

let passes =
  [
    {
      name = "unitary";
      codes = [ "BH0101"; "BH0102"; "BH0103"; "BH0104" ];
      doc = "program unitary health: squareness, NaN/Inf scan, unitarity residual";
      run = (fun s -> on_opt check_unitary s.unitary);
    };
    {
      name = "pattern";
      codes = [ "BH0201"; "BH0202"; "BH0203" ];
      doc = "elimination-pattern structure, site embedding, physical coupling";
      run = (fun s -> on_opt (check_pattern ?coupled:s.coupled) s.pattern);
    };
    {
      name = "perms";
      codes = [ "BH0302" ];
      doc = "raw permutation arrays are bijections";
      run = (fun s -> List.concat_map check_perm_array s.perms);
    };
    {
      name = "mapping";
      codes = [ "BH0301"; "BH0303"; "BH0304" ];
      doc = "mapping shape and the bit-exact zero-cost-relabeling identity";
      run = (fun s -> on_opt (check_mapping ?unitary:s.unitary) s.mapping);
    };
    {
      name = "plan";
      codes = [ "BH0401"; "BH0402"; "BH0403"; "BH0404"; "BH0405"; "BH0406"; "BH0407" ];
      doc = "plan structure, replay exactness, pattern-edge addressing, round-trip";
      run = (fun s -> on_opt (check_plan ?pattern:s.pattern ?reference:s.reference) s.plan);
    };
    {
      name = "policy";
      codes = [ "BH0501"; "BH0502"; "BH0503"; "BH0504" ];
      doc = "dropout-policy shape, weight health, expected fidelity >= tau";
      run =
        (fun s ->
           match (s.plan, s.policy) with
           | Some plan, Some p -> check_policy ?min_fidelity:s.min_fidelity plan p
           | _ -> []);
    };
    {
      name = "flow";
      codes = [ "BH1101"; "BH1102"; "BH1103"; "BH1104"; "BH1105" ];
      doc = "dataflow analysis: coupling feasibility, depth/loss budgets, dead modes";
      run =
        (fun s ->
           on_opt
             (check_flow ?backend:s.backend ?policy:s.policy ?fronts:s.fronts)
             s.plan);
    };
    {
      name = "target";
      codes = [ "BH1301"; "BH1302"; "BH1303" ];
      doc = "hardware-target identity: registry membership, provenance, depth ceiling";
      run =
        (fun s ->
           on_opt
             (check_target ?compiled_target:s.compiled_target ?plan:s.plan
                ?policy:s.policy
                ~has_backend:(Option.is_some s.backend))
             s.target_name);
    };
    {
      name = "circuit";
      codes = [ "BH0601"; "BH0602"; "BH0603"; "BH0604" ];
      doc = "circuit mode bounds, connectivity, Table-I counter consistency";
      run =
        (fun s -> on_opt (check_circuit ?coupled:s.coupled ?plan:s.plan ?policy:s.policy) s.circuit);
    };
    {
      name = "aliasing";
      codes = [ "BH0701" ];
      doc = "Mat.View overlap at in-place kernel call sites";
      run = (fun s -> check_views s.views);
    };
    {
      name = "rng";
      codes = [ "BH1001" ];
      doc = "RNG stream sharing across parallel tasks";
      run = (fun s -> check_rngs s.rngs);
    };
    {
      name = "pipeline";
      codes = [ "BH0901"; "BH0902"; "BH0903" ];
      doc = "pass-manager discipline: every registered pass ran once, in dependency order";
      run = (fun s -> on_opt check_pipeline s.pipeline);
    };
    {
      name = "diskcache";
      codes = [ "BH1201"; "BH1202"; "BH1203"; "BH1204"; "BH1205"; "BH1206" ];
      doc = "on-disk artifact-cache integrity: index, object framing, orphans";
      run = (fun s -> on_opt check_cache_dir s.cache_dir);
    };
  ]

type settings = {
  disabled_passes : string list;
  disabled_codes : string list;
  werror : bool;
}

let default_settings = { disabled_passes = []; disabled_codes = []; werror = false }

(* A poisoned artifact can fire one diagnostic per entry; keep the
   first [cap] per code and summarize the rest, so output stays
   readable (and JSON bounded) on any input. *)
let cap = 16

let cap_per_code ds =
  let counts = Hashtbl.create 8 in
  let kept =
    List.filter
      (fun (d : Diag.t) ->
         let seen = Option.value ~default:0 (Hashtbl.find_opt counts d.Diag.code) in
         Hashtbl.replace counts d.Diag.code (seen + 1);
         seen < cap)
      ds
  in
  let suppressed =
    Hashtbl.fold
      (fun code n acc -> if n > cap then (code, n - cap) :: acc else acc)
      counts []
  in
  kept
  @ List.map
      (fun (code, n) ->
         Diag.info ~code:"BH0001"
           (Printf.sprintf "%d further %s diagnostic%s suppressed" n code
              (if n = 1 then "" else "s")))
      (List.sort compare suppressed)

let run ?(settings = default_settings) subject =
  Obs.Counter.incr c_runs;
  Obs.Span.with_ "lint" (fun () ->
      let ds =
        List.concat_map
          (fun p ->
             if List.mem p.name settings.disabled_passes then []
             else Obs.Span.with_ ("lint." ^ p.name) (fun () -> cap_per_code (p.run subject)))
          passes
      in
      let ds =
        List.filter (fun (d : Diag.t) -> not (List.mem d.Diag.code settings.disabled_codes)) ds
      in
      let ds = if settings.werror then Diag.promote_warnings ds else ds in
      Obs.Counter.incr c_diags ~by:(List.length ds);
      Obs.Counter.incr c_errors ~by:(Diag.count Diag.Error ds);
      ds)

let errors ds = Diag.count Diag.Error ds
let warnings ds = Diag.count Diag.Warning ds

(* ------------------------------------------------------------------ *)
(* File loaders: I/O and parse failures as diagnostics, never raises.  *)

let with_file path ~code ~kind load =
  match open_in path with
  | exception Sys_error msg -> Error (Diag.error ~code (Printf.sprintf "cannot read %s: %s" kind msg))
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
         match load ic with
         | Ok v -> Ok v
         | Error (msg, line) ->
           Error
             (Diag.error ~code ~loc:(Diag.Line line)
                (Printf.sprintf "%s: malformed %s: %s" path kind msg)))

let load_plan path = with_file path ~code:"BH0801" ~kind:"plan file" Plan.load_result

let load_unitary path = with_file path ~code:"BH0802" ~kind:"unitary file" Unitary.load_result
