(** Static verification passes over the compiler's artifacts.

    Bosehedral's pass contracts (documented in [Compiler], paper
    §IV–§VI) are all properties of the compact N×N unitary and the
    artifacts derived from it — pattern, mapping, plan, dropout policy,
    shot circuit — so they can be checked without ever running the
    simulator. This module is the checker registry: each {!pass} reads
    the slices of a {!subject} it understands and emits structured
    {!Diag.t} diagnostics with stable codes (catalogue in
    docs/DIAGNOSTICS.md).

    [Compiler.verify] is a thin shim over {!run}; [bosec check]
    exposes the same engine on serialized artifacts. Passes never
    raise on malformed input — that is the point: violations come back
    as data. Every pass is timed under telemetry span [lint.<pass>]
    (plus [lint] overall), with counters [lint.runs],
    [lint.diagnostics] and [lint.errors]. *)

module Diag = Diag

type pipeline_trace = {
  registered : (string * string list) list;
      (** The effective pass registry for the compile, in registry
          order: pass name plus the names of the passes whose artifacts
          it declares as inputs. *)
  executed : (string * bool) list;
      (** Passes in execution order; [true] marks a fingerprint-cache
          hit (the pass replayed recorded artifacts instead of
          running). A hit still counts as the pass having run. *)
}
(** Execution record of a pass-manager pipeline (produced by
    [Bosehedral.Pipeline], consumed by the [pipeline] pass, BH09xx):
    every registered pass must execute exactly once, no unregistered
    pass may execute, and no pass may execute before its declared
    dependencies. Cache-hit and cold compiles produce traces that lint
    identically. *)

type subject = {
  unitary : Bose_linalg.Mat.t option;
      (** The program unitary: health-checked (BH01xx) and, when a
          mapping is present, used as the bit-exact recovery reference
          (BH0304). *)
  pattern : Bose_hardware.Pattern.t option;
  coupled : (int -> int -> bool) option;
      (** Physical coupling predicate over flat {e site} indices (for
          pattern edges, BH0202) and over qumode indices (for circuit
          beamsplitters, BH0602). When absent, coupling checks are
          skipped. *)
  mapping : Bose_mapping.Mapping.t option;
  plan : Bose_decomp.Plan.t option;
  reference : Bose_linalg.Mat.t option;
      (** What the plan must replay to — the {e permuted} unitary
          (BH0401). *)
  policy : Bose_dropout.Dropout.policy option;
  min_fidelity : float option;
      (** Threshold for BH0503; defaults to the policy's own τ. *)
  circuit : Bose_circuit.Circuit.t option;
  perms : (string * int array) list;
      (** Raw permutation arrays to bijection-check (BH0302). *)
  views : (string * Bose_linalg.Mat.View.t) list;
      (** Named views at an in-place kernel call site; every
          overlapping pair is reported (BH0701). *)
  rngs : (string * Bose_util.Rng.t) list;
      (** Named RNG streams handed to concurrent pool tasks; every
          physically-shared pair ({!Bose_util.Rng.same}) is reported
          (BH1001) — a shared stream races and destroys
          replayability. *)
  pipeline : pipeline_trace option;
      (** Pass-manager execution record; registry/execution mismatches
          are reported (BH09xx). *)
  cache_dir : string option;
      (** A [bosec serve] disk-cache directory to audit
          ([Bose_store.Diskcache.audit], read-only): malformed index,
          missing/corrupt/orphan object files, stale sizes (BH12xx). *)
  backend : Bose_flow.Flow.backend option;
      (** Hardware backend for the dataflow pass (BH11xx): coupling
          feasibility within the routing budget, depth ceiling,
          loss-budget floor under the noise model. Without it the pass
          still reports dead modes and validates [fronts]. *)
  fronts : int list list option;
      (** An externally supplied commuting-front schedule to validate
          against the plan (BH1105) — e.g. what a parallel executor
          intends to run. *)
  target_name : string option;
      (** Hardware target the subject claims to run on (BH13xx):
          unknown names are reported against the
          {!Bose_hardware.Target} registry, plans are gated against the
          target's depth ceiling (only when no [backend] is attached —
          with one, BH1102 already covers depth), and a mismatching
          [compiled_target] is a provenance error. *)
  compiled_target : string option;
      (** Target the artifact records it was compiled for (e.g. serve
          cache metadata); differing from [target_name] is BH1302. *)
}

val empty : subject
(** All fields absent; build subjects with record update,
    [{ Lint.empty with plan = Some p }]. *)

type pass = {
  name : string;  (** Registry key, e.g. ["plan"]. *)
  codes : string list;  (** Diagnostic codes this pass can emit. *)
  doc : string;  (** One-line description (shown by [bosec check --list]). *)
  run : subject -> Diag.t list;
}

val passes : pass list
(** The registry, in pipeline order: [unitary], [pattern], [perms],
    [mapping], [plan], [policy], [flow], [target], [circuit],
    [aliasing], [rng], [pipeline], [diskcache]. *)

type settings = {
  disabled_passes : string list;  (** Pass names to skip. *)
  disabled_codes : string list;  (** Codes to drop after running. *)
  werror : bool;  (** Promote warnings to errors ([--Werror]). *)
}

val default_settings : settings
(** Everything enabled, no promotion. *)

val run : ?settings:settings -> subject -> Diag.t list
(** Run every enabled pass over the subject, in registry order. Per
    (pass, code) emission is capped at 16 diagnostics — a suppression
    note (code BH0001, severity Info) reports how many more fired — so
    a fully-poisoned artifact cannot flood the output. *)

val errors : Diag.t list -> int
val warnings : Diag.t list -> int

val load_plan : string -> (Bose_decomp.Plan.t, Diag.t) result
(** Read a {!Bose_decomp.Plan.save} file; I/O and parse failures come
    back as a BH0801 diagnostic with the failing 1-based line. *)

val load_unitary : string -> (Bose_linalg.Mat.t, Diag.t) result
(** Read a {!Bose_linalg.Unitary.save} file; failures come back as a
    BH0802 diagnostic with the failing line. *)
