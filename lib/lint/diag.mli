(** Structured compiler diagnostics.

    Every invariant the Bosehedral pipeline promises (the §IV–§VI pass
    contracts documented in [Compiler]) is statically checkable on the
    compact N×N unitary and the artifacts derived from it; a [Diag.t]
    is one violation (or observation) of such an invariant, carrying a
    stable machine-readable code, a severity, and a location inside the
    offending artifact. The full code catalogue — ID, severity,
    invariant, paper section — lives in docs/DIAGNOSTICS.md.

    Diagnostics render two ways: {!pp} for terminal output
    ([error[BH0401] plan step 17: ...]) and {!to_json} for tooling
    ([bosec check --json]). Codes are append-only: a code is never
    reused for a different invariant. *)

type severity = Error | Warning | Info

type location =
  | Whole  (** The artifact as a whole. *)
  | Entry of int * int  (** Matrix entry (row, col), 0-indexed. *)
  | Step of int  (** Plan step index, elimination order. *)
  | Gate of int  (** Circuit gate index, application order. *)
  | Mode of int  (** Qumode label. *)
  | Edge of int * int  (** Pattern / coupling edge between two labels. *)
  | Line of int  (** 1-based text line, for parse diagnostics. *)

type t = {
  code : string;  (** Stable id, e.g. ["BH0401"] (docs/DIAGNOSTICS.md). *)
  severity : severity;
  location : location;
  message : string;
  hint : string option;  (** Optional remediation advice. *)
}

val error : ?hint:string -> ?loc:location -> code:string -> string -> t
val warning : ?hint:string -> ?loc:location -> code:string -> string -> t
val info : ?hint:string -> ?loc:location -> code:string -> string -> t
(** Constructors; [loc] defaults to {!Whole}. *)

val is_error : t -> bool

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"] — also the JSON encoding. *)

val promote_warnings : t list -> t list
(** [--Werror]: every [Warning] becomes an [Error]; [Info] survives. *)

val count : severity -> t list -> int

val summary : t list -> string
(** ["2 errors, 1 warning, 0 info"] — the line [bosec check] prints
    last and the runtest smoke row greps. Counts are always plural-
    normalized English ("1 error", "2 errors"). *)

val pp_location : Format.formatter -> location -> unit

val pp : Format.formatter -> t -> unit
(** One line: [severity[CODE] location: message] plus an indented
    [hint:] line when present. *)

val pp_list : Format.formatter -> t list -> unit
(** Every diagnostic, one per line, followed by the {!summary} line. *)

val to_json : t list -> string
(** [{"version": 1, "diagnostics": [{"code": ..., "severity": ...,
    "location": {"kind": ..., ...}, "message": ..., "hint": ...}, ...],
    "errors": n, "warnings": n, "info": n}] — one line, no trailing
    newline. *)
