type severity = Error | Warning | Info

type location =
  | Whole
  | Entry of int * int
  | Step of int
  | Gate of int
  | Mode of int
  | Edge of int * int
  | Line of int

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
  hint : string option;
}

let make severity ?hint ?(loc = Whole) ~code message =
  { code; severity; location = loc; message; hint }

let error ?hint ?loc ~code message = make Error ?hint ?loc ~code message
let warning ?hint ?loc ~code message = make Warning ?hint ?loc ~code message
let info ?hint ?loc ~code message = make Info ?hint ?loc ~code message

let is_error d = d.severity = Error

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let promote_warnings =
  List.map (fun d -> if d.severity = Warning then { d with severity = Error } else d)

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let plural n noun = Printf.sprintf "%d %s%s" n noun (if n = 1 then "" else "s")

let summary ds =
  Printf.sprintf "%s, %s, %d info"
    (plural (count Error ds) "error")
    (plural (count Warning ds) "warning")
    (count Info ds)

let pp_location fmt = function
  | Whole -> Format.pp_print_string fmt "artifact"
  | Entry (i, j) -> Format.fprintf fmt "entry (%d,%d)" i j
  | Step i -> Format.fprintf fmt "plan step %d" i
  | Gate i -> Format.fprintf fmt "gate %d" i
  | Mode m -> Format.fprintf fmt "mode %d" m
  | Edge (m, n) -> Format.fprintf fmt "edge (%d,%d)" m n
  | Line l -> Format.fprintf fmt "line %d" l

let pp fmt d =
  Format.fprintf fmt "%s[%s] %a: %s" (severity_name d.severity) d.code pp_location
    d.location d.message;
  match d.hint with
  | None -> ()
  | Some h -> Format.fprintf fmt "@,  hint: %s" h

let pp_list fmt ds =
  Format.fprintf fmt "@[<v>";
  List.iter (fun d -> Format.fprintf fmt "%a@," pp d) ds;
  Format.fprintf fmt "%s@]" (summary ds)

(* ------------------------------------------------------------------ *)
(* JSON rendering. Only strings and ints appear, so the emitter is a
   few lines; string escaping matches the Obs report writer. *)

let escape buf s =
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_string buf s =
  Buffer.add_char buf '"';
  escape buf s;
  Buffer.add_char buf '"'

let add_field buf key value =
  add_string buf key;
  Buffer.add_char buf ':';
  value ()

let location_json buf loc =
  let obj kind fields =
    Buffer.add_char buf '{';
    add_field buf "kind" (fun () -> add_string buf kind);
    List.iter
      (fun (k, v) ->
         Buffer.add_char buf ',';
         add_field buf k (fun () -> Buffer.add_string buf (string_of_int v)))
      fields;
    Buffer.add_char buf '}'
  in
  match loc with
  | Whole -> obj "artifact" []
  | Entry (i, j) -> obj "entry" [ ("row", i); ("col", j) ]
  | Step i -> obj "step" [ ("index", i) ]
  | Gate i -> obj "gate" [ ("index", i) ]
  | Mode m -> obj "mode" [ ("mode", m) ]
  | Edge (m, n) -> obj "edge" [ ("m", m); ("n", n) ]
  | Line l -> obj "line" [ ("line", l) ]

let to_json ds =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"version\":1,\"diagnostics\":[";
  List.iteri
    (fun i d ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_char buf '{';
       add_field buf "code" (fun () -> add_string buf d.code);
       Buffer.add_char buf ',';
       add_field buf "severity" (fun () -> add_string buf (severity_name d.severity));
       Buffer.add_char buf ',';
       add_field buf "location" (fun () -> location_json buf d.location);
       Buffer.add_char buf ',';
       add_field buf "message" (fun () -> add_string buf d.message);
       (match d.hint with
        | None -> ()
        | Some h ->
          Buffer.add_char buf ',';
          add_field buf "hint" (fun () -> add_string buf h));
       Buffer.add_char buf '}')
    ds;
  Buffer.add_string buf
    (Printf.sprintf "],\"errors\":%d,\"warnings\":%d,\"info\":%d}" (count Error ds)
       (count Warning ds) (count Info ds));
  Buffer.contents buf
