module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Obs = Bose_obs.Obs
open Cx

let c_permanent = Obs.Counter.make "gbs.permanent_calls"
let g_max_dim = Obs.Gauge.make "gbs.max_permanent_dim"

(* Ryser with Gray code: perm(A) = (−1)ⁿ Σ_{∅≠S⊆[n]} (−1)^{|S|} Π_i Σ_{j∈S} a_ij.
   The Gray-code walk updates the row sums by a single column per step.
   The matrix is abstracted behind [get] so dense matrices and no-copy
   views share the implementation. *)
let ryser_get n (get : int -> int -> Cx.t) =
  if n > 24 then invalid_arg "Permanent: matrix too large";
  Obs.Counter.incr c_permanent;
  Obs.Gauge.observe_max g_max_dim (float_of_int n);
  if n = 0 then Cx.one
  else begin
    let sums = Array.make n Cx.zero in
    let total = ref Cx.zero in
    let gray = ref 0 in
    for k = 1 to (1 lsl n) - 1 do
      let next = k lxor (k lsr 1) in
      let changed = !gray lxor next in
      let j =
        let rec find b = if changed land (1 lsl b) <> 0 then b else find (b + 1) in
        find 0
      in
      let add = next land (1 lsl j) <> 0 in
      for i = 0 to n - 1 do
        sums.(i) <- (if add then sums.(i) +: get i j else sums.(i) -: get i j)
      done;
      gray := next;
      let product = Array.fold_left (fun acc s -> acc *: s) Cx.one sums in
      let bits =
        let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
        count next 0
      in
      let sign = if (n - bits) mod 2 = 0 then Cx.one else Cx.re (-1.) in
      total := !total +: (sign *: product)
    done;
    !total
  end

let permanent a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Permanent: square matrices only";
  ryser_get n (Mat.get a)

let permanent_view v =
  let n = Mat.View.rows v in
  if Mat.View.cols v <> n then invalid_arg "Permanent.permanent_view: square views only";
  ryser_get n (Mat.View.get v)

let permanent_brute a =
  let n = Mat.rows a in
  if n = 0 then Cx.one
  else begin
    let rec go used acc_row =
      if acc_row = n then Cx.one
      else begin
        let acc = ref Cx.zero in
        for j = 0 to n - 1 do
          if not used.(j) then begin
            used.(j) <- true;
            acc := !acc +: (Mat.get a acc_row j *: go used (acc_row + 1));
            used.(j) <- false
          end
        done;
        !acc
      end
    in
    go (Array.make n false) 0
  end
