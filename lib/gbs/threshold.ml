let silent_probability state modes =
  match modes with
  | [] -> 1.
  | _ -> Fock.vacuum_probability (Fock.prepare (Gaussian.reduce state modes))

let click_probability state pattern =
  let n = Gaussian.modes state in
  if Array.length pattern <> n then
    invalid_arg "Threshold.click_probability: pattern length mismatch";
  let clicks = ref [] and silent = ref [] in
  Array.iteri (fun k c -> if c then clicks := k :: !clicks else silent := k :: !silent) pattern;
  let clicks = !clicks and silent = !silent in
  let c = List.length clicks in
  if c > 20 then invalid_arg "Threshold.click_probability: too many clicking qumodes";
  (* Inclusion–exclusion over the clicking set S with silent set D:
     P(exactly S clicks) = Σ_{Z ⊆ S} (−1)^{|Z|} P(silent on D ∪ Z). *)
  let clicks = Array.of_list clicks in
  let acc = ref 0. in
  for mask = 0 to (1 lsl c) - 1 do
    let subset = ref [] and size = ref 0 in
    Array.iteri
      (fun i k ->
         if mask land (1 lsl i) <> 0 then begin
           subset := k :: !subset;
           incr size
         end)
      clicks;
    let sign = if !size mod 2 = 0 then 1. else -1. in
    acc := !acc +. (sign *. silent_probability state (silent @ !subset))
  done;
  Float.max 0. !acc

let click_distribution state =
  let n = Gaussian.modes state in
  if n > 16 then invalid_arg "Threshold.click_distribution: too many qumodes";
  List.init (1 lsl n) (fun mask ->
      let pattern = Array.init n (fun k -> mask land (1 lsl k) <> 0) in
      let bits = Array.to_list (Array.map (fun b -> if b then 1 else 0) pattern) in
      (bits, click_probability state pattern))

let expected_clicks state =
  let n = Gaussian.modes state in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (1. -. silent_probability state [ k ])
  done;
  !acc
