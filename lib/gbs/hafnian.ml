module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Obs = Bose_obs.Obs
open Cx

let c_hafnian = Obs.Counter.make "gbs.hafnian_calls"
let c_loop_hafnian = Obs.Counter.make "gbs.loop_hafnian_calls"
let g_max_dim = Obs.Gauge.make "gbs.max_hafnian_dim"

let max_indices = 24

(* One memo table per domain for every DP call, cleared (buckets kept)
   rather than reallocated: the sampler evaluates thousands of hafnians
   per distribution and the table was its dominant allocation. [dp]
   never nests — [go] recurses on masks, not on [dp] — so sharing
   within a domain is safe; parallel shot chains (bose_par) each get
   their own table through domain-local storage. *)
let memo_key : (int, Cx.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

(* Memoized DP over index subsets. State = bitmask of still-unmatched
   indices; take its lowest set bit i and either loop it (A_ii, loop
   hafnian only) or match it with any other set bit j. The matrix is
   abstracted behind [get] so dense matrices and no-copy views share the
   implementation. *)
let dp_get ~loops n (get : int -> int -> Cx.t) =
  if n > max_indices then invalid_arg "Hafnian: matrix too large for subset DP";
  Obs.Counter.incr (if loops then c_loop_hafnian else c_hafnian);
  Obs.Gauge.observe_max g_max_dim (float_of_int n);
  if (not loops) && n mod 2 = 1 then Cx.zero
  else begin
    let memo = Domain.DLS.get memo_key in
    Hashtbl.clear memo;
    let rec go mask =
      if mask = 0 then Cx.one
      else
        match Hashtbl.find_opt memo mask with
        | Some v -> v
        | None ->
          let i =
            (* lowest set bit index *)
            let rec find b = if mask land (1 lsl b) <> 0 then b else find (b + 1) in
            find 0
          in
          let rest = mask lxor (1 lsl i) in
          let acc = ref Cx.zero in
          if loops then acc := get i i *: go rest;
          for j = i + 1 to n - 1 do
            if rest land (1 lsl j) <> 0 then
              acc := !acc +: (get i j *: go (rest lxor (1 lsl j)))
          done;
          Hashtbl.add memo mask !acc;
          !acc
    in
    go ((1 lsl n) - 1)
  end

let dp ~loops a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Hafnian: square matrices only";
  dp_get ~loops n (Mat.get a)

let loop_hafnian a = dp ~loops:true a

(* Björklund's power-trace hafnian:
   haf(A) = Σ_{S ⊆ [m]} (−1)^{m−|S|} · [x^m] exp(Σ_{j=1}^m tr((X·A_S)^j)/(2j)·x^j)
   for a 2m×2m symmetric A, where A_S keeps the index pairs (2i, 2i+1)
   with i ∈ S and X is the direct sum of [[0,1],[1,0]] blocks. The
   element source is abstracted as [get] so views need no materialized
   submatrix beyond the per-subset B. *)
let powertrace_get n (get : int -> int -> Cx.t) =
  Obs.Counter.incr c_hafnian;
  Obs.Gauge.observe_max g_max_dim (float_of_int n);
  if n = 0 then Cx.one
  else if n mod 2 = 1 then Cx.zero
  else begin
    let m = n / 2 in
    let total = ref Cx.zero in
    for mask = 1 to (1 lsl m) - 1 do
      (* Indices kept by this subset, as pairs. *)
      let pairs = ref [] in
      for i = m - 1 downto 0 do
        if mask land (1 lsl i) <> 0 then pairs := i :: !pairs
      done;
      let s = List.length !pairs in
      let dim = 2 * s in
      let idx = Array.make dim 0 in
      List.iteri
        (fun pos i ->
           idx.(2 * pos) <- 2 * i;
           idx.((2 * pos) + 1) <- (2 * i) + 1)
        !pairs;
      (* B = X·A_S: X swaps each row pair. *)
      let b =
        Mat.init dim dim (fun r c ->
            let swapped = if r mod 2 = 0 then r + 1 else r - 1 in
            get idx.(swapped) idx.(c))
      in
      (* Power traces tr(B^j), j = 1..m, with two ping-pong product
         buffers instead of an allocation per power. *)
      let traces = Array.make (m + 1) Cx.zero in
      let power = ref (Mat.copy b) in
      let next = ref (Mat.create dim dim) in
      traces.(1) <- Mat.trace !power;
      for j = 2 to m do
        Mat.gemm ~dst:!next !power b;
        let t = !power in
        power := !next;
        next := t;
        traces.(j) <- Mat.trace !power
      done;
      (* g = exp(Σ_j traces_j/(2j)·x^j) truncated at x^m, via the
         logarithmic-derivative recurrence g_k = (1/k)·Σ c_j·j·g_{k−j}. *)
      let c = Array.init (m + 1) (fun j -> if j = 0 then Cx.zero else Cx.scale (1. /. (2. *. float_of_int j)) traces.(j)) in
      let g = Array.make (m + 1) Cx.zero in
      g.(0) <- Cx.one;
      for k = 1 to m do
        let acc = ref Cx.zero in
        for j = 1 to k do
          acc := !acc +: (Cx.scale (float_of_int j) c.(j) *: g.(k - j))
        done;
        g.(k) <- Cx.scale (1. /. float_of_int k) !acc
      done;
      let sign = if (m - s) mod 2 = 0 then Cx.one else Cx.re (-1.) in
      total := !total +: (sign *: g.(m))
    done;
    !total
  end

let powertrace a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Hafnian: square matrices only";
  powertrace_get n (Mat.get a)

let hafnian_powertrace = powertrace

let dispatch_get n get =
  if n <= 20 then dp_get ~loops:false n get
  else if n <= 32 then powertrace_get n get
  else invalid_arg "Hafnian.hafnian: matrix too large"

let hafnian a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Hafnian: square matrices only";
  dispatch_get n (Mat.get a)

let view_get ?diag v name =
  let n = Mat.View.rows v in
  if Mat.View.cols v <> n then invalid_arg (name ^ ": square views only");
  let get =
    match diag with
    | None -> Mat.View.get v
    | Some d ->
      if Array.length d <> n then invalid_arg (name ^ ": diag length mismatch");
      fun i j -> if i = j then d.(i) else Mat.View.get v i j
  in
  (n, get)

let hafnian_view ?diag v =
  let n, get = view_get ?diag v "Hafnian.hafnian_view" in
  dispatch_get n get

let loop_hafnian_view ?diag v =
  let n, get = view_get ?diag v "Hafnian.loop_hafnian_view" in
  dp_get ~loops:true n get

let rec brute ~loops a indices =
  match indices with
  | [] -> Cx.one
  | i :: rest ->
    let matched =
      List.fold_left
        (fun acc j ->
           let remaining = List.filter (fun x -> x <> j) rest in
           acc +: (Mat.get a i j *: brute ~loops a remaining))
        Cx.zero rest
    in
    if loops then matched +: (Mat.get a i i *: brute ~loops a rest) else matched

let hafnian_brute a =
  let n = Mat.rows a in
  if n mod 2 = 1 then Cx.zero else brute ~loops:false a (List.init n (fun i -> i))

let loop_hafnian_brute a =
  let n = Mat.rows a in
  brute ~loops:true a (List.init n (fun i -> i))
