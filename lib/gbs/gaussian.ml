module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Gate = Bose_circuit.Gate
module Noise = Bose_circuit.Noise

(* The 2N×2N covariance matrix is stored flat row-major (like
   Bose_linalg.Mat planes): the symplectic-block updates walk rows
   contiguously instead of chasing a pointer per row. *)
type t = { n : int; mean : float array; cov : float array }

let[@inline] cget t i j = t.cov.((i * 2 * t.n) + j)
let[@inline] cset t i j v = t.cov.((i * 2 * t.n) + j) <- v

let vacuum n =
  if n <= 0 then invalid_arg "Gaussian.vacuum: need at least one qumode";
  let dim = 2 * n in
  let t = { n; mean = Array.make dim 0.; cov = Array.make (dim * dim) 0. } in
  for i = 0 to dim - 1 do
    cset t i i 1.
  done;
  t

let thermal n nbar =
  if Array.length nbar <> n then invalid_arg "Gaussian.thermal: length mismatch";
  Array.iter (fun x -> if x < 0. then invalid_arg "Gaussian.thermal: negative occupation") nbar;
  let t = vacuum n in
  for k = 0 to n - 1 do
    let v = (2. *. nbar.(k)) +. 1. in
    cset t k k v;
    cset t (n + k) (n + k) v
  done;
  t

let modes t = t.n

let copy t = { n = t.n; mean = Array.copy t.mean; cov = Array.copy t.cov }

let mean t = Array.copy t.mean

let cov t =
  let dim = 2 * t.n in
  Array.init dim (fun i -> Array.init dim (fun j -> cget t i j))

(* V ← S V Sᵀ and r̄ ← S r̄ where S acts as the m×m block [s] on the
   listed quadrature [indices] and as identity elsewhere. *)
let apply_block t indices s =
  let m = Array.length indices in
  let dim = 2 * t.n in
  (* Rows: V[idx_a][j] ← Σ_b s[a][b]·V[idx_b][j]. *)
  let buf = Array.make m 0. in
  for j = 0 to dim - 1 do
    for a = 0 to m - 1 do
      let acc = ref 0. in
      for b = 0 to m - 1 do
        acc := !acc +. (s.(a).(b) *. cget t indices.(b) j)
      done;
      buf.(a) <- !acc
    done;
    for a = 0 to m - 1 do
      cset t indices.(a) j buf.(a)
    done
  done;
  (* Columns. *)
  for i = 0 to dim - 1 do
    for a = 0 to m - 1 do
      let acc = ref 0. in
      for b = 0 to m - 1 do
        acc := !acc +. (s.(a).(b) *. cget t i indices.(b))
      done;
      buf.(a) <- !acc
    done;
    for a = 0 to m - 1 do
      cset t i indices.(a) buf.(a)
    done
  done;
  (* Mean. *)
  for a = 0 to m - 1 do
    let acc = ref 0. in
    for b = 0 to m - 1 do
      acc := !acc +. (s.(a).(b) *. t.mean.(indices.(b)))
    done;
    buf.(a) <- !acc
  done;
  for a = 0 to m - 1 do
    t.mean.(indices.(a)) <- buf.(a)
  done

let check_mode t k name =
  if k < 0 || k >= t.n then invalid_arg (name ^ ": qumode out of range")

let phase t k angle =
  check_mode t k "Gaussian.phase";
  (* â → e^{iφ}â ⇒ (x,p) rotates by φ. *)
  let c = cos angle and s = sin angle in
  apply_block t [| k; t.n + k |] [| [| c; -.s |]; [| s; c |] |]

let squeeze_real t k r =
  (* S(r), r real: x → e^{-r}x, p → e^{r}p. *)
  apply_block t [| k; t.n + k |] [| [| exp (-.r); 0. |]; [| 0.; exp r |] |]

(* S(α) with α = r·e^{iψ} equals R(ψ/2)·S(r)·R(−ψ/2): rotate into the
   squeezing axis, squeeze, rotate back. *)
let squeeze t k alpha =
  check_mode t k "Gaussian.squeeze";
  let r = Cx.abs alpha and psi = Cx.arg alpha in
  if r <> 0. then begin
    phase t k (-.psi /. 2.);
    squeeze_real t k r;
    phase t k (psi /. 2.)
  end

let beamsplitter t k l theta phi =
  check_mode t k "Gaussian.beamsplitter";
  check_mode t l "Gaussian.beamsplitter";
  if k = l then invalid_arg "Gaussian.beamsplitter: distinct qumodes required";
  (* Bogoliubov block U₂ = [[cosθ, −e^{−iφ}sinθ], [e^{iφ}sinθ, cosθ]];
     symplectic is [[Re U₂, −Im U₂], [Im U₂, Re U₂]] on (x_k,x_l,p_k,p_l). *)
  let c = cos theta and s = sin theta in
  let xkk = c and xkl = -.(cos phi) *. s and xlk = cos phi *. s and xll = c in
  let ykk = 0. and ykl = sin phi *. s and ylk = sin phi *. s and yll = 0. in
  apply_block t
    [| k; l; t.n + k; t.n + l |]
    [|
      [| xkk; xkl; -.ykk; -.ykl |];
      [| xlk; xll; -.ylk; -.yll |];
      [| ykk; ykl; xkk; xkl |];
      [| ylk; yll; xlk; xll |];
    |]

let displace t k alpha =
  check_mode t k "Gaussian.displace";
  (* ħ = 2: ⟨x⟩ += 2·Re α, ⟨p⟩ += 2·Im α. *)
  t.mean.(k) <- t.mean.(k) +. (2. *. alpha.Complex.re);
  t.mean.(t.n + k) <- t.mean.(t.n + k) +. (2. *. alpha.Complex.im)

let interferometer t u =
  if Mat.rows u <> t.n || Mat.cols u <> t.n then
    invalid_arg "Gaussian.interferometer: unitary size mismatch";
  let indices = Array.init (2 * t.n) (fun i -> i) in
  let s =
    Array.init (2 * t.n) (fun i ->
        Array.init (2 * t.n) (fun j ->
            let block_i = i / t.n and block_j = j / t.n in
            let z = Mat.get u (i mod t.n) (j mod t.n) in
            match (block_i, block_j) with
            | 0, 0 | 1, 1 -> z.Complex.re
            | 0, 1 -> -.z.Complex.im
            | 1, 0 -> z.Complex.im
            | _ -> assert false))
  in
  apply_block t indices s

let apply_gate t = function
  | Gate.Squeeze (k, a) -> squeeze t k a
  | Gate.Phase (k, angle) -> phase t k angle
  | Gate.Beamsplitter (k, l, theta, phi) -> beamsplitter t k l theta phi
  | Gate.Displace (k, a) -> displace t k a

let loss t k rate =
  check_mode t k "Gaussian.loss";
  if rate < 0. || rate > 1. then invalid_arg "Gaussian.loss: rate out of [0,1]";
  let eta = 1. -. rate in
  let g = sqrt eta in
  let dim = 2 * t.n in
  let scale_line idx =
    for j = 0 to dim - 1 do
      cset t idx j (cget t idx j *. g);
      cset t j idx (cget t j idx *. g)
    done;
    cset t idx idx (cget t idx idx +. (1. -. eta));
    t.mean.(idx) <- t.mean.(idx) *. g
  in
  scale_line k;
  scale_line (t.n + k)

let run_circuit ?noise t circuit =
  if Bose_circuit.Circuit.modes circuit <> t.n then
    invalid_arg "Gaussian.run_circuit: mode count mismatch";
  List.iter
    (fun gate ->
       apply_gate t gate;
       match noise with
       | None -> ()
       | Some model ->
         let rate = Noise.loss_of_gate model gate in
         if rate > 0. then List.iter (fun k -> loss t k rate) (Gate.qumodes gate))
    (Bose_circuit.Circuit.gates circuit)

let reduce t modes =
  let k = List.length modes in
  if k = 0 then invalid_arg "Gaussian.reduce: keep at least one qumode";
  if List.length (List.sort_uniq compare modes) <> k then
    invalid_arg "Gaussian.reduce: duplicate qumodes";
  List.iter (fun m -> check_mode t m "Gaussian.reduce") modes;
  let keep = Array.of_list modes in
  let index i = if i < k then keep.(i) else t.n + keep.(i - k) in
  let r = { n = k; mean = Array.make (2 * k) 0.; cov = Array.make (2 * k * 2 * k) 0. } in
  for i = 0 to (2 * k) - 1 do
    r.mean.(i) <- t.mean.(index i);
    for j = 0 to (2 * k) - 1 do
      cset r i j (cget t (index i) (index j))
    done
  done;
  r

let mean_photons t k =
  check_mode t k "Gaussian.mean_photons";
  let vxx = cget t k k and vpp = cget t (t.n + k) (t.n + k) in
  let x = t.mean.(k) and p = t.mean.(t.n + k) in
  ((vxx +. vpp -. 2.) /. 4.) +. (((x *. x) +. (p *. p)) /. 4.)

let total_mean_photons t =
  let acc = ref 0. in
  for k = 0 to t.n - 1 do
    acc := !acc +. mean_photons t k
  done;
  !acc

let alpha t k =
  check_mode t k "Gaussian.alpha";
  Cx.make (t.mean.(k) /. 2.) (t.mean.(t.n + k) /. 2.)

(* Real matrix product helper for the symplectic-spectrum computation. *)
let rmul a b =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0. in
          for k = 0 to n - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let symplectic_eigenvalues t =
  let dim = 2 * t.n in
  (* V^{1/2} from the (real symmetric) eigendecomposition of V. Jacobi
     consumes the boxed representation, so convert at the boundary. *)
  let evals, q = Bose_linalg.Eigen.jacobi (cov t) in
  let sqrt_evals = Array.map (fun l -> sqrt (Float.max 0. l)) evals in
  let vhalf =
    Array.init dim (fun i ->
        Array.init dim (fun j ->
            let acc = ref 0. in
            for k = 0 to dim - 1 do
              acc := !acc +. (q.(i).(k) *. sqrt_evals.(k) *. q.(j).(k))
            done;
            !acc))
  in
  (* Ω (xxpp) = [[0, I], [−I, 0]]. A = V^{1/2}·Ω·V^{1/2} is real
     antisymmetric; the eigenvalues of AᵀA are the ν_k², each twice. *)
  let omega =
    Array.init dim (fun i ->
        Array.init dim (fun j ->
            if i < t.n && j = i + t.n then 1.
            else if i >= t.n && j = i - t.n then -1.
            else 0.))
  in
  let a = rmul vhalf (rmul omega vhalf) in
  let at = Array.init dim (fun i -> Array.init dim (fun j -> a.(j).(i))) in
  let ata = rmul at a in
  (* Symmetrize away rounding before Jacobi. *)
  let sym = Array.init dim (fun i -> Array.init dim (fun j -> (ata.(i).(j) +. ata.(j).(i)) /. 2.)) in
  let nu2, _ = Bose_linalg.Eigen.jacobi sym in
  Array.init t.n (fun k -> sqrt (Float.max 0. nu2.(2 * k)))

let purity t =
  Array.fold_left (fun acc nu -> acc /. Float.max nu 1e-12) 1. (symplectic_eigenvalues t)

let is_valid ?(tol = 1e-8) t =
  let dim = 2 * t.n in
  let symmetric = ref true in
  for i = 0 to dim - 1 do
    for j = i + 1 to dim - 1 do
      if Float.abs (cget t i j -. cget t j i) > tol then symmetric := false
    done
  done;
  !symmetric
  && Array.for_all (fun nu -> nu >= 1. -. Float.max tol 1e-7) (symplectic_eigenvalues t)

let homodyne_sample rng t k =
  check_mode t k "Gaussian.homodyne_sample";
  t.mean.(k) +. (sqrt (Float.max 0. (cget t k k)) *. Bose_util.Rng.gaussian rng)

let homodyne_condition t k outcome =
  check_mode t k "Gaussian.homodyne_condition";
  if t.n < 2 then invalid_arg "Gaussian.homodyne_condition: need a qumode left over";
  let keep = List.filter (fun m -> m <> k) (List.init t.n (fun m -> m)) in
  let keep = Array.of_list keep in
  let nk = Array.length keep in
  let index i = if i < nk then keep.(i) else t.n + keep.(i - nk) in
  let vxx = cget t k k in
  if vxx <= 1e-12 then invalid_arg "Gaussian.homodyne_condition: degenerate quadrature";
  (* Gaussian conditioning on x_k = outcome with projector Π = |x⟩⟨x|:
     V' = V_B − C·C ᵀ/V_xx, r̄' = r̄_B + C·(outcome − x̄_k)/V_xx, where
     C = Cov(B, x_k). *)
  let c = Array.init (2 * nk) (fun i -> cget t (index i) k) in
  let shift = (outcome -. t.mean.(k)) /. vxx in
  let r = { n = nk; mean = Array.make (2 * nk) 0.; cov = Array.make (2 * nk * 2 * nk) 0. } in
  for i = 0 to (2 * nk) - 1 do
    r.mean.(i) <- t.mean.(index i) +. (c.(i) *. shift);
    for j = 0 to (2 * nk) - 1 do
      cset r i j (cget t (index i) (index j) -. (c.(i) *. c.(j) /. vxx))
    done
  done;
  r
