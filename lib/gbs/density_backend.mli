(** Truncated-Fock-space density-matrix simulator with photon loss.

    The third, fully independent implementation of GBS dynamics: mixed
    states ρ over the truncated Fock basis, unitary gates as ρ → UρU†
    (reusing {!Fock_backend}'s generators), and the loss channel as its
    Kraus decomposition
    K_j|n⟩ = √(C(n,j) η^{n−j} (1−η)^j) |n−j⟩.
    This is the reference the lossy covariance-formalism simulator is
    cross-validated against. Practical for ≤ 3 qumodes at cutoffs ≤ 6
    (dimension grows as C(modes+cutoff, modes)²). *)

type t

val vacuum : modes:int -> cutoff:int -> t
val modes : t -> int
val dimension : t -> int

val of_pure : Fock_backend.t -> t
(** ρ = |ψ⟩⟨ψ|. *)

val apply_gate : t -> Bose_circuit.Gate.t -> t

val loss : t -> int -> float -> t
(** Photon-loss channel with the given loss rate on one qumode. *)

val run_circuit : ?noise:Bose_circuit.Noise.t -> t -> Bose_circuit.Circuit.t -> t
(** Apply gates in order; with [noise], each gate is followed by loss on
    the qumodes it touched — the same convention as
    {!Gaussian.run_circuit}. *)

val probability : t -> int list -> float
(** ⟨pattern|ρ|pattern⟩. *)

val trace : t -> float
(** tr ρ — below 1 when amplitude leaked past the truncation. *)

val purity : t -> float
(** tr ρ². *)

val mean_photons : t -> float
(** tr(ρ·Σ n̂_k). *)
