(** Hafnians and loop hafnians of complex symmetric matrices.

    The hafnian sums products over perfect matchings; the loop hafnian
    additionally allows fixed points weighted by diagonal entries. They
    give GBS output probabilities (Hamilton et al. 2017): the hafnian
    for squeezed inputs, the loop hafnian when displacements are present.

    The main implementation is a memoized subset-DP — exact, and fast
    up to the ~20 indices (10 photons) that the truncated distributions
    in this repository need. A brute-force enumerator over perfect
    matchings backs it in tests. *)

val hafnian : Bose_linalg.Mat.t -> Bose_linalg.Cx.t
(** [hafnian a] for symmetric [a]. 1 for the 0×0 matrix, 0 for odd
    dimension. Dispatches between the subset-DP (small) and the
    power-trace algorithm (up to 32 indices).
    @raise Invalid_argument above 32 indices. *)

val hafnian_powertrace : Bose_linalg.Mat.t -> Bose_linalg.Cx.t
(** Björklund's power-trace algorithm: O(2^{n/2}·n³) time and O(n²)
    memory — reaches sizes where the subset-DP's 2^n memo does not fit.
    Exposed for testing; {!hafnian} picks it automatically. *)

val loop_hafnian : Bose_linalg.Mat.t -> Bose_linalg.Cx.t
(** Loop hafnian; nonzero for odd dimensions when the diagonal is. *)

val hafnian_view :
  ?diag:Bose_linalg.Cx.t array -> Bose_linalg.Mat.View.t -> Bose_linalg.Cx.t
(** {!hafnian} of a no-copy submatrix view — the repeated-index
    submatrices of GBS probabilities never get materialized. [diag]
    overrides the (i,i) entries in view coordinates (the power-trace
    fallback above 20 indices reads the diagonal, so callers that
    previously zeroed it keep identical results). *)

val loop_hafnian_view :
  ?diag:Bose_linalg.Cx.t array -> Bose_linalg.Mat.View.t -> Bose_linalg.Cx.t
(** {!loop_hafnian} of a view. [diag] overrides the (i,i) entries (in
    view coordinates) — displacement terms γ replace the diagonal of the
    reduced kernel without copying it. *)

val hafnian_brute : Bose_linalg.Mat.t -> Bose_linalg.Cx.t
(** Perfect-matching enumeration, O((n-1)!!) — for testing only. *)

val loop_hafnian_brute : Bose_linalg.Mat.t -> Bose_linalg.Cx.t
(** Matching-with-loops enumeration — for testing only. *)
