(** Gaussian state-preparation synthesis (Bloch–Messiah for pure
    states): given a target {e pure} zero-mean-or-displaced Gaussian
    state, produce the squeezer + interferometer (+ displacement)
    circuit that prepares it from vacuum.

    For a pure state the covariance V is itself symplectic positive-
    definite, so S = V^{1/2} satisfies V = S·Sᵀ, and the symmetric
    symplectic S eigen-decomposes as K·D·Kᵀ with K orthogonal
    {e and} symplectic (a passive interferometer, built by pairing each
    eigenvector u of eigenvalue e^{r} with Ω·u of eigenvalue e^{−r}) and
    D a diagonal of single-mode squeezers. Since Kᵀ fixes the vacuum,
    the circuit "squeeze by D, then interferometer K" prepares V. *)

val synthesize : Gaussian.t -> Bose_circuit.Circuit.t
(** Circuit preparing the given state from vacuum: one squeezer per
    squeezed mode, one interferometer unitary (as decomposed MZI gates
    via the chain pattern), and final displacements.
    @raise Invalid_argument if the state is not pure (purity below
    ~1 − 1e-6). *)

val synthesis_parts :
  Gaussian.t -> float array * Bose_linalg.Mat.t * Bose_linalg.Cx.t array
(** The raw ingredients: per-mode squeezing parameters r, the N×N
    interferometer unitary, and the displacements — for callers that
    want to compile the interferometer themselves (e.g. through the
    Bosehedral pipeline). *)
