(** Fock-basis measurement probabilities of Gaussian states — the GBS
    output distribution (Hamilton et al. 2017).

    For a Gaussian state with husimi covariance Q = Σ + I/2 and complex
    mean d, the probability of photon pattern n̄ is

    p(n̄) = exp(−½ d†Q⁻¹d) / (√det Q · Π n_i!) · lhaf(Ã_{n̄})

    where Ã_{n̄} repeats rows/columns of A = X(I − Q⁻¹) per photon
    count and carries γ = Q⁻¹d on its diagonal. Without displacement the
    loop hafnian reduces to the hafnian. All quantities are N×N-scale;
    only the per-pattern (loop) hafnian is exponential in the photon
    number, which the truncated distributions below keep small. *)

type prepared
(** A Gaussian state preprocessed for repeated probability queries. *)

val prepare : Gaussian.t -> prepared
(** One-time O(N³) setup (inverse, determinant). *)

val vacuum_probability : prepared -> float

val probability : prepared -> int array -> float
(** Probability of measuring exactly the given photon pattern
    (length-N array of photon counts). *)

val pattern_distribution :
  max_photons:int -> Gaussian.t -> (int list * float) list
(** All patterns with total photons ≤ [max_photons] and their exact
    probabilities. The sum is < 1; the missing tail is the probability
    of seeing more photons. *)

val truncated : max_photons:int -> Gaussian.t -> int list Bose_util.Dist.t
(** {!pattern_distribution} as an unnormalized distribution plus the
    {!tail} outcome carrying the remaining mass, so the total is 1 and
    divergences between truncations are well-defined. *)

val tail : int list
(** Reserved outcome ([\[-1\]]) holding the truncated tail mass. *)
