module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Combin = Bose_util.Combin
module Gate = Bose_circuit.Gate
module Noise = Bose_circuit.Noise
open Cx

type t = {
  n : int;
  cutoff : int;
  proto : Fock_backend.t;  (* gate-matrix factory over the same basis *)
  basis : int array array;
  rho : Mat.t;
}

let vacuum ~modes ~cutoff =
  let proto = Fock_backend.vacuum ~modes ~cutoff in
  let basis = Fock_backend.basis_patterns proto in
  let dim = Array.length basis in
  let rho = Mat.create dim dim in
  let vac = Option.get (Fock_backend.basis_index proto (List.init modes (fun _ -> 0))) in
  Mat.set rho vac vac Cx.one;
  { n = modes; cutoff; proto; basis; rho }

let modes t = t.n
let dimension t = Array.length t.basis

let of_pure psi =
  let basis = Fock_backend.basis_patterns psi in
  let dim = Array.length basis in
  let amp = Array.init dim (fun i -> Fock_backend.amplitude psi (Array.to_list basis.(i))) in
  let rho = Mat.init dim dim (fun i j -> amp.(i) *: Cx.conj amp.(j)) in
  { n = Fock_backend.modes psi; cutoff = Fock_backend.cutoff psi; proto = psi; basis; rho }

(* ρ ← U·ρ·U† without materializing U†: ρ·U† is one gemm_adjoint. *)
let conjugate t u =
  let dim = dimension t in
  let tmp = Mat.create dim dim in
  Mat.gemm_adjoint ~dst:tmp t.rho u;
  let rho = Mat.create dim dim in
  Mat.gemm ~dst:rho u tmp;
  { t with rho }

let apply_gate t gate = conjugate t (Fock_backend.gate_matrix t.proto gate)

(* Loss Kraus operators on qumode k with transmissivity η:
   K_j|n⟩ = √(C(n_k, j)·η^{n_k−j}·(1−η)^j)·|n − j·e_k⟩. *)
let loss t k rate =
  if k < 0 || k >= t.n then invalid_arg "Density_backend.loss: qumode out of range";
  if rate < 0. || rate > 1. then invalid_arg "Density_backend.loss: rate out of [0,1]";
  if rate = 0. then t
  else begin
    let eta = 1. -. rate in
    let dim = dimension t in
    let result = Mat.create dim dim in
    let tmp = Mat.create dim dim in
    let kraus = Mat.create dim dim in
    for j = 0 to t.cutoff do
      Mat.fill_zero kraus;
      let nonzero = ref false in
      Array.iteri
        (fun col pattern ->
           let nk = pattern.(k) in
           if nk >= j then begin
             let lowered = Array.copy pattern in
             lowered.(k) <- nk - j;
             match Fock_backend.basis_index t.proto (Array.to_list lowered) with
             | Some row ->
               let w =
                 sqrt
                   (Combin.binomial nk j
                    *. (eta ** float_of_int (nk - j))
                    *. ((1. -. eta) ** float_of_int j))
               in
               if w > 0. then begin
                 Mat.set kraus row col (Cx.re w);
                 nonzero := true
               end
             | None -> ()
           end)
        t.basis;
      (* result += K_j·ρ·K_j†, accumulated in place. *)
      if !nonzero then begin
        Mat.gemm_adjoint ~dst:tmp t.rho kraus;
        Mat.gemm ~acc:true ~dst:result kraus tmp
      end
    done;
    { t with rho = result }
  end

let run_circuit ?noise t circuit =
  if Bose_circuit.Circuit.modes circuit <> t.n then
    invalid_arg "Density_backend.run_circuit: mode count mismatch";
  List.fold_left
    (fun t gate ->
       let t = apply_gate t gate in
       match noise with
       | None -> t
       | Some model ->
         let rate = Noise.loss_of_gate model gate in
         if rate > 0. then
           List.fold_left (fun t k -> loss t k rate) t (Gate.qumodes gate)
         else t)
    t
    (Bose_circuit.Circuit.gates circuit)

let probability t pattern =
  match Fock_backend.basis_index t.proto pattern with
  | None -> 0.
  | Some i -> (Mat.get t.rho i i).Complex.re

let trace t = (Mat.trace t.rho).Complex.re

let purity t = (Mat.trace_mul t.rho t.rho).Complex.re

let mean_photons t =
  let acc = ref 0. in
  Array.iteri
    (fun i pattern ->
       acc :=
         !acc
         +. ((Mat.get t.rho i i).Complex.re *. float_of_int (Array.fold_left ( + ) 0 pattern)))
    t.basis;
  !acc
