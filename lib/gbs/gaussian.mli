(** Gaussian quantum states in the covariance-matrix formalism — the
    OCaml equivalent of the Strawberry Fields 'Gaussian' backend the
    paper simulates with (§VII-A).

    A state over N qumodes is a mean vector r̄ ∈ ℝ^{2N} and covariance
    V ∈ ℝ^{2N×2N} in xxpp ordering ([x_0..x_{N-1}, p_0..p_{N-1}]) with
    ħ = 2, so the vacuum has V = I. All GBS gates map Gaussian states to
    Gaussian states; photon loss does too, which is what makes noisy
    GBS simulation tractable at this level. *)

type t

val vacuum : int -> t
(** N-qumode vacuum. *)

val thermal : int -> float array -> t
(** [thermal n nbar] — product of thermal states with the given mean
    photon numbers (covariance (2n̄_k+1)·I on each qumode).
    @raise Invalid_argument on negative n̄ or length mismatch. *)

val modes : t -> int

val copy : t -> t

val mean : t -> float array
(** Copy of the 2N mean vector. *)

val cov : t -> float array array
(** Copy of the 2N×2N covariance matrix. *)

(** {1 Gates} *)

val squeeze : t -> int -> Bose_linalg.Cx.t -> unit
(** S(α) on one qumode, α = r·e^{iψ} (paper §II-A definition). *)

val phase : t -> int -> float -> unit
(** R(φ) on one qumode. *)

val beamsplitter : t -> int -> int -> float -> float -> unit
(** BS(θ, φ) on two qumodes. *)

val displace : t -> int -> Bose_linalg.Cx.t -> unit
(** D(α) on one qumode. *)

val interferometer : t -> Bose_linalg.Mat.t -> unit
(** Apply a whole N×N linear-interferometer unitary at once:
    â → U·â. *)

val apply_gate : t -> Bose_circuit.Gate.t -> unit

val loss : t -> int -> float -> unit
(** [loss state k rate] — photon-loss channel with loss rate ∈ [0, 1]
    (transmissivity 1 − rate) on qumode [k]. *)

val run_circuit : ?noise:Bose_circuit.Noise.t -> t -> Bose_circuit.Circuit.t -> unit
(** Apply every gate in order; with [noise], each gate is followed by
    its loss channel on the qumodes it touched. *)

val reduce : t -> int list -> t
(** Marginal state of the listed qumodes (in the listed order) — for a
    Gaussian state this is just the corresponding sub-blocks of the
    mean and covariance. @raise Invalid_argument on duplicates or
    out-of-range modes. *)

(** {1 Observables} *)

val mean_photons : t -> int -> float
(** ⟨n̂⟩ of one qumode. *)

val total_mean_photons : t -> float

val alpha : t -> int -> Bose_linalg.Cx.t
(** ⟨â⟩ of one qumode. *)

val symplectic_eigenvalues : t -> float array
(** The N symplectic eigenvalues ν_k of the covariance matrix, sorted
    decreasing. Physical states have every ν_k ≥ 1 (ħ = 2); pure states
    have all ν_k = 1. Computed as the square roots of the eigenvalues
    of AᵀA with A = V^{1/2}·Ω·V^{1/2} — real-symmetric work only. *)

val purity : t -> float
(** tr ρ² = 1 / Π ν_k. 1 for pure states. *)

val is_valid : ?tol:float -> t -> bool
(** Physicality: covariance symmetric and the uncertainty principle
    V + iΩ ⪰ 0 holds, i.e. every symplectic eigenvalue ≥ 1 − [tol]. *)

(** {1 Homodyne measurement} *)

val homodyne_sample : Bose_util.Rng.t -> t -> int -> float
(** Draw an x-quadrature measurement outcome of one qumode: a normal
    deviate with the marginal's mean and variance. Does not modify the
    state. *)

val homodyne_condition : t -> int -> float -> t
(** The post-measurement state of the {e remaining} qumodes after an
    ideal x-homodyne on qumode [k] returned the given outcome: Gaussian
    conditioning [V' = V_B − C·(Π V_A Π)⁻¹·Cᵀ] with Π projecting on x.
    @raise Invalid_argument on a single-qumode state. *)
