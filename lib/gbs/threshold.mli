(** Threshold ("click / no-click") detection of Gaussian states.

    Many GBS experiments (including the Borealis and Jiuzhang quantum-
    advantage demonstrations) use threshold detectors that only report
    whether each qumode saw ≥ 1 photon. For Gaussian states the exact
    click-pattern probabilities follow from inclusion–exclusion over
    vacuum probabilities of reduced states — the Torontonian (Quesada
    et al. 2018) computed through 2^{clicks} marginal determinants. *)

val silent_probability : Gaussian.t -> int list -> float
(** Probability that every listed qumode registers zero photons
    (others unconstrained): the vacuum probability of the marginal
    state. The empty list gives 1. *)

val click_probability : Gaussian.t -> bool array -> float
(** Exact probability of a full click pattern: [pattern.(k)] true means
    qumode [k] clicks, false means it stays silent. Inclusion–exclusion
    costs 2^{#clicks} determinant evaluations.
    @raise Invalid_argument if the pattern length differs from the
    state's mode count or more than 20 modes click. *)

val click_distribution : Gaussian.t -> (int list * float) list
(** All 2^N click patterns (as 0/1 lists) with exact probabilities;
    sums to 1 up to rounding. Practical for N ≲ 12. *)

val expected_clicks : Gaussian.t -> float
(** Σ_k P(qumode k clicks). *)
