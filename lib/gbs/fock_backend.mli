(** Independent truncated-Fock-space state-vector simulator.

    A second backend, deliberately sharing no math with the
    covariance-formalism {!Gaussian} simulator: states are complex
    amplitudes over all Fock patterns with total photons ≤ cutoff, and
    gates act by exponentiating their ladder-operator generators
    (paper §II-A definitions) on the truncated space. Used to
    cross-validate the Gaussian backend and its hafnian probabilities;
    photon-number-conserving gates (phase shifters, beamsplitters) are
    exact here, squeezing/displacement carry truncation error that
    vanishes as the cutoff grows.

    Pure states only (no loss channel); practical for ≤ 4 qumodes at
    cutoffs ≤ 8. *)

type t

val vacuum : modes:int -> cutoff:int -> t
(** All amplitude on |0…0⟩; basis = patterns with ≤ [cutoff] photons. *)

val basis_state : modes:int -> cutoff:int -> int list -> t
(** All amplitude on one Fock pattern — e.g. the single-photon inputs of
    plain Boson sampling. @raise Invalid_argument if the pattern exceeds
    the cutoff. *)

val modes : t -> int
val cutoff : t -> int
val dimension : t -> int
(** Basis size C(modes + cutoff, modes). *)

val apply_gate : t -> Bose_circuit.Gate.t -> t
(** Apply one gate (builds and exponentiates its generator). *)

val basis_patterns : t -> int array array
(** The basis, as photon patterns indexed consistently with
    {!gate_matrix} rows/columns. Fresh copy. *)

val basis_index : t -> int list -> int option
(** Index of a pattern in the basis; [None] beyond the cutoff. *)

val gate_matrix : t -> Bose_circuit.Gate.t -> Bose_linalg.Mat.t
(** The gate's (truncated) unitary matrix on the basis — shared with the
    density-matrix backend. *)

val run_circuit : t -> Bose_circuit.Circuit.t -> t
(** Apply every gate in order (no noise model). *)

val amplitude : t -> int list -> Bose_linalg.Cx.t
(** ⟨pattern|ψ⟩; 0 for patterns beyond the cutoff. *)

val probability : t -> int list -> float

val norm : t -> float
(** ‖ψ‖ — below 1 when amplitude leaked past the truncation. *)

val distribution : t -> (int list * float) list
(** All basis patterns with their probabilities. *)
