module Rng = Bose_util.Rng
module Dist = Bose_util.Dist
module Obs = Bose_obs.Obs
module Pool = Bose_par.Pool

let c_draws = Obs.Counter.make "gbs.sampler_draws"
let c_chain_rule_draws = Obs.Counter.make "gbs.chain_rule_draws"

type t = { dist : int list Dist.t; tail_mass : float }

let of_state ~max_photons state =
  let dist = Fock.truncated ~max_photons state in
  { dist; tail_mass = Dist.prob dist Fock.tail }

let tail_mass t = t.tail_mass

let draw rng t =
  Obs.Counter.incr c_draws;
  Dist.sample rng t.dist

let draw_many rng t shots = List.init shots (fun _ -> draw rng t)

let empirical rng t shots = Dist.of_samples (draw_many rng t shots)

let exact t = t.dist

let chain_rule ?(max_per_mode = 6) rng state =
  Obs.Counter.incr c_chain_rule_draws;
  let n = Gaussian.modes state in
  (* Preprocess every prefix marginal once. *)
  let prepared =
    Array.init n (fun k -> Fock.prepare (Gaussian.reduce state (List.init (k + 1) (fun i -> i))))
  in
  let drawn = ref [] in
  let prefix_prob = ref 1. in
  let photons_so_far = ref 0 in
  for k = 0 to n - 1 do
    let before = Array.of_list (List.rev !drawn) in
    (* Joint probabilities P(n_1…n_{k-1}, j), probing j upward and
       stopping once the conditional mass is exhausted (or the hafnian
       would outgrow the hafnian index budget — a regime whose probability is
       already negligible). *)
    let joint = Array.make (max_per_mode + 1) 0. in
    let prefix = Float.max !prefix_prob 1e-300 in
    let cumulative = ref 0. in
    (try
       for j = 0 to max_per_mode do
         if 2 * (!photons_so_far + j) > 24 then raise Exit;
         joint.(j) <- Fock.probability prepared.(k) (Array.append before [| j |]);
         cumulative := !cumulative +. joint.(j);
         if !cumulative /. prefix > 1. -. 1e-6 then raise Exit
       done
     with Exit -> ());
    (* Conditional distribution given the prefix; mass beyond the cap is
       folded into the cap entry so the draw is always well-defined. *)
    let weights = Array.map (fun p -> p /. prefix) joint in
    let overflow = Float.max 0. (1. -. (!cumulative /. prefix)) in
    weights.(max_per_mode) <- weights.(max_per_mode) +. overflow;
    let j =
      if Array.fold_left ( +. ) 0. weights <= 0. then 0
      else Rng.choose_weighted rng weights
    in
    drawn := j :: !drawn;
    photons_so_far := !photons_so_far + j;
    prefix_prob := Float.max joint.(min j max_per_mode) 1e-300
  done;
  List.rev !drawn

let chain_rule_many ?max_per_mode rng state shots =
  List.init shots (fun _ -> chain_rule ?max_per_mode rng state)

(* ------------------------------------------------- parallel chains *)

(* Shot chains: [shots] draws are partitioned over [chains] independent
   shot sequences, each with its own pre-split RNG stream and a fixed
   shot count that depends only on [chains] and [shots]. The chain
   layout is identical whether chains run sequentially or on a pool, so
   for a fixed seed the concatenated output is bit-identical across
   every [?pool] configuration. *)

let assert_distinct_streams streams =
  assert (
    let n = Array.length streams in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Rng.same streams.(i) streams.(j) then ok := false
      done
    done;
    !ok)

let run_chains ?pool ~chains rng shots shot_fun =
  if chains < 1 then invalid_arg "Sampler: chains must be >= 1";
  if shots < 0 then invalid_arg "Sampler: negative shot count";
  let chains = min chains (max shots 1) in
  let streams = Rng.split rng chains in
  assert_distinct_streams streams;
  let base = shots / chains and extra = shots mod chains in
  let per_chain c = shot_fun streams.(c) (base + if c < extra then 1 else 0) in
  let out = Array.make chains [] in
  (match pool with
   | Some p when Pool.domains p > 1 ->
     Pool.run p ~tasks:chains (fun c -> out.(c) <- per_chain c)
   | _ ->
     for c = 0 to chains - 1 do
       out.(c) <- per_chain c
     done);
  List.concat (Array.to_list out)

let draw_chains ?(chains = 16) ?pool rng t shots =
  run_chains ?pool ~chains rng shots (fun stream n -> draw_many stream t n)

let chain_rule_chains ?max_per_mode ?(chains = 16) ?pool rng state shots =
  run_chains ?pool ~chains rng shots (fun stream n ->
      chain_rule_many ?max_per_mode stream state n)
