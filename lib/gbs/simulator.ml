let run ?noise circuit =
  let state = Gaussian.vacuum (Bose_circuit.Circuit.modes circuit) in
  Gaussian.run_circuit ?noise state circuit;
  state

let output_distribution ?noise ~max_photons circuit =
  Fock.truncated ~max_photons (run ?noise circuit)
