(** Matrix permanents — the amplitude kernel of plain (Fock-input)
    Boson sampling (Aaronson & Arkhipov 2011), the other computation
    the paper's compiler targets. *)

val permanent : Bose_linalg.Mat.t -> Bose_linalg.Cx.t
(** Ryser's formula with Gray-code updates: O(2ⁿ·n). 1 for the 0×0
    matrix. @raise Invalid_argument for non-square input or above 24
    rows. *)

val permanent_view : Bose_linalg.Mat.View.t -> Bose_linalg.Cx.t
(** {!permanent} of a no-copy submatrix view — boson-sampling
    probabilities evaluate U's repeated-row/column submatrices without
    materializing them. *)

val permanent_brute : Bose_linalg.Mat.t -> Bose_linalg.Cx.t
(** Sum over all permutations — for testing only. *)
