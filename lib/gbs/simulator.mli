(** Convenience front-end: run a GBS circuit from vacuum, with or
    without per-gate photon loss, and read out the final state or its
    output distribution. *)

val run : ?noise:Bose_circuit.Noise.t -> Bose_circuit.Circuit.t -> Gaussian.t
(** Execute from the vacuum. *)

val output_distribution :
  ?noise:Bose_circuit.Noise.t ->
  max_photons:int ->
  Bose_circuit.Circuit.t ->
  int list Bose_util.Dist.t
(** Exact truncated output distribution of a (noisy) circuit. *)
