module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Expm = Bose_linalg.Expm
module Combin = Bose_util.Combin
module Gate = Bose_circuit.Gate
open Cx

type t = {
  n : int;
  cutoff : int;
  basis : int array array;  (* basis.(i) = photon pattern *)
  index : (int list, int) Hashtbl.t;
  amplitudes : Cx.t array;
}

let vacuum ~modes ~cutoff =
  if modes <= 0 then invalid_arg "Fock_backend.vacuum: need at least one qumode";
  if cutoff < 0 then invalid_arg "Fock_backend.vacuum: negative cutoff";
  let patterns = Combin.patterns_up_to ~modes ~max_photons:cutoff in
  let basis = Array.of_list (List.map Array.of_list patterns) in
  let index = Hashtbl.create (Array.length basis) in
  Array.iteri (fun i p -> Hashtbl.add index (Array.to_list p) i) basis;
  let amplitudes = Array.make (Array.length basis) Cx.zero in
  amplitudes.(Hashtbl.find index (List.init modes (fun _ -> 0))) <- Cx.one;
  { n = modes; cutoff; basis; index; amplitudes }

let basis_state ~modes ~cutoff pattern =
  let t = vacuum ~modes ~cutoff in
  if List.length pattern <> modes then invalid_arg "Fock_backend.basis_state: pattern length";
  (match Hashtbl.find_opt t.index pattern with
   | None -> invalid_arg "Fock_backend.basis_state: pattern beyond cutoff"
   | Some i ->
     Array.fill t.amplitudes 0 (Array.length t.amplitudes) Cx.zero;
     t.amplitudes.(i) <- Cx.one);
  t

let modes t = t.n
let cutoff t = t.cutoff
let dimension t = Array.length t.basis

let lookup t pattern = Hashtbl.find_opt t.index pattern

(* Annihilation operator a_k as a dim×dim matrix on the truncated basis:
   ⟨m|a_k|n⟩ = √n_k when m = n − e_k. *)
let annihilator t k =
  let dim = dimension t in
  let m = Mat.create dim dim in
  Array.iteri
    (fun col pattern ->
       if pattern.(k) > 0 then begin
         let lowered = Array.copy pattern in
         lowered.(k) <- lowered.(k) - 1;
         match lookup t (Array.to_list lowered) with
         | Some row -> Mat.set m row col (Cx.re (sqrt (float_of_int pattern.(k))))
         | None -> ()
       end)
    t.basis;
  m

let apply_matrix t m =
  { t with amplitudes = Mat.mul_vec m t.amplitudes }

(* The gate's truncated unitary: exponentiated ladder-operator
   generator (paper §II-A definitions). *)
let gate_matrix t gate =
  Gate.validate ~modes:t.n gate;
  match gate with
  | Gate.Phase (k, phi) ->
    let dim = dimension t in
    let m = Mat.create dim dim in
    Array.iteri
      (fun i pattern -> Mat.set m i i (Cx.exp_i (phi *. float_of_int pattern.(k))))
      t.basis;
    m
  | Gate.Squeeze (k, alpha) ->
    (* G = ½(α*·a² − α·a†²). *)
    let a = annihilator t k in
    let a2 = Mat.mul a a in
    let adag2 = Mat.adjoint a2 in
    let g =
      Mat.sub
        (Mat.scale (Cx.scale 0.5 (Cx.conj alpha)) a2)
        (Mat.scale (Cx.scale 0.5 alpha) adag2)
    in
    Expm.expm g
  | Gate.Displace (k, alpha) ->
    (* G = α·a† − α*·a. *)
    let a = annihilator t k in
    let g = Mat.sub (Mat.scale alpha (Mat.adjoint a)) (Mat.scale (Cx.conj alpha) a) in
    Expm.expm g
  | Gate.Beamsplitter (k, l, theta, phi) ->
    (* G = θ(e^{iφ}·a_k·a_l† − e^{−iφ}·a_k†·a_l); photon-conserving, so
       exact on the truncated space. *)
    let ak = annihilator t k and al = annihilator t l in
    (* a_k·a_l† without materializing the adjoint. *)
    let kl = Mat.create (Mat.rows ak) (Mat.rows al) in
    Mat.gemm_adjoint ~dst:kl ak al;
    let g =
      Mat.scale (Cx.re theta)
        (Mat.sub (Mat.scale (Cx.exp_i phi) kl) (Mat.scale (Cx.exp_i (-.phi)) (Mat.adjoint kl)))
    in
    Expm.expm g

let apply_gate t gate =
  match gate with
  | Gate.Phase (k, phi) ->
    (* Diagonal and exact: no need to build the full matrix. *)
    let amplitudes =
      Array.mapi
        (fun i z -> z *: Cx.exp_i (phi *. float_of_int t.basis.(i).(k)))
        t.amplitudes
    in
    Gate.validate ~modes:t.n gate;
    { t with amplitudes }
  | Gate.Squeeze _ | Gate.Displace _ | Gate.Beamsplitter _ ->
    apply_matrix t (gate_matrix t gate)

let basis_patterns t = Array.map Array.copy t.basis

let basis_index t pattern = lookup t pattern

let run_circuit t circuit =
  if Bose_circuit.Circuit.modes circuit <> t.n then
    invalid_arg "Fock_backend.run_circuit: mode count mismatch";
  List.fold_left apply_gate t (Bose_circuit.Circuit.gates circuit)

let amplitude t pattern =
  match lookup t pattern with Some i -> t.amplitudes.(i) | None -> Cx.zero

let probability t pattern = Cx.abs2 (amplitude t pattern)

let norm t = sqrt (Array.fold_left (fun acc z -> acc +. Cx.abs2 z) 0. t.amplitudes)

let distribution t =
  Array.to_list
    (Array.mapi (fun i p -> (Array.to_list p, Cx.abs2 t.amplitudes.(i))) t.basis)
