module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Linsolve = Bose_linalg.Linsolve
module Combin = Bose_util.Combin
module Dist = Bose_util.Dist
module Obs = Bose_obs.Obs
open Cx

let c_probability = Obs.Counter.make "gbs.fock_probability_calls"
let g_max_fock_dim = Obs.Gauge.make "gbs.max_fock_dim"

type prepared = {
  n : int;
  a : Mat.t;  (* X(I − Q⁻¹), 2N×2N, symmetric *)
  gamma : Cx.t array;  (* Q⁻¹·d *)
  p0 : float;
  displaced : bool;
}

(* Σ = T·V·T† with T = ½[[I, iI], [I, −iI]] maps the ħ=2 xxpp
   covariance to the complex (â, â†) basis where vacuum is I/2. *)
let husimi_q state =
  let n = Gaussian.modes state in
  let v = Gaussian.cov state in
  let dim = 2 * n in
  let q = Mat.create dim dim in
  for j = 0 to n - 1 do
    for k = 0 to n - 1 do
      let xx = v.(j).(k)
      and xp = v.(j).(n + k)
      and px = v.(n + j).(k)
      and pp = v.(n + j).(n + k) in
      (* T V T† blocks, entrywise:
         Σ_aa†-style blocks over (j,k):
           upper-left  = ¼((xx + pp) + i(px − xp))
           upper-right = ¼((xx − pp) + i(px + xp))
           lower-left  = conj of upper-right
           lower-right = conj of upper-left *)
      let ul = Cx.make ((xx +. pp) /. 4.) ((px -. xp) /. 4.) in
      let ur = Cx.make ((xx -. pp) /. 4.) ((px +. xp) /. 4.) in
      Mat.set q j k ul;
      Mat.set q j (n + k) ur;
      Mat.set q (n + j) k (Cx.conj ur);
      Mat.set q (n + j) (n + k) (Cx.conj ul)
    done
  done;
  (* Q = Σ + I/2. *)
  for i = 0 to dim - 1 do
    Mat.set q i i (Mat.get q i i +: Cx.re 0.5)
  done;
  q

let prepare state =
  let n = Gaussian.modes state in
  let dim = 2 * n in
  let q = husimi_q state in
  let qinv, qdet = Linsolve.inverse_det q in
  (* A = X(I − Q⁻¹) where X swaps the two N-blocks. *)
  let a =
    Mat.init dim dim (fun i j ->
        let src = if i < n then n + i else i - n in
        let id = if src = j then Cx.one else Cx.zero in
        id -: Mat.get qinv src j)
  in
  let d =
    Array.init dim (fun i ->
        let beta = Gaussian.alpha state (i mod n) in
        if i < n then beta else Cx.conj beta)
  in
  (* γ = d†·Q⁻¹ = conj(Q⁻¹·d) since Q is Hermitian — the diagonal the
     loop hafnian carries for displaced states. *)
  let qinv_d = Mat.mul_vec qinv d in
  let gamma = Array.map Cx.conj qinv_d in
  let exponent =
    let acc = ref Cx.zero in
    Array.iteri (fun i di -> acc := !acc +: (Cx.conj di *: qinv_d.(i))) d;
    Cx.scale (-0.5) !acc
  in
  let p0 = exp exponent.Complex.re /. sqrt (Cx.abs qdet) in
  let displaced = Array.exists (fun z -> Cx.abs z > 1e-12) d in
  { n; a; gamma; p0; displaced }

let vacuum_probability p = p.p0

let probability p pattern =
  if Array.length pattern <> p.n then invalid_arg "Fock.probability: pattern length mismatch";
  Array.iter (fun c -> if c < 0 then invalid_arg "Fock.probability: negative photon count") pattern;
  Obs.Counter.incr c_probability;
  let total = Array.fold_left ( + ) 0 pattern in
  Obs.Gauge.observe_max g_max_fock_dim (float_of_int (2 * total));
  if total = 0 then p.p0
  else begin
    (* Index list: mode k repeated n_k times in the â block, then the
       same in the â† block. *)
    let block = Array.concat (Array.to_list (Array.mapi (fun k c -> Array.make c k) pattern)) in
    let indices = Array.append block (Array.map (fun k -> k + p.n) block) in
    (* The reduced kernel A_{s,s} is a no-copy view of A whose diagonal
       is overridden by the γ slice (γ = 0 when undisplaced). *)
    let sub = Mat.view p.a ~rows:indices ~cols:indices in
    let diag = Array.map (fun i -> p.gamma.(i)) indices in
    let h =
      if p.displaced then Hafnian.loop_hafnian_view ~diag sub
      else Hafnian.hafnian_view ~diag sub
    in
    let denom = Array.fold_left (fun acc c -> acc *. Combin.factorial c) 1. pattern in
    let value = p.p0 *. (h.Complex.re /. denom) in
    (* Rounding can leave a tiny negative residue. *)
    Float.max 0. value
  end

let pattern_distribution ~max_photons state =
  let p = prepare state in
  let patterns = Combin.patterns_up_to ~modes:p.n ~max_photons in
  List.map (fun pat -> (pat, probability p (Array.of_list pat))) patterns

let tail = [ -1 ]

let truncated ~max_photons state =
  let pairs = pattern_distribution ~max_photons state in
  let mass = List.fold_left (fun acc (_, q) -> acc +. q) 0. pairs in
  let tail_mass = Float.max 0. (1. -. mass) in
  Dist.of_weights_raw ((tail, tail_mass) :: pairs)
