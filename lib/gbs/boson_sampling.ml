module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Combin = Bose_util.Combin
module Rng = Bose_util.Rng
module Dist = Bose_util.Dist
module Pool = Bose_par.Pool

let expand counts =
  Array.concat (Array.to_list (Array.mapi (fun k c -> Array.make c k) counts))

let check u ~input ~output =
  let n = Mat.rows u in
  if Mat.cols u <> n then invalid_arg "Boson_sampling: square unitary required";
  if Array.length input <> n || Array.length output <> n then
    invalid_arg "Boson_sampling: pattern length mismatch";
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Boson_sampling: negative photon count")
    (Array.append input output);
  let photons = Array.fold_left ( + ) 0 input in
  if photons > 12 then invalid_arg "Boson_sampling: too many photons";
  photons

(* U_{s,t}: column j repeated s_j times, row i repeated t_i times — a
   no-copy view, since the permanent only needs element access. *)
let submatrix u ~input ~output =
  Mat.view u ~rows:(expand output) ~cols:(expand input)

let factorial_product counts =
  Array.fold_left (fun acc c -> acc *. Combin.factorial c) 1. counts

let probability u ~input ~output =
  let photons = check u ~input ~output in
  if Array.fold_left ( + ) 0 output <> photons then 0.
  else if photons = 0 then 1.
  else begin
    let perm = Permanent.permanent_view (submatrix u ~input ~output) in
    Cx.abs2 perm /. (factorial_product input *. factorial_product output)
  end

let distribution u ~input =
  let n = Mat.rows u in
  let photons = Array.fold_left ( + ) 0 input in
  List.filter_map
    (fun pattern ->
       if Combin.pattern_total pattern = photons then
         Some (pattern, probability u ~input ~output:(Array.of_list pattern))
       else None)
    (Combin.patterns_up_to ~modes:n ~max_photons:photons)

let single_photons ~modes ~photons =
  if photons > modes then invalid_arg "Boson_sampling.single_photons: too many photons";
  Array.init modes (fun i -> if i < photons then 1 else 0)

(* Sampling: the distribution (the expensive permanent enumeration) is
   built once on the calling domain; drawing is then cheap and fans out
   over per-chain RNG streams with the same layout as
   [Sampler.draw_chains], so parallel output is bit-identical to
   sequential for a fixed seed. *)
let sample ?(chains = 16) ?pool rng u ~input shots =
  if chains < 1 then invalid_arg "Boson_sampling.sample: chains must be >= 1";
  if shots < 0 then invalid_arg "Boson_sampling.sample: negative shot count";
  let dist = Dist.of_weights (distribution u ~input) in
  let chains = min chains (max shots 1) in
  let streams = Rng.split rng chains in
  let base = shots / chains and extra = shots mod chains in
  let per_chain c =
    let n = base + if c < extra then 1 else 0 in
    List.init n (fun _ -> Dist.sample streams.(c) dist)
  in
  let out = Array.make chains [] in
  (match pool with
   | Some p when Pool.domains p > 1 ->
     Pool.run p ~tasks:chains (fun c -> out.(c) <- per_chain c)
   | _ ->
     for c = 0 to chains - 1 do
       out.(c) <- per_chain c
     done);
  List.concat (Array.to_list out)

(* Distinguishable particles: replace each amplitude by its squared
   modulus and use the permanent of that non-negative matrix, normalized
   by the output multinomial factor. *)
let distinguishable_distribution u ~input =
  let n = Mat.rows u in
  let photons = Array.fold_left ( + ) 0 input in
  let squared = Mat.init n n (fun i j -> Cx.re (Cx.abs2 (Mat.get u i j))) in
  List.filter_map
    (fun pattern ->
       if Combin.pattern_total pattern <> photons then None
       else begin
         let output = Array.of_list pattern in
         let p =
           if photons = 0 then 1.
           else begin
             let perm = Permanent.permanent_view (submatrix squared ~input ~output) in
             perm.Complex.re /. (factorial_product input *. factorial_product output)
           end
         in
         Some (pattern, p)
       end)
    (Combin.patterns_up_to ~modes:n ~max_photons:photons)
