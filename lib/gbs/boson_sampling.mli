(** Plain (Fock-input) Boson sampling — the non-Gaussian half of the
    paper's "(Gaussian) Boson sampling" scope.

    Single photons enter a subset of the interferometer's input ports;
    the output-pattern probabilities are permanents of sub-matrices of
    the interferometer unitary U:

    p(t | s) = |Perm(U_{s,t})|² / (Π s_i!·Π t_j!)

    where U_{s,t} repeats column j s_j times and row i t_i times. The
    compiler applies unchanged — it only touches U — so the approximation
    quality of dropout can be measured on Boson sampling too. *)

val probability :
  Bose_linalg.Mat.t -> input:int array -> output:int array -> float
(** Exact output probability; 0 when photon totals disagree.
    @raise Invalid_argument on dimension mismatch or more than ~12
    photons (the permanent grows as 2^photons). *)

val distribution :
  Bose_linalg.Mat.t -> input:int array -> (int list * float) list
(** All output patterns with the input's photon total and their
    probabilities — sums to 1 up to rounding. Practical for a handful of
    photons on ≲ 8 modes. *)

val single_photons : modes:int -> photons:int -> int array
(** The standard input: one photon in each of the first [photons]
    ports. *)

val sample :
  ?chains:int ->
  ?pool:Bose_par.Pool.t ->
  Bose_util.Rng.t ->
  Bose_linalg.Mat.t ->
  input:int array ->
  int ->
  int list list
(** [sample rng u ~input shots] draws output patterns from
    {!distribution} (built once, on the calling domain). Shots are
    partitioned over [chains] (default 16) pre-split RNG streams with a
    fixed layout, so for a fixed seed the output is bit-identical with
    or without a [?pool] and at every pool size.
    @raise Invalid_argument on [chains < 1], negative [shots], or
    anything {!distribution} rejects. *)

val distinguishable_distribution :
  Bose_linalg.Mat.t -> input:int array -> (int list * float) list
(** The classical baseline: photons treated as distinguishable
    particles (probabilities from permanents of |U|² entries), against
    which quantum interference signatures like the HOM dip show up. *)
