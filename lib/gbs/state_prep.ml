module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Eigen = Bose_linalg.Eigen
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit

(* Ω·v in xxpp ordering: (x, p) → (p, −x) blockwise. *)
let omega_apply n v =
  Array.init (2 * n) (fun i -> if i < n then v.(n + i) else -.v.(i - n))

let dot a b =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let normalize v =
  let norm = sqrt (dot v v) in
  Array.map (fun x -> x /. norm) v

let synthesis_parts state =
  let n = Gaussian.modes state in
  let nu = Gaussian.symplectic_eigenvalues state in
  if Array.exists (fun x -> Float.abs (x -. 1.) > 1e-6) nu then
    invalid_arg "State_prep: state is not pure";
  let v = Gaussian.cov state in
  let dim = 2 * n in
  (* S = V^{1/2}: symmetric, positive definite, and (for pure states)
     symplectic. *)
  let evals, q = Eigen.jacobi v in
  let s =
    Array.init dim (fun i ->
        Array.init dim (fun j ->
            let acc = ref 0. in
            for k = 0 to dim - 1 do
              acc := !acc +. (q.(i).(k) *. sqrt (Float.max 1e-15 evals.(k)) *. q.(j).(k))
            done;
            !acc))
  in
  (* Eigen-decompose S; eigenvalues pair as (e^{r}, e^{-r}) with the
     partner eigenvector Ω·u. Keep one representative per pair from the
     λ ≥ 1 side, Gram-Schmidt-ing inside degenerate eigenspaces against
     both previous picks and their Ω-partners. *)
  let lambda, vecs = Eigen.jacobi s in
  let column k = Array.init dim (fun i -> vecs.(i).(k)) in
  let picked = ref [] in
  let r = Array.make n 0. in
  let idx = ref 0 in
  for k = 0 to dim - 1 do
    if lambda.(k) >= 1. -. 1e-10 && !idx < n then begin
      (* Orthogonalize against every already-picked u and Ω·u. *)
      let u = ref (column k) in
      List.iter
        (fun (p, op) ->
           let c1 = dot !u p and c2 = dot !u op in
           u := Array.mapi (fun i x -> x -. (c1 *. p.(i)) -. (c2 *. op.(i))) !u)
        !picked;
      let norm = sqrt (dot !u !u) in
      if norm > 1e-8 then begin
        let u = normalize !u in
        let ou = omega_apply n u in
        picked := (u, ou) :: !picked;
        r.(!idx) <- log lambda.(k);
        incr idx
      end
    end
  done;
  if !idx <> n then invalid_arg "State_prep: eigenvector pairing failed";
  let pairs = Array.of_list (List.rev !picked) in
  (* K = [u_1 … u_N | Ω·u_1 … Ω·u_N] is orthogonal symplectic; its
     interferometer unitary is U = X + iY with X_{ij} = u_j's x-part at
     row i, Y from the p-part: K = [[X, −Y], [Y, X]] means column j of K
     is (X_{·j}; Y_{·j}) and column N+j is (−Y_{·j}; X_{·j}). *)
  let unitary =
    Mat.init n n (fun i j ->
        let u, _ = pairs.(j) in
        Cx.make u.(i) u.(n + i))
  in
  let displacements = Array.init n (fun k -> Gaussian.alpha state k) in
  (r, unitary, displacements)

let synthesize state =
  let n = Gaussian.modes state in
  let r, unitary, displacements = synthesis_parts state in
  let squeezers =
    List.filter_map
      (fun k ->
         (* D acts on (x_k, p_k) as diag(e^{r_k}, e^{-r_k}), which is the
            squeezer S(−r_k) in our convention (x → e^{-r}x for +r). *)
         if Float.abs r.(k) < 1e-12 then None else Some (Gate.Squeeze (k, Cx.re (-.r.(k)))))
      (List.init n (fun k -> k))
  in
  let interferometer_gates =
    Circuit.gates
      (Bose_decomp.Plan.to_circuit (Bose_decomp.Eliminate.decompose_baseline unitary))
  in
  let displacement_gates =
    List.filter_map
      (fun k ->
         if Cx.abs displacements.(k) < 1e-12 then None
         else Some (Gate.Displace (k, displacements.(k))))
      (List.init n (fun k -> k))
  in
  Circuit.add_all (Circuit.create ~modes:n)
    (squeezers @ interferometer_gates @ displacement_gates)
