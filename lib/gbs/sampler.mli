(** Drawing Fock-pattern samples from Gaussian states.

    Sampling goes through the exact truncated distribution: since a lossy
    GBS circuit still produces a Gaussian state, the output distribution
    can be computed once and sampled cheaply per shot — the classical
    analogue of the paper's 10000-shot experiments. *)

type t
(** A sampler: a truncated output distribution ready to draw from. *)

val of_state : max_photons:int -> Gaussian.t -> t

val tail_mass : t -> float
(** Probability that a shot exceeds the truncation (drawn as {!Fock.tail}). *)

val draw : Bose_util.Rng.t -> t -> int list
(** One sample; {!Fock.tail} when the (untracked) tail is hit. *)

val draw_many : Bose_util.Rng.t -> t -> int -> int list list
(** [draw_many rng t shots] — tail draws are included as {!Fock.tail}. *)

val empirical : Bose_util.Rng.t -> t -> int -> int list Bose_util.Dist.t
(** Empirical distribution of [shots] draws. *)

val exact : t -> int list Bose_util.Dist.t
(** The underlying truncated distribution (total mass 1 with tail). *)

(** {1 Chain-rule sampling}

    For mode counts where enumerating every pattern is hopeless, one can
    still draw exact samples mode by mode: the marginal probability of
    the first k modes showing (n_1…n_k) is the Fock probability of the
    k-mode {e reduced} state (Gaussian marginals are free), so each mode
    is drawn from the conditional
    P(n_k | n_1…n_{k−1}) = P_k(n_1…n_k) / P_{k−1}(n_1…n_{k−1}).
    Cost per shot is Σ_k (cutoff+1) loop-hafnian evaluations whose size
    is the photons drawn so far — independent of the total pattern
    count. *)

val chain_rule :
  ?max_per_mode:int -> Bose_util.Rng.t -> Gaussian.t -> int list
(** One exact sample. Per-mode counts are capped at [max_per_mode]
    (default 6), with the tiny excess conditional mass folded into the
    cap. *)

val chain_rule_many :
  ?max_per_mode:int -> Bose_util.Rng.t -> Gaussian.t -> int -> int list list

(** {1 Parallel shot chains}

    [shots] draws are partitioned over [chains] independent shot
    sequences (default 16), each seeded from its own
    {!Bose_util.Rng.split} stream with a fixed shot count depending only
    on [chains] and [shots]. The chain layout is independent of the
    execution backend, so for a fixed seed the concatenated output
    (chain order) is {e bit-identical} whether [?pool] is absent, a
    1-domain pool, or any larger {!Bose_par.Pool} — only wall-clock time
    changes. Shots within a chain stay sequential; across chains they
    are exchangeable, not a prefix of the [chains:1] sequence. *)

val draw_chains :
  ?chains:int -> ?pool:Bose_par.Pool.t -> Bose_util.Rng.t -> t -> int -> int list list
(** [draw_chains rng t shots] — {!draw_many} across chains.
    @raise Invalid_argument on [chains < 1] or negative [shots]. *)

val chain_rule_chains :
  ?max_per_mode:int ->
  ?chains:int ->
  ?pool:Bose_par.Pool.t ->
  Bose_util.Rng.t ->
  Gaussian.t ->
  int ->
  int list list
(** [chain_rule_chains rng state shots] — {!chain_rule_many} across
    chains; the per-shot cost is dominated by loop-hafnian evaluations,
    which is where pool parallelism pays. *)
