module Plan = Bose_decomp.Plan
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary

(* Container versions. v1 objects (the PR 6 format) carry text artifacts
   and no format line; v2 adds the format line and allows the binary
   artifact encodings. The store writes v2 and reads both — a directory
   written by an old binary keeps serving hits after an upgrade. *)
let object_magic_prefix = "bosec-object "
let object_magic_v2 = "bosec-object 2"
let index_magic = "bosec-cache-index 1"
let ( // ) = Filename.concat

type format = Text | Binary

let format_to_string = function Text -> "text" | Binary -> "binary"

type entry = { mutable last_use : int; size : int }

type t = {
  dir : string;
  max_bytes : int;
  tbl : (string, entry) Hashtbl.t;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable quarantined : int;
  mutable mmap_hits : int;
}

type stats = {
  hits : int;
  misses : int;
  entries : int;
  bytes : int;
  evictions : int;
  quarantined : int;
  max_bytes : int;
  mmap_hits : int;
}

type hit = { meta : string; format : format; plan : Plan.t; unitary : Mat.t }

type issue =
  | Bad_index of { line : int; msg : string }
  | Missing_object of { key : string }
  | Corrupt_object of { file : string; msg : string }
  | Orphan_object of { file : string }
  | Size_mismatch of { key : string; index_bytes : int; disk_bytes : int }
  | Version_mismatch of { file : string; version : int }

let objects_dir dir = dir // "objects"
let quarantine_dir dir = dir // "quarantine"
let index_file dir = dir // "index"

let validate_key key =
  key <> ""
  && String.for_all (function 'a' .. 'z' | '0' .. '9' -> true | _ -> false) key

(* ------------------------------------------------------------------ *)
(* Filesystem helpers: stdlib-only, every write atomic.                *)

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      (try Sys.mkdir p 0o755 with Sys_error _ -> ())
    end
  in
  go path;
  if not (Sys.file_exists path && Sys.is_directory path) then
    invalid_arg ("Diskcache: cannot create directory " ^ path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Write-then-rename: the temp file lives in the destination directory
   so the rename never crosses a filesystem boundary. *)
let write_atomic ~path content =
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) ".part" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

(* Map a whole file read-only as a byte Bigarray. The fd is closed
   immediately — the mapping outlives it. Any failure (empty file,
   filesystem without mmap) degrades to None and the caller falls back
   to an ordinary read. *)
let map_file path : Mat.bigbytes option =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
         try
           let g = Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |] in
           Some (Bigarray.array1_of_genarray g)
         with Unix.Unix_error _ | Sys_error _ | Invalid_argument _ -> None)

(* ------------------------------------------------------------------ *)
(* Object format: self-describing, length-framed, then semantically
   validated by actually parsing both artifacts.

     bosec-object 2
     key <key>
     meta <one free-form line>
     format <text|binary>
     plan <bytes>
     <plan artifact, exactly that many bytes>
     unitary <bytes>
     <unitary artifact>
     end

   v1 objects differ only in the magic line and the absence of the
   format line (their sections are always text). The section payloads
   are whatever Plan/Unitary serialize — text or the v2 binary
   encodings, both of which their [of_string] dispatches on — so the
   container never inspects float bytes itself. *)

let render_object ~key ~meta ~format ~plan ~unitary =
  let buf =
    Buffer.create (80 + String.length meta + String.length plan + String.length unitary)
  in
  Buffer.add_string buf object_magic_v2;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("key " ^ key ^ "\n");
  Buffer.add_string buf ("meta " ^ meta ^ "\n");
  Buffer.add_string buf ("format " ^ format_to_string format ^ "\n");
  Buffer.add_string buf (Printf.sprintf "plan %d\n" (String.length plan));
  Buffer.add_string buf plan;
  Buffer.add_string buf (Printf.sprintf "unitary %d\n" (String.length unitary));
  Buffer.add_string buf unitary;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* An abstract byte source lets one framing parser serve both read
   paths: plain strings and mmapped buffers. *)
module Src = struct
  type t = {
    len : int;
    sub : pos:int -> len:int -> string;
    index_nl : int -> int option;  (** first '\n' at or after a position *)
  }

  let of_string s =
    {
      len = String.length s;
      sub = (fun ~pos ~len -> String.sub s pos len);
      index_nl = (fun p -> String.index_from_opt s p '\n');
    }

  let of_bigbytes (ba : Mat.bigbytes) =
    let dim = Bigarray.Array1.dim ba in
    let rec find_nl i =
      if i >= dim then None
      else if Char.equal (Bigarray.Array1.unsafe_get ba i) '\n' then Some i
      else find_nl (i + 1)
    in
    {
      len = dim;
      sub = (fun ~pos ~len -> Mat.bigbytes_sub_string ba ~pos ~len);
      index_nl = (fun p -> if p < 0 then None else find_nl p);
    }
end

type parse_error = Corrupt of string | Wrong_version of int

exception Bad of parse_error

let bad msg = raise (Bad (Corrupt msg))

(* Framing only: splits the container into header fields and raw
   section ranges without decoding the artifacts. *)
type framing = {
  f_meta : string;
  f_declared : format option;  (* None on v1 objects *)
  f_plan_pos : int;
  f_plan_len : int;
  f_unitary_pos : int;
  f_unitary_len : int;
}

let parse_framing ~key (src : Src.t) =
  let pos = ref 0 in
  let line () =
    if !pos >= src.len then bad "truncated object";
    let stop = match src.index_nl !pos with Some i -> i | None -> bad "truncated object" in
    let l = src.sub ~pos:!pos ~len:(stop - !pos) in
    pos := stop + 1;
    l
  in
  let section name =
    let l = line () in
    let n =
      match Scanf.sscanf l "%s %d%!" (fun tag n -> (tag, n)) with
      | tag, n when tag = name -> n
      | _ -> bad ("bad " ^ name ^ " header")
      | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
        bad ("bad " ^ name ^ " header")
    in
    if n < 0 || !pos + n > src.len then bad "section length exceeds file";
    let p = !pos in
    pos := !pos + n;
    (p, n)
  in
  let magic = line () in
  let version =
    let plen = String.length object_magic_prefix in
    if String.length magic > plen && String.sub magic 0 plen = object_magic_prefix then
      match int_of_string_opt (String.sub magic plen (String.length magic - plen)) with
      | Some v -> v
      | None -> bad "bad magic line"
    else bad "bad magic line"
  in
  if version <> 1 && version <> 2 then raise (Bad (Wrong_version version));
  (match line () with
   | l when l = "key " ^ key -> ()
   | l when String.length l >= 4 && String.sub l 0 4 = "key " ->
     bad "key line does not match file name"
   | _ -> bad "bad key line");
  let f_meta =
    let l = line () in
    if String.length l >= 5 && String.sub l 0 5 = "meta " then
      String.sub l 5 (String.length l - 5)
    else bad "bad meta line"
  in
  let f_declared =
    if version = 1 then None
    else
      match line () with
      | "format text" -> Some Text
      | "format binary" -> Some Binary
      | _ -> bad "bad format line"
  in
  let f_plan_pos, f_plan_len = section "plan" in
  let f_unitary_pos, f_unitary_len = section "unitary" in
  if line () <> "end" then bad "missing end marker";
  if !pos <> src.len then bad "trailing bytes after end marker";
  { f_meta; f_declared; f_plan_pos; f_plan_len; f_unitary_pos; f_unitary_len }

(* The format a section actually uses is what its own magic says; the
   v2 format line must agree (a disagreement means a corrupted or
   hand-edited object). *)
let section_format (src : Src.t) ~pos ~len =
  if len >= 4 && (src.sub ~pos ~len:4 = "BHBP" || src.sub ~pos ~len:4 = "BHBU") then Binary
  else Text

let check_declared f fmt =
  match f.f_declared with
  | Some d when d <> fmt -> bad "format line disagrees with section contents"
  | Some _ | None -> ()

let decode_sections ~via_map (src : Src.t) (ba : Mat.bigbytes option) f =
  let fmt = section_format src ~pos:f.f_plan_pos ~len:f.f_plan_len in
  let ufmt = section_format src ~pos:f.f_unitary_pos ~len:f.f_unitary_len in
  if fmt <> ufmt then bad "plan and unitary sections disagree on format";
  check_declared f fmt;
  let p =
    let r =
      match (fmt, ba) with
      | Binary, Some ba when via_map -> Plan.of_bigbytes ba ~pos:f.f_plan_pos ~len:f.f_plan_len
      | _ -> Plan.of_string (src.sub ~pos:f.f_plan_pos ~len:f.f_plan_len)
    in
    match r with
    | Ok p -> p
    | Error (msg, l) -> bad (Printf.sprintf "plan section line %d: %s" l msg)
  in
  let u =
    let r =
      match (fmt, ba) with
      | Binary, Some ba when via_map ->
        Unitary.of_bigbytes ba ~pos:f.f_unitary_pos ~len:f.f_unitary_len
      | _ -> Unitary.of_string (src.sub ~pos:f.f_unitary_pos ~len:f.f_unitary_len)
    in
    match r with
    | Ok u -> u
    | Error (msg, l) -> bad (Printf.sprintf "unitary section line %d: %s" l msg)
  in
  if Mat.rows u <> p.Plan.modes then bad "plan and unitary disagree on the mode count";
  { meta = f.f_meta; format = fmt; plan = p; unitary = u }

let parse_object ~key content =
  let src = Src.of_string content in
  match decode_sections ~via_map:false src None (parse_framing ~key src) with
  | h -> Ok h
  | exception Bad e -> Error e

(* The zero-copy read path: binary unitary planes blit straight out of
   the mapping. Big-endian hosts skip it — the string path byte-swaps
   correctly and mmap would save nothing. *)
let parse_object_map ~key (ba : Mat.bigbytes) =
  let src = Src.of_bigbytes ba in
  match decode_sections ~via_map:true src (Some ba) (parse_framing ~key src) with
  | h -> Ok h
  | exception Bad e -> Error e

(* ------------------------------------------------------------------ *)
(* Index: a performance hint rebuilt from the object files whenever it
   is missing or stale. One line per entry after the magic:
     e <key> <bytes> <tick>                                            *)

let render_index t =
  let buf = Buffer.create (32 + (Hashtbl.length t.tbl * 40)) in
  Buffer.add_string buf index_magic;
  Buffer.add_char buf '\n';
  let rows =
    Hashtbl.fold (fun key e acc -> (key, e.size, e.last_use) :: acc) t.tbl []
  in
  List.iter
    (fun (key, size, tick) ->
       Buffer.add_string buf (Printf.sprintf "e %s %d %d\n" key size tick))
    (List.sort compare rows);
  Buffer.contents buf

let write_index t = write_atomic ~path:(index_file t.dir) (render_index t)

(* Parse an index file body. Returns the entry list plus structural
   issues; the runtime ignores bad lines (the object files are the
   source of truth), the audit reports them.                           *)
let parse_index content =
  let issues = ref [] in
  let entries = ref [] in
  (match String.split_on_char '\n' content with
   | [] -> issues := [ Bad_index { line = 0; msg = "empty index" } ]
   | magic :: rest ->
     if magic <> index_magic then
       issues := [ Bad_index { line = 1; msg = "bad index magic line" } ]
     else
       List.iteri
         (fun i l ->
            if l <> "" then
              match Scanf.sscanf l "e %s %d %d%!" (fun k s t -> (k, s, t)) with
              | (key, size, tick) when validate_key key && size >= 0 ->
                entries := (key, size, tick) :: !entries
              | _ ->
                issues := Bad_index { line = i + 2; msg = "bad entry line" } :: !issues
              | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
                issues := Bad_index { line = i + 2; msg = "bad entry line" } :: !issues)
         rest);
  (List.rev !entries, List.rev !issues)

(* ------------------------------------------------------------------ *)

let quarantine t key =
  let src = objects_dir t.dir // key in
  let rec dest k =
    let d = quarantine_dir t.dir // Printf.sprintf "%s.%d" key k in
    if Sys.file_exists d then dest (k + 1) else d
  in
  (try Sys.rename src (dest 0) with Sys_error _ -> ());
  (match Hashtbl.find_opt t.tbl key with
   | Some e ->
     t.bytes <- t.bytes - e.size;
     Hashtbl.remove t.tbl key
   | None -> ());
  t.quarantined <- t.quarantined + 1;
  write_index t

let evict_lru t ~keep =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
         if key = keep then acc
         else
           match acc with
           | Some (_, best) when best <= e.last_use -> acc
           | _ -> Some (key, e.last_use))
      t.tbl None
  in
  match victim with
  | None -> false
  | Some (key, _) ->
    (match Hashtbl.find_opt t.tbl key with
     | Some e -> t.bytes <- t.bytes - e.size
     | None -> ());
    Hashtbl.remove t.tbl key;
    (try Sys.remove (objects_dir t.dir // key) with Sys_error _ -> ());
    t.evictions <- t.evictions + 1;
    true

let enforce_bound (t : t) ~keep =
  let continue_ = ref true in
  while t.bytes > t.max_bytes && !continue_ do
    continue_ := evict_lru t ~keep
  done

let open_ ~dir ~max_bytes =
  if max_bytes < 1 then invalid_arg "Diskcache.open_: max_bytes must be positive";
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    invalid_arg ("Diskcache.open_: not a directory: " ^ dir);
  mkdir_p (objects_dir dir);
  mkdir_p (quarantine_dir dir);
  let t =
    {
      dir;
      max_bytes;
      tbl = Hashtbl.create 64;
      bytes = 0;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      quarantined = 0;
      mmap_hits = 0;
    }
  in
  (* Reconcile: indexed entries must exist on disk (at their current
     disk size); object files the index missed are adopted as oldest. *)
  (match if Sys.file_exists (index_file dir) then Some (read_file (index_file dir)) else None with
   | None -> ()
   | Some content ->
     let entries, _issues = parse_index content in
     List.iter
       (fun (key, _size, tick) ->
          let path = objects_dir dir // key in
          if Sys.file_exists path && not (Hashtbl.mem t.tbl key) then begin
            let size = file_size path in
            Hashtbl.replace t.tbl key { last_use = tick; size };
            t.bytes <- t.bytes + size;
            if tick > t.tick then t.tick <- tick
          end)
       entries);
  Array.iter
    (fun file ->
       if validate_key file && not (Hashtbl.mem t.tbl file) then begin
         let size = file_size (objects_dir dir // file) in
         Hashtbl.replace t.tbl file { last_use = 0; size };
         t.bytes <- t.bytes + size
       end)
    (try Sys.readdir (objects_dir dir) with Sys_error _ -> [||]);
  enforce_bound t ~keep:"";
  write_index t;
  t

let dir t = t.dir
let mem t key = Hashtbl.mem t.tbl key

let record_hit t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick;
  t.hits <- t.hits + 1

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some e ->
    let path = objects_dir t.dir // key in
    let mapped =
      (* The mmap fast path. Little-endian hosts only: the plane blit
         reinterprets raw LE bytes. Any mapping or parse hiccup falls
         through to the ordinary read, which owns quarantining. *)
      if Sys.big_endian then None
      else
        match map_file path with
        | None -> None
        | Some ba -> (match parse_object_map ~key ba with Ok h -> Some h | Error _ -> None)
    in
    (match mapped with
     | Some h ->
       record_hit t e;
       if h.format = Binary then t.mmap_hits <- t.mmap_hits + 1;
       Some h
     | None ->
       (match (try Some (read_file path) with Sys_error _ -> None) with
        | None ->
          (* Deleted behind our back: drop the entry, count a miss. *)
          t.bytes <- t.bytes - e.size;
          Hashtbl.remove t.tbl key;
          t.misses <- t.misses + 1;
          write_index t;
          None
        | Some content ->
          (match parse_object ~key content with
           | Ok h ->
             record_hit t e;
             Some h
           | Error _ ->
             (* Corrupted or wrong-version entry: quarantine rather than
                crash, and let the caller recompile — the next store
                heals the key. *)
             quarantine t key;
             t.misses <- t.misses + 1;
             None)))

let store ?(format = Binary) t ~key ~meta ~plan ~unitary =
  if not (validate_key key) then invalid_arg ("Diskcache.store: invalid key " ^ key);
  if String.contains meta '\n' then
    invalid_arg "Diskcache.store: meta must be a single line";
  if Mat.rows unitary <> plan.Plan.modes then
    invalid_arg "Diskcache.store: plan and unitary disagree on the mode count";
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.tick <- t.tick + 1;
    e.last_use <- t.tick
  | None ->
    let plan_str =
      match format with Text -> Plan.to_string plan | Binary -> Plan.to_binary_string plan
    in
    let unitary_str =
      match format with
      | Text -> Unitary.to_string unitary
      | Binary -> Unitary.to_binary_string unitary
    in
    let content = render_object ~key ~meta ~format ~plan:plan_str ~unitary:unitary_str in
    write_atomic ~path:(objects_dir t.dir // key) content;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.tbl key { last_use = t.tick; size = String.length content };
    t.bytes <- t.bytes + String.length content;
    enforce_bound t ~keep:key;
    write_index t

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    entries = Hashtbl.length t.tbl;
    bytes = t.bytes;
    evictions = t.evictions;
    quarantined = t.quarantined;
    max_bytes = t.max_bytes;
    mmap_hits = t.mmap_hits;
  }

(* ------------------------------------------------------------------ *)
(* Read-only audit, shared with lib/lint's diskcache pass (BH12xx).    *)

let audit dir =
  if not (Sys.file_exists dir) then
    [ Bad_index { line = 0; msg = "cache directory does not exist: " ^ dir } ]
  else if not (Sys.is_directory dir) then
    [ Bad_index { line = 0; msg = "not a directory: " ^ dir } ]
  else begin
    let indexed, index_issues =
      if Sys.file_exists (index_file dir) then parse_index (read_file (index_file dir))
      else ([], [])
    in
    let issues = ref (List.rev index_issues) in
    let index_keys = Hashtbl.create 32 in
    List.iter
      (fun (key, size, _) ->
         Hashtbl.replace index_keys key ();
         let path = objects_dir dir // key in
         if not (Sys.file_exists path) then
           issues := Missing_object { key } :: !issues
         else begin
           let disk_bytes = file_size path in
           if disk_bytes <> size then
             issues := Size_mismatch { key; index_bytes = size; disk_bytes } :: !issues
         end)
      indexed;
    Array.iter
      (fun file ->
         let path = objects_dir dir // file in
         if not (Hashtbl.mem index_keys file) then
           issues := Orphan_object { file = path } :: !issues;
         match parse_object ~key:file (read_file path) with
         | Ok _ -> ()
         | Error (Wrong_version version) ->
           issues := Version_mismatch { file = path; version } :: !issues
         | Error (Corrupt msg) -> issues := Corrupt_object { file = path; msg } :: !issues
         | exception Sys_error msg ->
           issues := Corrupt_object { file = path; msg } :: !issues)
      (try Sys.readdir (objects_dir dir) with Sys_error _ -> [||]);
    List.rev !issues
  end

let pp_issue fmt = function
  | Bad_index { line; msg } ->
    if line > 0 then Format.fprintf fmt "index line %d: %s" line msg
    else Format.fprintf fmt "index: %s" msg
  | Missing_object { key } -> Format.fprintf fmt "entry %s: object file missing" key
  | Corrupt_object { file; msg } -> Format.fprintf fmt "%s: corrupt (%s)" file msg
  | Orphan_object { file } -> Format.fprintf fmt "%s: not referenced by the index" file
  | Size_mismatch { key; index_bytes; disk_bytes } ->
    Format.fprintf fmt "entry %s: index records %d bytes, file has %d" key index_bytes
      disk_bytes
  | Version_mismatch { file; version } ->
    Format.fprintf fmt
      "%s: object format version %d (this binary reads versions 1 and 2)" file version
