module Plan = Bose_decomp.Plan
module Mat = Bose_linalg.Mat
module Unitary = Bose_linalg.Unitary

let object_magic = "bosec-object 1"
let index_magic = "bosec-cache-index 1"
let ( // ) = Filename.concat

type entry = { mutable last_use : int; size : int }

type t = {
  dir : string;
  max_bytes : int;
  tbl : (string, entry) Hashtbl.t;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable quarantined : int;
}

type stats = {
  hits : int;
  misses : int;
  entries : int;
  bytes : int;
  evictions : int;
  quarantined : int;
  max_bytes : int;
}

type issue =
  | Bad_index of { line : int; msg : string }
  | Missing_object of { key : string }
  | Corrupt_object of { file : string; msg : string }
  | Orphan_object of { file : string }
  | Size_mismatch of { key : string; index_bytes : int; disk_bytes : int }

let objects_dir dir = dir // "objects"
let quarantine_dir dir = dir // "quarantine"
let index_file dir = dir // "index"

let validate_key key =
  key <> ""
  && String.for_all (function 'a' .. 'z' | '0' .. '9' -> true | _ -> false) key

(* ------------------------------------------------------------------ *)
(* Filesystem helpers: stdlib-only, every write atomic.                *)

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      (try Sys.mkdir p 0o755 with Sys_error _ -> ())
    end
  in
  go path;
  if not (Sys.file_exists path && Sys.is_directory path) then
    invalid_arg ("Diskcache: cannot create directory " ^ path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Write-then-rename: the temp file lives in the destination directory
   so the rename never crosses a filesystem boundary. *)
let write_atomic ~path content =
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) ".part" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

(* ------------------------------------------------------------------ *)
(* Object format: self-describing, length-framed, then semantically
   validated by actually parsing both artifacts.

     bosec-object 1
     key <key>
     meta <one free-form line>
     plan <bytes>
     <plan text, exactly that many bytes>
     unitary <bytes>
     <unitary text>
     end
*)

let render_object ~key ~meta ~plan ~unitary =
  let buf =
    Buffer.create (64 + String.length meta + String.length plan + String.length unitary)
  in
  Buffer.add_string buf object_magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("key " ^ key ^ "\n");
  Buffer.add_string buf ("meta " ^ meta ^ "\n");
  Buffer.add_string buf (Printf.sprintf "plan %d\n" (String.length plan));
  Buffer.add_string buf plan;
  Buffer.add_string buf (Printf.sprintf "unitary %d\n" (String.length unitary));
  Buffer.add_string buf unitary;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

exception Bad of string

let parse_object ~key content =
  let len = String.length content in
  let pos = ref 0 in
  let line () =
    if !pos >= len then raise (Bad "truncated object");
    let stop =
      match String.index_from_opt content !pos '\n' with
      | Some i -> i
      | None -> raise (Bad "truncated object")
    in
    let l = String.sub content !pos (stop - !pos) in
    pos := stop + 1;
    l
  in
  let take n =
    if n < 0 || !pos + n > len then raise (Bad "section length exceeds file");
    let s = String.sub content !pos n in
    pos := !pos + n;
    s
  in
  let section name =
    let l = line () in
    match Scanf.sscanf l "%s %d%!" (fun tag n -> (tag, n)) with
    | tag, n when tag = name -> take n
    | _ -> raise (Bad ("bad " ^ name ^ " header"))
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
      raise (Bad ("bad " ^ name ^ " header"))
  in
  try
    if line () <> object_magic then raise (Bad "bad magic line");
    (match line () with
     | l when l = "key " ^ key -> ()
     | l when String.length l >= 4 && String.sub l 0 4 = "key " ->
       raise (Bad "key line does not match file name")
     | _ -> raise (Bad "bad key line"));
    let meta =
      let l = line () in
      if String.length l >= 5 && String.sub l 0 5 = "meta " then
        String.sub l 5 (String.length l - 5)
      else raise (Bad "bad meta line")
    in
    let plan = section "plan" in
    let unitary = section "unitary" in
    if line () <> "end" then raise (Bad "missing end marker");
    if !pos <> len then raise (Bad "trailing bytes after end marker");
    (* Semantic validation: both artifacts must parse with the repo's
       own readers, and agree on the mode count. *)
    let p =
      match Plan.of_string plan with
      | Ok p -> p
      | Error (msg, l) -> raise (Bad (Printf.sprintf "plan section line %d: %s" l msg))
    in
    let u =
      match Unitary.of_string unitary with
      | Ok u -> u
      | Error (msg, l) -> raise (Bad (Printf.sprintf "unitary section line %d: %s" l msg))
    in
    if Mat.rows u <> p.Plan.modes then
      raise (Bad "plan and unitary disagree on the mode count");
    Ok (meta, plan, unitary)
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Index: a performance hint rebuilt from the object files whenever it
   is missing or stale. One line per entry after the magic:
     e <key> <bytes> <tick>                                            *)

let render_index t =
  let buf = Buffer.create (32 + (Hashtbl.length t.tbl * 40)) in
  Buffer.add_string buf index_magic;
  Buffer.add_char buf '\n';
  let rows =
    Hashtbl.fold (fun key e acc -> (key, e.size, e.last_use) :: acc) t.tbl []
  in
  List.iter
    (fun (key, size, tick) ->
       Buffer.add_string buf (Printf.sprintf "e %s %d %d\n" key size tick))
    (List.sort compare rows);
  Buffer.contents buf

let write_index t = write_atomic ~path:(index_file t.dir) (render_index t)

(* Parse an index file body. Returns the entry list plus structural
   issues; the runtime ignores bad lines (the object files are the
   source of truth), the audit reports them.                           *)
let parse_index content =
  let issues = ref [] in
  let entries = ref [] in
  (match String.split_on_char '\n' content with
   | [] -> issues := [ Bad_index { line = 0; msg = "empty index" } ]
   | magic :: rest ->
     if magic <> index_magic then
       issues := [ Bad_index { line = 1; msg = "bad index magic line" } ]
     else
       List.iteri
         (fun i l ->
            if l <> "" then
              match Scanf.sscanf l "e %s %d %d%!" (fun k s t -> (k, s, t)) with
              | (key, size, tick) when validate_key key && size >= 0 ->
                entries := (key, size, tick) :: !entries
              | _ ->
                issues := Bad_index { line = i + 2; msg = "bad entry line" } :: !issues
              | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
                issues := Bad_index { line = i + 2; msg = "bad entry line" } :: !issues)
         rest);
  (List.rev !entries, List.rev !issues)

(* ------------------------------------------------------------------ *)

let quarantine t key =
  let src = objects_dir t.dir // key in
  let rec dest k =
    let d = quarantine_dir t.dir // Printf.sprintf "%s.%d" key k in
    if Sys.file_exists d then dest (k + 1) else d
  in
  (try Sys.rename src (dest 0) with Sys_error _ -> ());
  (match Hashtbl.find_opt t.tbl key with
   | Some e ->
     t.bytes <- t.bytes - e.size;
     Hashtbl.remove t.tbl key
   | None -> ());
  t.quarantined <- t.quarantined + 1;
  write_index t

let evict_lru t ~keep =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
         if key = keep then acc
         else
           match acc with
           | Some (_, best) when best <= e.last_use -> acc
           | _ -> Some (key, e.last_use))
      t.tbl None
  in
  match victim with
  | None -> false
  | Some (key, _) ->
    (match Hashtbl.find_opt t.tbl key with
     | Some e -> t.bytes <- t.bytes - e.size
     | None -> ());
    Hashtbl.remove t.tbl key;
    (try Sys.remove (objects_dir t.dir // key) with Sys_error _ -> ());
    t.evictions <- t.evictions + 1;
    true

let enforce_bound (t : t) ~keep =
  let continue_ = ref true in
  while t.bytes > t.max_bytes && !continue_ do
    continue_ := evict_lru t ~keep
  done

let open_ ~dir ~max_bytes =
  if max_bytes < 1 then invalid_arg "Diskcache.open_: max_bytes must be positive";
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    invalid_arg ("Diskcache.open_: not a directory: " ^ dir);
  mkdir_p (objects_dir dir);
  mkdir_p (quarantine_dir dir);
  let t =
    {
      dir;
      max_bytes;
      tbl = Hashtbl.create 64;
      bytes = 0;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      quarantined = 0;
    }
  in
  (* Reconcile: indexed entries must exist on disk (at their current
     disk size); object files the index missed are adopted as oldest. *)
  (match if Sys.file_exists (index_file dir) then Some (read_file (index_file dir)) else None with
   | None -> ()
   | Some content ->
     let entries, _issues = parse_index content in
     List.iter
       (fun (key, _size, tick) ->
          let path = objects_dir dir // key in
          if Sys.file_exists path && not (Hashtbl.mem t.tbl key) then begin
            let size = file_size path in
            Hashtbl.replace t.tbl key { last_use = tick; size };
            t.bytes <- t.bytes + size;
            if tick > t.tick then t.tick <- tick
          end)
       entries);
  Array.iter
    (fun file ->
       if validate_key file && not (Hashtbl.mem t.tbl file) then begin
         let size = file_size (objects_dir dir // file) in
         Hashtbl.replace t.tbl file { last_use = 0; size };
         t.bytes <- t.bytes + size
       end)
    (try Sys.readdir (objects_dir dir) with Sys_error _ -> [||]);
  enforce_bound t ~keep:"";
  write_index t;
  t

let dir t = t.dir
let mem t key = Hashtbl.mem t.tbl key

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some e ->
    let path = objects_dir t.dir // key in
    (match (try Some (read_file path) with Sys_error _ -> None) with
     | None ->
       (* Deleted behind our back: drop the entry, count a miss. *)
       t.bytes <- t.bytes - e.size;
       Hashtbl.remove t.tbl key;
       t.misses <- t.misses + 1;
       write_index t;
       None
     | Some content ->
       (match parse_object ~key content with
        | Ok (meta, plan, unitary) ->
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          t.hits <- t.hits + 1;
          Some (meta, plan, unitary)
        | Error _ ->
          (* Corrupted entry: quarantine rather than crash, and let the
             caller recompile — the next store heals the key. *)
          quarantine t key;
          t.misses <- t.misses + 1;
          None))

let store t ~key ~meta ~plan ~unitary =
  if not (validate_key key) then invalid_arg ("Diskcache.store: invalid key " ^ key);
  if String.contains meta '\n' then
    invalid_arg "Diskcache.store: meta must be a single line";
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.tick <- t.tick + 1;
    e.last_use <- t.tick
  | None ->
    let content = render_object ~key ~meta ~plan ~unitary in
    write_atomic ~path:(objects_dir t.dir // key) content;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.tbl key { last_use = t.tick; size = String.length content };
    t.bytes <- t.bytes + String.length content;
    enforce_bound t ~keep:key;
    write_index t

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    entries = Hashtbl.length t.tbl;
    bytes = t.bytes;
    evictions = t.evictions;
    quarantined = t.quarantined;
    max_bytes = t.max_bytes;
  }

(* ------------------------------------------------------------------ *)
(* Read-only audit, shared with lib/lint's diskcache pass (BH12xx).    *)

let audit dir =
  if not (Sys.file_exists dir) then
    [ Bad_index { line = 0; msg = "cache directory does not exist: " ^ dir } ]
  else if not (Sys.is_directory dir) then
    [ Bad_index { line = 0; msg = "not a directory: " ^ dir } ]
  else begin
    let indexed, index_issues =
      if Sys.file_exists (index_file dir) then parse_index (read_file (index_file dir))
      else ([], [])
    in
    let issues = ref (List.rev index_issues) in
    let index_keys = Hashtbl.create 32 in
    List.iter
      (fun (key, size, _) ->
         Hashtbl.replace index_keys key ();
         let path = objects_dir dir // key in
         if not (Sys.file_exists path) then
           issues := Missing_object { key } :: !issues
         else begin
           let disk_bytes = file_size path in
           if disk_bytes <> size then
             issues := Size_mismatch { key; index_bytes = size; disk_bytes } :: !issues
         end)
      indexed;
    Array.iter
      (fun file ->
         let path = objects_dir dir // file in
         if not (Hashtbl.mem index_keys file) then
           issues := Orphan_object { file = path } :: !issues;
         match parse_object ~key:file (read_file path) with
         | Ok _ -> ()
         | Error msg -> issues := Corrupt_object { file = path; msg } :: !issues
         | exception Sys_error msg ->
           issues := Corrupt_object { file = path; msg } :: !issues)
      (try Sys.readdir (objects_dir dir) with Sys_error _ -> [||]);
    List.rev !issues
  end

let pp_issue fmt = function
  | Bad_index { line; msg } ->
    if line > 0 then Format.fprintf fmt "index line %d: %s" line msg
    else Format.fprintf fmt "index: %s" msg
  | Missing_object { key } -> Format.fprintf fmt "entry %s: object file missing" key
  | Corrupt_object { file; msg } -> Format.fprintf fmt "%s: corrupt (%s)" file msg
  | Orphan_object { file } -> Format.fprintf fmt "%s: not referenced by the index" file
  | Size_mismatch { key; index_bytes; disk_bytes } ->
    Format.fprintf fmt "entry %s: index records %d bytes, file has %d" key index_bytes
      disk_bytes
