(** A content-fingerprint-keyed, disk-backed artifact store — the
    persistence layer behind [bosec serve].

    The in-memory [Pipeline.Cache] makes warm recompiles ~170-260x
    faster but dies with the process; this store makes the speedup
    survive restarts. Keys are the pass manager's FNV-1a content
    fingerprints rendered as 16 hex characters
    ([Pass.Fingerprint.to_hex]); values are the stable text serializers
    from the lint PR — [Plan.to_string] and [Unitary.to_string], hex
    floats, bit-exact round-trip — so a disk hit returns the exact
    bytes the original compile produced.

    {2 On-disk layout} (documented for operators in docs/SERVING.md)

    {v
    <dir>/index              LRU index, one line per entry
    <dir>/objects/<key>      artifact files (self-describing, framed)
    <dir>/quarantine/        corrupted entries moved aside, never read
    v}

    Every write is atomic (write to a temp file in the same directory,
    then rename), so a crashed or killed writer never leaves a
    half-written object where a reader can trip on it. The index is a
    performance hint, not a source of truth: {!open_} reconciles it
    against the object files (missing files are dropped, orphan files
    adopted), and deleting any file — or the whole directory — is
    always safe; the worst case is a cold cache.

    A corrupted object (bad framing, parse failure, key mismatch) is
    {e quarantined} on first read — moved to [quarantine/], counted,
    reported as a miss — never raised. [lib/lint]'s [diskcache] pass
    ({!audit}, BH12xx) reports the same findings as diagnostics without
    modifying the directory.

    The store is single-domain mutable state: callers serialize access
    (the serve daemon performs all store traffic on the owner domain). *)

type t

type stats = {
  hits : int;  (** Reads that returned a validated artifact. *)
  misses : int;  (** Reads that found nothing usable (includes quarantines). *)
  entries : int;
  bytes : int;  (** Total object-file bytes currently indexed. *)
  evictions : int;  (** Entries removed by the size bound. *)
  quarantined : int;  (** Corrupted objects moved to [quarantine/]. *)
  max_bytes : int;
}

val open_ : dir:string -> max_bytes:int -> t
(** Open (creating directories as needed) and reconcile the index
    against the object files. [max_bytes] bounds the total object-file
    bytes; least-recently-used entries are evicted past it.
    @raise Invalid_argument when [max_bytes < 1] or [dir] exists and is
    not a directory. *)

val dir : t -> string

val validate_key : string -> bool
(** Keys must be non-empty [[a-z0-9]] strings (fingerprint hex) — they
    become file names verbatim. *)

val mem : t -> string -> bool
(** Index membership only; no I/O, no statistics. *)

val find : t -> string -> (string * string * string) option
(** [find t key] reads, validates and returns [(meta, plan, unitary)]:
    the caller's metadata line, the [Plan.to_string] bytes and the
    [Unitary.to_string] bytes recorded by {!store} — verbatim, so a
    disk hit is bit-identical to the original compile. A corrupted
    object is quarantined and reported as a miss. *)

val store : t -> key:string -> meta:string -> plan:string -> unitary:string -> unit
(** Record an artifact (atomic write-then-rename), update the index and
    evict past the size bound. Storing an existing key only refreshes
    its recency — the store is content-addressed, same key means same
    content. [meta] is one free-form line (no newline).
    @raise Invalid_argument on an invalid key or a [meta] containing a
    newline. *)

val stats : t -> stats
(** Lifetime totals since {!open_}. *)

(** {2 Read-only integrity audit} — the decision procedure behind the
    lint engine's [diskcache] pass (BH1201–BH1205). *)

type issue =
  | Bad_index of { line : int; msg : string }
      (** Index file malformed ([line] is 1-based; 0 = whole file /
          directory problem). *)
  | Missing_object of { key : string }
      (** Index entry whose object file does not exist. *)
  | Corrupt_object of { file : string; msg : string }
      (** Object file fails framing or artifact-parse validation. *)
  | Orphan_object of { file : string }
      (** Object file not referenced by the index. *)
  | Size_mismatch of { key : string; index_bytes : int; disk_bytes : int }
      (** Indexed size disagrees with the file on disk. *)

val audit : string -> issue list
(** Audit a cache directory without opening or modifying it. A missing
    directory is one [Bad_index]; a missing index with no objects is a
    fresh cache and clean. [quarantine/] contents are expected-bad and
    not audited. *)

val pp_issue : Format.formatter -> issue -> unit
