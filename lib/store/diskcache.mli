(** A content-fingerprint-keyed, disk-backed artifact store — the
    persistence layer behind [bosec serve].

    The in-memory [Pipeline.Cache] makes warm recompiles ~170-260x
    faster but dies with the process; this store makes the speedup
    survive restarts. Keys are the pass manager's FNV-1a content
    fingerprints rendered as 16 hex characters
    ([Pass.Fingerprint.to_hex]); values are typed artifacts — a
    [Plan.t] and its unitary — serialized through the stable codecs,
    so a disk hit returns exactly what the original compile produced.

    {2 Artifact formats}

    New objects are written in the v2 {e binary} artifact encoding by
    default ([Plan.to_binary_string] / [Unitary.to_binary_string]:
    magic, format version, raw little-endian planes, FNV-1a checksum) —
    no hex-float parsing on load, and on little-endian hosts {!find}
    serves reads {e zero-copy}: the object file is mapped with
    [Unix.map_file] and the unitary's planes are blitted straight out
    of the mapping ([stats.mmap_hits] counts these). [~format:Text]
    keeps the PR 6 hex-float text artifacts for operators who want
    greppable objects. Both load through the same dispatching readers,
    and directories written by older binaries (v1 containers, text-only)
    keep serving hits — the migration story is in docs/SERVING.md.

    {2 On-disk layout} (documented for operators in docs/SERVING.md)

    {v
    <dir>/index              LRU index, one line per entry
    <dir>/objects/<key>      artifact files (self-describing, framed)
    <dir>/quarantine/        corrupted entries moved aside, never read
    v}

    Every write is atomic (write to a temp file in the same directory,
    then rename), so a crashed or killed writer never leaves a
    half-written object where a reader can trip on it. The index is a
    performance hint, not a source of truth: {!open_} reconciles it
    against the object files (missing files are dropped, orphan files
    adopted), and deleting any file — or the whole directory — is
    always safe; the worst case is a cold cache.

    A corrupted object (bad framing, parse failure, checksum or key
    mismatch) — or one whose container version this binary does not
    read — is {e quarantined} on first read: moved to [quarantine/],
    counted, reported as a miss, never raised. [lib/lint]'s [diskcache]
    pass ({!audit}, BH12xx) reports the same findings as diagnostics
    without modifying the directory.

    The store is single-domain mutable state: callers serialize access
    (the serve daemon performs all store traffic on the owner domain). *)

type t

(** Artifact encoding inside an object's sections. *)
type format =
  | Text  (** Hex-float line format — greppable, v1-compatible. *)
  | Binary  (** v2 binary encoding — mmap-servable, ~an order of
                magnitude faster to load. *)

val format_to_string : format -> string
(** ["text"] / ["binary"] — the wire spelling used by the object's
    [format] line and the serve protocol's reply field. *)

type stats = {
  hits : int;  (** Reads that returned a validated artifact. *)
  misses : int;  (** Reads that found nothing usable (includes quarantines). *)
  entries : int;
  bytes : int;  (** Total object-file bytes currently indexed. *)
  evictions : int;  (** Entries removed by the size bound. *)
  quarantined : int;  (** Corrupted objects moved to [quarantine/]. *)
  max_bytes : int;
  mmap_hits : int;
      (** Hits served zero-copy from an mmapped binary object. *)
}

val open_ : dir:string -> max_bytes:int -> t
(** Open (creating directories as needed) and reconcile the index
    against the object files. [max_bytes] bounds the total object-file
    bytes; least-recently-used entries are evicted past it.
    @raise Invalid_argument when [max_bytes < 1] or [dir] exists and is
    not a directory. *)

val dir : t -> string

val validate_key : string -> bool
(** Keys must be non-empty [[a-z0-9]] strings (fingerprint hex) — they
    become file names verbatim. *)

val mem : t -> string -> bool
(** Index membership only; no I/O, no statistics. *)

(** A validated read: the stored metadata line, the encoding the object
    carried, and the decoded artifacts. Re-serializing with the text
    codecs reproduces the original compile's bytes exactly (hex-float
    and binary round-trips are both bit-exact). *)
type hit = {
  meta : string;
  format : format;
  plan : Bose_decomp.Plan.t;
  unitary : Bose_linalg.Mat.t;
}

val find : t -> string -> hit option
(** [find t key] reads, validates and returns the stored artifacts. On
    little-endian hosts binary objects are served from an mmap when
    possible (falling back to an ordinary read). A corrupted or
    wrong-version object is quarantined and reported as a miss. *)

val store :
  ?format:format ->
  t ->
  key:string ->
  meta:string ->
  plan:Bose_decomp.Plan.t ->
  unitary:Bose_linalg.Mat.t ->
  unit
(** Record an artifact (atomic write-then-rename), update the index and
    evict past the size bound. [format] (default {!Binary}) picks the
    section encoding. Storing an existing key only refreshes its
    recency — the store is content-addressed, same key means same
    content. [meta] is one free-form line (no newline).
    @raise Invalid_argument on an invalid key, a [meta] containing a
    newline, or artifacts disagreeing on the mode count. *)

val stats : t -> stats
(** Lifetime totals since {!open_}. *)

(** {2 Read-only integrity audit} — the decision procedure behind the
    lint engine's [diskcache] pass (BH1201–BH1206). *)

type issue =
  | Bad_index of { line : int; msg : string }
      (** Index file malformed ([line] is 1-based; 0 = whole file /
          directory problem). *)
  | Missing_object of { key : string }
      (** Index entry whose object file does not exist. *)
  | Corrupt_object of { file : string; msg : string }
      (** Object file fails framing, checksum or artifact-parse
          validation. *)
  | Orphan_object of { file : string }
      (** Object file not referenced by the index. *)
  | Size_mismatch of { key : string; index_bytes : int; disk_bytes : int }
      (** Indexed size disagrees with the file on disk. *)
  | Version_mismatch of { file : string; version : int }
      (** Object declares a container format version this binary does
          not read (not 1 or 2) — likely written by a newer binary;
          distinct from corruption so operators know an upgrade, not a
          disk fault, is the fix. *)

val audit : string -> issue list
(** Audit a cache directory without opening or modifying it. A missing
    directory is one [Bad_index]; a missing index with no objects is a
    fresh cache and clean. [quarantine/] contents are expected-bad and
    not audited. *)

val pp_issue : Format.formatter -> issue -> unit
