module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Perm = Bose_linalg.Perm
module Pattern = Bose_hardware.Pattern
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate
module Obs = Bose_obs.Obs

let c_candidate_ks = Obs.Counter.make "map.candidate_ks"
let c_search_sweeps = Obs.Counter.make "map.search_sweeps"
let c_column_swaps = Obs.Counter.make "map.column_swaps"
let c_polish_trials = Obs.Counter.make "map.polish_trials"
let c_polish_accepted = Obs.Counter.make "map.polish_accepted"
let g_indicator_k = Obs.Gauge.make "map.indicator_k"
let g_small_angles = Obs.Gauge.make "map.small_angles"
let g_amplitude_gain = Obs.Gauge.make "map.amplitude_gain"
let g_polish_mats = Obs.Gauge.make "map.polish_mats_per_trial"

type t = {
  permuted : Mat.t;
  row_perm : Perm.t;
  col_perm : Perm.t;
  indicator_k : int;
  small_angles : int;
}

let trivial u =
  let n = Mat.rows u in
  {
    permuted = Mat.copy u;
    row_perm = Perm.identity n;
    col_perm = Perm.identity n;
    indicator_k = 0;
    small_angles = 0;
  }

let main_region_row_mass pattern u =
  let n = Mat.rows u in
  let main = Pattern.main_path_labels pattern in
  Array.init n (fun i ->
      List.fold_left (fun acc j -> acc +. Cx.abs2 (Mat.get u i j)) 0. main)

(* K-th largest value of an array (K counted from 1): in-place
   quickselect with median-of-three pivots — O(n) expected, which keeps
   the O(main·branch) exchange search linear per trial. *)
let kth_largest k a =
  let a = Array.copy a in
  let target = k - 1 in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec select lo hi =
    if lo >= hi then a.(target)
    else begin
      let mid = (lo + hi) / 2 in
      (* Median-of-three pivot, ordering descending. *)
      if a.(mid) > a.(lo) then swap mid lo;
      if a.(hi) > a.(lo) then swap hi lo;
      if a.(hi) > a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      swap mid hi;
      let store = ref lo in
      for i = lo to hi - 1 do
        if a.(i) > pivot then begin
          swap i !store;
          incr store
        end
      done;
      swap !store hi;
      if target = !store then a.(target)
      else if target < !store then select lo (!store - 1)
      else select (!store + 1) hi
    end
  in
  select 0 (Array.length a - 1)

(* Greedy column-exchange search: swap main-region columns against
   non-main columns whenever the swap raises the K-th-largest row mass.
   Returns the column permutation found and the final row-mass vector. *)
let column_search ~k u main_cols =
  let n = Mat.rows u in
  let is_main = Array.make n false in
  List.iter (fun j -> is_main.(j) <- true) main_cols;
  let branch_cols =
    List.filter (fun j -> not is_main.(j)) (List.init n (fun j -> j))
  in
  let w = Mat.copy u in
  let col_perm = ref (Perm.identity n) in
  let alpha =
    Array.init n (fun i ->
        List.fold_left (fun acc j -> acc +. Cx.abs2 (Mat.get w i j)) 0. main_cols)
  in
  let current = ref (kth_largest k alpha) in
  let initial_mass = !current in
  let improved = ref true in
  let sweeps = ref 0 in
  while !improved && !sweeps < 5 do
    improved := false;
    incr sweeps;
    Obs.Counter.incr c_search_sweeps;
    List.iter
      (fun a ->
         List.iter
           (fun b ->
              let trial =
                Array.init n (fun i ->
                    alpha.(i) -. Cx.abs2 (Mat.get w i a) +. Cx.abs2 (Mat.get w i b))
              in
              let candidate = kth_largest k trial in
              if candidate > !current +. 1e-12 then begin
                Mat.swap_cols w a b;
                Array.blit trial 0 alpha 0 n;
                col_perm := Perm.compose (Perm.swap n a b) !col_perm;
                current := candidate;
                improved := true;
                Obs.Counter.incr c_column_swaps
              end)
           branch_cols)
      main_cols
  done;
  (* §V-C objective: how much main-path K-th row mass the exchange
     search accumulated, relative to the unpermuted unitary. *)
  if initial_mass > 0. then
    Obs.Gauge.observe_max g_amplitude_gain (!current /. initial_mass);
  (w, !col_perm, alpha)

(* Assign the heaviest non-main columns to branch regions closest to the
   start point: branch region order follows the main path, so earlier
   regions are eliminated into larger accumulated amplitudes. Column
   weight is its mass inside the K heaviest rows. *)
let branch_assignment ~k w alpha regions =
  let n = Mat.rows w in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare alpha.(j) alpha.(i)) order;
  let heavy_rows = Array.sub order 0 (min k n) in
  let col_weight j =
    Array.fold_left (fun acc i -> acc +. Cx.abs2 (Mat.get w i j)) 0. heavy_rows
  in
  match regions with
  | [] | [ _ ] -> Perm.identity n
  | _main :: branch_regions ->
    let positions = List.concat branch_regions in
    let weights = List.map (fun j -> (col_weight j, j)) positions in
    let sorted_cols =
      List.map snd (List.sort (fun (wa, _) (wb, _) -> compare wb wa) weights)
    in
    (* Send the c-th heaviest column to the c-th branch position. *)
    let p = Perm.to_array (Perm.identity n) in
    List.iter2 (fun src dst -> p.(src) <- dst) sorted_cols positions;
    Perm.of_array p

(* Rows with the largest main-region mass go to the bottom (highest
   index), since elimination runs bottom-up. *)
let row_sort w main_cols =
  let n = Mat.rows w in
  let alpha =
    Array.init n (fun i ->
        List.fold_left (fun acc j -> acc +. Cx.abs2 (Mat.get w i j)) 0. main_cols)
  in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare alpha.(i) alpha.(j)) order;
  (* order.(dest) = source row; row_perm maps source -> dest. *)
  let p = Array.make n 0 in
  Array.iteri (fun dest src -> p.(src) <- dest) order;
  Perm.of_array p

let run_for_k ?ws ~theta_threshold pattern u k =
  Obs.Counter.incr c_candidate_ks;
  let regions = Pattern.branch_regions pattern in
  let main_cols = List.hd regions in
  let w1, cp1, alpha = column_search ~k u main_cols in
  let cp2 = branch_assignment ~k w1 alpha regions in
  (* [w1] is owned by this call (column_search copies), so the branch
     assignment and row sort are applied in place — the candidate search
     allocates exactly one matrix per K regardless of how many
     permutations it composes. *)
  Perm.permute_cols_inplace cp2 w1;
  let col_perm = Perm.compose cp2 cp1 in
  let row_perm = row_sort w1 main_cols in
  Perm.permute_rows_inplace row_perm w1;
  let plan = Eliminate.decompose ?ws pattern w1 in
  let small = Plan.small_angle_count plan ~threshold:theta_threshold in
  { permuted = w1; row_perm; col_perm; indicator_k = k; small_angles = small }

let optimize ?ws ?(theta_threshold = 0.1) ?candidate_ks pattern u =
  let n = Mat.rows u in
  if Mat.cols u <> n || n <> Pattern.size pattern then
    invalid_arg "Mapping.optimize: unitary and pattern sizes differ";
  let candidates =
    match candidate_ks with
    | Some ks ->
      let ks = List.filter (fun k -> k >= 1 && k <= n) ks in
      if ks = [] then invalid_arg "Mapping.optimize: no valid candidate K" else ks
    | None ->
      List.sort_uniq compare
        (List.filter_map
           (fun k -> if k >= 1 && k <= n then Some k else None)
           [ n / 4; n / 3; n / 2; 2 * n / 3; max 1 (n / 2) ])
  in
  let results = List.map (run_for_k ?ws ~theta_threshold pattern u) candidates in
  let best =
    List.fold_left
      (fun best r -> if r.small_angles > best.small_angles then r else best)
      (List.hd results) (List.tl results)
  in
  Obs.Gauge.set g_indicator_k (float_of_int best.indicator_k);
  Obs.Gauge.set g_small_angles (float_of_int best.small_angles);
  best

(* Rotations droppable within the (1−τ)·N trace budget, counting each
   dropped rotation's exact cost 2(1 − cos θ). *)
let droppable_within plan ~tau =
  let n = plan.Plan.modes in
  let budget = (1. -. tau) *. float_of_int n in
  let a = Plan.angles plan in
  Array.sort compare a;
  let rec go i acc =
    if i >= Array.length a then i
    else begin
      let acc = acc +. (2. *. (1. -. cos a.(i))) in
      if acc > budget then i else go (i + 1) acc
    end
  in
  go 0 0.

let polish ?ws ?(trials = 400) ?(tau = 0.95) ~rng pattern t =
  let n = Mat.rows t.permuted in
  let w = Mat.copy t.permuted in
  let col_perm = ref t.col_perm and row_perm = ref t.row_perm in
  let score () = droppable_within (Eliminate.decompose ?ws pattern w) ~tau in
  let best = ref (score ()) in
  let mats_before = Mat.allocations () in
  for _ = 1 to trials do
    Obs.Counter.incr c_polish_trials;
    let a = Bose_util.Rng.int rng n and b = Bose_util.Rng.int rng n in
    if a <> b then begin
      let swap_rows = Bose_util.Rng.bool rng in
      if swap_rows then Mat.swap_rows w a b else Mat.swap_cols w a b;
      let s = score () in
      if s >= !best then begin
        Obs.Counter.incr c_polish_accepted;
        best := s;
        if swap_rows then row_perm := Perm.compose (Perm.swap n a b) !row_perm
        else col_perm := Perm.compose (Perm.swap n a b) !col_perm
      end
      else if swap_rows then Mat.swap_rows w a b
      else Mat.swap_cols w a b
    end
  done;
  if trials > 0 then
    Obs.Gauge.set g_polish_mats
      (float_of_int (Mat.allocations () - mats_before) /. float_of_int trials);
  let plan = Eliminate.decompose ?ws pattern w in
  let small = Plan.small_angle_count plan ~threshold:0.1 in
  Obs.Gauge.set g_small_angles (float_of_int small);
  {
    permuted = w;
    row_perm = !row_perm;
    col_perm = !col_perm;
    indicator_k = t.indicator_k;
    small_angles = small;
  }

let relabel_output t physical =
  let n = Perm.size t.row_perm in
  if Array.length physical <> n then invalid_arg "Mapping.relabel_output: size mismatch";
  Array.init n (fun i -> physical.(Perm.apply t.row_perm i))

let input_site t i = Perm.apply t.col_perm i

let recovered_unitary t =
  let u = Mat.copy t.permuted in
  Perm.permute_cols_inplace (Perm.inverse t.col_perm) u;
  Perm.permute_rows_inplace (Perm.inverse t.row_perm) u;
  u
