(** Logical-to-physical qumode mapping via row/column permutations of the
    interferometer unitary (paper §V).

    The permuted unitary [U_per = P_r · U · P_c] is what gets decomposed
    and executed; both permutations are realized for free by relabeling
    qumodes before and after the program (§V-B):

    - logical input [i] is prepared on physical qumode
      [Perm.apply col_perm i];
    - logical output [i] is read from physical qumode
      [Perm.apply row_perm i].

    The optimizer (§V-D) greedily exchanges main-path-region columns with
    branch-region columns to raise the K-th-largest main-region row mass,
    assigns heavy leftover columns to branches near the start point, and
    orders rows so the heaviest main-region rows are eliminated first. *)

type t = {
  permuted : Bose_linalg.Mat.t;  (** U_per, the unitary to decompose. *)
  row_perm : Bose_linalg.Perm.t;
  col_perm : Bose_linalg.Perm.t;
  indicator_k : int;  (** The K used by the accepted indicator. *)
  small_angles : int;  (** |θ| < 0.1 count achieved after decomposition. *)
}

val trivial : Bose_linalg.Mat.t -> t
(** Identity mapping (used by the Baseline and Decomp-Opt configurations). *)

val optimize :
  ?ws:Bose_linalg.Mat.workspace ->
  ?theta_threshold:float ->
  ?candidate_ks:int list ->
  Bose_hardware.Pattern.t ->
  Bose_linalg.Mat.t ->
  t
(** Full §V-D optimization. [candidate_ks] defaults to
    [{N/4, N/3, N/2, 2N/3}]; for each K the column search and row sort
    run and the K producing the most rotations with
    |θ| < [theta_threshold] (default 0.1) wins. [?ws] is threaded to the
    trial decompositions so the candidate search reuses one elimination
    work matrix. *)

val polish :
  ?ws:Bose_linalg.Mat.workspace ->
  ?trials:int ->
  ?tau:float ->
  rng:Bose_util.Rng.t ->
  Bose_hardware.Pattern.t ->
  t ->
  t
(** Hill-climbing refinement on top of {!optimize}: random row/column
    swaps of the permuted unitary are accepted whenever they increase
    the number of rotations droppable within the fidelity budget
    (1 − [tau])·N (default τ = 0.95 as a generic proxy), measured by an
    actual decomposition. Each trial costs one O(N³) elimination, so
    [trials] (default 400) should shrink with N — the compiler scales it.
    The accepted swaps are composed into the returned permutations, so
    the §V-B relabeling identity keeps holding. With [?ws] each trial's
    elimination reuses the workspace's work matrix, dropping the loop to
    O(1) matrix allocations total (reported by the
    [map.polish_mats_per_trial] gauge). *)

val main_region_row_mass : Bose_hardware.Pattern.t -> Bose_linalg.Mat.t -> float array
(** α_i = Σ_{j ∈ main region} |u_ij|² for every row — §V-D's indicator
    ingredients, exposed for tests and the mapping example. *)

val relabel_output : t -> int array -> int array
(** Convert a measured physical Fock pattern into the logical pattern. *)

val input_site : t -> int -> int
(** Physical qumode that prepares logical input [i]. *)

val recovered_unitary : t -> Bose_linalg.Mat.t
(** [P_rᵀ · U_per · P_cᵀ] — must equal the original unitary; exposed so
    tests can verify the zero-cost-relabeling identity of §V-B. *)
