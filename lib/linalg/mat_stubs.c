/* Flat split-plane Givens rotation kernels.
 *
 * An OCaml [float array] is a Double_array_tag block, so casting the
 * value to [double *] addresses its elements directly.  All index and
 * shape validation happens on the OCaml side (Mat.rot_*); these entry
 * points assume in-bounds, distinct m/n.  They are [@@noalloc]: no
 * OCaml allocation, no callbacks, so the GC cannot move the arrays
 * mid-call.
 *
 * Two shapes cover the four Mat kernels:
 *   pre  — the phase e^{iφ} multiplies plane m *before* the real
 *          rotation (rot_cols_t_dagger with φ ← −φ, rot_rows_t);
 *   post — the real rotation runs first and the phase lands on the
 *          rotated m entry (rot_cols_t, rot_rows_t_dagger with φ ← −φ).
 * Each shape comes in a unit-stride variant (row rotations: two
 * contiguous runs, which the compiler vectorizes) and a strided
 * variant (column rotations: stride = ncols).
 *
 * The restrict qualifiers are justified by the OCaml-side m <> n
 * check: the m-run and n-run never overlap.
 */

#include <caml/mlvalues.h>

static void rot_pre(double *restrict rm, double *restrict qm,
                    double *restrict rn, double *restrict qn,
                    intnat count, intnat stride,
                    double c, double s, double ere, double eim)
{
  for (intnat k = 0; k < count; k++, rm += stride, qm += stride,
                                 rn += stride, qn += stride) {
    double mre = *rm, mim = *qm, nre = *rn, nim = *qn;
    double wre = mre * ere - mim * eim;
    double wim = mre * eim + mim * ere;
    *rm = wre * c - nre * s;
    *qm = wim * c - nim * s;
    *rn = wre * s + nre * c;
    *qn = wim * s + nim * c;
  }
}

static void rot_post(double *restrict rm, double *restrict qm,
                     double *restrict rn, double *restrict qn,
                     intnat count, intnat stride,
                     double c, double s, double ere, double eim)
{
  for (intnat k = 0; k < count; k++, rm += stride, qm += stride,
                                 rn += stride, qn += stride) {
    double mre = *rm, mim = *qm, nre = *rn, nim = *qn;
    double wre = mre * c + nre * s;
    double wim = mim * c + nim * s;
    *rm = wre * ere - wim * eim;
    *qm = wre * eim + wim * ere;
    *rn = nre * c - mre * s;
    *qn = nim * c - mim * s;
  }
}

CAMLprim value bose_rot_pre_nat(value vre, value vim, intnat count,
                                intnat km, intnat kn, intnat stride,
                                double c, double s, double ere, double eim)
{
  double *re = (double *)vre, *im = (double *)vim;
  if (stride == 1)
    rot_pre(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_pre(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  return Val_unit;
}

CAMLprim value bose_rot_post_nat(value vre, value vim, intnat count,
                                 intnat km, intnat kn, intnat stride,
                                 double c, double s, double ere, double eim)
{
  double *re = (double *)vre, *im = (double *)vim;
  if (stride == 1)
    rot_post(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_post(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  return Val_unit;
}

CAMLprim value bose_rot_pre_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_pre_nat(argv[0], argv[1], Long_val(argv[2]),
                          Long_val(argv[3]), Long_val(argv[4]),
                          Long_val(argv[5]), Double_val(argv[6]),
                          Double_val(argv[7]), Double_val(argv[8]),
                          Double_val(argv[9]));
}

CAMLprim value bose_rot_post_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_post_nat(argv[0], argv[1], Long_val(argv[2]),
                           Long_val(argv[3]), Long_val(argv[4]),
                           Long_val(argv[5]), Double_val(argv[6]),
                           Double_val(argv[7]), Double_val(argv[8]),
                           Double_val(argv[9]));
}
