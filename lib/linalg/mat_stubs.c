/* Flat split-plane Givens rotation kernels over Bigarray storage.
 *
 * Mat's two float planes are float64/c_layout Bigarray.Array1 values,
 * so Caml_ba_data_val gives a stable off-heap [double *] with no GC
 * interaction: the data never moves, which is what makes the blocking
 * entry points below safe — they drop the OCaml runtime lock around
 * the loop so pool domains overlap compute during large (N >= 128)
 * kernels.  All index and shape validation happens on the OCaml side
 * (Mat.rot_*); these entry points assume in-bounds, distinct m/n.
 *
 * Two shapes cover the four Mat kernels:
 *   pre  — the phase e^{iφ} multiplies plane m *before* the real
 *          rotation (rot_cols_t_dagger with φ ← −φ, rot_rows_t);
 *   post — the real rotation runs first and the phase lands on the
 *          rotated m entry (rot_cols_t, rot_rows_t_dagger with φ ← −φ).
 * Each shape comes in a unit-stride variant (row rotations: two
 * contiguous runs, which the compiler vectorizes) and a strided
 * variant (column rotations: stride = ncols).
 *
 * Each shape also comes in two lock disciplines:
 *   plain (…_nat)      — [@@noalloc], never touches the runtime; the
 *                        small-kernel fast path (entry cost ~a C call);
 *   blocking (…_blk_*) — caml_release_runtime_system around the loop;
 *                        Mat dispatches here above its size threshold.
 * A blocking stub must read every OCaml value (the two Bigarray data
 * pointers) *before* releasing the lock and must not touch the OCaml
 * heap until it reacquires — the loop only ever sees raw doubles.
 *
 * The restrict qualifiers are justified by the OCaml-side m <> n
 * check: the m-run and n-run never overlap.
 */

#include <string.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <caml/threads.h>

static void rot_pre(double *restrict rm, double *restrict qm,
                    double *restrict rn, double *restrict qn,
                    intnat count, intnat stride,
                    double c, double s, double ere, double eim)
{
  for (intnat k = 0; k < count; k++, rm += stride, qm += stride,
                                 rn += stride, qn += stride) {
    double mre = *rm, mim = *qm, nre = *rn, nim = *qn;
    double wre = mre * ere - mim * eim;
    double wim = mre * eim + mim * ere;
    *rm = wre * c - nre * s;
    *qm = wim * c - nim * s;
    *rn = wre * s + nre * c;
    *qn = wim * s + nim * c;
  }
}

static void rot_post(double *restrict rm, double *restrict qm,
                     double *restrict rn, double *restrict qn,
                     intnat count, intnat stride,
                     double c, double s, double ere, double eim)
{
  for (intnat k = 0; k < count; k++, rm += stride, qm += stride,
                                 rn += stride, qn += stride) {
    double mre = *rm, mim = *qm, nre = *rn, nim = *qn;
    double wre = mre * c + nre * s;
    double wim = mim * c + nim * s;
    *rm = wre * ere - wim * eim;
    *qm = wre * eim + wim * ere;
    *rn = nre * c - mre * s;
    *qn = nim * c - mim * s;
  }
}

CAMLprim value bose_rot_pre_nat(value vre, value vim, intnat count,
                                intnat km, intnat kn, intnat stride,
                                double c, double s, double ere, double eim)
{
  double *re = (double *)Caml_ba_data_val(vre);
  double *im = (double *)Caml_ba_data_val(vim);
  if (stride == 1)
    rot_pre(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_pre(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  return Val_unit;
}

CAMLprim value bose_rot_post_nat(value vre, value vim, intnat count,
                                 intnat km, intnat kn, intnat stride,
                                 double c, double s, double ere, double eim)
{
  double *re = (double *)Caml_ba_data_val(vre);
  double *im = (double *)Caml_ba_data_val(vim);
  if (stride == 1)
    rot_post(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_post(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  return Val_unit;
}

CAMLprim value bose_rot_pre_blk_nat(value vre, value vim, intnat count,
                                    intnat km, intnat kn, intnat stride,
                                    double c, double s, double ere, double eim)
{
  double *re = (double *)Caml_ba_data_val(vre);
  double *im = (double *)Caml_ba_data_val(vim);
  caml_release_runtime_system();
  if (stride == 1)
    rot_pre(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_pre(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  caml_acquire_runtime_system();
  return Val_unit;
}

CAMLprim value bose_rot_post_blk_nat(value vre, value vim, intnat count,
                                     intnat km, intnat kn, intnat stride,
                                     double c, double s, double ere, double eim)
{
  double *re = (double *)Caml_ba_data_val(vre);
  double *im = (double *)Caml_ba_data_val(vim);
  caml_release_runtime_system();
  if (stride == 1)
    rot_post(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_post(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  caml_acquire_runtime_system();
  return Val_unit;
}

CAMLprim value bose_rot_pre_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_pre_nat(argv[0], argv[1], Long_val(argv[2]),
                          Long_val(argv[3]), Long_val(argv[4]),
                          Long_val(argv[5]), Double_val(argv[6]),
                          Double_val(argv[7]), Double_val(argv[8]),
                          Double_val(argv[9]));
}

CAMLprim value bose_rot_post_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_post_nat(argv[0], argv[1], Long_val(argv[2]),
                           Long_val(argv[3]), Long_val(argv[4]),
                           Long_val(argv[5]), Double_val(argv[6]),
                           Double_val(argv[7]), Double_val(argv[8]),
                           Double_val(argv[9]));
}

CAMLprim value bose_rot_pre_blk_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_pre_blk_nat(argv[0], argv[1], Long_val(argv[2]),
                              Long_val(argv[3]), Long_val(argv[4]),
                              Long_val(argv[5]), Double_val(argv[6]),
                              Double_val(argv[7]), Double_val(argv[8]),
                              Double_val(argv[9]));
}

CAMLprim value bose_rot_post_blk_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_post_blk_nat(argv[0], argv[1], Long_val(argv[2]),
                               Long_val(argv[3]), Long_val(argv[4]),
                               Long_val(argv[5]), Double_val(argv[6]),
                               Double_val(argv[7]), Double_val(argv[8]),
                               Double_val(argv[9]));
}

/* ------------------------------------------------------------------ */
/* Fused multi-rotation sweep kernels (BLAS rotm-style).
 *
 * A packed rotation sequence is a float64 Bigarray holding 8 doubles
 * per rotation: m, n, c, s, ere, eim, bound, pad.  The phase (ere,
 * eim) is stored in *kernel* form — any dagger sign flip happened when
 * the rotation was packed — so one pre body and one post body cover
 * every caller.  [bound] is a per-rotation applicability limit: for
 * the column sweeps a rotation applies to row r iff r < bound (the
 * Clements ?nrows restriction); for the row sweep it is the first
 * column the rotation touches (the Clements ?first restriction).
 *
 * The column sweeps iterate row-outer: one matrix row stays resident
 * in L1 while the whole rotation subsequence [rot_lo, rot_hi) streams
 * over it in order.  Per row, the element updates are exactly the
 * per-rotation kernels above applied in sequence, so the result for a
 * given row never depends on how callers partition the row range —
 * the bit-identity contract the parallel elimination engines rely on.
 * The row sweep iterates rotation-outer over a column slice; per
 * column the update order is likewise the rotation order.
 *
 * Per-element arithmetic is kept textually identical to rot_pre /
 * rot_post so the fused and per-rotation paths share one numerical
 * story per translation unit.
 */

static void sweep_cols_pre(double *restrict re, double *restrict im,
                           const double *restrict seq, intnat ncols,
                           intnat row_lo, intnat row_hi,
                           intnat rot_lo, intnat rot_hi)
{
  for (intnat r = row_lo; r < row_hi; r++) {
    double *rrow = re + r * ncols, *qrow = im + r * ncols;
    double rd = (double)r;
    const double *p = seq + 8 * rot_lo;
    for (intnat t = rot_lo; t < rot_hi; t++, p += 8) {
      if (rd < p[6]) {
        intnat m = (intnat)p[0], n = (intnat)p[1];
        double c = p[2], s = p[3], ere = p[4], eim = p[5];
        double mre = rrow[m], mim = qrow[m], nre = rrow[n], nim = qrow[n];
        double wre = mre * ere - mim * eim;
        double wim = mre * eim + mim * ere;
        rrow[m] = wre * c - nre * s;
        qrow[m] = wim * c - nim * s;
        rrow[n] = wre * s + nre * c;
        qrow[n] = wim * s + nim * c;
      }
    }
  }
}

static void sweep_cols_post(double *restrict re, double *restrict im,
                            const double *restrict seq, intnat ncols,
                            intnat row_lo, intnat row_hi,
                            intnat rot_lo, intnat rot_hi)
{
  for (intnat r = row_lo; r < row_hi; r++) {
    double *rrow = re + r * ncols, *qrow = im + r * ncols;
    double rd = (double)r;
    const double *p = seq + 8 * rot_lo;
    for (intnat t = rot_lo; t < rot_hi; t++, p += 8) {
      if (rd < p[6]) {
        intnat m = (intnat)p[0], n = (intnat)p[1];
        double c = p[2], s = p[3], ere = p[4], eim = p[5];
        double mre = rrow[m], mim = qrow[m], nre = rrow[n], nim = qrow[n];
        double wre = mre * c + nre * s;
        double wim = mim * c + nim * s;
        rrow[m] = wre * ere - wim * eim;
        qrow[m] = wre * eim + wim * ere;
        rrow[n] = nre * c - mre * s;
        qrow[n] = nim * c - mim * s;
      }
    }
  }
}

static void sweep_rows_pre(double *restrict re, double *restrict im,
                           const double *restrict seq, intnat ncols,
                           intnat col_lo, intnat col_hi,
                           intnat rot_lo, intnat rot_hi)
{
  const double *p = seq + 8 * rot_lo;
  for (intnat t = rot_lo; t < rot_hi; t++, p += 8) {
    intnat m = (intnat)p[0], n = (intnat)p[1];
    double c = p[2], s = p[3], ere = p[4], eim = p[5];
    intnat first = (intnat)p[6];
    intnat j0 = col_lo > first ? col_lo : first;
    double *rm = re + m * ncols + j0, *qm = im + m * ncols + j0;
    double *rn = re + n * ncols + j0, *qn = im + n * ncols + j0;
    for (intnat j = j0; j < col_hi; j++, rm++, qm++, rn++, qn++) {
      double mre = *rm, mim = *qm, nre = *rn, nim = *qn;
      double wre = mre * ere - mim * eim;
      double wim = mre * eim + mim * ere;
      *rm = wre * c - nre * s;
      *qm = wim * c - nim * s;
      *rn = wre * s + nre * c;
      *qn = wim * s + nim * c;
    }
  }
}

#define SWEEP_STUBS(name)                                                    \
  CAMLprim value bose_##name##_nat(value vre, value vim, value vseq,         \
                                   intnat ncols, intnat lo, intnat hi,       \
                                   intnat rot_lo, intnat rot_hi)             \
  {                                                                          \
    name((double *)Caml_ba_data_val(vre), (double *)Caml_ba_data_val(vim),   \
         (const double *)Caml_ba_data_val(vseq), ncols, lo, hi, rot_lo,      \
         rot_hi);                                                            \
    return Val_unit;                                                         \
  }                                                                          \
  CAMLprim value bose_##name##_blk_nat(value vre, value vim, value vseq,     \
                                       intnat ncols, intnat lo, intnat hi,   \
                                       intnat rot_lo, intnat rot_hi)         \
  {                                                                          \
    double *re = (double *)Caml_ba_data_val(vre);                            \
    double *im = (double *)Caml_ba_data_val(vim);                            \
    const double *seq = (const double *)Caml_ba_data_val(vseq);              \
    caml_release_runtime_system();                                           \
    name(re, im, seq, ncols, lo, hi, rot_lo, rot_hi);                        \
    caml_acquire_runtime_system();                                           \
    return Val_unit;                                                         \
  }                                                                          \
  CAMLprim value bose_##name##_byte(value *argv, int argn)                   \
  {                                                                          \
    (void)argn;                                                              \
    return bose_##name##_nat(argv[0], argv[1], argv[2], Long_val(argv[3]),   \
                             Long_val(argv[4]), Long_val(argv[5]),           \
                             Long_val(argv[6]), Long_val(argv[7]));          \
  }                                                                          \
  CAMLprim value bose_##name##_blk_byte(value *argv, int argn)               \
  {                                                                          \
    (void)argn;                                                              \
    return bose_##name##_blk_nat(argv[0], argv[1], argv[2],                  \
                                 Long_val(argv[3]), Long_val(argv[4]),       \
                                 Long_val(argv[5]), Long_val(argv[6]),       \
                                 Long_val(argv[7]));                         \
  }

SWEEP_STUBS(sweep_cols_pre)
SWEEP_STUBS(sweep_cols_post)
SWEEP_STUBS(sweep_rows_pre)

/* ------------------------------------------------------------------ */
/* Binary-artifact helpers over mmapped byte buffers (char Bigarrays).
 * The disk cache maps object files and decodes the float planes with
 * one memcpy per plane (memcpy handles the file's arbitrary alignment)
 * instead of allocating and parsing an intermediate string.  Little-
 * endian hosts only; Mat gates the callers on Sys.big_endian.         */

CAMLprim value bose_ba_blit_to_plane(value vsrc, value vsrcoff, value vdst,
                                     value vdstoff, value vcount)
{
  const char *src = (const char *)Caml_ba_data_val(vsrc) + Long_val(vsrcoff);
  double *dst = (double *)Caml_ba_data_val(vdst) + Long_val(vdstoff);
  memcpy(dst, src, (size_t)Long_val(vcount) * sizeof(double));
  return Val_unit;
}

/* FNV-1a 64 over a mapped buffer slice; must agree with Bose_util.Fnv. */
CAMLprim value bose_ba_fnv1a64(value vba, value voff, value vlen)
{
  const unsigned char *p =
    (const unsigned char *)Caml_ba_data_val(vba) + Long_val(voff);
  intnat len = Long_val(vlen);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (intnat i = 0; i < len; i++)
    h = (h ^ p[i]) * 0x100000001b3ULL;
  return caml_copy_int64((int64_t)h);
}
