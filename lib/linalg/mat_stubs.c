/* Flat split-plane Givens rotation kernels over Bigarray storage.
 *
 * Mat's two float planes are float64/c_layout Bigarray.Array1 values,
 * so Caml_ba_data_val gives a stable off-heap [double *] with no GC
 * interaction: the data never moves, which is what makes the blocking
 * entry points below safe — they drop the OCaml runtime lock around
 * the loop so pool domains overlap compute during large (N >= 128)
 * kernels.  All index and shape validation happens on the OCaml side
 * (Mat.rot_*); these entry points assume in-bounds, distinct m/n.
 *
 * Two shapes cover the four Mat kernels:
 *   pre  — the phase e^{iφ} multiplies plane m *before* the real
 *          rotation (rot_cols_t_dagger with φ ← −φ, rot_rows_t);
 *   post — the real rotation runs first and the phase lands on the
 *          rotated m entry (rot_cols_t, rot_rows_t_dagger with φ ← −φ).
 * Each shape comes in a unit-stride variant (row rotations: two
 * contiguous runs, which the compiler vectorizes) and a strided
 * variant (column rotations: stride = ncols).
 *
 * Each shape also comes in two lock disciplines:
 *   plain (…_nat)      — [@@noalloc], never touches the runtime; the
 *                        small-kernel fast path (entry cost ~a C call);
 *   blocking (…_blk_*) — caml_release_runtime_system around the loop;
 *                        Mat dispatches here above its size threshold.
 * A blocking stub must read every OCaml value (the two Bigarray data
 * pointers) *before* releasing the lock and must not touch the OCaml
 * heap until it reacquires — the loop only ever sees raw doubles.
 *
 * The restrict qualifiers are justified by the OCaml-side m <> n
 * check: the m-run and n-run never overlap.
 */

#include <string.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <caml/threads.h>

static void rot_pre(double *restrict rm, double *restrict qm,
                    double *restrict rn, double *restrict qn,
                    intnat count, intnat stride,
                    double c, double s, double ere, double eim)
{
  for (intnat k = 0; k < count; k++, rm += stride, qm += stride,
                                 rn += stride, qn += stride) {
    double mre = *rm, mim = *qm, nre = *rn, nim = *qn;
    double wre = mre * ere - mim * eim;
    double wim = mre * eim + mim * ere;
    *rm = wre * c - nre * s;
    *qm = wim * c - nim * s;
    *rn = wre * s + nre * c;
    *qn = wim * s + nim * c;
  }
}

static void rot_post(double *restrict rm, double *restrict qm,
                     double *restrict rn, double *restrict qn,
                     intnat count, intnat stride,
                     double c, double s, double ere, double eim)
{
  for (intnat k = 0; k < count; k++, rm += stride, qm += stride,
                                 rn += stride, qn += stride) {
    double mre = *rm, mim = *qm, nre = *rn, nim = *qn;
    double wre = mre * c + nre * s;
    double wim = mim * c + nim * s;
    *rm = wre * ere - wim * eim;
    *qm = wre * eim + wim * ere;
    *rn = nre * c - mre * s;
    *qn = nim * c - mim * s;
  }
}

CAMLprim value bose_rot_pre_nat(value vre, value vim, intnat count,
                                intnat km, intnat kn, intnat stride,
                                double c, double s, double ere, double eim)
{
  double *re = (double *)Caml_ba_data_val(vre);
  double *im = (double *)Caml_ba_data_val(vim);
  if (stride == 1)
    rot_pre(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_pre(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  return Val_unit;
}

CAMLprim value bose_rot_post_nat(value vre, value vim, intnat count,
                                 intnat km, intnat kn, intnat stride,
                                 double c, double s, double ere, double eim)
{
  double *re = (double *)Caml_ba_data_val(vre);
  double *im = (double *)Caml_ba_data_val(vim);
  if (stride == 1)
    rot_post(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_post(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  return Val_unit;
}

CAMLprim value bose_rot_pre_blk_nat(value vre, value vim, intnat count,
                                    intnat km, intnat kn, intnat stride,
                                    double c, double s, double ere, double eim)
{
  double *re = (double *)Caml_ba_data_val(vre);
  double *im = (double *)Caml_ba_data_val(vim);
  caml_release_runtime_system();
  if (stride == 1)
    rot_pre(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_pre(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  caml_acquire_runtime_system();
  return Val_unit;
}

CAMLprim value bose_rot_post_blk_nat(value vre, value vim, intnat count,
                                     intnat km, intnat kn, intnat stride,
                                     double c, double s, double ere, double eim)
{
  double *re = (double *)Caml_ba_data_val(vre);
  double *im = (double *)Caml_ba_data_val(vim);
  caml_release_runtime_system();
  if (stride == 1)
    rot_post(re + km, im + km, re + kn, im + kn, count, 1, c, s, ere, eim);
  else
    rot_post(re + km, im + km, re + kn, im + kn, count, stride, c, s, ere, eim);
  caml_acquire_runtime_system();
  return Val_unit;
}

CAMLprim value bose_rot_pre_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_pre_nat(argv[0], argv[1], Long_val(argv[2]),
                          Long_val(argv[3]), Long_val(argv[4]),
                          Long_val(argv[5]), Double_val(argv[6]),
                          Double_val(argv[7]), Double_val(argv[8]),
                          Double_val(argv[9]));
}

CAMLprim value bose_rot_post_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_post_nat(argv[0], argv[1], Long_val(argv[2]),
                           Long_val(argv[3]), Long_val(argv[4]),
                           Long_val(argv[5]), Double_val(argv[6]),
                           Double_val(argv[7]), Double_val(argv[8]),
                           Double_val(argv[9]));
}

CAMLprim value bose_rot_pre_blk_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_pre_blk_nat(argv[0], argv[1], Long_val(argv[2]),
                              Long_val(argv[3]), Long_val(argv[4]),
                              Long_val(argv[5]), Double_val(argv[6]),
                              Double_val(argv[7]), Double_val(argv[8]),
                              Double_val(argv[9]));
}

CAMLprim value bose_rot_post_blk_byte(value *argv, int argn)
{
  (void)argn;
  return bose_rot_post_blk_nat(argv[0], argv[1], Long_val(argv[2]),
                               Long_val(argv[3]), Long_val(argv[4]),
                               Long_val(argv[5]), Double_val(argv[6]),
                               Double_val(argv[7]), Double_val(argv[8]),
                               Double_val(argv[9]));
}

/* ------------------------------------------------------------------ */
/* Binary-artifact helpers over mmapped byte buffers (char Bigarrays).
 * The disk cache maps object files and decodes the float planes with
 * one memcpy per plane (memcpy handles the file's arbitrary alignment)
 * instead of allocating and parsing an intermediate string.  Little-
 * endian hosts only; Mat gates the callers on Sys.big_endian.         */

CAMLprim value bose_ba_blit_to_plane(value vsrc, value vsrcoff, value vdst,
                                     value vdstoff, value vcount)
{
  const char *src = (const char *)Caml_ba_data_val(vsrc) + Long_val(vsrcoff);
  double *dst = (double *)Caml_ba_data_val(vdst) + Long_val(vdstoff);
  memcpy(dst, src, (size_t)Long_val(vcount) * sizeof(double));
  return Val_unit;
}

/* FNV-1a 64 over a mapped buffer slice; must agree with Bose_util.Fnv. */
CAMLprim value bose_ba_fnv1a64(value vba, value voff, value vlen)
{
  const unsigned char *p =
    (const unsigned char *)Caml_ba_data_val(vba) + Long_val(voff);
  intnat len = Long_val(vlen);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (intnat i = 0; i < len; i++)
    h = (h ^ p[i]) * 0x100000001b3ULL;
  return caml_copy_int64((int64_t)h);
}
