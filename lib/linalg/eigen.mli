(** Real-symmetric eigendecomposition (cyclic Jacobi). *)

val jacobi : ?tol:float -> ?max_sweeps:int -> float array array -> float array * float array array
(** [jacobi a] = (eigenvalues, eigenvectors) for a real symmetric matrix,
    with [a = V · diag(λ) · Vᵀ]; eigenvector [k] is column [k] of the
    returned matrix, i.e. [vectors.(i).(k)]. Eigenvalues are sorted in
    decreasing order. [a] is not modified.
    @raise Invalid_argument if [a] is not square or not symmetric. *)

val reconstruct : float array -> float array array -> float array array
(** [reconstruct lambda v] = [V · diag(λ) · Vᵀ], for testing round-trips. *)
