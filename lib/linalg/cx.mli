(** Complex-number helpers on top of [Stdlib.Complex]. *)

type t = Complex.t

val zero : t
val one : t
val i : t
val re : float -> t
(** Real number as a complex. *)

val make : float -> float -> t
(** [make re im]. *)

val polar : float -> float -> t
(** [polar r theta] = r·e^{iθ}. *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t

val conj : t -> t
val neg : t -> t
val abs : t -> float
val abs2 : t -> float
(** Squared modulus, cheaper than [abs x ** 2.]. *)

val arg : t -> float
val scale : float -> t -> t
val exp_i : float -> t
(** [exp_i theta] = e^{iθ}. *)

val is_close : ?tol:float -> t -> t -> bool
(** Componentwise closeness with absolute tolerance (default 1e-9). *)

val pp : Format.formatter -> t -> unit
(** Prints as [a+bi] with 6 significant digits. *)

val to_string : t -> string
