open Cx
module Rng = Bose_util.Rng
module Fnv = Bose_util.Fnv

(* Householder QR. For column k, build v = x + e^{i·arg x₀}‖x‖·e₀ and
   reflect the trailing block of r and the trailing columns of q. *)
let qr a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Unitary.qr: square matrices only";
  let r = Mat.copy a in
  let q = Mat.identity n in
  for k = 0 to n - 2 do
    let m = n - k in
    let x = Array.init m (fun i -> Mat.get r (k + i) k) in
    let norm_x = sqrt (Array.fold_left (fun acc z -> acc +. Cx.abs2 z) 0. x) in
    if norm_x > 1e-300 then begin
      let phase = if Cx.abs x.(0) = 0. then Cx.one else Cx.exp_i (Cx.arg x.(0)) in
      let v = Array.copy x in
      v.(0) <- v.(0) +: (phase *: Cx.re norm_x);
      let norm_v2 = Array.fold_left (fun acc z -> acc +. Cx.abs2 z) 0. v in
      if norm_v2 > 1e-300 then begin
        let beta = 2. /. norm_v2 in
        (* r ← (I − β v v†) r on rows k..n-1 *)
        for j = k to n - 1 do
          let dot = ref Cx.zero in
          for i = 0 to m - 1 do
            dot := !dot +: (Cx.conj v.(i) *: Mat.get r (k + i) j)
          done;
          let s = Cx.scale beta !dot in
          for i = 0 to m - 1 do
            Mat.set r (k + i) j (Mat.get r (k + i) j -: (v.(i) *: s))
          done
        done;
        (* q ← q (I − β v v†) on columns k..n-1 *)
        for i = 0 to n - 1 do
          let dot = ref Cx.zero in
          for j = 0 to m - 1 do
            dot := !dot +: (Mat.get q i (k + j) *: v.(j))
          done;
          let s = Cx.scale beta !dot in
          for j = 0 to m - 1 do
            Mat.set q i (k + j) (Mat.get q i (k + j) -: (s *: Cx.conj v.(j)))
          done
        done
      end
    end
  done;
  (q, r)

let ginibre rng n =
  Mat.init n n (fun _ _ ->
      let re, im = Rng.gaussian_pair rng in
      Cx.make (re /. sqrt 2.) (im /. sqrt 2.))

(* Mezzadri's fix: scale the columns of Q by the phases of diag(R) so the
   result is exactly Haar-distributed rather than merely unitary. The
   phases are applied in place with the column kernel. *)
let haar_random rng n =
  let q, r = qr (ginibre rng n) in
  for j = 0 to n - 1 do
    let d = Mat.get r j j in
    if Cx.abs d <> 0. then Mat.scale_col q j (Cx.exp_i (Cx.arg d))
  done;
  q

let random_orthogonal rng n =
  let g = Mat.init n n (fun _ _ -> Cx.re (Rng.gaussian rng)) in
  let q, r = qr g in
  for j = 0 to n - 1 do
    if (Mat.get r j j).re < 0. then Mat.scale_col q j (Cx.re (-1.))
  done;
  q

let random_diagonal_phases rng n =
  let m = Mat.create n n in
  for i = 0 to n - 1 do
    Mat.set m i i (Cx.exp_i (Rng.float rng (2. *. Float.pi)))
  done;
  m

(* Line-oriented text serialization, mirroring Plan's format:
     unitary <n>
     e <re> <im>      (n·n lines, row-major)
   Floats are printed with %h (hex) so the round-trip is bit-exact. *)
let to_string m =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Unitary.to_string: square matrices only";
  let buf = Buffer.create (16 + (n * n * 32)) in
  Buffer.add_string buf (Printf.sprintf "unitary %d\n" n);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let (v : Cx.t) = Mat.get m i j in
      Buffer.add_string buf (Printf.sprintf "e %h %h\n" v.re v.im)
    done
  done;
  Buffer.contents buf

let save oc m = output_string oc (to_string m)

let parse_lines line =
  let lineno = ref 0 in
  let exception Bad of string * int in
  let fail msg = raise (Bad (msg, !lineno)) in
  let next () =
    incr lineno;
    match line () with Some l -> l | None -> fail "truncated input"
  in
  try
    let n =
      try Scanf.sscanf (next ()) "unitary %d" (fun n -> n)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail "bad header"
    in
    if n <= 0 then fail "bad header values";
    let m = Mat.create n n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let v =
          try Scanf.sscanf (next ()) "e %h %h" Cx.make
          with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail "bad entry line"
        in
        Mat.set m i j v
      done
    done;
    Ok m
  with Bad (msg, l) -> Error (msg, l)

let load_result ic =
  parse_lines (fun () -> try Some (input_line ic) with End_of_file -> None)

(* Binary artifact format v2 (docs/SERVING.md). Fixed little-endian
   layout so the disk cache can decode an mmapped object without
   parsing:
     bytes 0..3   magic "BHBU"
     byte  4      format version (0x02)
     bytes 5..7   zero padding
     bytes 8..11  n  (u32 LE)
     bytes 12..15 zero padding (plane payload starts 16-byte aligned
                  in the serialized stream)
     bytes 16..   the two planes (Mat's binary plane codec)
     last 8       FNV-1a 64 over all preceding bytes (u64 LE)
   Text artifacts keep their "unitary" first line, so one byte of
   lookahead distinguishes the formats — [of_string] dispatches on the
   magic, and old cache objects keep loading. *)
let binary_magic = "BHBU"
let binary_format_version = 2
let binary_header_bytes = 16
let max_binary_dim = 1 lsl 20

let binary_size n = binary_header_bytes + (16 * n * n) + 8

let to_binary_string m =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Unitary.to_binary_string: square matrices only";
  let buf = Buffer.create (binary_size n) in
  Buffer.add_string buf binary_magic;
  Buffer.add_uint8 buf binary_format_version;
  Buffer.add_string buf "\000\000\000";
  Buffer.add_int32_le buf (Int32.of_int n);
  Buffer.add_int32_le buf 0l;
  Mat.encode_planes buf m;
  Buffer.add_int64_le buf (Fnv.string Fnv.seed (Buffer.contents buf));
  Buffer.contents buf

let has_binary_magic s =
  String.length s >= 4 && String.sub s 0 4 = binary_magic

(* Binary parse errors report line 0 — there are no lines to point at,
   and 0 cannot collide with a 1-based text line number. *)
let check_binary_header ~version ~n ~len =
  if version <> binary_format_version then
    Error (Printf.sprintf "binary unitary: unsupported version %d" version, 0)
  else if n <= 0 || n > max_binary_dim then Error ("binary unitary: bad header values", 0)
  else if len <> binary_size n then Error ("binary unitary: size mismatch", 0)
  else Ok ()

let of_binary_string s =
  let len = String.length s in
  if len < binary_header_bytes + 8 then Error ("binary unitary: truncated", 0)
  else begin
    let version = Char.code s.[4] in
    let n = Int32.to_int (String.get_int32_le s 8) in
    match check_binary_header ~version ~n ~len with
    | Error _ as e -> e
    | Ok () ->
      let body = len - 8 in
      if String.get_int64_le s body <> Fnv.substring Fnv.seed s ~pos:0 ~len:body then
        Error ("binary unitary: checksum mismatch", 0)
      else Ok (Mat.decode_planes_string ~rows:n ~cols:n s ~pos:binary_header_bytes)
  end

let of_bigbytes ba ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim ba then
    invalid_arg "Unitary.of_bigbytes: range out of bounds";
  if len < binary_header_bytes + 8 then Error ("binary unitary: truncated", 0)
  else begin
    let header = Mat.bigbytes_sub_string ba ~pos ~len:binary_header_bytes in
    if String.sub header 0 4 <> binary_magic then Error ("binary unitary: bad magic", 0)
    else begin
      let version = Char.code header.[4] in
      let n = Int32.to_int (String.get_int32_le header 8) in
      match check_binary_header ~version ~n ~len with
      | Error _ as e -> e
      | Ok () ->
        let body = len - 8 in
        let stored =
          String.get_int64_le (Mat.bigbytes_sub_string ba ~pos:(pos + body) ~len:8) 0
        in
        if stored <> Mat.fnv1a64_bigbytes ba ~pos ~len:body then
          Error ("binary unitary: checksum mismatch", 0)
        else
          Ok (Mat.decode_planes_bigbytes ~rows:n ~cols:n ba ~pos:(pos + binary_header_bytes))
    end
  end

let of_string s =
  if has_binary_magic s then of_binary_string s
  else begin
    let pos = ref 0 in
    let len = String.length s in
    parse_lines (fun () ->
        if !pos >= len then None
        else begin
          let stop = match String.index_from_opt s !pos '\n' with Some i -> i | None -> len in
          let l = String.sub s !pos (stop - !pos) in
          pos := stop + 1;
          Some l
        end)
  end

let load ic =
  match load_result ic with
  | Ok m -> m
  | Error (msg, l) -> failwith (Printf.sprintf "Unitary.load: %s (line %d)" msg l)
