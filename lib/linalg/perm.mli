(** Permutations of qumode / matrix indices.

    A permutation [p] maps source index [i] to destination [p i]. The
    mapping optimization (paper §V-B) encodes logical-to-physical qumode
    relabeling as row and column permutations of the interferometer
    unitary, applied at zero gate cost. *)

type t

val identity : int -> t
val of_array : int array -> t
(** [of_array a] maps [i] to [a.(i)]. @raise Invalid_argument if [a] is
    not a permutation of [0..n-1]. *)

val to_array : t -> int array
val size : t -> int
val apply : t -> int -> int
val inverse : t -> t
val compose : t -> t -> t
(** [compose p q] applies [q] first, then [p]. *)

val swap : int -> int -> int -> t
(** [swap n i j] transposes [i] and [j] on [0..n-1]. *)

val is_identity : t -> bool

val permute_rows : t -> Mat.t -> Mat.t
(** [permute_rows p m] moves row [i] of [m] to row [p i]; equals
    [P · m] for the matrix [P] with [P(p i, i) = 1]. *)

val permute_cols : t -> Mat.t -> Mat.t
(** [permute_cols p m] moves column [j] of [m] to column [p j];
    equals [m · Pᵀ]. *)

val permute_rows_inplace : t -> Mat.t -> unit
(** In-place {!permute_rows} (cycle-following, no matrix allocated) —
    the zero-copy relabeling used by the mapping candidate search. *)

val permute_cols_inplace : t -> Mat.t -> unit
(** In-place {!permute_cols}. *)

val matrix : t -> Mat.t
(** Dense matrix [P] with [P(p i, i) = 1], so [P·x] relabels vector
    entries by [p]. *)

val permute_list : t -> 'a list -> 'a list
(** Relabel list positions: element at [i] moves to position [p i]. *)

val random : Bose_util.Rng.t -> int -> t

val pp : Format.formatter -> t -> unit
