(** The two-dimensional rotations T_{m,n}(θ, φ) of the interferometer
    decomposition (paper Eq. 1) and the elimination step built on them.

    [T m n theta phi] differs from the identity only at rows/columns
    [m], [n]:
    {v
       T[m][m] = e^{iφ} cos θ     T[m][n] = -sin θ
       T[n][m] = e^{iφ} sin θ     T[n][n] =  cos θ
    v}

    A rotation is stored in the precomputed form the in-place kernels
    consume — (cos θ, sin θ) and the unit phase e^{iφ} — rather than
    as raw angles: {!eliminate} derives these four numbers
    algebraically from the entries being zeroed, and replay feeds them
    straight back to the [Mat.rot_*_cs] kernels, so neither direction
    pays trigonometry. The angles themselves are recovered on demand
    by {!theta}/{!phi} (one atan2 each) for circuit emission and
    dropout thresholding.

    The elimination right-multiplies the working matrix by T†, zeroing
    entry [(row, m)] against entry [(row, n)] (paper Eq. 2), so a full
    decomposition reaches [U · T₁† · T₂† ⋯ = Λ], i.e.
    [U = Λ · (⋯ T₂ · T₁)]. *)

type rotation = {
  m : int;  (** Column/qumode whose entry gets zeroed. *)
  n : int;  (** Column/qumode that absorbs the amplitude. *)
  c : float;  (** cos θ; θ is the beamsplitter angle, in [\[0, π/2\]]. *)
  s : float;  (** sin θ. *)
  ere : float;  (** Re e^{iφ}; φ is the phase-shifter angle. *)
  eim : float;  (** Im e^{iφ}. *)
}

val of_angles : m:int -> n:int -> theta:float -> phi:float -> rotation
(** Build a rotation from raw angles (cos/sin once, at construction). *)

val theta : rotation -> float
(** The beamsplitter angle θ = atan2 [s] [c], in [\[0, π/2\]] for
    rotations produced by {!eliminate}. *)

val phi : rotation -> float
(** The phase-shifter angle φ = atan2 [eim] [ere], in [(-π, π]]. *)

val drop_mixing : rotation -> rotation
(** The rotation with its beamsplitter removed (θ ← 0) but its phase
    kept — what physically remains when dropout discards an MZI. *)

val matrix : int -> rotation -> Mat.t
(** [matrix dim r] is the dense N×N matrix of T_{m,n}(θ, φ). *)

val eliminate : ?nrows:int -> Mat.t -> row:int -> m:int -> n:int -> rotation
(** [eliminate u ~row ~m ~n] computes the rotation such that
    right-multiplying [u] by T† zeroes [u(row, m)], and applies the
    update to [u] in place (only columns [m] and [n] change). After
    the call, |u(row, n)|² has absorbed the old |u(row, m)|².
    [?nrows] restricts the column update to the first [nrows] rows —
    sound only when the caller knows both columns are zero below, as
    in the Clements sweeps. *)

val apply_t_dagger_right : Mat.t -> rotation -> unit
(** In-place [u ← u · T†]. *)

val apply_t_right : Mat.t -> rotation -> unit
(** In-place [u ← u · T]; the inverse of {!apply_t_dagger_right}. *)

val solve : Mat.t -> row:int -> m:int -> n:int -> rotation
(** The rotation {!eliminate} would apply, without mutating anything. *)

val angle_for : Mat.t -> row:int -> m:int -> n:int -> float
(** The θ that {!eliminate} would produce, without mutating anything. *)

val apply_t_left : Mat.t -> rotation -> unit
(** In-place [u ← T · u]. *)

val apply_t_dagger_left : Mat.t -> rotation -> unit
(** In-place [u ← T† · u]; the inverse of {!apply_t_left}. *)

val eliminate_left : ?first:int -> Mat.t -> col:int -> m:int -> n:int -> rotation
(** [eliminate_left u ~col ~m ~n] computes the rotation such that
    left-multiplying [u] by T_{m,n}(θ,φ) zeroes [u(m, col)] against
    [u(n, col)], and applies the update in place (only rows [m] and
    [n] change). Used by the two-sided Clements elimination.
    [?first] restricts the row update to columns [first ..] — sound
    only when both rows are zero to the left. *)

val solve_left : Mat.t -> col:int -> m:int -> n:int -> rotation
(** The rotation {!eliminate_left} would apply, without mutating
    anything — the derivation step of the fused elimination engines. *)

val is_identity : rotation -> bool
(** Whether the rotation is the exact identity quadruple (s = 0,
    e^{iφ} = 1) — the nothing-to-eliminate case. {!eliminate} and
    {!eliminate_left} skip both the kernel pass and the zero pin for
    such rotations; the fused engines must replicate that skip to stay
    plan-identical. *)

(** {1 Packed-sequence pushers}

    Append a rotation to a {!Mat.Rotseq.t} in the kernel form one of
    the fused sweep bodies consumes — the dagger-right form negates
    the phase exactly as {!apply_t_dagger_right} does, so a
    [Mat.sweep_cols_pre] over the packed sequence reproduces the
    per-rotation elimination kernels rotation for rotation. *)

val seq_push_t_dagger_right : Mat.Rotseq.t -> rotation -> nrows:int -> unit
(** For [Mat.sweep_cols_pre]: [u ← u·T†] restricted to the first
    [nrows] rows (the {!eliminate} [?nrows] restriction). *)

val seq_push_t_right : Mat.Rotseq.t -> rotation -> nrows:int -> unit
(** For [Mat.sweep_cols_post]: [u ← u·T] on rows [\[0, nrows)] — the
    replay direction. *)

val seq_push_t_left : Mat.Rotseq.t -> rotation -> first:int -> unit
(** For [Mat.sweep_rows_pre]: [u ← T·u] on columns [first ..] (the
    {!eliminate_left} [?first] restriction). *)
