(** The two-dimensional rotations T_{m,n}(θ, φ) of the interferometer
    decomposition (paper Eq. 1) and the elimination step built on them.

    [T m n theta phi] differs from the identity only at rows/columns
    [m], [n]:
    {v
       T[m][m] = e^{iφ} cos θ     T[m][n] = -sin θ
       T[n][m] = e^{iφ} sin θ     T[n][n] =  cos θ
    v}

    The elimination right-multiplies the working matrix by T†, zeroing
    entry [(row, m)] against entry [(row, n)] (paper Eq. 2), so a full
    decomposition reaches [U · T₁† · T₂† ⋯ = Λ], i.e.
    [U = Λ · (⋯ T₂ · T₁)]. *)

type rotation = {
  m : int;  (** Column/qumode whose entry gets zeroed. *)
  n : int;  (** Column/qumode that absorbs the amplitude. *)
  theta : float;  (** Beamsplitter rotation angle, in [\[0, π/2\]]. *)
  phi : float;  (** Phase-shifter angle. *)
}

val matrix : int -> rotation -> Mat.t
(** [matrix dim r] is the dense N×N matrix of T_{m,n}(θ, φ). *)

val eliminate : Mat.t -> row:int -> m:int -> n:int -> rotation
(** [eliminate u ~row ~m ~n] computes θ, φ such that right-multiplying
    [u] by T† zeroes [u(row, m)], and applies the update to [u] in
    place (only columns [m] and [n] change). After the call,
    |u(row, n)|² has absorbed the old |u(row, m)|². *)

val apply_t_dagger_right : Mat.t -> rotation -> unit
(** In-place [u ← u · T†]. *)

val apply_t_right : Mat.t -> rotation -> unit
(** In-place [u ← u · T]; the inverse of {!apply_t_dagger_right}. *)

val angle_for : Mat.t -> row:int -> m:int -> n:int -> float
(** The θ that {!eliminate} would produce, without mutating anything. *)

val apply_t_left : Mat.t -> rotation -> unit
(** In-place [u ← T · u]. *)

val apply_t_dagger_left : Mat.t -> rotation -> unit
(** In-place [u ← T† · u]; the inverse of {!apply_t_left}. *)

val eliminate_left : Mat.t -> col:int -> m:int -> n:int -> rotation
(** [eliminate_left u ~col ~m ~n] computes θ, φ such that
    left-multiplying [u] by T_{m,n}(θ,φ) zeroes [u(m, col)] against
    [u(n, col)], and applies the update in place (only rows [m] and
    [n] change). Used by the two-sided Clements elimination. *)
