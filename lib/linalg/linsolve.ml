open Cx

(* In-place LU with partial pivoting on a copy. Returns (lu, perm_rows,
   sign) where lu packs L (unit diagonal, below) and U (diagonal and
   above). *)
let factor a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Linsolve: square matrices only";
  let lu = Mat.copy a in
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1 in
  for k = 0 to n - 1 do
    (* Partial pivot: largest modulus in column k at or below row k. *)
    let best = ref k and best_mag = ref (Cx.abs (Mat.get lu k k)) in
    for i = k + 1 to n - 1 do
      let mag = Cx.abs (Mat.get lu i k) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best_mag < 1e-300 then invalid_arg "Linsolve: singular matrix";
    if !best <> k then begin
      Mat.swap_rows lu k !best;
      let tmp = piv.(k) in
      piv.(k) <- piv.(!best);
      piv.(!best) <- tmp;
      sign := - !sign
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /: pivot in
      Mat.set lu i k factor;
      (* Trailing-block update as one allocation-free row kernel. *)
      Mat.row_axpy lu ~src:k ~dst:i ~from:(k + 1) (Cx.neg factor)
    done
  done;
  (lu, piv, !sign)

let det_of_factor (lu, _, sign) =
  let n = Mat.rows lu in
  let d = ref (Cx.re (float_of_int sign)) in
  for i = 0 to n - 1 do
    d := !d *: Mat.get lu i i
  done;
  !d

let det a = det_of_factor (factor a)

let solve_factored (lu, piv, _) b =
  let n = Mat.rows lu in
  if Array.length b <> n then invalid_arg "Linsolve.solve: size mismatch";
  let y = Array.init n (fun i -> b.(piv.(i))) in
  (* Forward substitution with unit-diagonal L. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      y.(i) <- y.(i) -: (Mat.get lu i j *: y.(j))
    done
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      y.(i) <- y.(i) -: (Mat.get lu i j *: y.(j))
    done;
    y.(i) <- y.(i) /: Mat.get lu i i
  done;
  y

let solve a b = solve_factored (factor a) b

let inverse_det a =
  let n = Mat.rows a in
  let f = factor a in
  let inv = Mat.create n n in
  for col = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = col then Cx.one else Cx.zero) in
    let x = solve_factored f e in
    for i = 0 to n - 1 do
      Mat.set inv i col x.(i)
    done
  done;
  (inv, det_of_factor f)

let inverse a = fst (inverse_det a)
