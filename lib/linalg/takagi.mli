(** Takagi (Autonne) decomposition of real symmetric matrices.

    [A = U · diag(λ) · Uᵀ] with [U] unitary and [λ ≥ 0]. This is how a
    graph's adjacency matrix is encoded into a GBS program: the singular
    values set the squeezing parameters and [U] becomes the linear
    interferometer (Bromley et al. 2020; paper §II-C). *)

val decompose : float array array -> float array * Mat.t
(** [decompose a] = (λ, u) with [a = u · diag(λ) · uᵀ], λ sorted
    decreasing. Only real symmetric input is supported — sufficient for
    adjacency matrices. Negative eigenvalues are absorbed as a factor
    [i] in the corresponding column of [u]. *)

val reconstruct : float array -> Mat.t -> Mat.t
(** [reconstruct lambda u] = [u · diag(λ) · uᵀ]. *)
