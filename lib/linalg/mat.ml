(* Storage is two contiguous row-major float planes (real and imaginary
   parts), one Bigarray.Array1 (float64, c_layout) each, so the kernels
   below run without boxing Complex.t values, without per-row pointer
   chasing, and without bounds checks in the inner loops (indices are
   validated once at entry). Off-heap Bigarray storage — rather than
   OCaml float arrays — is what lets the C stubs hold stable data
   pointers with no GC interaction: large kernels can drop the runtime
   lock (see [blocking_threshold]) so pool domains overlap compute, and
   the binary artifact codec can blit planes straight out of an mmapped
   cache object. The flat representation is the load-bearing secret of
   this module: no other file may assume it. *)

module A1 = Bigarray.Array1

type plane = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

type t = { re : plane; im : plane; nrows : int; ncols : int }

(* Matrices allocated since program start — the denominator of the
   allocation gauges (compile.mats_allocated, map.polish_mats_per_trial).
   Every constructor funnels through [create]. Atomic, because pool
   workers (bose_par) allocate concurrently. [offheap_bytes] counts the
   cumulative plane bytes handed to malloc by Bigarray — the off-heap
   twin of compile.bytes_allocated's GC-words gauge. *)
let alloc_count = Atomic.make 0
let offheap_bytes = Atomic.make 0

let allocations () = Atomic.get alloc_count
let bytes_offheap () = Atomic.get offheap_bytes

let make_plane len =
  (* Bigarray.create never zeroes its malloc'd block; every fresh plane
     must be filled before an entry is read. *)
  let p = A1.create Bigarray.float64 Bigarray.c_layout len in
  A1.fill p 0.;
  p

let create nrows ncols =
  if nrows < 0 || ncols < 0 then invalid_arg "Mat.create: negative dimension";
  Atomic.incr alloc_count;
  let len = max (nrows * ncols) 1 in
  ignore (Atomic.fetch_and_add offheap_bytes (16 * len));
  { re = make_plane len; im = make_plane len; nrows; ncols }

let dims m = (m.nrows, m.ncols)
let rows m = m.nrows
let cols m = m.ncols

let[@inline] idx m i j = (i * m.ncols) + j

let check_index m i j name =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then invalid_arg (name ^ ": index out of bounds")

let get m i j : Cx.t =
  check_index m i j "Mat.get";
  let k = idx m i j in
  { re = A1.unsafe_get m.re k; im = A1.unsafe_get m.im k }

let set m i j (v : Cx.t) =
  check_index m i j "Mat.set";
  let k = idx m i j in
  A1.unsafe_set m.re k v.Complex.re;
  A1.unsafe_set m.im k v.Complex.im

let fill_zero m =
  A1.fill m.re 0.;
  A1.fill m.im 0.

let set_identity m =
  fill_zero m;
  for i = 0 to min m.nrows m.ncols - 1 do
    A1.unsafe_set m.re (idx m i i) 1.
  done

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    A1.unsafe_set m.re (idx m i i) 1.
  done;
  m

let init nrows ncols f =
  let m = create nrows ncols in
  for i = 0 to nrows - 1 do
    let base = i * ncols in
    for j = 0 to ncols - 1 do
      let (v : Cx.t) = f i j in
      A1.unsafe_set m.re (base + j) v.Complex.re;
      A1.unsafe_set m.im (base + j) v.Complex.im
    done
  done;
  m

let of_arrays a =
  let nrows = Array.length a in
  if nrows = 0 then invalid_arg "Mat.of_arrays: empty";
  let ncols = Array.length a.(0) in
  if ncols = 0 then invalid_arg "Mat.of_arrays: zero columns";
  Array.iter
    (fun row -> if Array.length row <> ncols then invalid_arg "Mat.of_arrays: ragged rows")
    a;
  init nrows ncols (fun i j -> a.(i).(j))

let to_arrays m = Array.init m.nrows (fun i -> Array.init m.ncols (fun j -> get m i j))

let of_real a = of_arrays (Array.map (Array.map Cx.re) a)

let copy m =
  let r = create m.nrows m.ncols in
  A1.blit m.re r.re;
  A1.blit m.im r.im;
  r

let blit src dst =
  if dims src <> dims dst then invalid_arg "Mat.blit: dimension mismatch";
  A1.blit src.re dst.re;
  A1.blit src.im dst.im

let transpose m = init m.ncols m.nrows (fun i j -> get m j i)
let conj m = init m.nrows m.ncols (fun i j -> Cx.conj (get m i j))
let adjoint m = init m.ncols m.nrows (fun i j -> Cx.conj (get m j i))

let zip_with op a b =
  if dims a <> dims b then invalid_arg "Mat: dimension mismatch";
  init a.nrows a.ncols (fun i j -> op (get a i j) (get b i j))

let add = zip_with Cx.( +: )
let sub = zip_with Cx.( -: )

(* ------------------------------------------------------------------ *)
(* In-place scalar kernels.                                           *)

let scale_inplace (s : Cx.t) m =
  let sre = s.Complex.re and sim = s.Complex.im in
  let len = m.nrows * m.ncols in
  for k = 0 to len - 1 do
    let xre = A1.unsafe_get m.re k and xim = A1.unsafe_get m.im k in
    A1.unsafe_set m.re k ((xre *. sre) -. (xim *. sim));
    A1.unsafe_set m.im k ((xre *. sim) +. (xim *. sre))
  done

let scale s m =
  let r = copy m in
  scale_inplace s r;
  r

(* y <- y + a.x *)
let axpy (a : Cx.t) x y =
  if dims x <> dims y then invalid_arg "Mat.axpy: dimension mismatch";
  let are = a.Complex.re and aim = a.Complex.im in
  let len = x.nrows * x.ncols in
  for k = 0 to len - 1 do
    let xre = A1.unsafe_get x.re k and xim = A1.unsafe_get x.im k in
    A1.unsafe_set y.re k
      (A1.unsafe_get y.re k +. ((xre *. are) -. (xim *. aim)));
    A1.unsafe_set y.im k
      (A1.unsafe_get y.im k +. ((xre *. aim) +. (xim *. are)))
  done

let scale_row m i (s : Cx.t) =
  if i < 0 || i >= m.nrows then invalid_arg "Mat.scale_row: row out of bounds";
  let sre = s.Complex.re and sim = s.Complex.im in
  let base = i * m.ncols in
  for j = 0 to m.ncols - 1 do
    let k = base + j in
    let xre = A1.unsafe_get m.re k and xim = A1.unsafe_get m.im k in
    A1.unsafe_set m.re k ((xre *. sre) -. (xim *. sim));
    A1.unsafe_set m.im k ((xre *. sim) +. (xim *. sre))
  done

let scale_col m j (s : Cx.t) =
  if j < 0 || j >= m.ncols then invalid_arg "Mat.scale_col: column out of bounds";
  let sre = s.Complex.re and sim = s.Complex.im in
  for i = 0 to m.nrows - 1 do
    let k = (i * m.ncols) + j in
    let xre = A1.unsafe_get m.re k and xim = A1.unsafe_get m.im k in
    A1.unsafe_set m.re k ((xre *. sre) -. (xim *. sim));
    A1.unsafe_set m.im k ((xre *. sim) +. (xim *. sre))
  done

(* row dst <- row dst + a.row src, on columns [from..ncols-1] — the LU
   elimination kernel. *)
let row_axpy m ~src ~dst ?(from = 0) (a : Cx.t) =
  if src < 0 || src >= m.nrows || dst < 0 || dst >= m.nrows then
    invalid_arg "Mat.row_axpy: row out of bounds";
  if from < 0 || from > m.ncols then invalid_arg "Mat.row_axpy: bad column offset";
  (* Debug-only (release compiles with -noassert): src = dst is the
     row-level aliasing hazard — the update would read its own partial
     writes in a blocked implementation. *)
  assert (src <> dst);
  let are = a.Complex.re and aim = a.Complex.im in
  let sbase = src * m.ncols and dbase = dst * m.ncols in
  for j = from to m.ncols - 1 do
    let xre = A1.unsafe_get m.re (sbase + j) and xim = A1.unsafe_get m.im (sbase + j) in
    A1.unsafe_set m.re (dbase + j)
      (A1.unsafe_get m.re (dbase + j) +. ((xre *. are) -. (xim *. aim)));
    A1.unsafe_set m.im (dbase + j)
      (A1.unsafe_get m.im (dbase + j) +. ((xre *. aim) +. (xim *. are)))
  done

(* ------------------------------------------------------------------ *)
(* gemm family. All of them validate shapes, reject aliasing between   *)
(* [dst] and the operands, and run over the flat planes unchecked.     *)

let check_gemm_dst name ~dst a b rows cols =
  if dst.nrows <> rows || dst.ncols <> cols then invalid_arg (name ^ ": dst shape mismatch");
  if dst.re == a.re || dst.re == b.re then invalid_arg (name ^ ": dst aliases an input")

(* dst <- a.b (or dst += a.b with [acc]), blocked over k so the active
   rows of b stay cache-resident while a row of dst accumulates. *)
let gemm ?(acc = false) ~dst a b =
  if a.ncols <> b.nrows then invalid_arg "Mat.gemm: dimension mismatch";
  check_gemm_dst "Mat.gemm" ~dst a b a.nrows b.ncols;
  if not acc then fill_zero dst;
  let m = a.nrows and kdim = a.ncols and n = b.ncols in
  let bs = 64 in
  let k0 = ref 0 in
  while !k0 < kdim do
    let khi = min kdim (!k0 + bs) in
    for i = 0 to m - 1 do
      let abase = i * kdim and dbase = i * n in
      for k = !k0 to khi - 1 do
        let xre = A1.unsafe_get a.re (abase + k) and xim = A1.unsafe_get a.im (abase + k) in
        if xre <> 0. || xim <> 0. then begin
          let bbase = k * n in
          for j = 0 to n - 1 do
            let bre = A1.unsafe_get b.re (bbase + j) and bim = A1.unsafe_get b.im (bbase + j) in
            A1.unsafe_set dst.re (dbase + j)
              (A1.unsafe_get dst.re (dbase + j) +. ((xre *. bre) -. (xim *. bim)));
            A1.unsafe_set dst.im (dbase + j)
              (A1.unsafe_get dst.im (dbase + j) +. ((xre *. bim) +. (xim *. bre)))
          done
        end
      done
    done;
    k0 := khi
  done

(* dst <- a.b† : entry (i,j) is the dot of two contiguous rows. *)
let gemm_adjoint ?(acc = false) ~dst a b =
  if a.ncols <> b.ncols then invalid_arg "Mat.gemm_adjoint: dimension mismatch";
  check_gemm_dst "Mat.gemm_adjoint" ~dst a b a.nrows b.nrows;
  if not acc then fill_zero dst;
  let kdim = a.ncols in
  for i = 0 to a.nrows - 1 do
    let abase = i * kdim in
    for j = 0 to b.nrows - 1 do
      let bbase = j * kdim in
      let accre = ref 0. and accim = ref 0. in
      for k = 0 to kdim - 1 do
        let xre = A1.unsafe_get a.re (abase + k) and xim = A1.unsafe_get a.im (abase + k) in
        let yre = A1.unsafe_get b.re (bbase + k) and yim = A1.unsafe_get b.im (bbase + k) in
        (* x . conj y *)
        accre := !accre +. ((xre *. yre) +. (xim *. yim));
        accim := !accim +. ((xim *. yre) -. (xre *. yim))
      done;
      let d = (i * dst.ncols) + j in
      A1.unsafe_set dst.re d (A1.unsafe_get dst.re d +. !accre);
      A1.unsafe_set dst.im d (A1.unsafe_get dst.im d +. !accim)
    done
  done

(* dst <- a†.b : loop k outermost so row k of b streams through while
   the conjugated column of a is a scalar broadcast. *)
let gemm_adjoint_left ?(acc = false) ~dst a b =
  if a.nrows <> b.nrows then invalid_arg "Mat.gemm_adjoint_left: dimension mismatch";
  check_gemm_dst "Mat.gemm_adjoint_left" ~dst a b a.ncols b.ncols;
  if not acc then fill_zero dst;
  let n = b.ncols in
  for k = 0 to a.nrows - 1 do
    let abase = k * a.ncols and bbase = k * n in
    for i = 0 to a.ncols - 1 do
      let xre = A1.unsafe_get a.re (abase + i) and xim = -.A1.unsafe_get a.im (abase + i) in
      if xre <> 0. || xim <> 0. then begin
        let dbase = i * n in
        for j = 0 to n - 1 do
          let bre = A1.unsafe_get b.re (bbase + j) and bim = A1.unsafe_get b.im (bbase + j) in
          A1.unsafe_set dst.re (dbase + j)
            (A1.unsafe_get dst.re (dbase + j) +. ((xre *. bre) -. (xim *. bim)));
          A1.unsafe_set dst.im (dbase + j)
            (A1.unsafe_get dst.im (dbase + j) +. ((xre *. bim) +. (xim *. bre)))
        done
      end
    done
  done

(* dst <- a.bT (plain transpose, no conjugation) — rows dotted with rows. *)
let gemm_transpose ?(acc = false) ~dst a b =
  if a.ncols <> b.ncols then invalid_arg "Mat.gemm_transpose: dimension mismatch";
  check_gemm_dst "Mat.gemm_transpose" ~dst a b a.nrows b.nrows;
  if not acc then fill_zero dst;
  let kdim = a.ncols in
  for i = 0 to a.nrows - 1 do
    let abase = i * kdim in
    for j = 0 to b.nrows - 1 do
      let bbase = j * kdim in
      let accre = ref 0. and accim = ref 0. in
      for k = 0 to kdim - 1 do
        let xre = A1.unsafe_get a.re (abase + k) and xim = A1.unsafe_get a.im (abase + k) in
        let yre = A1.unsafe_get b.re (bbase + k) and yim = A1.unsafe_get b.im (bbase + k) in
        accre := !accre +. ((xre *. yre) -. (xim *. yim));
        accim := !accim +. ((xre *. yim) +. (xim *. yre))
      done;
      let d = (i * dst.ncols) + j in
      A1.unsafe_set dst.re d (A1.unsafe_get dst.re d +. !accre);
      A1.unsafe_set dst.im d (A1.unsafe_get dst.im d +. !accim)
    done
  done

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Mat.mul: dimension mismatch";
  let r = create a.nrows b.ncols in
  gemm ~dst:r a b;
  r

let mul_vec a v =
  if a.ncols <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.nrows (fun i ->
      let base = i * a.ncols in
      let accre = ref 0. and accim = ref 0. in
      for j = 0 to a.ncols - 1 do
        let (x : Cx.t) = v.(j) in
        let are = A1.unsafe_get a.re (base + j) and aim = A1.unsafe_get a.im (base + j) in
        accre := !accre +. ((are *. x.Complex.re) -. (aim *. x.Complex.im));
        accim := !accim +. ((are *. x.Complex.im) +. (aim *. x.Complex.re))
      done;
      Cx.make !accre !accim)

let trace m =
  let n = min m.nrows m.ncols in
  let accre = ref 0. and accim = ref 0. in
  for i = 0 to n - 1 do
    accre := !accre +. A1.unsafe_get m.re (idx m i i);
    accim := !accim +. A1.unsafe_get m.im (idx m i i)
  done;
  Cx.make !accre !accim

(* tr(a.b) = sum_ik a(i,k).b(k,i) — no product matrix materialized. *)
let trace_mul a b =
  if a.ncols <> b.nrows || b.ncols <> a.nrows then
    invalid_arg "Mat.trace_mul: dimension mismatch";
  let accre = ref 0. and accim = ref 0. in
  for i = 0 to a.nrows - 1 do
    let abase = i * a.ncols in
    for k = 0 to a.ncols - 1 do
      let xre = A1.unsafe_get a.re (abase + k) and xim = A1.unsafe_get a.im (abase + k) in
      let l = (k * b.ncols) + i in
      let yre = A1.unsafe_get b.re l and yim = A1.unsafe_get b.im l in
      accre := !accre +. ((xre *. yre) -. (xim *. yim));
      accim := !accim +. ((xre *. yim) +. (xim *. yre))
    done
  done;
  Cx.make !accre !accim

let frobenius_norm m =
  let acc = ref 0. in
  let len = m.nrows * m.ncols in
  for k = 0 to len - 1 do
    let xre = A1.unsafe_get m.re k and xim = A1.unsafe_get m.im k in
    acc := !acc +. (xre *. xre) +. (xim *. xim)
  done;
  sqrt !acc

let max_abs_diff a b =
  if dims a <> dims b then invalid_arg "Mat.max_abs_diff: dimension mismatch";
  let acc = ref 0. in
  let len = a.nrows * a.ncols in
  for k = 0 to len - 1 do
    let dre = A1.unsafe_get a.re k -. A1.unsafe_get b.re k
    and dim = A1.unsafe_get a.im k -. A1.unsafe_get b.im k in
    acc := Float.max !acc (sqrt ((dre *. dre) +. (dim *. dim)))
  done;
  !acc

let equal ?(tol = 1e-9) a b = dims a = dims b && max_abs_diff a b <= tol

let is_unitary ?(tol = 1e-8) m =
  m.nrows = m.ncols
  && begin
    let p = create m.nrows m.nrows in
    gemm_adjoint_left ~dst:p m m;
    let id = identity m.nrows in
    equal ~tol p id
  end

let row_norm2 m i =
  if i < 0 || i >= m.nrows then invalid_arg "Mat.row_norm2: row out of bounds";
  let base = i * m.ncols in
  let acc = ref 0. in
  for j = 0 to m.ncols - 1 do
    let xre = A1.unsafe_get m.re (base + j) and xim = A1.unsafe_get m.im (base + j) in
    acc := !acc +. (xre *. xre) +. (xim *. xim)
  done;
  !acc

let col_norm2 m j =
  if j < 0 || j >= m.ncols then invalid_arg "Mat.col_norm2: column out of bounds";
  let acc = ref 0. in
  for i = 0 to m.nrows - 1 do
    let k = (i * m.ncols) + j in
    let xre = A1.unsafe_get m.re k and xim = A1.unsafe_get m.im k in
    acc := !acc +. (xre *. xre) +. (xim *. xim)
  done;
  !acc

let swap_rows m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.nrows then
    invalid_arg "Mat.swap_rows: row out of bounds";
  if i <> j then begin
    let ibase = i * m.ncols and jbase = j * m.ncols in
    for k = 0 to m.ncols - 1 do
      let tre = A1.unsafe_get m.re (ibase + k) and tim = A1.unsafe_get m.im (ibase + k) in
      A1.unsafe_set m.re (ibase + k) (A1.unsafe_get m.re (jbase + k));
      A1.unsafe_set m.im (ibase + k) (A1.unsafe_get m.im (jbase + k));
      A1.unsafe_set m.re (jbase + k) tre;
      A1.unsafe_set m.im (jbase + k) tim
    done
  end

let swap_cols m a b =
  if a < 0 || a >= m.ncols || b < 0 || b >= m.ncols then
    invalid_arg "Mat.swap_cols: column out of bounds";
  if a <> b then
    for i = 0 to m.nrows - 1 do
      let ka = (i * m.ncols) + a and kb = (i * m.ncols) + b in
      let tre = A1.unsafe_get m.re ka and tim = A1.unsafe_get m.im ka in
      A1.unsafe_set m.re ka (A1.unsafe_get m.re kb);
      A1.unsafe_set m.im ka (A1.unsafe_get m.im kb);
      A1.unsafe_set m.re kb tre;
      A1.unsafe_set m.im kb tim
    done

(* ------------------------------------------------------------------ *)
(* In-place permutations (cycle-following; one scratch row / scalar).  *)

let check_perm p n name =
  if Array.length p <> n then invalid_arg (name ^ ": size mismatch");
  let seen = Array.make n false in
  Array.iter
    (fun x ->
       if x < 0 || x >= n || seen.(x) then invalid_arg (name ^ ": not a permutation");
       seen.(x) <- true)
    p

(* Copy row helpers between a plane and an OCaml scratch row — the
   cycle-following permutation below carries one row through plain
   float arrays (cheap, GC-tracked, never escapes the call). *)
let row_to_scratch (p : plane) base (dst : float array) nc =
  for k = 0 to nc - 1 do
    Array.unsafe_set dst k (A1.unsafe_get p (base + k))
  done

let row_from_scratch (src : float array) (p : plane) base nc =
  for k = 0 to nc - 1 do
    A1.unsafe_set p (base + k) (Array.unsafe_get src k)
  done

(* Row i of the result is row p(i) of nothing — rather: the old row i
   ends up at row p(i), matching [Perm.permute_rows]. *)
let permute_rows_inplace p m =
  check_perm p m.nrows "Mat.permute_rows_inplace";
  let nc = m.ncols in
  let tre = Array.make (max nc 1) 0. and tim = Array.make (max nc 1) 0. in
  let visited = Array.make m.nrows false in
  for s = 0 to m.nrows - 1 do
    if (not visited.(s)) && p.(s) <> s then begin
      (* Carry old row s around its cycle, swapping through the buffer. *)
      row_to_scratch m.re (s * nc) tre nc;
      row_to_scratch m.im (s * nc) tim nc;
      visited.(s) <- true;
      let j = ref p.(s) in
      while !j <> s do
        (* Buffer holds the old row destined for row !j. *)
        for k = 0 to nc - 1 do
          let base = (!j * nc) + k in
          let rre = A1.unsafe_get m.re base and rim = A1.unsafe_get m.im base in
          A1.unsafe_set m.re base (Array.unsafe_get tre k);
          A1.unsafe_set m.im base (Array.unsafe_get tim k);
          Array.unsafe_set tre k rre;
          Array.unsafe_set tim k rim
        done;
        visited.(!j) <- true;
        j := p.(!j)
      done;
      row_from_scratch tre m.re (s * nc) nc;
      row_from_scratch tim m.im (s * nc) nc
    end
  done

(* Old column j ends up at column p(j), matching [Perm.permute_cols]. *)
let permute_cols_inplace p m =
  check_perm p m.ncols "Mat.permute_cols_inplace";
  let nc = m.ncols in
  let visited = Array.make nc false in
  for r = 0 to m.nrows - 1 do
    Array.fill visited 0 nc false;
    let base = r * nc in
    for s = 0 to nc - 1 do
      if (not visited.(s)) && p.(s) <> s then begin
        let tre = ref (A1.unsafe_get m.re (base + s))
        and tim = ref (A1.unsafe_get m.im (base + s)) in
        visited.(s) <- true;
        let j = ref p.(s) in
        while !j <> s do
          let rre = A1.unsafe_get m.re (base + !j) and rim = A1.unsafe_get m.im (base + !j) in
          A1.unsafe_set m.re (base + !j) !tre;
          A1.unsafe_set m.im (base + !j) !tim;
          tre := rre;
          tim := rim;
          visited.(!j) <- true;
          j := p.(!j)
        done;
        A1.unsafe_set m.re (base + s) !tre;
        A1.unsafe_set m.im (base + s) !tim
      end
    done
  done

let map f m = init m.nrows m.ncols (fun i j -> f (get m i j))

(* tr(u_app.u†) = sum_{ij} u_app(i,j).conj(u(i,j)), an O(N²) elementwise sum. *)
let unitary_fidelity u_app u =
  if dims u_app <> dims u || u.nrows <> u.ncols then
    invalid_arg "Mat.unitary_fidelity: need equal square matrices";
  let tre = ref 0. and tim = ref 0. in
  let len = u.nrows * u.ncols in
  for k = 0 to len - 1 do
    let are = A1.unsafe_get u_app.re k and aim = A1.unsafe_get u_app.im k in
    let bre = A1.unsafe_get u.re k and bim = A1.unsafe_get u.im k in
    tre := !tre +. ((are *. bre) +. (aim *. bim));
    tim := !tim +. ((aim *. bre) -. (are *. bim))
  done;
  sqrt ((!tre *. !tre) +. (!tim *. !tim)) /. float_of_int u.nrows

let check_rot m n name =
  if m < 0 || n < 0 || m = n then invalid_arg (name ^ ": bad index pair")

(* Debug-only kernel guard, compiled out by -noassert (the release
   profile): a rotation quadruple fed to the in-place kernels must be
   finite and normalized — c²+s² = 1 and |e^{iφ}| = 1 within 1e-6. A
   denormalized or NaN quadruple makes the C stubs silently corrupt the
   matrix; lint pass BH0406 catches this statically in plans, the
   assertion catches it dynamically at every kernel entry in dev
   builds. O(1) per call, nothing per element. *)
let rot_params_sane c s ere eim =
  Float.is_finite c && Float.is_finite s
  && Float.abs ((c *. c) +. (s *. s) -. 1.) <= 1e-6
  && Float.abs ((ere *. ere) +. (eim *. eim) -. 1.) <= 1e-6

(* The [_cs] variants take the rotation as precomputed cosines/sines:
   [c] = cos θ, [s] = sin θ, ([ere], [eim]) = e^{iφ}. The elimination
   engines derive these algebraically from the matrix entries (no trig
   in the hot loop); the angle-based entry points below wrap them. *)

(* The rotation bodies live in mat_stubs.c: the loops are pure
   flop-bound float-plane arithmetic, and FMA + vectorized C roughly
   halves their cost vs. ocamlopt's scalar output. [rot_pre] applies
   e^{iφ} to the m plane before the real rotation, [rot_post] after;
   together with a φ sign flip they cover all four kernels. Arguments:
   re im count offset_m offset_n stride c s ere eim.

   Each body has two lock disciplines. The [_fast] stubs are
   [@@noalloc] and never touch the runtime — right for the sub-µs
   kernels that dominate small-N compiles. Above [blocking_threshold]
   elements, dispatch switches to the [_blk] stubs, which release the
   OCaml runtime lock for the duration of the loop: Bigarray planes
   are off-heap, so the GC is free to run (and pool domains free to
   collect minor heaps) while a long strided rotation streams memory.
   The threshold matches the paper's N≥128 tier, where a column
   rotation walks ≥128 cache lines and the release/acquire pair
   (~100ns) vanishes in the kernel time. *)
external rot_pre_fast :
  plane ->
  plane ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  unit = "bose_rot_pre_byte" "bose_rot_pre_nat"
[@@noalloc]

external rot_post_fast :
  plane ->
  plane ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  unit = "bose_rot_post_byte" "bose_rot_post_nat"
[@@noalloc]

(* The blocking stubs release/reacquire the runtime lock, so they must
   NOT be [@@noalloc] — the reacquire may run pending actions. *)
external rot_pre_blk :
  plane ->
  plane ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  unit = "bose_rot_pre_blk_byte" "bose_rot_pre_blk_nat"

external rot_post_blk :
  plane ->
  plane ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  unit = "bose_rot_post_blk_byte" "bose_rot_post_blk_nat"

let blocking_threshold = 128

let lock_release_count = Atomic.make 0
let lock_releases () = Atomic.get lock_release_count

let rot_pre re im count km kn stride c s ere eim =
  if count >= blocking_threshold then begin
    Atomic.incr lock_release_count;
    rot_pre_blk re im count km kn stride c s ere eim
  end
  else rot_pre_fast re im count km kn stride c s ere eim

let rot_post re im count km kn stride c s ere eim =
  if count >= blocking_threshold then begin
    Atomic.incr lock_release_count;
    rot_post_blk re im count km kn stride c s ere eim
  end
  else rot_post_fast re im count km kn stride c s ere eim

(* u <- u.T†: for each row r,
   u(r,m)' = u(r,m).e^{-i phi} cos theta − u(r,n).sin theta
   u(r,n)' = u(r,m).e^{-i phi} sin theta + u(r,n).cos theta
   [?nrows] restricts the update to the first [nrows] rows — for
   callers (Clements sweeps) that know both columns are zero below. *)
let rot_cols_t_dagger_cs ?nrows u ~m ~n ~c ~s ~ere ~eim =
  check_rot m n "Mat.rot_cols_t_dagger";
  if m >= u.ncols || n >= u.ncols then invalid_arg "Mat.rot_cols_t_dagger: column out of bounds";
  assert (rot_params_sane c s ere eim);
  let count =
    match nrows with
    | None -> u.nrows
    | Some r ->
      if r < 0 || r > u.nrows then invalid_arg "Mat.rot_cols_t_dagger: bad nrows";
      r
  in
  rot_pre u.re u.im count m n u.ncols c s ere (-.eim)

(* u <- u.T: for each row r,
   u(r,m)' = (u(r,m).cos theta + u(r,n).sin theta).e^{i phi}
   u(r,n)' = −u(r,m).sin theta + u(r,n).cos theta *)
let rot_cols_t_cs u ~m ~n ~c ~s ~ere ~eim =
  check_rot m n "Mat.rot_cols_t";
  if m >= u.ncols || n >= u.ncols then invalid_arg "Mat.rot_cols_t: column out of bounds";
  assert (rot_params_sane c s ere eim);
  rot_post u.re u.im u.nrows m n u.ncols c s ere eim

(* u <- T.u: row m' = e^{i phi} cos theta.row m − sin theta.row n,
            row n' = e^{i phi} sin theta.row m + cos theta.row n.
   [?first] restricts the update to columns [first ..] — for callers
   (Clements sweeps) that know both rows are zero to the left. *)
let rot_rows_t_cs ?first u ~m ~n ~c ~s ~ere ~eim =
  check_rot m n "Mat.rot_rows_t";
  if m >= u.nrows || n >= u.nrows then invalid_arg "Mat.rot_rows_t: row out of bounds";
  let j0 =
    match first with
    | None -> 0
    | Some j ->
      if j < 0 || j > u.ncols then invalid_arg "Mat.rot_rows_t: bad first";
      j
  in
  assert (rot_params_sane c s ere eim);
  rot_pre u.re u.im (u.ncols - j0) ((m * u.ncols) + j0) ((n * u.ncols) + j0) 1 c s ere eim

(* u <- T†.u: row m' = e^{-i phi}(cos theta.row m + sin theta.row n),
             row n' = −sin theta.row m + cos theta.row n. *)
let rot_rows_t_dagger_cs u ~m ~n ~c ~s ~ere ~eim =
  check_rot m n "Mat.rot_rows_t_dagger";
  if m >= u.nrows || n >= u.nrows then invalid_arg "Mat.rot_rows_t_dagger: row out of bounds";
  assert (rot_params_sane c s ere eim);
  rot_post u.re u.im u.ncols (m * u.ncols) (n * u.ncols) 1 c s ere (-.eim)

let rot_cols_t_dagger u ~m ~n ~theta ~phi =
  rot_cols_t_dagger_cs u ~m ~n ~c:(cos theta) ~s:(sin theta) ~ere:(cos phi) ~eim:(sin phi)

let rot_cols_t u ~m ~n ~theta ~phi =
  rot_cols_t_cs u ~m ~n ~c:(cos theta) ~s:(sin theta) ~ere:(cos phi) ~eim:(sin phi)

let rot_rows_t u ~m ~n ~theta ~phi =
  rot_rows_t_cs u ~m ~n ~c:(cos theta) ~s:(sin theta) ~ere:(cos phi) ~eim:(sin phi)

let rot_rows_t_dagger u ~m ~n ~theta ~phi =
  rot_rows_t_dagger_cs u ~m ~n ~c:(cos theta) ~s:(sin theta) ~ere:(cos phi) ~eim:(sin phi)

(* ------------------------------------------------------------------ *)
(* Fused multi-rotation sweeps. A Rotseq packs rotations as 8 doubles
   each — m, n, c, s, ere, eim, bound, pad — in kernel form (any dagger
   sign flip is baked in at push time by the Givens-layer helpers), so
   the three C sweep bodies cover every caller. The column sweeps walk
   row-outer: each row receives the rotation subsequence in order, so
   the bits of a row never depend on how a caller partitions the row
   range across pool domains — the determinism contract of the
   parallel elimination engines (docs/ARCHITECTURE.md). *)

module Rotseq = struct
  type nonrec t = { mutable buf : plane; mutable len : int; mutable max_idx : int }

  let stride = 8

  let create ?(capacity = 64) () =
    if capacity < 1 then invalid_arg "Mat.Rotseq.create: bad capacity";
    (* A1.create, not make_plane: every slot is written before read. *)
    { buf = A1.create Bigarray.float64 Bigarray.c_layout (stride * capacity);
      len = 0;
      max_idx = -1 }

  let length t = t.len

  let clear t =
    t.len <- 0;
    t.max_idx <- -1

  let push t ~m ~n ~c ~s ~ere ~eim ~bound =
    if m < 0 || n < 0 || m = n then invalid_arg "Mat.Rotseq.push: bad index pair";
    assert (rot_params_sane c s ere eim);
    let base = stride * t.len in
    if base + stride > A1.dim t.buf then begin
      let bigger = A1.create Bigarray.float64 Bigarray.c_layout (2 * A1.dim t.buf) in
      A1.blit t.buf (A1.sub bigger 0 (A1.dim t.buf));
      t.buf <- bigger
    end;
    A1.unsafe_set t.buf (base + 0) (float_of_int m);
    A1.unsafe_set t.buf (base + 1) (float_of_int n);
    A1.unsafe_set t.buf (base + 2) c;
    A1.unsafe_set t.buf (base + 3) s;
    A1.unsafe_set t.buf (base + 4) ere;
    A1.unsafe_set t.buf (base + 5) eim;
    A1.unsafe_set t.buf (base + 6) (float_of_int bound);
    A1.unsafe_set t.buf (base + 7) 0.;
    t.len <- t.len + 1;
    if m > t.max_idx then t.max_idx <- m;
    if n > t.max_idx then t.max_idx <- n
end

(* The sweep stubs mirror the rot_* declaration pattern: a [@@noalloc]
   fast entry for small slices and a runtime-lock-releasing blocking
   entry that Mat dispatches to above [blocking_threshold] units of
   work (one unit = one rotation applied to one row/column — the same
   granularity the per-rotation kernels count in). *)
external sweep_cols_pre_fast :
  plane -> plane -> plane ->
  (int[@untagged]) -> (int[@untagged]) -> (int[@untagged]) ->
  (int[@untagged]) -> (int[@untagged]) ->
  unit = "bose_sweep_cols_pre_byte" "bose_sweep_cols_pre_nat"
[@@noalloc]

external sweep_cols_pre_blk :
  plane -> plane -> plane ->
  (int[@untagged]) -> (int[@untagged]) -> (int[@untagged]) ->
  (int[@untagged]) -> (int[@untagged]) ->
  unit = "bose_sweep_cols_pre_blk_byte" "bose_sweep_cols_pre_blk_nat"

external sweep_cols_post_fast :
  plane -> plane -> plane ->
  (int[@untagged]) -> (int[@untagged]) -> (int[@untagged]) ->
  (int[@untagged]) -> (int[@untagged]) ->
  unit = "bose_sweep_cols_post_byte" "bose_sweep_cols_post_nat"
[@@noalloc]

external sweep_cols_post_blk :
  plane -> plane -> plane ->
  (int[@untagged]) -> (int[@untagged]) -> (int[@untagged]) ->
  (int[@untagged]) -> (int[@untagged]) ->
  unit = "bose_sweep_cols_post_blk_byte" "bose_sweep_cols_post_blk_nat"

external sweep_rows_pre_fast :
  plane -> plane -> plane ->
  (int[@untagged]) -> (int[@untagged]) -> (int[@untagged]) ->
  (int[@untagged]) -> (int[@untagged]) ->
  unit = "bose_sweep_rows_pre_byte" "bose_sweep_rows_pre_nat"
[@@noalloc]

external sweep_rows_pre_blk :
  plane -> plane -> plane ->
  (int[@untagged]) -> (int[@untagged]) -> (int[@untagged]) ->
  (int[@untagged]) -> (int[@untagged]) ->
  unit = "bose_sweep_rows_pre_blk_byte" "bose_sweep_rows_pre_blk_nat"

let check_sweep name (seq : Rotseq.t) ~rot_lo ~rot_hi ~lo ~hi ~extent ~idx_extent =
  if rot_lo < 0 || rot_hi > seq.Rotseq.len || rot_lo > rot_hi then
    invalid_arg (name ^ ": bad rotation range");
  if lo < 0 || hi > extent || lo > hi then invalid_arg (name ^ ": bad slice range");
  if seq.Rotseq.max_idx >= idx_extent then invalid_arg (name ^ ": rotation index out of bounds")

let sweep_cols_pre u seq ~rot_lo ~rot_hi ~row_lo ~row_hi =
  check_sweep "Mat.sweep_cols_pre" seq ~rot_lo ~rot_hi ~lo:row_lo ~hi:row_hi
    ~extent:u.nrows ~idx_extent:u.ncols;
  let work = (row_hi - row_lo) * (rot_hi - rot_lo) in
  if work = 0 then ()
  else if work >= blocking_threshold then begin
    Atomic.incr lock_release_count;
    sweep_cols_pre_blk u.re u.im seq.Rotseq.buf u.ncols row_lo row_hi rot_lo rot_hi
  end
  else sweep_cols_pre_fast u.re u.im seq.Rotseq.buf u.ncols row_lo row_hi rot_lo rot_hi

let sweep_cols_post u seq ~rot_lo ~rot_hi ~row_lo ~row_hi =
  check_sweep "Mat.sweep_cols_post" seq ~rot_lo ~rot_hi ~lo:row_lo ~hi:row_hi
    ~extent:u.nrows ~idx_extent:u.ncols;
  let work = (row_hi - row_lo) * (rot_hi - rot_lo) in
  if work = 0 then ()
  else if work >= blocking_threshold then begin
    Atomic.incr lock_release_count;
    sweep_cols_post_blk u.re u.im seq.Rotseq.buf u.ncols row_lo row_hi rot_lo rot_hi
  end
  else sweep_cols_post_fast u.re u.im seq.Rotseq.buf u.ncols row_lo row_hi rot_lo rot_hi

let sweep_rows_pre u seq ~rot_lo ~rot_hi ~col_lo ~col_hi =
  check_sweep "Mat.sweep_rows_pre" seq ~rot_lo ~rot_hi ~lo:col_lo ~hi:col_hi
    ~extent:u.ncols ~idx_extent:u.nrows;
  let work = (col_hi - col_lo) * (rot_hi - rot_lo) in
  if work = 0 then ()
  else if work >= blocking_threshold then begin
    Atomic.incr lock_release_count;
    sweep_rows_pre_blk u.re u.im seq.Rotseq.buf u.ncols col_lo col_hi rot_lo rot_hi
  end
  else sweep_rows_pre_fast u.re u.im seq.Rotseq.buf u.ncols col_lo col_hi rot_lo rot_hi

(* ------------------------------------------------------------------ *)
(* Binary plane codec. The serialized form of a matrix's payload is
   the two planes, row-major, little-endian IEEE-754 doubles, re plane
   then im plane — [Plan]/[Unitary] wrap this in their headers and the
   FNV-1a trailer (docs/SERVING.md, object layout v2). Three access
   paths share the format: Buffer append on encode, string reads on
   the plain decode, and a per-plane memcpy out of an mmapped cache
   object on the zero-copy decode. *)

type bigbytes = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) A1.t

external ba_blit_to_plane : bigbytes -> int -> plane -> int -> int -> unit
  = "bose_ba_blit_to_plane"
[@@noalloc]

external ba_fnv1a64 : bigbytes -> int -> int -> int64 = "bose_ba_fnv1a64"

let plane_bytes m = 8 * m.nrows * m.ncols

let encode_planes buf m =
  let len = m.nrows * m.ncols in
  for k = 0 to len - 1 do
    Buffer.add_int64_le buf (Int64.bits_of_float (A1.unsafe_get m.re k))
  done;
  for k = 0 to len - 1 do
    Buffer.add_int64_le buf (Int64.bits_of_float (A1.unsafe_get m.im k))
  done

let decode_planes_string ~rows ~cols s ~pos =
  if rows < 0 || cols < 0 then invalid_arg "Mat.decode_planes_string: negative dimension";
  let len = rows * cols in
  if pos < 0 || pos + (16 * len) > String.length s then
    invalid_arg "Mat.decode_planes_string: range out of bounds";
  let m = create rows cols in
  for k = 0 to len - 1 do
    A1.unsafe_set m.re k (Int64.float_of_bits (String.get_int64_le s (pos + (8 * k))))
  done;
  let ibase = pos + (8 * len) in
  for k = 0 to len - 1 do
    A1.unsafe_set m.im k (Int64.float_of_bits (String.get_int64_le s (ibase + (8 * k))))
  done;
  m

let decode_planes_bigbytes ~rows ~cols ba ~pos =
  if rows < 0 || cols < 0 then invalid_arg "Mat.decode_planes_bigbytes: negative dimension";
  let len = rows * cols in
  if pos < 0 || pos + (16 * len) > A1.dim ba then
    invalid_arg "Mat.decode_planes_bigbytes: range out of bounds";
  let m = create rows cols in
  if Sys.big_endian then begin
    (* Portable fallback: assemble each little-endian double by hand.
       Only ever taken on big-endian hosts, where the memcpy below
       would reinterpret the bytes wrongly. *)
    let read_f64 off =
      let v = ref 0L in
      for b = 7 downto 0 do
        v := Int64.logor (Int64.shift_left !v 8)
               (Int64.of_int (Char.code (A1.unsafe_get ba (off + b))))
      done;
      Int64.float_of_bits !v
    in
    for k = 0 to len - 1 do
      A1.unsafe_set m.re k (read_f64 (pos + (8 * k)));
      A1.unsafe_set m.im k (read_f64 (pos + (8 * (len + k))))
    done
  end
  else begin
    ba_blit_to_plane ba pos m.re 0 len;
    ba_blit_to_plane ba (pos + (8 * len)) m.im 0 len
  end;
  m

let bigbytes_sub_string ba ~pos ~len =
  if pos < 0 || len < 0 || pos + len > A1.dim ba then
    invalid_arg "Mat.bigbytes_sub_string: range out of bounds";
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (A1.unsafe_get ba (pos + i))
  done;
  Bytes.unsafe_to_string b

let fnv1a64_bigbytes ba ~pos ~len =
  if pos < 0 || len < 0 || pos + len > A1.dim ba then
    invalid_arg "Mat.fnv1a64_bigbytes: range out of bounds";
  ba_fnv1a64 ba pos len

(* ------------------------------------------------------------------ *)
(* Views: submatrices as index sets, no storage copied.               *)

module View = struct
  type nonrec t = { base : t; row_idx : int array; col_idx : int array }

  let rows v = Array.length v.row_idx
  let cols v = Array.length v.col_idx

  let get v i j = get v.base v.row_idx.(i) v.col_idx.(j)
end

let view m ~rows ~cols =
  Array.iter
    (fun i -> if i < 0 || i >= m.nrows then invalid_arg "Mat.view: row index out of bounds")
    rows;
  Array.iter
    (fun j -> if j < 0 || j >= m.ncols then invalid_arg "Mat.view: column index out of bounds")
    cols;
  { View.base = m; row_idx = rows; col_idx = cols }

let view_full m =
  {
    View.base = m;
    row_idx = Array.init m.nrows (fun i -> i);
    col_idx = Array.init m.ncols (fun j -> j);
  }

let of_view v =
  init (View.rows v) (View.cols v) (fun i j -> View.get v i j)

(* Two views alias iff they read the same storage: same parent planes
   (physical equality — every constructor allocates a fresh Bigarray,
   so plane identity is buffer identity) and at least one shared row
   index and one shared column index. Index sets are small and may
   repeat entries, so membership goes through a per-dimension occupancy
   bitmap rather than sorting. *)
let index_sets_intersect n a b =
  let seen = Array.make (max n 1) false in
  Array.iter (fun i -> seen.(i) <- true) a;
  Array.exists (fun j -> seen.(j)) b

let views_overlap v1 v2 =
  let b1 = v1.View.base and b2 = v2.View.base in
  b1.re == b2.re
  && index_sets_intersect b1.nrows v1.View.row_idx v2.View.row_idx
  && index_sets_intersect b1.ncols v1.View.col_idx v2.View.col_idx

(* ------------------------------------------------------------------ *)
(* Workspaces: scratch matrices reused across calls, keyed by          *)
(* (slot, rows, cols). Contents of a scratch are unspecified; the      *)
(* caller overwrites. Holders must not retain a scratch past their own *)
(* return — distinct concurrent uses take distinct slots (see          *)
(* docs/ARCHITECTURE.md, workspace-threading convention).              *)

module Slot = struct
  let elimination = 0
  let replay = 1
end

type workspace = {
  tbl : (int * int * int, t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let workspace () = { tbl = Hashtbl.create 8; hits = 0; misses = 0 }

let scratch ?(slot = 0) ws nrows ncols =
  let key = (slot, nrows, ncols) in
  match Hashtbl.find_opt ws.tbl key with
  | Some m ->
    ws.hits <- ws.hits + 1;
    m
  | None ->
    ws.misses <- ws.misses + 1;
    let m = create nrows ncols in
    Hashtbl.add ws.tbl key m;
    m

let workspace_hits ws = ws.hits
let workspace_misses ws = ws.misses

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.nrows - 1 do
    Format.fprintf fmt "@[<h>";
    for j = 0 to m.ncols - 1 do
      if j > 0 then Format.fprintf fmt "  ";
      Cx.pp fmt (get m i j)
    done;
    Format.fprintf fmt "@]";
    if i < m.nrows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
