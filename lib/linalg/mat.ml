(* Storage is two row-major float planes (real and imaginary parts) so
   the rotation kernels and norms run without boxing Complex.t values. *)

type t = { re : float array array; im : float array array; nrows : int; ncols : int }

let create nrows ncols =
  {
    re = Array.make_matrix nrows ncols 0.;
    im = Array.make_matrix nrows ncols 0.;
    nrows;
    ncols;
  }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.(i).(i) <- 1.
  done;
  m

let dims m = (m.nrows, m.ncols)
let rows m = m.nrows
let cols m = m.ncols

let get m i j : Cx.t = { re = m.re.(i).(j); im = m.im.(i).(j) }

let set m i j (v : Cx.t) =
  m.re.(i).(j) <- v.Complex.re;
  m.im.(i).(j) <- v.Complex.im

let init nrows ncols f =
  let m = create nrows ncols in
  for i = 0 to nrows - 1 do
    for j = 0 to ncols - 1 do
      set m i j (f i j)
    done
  done;
  m

let of_arrays a =
  let nrows = Array.length a in
  if nrows = 0 then invalid_arg "Mat.of_arrays: empty";
  let ncols = Array.length a.(0) in
  Array.iter
    (fun row -> if Array.length row <> ncols then invalid_arg "Mat.of_arrays: ragged rows")
    a;
  init nrows ncols (fun i j -> a.(i).(j))

let to_arrays m = Array.init m.nrows (fun i -> Array.init m.ncols (fun j -> get m i j))

let of_real a = of_arrays (Array.map (Array.map Cx.re) a)

let copy m =
  { m with re = Array.map Array.copy m.re; im = Array.map Array.copy m.im }

let transpose m = init m.ncols m.nrows (fun i j -> get m j i)
let conj m = init m.nrows m.ncols (fun i j -> Cx.conj (get m i j))
let adjoint m = init m.ncols m.nrows (fun i j -> Cx.conj (get m j i))

let zip_with op a b =
  if dims a <> dims b then invalid_arg "Mat: dimension mismatch";
  init a.nrows a.ncols (fun i j -> op (get a i j) (get b i j))

let add = zip_with Cx.( +: )
let sub = zip_with Cx.( -: )
let scale s m = init m.nrows m.ncols (fun i j -> Cx.( *: ) s (get m i j))

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Mat.mul: dimension mismatch";
  let r = create a.nrows b.ncols in
  for i = 0 to a.nrows - 1 do
    let are = a.re.(i) and aim = a.im.(i) in
    let rre = r.re.(i) and rim = r.im.(i) in
    for k = 0 to a.ncols - 1 do
      let xre = are.(k) and xim = aim.(k) in
      if xre <> 0. || xim <> 0. then begin
        let bre = b.re.(k) and bim = b.im.(k) in
        for j = 0 to b.ncols - 1 do
          rre.(j) <- rre.(j) +. (xre *. bre.(j)) -. (xim *. bim.(j));
          rim.(j) <- rim.(j) +. (xre *. bim.(j)) +. (xim *. bre.(j))
        done
      end
    done
  done;
  r

let mul_vec a v =
  if a.ncols <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.nrows (fun i ->
      let accre = ref 0. and accim = ref 0. in
      for j = 0 to a.ncols - 1 do
        let (x : Cx.t) = v.(j) in
        accre := !accre +. (a.re.(i).(j) *. x.Complex.re) -. (a.im.(i).(j) *. x.Complex.im);
        accim := !accim +. (a.re.(i).(j) *. x.Complex.im) +. (a.im.(i).(j) *. x.Complex.re)
      done;
      Cx.make !accre !accim)

let trace m =
  let n = min m.nrows m.ncols in
  let accre = ref 0. and accim = ref 0. in
  for i = 0 to n - 1 do
    accre := !accre +. m.re.(i).(i);
    accim := !accim +. m.im.(i).(i)
  done;
  Cx.make !accre !accim

let frobenius_norm m =
  let acc = ref 0. in
  for i = 0 to m.nrows - 1 do
    for j = 0 to m.ncols - 1 do
      acc := !acc +. (m.re.(i).(j) *. m.re.(i).(j)) +. (m.im.(i).(j) *. m.im.(i).(j))
    done
  done;
  sqrt !acc

let max_abs_diff a b =
  if dims a <> dims b then invalid_arg "Mat.max_abs_diff: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to a.nrows - 1 do
    for j = 0 to a.ncols - 1 do
      let dre = a.re.(i).(j) -. b.re.(i).(j) and dim = a.im.(i).(j) -. b.im.(i).(j) in
      acc := Float.max !acc (sqrt ((dre *. dre) +. (dim *. dim)))
    done
  done;
  !acc

let equal ?(tol = 1e-9) a b = dims a = dims b && max_abs_diff a b <= tol

let is_unitary ?(tol = 1e-8) m =
  m.nrows = m.ncols && equal ~tol (mul (adjoint m) m) (identity m.nrows)

let row_norm2 m i =
  let acc = ref 0. in
  for j = 0 to m.ncols - 1 do
    acc := !acc +. (m.re.(i).(j) *. m.re.(i).(j)) +. (m.im.(i).(j) *. m.im.(i).(j))
  done;
  !acc

let col_norm2 m j =
  let acc = ref 0. in
  for i = 0 to m.nrows - 1 do
    acc := !acc +. (m.re.(i).(j) *. m.re.(i).(j)) +. (m.im.(i).(j) *. m.im.(i).(j))
  done;
  !acc

let swap_rows m i j =
  let tre = m.re.(i) and tim = m.im.(i) in
  m.re.(i) <- m.re.(j);
  m.im.(i) <- m.im.(j);
  m.re.(j) <- tre;
  m.im.(j) <- tim

let swap_cols m a b =
  for i = 0 to m.nrows - 1 do
    let tre = m.re.(i).(a) and tim = m.im.(i).(a) in
    m.re.(i).(a) <- m.re.(i).(b);
    m.im.(i).(a) <- m.im.(i).(b);
    m.re.(i).(b) <- tre;
    m.im.(i).(b) <- tim
  done

let map f m = init m.nrows m.ncols (fun i j -> f (get m i j))

(* tr(u_app·u†) = Σ_{ij} u_app(i,j)·conj(u(i,j)), an O(N²) elementwise sum. *)
let unitary_fidelity u_app u =
  if dims u_app <> dims u || u.nrows <> u.ncols then
    invalid_arg "Mat.unitary_fidelity: need equal square matrices";
  let tre = ref 0. and tim = ref 0. in
  for i = 0 to u.nrows - 1 do
    let are = u_app.re.(i) and aim = u_app.im.(i) in
    let bre = u.re.(i) and bim = u.im.(i) in
    for j = 0 to u.ncols - 1 do
      tre := !tre +. (are.(j) *. bre.(j)) +. (aim.(j) *. bim.(j));
      tim := !tim +. (aim.(j) *. bre.(j)) -. (are.(j) *. bim.(j))
    done
  done;
  sqrt ((!tre *. !tre) +. (!tim *. !tim)) /. float_of_int u.nrows

(* u ← u·T†: for each row r,
   u(r,m)' = u(r,m)·e^{-iφ}cosθ − u(r,n)·sinθ
   u(r,n)' = u(r,m)·e^{-iφ}sinθ + u(r,n)·cosθ *)
let rot_cols_t_dagger u ~m ~n ~theta ~phi =
  let c = cos theta and s = sin theta in
  let ere = cos phi and eim = -.sin phi in
  for r = 0 to u.nrows - 1 do
    let rre = u.re.(r) and rim = u.im.(r) in
    let mre = rre.(m) and mim = rim.(m) in
    let nre = rre.(n) and nim = rim.(n) in
    (* w = u(r,m)·e^{-iφ} *)
    let wre = (mre *. ere) -. (mim *. eim) in
    let wim = (mre *. eim) +. (mim *. ere) in
    rre.(m) <- (wre *. c) -. (nre *. s);
    rim.(m) <- (wim *. c) -. (nim *. s);
    rre.(n) <- (wre *. s) +. (nre *. c);
    rim.(n) <- (wim *. s) +. (nim *. c)
  done

(* u ← u·T: for each row r,
   u(r,m)' = (u(r,m)·cosθ + u(r,n)·sinθ)·e^{iφ}
   u(r,n)' = −u(r,m)·sinθ + u(r,n)·cosθ *)
let rot_cols_t u ~m ~n ~theta ~phi =
  let c = cos theta and s = sin theta in
  let ere = cos phi and eim = sin phi in
  for r = 0 to u.nrows - 1 do
    let rre = u.re.(r) and rim = u.im.(r) in
    let mre = rre.(m) and mim = rim.(m) in
    let nre = rre.(n) and nim = rim.(n) in
    let wre = (mre *. c) +. (nre *. s) in
    let wim = (mim *. c) +. (nim *. s) in
    rre.(m) <- (wre *. ere) -. (wim *. eim);
    rim.(m) <- (wre *. eim) +. (wim *. ere);
    rre.(n) <- (nre *. c) -. (mre *. s);
    rim.(n) <- (nim *. c) -. (mim *. s)
  done

(* u ← T·u: row m' = e^{iφ}cosθ·row m − sinθ·row n,
            row n' = e^{iφ}sinθ·row m + cosθ·row n. *)
let rot_rows_t u ~m ~n ~theta ~phi =
  let c = cos theta and s = sin theta in
  let ere = cos phi and eim = sin phi in
  let mre = u.re.(m) and mim = u.im.(m) in
  let nre = u.re.(n) and nim = u.im.(n) in
  for j = 0 to u.ncols - 1 do
    let amre = mre.(j) and amim = mim.(j) in
    let anre = nre.(j) and anim = nim.(j) in
    (* w = e^{iφ}·u(m,j) *)
    let wre = (amre *. ere) -. (amim *. eim) in
    let wim = (amre *. eim) +. (amim *. ere) in
    mre.(j) <- (wre *. c) -. (anre *. s);
    mim.(j) <- (wim *. c) -. (anim *. s);
    nre.(j) <- (wre *. s) +. (anre *. c);
    nim.(j) <- (wim *. s) +. (anim *. c)
  done

(* u ← T†·u: row m' = e^{-iφ}(cosθ·row m + sinθ·row n),
             row n' = −sinθ·row m + cosθ·row n. *)
let rot_rows_t_dagger u ~m ~n ~theta ~phi =
  let c = cos theta and s = sin theta in
  let ere = cos phi and eim = -.sin phi in
  let mre = u.re.(m) and mim = u.im.(m) in
  let nre = u.re.(n) and nim = u.im.(n) in
  for j = 0 to u.ncols - 1 do
    let amre = mre.(j) and amim = mim.(j) in
    let anre = nre.(j) and anim = nim.(j) in
    let wre = (amre *. c) +. (anre *. s) in
    let wim = (amim *. c) +. (anim *. s) in
    mre.(j) <- (wre *. ere) -. (wim *. eim);
    mim.(j) <- (wre *. eim) +. (wim *. ere);
    nre.(j) <- (anre *. c) -. (amre *. s);
    nim.(j) <- (anim *. c) -. (amim *. s)
  done

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.nrows - 1 do
    Format.fprintf fmt "@[<h>";
    for j = 0 to m.ncols - 1 do
      if j > 0 then Format.fprintf fmt "  ";
      Cx.pp fmt (get m i j)
    done;
    Format.fprintf fmt "@]";
    if i < m.nrows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
