open Cx

let decompose a =
  let eigenvalues, vectors = Eigen.jacobi a in
  let n = Array.length eigenvalues in
  (* Sort by decreasing |λ| so the dominant singular values come first. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (Float.abs eigenvalues.(j)) (Float.abs eigenvalues.(i))) order;
  let lambda = Array.map (fun k -> Float.abs eigenvalues.(k)) order in
  let u =
    Mat.init n n (fun i j ->
        let k = order.(j) in
        let factor = if eigenvalues.(k) < 0. then Cx.i else Cx.one in
        factor *: Cx.re vectors.(i).(k))
  in
  (lambda, u)

let reconstruct lambda u =
  let n = Array.length lambda in
  if Mat.rows u <> n || Mat.cols u <> n then invalid_arg "Takagi.reconstruct: size mismatch";
  Mat.init n n (fun i j ->
      let acc = ref Cx.zero in
      for k = 0 to n - 1 do
        acc := !acc +: (Mat.get u i k *: Cx.re lambda.(k) *: Mat.get u j k)
      done;
      !acc)
