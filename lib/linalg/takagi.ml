open Cx

let decompose a =
  let eigenvalues, vectors = Eigen.jacobi a in
  let n = Array.length eigenvalues in
  (* Sort by decreasing |λ| so the dominant singular values come first. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (Float.abs eigenvalues.(j)) (Float.abs eigenvalues.(i))) order;
  let lambda = Array.map (fun k -> Float.abs eigenvalues.(k)) order in
  let u =
    Mat.init n n (fun i j ->
        let k = order.(j) in
        let factor = if eigenvalues.(k) < 0. then Cx.i else Cx.one in
        factor *: Cx.re vectors.(i).(k))
  in
  (lambda, u)

(* U·diag(λ)·Uᵀ as a column scaling plus one blocked gemm_transpose. *)
let reconstruct lambda u =
  let n = Array.length lambda in
  if Mat.rows u <> n || Mat.cols u <> n then invalid_arg "Takagi.reconstruct: size mismatch";
  let scaled = Mat.copy u in
  Array.iteri (fun k l -> Mat.scale_col scaled k (Cx.re l)) lambda;
  let r = Mat.create n n in
  Mat.gemm_transpose ~dst:r scaled u;
  r
