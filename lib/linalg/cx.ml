type t = Complex.t

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let re x : t = { re = x; im = 0. }
let make re im : t = { re; im }
let polar = Complex.polar
let ( +: ) = Complex.add
let ( -: ) = Complex.sub
let ( *: ) = Complex.mul
let ( /: ) = Complex.div
let conj = Complex.conj
let neg = Complex.neg
let abs = Complex.norm
let abs2 = Complex.norm2
let arg = Complex.arg
let scale s (z : t) : t = { re = s *. z.re; im = s *. z.im }
let exp_i theta : t = { re = cos theta; im = sin theta }

let is_close ?(tol = 1e-9) (a : t) (b : t) =
  Float.abs (a.re -. b.re) <= tol && Float.abs (a.im -. b.im) <= tol

let pp fmt (z : t) = Format.fprintf fmt "%.6g%+.6gi" z.re z.im
let to_string z = Format.asprintf "%a" pp z
