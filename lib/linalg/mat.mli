(** Dense complex matrices.

    The high-level representation of a linear interferometer is an N×N
    unitary (paper §II-B); every Bosehedral pass manipulates values of
    this type. Matrices are mutable arrays-of-rows; functions are
    documented as pure unless their name says otherwise. *)

type t

val create : int -> int -> t
(** [create rows cols] zero matrix. *)

val identity : int -> t

val dims : t -> int * int
val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit

val init : int -> int -> (int -> int -> Cx.t) -> t
val of_arrays : Cx.t array array -> t
(** Copies its input. @raise Invalid_argument on ragged rows. *)

val to_arrays : t -> Cx.t array array
(** Fresh copy of the contents. *)

val of_real : float array array -> t

val copy : t -> t
val transpose : t -> t
val conj : t -> t
val adjoint : t -> t
(** Conjugate transpose. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : Cx.t -> t -> t
val mul : t -> t -> t
(** Matrix product. @raise Invalid_argument on dimension mismatch. *)

val mul_vec : t -> Cx.t array -> Cx.t array

val trace : t -> Cx.t
val frobenius_norm : t -> float
val max_abs_diff : t -> t -> float
(** Entrywise L∞ distance. *)

val equal : ?tol:float -> t -> t -> bool

val is_unitary : ?tol:float -> t -> bool
(** Whether [m† m = I] entrywise within [tol] (default 1e-8). *)

val row_norm2 : t -> int -> float
(** Sum of squared moduli of one row. *)

val col_norm2 : t -> int -> float

val swap_rows : t -> int -> int -> unit
(** In-place. *)

val swap_cols : t -> int -> int -> unit
(** In-place. *)

val map : (Cx.t -> Cx.t) -> t -> t

val unitary_fidelity : t -> t -> float
(** [unitary_fidelity u_app u] = |tr(u_app · u†)| / N — the paper's
    approximation-fidelity metric (§VII-A). Both must be N×N.
    Computed elementwise in O(N²). *)

val rot_cols_t_dagger : t -> m:int -> n:int -> theta:float -> phi:float -> unit
(** In-place [u ← u · T_{m,n}(θ,φ)†] — the elimination kernel, touching
    only columns [m] and [n]. Allocation-free; this is the hot loop of
    decomposition and reconstruction. *)

val rot_cols_t : t -> m:int -> n:int -> theta:float -> phi:float -> unit
(** In-place [u ← u · T_{m,n}(θ,φ)]; inverse of {!rot_cols_t_dagger}. *)

val rot_rows_t : t -> m:int -> n:int -> theta:float -> phi:float -> unit
(** In-place [u ← T_{m,n}(θ,φ) · u] — row mixing from the left, used by
    the two-sided (Clements) elimination. *)

val rot_rows_t_dagger : t -> m:int -> n:int -> theta:float -> phi:float -> unit
(** In-place [u ← T_{m,n}(θ,φ)† · u]; inverse of {!rot_rows_t}. *)

val pp : Format.formatter -> t -> unit
