(** Dense complex matrices.

    The high-level representation of a linear interferometer is an N×N
    unitary (paper §II-B); every Bosehedral pass manipulates values of
    this type. Storage is a single contiguous row-major off-heap
    [Bigarray] plane per component (real/imaginary) behind this
    abstract type — no other module may assume the layout. Off-heap
    planes give the C kernels stable data pointers (no GC interaction),
    which is what lets large kernels release the OCaml runtime lock
    (see {!blocking_threshold}) and the binary artifact codec blit
    planes straight out of mmapped cache objects. Functions are
    documented as pure unless their name says otherwise.

    Beyond the constructors and elementwise operations, the module is a
    kernel layer: in-place Givens rotations ([rot_*]), BLAS-style
    in-place products ([gemm], [gemm_adjoint], …), [axpy]/[scale]
    updates, in-place row/column permutations, no-copy submatrix
    {!View}s, and {!type:workspace}s of reusable scratch matrices that
    the compiler passes thread through the pipeline. *)

type t

val create : int -> int -> t
(** [create rows cols] zero matrix. *)

val identity : int -> t

val dims : t -> int * int
val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit

val init : int -> int -> (int -> int -> Cx.t) -> t
val of_arrays : Cx.t array array -> t
(** Copies its input. @raise Invalid_argument on empty input, a zero
    number of columns, or ragged rows. *)

val to_arrays : t -> Cx.t array array
(** Fresh copy of the contents. *)

val of_real : float array array -> t

val copy : t -> t

val blit : t -> t -> unit
(** [blit src dst] overwrites [dst] with the contents of [src].
    @raise Invalid_argument on dimension mismatch. *)

val fill_zero : t -> unit
(** In-place: every entry becomes 0. *)

val set_identity : t -> unit
(** In-place: zero, then ones on the main diagonal. *)

val transpose : t -> t
val conj : t -> t
val adjoint : t -> t
(** Conjugate transpose. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : Cx.t -> t -> t

val scale_inplace : Cx.t -> t -> unit
(** [m ← s·m], allocation-free. *)

val axpy : Cx.t -> t -> t -> unit
(** [axpy a x y] is [y ← y + a·x], allocation-free.
    @raise Invalid_argument on dimension mismatch. *)

val scale_row : t -> int -> Cx.t -> unit
(** In-place scale of one row. *)

val scale_col : t -> int -> Cx.t -> unit
(** In-place scale of one column. *)

val row_axpy : t -> src:int -> dst:int -> ?from:int -> Cx.t -> unit
(** [row_axpy m ~src ~dst ~from a]: row [dst] ← row [dst] + a·row [src]
    on columns [from..cols-1] ([from] defaults to 0) — the LU
    elimination kernel. Allocation-free. *)

val mul : t -> t -> t
(** Matrix product. @raise Invalid_argument on dimension mismatch. *)

val gemm : ?acc:bool -> dst:t -> t -> t -> unit
(** [gemm ~dst a b] is [dst ← a·b] ([dst ← dst + a·b] with [~acc:true]),
    cache-blocked over the contraction index, writing into the caller's
    buffer — the allocation-free form of {!mul}. [dst] must not alias
    [a] or [b]. @raise Invalid_argument on shape mismatch or aliasing. *)

val gemm_adjoint : ?acc:bool -> dst:t -> t -> t -> unit
(** [dst ← a·b†] without materializing [b†]: entry (i,j) is a dot
    product of two contiguous rows. Same contract as {!gemm}. *)

val gemm_adjoint_left : ?acc:bool -> dst:t -> t -> t -> unit
(** [dst ← a†·b] without materializing [a†]. Same contract as {!gemm}. *)

val gemm_transpose : ?acc:bool -> dst:t -> t -> t -> unit
(** [dst ← a·bᵀ] (plain transpose, no conjugation). Same contract as
    {!gemm}. *)

val mul_vec : t -> Cx.t array -> Cx.t array

val trace : t -> Cx.t

val trace_mul : t -> t -> Cx.t
(** [trace_mul a b] = tr(a·b) in O(N²) without materializing the
    product. @raise Invalid_argument unless [a·b] is square. *)

val frobenius_norm : t -> float
val max_abs_diff : t -> t -> float
(** Entrywise L∞ distance. *)

val equal : ?tol:float -> t -> t -> bool

val is_unitary : ?tol:float -> t -> bool
(** Whether [m† m = I] entrywise within [tol] (default 1e-8). *)

val row_norm2 : t -> int -> float
(** Sum of squared moduli of one row. *)

val col_norm2 : t -> int -> float

val swap_rows : t -> int -> int -> unit
(** In-place. *)

val swap_cols : t -> int -> int -> unit
(** In-place. *)

val permute_rows_inplace : int array -> t -> unit
(** [permute_rows_inplace p m] moves row [i] to row [p.(i)] in place
    (cycle-following; O(cols) scratch, no matrix allocated) — the
    in-place form of [Perm.permute_rows].
    @raise Invalid_argument if [p] is not a permutation of the rows. *)

val permute_cols_inplace : int array -> t -> unit
(** [permute_cols_inplace p m] moves column [j] to column [p.(j)] in
    place — the in-place form of [Perm.permute_cols]. *)

val map : (Cx.t -> Cx.t) -> t -> t

val unitary_fidelity : t -> t -> float
(** [unitary_fidelity u_app u] = |tr(u_app · u†)| / N — the paper's
    approximation-fidelity metric (§VII-A). Both must be N×N.
    Computed elementwise in O(N²). *)

val rot_cols_t_dagger : t -> m:int -> n:int -> theta:float -> phi:float -> unit
(** In-place [u ← u · T_{m,n}(θ,φ)†] — the elimination kernel, touching
    only columns [m] and [n]. Allocation-free; this is the hot loop of
    decomposition and reconstruction. *)

val rot_cols_t : t -> m:int -> n:int -> theta:float -> phi:float -> unit
(** In-place [u ← u · T_{m,n}(θ,φ)]; inverse of {!rot_cols_t_dagger}. *)

val rot_rows_t : t -> m:int -> n:int -> theta:float -> phi:float -> unit
(** In-place [u ← T_{m,n}(θ,φ) · u] — row mixing from the left, used by
    the two-sided (Clements) elimination. *)

val rot_rows_t_dagger : t -> m:int -> n:int -> theta:float -> phi:float -> unit
(** In-place [u ← T_{m,n}(θ,φ)† · u]; inverse of {!rot_rows_t}. *)

(** The [_cs] variants take the rotation in precomputed form — [c] =
    cos θ, [s] = sin θ and [(ere, eim)] = e^{iφ} — so callers that can
    derive these algebraically (e.g. {!Givens.eliminate}, which reads
    them off the entries being zeroed) skip the cos/sin/atan2 round
    trip entirely. The angle-based kernels above are thin wrappers. *)

val rot_cols_t_dagger_cs :
  ?nrows:int -> t -> m:int -> n:int -> c:float -> s:float -> ere:float -> eim:float -> unit
(** [?nrows] restricts the update to the first [nrows] rows, for
    callers that know both columns are zero below (Clements sweeps). *)

val rot_cols_t_cs :
  t -> m:int -> n:int -> c:float -> s:float -> ere:float -> eim:float -> unit

val rot_rows_t_cs :
  ?first:int -> t -> m:int -> n:int -> c:float -> s:float -> ere:float -> eim:float -> unit
(** [?first] restricts the update to columns [first ..], for callers
    that know both rows are zero to the left (Clements sweeps). *)

val rot_rows_t_dagger_cs :
  t -> m:int -> n:int -> c:float -> s:float -> ere:float -> eim:float -> unit

(** {1 Fused rotation sweeps}

    A {!Rotseq.t} packs an ordered run of Givens rotations into one
    off-heap buffer (8 float64 slots each) so a single C call can
    apply a whole anti-diagonal of a Clements sweep per pass, BLAS
    [rotm]-style, instead of one kernel entry per rotation. Rotations
    are stored in {e kernel} form: the pusher bakes in any dagger sign
    flip on the phase (see the [Givens.seq_push_*] helpers), so three
    sweep bodies cover every decomposition/replay caller.

    Determinism contract: the column sweeps iterate row-outer and the
    row sweep applies rotations in packed order per column, so the
    resulting bits of any row (resp. column) depend only on the
    rotation subsequence — never on how callers split the row/column
    range across pool domains. The parallel elimination engines
    (docs/ARCHITECTURE.md, "Parallel execution") rely on exactly this.

    Like the per-rotation kernels, a sweep whose work — (slice width) ×
    (rotation count) — reaches {!blocking_threshold} dispatches to a
    runtime-lock-releasing C variant and counts in {!lock_releases}. *)

module Rotseq : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Growable packed sequence; [capacity] (default 64) is the initial
      rotation capacity. *)

  val length : t -> int
  (** Rotations currently packed. *)

  val clear : t -> unit
  (** Reset to empty (storage retained). *)

  val push :
    t -> m:int -> n:int -> c:float -> s:float -> ere:float -> eim:float ->
    bound:int -> unit
  (** Append one rotation in kernel form. [bound] is the rotation's
      applicability limit: for column sweeps, the exclusive row bound
      (apply to row [r] iff [r < bound] — the [?nrows] restriction);
      for the row sweep, the first column touched (the [?first]
      restriction). Pass the matrix extent when unrestricted.
      @raise Invalid_argument on a bad [m]/[n] pair. *)
end

val sweep_cols_pre : t -> Rotseq.t -> rot_lo:int -> rot_hi:int -> row_lo:int -> row_hi:int -> unit
(** Apply the packed subsequence [\[rot_lo, rot_hi)] to rows
    [\[row_lo, row_hi)], each rotation mixing columns [m]/[n] with the
    phase multiplying the [m] plane {e before} the real rotation — the
    fused form of {!rot_cols_t_dagger_cs} (push with [eim] negated).
    @raise Invalid_argument on bad ranges or out-of-range columns. *)

val sweep_cols_post : t -> Rotseq.t -> rot_lo:int -> rot_hi:int -> row_lo:int -> row_hi:int -> unit
(** As {!sweep_cols_pre} with the phase applied {e after} the real
    rotation — the fused form of {!rot_cols_t_cs}, used by the
    fidelity-replay path. *)

val sweep_rows_pre : t -> Rotseq.t -> rot_lo:int -> rot_hi:int -> col_lo:int -> col_hi:int -> unit
(** Apply the packed subsequence to columns [\[col_lo, col_hi)], each
    rotation mixing rows [m]/[n] from column [max col_lo bound] on —
    the fused form of {!rot_rows_t_cs}.
    @raise Invalid_argument on bad ranges or out-of-range rows. *)

(** {1 Views}

    A view is a submatrix described by row and column index sets over a
    base matrix — nothing is copied, so the hafnian/permanent kernels
    can address the A_{n̄} submatrices of GBS probability formulas
    without allocating per query. Index arrays may repeat entries (the
    GBS submatrices do). The view reads through to the live base
    matrix; it is only valid while the base is unchanged. *)

module View : sig
  type t

  val rows : t -> int
  val cols : t -> int

  val get : t -> int -> int -> Cx.t
  (** [get v i j] = base entry at ([rows.(i)], [cols.(j)]). *)
end

val view : t -> rows:int array -> cols:int array -> View.t
(** No-copy submatrix. The index arrays are captured, not copied — the
    caller must not mutate them while the view is in use.
    @raise Invalid_argument on out-of-range indices. *)

val view_full : t -> View.t
(** The whole matrix as a view. *)

val of_view : View.t -> t
(** Materialize a view into a fresh matrix. *)

val views_overlap : View.t -> View.t -> bool
(** Static aliasing check: whether the two views address intersecting
    storage — the same parent buffer, at least one common row index and
    at least one common column index. Two overlapping views must never
    be handed to an in-place kernel as source and destination; the lint
    pass [aliasing] (code BH0701) reports every overlapping pair at a
    kernel call site, and dev builds additionally assert kernel-input
    health at entry (assertions are compiled out by [-noassert] in the
    release profile). O(rows + cols) of the parent. *)

(** {1 Workspaces}

    A workspace is a pool of scratch matrices keyed by
    [(slot, rows, cols)], reused across calls so hot loops (the
    500-trial mapping polish, the dropout fidelity search) allocate
    O(1) matrices instead of O(trials). Scratch contents are
    unspecified on acquisition; the caller overwrites. The threading
    convention (who owns which slot, no scratch escapes the call that
    acquired it) is documented in docs/ARCHITECTURE.md. *)

(** Named workspace slots. The slot numbers are a repo-wide ownership
    convention (previously magic literals at each call site): every
    holder of a slot may assume no live scratch from another owner
    shares it. New subsystems should claim a fresh constant here
    rather than inventing a number locally. *)
module Slot : sig
  val elimination : int
  (** Slot 0 — the elimination engines' work matrix
      ([Eliminate.decompose], [Clements.decompose] copy their input
      here). *)

  val replay : int
  (** Slot 1 — [Plan.fidelity]'s replay target (the dropout search and
      mapping polish probe fidelities here while an elimination's work
      matrix is dead). *)
end

type workspace

val workspace : unit -> workspace

val scratch : ?slot:int -> workspace -> int -> int -> t
(** [scratch ws rows cols] returns the pooled matrix for this
    (slot, shape), creating it on first use. [slot] (default 0)
    separates concurrent uses of equal shapes. The returned matrix must
    not be retained past the acquiring call's own return. *)

val workspace_hits : workspace -> int
(** Scratch requests served from the pool. *)

val workspace_misses : workspace -> int
(** Scratch requests that had to allocate. *)

val allocations : unit -> int
(** Global count of matrices allocated since program start — the
    denominator of the compile-time allocation gauges
    (docs/METRICS.md). Monotone; sample a delta around a region to
    count its allocations. *)

val bytes_offheap : unit -> int
(** Cumulative bytes of off-heap plane storage allocated since program
    start (16 bytes per element: two float64 planes). The off-heap twin
    of the GC-words allocation gauges; feeds [mat.bytes_offheap]
    (docs/METRICS.md). Monotone — sample a delta around a region. *)

val blocking_threshold : int
(** Element count at and above which the in-place rotation kernels
    dispatch to their runtime-lock-releasing C variants, letting pool
    domains overlap compute and GC during long kernels. Below it the
    plain [@@noalloc] fast path keeps kernel entry at ~a C call. *)

val lock_releases : unit -> int
(** Number of kernel invocations that released the OCaml runtime lock
    (count ≥ {!blocking_threshold}). Feeds [mat.lock_releases]
    (docs/METRICS.md). Monotone. *)

(** {1 Binary plane codec}

    The payload layout shared by the v2 binary artifact formats
    (docs/SERVING.md): both planes row-major as little-endian IEEE-754
    doubles, the full real plane followed by the full imaginary plane.
    [Plan]/[Unitary] wrap this in their magic/version headers and
    FNV-1a checksum trailers; the disk cache decodes it either from a
    string read or zero-copy from an mmapped object file. *)

type bigbytes = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A raw byte buffer — in practice an mmapped cache object file. *)

val plane_bytes : t -> int
(** Encoded payload size: [16 · rows · cols] bytes. *)

val encode_planes : Buffer.t -> t -> unit
(** Append the two planes to [buf] in the codec layout. *)

val decode_planes_string : rows:int -> cols:int -> string -> pos:int -> t
(** Decode a fresh matrix from the codec layout starting at [pos].
    @raise Invalid_argument when the range is out of bounds. *)

val decode_planes_bigbytes : rows:int -> cols:int -> bigbytes -> pos:int -> t
(** {!decode_planes_string} over a mapped buffer — one [memcpy] per
    plane on little-endian hosts (a portable per-element fallback runs
    on big-endian ones), no intermediate string.
    @raise Invalid_argument when the range is out of bounds. *)

val bigbytes_sub_string : bigbytes -> pos:int -> len:int -> string
(** Copy a slice of a mapped buffer out as a string — for the small
    header/trailer regions around the plane payloads.
    @raise Invalid_argument when the range is out of bounds. *)

val fnv1a64_bigbytes : bigbytes -> pos:int -> len:int -> int64
(** FNV-1a 64 over a buffer slice, agreeing with [Bose_util.Fnv] — the
    checksum validation primitive of the mmap read path.
    @raise Invalid_argument when the range is out of bounds. *)

val pp : Format.formatter -> t -> unit
