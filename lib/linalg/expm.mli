(** Complex matrix exponential, by scaling-and-squaring with a Taylor
    core. Used by the truncated-Fock-space simulator backend to
    exponentiate gate generators. *)

val expm : Mat.t -> Mat.t
(** [expm a] = e^a for square [a]. Accuracy ~1e-12 for well-conditioned
    generators (the anti-Hermitian gate generators used here). *)

val one_norm : Mat.t -> float
(** Maximum absolute column sum — the scaling estimate. *)
