type t = int array
(* p.(i) is the destination of source index i. *)

let identity n = Array.init n (fun i -> i)

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
       if x < 0 || x >= n || seen.(x) then invalid_arg "Perm.of_array: not a permutation";
       seen.(x) <- true)
    a;
  Array.copy a

let to_array = Array.copy
let size = Array.length
let apply p i = p.(i)

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i dest -> inv.(dest) <- i) p;
  inv

let compose p q =
  if Array.length p <> Array.length q then invalid_arg "Perm.compose: size mismatch";
  Array.init (Array.length p) (fun i -> p.(q.(i)))

let swap n i j =
  let p = identity n in
  p.(i) <- j;
  p.(j) <- i;
  p

let is_identity p =
  let ok = ref true in
  Array.iteri (fun i x -> if i <> x then ok := false) p;
  !ok

let permute_rows_inplace p m =
  if Array.length p <> Mat.rows m then invalid_arg "Perm.permute_rows_inplace: size mismatch";
  Mat.permute_rows_inplace p m

let permute_cols_inplace p m =
  if Array.length p <> Mat.cols m then invalid_arg "Perm.permute_cols_inplace: size mismatch";
  Mat.permute_cols_inplace p m

let permute_rows p m =
  if Array.length p <> Mat.rows m then invalid_arg "Perm.permute_rows: size mismatch";
  let r = Mat.copy m in
  Mat.permute_rows_inplace p r;
  r

let permute_cols p m =
  if Array.length p <> Mat.cols m then invalid_arg "Perm.permute_cols: size mismatch";
  let r = Mat.copy m in
  Mat.permute_cols_inplace p r;
  r

let matrix p =
  let n = Array.length p in
  let m = Mat.create n n in
  Array.iteri (fun i dest -> Mat.set m dest i Cx.one) p;
  m

let permute_list p xs =
  let n = Array.length p in
  if List.length xs <> n then invalid_arg "Perm.permute_list: size mismatch";
  let out = Array.make n None in
  List.iteri (fun i x -> out.(p.(i)) <- Some x) xs;
  Array.to_list (Array.map Option.get out)

let random rng n =
  let p = identity n in
  Bose_util.Rng.shuffle rng p;
  p

let pp fmt p =
  Format.fprintf fmt "[@[<h>%a@]]"
    (Format.pp_print_array ~pp_sep:(fun f () -> Format.fprintf f " ") Format.pp_print_int)
    p
