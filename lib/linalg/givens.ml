type rotation = { m : int; n : int; c : float; s : float; ere : float; eim : float }

let of_angles ~m ~n ~theta ~phi =
  { m; n; c = cos theta; s = sin theta; ere = cos phi; eim = sin phi }

let theta r = atan2 r.s r.c
let phi r = atan2 r.eim r.ere
let drop_mixing r = { r with c = 1.; s = 0. }

let matrix dim { m; n; c; s; ere; eim } =
  let t = Mat.identity dim in
  let e = Cx.make ere eim in
  Mat.set t m m (Cx.scale c e);
  Mat.set t m n (Cx.re (-.s));
  Mat.set t n m (Cx.scale s e);
  Mat.set t n n (Cx.re c);
  t

let apply_t_dagger_right u { m; n; c; s; ere; eim } =
  Mat.rot_cols_t_dagger_cs u ~m ~n ~c ~s ~ere ~eim

let apply_t_right u { m; n; c; s; ere; eim } = Mat.rot_cols_t_cs u ~m ~n ~c ~s ~ere ~eim
let apply_t_left u { m; n; c; s; ere; eim } = Mat.rot_rows_t_cs u ~m ~n ~c ~s ~ere ~eim

let apply_t_dagger_left u { m; n; c; s; ere; eim } =
  Mat.rot_rows_t_dagger_cs u ~m ~n ~c ~s ~ere ~eim

(* The rotation zeroing u_m against u_n is derived algebraically — no
   trigonometry: tan θ = |u_m|/|u_n| gives cos θ = |u_n|/h and
   sin θ = |u_m|/h with h = √(|u_m|² + |u_n|²), and the phase is the
   unit number e^{iφ} = w/|w| for w = u_m·conj(u_n) (φ = arg u_m −
   arg u_n; [flip] conjugates w for the left-elimination convention
   φ = arg u_n − arg u_m). θ and φ themselves are recovered on demand
   by the {!theta}/{!phi} accessors — the decomposition hot loop never
   pays an atan2/cos/sin. *)
let derive ~m ~n ~flip (um : Cx.t) (un : Cx.t) =
  let pm = (um.re *. um.re) +. (um.im *. um.im) in
  if pm = 0. then { m; n; c = 1.; s = 0.; ere = 1.; eim = 0. }
  else begin
    let pn = (un.re *. un.re) +. (un.im *. un.im) in
    let rm = sqrt pm and rn = sqrt pn in
    let inv_h = 1. /. sqrt (pm +. pn) in
    let c = rn *. inv_h and s = rm *. inv_h in
    let ere, eim =
      if pn = 0. then
        let inv = 1. /. rm in
        (um.re *. inv, um.im *. inv)
      else
        let wre = (um.re *. un.re) +. (um.im *. un.im)
        and wim = (um.im *. un.re) -. (um.re *. un.im) in
        let inv = 1. /. (rm *. rn) in
        (wre *. inv, wim *. inv)
    in
    if flip then { m; n; c; s; ere; eim = -.eim } else { m; n; c; s; ere; eim }
  end

let solve u ~row ~m ~n = derive ~m ~n ~flip:false (Mat.get u row m) (Mat.get u row n)

let angle_for u ~row ~m ~n = theta (solve u ~row ~m ~n)

(* A [derive]d rotation is the exact identity only in the
   nothing-to-eliminate case; skip the kernel pass then. *)
let is_identity r = r.s = 0. && r.eim = 0. && r.ere = 1.

(* [?nrows]/[?first] forward to the ranged kernels, for sweeps that
   know the zero structure of the two columns/rows being mixed. *)
let eliminate ?nrows u ~row ~m ~n =
  let r = solve u ~row ~m ~n in
  if not (is_identity r) then begin
    Mat.rot_cols_t_dagger_cs ?nrows u ~m ~n ~c:r.c ~s:r.s ~ere:r.ere ~eim:r.eim;
    (* The eliminated entry is zero up to rounding; pin it exactly so later
       eliminations in the same row see a clean matrix. *)
    Mat.set u row m Cx.zero
  end;
  r

let eliminate_left ?first u ~col ~m ~n =
  let r = derive ~m ~n ~flip:true (Mat.get u m col) (Mat.get u n col) in
  if not (is_identity r) then begin
    Mat.rot_rows_t_cs ?first u ~m ~n ~c:r.c ~s:r.s ~ere:r.ere ~eim:r.eim;
    Mat.set u m col Cx.zero
  end;
  r

let solve_left u ~col ~m ~n = derive ~m ~n ~flip:true (Mat.get u m col) (Mat.get u n col)

(* Packed-sequence pushers for the fused Mat.sweep_ kernels.
   Each bakes the phase into the kernel form its sweep body consumes:
   the dagger-right push negates eim exactly as rot_cols_t_dagger_cs
   does, so `sweep_cols_pre` over a pushed sequence applies the same
   per-element arithmetic as the per-rotation elimination kernel. *)
let seq_push_t_dagger_right seq r ~nrows =
  Mat.Rotseq.push seq ~m:r.m ~n:r.n ~c:r.c ~s:r.s ~ere:r.ere ~eim:(-.r.eim) ~bound:nrows

let seq_push_t_right seq r ~nrows =
  Mat.Rotseq.push seq ~m:r.m ~n:r.n ~c:r.c ~s:r.s ~ere:r.ere ~eim:r.eim ~bound:nrows

let seq_push_t_left seq r ~first =
  Mat.Rotseq.push seq ~m:r.m ~n:r.n ~c:r.c ~s:r.s ~ere:r.ere ~eim:r.eim ~bound:first
