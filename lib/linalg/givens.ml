
type rotation = { m : int; n : int; theta : float; phi : float }

let matrix dim { m; n; theta; phi } =
  let t = Mat.identity dim in
  let c = cos theta and s = sin theta in
  Mat.set t m m (Cx.scale c (Cx.exp_i phi));
  Mat.set t m n (Cx.re (-.s));
  Mat.set t n m (Cx.scale s (Cx.exp_i phi));
  Mat.set t n n (Cx.re c);
  t

let apply_t_dagger_right u { m; n; theta; phi } = Mat.rot_cols_t_dagger u ~m ~n ~theta ~phi

let apply_t_right u { m; n; theta; phi } = Mat.rot_cols_t u ~m ~n ~theta ~phi

(* Solve u(row,m)·e^{-iφ}cosθ = u(row,n)·sinθ:
   φ = arg(u_m) − arg(u_n) and tanθ = |u_m| / |u_n|. *)
let solve u ~row ~m ~n =
  let um = Mat.get u row m and un = Mat.get u row n in
  let am = Cx.abs um and an = Cx.abs un in
  if am = 0. then { m; n; theta = 0.; phi = 0. }
  else if an = 0. then { m; n; theta = Float.pi /. 2.; phi = Cx.arg um }
  else { m; n; theta = atan2 am an; phi = Cx.arg um -. Cx.arg un }

let angle_for u ~row ~m ~n = (solve u ~row ~m ~n).theta

let apply_t_left u { m; n; theta; phi } = Mat.rot_rows_t u ~m ~n ~theta ~phi

let apply_t_dagger_left u { m; n; theta; phi } = Mat.rot_rows_t_dagger u ~m ~n ~theta ~phi

(* Solve (T·u)(m, col) = e^{iφ}cosθ·u(m,col) − sinθ·u(n,col) = 0:
   φ = arg(u_n) − arg(u_m) and tanθ = |u_m| / |u_n|. *)
let solve_left u ~col ~m ~n =
  let um = Mat.get u m col and un = Mat.get u n col in
  let am = Cx.abs um and an = Cx.abs un in
  if am = 0. then { m; n; theta = 0.; phi = 0. }
  else if an = 0. then { m; n; theta = Float.pi /. 2.; phi = -.Cx.arg um }
  else { m; n; theta = atan2 am an; phi = Cx.arg un -. Cx.arg um }

let eliminate_left u ~col ~m ~n =
  let r = solve_left u ~col ~m ~n in
  apply_t_left u r;
  Mat.set u m col Cx.zero;
  r

let eliminate u ~row ~m ~n =
  let r = solve u ~row ~m ~n in
  apply_t_dagger_right u r;
  (* The eliminated entry is zero up to rounding; pin it exactly so later
     eliminations in the same row see a clean matrix. *)
  Mat.set u row m Cx.zero;
  r
