let check_symmetric a =
  let n = Array.length a in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Eigen.jacobi: not square") a;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Float.abs (a.(i).(j) -. a.(j).(i)) > 1e-9 *. (1. +. Float.abs a.(i).(j)) then
        invalid_arg "Eigen.jacobi: not symmetric"
    done
  done

let off_diag_norm a =
  let n = Array.length a in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := !acc +. (2. *. a.(i).(j) *. a.(i).(j))
    done
  done;
  sqrt !acc

let jacobi ?(tol = 1e-12) ?(max_sweeps = 100) a0 =
  check_symmetric a0;
  let n = Array.length a0 in
  let a = Array.map Array.copy a0 in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.)) in
  let rotate p q =
    let apq = a.(p).(q) in
    if Float.abs apq > 1e-300 then begin
      let theta = (a.(q).(q) -. a.(p).(p)) /. (2. *. apq) in
      let t =
        let s = if theta >= 0. then 1. else -1. in
        s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
      in
      let c = 1. /. sqrt ((t *. t) +. 1.) in
      let s = t *. c in
      let tau = s /. (1. +. c) in
      let app = a.(p).(p) and aqq = a.(q).(q) in
      a.(p).(p) <- app -. (t *. apq);
      a.(q).(q) <- aqq +. (t *. apq);
      a.(p).(q) <- 0.;
      a.(q).(p) <- 0.;
      for i = 0 to n - 1 do
        if i <> p && i <> q then begin
          let aip = a.(i).(p) and aiq = a.(i).(q) in
          a.(i).(p) <- aip -. (s *. (aiq +. (tau *. aip)));
          a.(p).(i) <- a.(i).(p);
          a.(i).(q) <- aiq +. (s *. (aip -. (tau *. aiq)));
          a.(q).(i) <- a.(i).(q)
        end
      done;
      for i = 0 to n - 1 do
        let vip = v.(i).(p) and viq = v.(i).(q) in
        v.(i).(p) <- vip -. (s *. (viq +. (tau *. vip)));
        v.(i).(q) <- viq +. (s *. (vip -. (tau *. viq)))
      done
    end
  in
  let scale = Float.max 1. (off_diag_norm a) in
  let sweeps = ref 0 in
  while off_diag_norm a > tol *. scale && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  (* Sort eigenpairs by decreasing eigenvalue. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare a.(j).(j) a.(i).(i)) order;
  let lambda = Array.map (fun k -> a.(k).(k)) order in
  let vectors = Array.init n (fun i -> Array.map (fun k -> v.(i).(k)) order) in
  (lambda, vectors)

let reconstruct lambda v =
  let n = Array.length lambda in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0. in
          for k = 0 to n - 1 do
            acc := !acc +. (v.(i).(k) *. lambda.(k) *. v.(j).(k))
          done;
          !acc))
