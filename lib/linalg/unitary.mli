(** Unitary matrix generation and factorization. *)

val qr : Mat.t -> Mat.t * Mat.t
(** [qr a] = (q, r) with [a = q·r], [q] unitary and [r] upper triangular,
    via Householder reflections. [a] must be square. *)

val haar_random : Bose_util.Rng.t -> int -> Mat.t
(** Haar-distributed random N×N unitary: QR of a Ginibre matrix with the
    phase fix of Mezzadri (2007) making the distribution exactly Haar. *)

val random_orthogonal : Bose_util.Rng.t -> int -> Mat.t
(** Haar-random real orthogonal matrix (all entries real). *)

val random_diagonal_phases : Bose_util.Rng.t -> int -> Mat.t
(** Diagonal unitary with uniform random phases. *)

val save : out_channel -> Mat.t -> unit
(** Persist a square matrix as a line-oriented text format (header
    [unitary <n>], then one [e <re> <im>] line per entry, row-major,
    hex floats — bit-exact round-trip).
    @raise Invalid_argument on non-square input. *)

val to_string : Mat.t -> string
(** The exact bytes {!save} writes — the value format of the serve
    daemon's disk-backed artifact store.
    @raise Invalid_argument on non-square input. *)

val load_result : in_channel -> (Mat.t, string * int) result
(** Inverse of {!save}. [Error (message, line)] carries the 1-based
    line the parse failed on, so callers ([bosec check], the lint file
    loaders) can surface malformed input as a structured diagnostic
    instead of an exception. *)

val of_string : string -> (Mat.t, string * int) result
(** {!load_result} over an in-memory string, dispatching on the leading
    bytes: strings opening with the binary magic ["BHBU"] parse as the
    v2 binary format (docs/SERVING.md), anything else as the text
    format — so callers load old and new artifacts through one entry
    point. Binary parse errors report line [0]. *)

val to_binary_string : Mat.t -> string
(** The v2 binary artifact encoding: magic ["BHBU"], format version,
    dimension, the two raw little-endian float planes, and a trailing
    FNV-1a 64 checksum. Bit-exact round-trip through {!of_string}, and
    ~an order of magnitude faster to load than the text format (no
    hex-float parsing — the disk cache's preferred encoding).
    @raise Invalid_argument on non-square input. *)

val of_bigbytes : Mat.bigbytes -> pos:int -> len:int -> (Mat.t, string * int) result
(** Decode a v2 binary artifact in place from [len] bytes at [pos] of a
    mapped buffer — checksum validated and planes blitted straight out
    of the mapping, no intermediate string. Same error convention as
    {!of_string}. @raise Invalid_argument when the range is out of
    bounds of the buffer itself. *)

val load : in_channel -> Mat.t
(** {!load_result} shim. @raise Failure on malformed input. *)
