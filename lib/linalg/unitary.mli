(** Unitary matrix generation and factorization. *)

val qr : Mat.t -> Mat.t * Mat.t
(** [qr a] = (q, r) with [a = q·r], [q] unitary and [r] upper triangular,
    via Householder reflections. [a] must be square. *)

val haar_random : Bose_util.Rng.t -> int -> Mat.t
(** Haar-distributed random N×N unitary: QR of a Ginibre matrix with the
    phase fix of Mezzadri (2007) making the distribution exactly Haar. *)

val random_orthogonal : Bose_util.Rng.t -> int -> Mat.t
(** Haar-random real orthogonal matrix (all entries real). *)

val random_diagonal_phases : Bose_util.Rng.t -> int -> Mat.t
(** Diagonal unitary with uniform random phases. *)
