let one_norm m =
  let best = ref 0. in
  for j = 0 to Mat.cols m - 1 do
    let acc = ref 0. in
    for i = 0 to Mat.rows m - 1 do
      acc := !acc +. Cx.abs (Mat.get m i j)
    done;
    best := Float.max !best !acc
  done;
  !best

(* Taylor series of e^a for ‖a‖ ≤ 1/2: 24 terms give ~1e-16 residue.
   Two ping-pong term buffers and one accumulator — three matrices per
   call instead of two per term. *)
let taylor a =
  let n = Mat.rows a in
  let result = Mat.identity n in
  let term = ref (Mat.identity n) in
  let next = ref (Mat.create n n) in
  for k = 1 to 24 do
    Mat.gemm ~dst:!next !term a;
    Mat.scale_inplace (Cx.re (1. /. float_of_int k)) !next;
    Mat.axpy Cx.one !next result;
    let t = !term in
    term := !next;
    next := t
  done;
  result

let expm a =
  if Mat.rows a <> Mat.cols a then invalid_arg "Expm.expm: square matrices only";
  let norm = one_norm a in
  let squarings =
    if norm <= 0.5 then 0 else int_of_float (Float.ceil (Float.log2 (norm /. 0.5)))
  in
  let scaled = Mat.scale (Cx.re (1. /. (2. ** float_of_int squarings))) a in
  let result = ref (taylor scaled) in
  let spare = ref (Mat.create (Mat.rows a) (Mat.rows a)) in
  for _ = 1 to squarings do
    Mat.gemm ~dst:!spare !result !result;
    let t = !result in
    result := !spare;
    spare := t
  done;
  !result
