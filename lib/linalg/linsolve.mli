(** Complex linear solving: LU decomposition with partial pivoting,
    matrix inverse, and determinant — used by the Gaussian-state
    Fock-probability formulas. *)

val det : Mat.t -> Cx.t
(** Determinant of a square matrix. *)

val inverse : Mat.t -> Mat.t
(** Matrix inverse. @raise Invalid_argument if singular (pivot below
    1e-300) or not square. *)

val inverse_det : Mat.t -> Mat.t * Cx.t
(** Both at once from a single factorization. *)

val solve : Mat.t -> Cx.t array -> Cx.t array
(** [solve a b] solves [a·x = b]. *)
