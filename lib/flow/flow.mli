(** Static dataflow analysis over decomposition plans.

    A {!Bose_decomp.Plan.t} is a straight-line program: K Givens
    rotations, each touching one mode pair, followed by the diagonal Λ.
    That makes plans amenable to classic dataflow analysis, and this
    module is the engine: dependency layering (ASAP/ALAP schedules,
    critical-path depth, commuting rotation fronts — the row-disjoint
    partition of OptQC, and the exact schedule a parallel elimination
    executor would run), per-mode liveness (first/last touch, modes left
    dead by dropout), coupling-graph feasibility against a hardware
    backend, and interval-arithmetic fidelity/loss budgets that are
    {e sound}: the true simulated fidelity always lies inside the
    reported interval.

    Everything here is pure analysis — no matrices are allocated and no
    circuit is simulated; cost is O(K) plus one BFS per distinct source
    mode for feasibility. The results surface in three places: the
    BH11xx lint pass ({!Bose_lint}), [bosec analyze], and the [analyze]
    op of the compile service. *)

(** {1 Dependency layering} *)

type layering = {
  asap : int array;
      (** Per-rotation ASAP layer (0-based): the earliest layer the
          rotation can run in, given that two rotations sharing a mode
          must run in elimination order. [-1] for dropped rotations. *)
  alap : int array;
      (** Per-rotation ALAP layer: the latest layer that does not
          stretch the schedule beyond [depth]. [-1] for dropped. *)
  depth : int;
      (** Critical-path depth = number of fronts. 0 when nothing is
          kept. *)
  fronts : int array array;
      (** [fronts.(l)] = indices of the rotations in ASAP layer [l], in
          elimination order. Rotations within a front touch pairwise
          disjoint mode pairs, so they commute and can execute
          simultaneously. *)
}

val layering : ?kept:bool array -> Bose_decomp.Plan.t -> layering
(** Dependency layering of the kept rotations. [?kept] is a dropout
    mask over rotations (length must equal the rotation count); dropped
    rotations keep only their phase shifter, which folds into later
    single-mode gates and costs no schedule slot. *)

val slack : layering -> int array
(** [alap - asap] per rotation ([-1] entries for dropped rotations).
    Zero slack marks the critical path. *)

val greedy_front_count : ?kept:bool array -> Bose_decomp.Plan.t -> int
(** Independent oracle for {!layering}'s depth: repeatedly peel the
    maximal prefix-closed, mode-disjoint front off the remaining
    rotations and count the sweeps. Implemented as a direct simulation
    (no layer arithmetic) so the [depth = greedy_front_count] property
    test cross-checks two distinct computations. *)

(** {1 Per-mode liveness} *)

type liveness = {
  first_touch : int array;
      (** Per mode: index of the first kept rotation whose beamsplitter
          addresses the mode, or [-1] if none does. *)
  last_touch : int array;  (** Index of the last kept touch, or [-1]. *)
  touches : int array;  (** Number of kept rotations touching the mode. *)
  dead : int list;
      (** Modes with zero kept touches, ascending. A dead mode never
          mixes with the rest of the interferometer — its photons pass
          through phase shifters only — which after dropout usually
          signals an over-aggressive [tau]. *)
}

val liveness : ?kept:bool array -> Bose_decomp.Plan.t -> liveness

(** {1 Budget intervals} *)

type interval = { lo : float; hi : float }

val fidelity_interval : ?kept:bool array -> Bose_decomp.Plan.t -> interval
(** Sound interval for [Plan.fidelity ?kept plan u] against the plan's
    own reconstruction [u]: dropping rotation i replaces T(θᵢ,φᵢ) by
    T(0,φᵢ), and ‖T(θ,φ) − T(0,φ)‖₂ ≤ ‖·‖_F = 2√(1−cos θ), so by
    telescoping ‖U_app − U‖₂ ≤ Σ_dropped 2√(1−cᵢ) and the fidelity
    |tr(U_app U†)|/N lies in [max(0, 1 − Σ), 1]. The measured value is
    typically far inside the interval (the bound ignores cancellation);
    what the property test pins is {e bracketing}, never tightness. *)

val transmission :
  ?kept:bool array -> noise:Bose_circuit.Noise.t -> Bose_decomp.Plan.t ->
  float array
(** Per-mode photon transmissivity η under the noise model, walking the
    same gate stream [Plan.to_circuit ~style:Tunable] emits: each kept
    rotation is a phase shifter on [m] plus a beamsplitter on [(m,n)],
    each dropped rotation keeps only the phase shifter, and Λ is one
    phase shifter per mode. A gate with loss rate ℓ multiplies each
    touched mode's η by (1 − ℓ). *)

val transmission_interval :
  ?kept:bool array -> noise:Bose_circuit.Noise.t -> Bose_decomp.Plan.t ->
  interval
(** [{lo; hi}] = min/max of {!transmission} over modes — the layer-by-
    layer loss budget's envelope. [{lo = 1.; hi = 1.}] for an ideal
    noise model, and [lo = hi] for a 0-mode-free uniform walk. *)

(** {1 Hardware backends and feasibility} *)

type backend = {
  coupling : Bose_hardware.Coupling.t option;
      (** Physical coupling graph; [None] skips feasibility checking. *)
  sites : int array option;
      (** Optional qumode-label → site embedding (e.g.
          {!Bose_hardware.Pattern.site} of the compile pattern). [None]
          means labels {e are} sites. *)
  routing_budget : int;
      (** Extra swap hops allowed per rotation: a pair is feasible when
          its site distance is ≤ 1 + routing_budget. *)
  max_depth : int option;  (** Depth ceiling, if the backend has one. *)
  noise : Bose_circuit.Noise.t;
  min_transmission : float;
      (** Loss budget floor: every mode's η must stay ≥ this. *)
}

val backend :
  ?coupling:Bose_hardware.Coupling.t ->
  ?sites:int array ->
  ?routing_budget:int ->
  ?max_depth:int ->
  ?noise:Bose_circuit.Noise.t ->
  ?min_transmission:float ->
  unit -> backend
(** Defaults: no coupling, identity sites, budget 0, no depth limit,
    {!Bose_circuit.Noise.ideal}, floor 0 — i.e. a backend that
    constrains nothing. *)

val backend_of_target :
  ?sites:int array -> n:int -> Bose_hardware.Target.t -> backend
(** The canonical backend for an [n]-qumode program on a hardware
    target: the target's coupling graph sized to [n], its routing
    budget, its depth ceiling at [n], its noise model and loss floor.
    [?sites] is the label → site embedding (e.g. the compile pattern's
    {!Bose_hardware.Pattern.site} map); omitted, labels are sites.
    Deriving backends here — not at call sites — is what keeps
    [Compiler.lint], [bosec analyze] and the serve [analyze] op
    agreeing on what a target means. *)

type infeasible_rotation = {
  rotation : int;  (** Index into the plan's elements. *)
  pair : int * int;  (** The rotation's (m, n) qumode labels. *)
  distance : int;
      (** BFS site distance; [-1] when a label maps to no valid site. *)
}

val infeasible : backend -> ?kept:bool array -> Bose_decomp.Plan.t ->
  infeasible_rotation list
(** Kept rotations whose mode pair is not an edge of (nor routable
    within [routing_budget] on) the backend coupling graph. Empty when
    the backend has no coupling graph. BFS distances are memoized per
    source site, so cost is O(K + V·(V+E)) worst case. *)

(** {1 Front validation} *)

val check_fronts :
  ?kept:bool array -> Bose_decomp.Plan.t -> int list list -> string option
(** Validate an externally supplied commuting-front schedule (e.g. from
    a parallel executor) against the plan: every kept rotation exactly
    once, no dropped or out-of-range indices, mode-disjoint within each
    front, and elimination order preserved across fronts (if kept
    rotations i < j share a mode, i's front must come first). Returns
    [Some reason] for the first violation found, [None] if valid. The
    fronts computed by {!layering} always validate. *)

(** {1 Reports} *)

type report = {
  modes : int;
  rotations : int;
  kept_rotations : int;
  layers : layering;
  live : liveness;
  fidelity : interval;
  per_mode_transmission : float array;
  transmission_range : interval;
  infeasible_rotations : infeasible_rotation list;
  unused_sites : int list;
      (** Sites of the backend coupling graph no live mode maps to
          (empty without a coupling graph). *)
  max_depth : int option;  (** Echoed backend limits, for gating. *)
  min_transmission : float;
}

val analyze :
  ?kept:bool array -> ?backend:backend -> Bose_decomp.Plan.t -> report
(** Run the full analysis. Without [?backend], feasibility is skipped
    and budgets use the ideal noise model. Emits the [flow.*]
    telemetry. *)

val report_to_json : report -> string
(** Single-line JSON object: depth, fronts, per-mode liveness table,
    budget intervals, infeasible pairs, limits. Stable field set —
    [bosec analyze] and the serve [analyze] op both emit it. *)

val pp_report : Format.formatter -> report -> unit
(** Human-oriented multi-line summary. *)
