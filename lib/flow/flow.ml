module Plan = Bose_decomp.Plan
module Givens = Bose_linalg.Givens
module Coupling = Bose_hardware.Coupling
module Noise = Bose_circuit.Noise
module Obs = Bose_obs.Obs

let sp_analyze = "flow.analyze"
let c_analyses = Obs.Counter.make "flow.analyses"
let g_depth = Obs.Gauge.make "flow.depth"
let g_dead = Obs.Gauge.make "flow.dead_modes"
let g_infeasible = Obs.Gauge.make "flow.infeasible_rotations"

let check_kept name plan = function
  | Some k when Array.length k <> Array.length plan.Plan.elements ->
    invalid_arg (Printf.sprintf "Flow.%s: kept length mismatch" name)
  | Some _ | None -> ()

let kept_at kept i = match kept with Some k -> k.(i) | None -> true

(* {1 Dependency layering} *)

type layering = {
  asap : int array;
  alap : int array;
  depth : int;
  fronts : int array array;
}

(* Two rotations depend on each other iff they share a mode; the
   dependency graph never needs materializing because a per-mode
   "last layer touching this mode" cursor carries exactly the
   information the longest-path recurrence needs. *)
let layering ?kept plan =
  check_kept "layering" plan kept;
  let k = Array.length plan.Plan.elements in
  let asap = Array.make k (-1) in
  let mode_layer = Array.make plan.Plan.modes 0 in
  let depth = ref 0 in
  for i = 0 to k - 1 do
    if kept_at kept i then begin
      let r = plan.Plan.elements.(i).Plan.rotation in
      let l = max mode_layer.(r.Givens.m) mode_layer.(r.Givens.n) in
      asap.(i) <- l;
      mode_layer.(r.Givens.m) <- l + 1;
      mode_layer.(r.Givens.n) <- l + 1;
      if l + 1 > !depth then depth := l + 1
    end
  done;
  let depth = !depth in
  (* ALAP is the same recurrence over the reversed program, re-anchored
     so the last layer is depth - 1. *)
  let alap = Array.make k (-1) in
  let rev_layer = Array.make plan.Plan.modes 0 in
  for i = k - 1 downto 0 do
    if kept_at kept i then begin
      let r = plan.Plan.elements.(i).Plan.rotation in
      let l = max rev_layer.(r.Givens.m) rev_layer.(r.Givens.n) in
      alap.(i) <- depth - 1 - l;
      rev_layer.(r.Givens.m) <- l + 1;
      rev_layer.(r.Givens.n) <- l + 1
    end
  done;
  let sizes = Array.make depth 0 in
  Array.iter (fun l -> if l >= 0 then sizes.(l) <- sizes.(l) + 1) asap;
  let fronts = Array.map (fun n -> Array.make n (-1)) sizes in
  let fill = Array.make depth 0 in
  Array.iteri
    (fun i l ->
       if l >= 0 then begin
         fronts.(l).(fill.(l)) <- i;
         fill.(l) <- fill.(l) + 1
       end)
    asap;
  { asap; alap; depth; fronts }

let slack layering =
  Array.mapi
    (fun i a -> if a < 0 then -1 else layering.alap.(i) - a)
    layering.asap

(* Direct simulation of front peeling, deliberately NOT sharing the
   layer arithmetic above: each sweep walks the remaining rotations in
   elimination order and admits a rotation iff neither of its modes was
   claimed — by an admitted rotation (it runs this sweep) or by a
   blocked one (ordering forbids overtaking it). List scheduling of
   unit-latency interval orders is optimal, so the sweep count must
   equal the ASAP depth; test_flow pins that as a property. *)
let greedy_front_count ?kept plan =
  check_kept "greedy_front_count" plan kept;
  let remaining = ref [] in
  for i = Array.length plan.Plan.elements - 1 downto 0 do
    if kept_at kept i then remaining := i :: !remaining
  done;
  let sweeps = ref 0 in
  while !remaining <> [] do
    incr sweeps;
    let claimed = Array.make plan.Plan.modes false in
    remaining :=
      List.filter
        (fun i ->
           let r = plan.Plan.elements.(i).Plan.rotation in
           let m = r.Givens.m and n = r.Givens.n in
           let runs = (not claimed.(m)) && not claimed.(n) in
           claimed.(m) <- true;
           claimed.(n) <- true;
           not runs)
        !remaining
  done;
  !sweeps

(* {1 Per-mode liveness} *)

type liveness = {
  first_touch : int array;
  last_touch : int array;
  touches : int array;
  dead : int list;
}

let liveness ?kept plan =
  check_kept "liveness" plan kept;
  let modes = plan.Plan.modes in
  let first_touch = Array.make modes (-1) in
  let last_touch = Array.make modes (-1) in
  let touches = Array.make modes 0 in
  Array.iteri
    (fun i e ->
       if kept_at kept i then begin
         let r = e.Plan.rotation in
         List.iter
           (fun v ->
              if first_touch.(v) < 0 then first_touch.(v) <- i;
              last_touch.(v) <- i;
              touches.(v) <- touches.(v) + 1)
           [ r.Givens.m; r.Givens.n ]
       end)
    plan.Plan.elements;
  let dead = ref [] in
  for v = modes - 1 downto 0 do
    if touches.(v) = 0 then dead := v :: !dead
  done;
  { first_touch; last_touch; touches; dead = !dead }

(* {1 Budget intervals} *)

type interval = { lo : float; hi : float }

(* ‖T(θ,φ) − T(0,φ)‖_F = √(2(1−c)² + 2s²) = 2√(1−c); see flow.mli. *)
let drop_cost c = 2. *. sqrt (Float.max 0. (1. -. c))

let fidelity_interval ?kept plan =
  check_kept "fidelity_interval" plan kept;
  let budget = ref 0. in
  Array.iteri
    (fun i e ->
       if not (kept_at kept i) then
         budget := !budget +. drop_cost e.Plan.rotation.Givens.c)
    plan.Plan.elements;
  { lo = Float.max 0. (1. -. !budget); hi = 1. }

let transmission ?kept ~noise plan =
  check_kept "transmission" plan kept;
  Noise.validate noise;
  let eta = Array.make plan.Plan.modes 1. in
  let phase = 1. -. noise.Noise.single_qumode_loss in
  let bs = 1. -. noise.Noise.beamsplitter_loss in
  (* Same gate stream as Plan.to_circuit ~style:Tunable, without
     building the circuit. *)
  Array.iteri
    (fun i e ->
       let r = e.Plan.rotation in
       eta.(r.Givens.m) <- eta.(r.Givens.m) *. phase;
       if kept_at kept i then begin
         eta.(r.Givens.m) <- eta.(r.Givens.m) *. bs;
         eta.(r.Givens.n) <- eta.(r.Givens.n) *. bs
       end)
    plan.Plan.elements;
  for v = 0 to plan.Plan.modes - 1 do
    eta.(v) <- eta.(v) *. phase
  done;
  eta

let float_range a =
  Array.fold_left
    (fun { lo; hi } x -> { lo = Float.min lo x; hi = Float.max hi x })
    { lo = 1.; hi = 1. } a

let transmission_interval ?kept ~noise plan =
  float_range (transmission ?kept ~noise plan)

(* {1 Hardware backends and feasibility} *)

type backend = {
  coupling : Coupling.t option;
  sites : int array option;
  routing_budget : int;
  max_depth : int option;
  noise : Noise.t;
  min_transmission : float;
}

let backend ?coupling ?sites ?(routing_budget = 0) ?max_depth
    ?(noise = Noise.ideal) ?(min_transmission = 0.) () =
  if routing_budget < 0 then invalid_arg "Flow.backend: negative routing budget";
  Noise.validate noise;
  { coupling; sites; routing_budget; max_depth; noise; min_transmission }

(* The one place a hardware target becomes a dataflow backend: the
   coupling graph sized to the program, plus the target's routing,
   depth, noise and loss-floor knobs, verbatim. Everything downstream
   (BH11xx, bosec analyze, the serve analyze op) goes through this. *)
let backend_of_target ?sites ~n (t : Bose_hardware.Target.t) =
  {
    coupling = Some (Bose_hardware.Target.coupling t n);
    sites;
    routing_budget = t.Bose_hardware.Target.routing_budget;
    max_depth = t.Bose_hardware.Target.max_depth n;
    noise = t.Bose_hardware.Target.noise;
    min_transmission = t.Bose_hardware.Target.min_transmission;
  }

type infeasible_rotation = {
  rotation : int;
  pair : int * int;
  distance : int;
}

let site_of backend label =
  match backend.sites with
  | None -> label
  | Some s -> if label < Array.length s then s.(label) else -1

let infeasible backend ?kept plan =
  check_kept "infeasible" plan kept;
  match backend.coupling with
  | None -> []
  | Some coupling ->
    let n_sites = Coupling.size coupling in
    (* Memoize one BFS per distinct source site; plans reuse sources
       heavily (every rotation of a Clements column shares its row). *)
    let memo = Hashtbl.create 16 in
    let dist a b =
      if a < 0 || a >= n_sites || b < 0 || b >= n_sites then -1
      else begin
        let a, b = if a <= b then (a, b) else (b, a) in
        match Hashtbl.find_opt memo a with
        | Some d -> d.(b)
        | None ->
          let d = Coupling.distances coupling a in
          Hashtbl.add memo a d;
          d.(b)
      end
    in
    let acc = ref [] in
    for i = Array.length plan.Plan.elements - 1 downto 0 do
      if kept_at kept i then begin
        let r = plan.Plan.elements.(i).Plan.rotation in
        let d = dist (site_of backend r.Givens.m) (site_of backend r.Givens.n) in
        if d < 0 || d > 1 + backend.routing_budget then
          acc :=
            { rotation = i; pair = (r.Givens.m, r.Givens.n); distance = d }
            :: !acc
      end
    done;
    !acc

(* {1 Front validation} *)

let check_fronts ?kept plan fronts =
  check_kept "check_fronts" plan kept;
  let k = Array.length plan.Plan.elements in
  let front_of = Array.make k (-1) in
  let bad = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !bad = None then bad := Some s) fmt in
  List.iteri
    (fun f front ->
       let claimed = Hashtbl.create 8 in
       List.iter
         (fun i ->
            if i < 0 || i >= k then fail "rotation %d out of range in front %d" i f
            else if not (kept_at kept i) then
              fail "front %d schedules dropped rotation %d" f i
            else if front_of.(i) >= 0 then
              fail "rotation %d appears in fronts %d and %d" i front_of.(i) f
            else begin
              front_of.(i) <- f;
              let r = plan.Plan.elements.(i).Plan.rotation in
              List.iter
                (fun v ->
                   match Hashtbl.find_opt claimed v with
                   | Some j ->
                     fail "front %d not commuting: rotations %d and %d share mode %d"
                       f j i v
                   | None -> Hashtbl.add claimed v i)
                [ r.Givens.m; r.Givens.n ]
            end)
         front)
    fronts;
  (* Coverage and elimination order across fronts. *)
  let mode_last = Array.make plan.Plan.modes (-1) in
  for i = 0 to k - 1 do
    if kept_at kept i then begin
      if front_of.(i) < 0 then fail "kept rotation %d missing from fronts" i
      else begin
        let r = plan.Plan.elements.(i).Plan.rotation in
        List.iter
          (fun v ->
             let j = mode_last.(v) in
             if j >= 0 && front_of.(j) >= front_of.(i) then
               fail
                 "order violation on mode %d: rotation %d (front %d) must precede %d (front %d)"
                 v j front_of.(j) i front_of.(i);
             mode_last.(v) <- i)
          [ r.Givens.m; r.Givens.n ]
      end
    end
  done;
  !bad

(* {1 Reports} *)

type report = {
  modes : int;
  rotations : int;
  kept_rotations : int;
  layers : layering;
  live : liveness;
  fidelity : interval;
  per_mode_transmission : float array;
  transmission_range : interval;
  infeasible_rotations : infeasible_rotation list;
  unused_sites : int list;
  max_depth : int option;
  min_transmission : float;
}

let null_backend = backend ()

let unused_sites backend live =
  match backend.coupling with
  | None -> []
  | Some coupling ->
    let used = Array.make (Coupling.size coupling) false in
    Array.iteri
      (fun v n ->
         if n > 0 then begin
           let s = site_of backend v in
           if s >= 0 && s < Array.length used then used.(s) <- true
         end)
      live.touches;
    let acc = ref [] in
    for s = Array.length used - 1 downto 0 do
      if not used.(s) then acc := s :: !acc
    done;
    !acc

let analyze ?kept ?backend:(b = null_backend) plan =
  check_kept "analyze" plan kept;
  Obs.Span.with_ sp_analyze @@ fun () ->
  Obs.Counter.incr c_analyses;
  let layers = layering ?kept plan in
  let live = liveness ?kept plan in
  let fidelity = fidelity_interval ?kept plan in
  let per_mode_transmission = transmission ?kept ~noise:b.noise plan in
  let transmission_range = float_range per_mode_transmission in
  let infeasible_rotations = infeasible b ?kept plan in
  let kept_rotations =
    match kept with
    | None -> Array.length plan.Plan.elements
    | Some k -> Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 k
  in
  Obs.Gauge.set g_depth (float_of_int layers.depth);
  Obs.Gauge.set g_dead (float_of_int (List.length live.dead));
  Obs.Gauge.set g_infeasible (float_of_int (List.length infeasible_rotations));
  {
    modes = plan.Plan.modes;
    rotations = Array.length plan.Plan.elements;
    kept_rotations;
    layers;
    live;
    fidelity;
    per_mode_transmission;
    transmission_range;
    infeasible_rotations;
    unused_sites = unused_sites b live;
    max_depth = b.max_depth;
    min_transmission = b.min_transmission;
  }

(* JSON emission, dependency-free like lib/serve's: the report fields
   are ints, floats in [0,1], and int lists — no string escaping
   needed beyond none at all. *)
let json_float x = Printf.sprintf "%.17g" x

let json_int_list l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let json_interval { lo; hi } =
  Printf.sprintf {|{"lo":%s,"hi":%s}|} (json_float lo) (json_float hi)

let report_to_json r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add {|{"modes":%d,"rotations":%d,"kept":%d,"depth":%d|} r.modes r.rotations
    r.kept_rotations r.layers.depth;
  let crit =
    Array.fold_left (fun acc s -> if s = 0 then acc + 1 else acc) 0
      (slack r.layers)
  in
  add {|,"critical":%d,"fronts":[|} crit;
  Array.iteri
    (fun l front ->
       if l > 0 then add ",";
       add "%s" (json_int_list (Array.to_list front)))
    r.layers.fronts;
  add {|],"liveness":[|};
  for v = 0 to r.modes - 1 do
    if v > 0 then add ",";
    add {|{"mode":%d,"first":%d,"last":%d,"touches":%d,"transmission":%s}|} v
      r.live.first_touch.(v) r.live.last_touch.(v) r.live.touches.(v)
      (json_float r.per_mode_transmission.(v))
  done;
  add {|],"dead_modes":%s|} (json_int_list r.live.dead);
  add {|,"fidelity":%s,"transmission":%s|} (json_interval r.fidelity)
    (json_interval r.transmission_range);
  add {|,"infeasible":[|};
  List.iteri
    (fun i { rotation; pair = (m, n); distance } ->
       if i > 0 then add ",";
       add {|{"rotation":%d,"m":%d,"n":%d,"distance":%d}|} rotation m n distance)
    r.infeasible_rotations;
  add {|],"unused_sites":%s|} (json_int_list r.unused_sites);
  add {|,"limits":{"max_depth":%s,"min_transmission":%s}}|}
    (match r.max_depth with None -> "null" | Some d -> string_of_int d)
    (json_float r.min_transmission);
  Buffer.contents buf

let pp_report fmt r =
  Format.fprintf fmt "@[<v>plan: %d modes, %d rotations (%d kept)@," r.modes
    r.rotations r.kept_rotations;
  Format.fprintf fmt "depth: %d layers%s@," r.layers.depth
    (match r.max_depth with
     | Some d when r.layers.depth > d -> Printf.sprintf " (limit %d EXCEEDED)" d
     | Some d -> Printf.sprintf " (limit %d)" d
     | None -> "");
  Format.fprintf fmt "fidelity interval: [%.6f, %.6f]@," r.fidelity.lo
    r.fidelity.hi;
  Format.fprintf fmt "transmission: [%.6f, %.6f] (floor %.6f)@,"
    r.transmission_range.lo r.transmission_range.hi r.min_transmission;
  Format.fprintf fmt "dead modes: %d; infeasible rotations: %d; unused sites: %d@]"
    (List.length r.live.dead)
    (List.length r.infeasible_rotations)
    (List.length r.unused_sites)
