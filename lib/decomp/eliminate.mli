(** The elimination engine: turn an interferometer unitary into a
    {!Plan.t} by following an elimination pattern (paper §IV-A).

    Each stage k (from k = N active qumodes down to 2) zeroes matrix row
    k-1 against the pattern's stage root and removes that root; the
    rotations produced are exactly the T_{m,n}(θ, φ) of Eq. (1). *)

val decompose :
  ?ws:Bose_linalg.Mat.workspace ->
  ?pool:Bose_par.Pool.t ->
  Bose_hardware.Pattern.t -> Bose_linalg.Mat.t -> Plan.t
(** [decompose pattern u] — [u] must be N×N unitary with
    N = pattern size. The returned plan satisfies
    [Plan.reconstruct plan ≈ u] to machine precision. Passing [?ws]
    reuses the workspace's slot-0 scratch as the elimination work matrix
    instead of allocating a fresh copy of [u].

    At N ≥ [Mat.blocking_threshold] the elimination switches to the
    fused sweep engine: each stage derives its rotations serially on
    the stage row, then applies the packed stage to every other row in
    one bulk pass, chunked across [?pool] when present. Engine choice
    depends only on N — the plan is bit-identical at every pool size,
    pool or no pool (docs/ARCHITECTURE.md, determinism contract).
    @raise Invalid_argument on a size mismatch or non-square input. *)

val decompose_baseline :
  ?ws:Bose_linalg.Mat.workspace -> ?pool:Bose_par.Pool.t -> Bose_linalg.Mat.t -> Plan.t
(** Chain-pattern decomposition (Reck-style, the paper's baseline),
    ignoring hardware structure. *)

val residual_off_diagonal :
  ?ws:Bose_linalg.Mat.workspace -> Bose_linalg.Mat.t -> Bose_hardware.Pattern.t -> float
(** Largest off-diagonal modulus left after running the elimination on a
    copy — a diagnostic that a pattern drives the matrix to Λ. *)
