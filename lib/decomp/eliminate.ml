module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Givens = Bose_linalg.Givens
module Pattern = Bose_hardware.Pattern
module Obs = Bose_obs.Obs

let c_eliminations = Obs.Counter.make "decomp.eliminations"
let c_decompositions = Obs.Counter.make "decomp.decompositions"
let c_beamsplitters = Obs.Counter.make "decomp.beamsplitters"

let h_angles =
  Obs.Histo.make "decomp.rotation_angles"
    ~bounds:[| 1e-4; 1e-3; 0.01; 0.05; 0.1; 0.2; 0.5; 1.0 |]

(* The work matrix comes from the workspace when one is supplied
   ([Mat.Slot.elimination] by convention, see docs/ARCHITECTURE.md);
   callers that pass [?ws] get an allocation-free decomposition loop. *)
let work_copy ?ws u =
  let n = Mat.rows u in
  match ws with
  | None -> Mat.copy u
  | Some ws ->
    let w = Mat.scratch ~slot:Mat.Slot.elimination ws n n in
    Mat.blit u w;
    w

let run ?ws pattern u =
  let n = Pattern.size pattern in
  if Mat.rows u <> n || Mat.cols u <> n then
    invalid_arg "Eliminate.decompose: unitary size does not match pattern";
  let work = work_copy ?ws u in
  let elements = ref [] in
  List.iter
    (fun (row, pairs) ->
       List.iter
         (fun (m, cn) ->
            let rotation = Givens.eliminate work ~row ~m ~n:cn in
            Obs.Counter.incr c_eliminations;
            elements := { Plan.rotation; row } :: !elements)
         pairs)
    (Pattern.full_schedule pattern);
  (work, Array.of_list (List.rev !elements))

let decompose ?ws pattern u =
  let work, elements = run ?ws pattern u in
  Obs.Counter.incr c_decompositions;
  Obs.Counter.incr c_beamsplitters ~by:(Array.length elements);
  if Obs.enabled () then
    Array.iter
      (fun e -> Obs.Histo.observe h_angles (Float.abs (Givens.theta e.Plan.rotation)))
      elements;
  let n = Pattern.size pattern in
  let lambda =
    Array.init n (fun i ->
        let d = Mat.get work i i in
        let modulus = Cx.abs d in
        (* Diagonal entries of a fully eliminated unitary are unit-modulus;
           normalize away rounding drift. *)
        if modulus < 0.5 then
          invalid_arg "Eliminate.decompose: input does not appear unitary";
        Cx.scale (1. /. modulus) d)
  in
  { Plan.modes = n; elements; lambda }

let decompose_baseline ?ws u = decompose ?ws (Pattern.chain (Mat.rows u)) u

let residual_off_diagonal ?ws u pattern =
  let work, _ = run ?ws pattern u in
  let n = Mat.rows work in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then worst := Float.max !worst (Cx.abs (Mat.get work i j))
    done
  done;
  !worst
