module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Givens = Bose_linalg.Givens
module Pattern = Bose_hardware.Pattern
module Obs = Bose_obs.Obs

let c_eliminations = Obs.Counter.make "decomp.eliminations"
let c_decompositions = Obs.Counter.make "decomp.decompositions"
let c_beamsplitters = Obs.Counter.make "decomp.beamsplitters"

let h_angles =
  Obs.Histo.make "decomp.rotation_angles"
    ~bounds:[| 1e-4; 1e-3; 0.01; 0.05; 0.1; 0.2; 0.5; 1.0 |]

(* The work matrix comes from the workspace when one is supplied
   ([Mat.Slot.elimination] by convention, see docs/ARCHITECTURE.md);
   callers that pass [?ws] get an allocation-free decomposition loop. *)
let work_copy ?ws u =
  let n = Mat.rows u in
  match ws with
  | None -> Mat.copy u
  | Some ws ->
    let w = Mat.scratch ~slot:Mat.Slot.elimination ws n n in
    Mat.blit u w;
    w

(* Every rotation of a stage derives from and updates the stage's own
   row, so the fused engine runs the derivations serially on that one
   row (through the same sweep kernel, keeping serial- and bulk-phase
   arithmetic identical), then applies the whole packed stage to every
   other row in one pool-chunked bulk pass. Stage order is a barrier:
   the next stage's derivations read rows the bulk pass just updated.
   Engine selection is by size only — never pool presence — so plan
   bits at a given N are the same at every job count. *)
let fused_threshold = Mat.blocking_threshold

let run_fused ?pool work n schedule elements =
  let seq = Mat.Rotseq.create ~capacity:n () in
  List.iter
    (fun (row, pairs) ->
       Mat.Rotseq.clear seq;
       List.iter
         (fun (m, cn) ->
            let rotation = Givens.solve work ~row ~m ~n:cn in
            if not (Givens.is_identity rotation) then begin
              let len = Mat.Rotseq.length seq in
              Givens.seq_push_t_dagger_right seq rotation ~nrows:n;
              Mat.sweep_cols_pre work seq ~rot_lo:len ~rot_hi:(len + 1) ~row_lo:row
                ~row_hi:(row + 1);
              Mat.set work row m Cx.zero
            end;
            Obs.Counter.incr c_eliminations;
            elements := { Plan.rotation; row } :: !elements)
         pairs;
       let len = Mat.Rotseq.length seq in
       if len > 0 then
         (* All rows but the derivation row, which the serial walk
            already updated; a chunk straddling it splits in two. *)
         Bose_par.Pool.bulk_iter pool ~n (fun ~lo ~hi ->
             let sweep row_lo row_hi =
               if row_hi > row_lo then
                 Mat.sweep_cols_pre work seq ~rot_lo:0 ~rot_hi:len ~row_lo ~row_hi
             in
             if hi <= row || lo > row then sweep lo hi
             else begin
               sweep lo row;
               sweep (row + 1) hi
             end))
    schedule

let run ?ws ?pool pattern u =
  let n = Pattern.size pattern in
  if Mat.rows u <> n || Mat.cols u <> n then
    invalid_arg "Eliminate.decompose: unitary size does not match pattern";
  let work = work_copy ?ws u in
  let elements = ref [] in
  let schedule = Pattern.full_schedule pattern in
  if n >= fused_threshold then run_fused ?pool work n schedule elements
  else
    List.iter
      (fun (row, pairs) ->
         List.iter
           (fun (m, cn) ->
              let rotation = Givens.eliminate work ~row ~m ~n:cn in
              Obs.Counter.incr c_eliminations;
              elements := { Plan.rotation; row } :: !elements)
           pairs)
      schedule;
  (work, Array.of_list (List.rev !elements))

let decompose ?ws ?pool pattern u =
  let work, elements = run ?ws ?pool pattern u in
  Obs.Counter.incr c_decompositions;
  Obs.Counter.incr c_beamsplitters ~by:(Array.length elements);
  if Obs.enabled () then
    Array.iter
      (fun e -> Obs.Histo.observe h_angles (Float.abs (Givens.theta e.Plan.rotation)))
      elements;
  let n = Pattern.size pattern in
  let lambda =
    Array.init n (fun i ->
        let d = Mat.get work i i in
        let modulus = Cx.abs d in
        (* Diagonal entries of a fully eliminated unitary are unit-modulus;
           normalize away rounding drift. *)
        if modulus < 0.5 then
          invalid_arg "Eliminate.decompose: input does not appear unitary";
        Cx.scale (1. /. modulus) d)
  in
  { Plan.modes = n; elements; lambda }

let decompose_baseline ?ws ?pool u = decompose ?ws ?pool (Pattern.chain (Mat.rows u)) u

let residual_off_diagonal ?ws u pattern =
  let work, _ = run ?ws pattern u in
  let n = Mat.rows work in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then worst := Float.max !worst (Cx.abs (Mat.get work i j))
    done
  done;
  !worst
