module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Givens = Bose_linalg.Givens
module Pattern = Bose_hardware.Pattern

let run pattern u =
  let n = Pattern.size pattern in
  if Mat.rows u <> n || Mat.cols u <> n then
    invalid_arg "Eliminate.decompose: unitary size does not match pattern";
  let work = Mat.copy u in
  let elements = ref [] in
  List.iter
    (fun (row, pairs) ->
       List.iter
         (fun (m, cn) ->
            let rotation = Givens.eliminate work ~row ~m ~n:cn in
            elements := { Plan.rotation; row } :: !elements)
         pairs)
    (Pattern.full_schedule pattern);
  (work, Array.of_list (List.rev !elements))

let decompose pattern u =
  let work, elements = run pattern u in
  let n = Pattern.size pattern in
  let lambda =
    Array.init n (fun i ->
        let d = Mat.get work i i in
        let modulus = Cx.abs d in
        (* Diagonal entries of a fully eliminated unitary are unit-modulus;
           normalize away rounding drift. *)
        if modulus < 0.5 then
          invalid_arg "Eliminate.decompose: input does not appear unitary";
        Cx.scale (1. /. modulus) d)
  in
  { Plan.modes = n; elements; lambda }

let decompose_baseline u = decompose (Pattern.chain (Mat.rows u)) u

let residual_off_diagonal u pattern =
  let work, _ = run pattern u in
  let n = Mat.rows work in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then worst := Float.max !worst (Cx.abs (Mat.get work i j))
    done
  done;
  !worst
