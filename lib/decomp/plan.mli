(** Decomposition plans: the ordered MZI rotations and final phases that
    realize an interferometer unitary (paper Eq. 1),
    [U = Λ · T_K ⋯ T_2 · T_1].

    A plan remembers each rotation together with the matrix row whose
    entry it eliminated; dropping a beamsplitter means setting that
    rotation's θ to zero (its phase shifter survives) and the
    approximated unitary is rebuilt exactly by replaying the product —
    the paper's compile-time approximation-effect reasoning (§VI). *)

type element = {
  rotation : Bose_linalg.Givens.rotation;
  row : int;  (** Matrix row this elimination zeroed (0-indexed). *)
}

type t = {
  modes : int;
  elements : element array;  (** In elimination order. *)
  lambda : Bose_linalg.Cx.t array;  (** Diagonal of Λ, unit-modulus. *)
}

val rotation_count : t -> int
(** N(N-1)/2 for a full decomposition. *)

val angles : t -> float array
(** |θ| of every rotation, in elimination order. *)

val small_angle_count : t -> threshold:float -> int
(** How many rotations satisfy |θ| < threshold — the quantity both
    optimizations try to maximize (paper §V-D uses θ < 0.1). *)

val reconstruct : ?pool:Bose_par.Pool.t -> ?kept:bool array -> t -> Bose_linalg.Mat.t
(** Replay [Λ · T_K ⋯ T_1]. With [kept], rotations flagged [false] are
    replayed with θ = 0 (beamsplitter dropped, phase kept), giving the
    approximated unitary U_app of §VI.

    At modes ≥ [Mat.blocking_threshold] the replay packs the whole
    rotation string into one fused sweep and row-chunks it across
    [?pool]. Engine choice depends only on the plan size, so the
    replayed bits are identical at every pool size. *)

val reconstruct_into :
  ?pool:Bose_par.Pool.t -> ?kept:bool array -> dst:Bose_linalg.Mat.t -> t -> unit
(** {!reconstruct} into a caller-owned [dst] (modes×modes, overwritten)
    — the allocation-free replay used by workspace-backed callers. *)

val fidelity :
  ?ws:Bose_linalg.Mat.workspace ->
  ?pool:Bose_par.Pool.t ->
  ?kept:bool array -> t -> Bose_linalg.Mat.t -> float
(** [fidelity ?kept plan u] = |tr(U_app·U†)|/N against the original.
    With [?ws] the replayed unitary lives in the workspace's slot-1
    scratch, so repeated calls (the dropout threshold search) allocate
    no matrices. [?pool] chunks the fused large-N replay. *)

type mzi_style =
  | Tunable  (** 'MZI 1': R(φ) + tunable BS(θ, 0) — two gates. *)
  | Fixed_fifty_fifty
  (** 'MZI 2': three phase shifters + two fixed 50:50 beamsplitters, for
      hardware without tunable beamsplitters (paper Fig. 2). *)

val to_circuit :
  ?style:mzi_style ->
  ?kept:bool array ->
  ?prelude:Bose_circuit.Gate.t list ->
  t ->
  Bose_circuit.Circuit.t
(** Physical gate sequence: optional state-preparation [prelude], then
    one MZI block per kept rotation in elimination order (dropped
    rotations contribute only their phase shifter), then the Λ phases.
    [style] picks the MZI realization (default {!Tunable}). *)

val save : out_channel -> t -> unit
(** Persist a plan as a line-oriented text format ("compile once, run
    the shot loop elsewhere"). Hex floats, bit-exact round-trip. *)

val to_string : t -> string
(** The exact bytes {!save} writes — the in-memory form the lint
    round-trip check (BH0405) compares against. *)

val load_result : in_channel -> (t, string * int) result
(** Inverse of {!save}. [Error (message, line)] carries the 1-based
    line the parse failed on, so callers ([bosec check], the lint file
    loaders) can surface malformed input as a structured diagnostic
    instead of an exception. *)

val of_string : string -> (t, string * int) result
(** {!load_result} over an in-memory string, dispatching on the leading
    bytes: strings opening with the binary magic ["BHBP"] parse as the
    v2 binary format (docs/SERVING.md), anything else as the text
    format. Binary parse errors report line [0]. *)

val to_binary_string : t -> string
(** The v2 binary artifact encoding: magic ["BHBP"], format version,
    dimensions, fixed 48-byte rotation records carrying the kernel
    quadruple, the Λ entries, and a trailing FNV-1a 64 checksum.
    Bit-exact round-trip through {!of_string} with no hex-float
    parsing on load — the disk cache's preferred encoding. *)

val of_bigbytes :
  Bose_linalg.Mat.bigbytes -> pos:int -> len:int -> (t, string * int) result
(** Decode a v2 binary plan from [len] bytes at [pos] of a mapped
    buffer. Same error convention as {!of_string}.
    @raise Invalid_argument when the range is out of bounds of the
    buffer itself. *)

val load : in_channel -> t
(** {!load_result} shim. @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
