module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Givens = Bose_linalg.Givens
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit

type t = {
  modes : int;
  left : Givens.rotation list;
  right : Givens.rotation list;
  lambda : Cx.t array;
}

(* Anti-diagonal k (1-based, from the bottom-left corner) holds the
   sub-diagonal entries (n-1-j, k-1-j) for j = 0 .. k-1. Odd k is
   cleared with column rotations from the right, even k with row
   rotations from the left — the zero pattern is preserved exactly as
   in Clements et al. *)
let decompose ?ws u =
  let n = Mat.rows u in
  if Mat.cols u <> n then invalid_arg "Clements.decompose: square matrices only";
  let work =
    match ws with
    | None -> Mat.copy u
    | Some ws ->
      let w = Mat.scratch ~slot:Mat.Slot.elimination ws n n in
      Mat.blit u w;
      w
  in
  let left = ref [] and right = ref [] in
  for k = 1 to n - 1 do
    (* Odd diagonals are cleared corner-first (j ascending) so earlier
       zeros in the two touched columns are already in place; even
       diagonals are cleared top-first (j descending) for the same
       reason on the two touched rows. *)
    for idx = 0 to k - 1 do
      let j = if k mod 2 = 1 then idx else k - 1 - idx in
      let row = n - 1 - j and col = k - 1 - j in
      (* Entry (r, c) of the lower triangle is cleared in sweep
         n − r + c, so when (row, col) is up, everything below it in
         columns col/col+1 and left of it in rows row/row−1 belongs to
         an earlier sweep (or an earlier step of this one) and is
         already zero — the rotations need not touch those entries. *)
      if k mod 2 = 1 then
        (* Zero work(row, col) against column col+1 from the right. *)
        right :=
          Givens.eliminate ~nrows:(row + 1) work ~row ~m:col ~n:(col + 1) :: !right
      else
        (* Zero work(row, col) against row row-1 from the left. *)
        left :=
          Givens.eliminate_left ~first:col work ~col ~m:row ~n:(row - 1) :: !left
    done
  done;
  let lambda =
    Array.init n (fun i ->
        let d = Mat.get work i i in
        let modulus = Cx.abs d in
        if modulus < 0.5 then invalid_arg "Clements.decompose: input does not appear unitary";
        Cx.scale (1. /. modulus) d)
  in
  { modes = n; left = List.rev !left; right = List.rev !right; lambda }

let reconstruct t =
  let u = Mat.create t.modes t.modes in
  Array.iteri (fun i lam -> Mat.set u i i lam) t.lambda;
  (* D · R_p ⋯ R_1: right-multiply by the rights in reverse order. *)
  List.iter (fun r -> Givens.apply_t_right u r) (List.rev t.right);
  (* L_1† ⋯ L_q† · (…): apply L_q† first so that L_1† ends up
     outermost. *)
  List.iter (fun r -> Givens.apply_t_dagger_left u r) (List.rev t.left);
  u

let rotation_count t = List.length t.left + List.length t.right

let angles t =
  Array.of_list
    (List.map (fun r -> Float.abs (Givens.theta r)) (t.left @ t.right))

let to_circuit ?(prelude = []) t =
  let c = ref (Circuit.add_all (Circuit.create ~modes:t.modes) prelude) in
  (* U = A·D·B with B = R_p⋯R_1 applied first: light passes the right
     group in list order R_1 … R_p. *)
  List.iter
    (fun r ->
       c :=
         Circuit.add_all !c
           (Gate.mzi ~m:r.Givens.m ~n:r.Givens.n ~theta:(Givens.theta r) ~phi:(Givens.phi r)))
    t.right;
  Array.iteri (fun i lam -> c := Circuit.add !c (Gate.Phase (i, Cx.arg lam))) t.lambda;
  (* Then A = L_1†⋯L_q†: passing through L_q† first. Each T† is the
     reversed MZI: BS(−θ, 0) then R(−φ). *)
  List.iter
    (fun r ->
       c :=
         Circuit.add_all !c
           [ Gate.Beamsplitter (r.Givens.m, r.Givens.n, -.(Givens.theta r), 0.);
             Gate.Phase (r.Givens.m, -.(Givens.phi r)) ])
    (List.rev t.left);
  !c
