module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Givens = Bose_linalg.Givens
module Pool = Bose_par.Pool
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit

type t = {
  modes : int;
  left : Givens.rotation list;
  right : Givens.rotation list;
  lambda : Cx.t array;
}

(* Engine selection is by size only — never by pool presence — so the
   plan bits at a given N are identical at every job count, pool or
   no pool (the determinism contract, docs/ARCHITECTURE.md). The
   fused engine pays one Rotseq and a serial derivation walk per
   sweep; below the threshold that overhead is not worth it and the
   legacy per-rotation loop stays bit-exact with earlier releases. *)
let fused_threshold = Mat.blocking_threshold

(* Legacy per-rotation engine: one ranged kernel call per elimination. *)
let sweeps_serial work n =
  let left = ref [] and right = ref [] in
  for k = 1 to n - 1 do
    (* Odd diagonals are cleared corner-first (j ascending) so earlier
       zeros in the two touched columns are already in place; even
       diagonals are cleared top-first (j descending) for the same
       reason on the two touched rows. *)
    for idx = 0 to k - 1 do
      let j = if k mod 2 = 1 then idx else k - 1 - idx in
      let row = n - 1 - j and col = k - 1 - j in
      (* Entry (r, c) of the lower triangle is cleared in sweep
         n − r + c, so when (row, col) is up, everything below it in
         columns col/col+1 and left of it in rows row/row−1 belongs to
         an earlier sweep (or an earlier step of this one) and is
         already zero — the rotations need not touch those entries. *)
      if k mod 2 = 1 then
        (* Zero work(row, col) against column col+1 from the right. *)
        right :=
          Givens.eliminate ~nrows:(row + 1) work ~row ~m:col ~n:(col + 1) :: !right
      else
        (* Zero work(row, col) against row row-1 from the left. *)
        left :=
          Givens.eliminate_left ~first:col work ~col ~m:row ~n:(row - 1) :: !left
    done
  done;
  (!left, !right)

(* Fused engine: per sweep, derive serially along the anti-diagonal —
   each derivation row (odd sweeps) / column (even sweeps) is caught
   up with the sweep's earlier rotations just before its own — then
   apply the whole packed sweep to every remaining row/column in one
   bulk pass, chunked across the pool. Per row the element updates
   run in rotation order exactly as in the serial engine, so the two
   phases and any chunking produce identical bits. Rows ≥ n−k (odd)
   and columns < k (even) are fully handled by the serial walk: a
   sweep rotation with bound b never touches rows ≥ b / columns < b,
   mirroring the ?nrows/?first restrictions of the legacy loop. *)
let sweeps_fused ?pool work n =
  let left = ref [] and right = ref [] in
  let seq = Mat.Rotseq.create ~capacity:n () in
  for k = 1 to n - 1 do
    Mat.Rotseq.clear seq;
    if k mod 2 = 1 then begin
      for idx = 0 to k - 1 do
        let row = n - 1 - idx and col = k - 1 - idx in
        let len = Mat.Rotseq.length seq in
        Mat.sweep_cols_pre work seq ~rot_lo:0 ~rot_hi:len ~row_lo:row ~row_hi:(row + 1);
        let r = Givens.solve work ~row ~m:col ~n:(col + 1) in
        if not (Givens.is_identity r) then begin
          Givens.seq_push_t_dagger_right seq r ~nrows:(row + 1);
          Mat.sweep_cols_pre work seq ~rot_lo:len ~rot_hi:(len + 1) ~row_lo:row
            ~row_hi:(row + 1);
          Mat.set work row col Cx.zero
        end;
        right := r :: !right
      done;
      let len = Mat.Rotseq.length seq in
      if len > 0 then
        Pool.bulk_iter pool ~n:(n - k) (fun ~lo ~hi ->
            Mat.sweep_cols_pre work seq ~rot_lo:0 ~rot_hi:len ~row_lo:lo ~row_hi:hi)
    end
    else begin
      for idx = 0 to k - 1 do
        let col = idx and row = n - k + idx in
        let len = Mat.Rotseq.length seq in
        Mat.sweep_rows_pre work seq ~rot_lo:0 ~rot_hi:len ~col_lo:col ~col_hi:(col + 1);
        let r = Givens.solve_left work ~col ~m:row ~n:(row - 1) in
        if not (Givens.is_identity r) then begin
          Givens.seq_push_t_left seq r ~first:col;
          Mat.sweep_rows_pre work seq ~rot_lo:len ~rot_hi:(len + 1) ~col_lo:col
            ~col_hi:(col + 1);
          Mat.set work row col Cx.zero
        end;
        left := r :: !left
      done;
      let len = Mat.Rotseq.length seq in
      if len > 0 then
        Pool.bulk_iter pool ~n:(n - k) (fun ~lo ~hi ->
            Mat.sweep_rows_pre work seq ~rot_lo:0 ~rot_hi:len ~col_lo:(k + lo)
              ~col_hi:(k + hi))
    end
  done;
  (!left, !right)

(* Anti-diagonal k (1-based, from the bottom-left corner) holds the
   sub-diagonal entries (n-1-j, k-1-j) for j = 0 .. k-1. Odd k is
   cleared with column rotations from the right, even k with row
   rotations from the left — the zero pattern is preserved exactly as
   in Clements et al. *)
let decompose ?ws ?pool u =
  let n = Mat.rows u in
  if Mat.cols u <> n then invalid_arg "Clements.decompose: square matrices only";
  let work =
    match ws with
    | None -> Mat.copy u
    | Some ws ->
      let w = Mat.scratch ~slot:Mat.Slot.elimination ws n n in
      Mat.blit u w;
      w
  in
  let left, right =
    if n >= fused_threshold then sweeps_fused ?pool work n else sweeps_serial work n
  in
  let lambda =
    Array.init n (fun i ->
        let d = Mat.get work i i in
        let modulus = Cx.abs d in
        if modulus < 0.5 then invalid_arg "Clements.decompose: input does not appear unitary";
        Cx.scale (1. /. modulus) d)
  in
  { modes = n; left = List.rev left; right = List.rev right; lambda }

let reconstruct t =
  let u = Mat.create t.modes t.modes in
  Array.iteri (fun i lam -> Mat.set u i i lam) t.lambda;
  (* D · R_p ⋯ R_1: right-multiply by the rights in reverse order. *)
  List.iter (fun r -> Givens.apply_t_right u r) (List.rev t.right);
  (* L_1† ⋯ L_q† · (…): apply L_q† first so that L_1† ends up
     outermost. *)
  List.iter (fun r -> Givens.apply_t_dagger_left u r) (List.rev t.left);
  u

let rotation_count t = List.length t.left + List.length t.right

let angles t =
  Array.of_list
    (List.map (fun r -> Float.abs (Givens.theta r)) (t.left @ t.right))

let to_circuit ?(prelude = []) t =
  let c = ref (Circuit.add_all (Circuit.create ~modes:t.modes) prelude) in
  (* U = A·D·B with B = R_p⋯R_1 applied first: light passes the right
     group in list order R_1 … R_p. *)
  List.iter
    (fun r ->
       c :=
         Circuit.add_all !c
           (Gate.mzi ~m:r.Givens.m ~n:r.Givens.n ~theta:(Givens.theta r) ~phi:(Givens.phi r)))
    t.right;
  Array.iteri (fun i lam -> c := Circuit.add !c (Gate.Phase (i, Cx.arg lam))) t.lambda;
  (* Then A = L_1†⋯L_q†: passing through L_q† first. Each T† is the
     reversed MZI: BS(−θ, 0) then R(−φ). *)
  List.iter
    (fun r ->
       c :=
         Circuit.add_all !c
           [ Gate.Beamsplitter (r.Givens.m, r.Givens.n, -.(Givens.theta r), 0.);
             Gate.Phase (r.Givens.m, -.(Givens.phi r)) ])
    (List.rev t.left);
  !c
