(** The Clements rectangular decomposition (Clements et al. 2016) — the
    vanilla interferometer decomposition of the paper's reference [10]
    and the implementation inside Strawberry Fields.

    Sub-diagonal entries are eliminated anti-diagonal by anti-diagonal,
    alternating sides: odd anti-diagonals with column rotations applied
    from the right, even ones with row rotations from the left, giving
    [L_q ⋯ L_1 · U · R_1† ⋯ R_p† = D] and hence
    [U = L_1† ⋯ L_q† · D · R_p ⋯ R_1]. All rotations act on adjacent
    index pairs, so the mesh maps onto a line of qumodes, like the
    chain baseline. *)

type t = {
  modes : int;
  left : Bose_linalg.Givens.rotation list;  (** L_1 … L_q in application order. *)
  right : Bose_linalg.Givens.rotation list;  (** R_1 … R_p in application order. *)
  lambda : Bose_linalg.Cx.t array;  (** Diagonal of D, unit modulus. *)
}

val decompose : ?ws:Bose_linalg.Mat.workspace -> ?pool:Bose_par.Pool.t -> Bose_linalg.Mat.t -> t
(** @raise Invalid_argument on non-square or non-unitary input. Passing
    [?ws] reuses the workspace's slot-0 scratch as the elimination work
    matrix instead of allocating a fresh copy of the input.

    At N ≥ [Mat.blocking_threshold] the sweeps run on the fused engine:
    rotations of each anti-diagonal are derived serially (each
    derivation row/column caught up just in time), then the packed
    sweep is applied to all remaining rows/columns in one bulk pass,
    chunked across [?pool] when present. Engine choice depends only on
    N, so the decomposition is bit-identical at every pool size. *)

val reconstruct : t -> Bose_linalg.Mat.t
(** Replays [L_1†⋯L_q†·D·R_p⋯R_1]; equals the input to machine
    precision. *)

val rotation_count : t -> int
(** N(N−1)/2. *)

val angles : t -> float array
(** |θ| of every rotation (left then right groups). *)

val to_circuit : ?prelude:Bose_circuit.Gate.t list -> t -> Bose_circuit.Circuit.t
(** Physical gate sequence implementing the mesh: right-group MZIs,
    the D phases, then inverted left-group blocks. *)
