module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Givens = Bose_linalg.Givens
module Fnv = Bose_util.Fnv
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit
module Obs = Bose_obs.Obs

let c_bs_emitted = Obs.Counter.make "circuit.beamsplitters_emitted"
let c_bs_dropped = Obs.Counter.make "circuit.beamsplitters_dropped"

type element = { rotation : Givens.rotation; row : int }

type t = { modes : int; elements : element array; lambda : Cx.t array }

let rotation_count t = Array.length t.elements

let angles t = Array.map (fun e -> Float.abs (Givens.theta e.rotation)) t.elements

let small_angle_count t ~threshold =
  let a = angles t in
  Array.fold_left (fun acc x -> if x < threshold then acc + 1 else acc) 0 a

(* Replay Λ·T_K⋯T_1 into [dst], which must be modes×modes. Shared by
   the allocating [reconstruct] and the workspace-backed [fidelity].

   At modes ≥ [Mat.blocking_threshold] the replay is fused: the whole
   rotation string is packed once and applied through the sweep kernel,
   row-chunked across [?pool]. Unlike the elimination engines, nothing
   is derived mid-replay, so the entire string is a single commuting
   front per row; identity rotations are pushed too, mirroring the
   legacy loop which also sends them through the kernel. Engine choice
   is by size only, so replay bits never depend on the pool. *)
let fused_threshold = Mat.blocking_threshold

let reconstruct_into ?pool ?kept ~dst t =
  (match kept with
   | Some k when Array.length k <> Array.length t.elements ->
     invalid_arg "Plan.reconstruct: kept length mismatch"
   | Some _ | None -> ());
  Mat.fill_zero dst;
  Array.iteri (fun i lam -> Mat.set dst i i lam) t.lambda;
  (* U = Λ·T_K⋯T_1: right-multiply by T_K first, down to T_1. *)
  let count = Array.length t.elements in
  let masked i r =
    match kept with
    | Some k when not k.(i) -> Givens.drop_mixing r
    | Some _ | None -> r
  in
  if t.modes >= fused_threshold && count > 0 then begin
    let seq = Mat.Rotseq.create ~capacity:count () in
    for i = count - 1 downto 0 do
      Givens.seq_push_t_right seq (masked i t.elements.(i).rotation) ~nrows:t.modes
    done;
    Bose_par.Pool.bulk_iter pool ~n:t.modes (fun ~lo ~hi ->
        Mat.sweep_cols_post dst seq ~rot_lo:0 ~rot_hi:count ~row_lo:lo ~row_hi:hi)
  end
  else
    for i = count - 1 downto 0 do
      Givens.apply_t_right dst (masked i t.elements.(i).rotation)
    done

let reconstruct ?pool ?kept t =
  let u = Mat.create t.modes t.modes in
  reconstruct_into ?pool ?kept ~dst:u t;
  u

(* With [?ws], the replay target is the workspace's [Mat.Slot.replay]
   scratch ([Mat.Slot.elimination] belongs to the elimination engines),
   so the dropout search's many fidelity probes allocate no matrices
   after the first. *)
let fidelity ?ws ?pool ?kept t u =
  match ws with
  | None -> Mat.unitary_fidelity (reconstruct ?pool ?kept t) u
  | Some ws ->
    let dst = Mat.scratch ~slot:Mat.Slot.replay ws t.modes t.modes in
    reconstruct_into ?pool ?kept ~dst t;
    Mat.unitary_fidelity dst u

type mzi_style = Tunable | Fixed_fifty_fifty

let to_circuit ?(style = Tunable) ?kept ?(prelude = []) t =
  (match kept with
   | Some k when Array.length k <> Array.length t.elements ->
     invalid_arg "Plan.to_circuit: kept length mismatch"
   | Some _ | None -> ());
  let block =
    match style with Tunable -> Gate.mzi | Fixed_fifty_fifty -> Gate.mzi2
  in
  let c = Circuit.add_all (Circuit.create ~modes:t.modes) prelude in
  let c = ref c in
  Array.iteri
    (fun i { rotation; _ } ->
       let m = rotation.Givens.m and n = rotation.Givens.n in
       let keep = match kept with Some k -> k.(i) | None -> true in
       if keep then begin
         Obs.Counter.incr c_bs_emitted;
         c :=
           Circuit.add_all !c
             (block ~m ~n ~theta:(Givens.theta rotation) ~phi:(Givens.phi rotation))
       end
       else begin
         Obs.Counter.incr c_bs_dropped;
         c := Circuit.add !c (Gate.Phase (m, Givens.phi rotation))
       end)
    t.elements;
  Array.iteri (fun i lam -> c := Circuit.add !c (Gate.Phase (i, Cx.arg lam))) t.lambda;
  !c

(* Line-oriented text serialization:
     plan <modes> <rotations>
     r <row> <m> <n> <c> <s> <ere> <eim>   (one per rotation, in order)
     l <re> <im>                           (one per Λ entry)
   Rotations are stored in their kernel form (cos θ, sin θ, e^{iφ}) —
   the same four numbers replay consumes — and floats are printed with
   %h (hex floats) so the roundtrip is bit-exact. *)
let to_string t =
  let buf = Buffer.create (64 + (Array.length t.elements * 64)) in
  Buffer.add_string buf (Printf.sprintf "plan %d %d\n" t.modes (Array.length t.elements));
  Array.iter
    (fun { rotation = { Givens.m; n; c; s; ere; eim }; row } ->
       Buffer.add_string buf (Printf.sprintf "r %d %d %d %h %h %h %h\n" row m n c s ere eim))
    t.elements;
  Array.iter
    (fun (lam : Cx.t) -> Buffer.add_string buf (Printf.sprintf "l %h %h\n" lam.re lam.im))
    t.lambda;
  Buffer.contents buf

let save oc t = output_string oc (to_string t)

(* The parse never raises on malformed input: every line failure is
   surfaced as [Error (message, 1-based line)] so bosec/lint can turn
   it into a BH0801 diagnostic rather than dying on an exception. *)
let parse_lines line =
  let lineno = ref 0 in
  let exception Bad of string * int in
  let fail msg = raise (Bad (msg, !lineno)) in
  let next () =
    incr lineno;
    match line () with Some l -> l | None -> fail "truncated input"
  in
  try
    let modes, count =
      try Scanf.sscanf (next ()) "plan %d %d" (fun a b -> (a, b))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail "bad header"
    in
    if modes <= 0 || count < 0 then fail "bad header values";
    let elements =
      Array.init count (fun _ ->
          try
            Scanf.sscanf (next ()) "r %d %d %d %h %h %h %h"
              (fun row m n c s ere eim ->
                 { rotation = { Givens.m; n; c; s; ere; eim }; row })
          with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail "bad rotation line")
    in
    let lambda =
      Array.init modes (fun _ ->
          try Scanf.sscanf (next ()) "l %h %h" Cx.make
          with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail "bad lambda line")
    in
    Ok { modes; elements; lambda }
  with Bad (msg, l) -> Error (msg, l)

let load_result ic =
  parse_lines (fun () -> try Some (input_line ic) with End_of_file -> None)

(* Binary artifact format v2 (docs/SERVING.md), the plan-side sibling
   of Unitary's "BHBU" layout. Fixed little-endian fields, no parsing:
     bytes 0..3   magic "BHBP"
     byte  4      format version (0x02)
     bytes 5..7   zero padding
     bytes 8..11  modes (u32 LE)
     bytes 12..15 rotation count (u32 LE)
     then count × 48-byte elements
                  { row i32, m i32, n i32, pad i32, c f64, s f64,
                    ere f64, eim f64 }   — the kernel quadruple, same
                  numbers the text format's "r" lines carry
     then modes × 16-byte Λ entries { re f64, im f64 }
     last 8       FNV-1a 64 over all preceding bytes (u64 LE)
   Text plans keep their "plan" first line, so [of_string] dispatches
   on the magic and old artifacts keep loading. *)
let binary_magic = "BHBP"
let binary_format_version = 2
let binary_header_bytes = 16
let element_bytes = 48
let lambda_bytes = 16
let max_binary_dim = 1 lsl 20

let binary_size ~modes ~count =
  binary_header_bytes + (element_bytes * count) + (lambda_bytes * modes) + 8

let to_binary_string t =
  let count = Array.length t.elements in
  let buf = Buffer.create (binary_size ~modes:t.modes ~count) in
  Buffer.add_string buf binary_magic;
  Buffer.add_uint8 buf binary_format_version;
  Buffer.add_string buf "\000\000\000";
  Buffer.add_int32_le buf (Int32.of_int t.modes);
  Buffer.add_int32_le buf (Int32.of_int count);
  let f64 x = Buffer.add_int64_le buf (Int64.bits_of_float x) in
  Array.iter
    (fun { rotation = { Givens.m; n; c; s; ere; eim }; row } ->
       Buffer.add_int32_le buf (Int32.of_int row);
       Buffer.add_int32_le buf (Int32.of_int m);
       Buffer.add_int32_le buf (Int32.of_int n);
       Buffer.add_int32_le buf 0l;
       f64 c;
       f64 s;
       f64 ere;
       f64 eim)
    t.elements;
  Array.iter
    (fun (lam : Cx.t) ->
       f64 lam.Complex.re;
       f64 lam.Complex.im)
    t.lambda;
  Buffer.add_int64_le buf (Fnv.string Fnv.seed (Buffer.contents buf));
  Buffer.contents buf

let has_binary_magic s =
  String.length s >= 4 && String.sub s 0 4 = binary_magic

(* Binary parse errors report line 0 — there are no lines to point at,
   and 0 cannot collide with a 1-based text line number. *)
let of_binary_string s =
  let len = String.length s in
  if len < binary_header_bytes + 8 then Error ("binary plan: truncated", 0)
  else begin
    let version = Char.code s.[4] in
    let modes = Int32.to_int (String.get_int32_le s 8) in
    let count = Int32.to_int (String.get_int32_le s 12) in
    if version <> binary_format_version then
      Error (Printf.sprintf "binary plan: unsupported version %d" version, 0)
    else if modes <= 0 || modes > max_binary_dim || count < 0 || count > max_binary_dim * 4
    then Error ("binary plan: bad header values", 0)
    else if len <> binary_size ~modes ~count then Error ("binary plan: size mismatch", 0)
    else begin
      let body = len - 8 in
      if String.get_int64_le s body <> Fnv.substring Fnv.seed s ~pos:0 ~len:body then
        Error ("binary plan: checksum mismatch", 0)
      else begin
        let i32 pos = Int32.to_int (String.get_int32_le s pos) in
        let f64 pos = Int64.float_of_bits (String.get_int64_le s pos) in
        let elements =
          Array.init count (fun i ->
              let p = binary_header_bytes + (element_bytes * i) in
              {
                rotation =
                  {
                    Givens.m = i32 (p + 4);
                    n = i32 (p + 8);
                    c = f64 (p + 16);
                    s = f64 (p + 24);
                    ere = f64 (p + 32);
                    eim = f64 (p + 40);
                  };
                row = i32 p;
              })
        in
        let lbase = binary_header_bytes + (element_bytes * count) in
        let lambda =
          Array.init modes (fun i ->
              let p = lbase + (lambda_bytes * i) in
              Cx.make (f64 p) (f64 (p + 8)))
        in
        Ok { modes; elements; lambda }
      end
    end
  end

let of_bigbytes ba ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim ba then
    invalid_arg "Plan.of_bigbytes: range out of bounds";
  (* Plans are header-dominated (48 bytes per rotation, no O(N²) plane
     payload), so the mmap path copies the slice out and reuses the
     fixed-field string decoder — the win over text is skipping
     hex-float parsing, not the copy. *)
  of_binary_string (Mat.bigbytes_sub_string ba ~pos ~len)

let of_string s =
  if has_binary_magic s then of_binary_string s
  else begin
    let pos = ref 0 in
    let len = String.length s in
    parse_lines (fun () ->
        if !pos >= len then None
        else begin
          let stop = match String.index_from_opt s !pos '\n' with Some i -> i | None -> len in
          let l = String.sub s !pos (stop - !pos) in
          pos := stop + 1;
          Some l
        end)
  end

let load ic =
  match load_result ic with
  | Ok t -> t
  | Error (msg, l) -> failwith (Printf.sprintf "Plan.load: %s (line %d)" msg l)

let pp fmt t =
  Format.fprintf fmt "@[<v>plan on %d modes, %d rotations@," t.modes (Array.length t.elements);
  Array.iter
    (fun { rotation; row } ->
       Format.fprintf fmt "  row %d: T(%d,%d) theta=%.4f phi=%.4f@," row
         rotation.Givens.m rotation.Givens.n (Givens.theta rotation)
         (Givens.phi rotation))
    t.elements;
  Format.fprintf fmt "@]"
