(** Zero-dependency telemetry for the Bosehedral pipeline: span timers,
    counters, gauges and angle histograms, collected into a per-run
    {!Report.t} that renders as a human-readable table or as JSON.

    Design constraints (see docs/METRICS.md for the full metric list):

    - {b Off by default, near-zero cost when off.} Every recording
      entry point first reads one [bool ref]; when disabled, a counter
      bump is a single branch and {!Span.with_} is a tail call to its
      thunk. Hot loops ([Hafnian], [Permanent]) are therefore safe to
      instrument unconditionally.
    - {b No dependencies.} Only the OCaml standard library, so every
      layer of the repo — including [bose_linalg] consumers — may link
      against it. The default clock is [Sys.time] (process CPU time,
      monotone non-decreasing); binaries that link [unix] should
      install a wall clock with {!set_clock} for truthful span times.
    - {b Deterministic program output.} Telemetry never draws
      randomness and never alters control flow: a run with telemetry
      enabled produces byte-identical circuits to a disabled run
      (pinned by [test/test_obs.ml]).

    Metrics are registered once (first [make]) in a global registry and
    accumulate until {!reset}. Names are dotted paths,
    [<area>.<metric>], e.g. ["decomp.eliminations"]. *)

val enable : unit -> unit
(** Turn recording on. Does not clear previously recorded values. *)

val disable : unit -> unit
(** Turn recording off; registered metrics keep their values. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric (counters, gauges, histograms, spans).
    Registration survives: the metric set of a later {!Report.capture}
    is unchanged. *)

val registered : unit -> string list
(** Names of every counter, gauge and histogram registered so far
    (sorted, deduplicated). Spans are excluded — they register on first
    close, not at module load. Powers the doc-consistency gate
    ([test/check_docs.ml]) that keeps docs/METRICS.md from rotting. *)

val set_clock : (unit -> float) -> unit
(** Replace the span clock (seconds, monotone non-decreasing). Default
    is [Sys.time]. *)

val now : unit -> float
(** Read the installed clock — the time base spans are recorded in.
    Exposed so other instrumentation (the [bose_par] pool's idle-time
    gauge, benchmark wall-clock rows) shares the span time base. *)

val on_span_close :
  (name:string -> depth:int -> elapsed_s:float -> unit) option ref
(** Live-trace hook: called as each enabled span closes, with its
    nesting depth at open time. Used by [bosec --trace]. *)

module Counter : sig
  type t

  val make : string -> t
  (** Register (or look up — [make] is idempotent per name) a counter.
      Intended for top-level [let]s in instrumented modules, so hot
      paths pay no lookup. *)

  val incr : ?by:int -> t -> unit
  (** No-op while disabled. [by] defaults to 1. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val make : string -> t

  val set : t -> float -> unit
  (** Record the latest value. No-op while disabled. *)

  val observe_max : t -> float -> unit
  (** Keep the maximum of the recorded values — e.g. the largest
      hafnian submatrix dimension seen. No-op while disabled. *)

  val value : t -> float option
  (** [None] until the first [set]/[observe_max] after a {!reset}. *)
end

module Histo : sig
  type t

  val make : string -> bounds:float array -> t
  (** Fixed buckets: value [v] lands in the first bucket with
      [v <= bounds.(i)], or in the overflow bucket past the last bound.
      [bounds] must be strictly increasing.
      @raise Invalid_argument otherwise. *)

  val observe : t -> float -> unit
  (** No-op while disabled. *)

  val total : t -> int
end

module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ "compile.map" f] times [f ()] on the installed clock and
      accumulates (count, total, max) under the span name; nesting is
      tracked so reports can indent. Exceptions propagate, the span
      still closes. When disabled this is exactly [f ()]. *)
end

(** Per-domain collectors for parallel sections.

    The global registries are single-domain mutable state; a pool
    worker must never record into them directly. Instead the pool owner
    creates one {!Local.sink} per worker, each worker {!Local.install}s
    its sink (domain-local storage) so that {e every} recording entry
    point — counters, gauges, histograms, spans — routes into it, and
    after the join barrier the owner {!Local.merge}s the sinks into the
    global registry. Recording stays lock-free; the only added cost
    while enabled is one domain-local read per record.

    Merge semantics: counters and histograms add; [Gauge.set] values
    overwrite in merge order while [Gauge.observe_max] values max;
    spans add count/total and max the max. Worker-side span nesting
    depths are relative to the sink (0 = the task's outermost span),
    and the {!on_span_close} live-trace hook fires only for
    owner-domain spans. Metric registration ([make]) must still happen
    on the main domain — the repo's top-level [let] registration idiom
    guarantees this. *)
module Local : sig
  type sink

  val create : unit -> sink
  (** Fresh empty sink (owner side, one per worker domain). *)

  val install : sink -> unit
  (** Route this domain's recording into [sink] (worker side, before
      running tasks). *)

  val uninstall : unit -> unit
  (** Restore direct global recording for this domain. *)

  val installed : unit -> bool

  val merge : sink -> unit
  (** Fold a quiesced sink into the global registry and reset it.
      Owner side, after the join barrier — never while the sink's
      worker may still record. *)
end

module Report : sig
  type span = {
    name : string;
    count : int;
    total_s : float;
    max_s : float;
    depth : int;  (** Nesting depth at first open (0 = top level). *)
  }

  type histogram = {
    name : string;
    bounds : float array;
    counts : int array;  (** [Array.length bounds + 1]: last = overflow. *)
    sum : float;
  }

  type t = {
    spans : span list;
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : histogram list;
  }
  (** Every list is sorted by name. [counters] includes registered
      counters that are still zero (the schema is stable across runs of
      the same binary); [gauges] and [histograms] include only metrics
      that recorded at least one value, and [spans] only spans that
      closed at least once. *)

  val capture : unit -> t
  (** Snapshot the registry (whether or not recording is enabled). *)

  val is_empty : t -> bool
  (** No span closed, no counter nonzero, no gauge/histogram touched. *)

  val span : t -> string -> span option

  val counter : t -> string -> int option

  val gauge : t -> string -> float option

  val pp : Format.formatter -> t -> unit
  (** Human-readable table (spans, then counters, gauges, histograms). *)

  val to_json : t -> string
  (** The schema documented in docs/METRICS.md:
      [{"version": 1, "spans": [...], "counters": [...],
        "gauges": [...], "histograms": [...]}]. *)

  val of_json : string -> (t, string) result
  (** Inverse of {!to_json} (accepts any field order); [Error] carries
      a parse/validation message. Floats round-trip exactly: they are
      emitted as shortest-exact decimal. *)

  val write_file : string -> t -> unit
  (** Write {!to_json} (plus trailing newline) to a file. *)
end
