(* Global registry of named metrics. Everything is single-domain
   mutable state: the compiler pipeline is sequential, and the
   enabled check keeps the disabled cost to one load + branch. *)

let enabled_flag = ref false
let enable () = enabled_flag := true
let disable () = enabled_flag := false
let enabled () = !enabled_flag

(* Sys.time is process CPU time: monotone non-decreasing, available
   without unix. Binaries that link unix install gettimeofday. *)
let clock = ref Sys.time
let set_clock f = clock := f
let now () = !clock ()

let on_span_close :
  (name:string -> depth:int -> elapsed_s:float -> unit) option ref =
  ref None

(* --- Per-domain collectors ----------------------------------------

   The global registries below are plain single-domain mutable state.
   Pool workers (bose_par) therefore never touch them directly: each
   worker domain installs a [local_sink] in domain-local storage, every
   recording entry point routes to it when present, and the pool owner
   merges the sinks into the globals at the join barrier. The hot path
   stays lock-free — the only added cost while enabled is one DLS read
   per record. Metric registration ([make]) must still happen on the
   main domain (top-level [let]s, as every instrumented module does). *)

type local_gauge = { mutable lg_v : float; mutable lg_max : bool }

type local_histo = {
  lh_bounds : float array;
  lh_counts : int array;
  mutable lh_sum : float;
}

type local_span = {
  mutable ls_count : int;
  mutable ls_total_s : float;
  mutable ls_max_s : float;
  ls_depth : int;  (* depth at first open, within this sink *)
}

type local_sink = {
  l_counters : (string, int ref) Hashtbl.t;
  l_gauges : (string, local_gauge) Hashtbl.t;
  l_histos : (string, local_histo) Hashtbl.t;
  l_spans : (string, local_span) Hashtbl.t;
  mutable l_depth : int;
}

let sink_key : local_sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

module Counter = struct
  type t = { name : string; mutable v : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { name; v = 0 } in
      Hashtbl.add registry name c;
      c

  let incr ?(by = 1) c =
    if !enabled_flag then
      match Domain.DLS.get sink_key with
      | None -> c.v <- c.v + by
      | Some s ->
        (match Hashtbl.find_opt s.l_counters c.name with
         | Some r -> r := !r + by
         | None -> Hashtbl.add s.l_counters c.name (ref by))

  let value c = c.v
end

module Gauge = struct
  type t = { name : string; mutable v : float; mutable touched : bool }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    match Hashtbl.find_opt registry name with
    | Some g -> g
    | None ->
      let g = { name; v = 0.; touched = false } in
      Hashtbl.add registry name g;
      g

  let set g x =
    if !enabled_flag then
      match Domain.DLS.get sink_key with
      | None ->
        g.v <- x;
        g.touched <- true
      | Some s ->
        (match Hashtbl.find_opt s.l_gauges g.name with
         | Some r ->
           r.lg_v <- x;
           r.lg_max <- false
         | None -> Hashtbl.add s.l_gauges g.name { lg_v = x; lg_max = false })

  let observe_max g x =
    if !enabled_flag then
      match Domain.DLS.get sink_key with
      | None ->
        if (not g.touched) || x > g.v then g.v <- x;
        g.touched <- true
      | Some s ->
        (match Hashtbl.find_opt s.l_gauges g.name with
         | Some r -> if x > r.lg_v then r.lg_v <- x
         | None -> Hashtbl.add s.l_gauges g.name { lg_v = x; lg_max = true })

  let value g = if g.touched then Some g.v else None
end

module Histo = struct
  type t = {
    name : string;
    bounds : float array;
    counts : int array;  (* length bounds + 1, last = overflow *)
    mutable sum : float;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name ~bounds =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      if Array.length bounds = 0 then invalid_arg "Obs.Histo.make: empty bounds";
      Array.iteri
        (fun i b ->
           if i > 0 && bounds.(i - 1) >= b then
             invalid_arg "Obs.Histo.make: bounds must be strictly increasing")
        bounds;
      let h =
        { name; bounds = Array.copy bounds;
          counts = Array.make (Array.length bounds + 1) 0; sum = 0. }
      in
      Hashtbl.add registry name h;
      h

  let bucket h v =
    let n = Array.length h.bounds in
    let rec find i = if i >= n || v <= h.bounds.(i) then i else find (i + 1) in
    find 0

  let observe h v =
    if !enabled_flag then
      match Domain.DLS.get sink_key with
      | None ->
        let b = bucket h v in
        h.counts.(b) <- h.counts.(b) + 1;
        h.sum <- h.sum +. v
      | Some s ->
        let r =
          match Hashtbl.find_opt s.l_histos h.name with
          | Some r -> r
          | None ->
            let r =
              { lh_bounds = h.bounds;
                lh_counts = Array.make (Array.length h.bounds + 1) 0; lh_sum = 0. }
            in
            Hashtbl.add s.l_histos h.name r;
            r
        in
        let b = bucket h v in
        r.lh_counts.(b) <- r.lh_counts.(b) + 1;
        r.lh_sum <- r.lh_sum +. v

  let total h = Array.fold_left ( + ) 0 h.counts
end

module Span = struct
  type entry = {
    name : string;
    mutable count : int;
    mutable total_s : float;
    mutable max_s : float;
    depth : int;  (* depth at first open *)
  }

  let registry : (string, entry) Hashtbl.t = Hashtbl.create 32
  let depth_now = ref 0

  let entry_for name depth =
    match Hashtbl.find_opt registry name with
    | Some e -> e
    | None ->
      let e = { name; count = 0; total_s = 0.; max_s = 0.; depth } in
      Hashtbl.add registry name e;
      e

  let close name d t0 =
    let dt = !clock () -. t0 in
    decr depth_now;
    let e = entry_for name d in
    e.count <- e.count + 1;
    e.total_s <- e.total_s +. dt;
    if dt > e.max_s then e.max_s <- dt;
    match !on_span_close with
    | Some hook -> hook ~name ~depth:d ~elapsed_s:dt
    | None -> ()

  (* Worker-side spans accumulate into the sink; the live-trace hook
     ([on_span_close]) fires only for owner-domain spans. *)
  let close_local (s : local_sink) name d t0 =
    let dt = !clock () -. t0 in
    s.l_depth <- s.l_depth - 1;
    let e =
      match Hashtbl.find_opt s.l_spans name with
      | Some e -> e
      | None ->
        let e = { ls_count = 0; ls_total_s = 0.; ls_max_s = 0.; ls_depth = d } in
        Hashtbl.add s.l_spans name e;
        e
    in
    e.ls_count <- e.ls_count + 1;
    e.ls_total_s <- e.ls_total_s +. dt;
    if dt > e.ls_max_s then e.ls_max_s <- dt

  let with_ name f =
    if not !enabled_flag then f ()
    else
      match Domain.DLS.get sink_key with
      | None ->
        let d = !depth_now in
        incr depth_now;
        let t0 = !clock () in
        (match f () with
         | v -> close name d t0; v
         | exception e -> close name d t0; raise e)
      | Some s ->
        let d = s.l_depth in
        s.l_depth <- d + 1;
        let t0 = !clock () in
        (match f () with
         | v -> close_local s name d t0; v
         | exception e -> close_local s name d t0; raise e)
end

let reset () =
  Hashtbl.iter (fun _ (c : Counter.t) -> c.Counter.v <- 0) Counter.registry;
  Hashtbl.iter
    (fun _ (g : Gauge.t) ->
       g.Gauge.v <- 0.;
       g.Gauge.touched <- false)
    Gauge.registry;
  Hashtbl.iter
    (fun _ (h : Histo.t) ->
       Array.fill h.Histo.counts 0 (Array.length h.Histo.counts) 0;
       h.Histo.sum <- 0.)
    Histo.registry;
  Hashtbl.iter
    (fun _ (e : Span.entry) ->
       e.Span.count <- 0;
       e.Span.total_s <- 0.;
       e.Span.max_s <- 0.)
    Span.registry;
  Span.depth_now := 0

module Local = struct
  type sink = local_sink

  let create () =
    {
      l_counters = Hashtbl.create 16;
      l_gauges = Hashtbl.create 16;
      l_histos = Hashtbl.create 8;
      l_spans = Hashtbl.create 16;
      l_depth = 0;
    }

  let install s = Domain.DLS.set sink_key (Some s)
  let uninstall () = Domain.DLS.set sink_key None
  let installed () = Option.is_some (Domain.DLS.get sink_key)

  (* Fold a quiesced sink into the global registry, then reset it for
     the next batch. Counters and histograms add; [set] gauges take the
     sink's value (merge order decides ties), [observe_max] gauges max;
     spans accumulate count/total and max the max. *)
  let merge s =
    Hashtbl.iter
      (fun name r ->
         let c = Counter.make name in
         c.Counter.v <- c.Counter.v + !r)
      s.l_counters;
    Hashtbl.iter
      (fun name (r : local_gauge) ->
         let g = Gauge.make name in
         if r.lg_max then begin
           if (not g.Gauge.touched) || r.lg_v > g.Gauge.v then g.Gauge.v <- r.lg_v
         end
         else g.Gauge.v <- r.lg_v;
         g.Gauge.touched <- true)
      s.l_gauges;
    Hashtbl.iter
      (fun name (r : local_histo) ->
         let h = Histo.make name ~bounds:r.lh_bounds in
         Array.iteri
           (fun i c -> h.Histo.counts.(i) <- h.Histo.counts.(i) + c)
           r.lh_counts;
         h.Histo.sum <- h.Histo.sum +. r.lh_sum)
      s.l_histos;
    Hashtbl.iter
      (fun name (r : local_span) ->
         let e = Span.entry_for name r.ls_depth in
         e.Span.count <- e.Span.count + r.ls_count;
         e.Span.total_s <- e.Span.total_s +. r.ls_total_s;
         if r.ls_max_s > e.Span.max_s then e.Span.max_s <- r.ls_max_s)
      s.l_spans;
    Hashtbl.reset s.l_counters;
    Hashtbl.reset s.l_gauges;
    Hashtbl.reset s.l_histos;
    Hashtbl.reset s.l_spans;
    s.l_depth <- 0
end

(* --- Minimal JSON (exactly the subset the report schema needs) ----- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
         match c with
         | '"' -> Buffer.add_string buf "\\\""
         | '\\' -> Buffer.add_string buf "\\\\"
         | '\n' -> Buffer.add_string buf "\\n"
         | '\r' -> Buffer.add_string buf "\\r"
         | '\t' -> Buffer.add_string buf "\\t"
         | c when Char.code c < 0x20 ->
           Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
         | c -> Buffer.add_char buf c)
      s

  (* Shortest decimal that parses back to the same float, so the
     to_json/of_json round-trip is exact. *)
  let float_repr x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else begin
      let s15 = Printf.sprintf "%.15g" x in
      if float_of_string s15 = x then s15 else Printf.sprintf "%.17g" x
    end

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x ->
      if Float.is_nan x || Float.abs x = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr x)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
           if i > 0 then Buffer.add_char buf ',';
           emit buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
           if i > 0 then Buffer.add_char buf ',';
           Buffer.add_char buf '"';
           escape buf k;
           Buffer.add_string buf "\":";
           emit buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 1024 in
    emit buf t;
    Buffer.contents buf

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with Failure _ -> fail "bad \\u escape"
             in
             (* Report names are ASCII; decode BMP codepoints as UTF-8. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some x -> x
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member name = function
    | Obj fields -> List.assoc_opt name fields
    | _ -> None
end

module Report = struct
  type span = {
    name : string;
    count : int;
    total_s : float;
    max_s : float;
    depth : int;
  }

  type histogram = {
    name : string;
    bounds : float array;
    counts : int array;
    sum : float;
  }

  type t = {
    spans : span list;
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : histogram list;
  }

  let by_name f a b = compare (f a) (f b)

  let capture () =
    let spans =
      Hashtbl.fold
        (fun _ (e : Span.entry) acc ->
           if e.Span.count = 0 then acc
           else
             { name = e.Span.name; count = e.Span.count;
               total_s = e.Span.total_s; max_s = e.Span.max_s;
               depth = e.Span.depth }
             :: acc)
        Span.registry []
      |> List.sort (by_name (fun (s : span) -> s.name))
    in
    let counters =
      Hashtbl.fold
        (fun _ (c : Counter.t) acc -> (c.Counter.name, c.Counter.v) :: acc)
        Counter.registry []
      |> List.sort (by_name fst)
    in
    let gauges =
      Hashtbl.fold
        (fun _ (g : Gauge.t) acc ->
           if g.Gauge.touched then (g.Gauge.name, g.Gauge.v) :: acc else acc)
        Gauge.registry []
      |> List.sort (by_name fst)
    in
    let histograms =
      Hashtbl.fold
        (fun _ (h : Histo.t) acc ->
           if Histo.total h = 0 then acc
           else
             { name = h.Histo.name; bounds = Array.copy h.Histo.bounds;
               counts = Array.copy h.Histo.counts; sum = h.Histo.sum }
             :: acc)
        Histo.registry []
      |> List.sort (by_name (fun (h : histogram) -> h.name))
    in
    { spans; counters; gauges; histograms }

  let is_empty t =
    t.spans = []
    && t.gauges = []
    && t.histograms = []
    && List.for_all (fun (_, v) -> v = 0) t.counters

  let span t name = List.find_opt (fun (s : span) -> s.name = name) t.spans
  let counter t name = List.assoc_opt name t.counters
  let gauge t name = List.assoc_opt name t.gauges

  let pp fmt t =
    let open Format in
    fprintf fmt "@[<v>";
    if t.spans <> [] then begin
      fprintf fmt "spans (calls, total s, max s):@,";
      List.iter
        (fun s ->
           fprintf fmt "  %s%-*s %6d  %9.4f  %9.4f@,"
             (String.make (2 * s.depth) ' ')
             (max 1 (30 - (2 * s.depth)))
             s.name s.count s.total_s s.max_s)
        t.spans
    end;
    if t.counters <> [] then begin
      fprintf fmt "counters:@,";
      List.iter (fun (n, v) -> fprintf fmt "  %-32s %10d@," n v) t.counters
    end;
    if t.gauges <> [] then begin
      fprintf fmt "gauges:@,";
      List.iter (fun (n, v) -> fprintf fmt "  %-32s %10g@," n v) t.gauges
    end;
    if t.histograms <> [] then begin
      fprintf fmt "histograms:@,";
      List.iter
        (fun h ->
           fprintf fmt "  %s (n=%d, sum=%g):@," h.name
             (Array.fold_left ( + ) 0 h.counts)
             h.sum;
           Array.iteri
             (fun i c ->
                if i < Array.length h.bounds then
                  fprintf fmt "    <= %-10g %8d@," h.bounds.(i) c
                else fprintf fmt "    >  %-10g %8d@," h.bounds.(i - 1) c)
             h.counts)
        t.histograms
    end;
    if is_empty t then fprintf fmt "(no telemetry recorded)@,";
    fprintf fmt "@]"

  let json_of t =
    let open Json in
    Obj
      [
        ("version", Num 1.);
        ( "spans",
          Arr
            (List.map
               (fun (s : span) ->
                  Obj
                    [
                      ("name", Str s.name);
                      ("count", Num (float_of_int s.count));
                      ("total_s", Num s.total_s);
                      ("max_s", Num s.max_s);
                      ("depth", Num (float_of_int s.depth));
                    ])
               t.spans) );
        ( "counters",
          Arr
            (List.map
               (fun (n, v) ->
                  Obj [ ("name", Str n); ("value", Num (float_of_int v)) ])
               t.counters) );
        ( "gauges",
          Arr
            (List.map
               (fun (n, v) -> Obj [ ("name", Str n); ("value", Num v) ])
               t.gauges) );
        ( "histograms",
          Arr
            (List.map
               (fun h ->
                  Obj
                    [
                      ("name", Str h.name);
                      ( "bounds",
                        Arr (Array.to_list (Array.map (fun b -> Num b) h.bounds)) );
                      ( "counts",
                        Arr
                          (Array.to_list
                             (Array.map (fun c -> Num (float_of_int c)) h.counts)) );
                      ("sum", Num h.sum);
                    ])
               t.histograms) );
      ]

  let to_json t = Json.to_string (json_of t)

  let of_json text =
    let open Json in
    let fail msg = Error ("Obs.Report.of_json: " ^ msg) in
    let ( let* ) r f = Result.bind r f in
    let str = function Str s -> Ok s | _ -> fail "expected string" in
    let num = function Num x -> Ok x | _ -> fail "expected number" in
    let int v =
      let* x = num v in
      if Float.is_integer x then Ok (int_of_float x) else fail "expected integer"
    in
    let field name v =
      match member name v with
      | Some x -> Ok x
      | None -> fail (Printf.sprintf "missing field %S" name)
    in
    let arr f v =
      match v with
      | Arr xs ->
        List.fold_left
          (fun acc x ->
             let* acc = acc in
             let* x = f x in
             Ok (x :: acc))
          (Ok []) xs
        |> Result.map List.rev
      | _ -> fail "expected array"
    in
    match Json.parse text with
    | exception Json.Parse_error msg -> fail msg
    | root ->
      let* version = Result.bind (field "version" root) int in
      if version <> 1 then fail (Printf.sprintf "unsupported version %d" version)
      else
        let* spans =
          Result.bind (field "spans" root)
            (arr (fun v ->
                 let* name = Result.bind (field "name" v) str in
                 let* count = Result.bind (field "count" v) int in
                 let* total_s = Result.bind (field "total_s" v) num in
                 let* max_s = Result.bind (field "max_s" v) num in
                 let* depth = Result.bind (field "depth" v) int in
                 Ok { name; count; total_s; max_s; depth }))
        in
        let* counters =
          Result.bind (field "counters" root)
            (arr (fun v ->
                 let* name = Result.bind (field "name" v) str in
                 let* value = Result.bind (field "value" v) int in
                 Ok (name, value)))
        in
        let* gauges =
          Result.bind (field "gauges" root)
            (arr (fun v ->
                 let* name = Result.bind (field "name" v) str in
                 let* value = Result.bind (field "value" v) num in
                 Ok (name, value)))
        in
        let* histograms =
          Result.bind (field "histograms" root)
            (arr (fun v ->
                 let* name = Result.bind (field "name" v) str in
                 let* bounds = Result.bind (field "bounds" v) (arr num) in
                 let* counts = Result.bind (field "counts" v) (arr int) in
                 let* sum = Result.bind (field "sum" v) num in
                 if List.length counts <> List.length bounds + 1 then
                   fail "histogram counts/bounds length mismatch"
                 else
                   Ok
                     { name; bounds = Array.of_list bounds;
                       counts = Array.of_list counts; sum }))
        in
        Ok { spans; counters; gauges; histograms }

  let write_file path t =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
         output_string oc (to_json t);
         output_char oc '\n')
end

(* The registered metric-name universe, for the doc-consistency gate
   (test/check_docs.ml): every name here must appear in docs/METRICS.md. *)
let registered () =
  let names = ref [] in
  Hashtbl.iter (fun name _ -> names := name :: !names) Counter.registry;
  Hashtbl.iter (fun name _ -> names := name :: !names) Gauge.registry;
  Hashtbl.iter (fun name _ -> names := name :: !names) Histo.registry;
  List.sort_uniq String.compare !names
