(** Simple undirected graphs for the GBS graph applications
    (dense subgraph, max clique, graph similarity). *)

type t

val create : int -> t
(** Empty graph on n vertices. *)

val vertices : t -> int
val add_edge : t -> int -> int -> t
val has_edge : t -> int -> int -> bool
val edges : t -> (int * int) list
val edge_count : t -> int
val degree : t -> int -> int
val neighbors : t -> int -> int list

val random : Bose_util.Rng.t -> n:int -> p:float -> t
(** Erdős–Rényi G(n, p) — the paper's benchmark graphs use
    p ∈ [0.7, 0.9] (§VII-A). *)

val adjacency : t -> float array array
(** 0/1 symmetric adjacency matrix. *)

val subgraph_density : t -> int list -> float
(** Edges present / edges possible within the vertex subset
    (1.0 for subsets of size < 2). *)

val is_clique : t -> int list -> bool

val subsets_of_size : int -> 'a list -> 'a list list
(** All k-element subsets, preserving order within each subset. *)

val densest_subgraph_of_size : t -> int -> int list * float
(** Brute-force densest induced subgraph with exactly k vertices
    (for ground truth at small n). @raise Invalid_argument if k exceeds
    the vertex count. *)

val max_clique_size : t -> int
(** Exact maximum clique size via branch and bound (small graphs). *)

val perturb : Bose_util.Rng.t -> t -> flips:int -> t
(** Randomly toggle [flips] distinct vertex pairs — used to build the
    graph-similarity families. *)

val pp : Format.formatter -> t -> unit
