module Rng = Bose_util.Rng

type t = { n : int; adj : bool array array }

let create n =
  if n <= 0 then invalid_arg "Graph.create: need at least one vertex";
  { n; adj = Array.make_matrix n n false }

let vertices g = g.n

let check g v name = if v < 0 || v >= g.n then invalid_arg (name ^ ": vertex out of range")

let add_edge g a b =
  check g a "Graph.add_edge";
  check g b "Graph.add_edge";
  if a = b then invalid_arg "Graph.add_edge: self-loop";
  let adj = Array.map Array.copy g.adj in
  adj.(a).(b) <- true;
  adj.(b).(a) <- true;
  { g with adj }

let has_edge g a b =
  check g a "Graph.has_edge";
  check g b "Graph.has_edge";
  g.adj.(a).(b)

let edges g =
  let acc = ref [] in
  for a = g.n - 1 downto 0 do
    for b = g.n - 1 downto a + 1 do
      if g.adj.(a).(b) then acc := (a, b) :: !acc
    done
  done;
  !acc

let edge_count g = List.length (edges g)

let degree g v =
  check g v "Graph.degree";
  Array.fold_left (fun acc e -> if e then acc + 1 else acc) 0 g.adj.(v)

let neighbors g v =
  check g v "Graph.neighbors";
  List.filter (fun w -> g.adj.(v).(w)) (List.init g.n (fun i -> i))

let random rng ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Graph.random: p out of [0,1]";
  let g = ref (create n) in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Rng.uniform rng < p then g := add_edge !g a b
    done
  done;
  !g

let adjacency g =
  Array.init g.n (fun i -> Array.init g.n (fun j -> if g.adj.(i).(j) then 1. else 0.))

let subgraph_density g vs =
  let vs = List.sort_uniq compare vs in
  List.iter (fun v -> check g v "Graph.subgraph_density") vs;
  let k = List.length vs in
  if k < 2 then 1.
  else begin
    let present = ref 0 in
    List.iter
      (fun a -> List.iter (fun b -> if a < b && g.adj.(a).(b) then incr present) vs)
      vs;
    float_of_int !present /. (float_of_int (k * (k - 1)) /. 2.)
  end

let is_clique g vs =
  let vs = List.sort_uniq compare vs in
  List.for_all (fun a -> List.for_all (fun b -> a = b || g.adj.(a).(b)) vs) vs

(* Enumerate k-subsets recursively; n is small in every use. *)
let rec subsets_of_size k from =
  if k = 0 then [ [] ]
  else
    match from with
    | [] -> []
    | x :: rest ->
      List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest) @ subsets_of_size k rest

let densest_subgraph_of_size g k =
  if k > g.n || k < 1 then invalid_arg "Graph.densest_subgraph_of_size: bad size";
  let all = subsets_of_size k (List.init g.n (fun i -> i)) in
  List.fold_left
    (fun (best, best_d) s ->
       let d = subgraph_density g s in
       if d > best_d then (s, d) else (best, best_d))
    ([], -1.) all

let max_clique_size g =
  (* Branch and bound over vertices in order. *)
  let best = ref 0 in
  let rec grow clique candidates =
    if List.length clique > !best then best := List.length clique;
    match candidates with
    | [] -> ()
    | v :: rest ->
      if List.length clique + List.length candidates > !best then begin
        (* Include v. *)
        let compatible = List.filter (fun w -> g.adj.(v).(w)) rest in
        grow (v :: clique) compatible;
        (* Exclude v. *)
        grow clique rest
      end
  in
  grow [] (List.init g.n (fun i -> i));
  !best

let perturb rng g ~flips =
  let pairs = ref [] in
  for a = 0 to g.n - 1 do
    for b = a + 1 to g.n - 1 do
      pairs := (a, b) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  Rng.shuffle rng pairs;
  let flips = min flips (Array.length pairs) in
  let adj = Array.map Array.copy g.adj in
  for i = 0 to flips - 1 do
    let a, b = pairs.(i) in
    adj.(a).(b) <- not adj.(a).(b);
    adj.(b).(a) <- not adj.(b).(a)
  done;
  { g with adj }

let pp fmt g =
  Format.fprintf fmt "graph n=%d edges=%d [%a]" g.n (edge_count g)
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f " ")
       (fun f (a, b) -> Format.fprintf f "%d-%d" a b))
    (edges g)
