(** Molecular vibronic / vibrational spectra with GBS (Huh et al. 2015;
    paper §VII-D, Fig. 11d).

    The paper uses pyrrole data shipped with Strawberry Fields, which is
    not available offline; this module builds a synthetic
    {e pyrrole-like} molecule instead (documented in DESIGN.md): mode
    frequencies drawn from the pyrrole vibrational band, a random
    orthogonal Duschinsky-like mode mixing, small displacements
    (Franck-Condon offsets), and temperature-dependent squeezing from
    thermal occupation. The pipeline — sample patterns, read energy
    E(n̄) = Σ n_i·ω_i, histogram + Lorentzian broadening, Pearson score
    against the noise-free spectrum — is the paper's. *)

type molecule = {
  name : string;
  frequencies : float array;  (** Mode frequencies, cm⁻¹. *)
  duschinsky : Bose_linalg.Mat.t;  (** Orthogonal mode-mixing matrix. *)
  displacements : Bose_linalg.Cx.t array;
}

val synthetic : ?mixing:float -> Bose_util.Rng.t -> modes:int -> molecule
(** Pyrrole-like molecule: frequencies log-uniform in 600–3500 cm⁻¹ and
    a diagonally dominant Duschinsky rotation ([mixing], default 0.35,
    sets the off-diagonal strength). *)

val program : molecule -> temperature:float -> Bosehedral.Runner.program
(** GBS instance at a temperature (K): thermal input occupation
    n̄_i = 1/(e^{ħω_i/k_BT} − 1) per mode (capped for simulability), a
    small fixed squeezing per mode (frequency distortion), the
    Duschinsky unitary, and the molecule's displacements. Higher
    temperature → more thermal photons. *)

val energy : molecule -> int list -> float
(** E(n̄) = Σ n_i·ω_i; the tail outcome maps to [nan]. *)

val spectrum :
  molecule ->
  grid:float array ->
  gamma:float ->
  int list Bose_util.Dist.t ->
  float array
(** Probability-weighted stick spectrum of an output distribution,
    Lorentzian-broadened onto [grid] (tail mass ignored). *)

val default_grid : molecule -> float array
(** 0 to a bit past 2·max frequency, 200 points. *)

val correlation : float array -> float array -> float
(** Pearson correlation between two spectra on the same grid — the
    paper's Fig. 11d metric. *)
