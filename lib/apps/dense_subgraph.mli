(** Dense-subgraph search with GBS (paper §VII-D, Fig. 11a): each sample's
    clicked qumodes directly indicate a candidate subgraph; GBS
    concentrates samples on high-density subsets. Success means the
    sample reveals a size-k subgraph as dense as the true optimum. *)

type outcome = { attempts : int; successes : int }

val success_rate : outcome -> float

val clicked : int list -> int list
(** Vertices of a Fock pattern with ≥ 1 photon (the tail outcome yields
    the empty list). *)

val sample_succeeds : Graph.t -> k:int -> optimum:float -> int list -> bool
(** Does the clicked set of this pattern contain a size-[k] subset with
    density ≥ [optimum]? *)

val evaluate :
  rng:Bose_util.Rng.t ->
  shots:int ->
  k:int ->
  Graph.t ->
  int list Bose_util.Dist.t ->
  outcome
(** Draw [shots] samples from an output distribution and count
    successes against the brute-forced optimum density. *)
