(** Encoding a graph into a GBS program (Bromley et al. 2020; paper
    §II-C): Takagi-decompose the adjacency matrix A = U·diag(λ)·Uᵀ,
    rescale so c·λ_i = tanh(r_i) are valid squeezing magnitudes, use
    [U] as the linear interferometer. Samples then arrive with
    probability ∝ |haf(A_S)|², concentrating clicks on dense
    subgraphs. *)

val encode :
  ?mean_photons:float -> Graph.t -> Bosehedral.Runner.program
(** GBS program whose interferometer is the graph's Takagi unitary and
    whose squeezing magnitudes are scaled to the target total mean
    photon number (default: vertices / 4, a few-click regime that keeps
    truncated simulation exact). *)

val scaling_for : float array -> target:float -> float
(** [scaling_for lambda ~target] finds c ∈ (0, 1/λ_max) such that
    Σ sinh²(atanh(c·λ_i)) = target, by bisection. *)

val unitary_of : Graph.t -> Bose_linalg.Mat.t
(** Just the interferometer part of the encoding. *)
