module Cx = Bose_linalg.Cx
module Takagi = Bose_linalg.Takagi

let mean_photons_at lambda c =
  Array.fold_left
    (fun acc l ->
       let t = c *. l in
       if t <= 0. then acc
       else begin
         let r = atanh t in
         acc +. (sinh r ** 2.)
       end)
    0. lambda

let scaling_for lambda ~target =
  if target <= 0. then invalid_arg "Encoding.scaling_for: target must be positive";
  let lmax = Array.fold_left Float.max 0. lambda in
  if lmax <= 0. then invalid_arg "Encoding.scaling_for: graph has no edges";
  let hi = 1. /. lmax in
  let rec bisect lo hi iters =
    let mid = (lo +. hi) /. 2. in
    if iters = 0 then mid
    else if mean_photons_at lambda mid < target then bisect mid hi (iters - 1)
    else bisect lo mid (iters - 1)
  in
  (* Keep strictly below 1/λ_max so every tanh⁻¹ is finite. *)
  bisect 0. (hi *. (1. -. 1e-9)) 80

let encode ?mean_photons graph =
  let n = Graph.vertices graph in
  let target =
    match mean_photons with Some t -> t | None -> float_of_int n /. 4.
  in
  let lambda, u = Takagi.decompose (Graph.adjacency graph) in
  let c = scaling_for lambda ~target in
  let squeezing =
    Array.map
      (fun l ->
         let t = c *. l in
         if t <= 0. then Cx.zero else Cx.re (atanh t))
      lambda
  in
  Bosehedral.Runner.pure_program ~squeezing ~unitary:u ()

let unitary_of graph = snd (Takagi.decompose (Graph.adjacency graph))
