(** Maximum-clique search seeded by GBS (paper §VII-D, Fig. 11b): each
    sample's clicked vertices are an initial trial that a classical
    shrink-and-expand subroutine refines into a clique. *)

type outcome = { attempts : int; successes : int }

val success_rate : outcome -> float

val shrink_to_clique : Graph.t -> int list -> int list
(** Iteratively remove the vertex with fewest connections inside the set
    until the remainder is a clique. *)

val greedy_expand : rng:Bose_util.Rng.t -> Graph.t -> int list -> int list
(** Add random vertices adjacent to every clique member until stuck —
    the weak local search of the GBS clique pipeline, which is what
    makes seed quality matter. *)

val refine : rng:Bose_util.Rng.t -> Graph.t -> int list -> int list
(** [shrink_to_clique] then [greedy_expand] — the post-processing
    subroutine run on each sample. *)

val evaluate :
  ?expand:bool ->
  rng:Bose_util.Rng.t ->
  shots:int ->
  target:int ->
  Graph.t ->
  int list Bose_util.Dist.t ->
  outcome
(** Count samples whose refined clique reaches [target] vertices.
    [expand] (default true) enables the random local-search expansion;
    with [expand:false] success requires the sampled clicks themselves
    to contain a target-size clique, isolating seed quality. *)
