module Rng = Bose_util.Rng
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Stats = Bose_util.Stats
module Broaden = Bose_util.Broaden
module Dist = Bose_util.Dist

type molecule = {
  name : string;
  frequencies : float array;
  duschinsky : Mat.t;
  displacements : Cx.t array;
}

(* Duschinsky matrices of real molecules are diagonally dominant — each
   excited-state normal mode overlaps mostly with one ground-state mode
   and mixes weakly with its spectral neighbours. We synthesize that
   structure with a Cayley transform Q = (I − A)(I + A)⁻¹ of a small
   random skew-symmetric A: exactly orthogonal, near identity for small
   mixing strength. *)
let cayley_orthogonal rng ~modes ~strength =
  let a = Bose_linalg.Mat.create modes modes in
  for i = 0 to modes - 1 do
    for j = i + 1 to modes - 1 do
      (* Mixing decays with spectral distance |i − j|. *)
      let scale = strength /. (1. +. float_of_int (abs (i - j))) in
      let x = scale *. Rng.gaussian rng in
      Bose_linalg.Mat.set a i j (Cx.re x);
      Bose_linalg.Mat.set a j i (Cx.re (-.x))
    done
  done;
  let id = Bose_linalg.Mat.identity modes in
  Bose_linalg.Mat.mul (Bose_linalg.Mat.sub id a)
    (Bose_linalg.Linsolve.inverse (Bose_linalg.Mat.add id a))

let synthetic ?(mixing = 0.35) rng ~modes =
  if modes <= 0 then invalid_arg "Vibronic.synthetic: need at least one mode";
  let log_lo = log 600. and log_hi = log 3500. in
  let frequencies =
    Array.init modes (fun _ -> exp (log_lo +. Rng.float rng (log_hi -. log_lo)))
  in
  Array.sort compare frequencies;
  let duschinsky = cayley_orthogonal rng ~modes ~strength:mixing in
  let displacements =
    Array.init modes (fun _ -> Cx.re (0.15 +. Rng.float rng 0.2))
  in
  { name = "synthetic-pyrrole"; frequencies; duschinsky; displacements }

(* ħω/k_B in kelvin·cm units: ħc/k_B = 1.4388 cm·K, so
   ħω/(k_B T) = 1.4388·ω[cm⁻¹]/T[K]. *)
let thermal_ratio omega temperature = 1.4388 *. omega /. temperature

let program molecule ~temperature =
  if temperature <= 0. then invalid_arg "Vibronic.program: temperature must be positive";
  let n = Array.length molecule.frequencies in
  (* Temperature enters as thermal occupation of each vibrational mode
     (Bose-Einstein), capped so the high-T low-frequency tail stays in
     the exactly-simulable few-photon regime. Squeezing models the
     (temperature-independent) mode-frequency distortion. *)
  let thermal =
    Array.map
      (fun omega ->
         let x = thermal_ratio omega temperature in
         Float.min 0.6 (1. /. (exp x -. 1.)))
      molecule.frequencies
  in
  let squeezing = Array.make n (Cx.re 0.12) in
  {
    Bosehedral.Runner.squeezing;
    unitary = molecule.duschinsky;
    displacements = molecule.displacements;
    thermal;
  }

let energy molecule pattern =
  if pattern = Bose_gbs.Fock.tail then nan
  else begin
    if List.length pattern <> Array.length molecule.frequencies then
      invalid_arg "Vibronic.energy: pattern length mismatch";
    List.fold_left ( +. ) 0.
      (List.mapi (fun i c -> float_of_int c *. molecule.frequencies.(i)) pattern)
  end

let spectrum molecule ~grid ~gamma dist =
  let sticks =
    List.filter_map
      (fun (pattern, p) ->
         let e = energy molecule pattern in
         if Float.is_nan e then None else Some (e, p))
      (Dist.to_list dist)
  in
  Broaden.broaden ~gamma ~grid sticks

let default_grid molecule =
  let top = Array.fold_left Float.max 0. molecule.frequencies in
  Broaden.grid ~min:0. ~max:(2.2 *. top) ~points:200

let correlation = Stats.pearson
