module Dist = Bose_util.Dist

type outcome = { attempts : int; successes : int }

let success_rate o =
  if o.attempts = 0 then 0. else float_of_int o.successes /. float_of_int o.attempts

let inner_degree g vs v = List.length (List.filter (fun w -> w <> v && Graph.has_edge g v w) vs)

let rec shrink_to_clique g vs =
  match vs with
  | [] | [ _ ] -> vs
  | _ ->
    if Graph.is_clique g vs then vs
    else begin
      let worst =
        List.fold_left
          (fun (bv, bd) v ->
             let d = inner_degree g vs v in
             if d < bd then (v, d) else (bv, bd))
          (List.hd vs, max_int) vs
      in
      shrink_to_clique g (List.filter (fun v -> v <> fst worst) vs)
    end

let greedy_expand ~rng g vs =
  let rec grow clique =
    let candidates =
      List.filter
        (fun v ->
           (not (List.mem v clique)) && List.for_all (fun w -> Graph.has_edge g v w) clique)
        (List.init (Graph.vertices g) (fun i -> i))
    in
    match candidates with
    | [] -> clique
    | _ ->
      (* Random expansion, as in the GBS clique-finding subroutine of
         Bromley et al.: a weak local search, so the quality of the GBS
         seed matters. *)
      let pick = List.nth candidates (Bose_util.Rng.int rng (List.length candidates)) in
      grow (pick :: clique)
  in
  grow vs

let refine ~rng g vs = greedy_expand ~rng g (shrink_to_clique g vs)

let evaluate ?(expand = true) ~rng ~shots ~target g dist =
  let successes = ref 0 in
  for _ = 1 to shots do
    let pattern = Dist.sample rng dist in
    let seed = Dense_subgraph.clicked pattern in
    let refined =
      if expand then refine ~rng g seed else shrink_to_clique g seed
    in
    if seed <> [] && List.length refined >= target then incr successes
  done;
  { attempts = shots; successes = !successes }
