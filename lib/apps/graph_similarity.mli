(** Graph similarity via GBS feature vectors (Schuld et al. 2020; paper
    §VII-D, Fig. 11c): the output distribution is coarse-grained into
    orbit probabilities — an orbit is a photon pattern up to qumode
    permutation — and those probabilities form a feature vector in which
    similar graphs land close together. *)

val orbit : int list -> int list
(** Sorted (decreasing) nonzero photon counts; the tail outcome maps to
    [\[-1\]]. *)

val default_orbits : int list list
(** The low-order orbits used as feature coordinates:
    [\[1;1\]], [\[2\]], [\[1;1;1\]], [\[2;1\]], [\[1;1;1;1\]], [\[2;1;1\]],
    [\[2;2\]], [\[3;1\]]. *)

val feature_vector :
  ?orbits:int list list -> int list Bose_util.Dist.t -> float array
(** Orbit probabilities of an output distribution. *)

val centroid : float array list -> float array

val euclidean : float array -> float array -> float

val separation : float array list -> float array list -> float
(** Between-cluster centroid distance divided by the mean within-cluster
    spread — higher means the two graph families stay distinguishable
    (the quantity improved by 135% in the paper's Fig. 11c). *)
