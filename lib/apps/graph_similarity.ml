module Dist = Bose_util.Dist

let orbit pattern =
  if pattern = Bose_gbs.Fock.tail then [ -1 ]
  else
    List.sort (fun a b -> compare b a) (List.filter (fun c -> c > 0) pattern)

let default_orbits =
  [ [ 1; 1 ]; [ 2 ]; [ 1; 1; 1 ]; [ 2; 1 ]; [ 1; 1; 1; 1 ]; [ 2; 1; 1 ]; [ 2; 2 ]; [ 3; 1 ] ]

let feature_vector ?(orbits = default_orbits) dist =
  let by_orbit = Dist.map_outcomes orbit dist in
  Array.of_list (List.map (Dist.prob by_orbit) orbits)

let centroid vectors =
  match vectors with
  | [] -> invalid_arg "Graph_similarity.centroid: empty cluster"
  | v :: _ ->
    let dim = Array.length v in
    let acc = Array.make dim 0. in
    List.iter (Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x)) vectors;
    Array.map (fun x -> x /. float_of_int (List.length vectors)) acc

let euclidean a b =
  if Array.length a <> Array.length b then
    invalid_arg "Graph_similarity.euclidean: dimension mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.)) a;
  sqrt !acc

let separation c1 c2 =
  let m1 = centroid c1 and m2 = centroid c2 in
  let between = euclidean m1 m2 in
  let spread center vs =
    match vs with
    | [] -> 0.
    | _ ->
      List.fold_left (fun acc v -> acc +. euclidean center v) 0. vs
      /. float_of_int (List.length vs)
  in
  let within = (spread m1 c1 +. spread m2 c2) /. 2. in
  if within = 0. then between /. 1e-12 else between /. within
