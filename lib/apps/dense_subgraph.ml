module Dist = Bose_util.Dist

type outcome = { attempts : int; successes : int }

let success_rate o =
  if o.attempts = 0 then 0. else float_of_int o.successes /. float_of_int o.attempts

let clicked pattern =
  if pattern = Bose_gbs.Fock.tail then []
  else List.concat (List.mapi (fun i c -> if c > 0 then [ i ] else []) pattern)

let sample_succeeds g ~k ~optimum pattern =
  let vs = clicked pattern in
  if List.length vs < k then false
  else
    List.exists
      (fun subset -> Graph.subgraph_density g subset >= optimum -. 1e-12)
      (Graph.subsets_of_size k vs)

let evaluate ~rng ~shots ~k g dist =
  let _, optimum = Graph.densest_subgraph_of_size g k in
  let successes = ref 0 in
  for _ = 1 to shots do
    if sample_succeeds g ~k ~optimum (Dist.sample rng dist) then incr successes
  done;
  { attempts = shots; successes = !successes }
