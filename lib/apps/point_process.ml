module Rng = Bose_util.Rng
module Dist = Bose_util.Dist
module Cx = Bose_linalg.Cx
module Takagi = Bose_linalg.Takagi

type t = { positions : (float * float) array; kernel : float array array }

let grid_points ~rows ~cols ~spacing =
  if rows <= 0 || cols <= 0 then invalid_arg "Point_process.grid_points: empty grid";
  Array.init (rows * cols) (fun i ->
      (float_of_int (i / cols) *. spacing, float_of_int (i mod cols) *. spacing))

let distance (xa, ya) (xb, yb) = sqrt (((xa -. xb) ** 2.) +. ((ya -. yb) ** 2.))

let rbf_kernel ~sigma positions =
  if sigma <= 0. then invalid_arg "Point_process.rbf_kernel: sigma must be positive";
  let n = Array.length positions in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let d = distance positions.(i) positions.(j) in
          exp (-.(d *. d) /. (2. *. sigma *. sigma))))

let create ~sigma positions = { positions; kernel = rbf_kernel ~sigma positions }

let program ?mean_photons t =
  let n = Array.length t.positions in
  let target =
    match mean_photons with Some m -> m | None -> float_of_int n /. 4.
  in
  let lambda, u = Takagi.decompose t.kernel in
  let c = Encoding.scaling_for lambda ~target in
  let squeezing =
    Array.map
      (fun l ->
         let x = c *. l in
         if x <= 0. then Cx.zero else Cx.re (atanh x))
      lambda
  in
  Bosehedral.Runner.pure_program ~squeezing ~unitary:u ()

let sample_configurations ~rng ~shots dist t =
  List.filter_map
    (fun _ ->
       let pattern = Dist.sample rng dist in
       let clicked = Dense_subgraph.clicked pattern in
       match clicked with
       | [] -> None
       | _ -> Some (List.map (fun i -> t.positions.(i)) clicked))
    (List.init shots (fun i -> i))

let mean_pairwise_distance configurations =
  let per_config points =
    let rec pairs = function
      | [] -> []
      | p :: rest -> List.map (fun q -> distance p q) rest @ pairs rest
    in
    match pairs points with
    | [] -> None
    | ds -> Some (List.fold_left ( +. ) 0. ds /. float_of_int (List.length ds))
  in
  let values = List.filter_map per_config configurations in
  match values with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. values /. float_of_int (List.length values)

let uniform_configurations ~rng t ~match_sizes =
  let n = Array.length t.positions in
  let draw size =
    let w = Array.make n 1. in
    List.map (fun i -> t.positions.(i)) (Rng.sample_without_replacement rng w (min size n))
  in
  List.map (fun config -> draw (List.length config)) match_sizes
