(** Point processes with GBS (Jahangiri et al. 2020; cited as an
    application in the paper's §I).

    A symmetric kernel matrix over candidate locations is loaded into a
    GBS device exactly like a graph adjacency; the clicked qumodes of
    each sample are a random point configuration. Because sample
    probabilities are ∝ |haf(K_S)|², an RBF kernel with positive
    entries yields a {e clustered} ("permanental-like") process: nearby
    points appear together far more often than under independent
    sampling. *)

type t = {
  positions : (float * float) array;  (** Candidate point locations. *)
  kernel : float array array;  (** Symmetric, from {!rbf_kernel}. *)
}

val grid_points : rows:int -> cols:int -> spacing:float -> (float * float) array

val rbf_kernel : sigma:float -> (float * float) array -> float array array
(** K_ij = exp(−‖x_i − x_j‖² / (2σ²)). *)

val create : sigma:float -> (float * float) array -> t

val program : ?mean_photons:float -> t -> Bosehedral.Runner.program
(** GBS instance encoding the kernel (default mean photons:
    points / 4). *)

val sample_configurations :
  rng:Bose_util.Rng.t ->
  shots:int ->
  int list Bose_util.Dist.t ->
  t ->
  (float * float) list list
(** Point configurations (clicked locations) drawn from an output
    distribution; empty configurations and truncation-tail draws are
    skipped. *)

val mean_pairwise_distance : (float * float) list list -> float
(** Average over configurations (with ≥ 2 points) of the mean pairwise
    distance — the clustering statistic: lower = more clustered. *)

val uniform_configurations :
  rng:Bose_util.Rng.t ->
  t ->
  match_sizes:(float * float) list list ->
  (float * float) list list
(** Size-matched uniform baseline: one configuration per input
    configuration, with the same number of points drawn uniformly
    without replacement. *)
