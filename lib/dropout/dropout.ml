module Rng = Bose_util.Rng
module Plan = Bose_decomp.Plan
module Obs = Bose_obs.Obs
module Pool = Bose_par.Pool

let c_dropped_gates = Obs.Counter.make "dropout.dropped_gates"
let c_fidelity_evals = Obs.Counter.make "dropout.fidelity_evals"
let c_masks_sampled = Obs.Counter.make "dropout.masks_sampled"
let g_theta_cut = Obs.Gauge.make "dropout.theta_cut"
let g_kept_count = Obs.Gauge.make "dropout.kept_count"
let g_power = Obs.Gauge.make "dropout.power_k"
let g_expected_fidelity = Obs.Gauge.make "dropout.expected_fidelity"

type policy = {
  tau : float;
  theta_cut : float;
  kept_count : int;
  power : int;
  weights : float array;
  expected_fidelity : float;
}

(* Keep-mask that drops the [d] smallest angles. *)
let mask_dropping_smallest plan d =
  let a = Plan.angles plan in
  let order = Array.init (Array.length a) (fun i -> i) in
  Array.sort (fun i j -> compare a.(i) a.(j)) order;
  let kept = Array.make (Array.length a) true in
  for r = 0 to d - 1 do
    kept.(order.(r)) <- false
  done;
  kept

let find_threshold ?ws plan u ~tau =
  if tau <= 0. || tau > 1. then invalid_arg "Dropout.find_threshold: tau out of (0,1]";
  let a = Plan.angles plan in
  let total = Array.length a in
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let fidelity_dropping d =
    Obs.Counter.incr c_fidelity_evals;
    Plan.fidelity ?ws ~kept:(mask_dropping_smallest plan d) plan u
  in
  (* Largest d with fidelity >= tau; fidelity decreases (approximately)
     monotonically in d, so binary search suffices. *)
  let lo = ref 0 and hi = ref total in
  (* Invariant: dropping !lo is acceptable; dropping !hi+1 .. unknown. *)
  while !hi > !lo do
    let mid = (!lo + !hi + 1) / 2 in
    if fidelity_dropping mid >= tau then lo := mid else hi := mid - 1
  done;
  let d = !lo in
  let theta_cut = if d = 0 then 0. else sorted.(d - 1) in
  (theta_cut, total - d)

(* Selection weights |θ_i/Θ|^K, computed in log space and clipped so the
   exponential never overflows. θ = 0 gets weight 0. *)
let make_weights angles theta_cut power =
  let cut = Float.max theta_cut 1e-12 in
  Array.map
    (fun th ->
       if th <= 0. then 0.
       else exp (Float.min 600. (float_of_int power *. (log th -. log cut))))
    angles

let sample_mask rng weights kept_count =
  let kept = Array.make (Array.length weights) false in
  List.iter (fun i -> kept.(i) <- true) (Rng.sample_without_replacement rng weights kept_count);
  kept

let average_fidelity ?ws rng plan u weights kept_count iterations =
  let acc = ref 0. in
  for _ = 1 to iterations do
    let kept = sample_mask rng weights kept_count in
    Obs.Counter.incr c_fidelity_evals;
    acc := !acc +. Plan.fidelity ?ws ~kept plan u
  done;
  !acc /. float_of_int iterations

(* Pool variant of [average_fidelity]: one pre-split stream per trial,
   fidelities accumulated in trial order, so the average is a function
   of [rng] alone — identical at every pool size (including a 1-domain
   pool), though not byte-identical to the sequential-draw
   [average_fidelity] above. Trials allocate instead of sharing the
   caller's workspace: a [Mat.workspace] is single-domain state. *)
let average_fidelity_chains pool rng plan u weights kept_count iterations =
  let streams = Rng.split rng iterations in
  let fids = Array.make iterations 0. in
  let trial i =
    let kept = sample_mask streams.(i) weights kept_count in
    Obs.Counter.incr c_fidelity_evals;
    fids.(i) <- Plan.fidelity ~kept plan u
  in
  if Pool.domains pool > 1 then Pool.run pool ~tasks:iterations trial
  else
    for i = 0 to iterations - 1 do
      trial i
    done;
  Array.fold_left ( +. ) 0. fids /. float_of_int iterations

let make_policy ?ws ?pool ?(powers = [ 1; 2; 5; 10; 20; 50; 100 ]) ?(iterations = 40) rng plan u ~tau =
  let theta_cut, kept_count = find_threshold ?ws plan u ~tau in
  let angles = Plan.angles plan in
  let total = Array.length angles in
  let policy =
    if kept_count >= total then
      (* Nothing can be dropped at this accuracy: degenerate keep-all policy. *)
      {
        tau;
        theta_cut = 0.;
        kept_count = total;
        power = 1;
        weights = Array.make total 1.;
        expected_fidelity = 1.;
      }
    else begin
      let evaluate power =
        let weights = make_weights angles theta_cut power in
        let fid =
          match pool with
          | None -> average_fidelity ?ws rng plan u weights kept_count iterations
          | Some p -> average_fidelity_chains p rng plan u weights kept_count iterations
        in
        (power, weights, fid)
      in
      let candidates = List.map evaluate powers in
      let power, weights, expected_fidelity =
        List.fold_left
          (fun (bp, bw, bf) (p, w, f) -> if f > bf then (p, w, f) else (bp, bw, bf))
          (List.hd candidates) (List.tl candidates)
      in
      { tau; theta_cut; kept_count; power; weights; expected_fidelity }
    end
  in
  Obs.Counter.incr c_dropped_gates ~by:(total - policy.kept_count);
  Obs.Gauge.set g_theta_cut policy.theta_cut;
  Obs.Gauge.set g_kept_count (float_of_int policy.kept_count);
  Obs.Gauge.set g_power (float_of_int policy.power);
  Obs.Gauge.set g_expected_fidelity policy.expected_fidelity;
  policy

let sample_kept rng policy plan =
  let total = Plan.rotation_count plan in
  if Array.length policy.weights <> total then
    invalid_arg "Dropout.sample_kept: policy does not match plan";
  Obs.Counter.incr c_masks_sampled;
  sample_mask rng policy.weights policy.kept_count

let hard_kept policy plan =
  let total = Plan.rotation_count plan in
  if policy.kept_count > total then invalid_arg "Dropout.hard_kept: policy does not match plan";
  mask_dropping_smallest plan (total - policy.kept_count)

let dropped_fraction policy plan =
  let total = Plan.rotation_count plan in
  float_of_int (total - policy.kept_count) /. float_of_int total
