(** Tunable probabilistic gate dropout (paper §VI).

    Given a decomposition plan, find the angle threshold |Θ| whose hard
    cut keeps the approximated-unitary fidelity just above the accuracy
    target τ; keep that count M of beamsplitters, but choose {i}which{/i}
    M per shot by sampling without replacement from the distribution
    p_i ∝ |θ_i/Θ|^K. K = 1 samples by raw angle magnitude; K → ∞
    degenerates to the hard threshold; the K in between that maximizes
    the average reconstructed fidelity τ_K is selected. *)

module Plan = Bose_decomp.Plan

type policy = {
  tau : float;  (** Requested accuracy threshold. *)
  theta_cut : float;  (** |Θ|, the angle threshold. *)
  kept_count : int;  (** M, beamsplitters kept per shot. *)
  power : int;  (** Selected K. *)
  weights : float array;  (** Per-rotation selection weights (unnormalized). *)
  expected_fidelity : float;  (** τ_K of the selected K. *)
}

val find_threshold :
  ?ws:Bose_linalg.Mat.workspace -> Plan.t -> Bose_linalg.Mat.t -> tau:float -> float * int
(** [(theta_cut, kept)] — the largest hard cut whose approximation
    fidelity against the original unitary stays ≥ τ. [theta_cut] is 0
    and [kept] the full count when even one drop violates τ.
    @raise Invalid_argument unless τ ∈ (0, 1]. *)

val make_policy :
  ?ws:Bose_linalg.Mat.workspace ->
  ?pool:Bose_par.Pool.t ->
  ?powers:int list ->
  ?iterations:int ->
  Bose_util.Rng.t ->
  Plan.t ->
  Bose_linalg.Mat.t ->
  tau:float ->
  policy
(** Full §VI procedure. [powers] defaults to [1; 2; 5; 10; 20; 50; 100];
    [iterations] (the paper's L) defaults to 40 reconstructions per
    candidate K. With [?ws] every fidelity probe replays into the
    workspace's slot-1 scratch instead of allocating a matrix.

    With [?pool] the Monte-Carlo fidelity trials of each candidate K
    fan out one task per trial, each drawing its mask from its own
    pre-split RNG stream, and fidelities are averaged in trial order —
    the policy is then a function of [rng] alone, identical at every
    pool size (a 1-domain pool included), though not byte-identical to
    the sequential-draw [?pool]-absent path. [?ws] is ignored for the
    pooled trials (a workspace is single-domain state). *)

val sample_kept : Bose_util.Rng.t -> policy -> Plan.t -> bool array
(** One per-shot selection: a keep-mask with exactly [kept_count]
    rotations kept, drawn from the policy distribution. *)

val hard_kept : policy -> Plan.t -> bool array
(** Deterministic mask keeping the [kept_count] largest angles — the
    Rot-Cut behaviour, also the K → ∞ limit. *)

val dropped_fraction : policy -> Plan.t -> float
(** Fraction of beamsplitters removed per shot, the paper's
    "BS gate # drop". *)
