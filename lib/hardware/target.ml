module Noise = Bose_circuit.Noise

type topology =
  | Grid of (int -> Lattice.t)
  | Graph of (int -> Coupling.t)

type t = {
  name : string;
  doc : string;
  topology : topology;
  routing_budget : int;
  max_depth : int -> int option;
  noise : Noise.t;
  min_transmission : float;
}

let check_n name n =
  if n < 1 then invalid_arg ("Target." ^ name ^ ": program needs at least one qumode")

let coupling t n =
  check_n "coupling" n;
  match t.topology with
  | Grid f -> Coupling.of_lattice (f n)
  | Graph f -> f n

let device t n =
  check_n "device" n;
  match t.topology with Grid f -> Some (f n) | Graph _ -> None

let pattern t n =
  check_n "pattern" n;
  match t.topology with
  | Grid f -> Embedding.for_program (f n) n
  | Graph f -> Embedding.of_coupling_for_program (f n) n

(* ------------------------------------------------------------------ *)
(* Registry. Target names are stable currency — cache keys, serve
   protocol fields, CLI flags — so registration validates eagerly and
   collisions raise instead of shadowing.                              *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let register t =
  if t.name = "" then invalid_arg "Target.register: empty name";
  String.iter
    (fun c ->
       if c = ' ' || c = '\t' || c = '\n' then
         invalid_arg "Target.register: name must not contain whitespace")
    t.name;
  if Hashtbl.mem registry t.name then
    invalid_arg ("Target.register: duplicate target " ^ t.name);
  Hashtbl.replace registry t.name t

let find name = Hashtbl.find_opt registry name

let names () =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) registry [])

let all () = List.filter_map find (names ())

(* ------------------------------------------------------------------ *)
(* Built-ins.                                                          *)

(* The paper's device: an as-square-as-possible 2-D lattice with at
   least n sites. n = 36 gives the familiar 6x6; n = 24 gives 4x6 —
   rows = floor(sqrt n), cols = ceil(n / rows), matching how the
   evaluation sizes devices to programs. *)
let square_ish n =
  let rows = max 1 (int_of_float (sqrt (float_of_int n))) in
  let cols = (n + rows - 1) / rows in
  Lattice.create ~rows ~cols

let ring n =
  let chain = List.init (n - 1) (fun i -> (i, i + 1)) in
  let edges = if n > 2 then (0, n - 1) :: chain else chain in
  Coupling.of_edges ~n edges

let chain n = Coupling.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let zigzag =
  {
    name = "zigzag";
    doc = "2-D nearest-neighbour lattice, zigzag tree embedding (paper §IV) — the default";
    topology = Grid square_ish;
    routing_budget = 0;
    max_depth = (fun _ -> None);
    noise = Noise.ideal;
    min_transmission = 0.;
  }

let timebin_loop =
  {
    name = "timebin-loop";
    doc = "1-D time-bin loop interferometer: ring coupling, one routing hop, bounded depth";
    topology = Graph ring;
    routing_budget = 1;
    (* Loop storage bounds how many passes a pulse train survives; 4
       passes per qumode is the generous end of the regime. *)
    max_depth = (fun n -> Some (max 16 (4 * n)));
    noise = Noise.uniform 5e-4;
    min_transmission = 0.;
  }

let orca_shallow =
  {
    name = "orca-shallow";
    doc = "ORCA-style shallow line circuit: chain coupling, no routing, aggressive depth cap";
    topology = Graph chain;
    routing_budget = 0;
    (* A chain elimination schedules in 2n - 3 fronts; capping at 2n
       leaves just enough headroom that only dropout-heavy compiles
       stay comfortably inside — the regime where dropout must shine. *)
    max_depth = (fun n -> Some (max 8 (2 * n)));
    noise = Noise.ideal;
    min_transmission = 0.;
  }

let () =
  register zigzag;
  register timebin_loop;
  register orca_shallow
