(** Elimination pattern templates (paper §IV).

    A pattern is a spanning tree over qumodes whose nodes are labeled by
    breadth-first search from the 'start point'. Labels double as the
    column indices of the interferometer unitary: the qumode with label
    [j] holds column [j]. The elimination of matrix row [k-1]
    (0-indexed) runs over the [k] lowest-labeled qumodes, accumulates
    all amplitude into the qumode labeled [k-1] (the stage root, always
    a leaf of the remaining tree), and removes it; repeating from
    [k = N] down to [2] yields the N(N-1)/2 rotations of Eq. (1).

    The baseline pattern of Reck/Clements is the special case of a chain.
    Bosehedral's template is a main path with leaf branches, embedded in
    the 2-D lattice by {!Embedding.zigzag}. *)

type t

val size : t -> int

val of_tree :
  ?main_path:int list ->
  ?sites:int array ->
  n:int ->
  edges:(int * int) list ->
  start:int ->
  unit ->
  t
(** [of_tree ~n ~edges ~start ()] BFS-relabels the tree given by [edges]
    over nodes [0..n-1] starting from [start]. [main_path] marks nodes
    (in original ids) belonging to the main amplitude-accumulation path;
    [sites] gives each original node's physical flat site index.
    @raise Invalid_argument if [edges] do not form a spanning tree. *)

val chain : int -> t
(** The baseline chain template on [n] qumodes (paper Fig. 4, top). *)

val neighbors : t -> int -> int list
(** Tree neighbors of a label, increasing order. *)

val parent : t -> int -> int option
(** BFS parent (the unique lower-labeled neighbor); [None] for label 0. *)

val on_main_path : t -> int -> bool

val site : t -> int -> int option
(** Physical flat site index of a label, when the pattern was embedded. *)

val main_path_labels : t -> int list
(** Labels on the main path, increasing. *)

val branch_regions : t -> int list list
(** Column regions for the mapping optimization (paper §V-D): first the
    main-path labels, then one region per branch subtree, ordered by the
    main-path position they hang off. Regions partition [0..size-1]. *)

val restrict : t -> int -> t
(** [restrict t k] keeps the [k] lowest labels — the paper's sub-pattern
    selection (§IV-C). @raise Invalid_argument if [k] is out of
    [1..size]. *)

val schedule : t -> stage:int -> (int * int) list
(** [(m, n)] elimination pairs, in dependency order, for the stage with
    [stage] active qumodes: entry of column [m] is zeroed against column
    [n] on matrix row [stage - 1]; the stage root is label [stage - 1].
    Children are visited largest-subtree-first so branch eliminations
    meet an already-accumulated parent amplitude. *)

val full_schedule : t -> (int * (int * int) list) list
(** [(row, eliminations)] for rows [size-1] down to [1], in elimination
    order. Total pair count is N(N-1)/2. *)

val validate : t -> (string, string) result
(** Structural self-check; [Error] describes the first violation. *)

val pp : Format.formatter -> t -> unit
