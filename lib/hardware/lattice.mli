(** Two-dimensional lattice coupling structures.

    The paper's hardware model (§IV, §VII-A): qumodes sit on an
    r×c grid and native beamsplitters couple only nearest neighbors.
    Sites are addressed either by [(row, col)] coordinates or by the
    flat index [row * cols + col]. *)

type t

val create : rows:int -> cols:int -> t
(** @raise Invalid_argument unless both dimensions are positive. *)

val rows : t -> int
val cols : t -> int
val size : t -> int

val index : t -> int -> int -> int
(** [index l row col] = flat site index. @raise Invalid_argument when out
    of bounds. *)

val coords : t -> int -> int * int
(** Inverse of {!index}. *)

val adjacent : t -> int -> int -> bool
(** Whether two flat indices are nearest neighbors on the grid. *)

val neighbors : t -> int -> int list
(** Nearest neighbors of a site, in increasing index order. *)

val edges : t -> (int * int) list
(** All coupling edges as [(low, high)] flat-index pairs. *)

val snake_path : t -> int list
(** A Hamiltonian path traversing the grid row by row, alternating
    direction (boustrophedon) — the line the baseline chain
    decomposition is laid out on. *)

val pp : Format.formatter -> t -> unit
