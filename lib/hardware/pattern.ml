type t = {
  size : int;
  neighbors : int list array;  (* tree adjacency in label space *)
  main : bool array;
  sites : int array option;  (* physical flat site per label *)
  main_order : int list;  (* main-path labels in path order from the start point *)
}

let size t = t.size

let bfs_labels n adjacency start =
  let label = Array.make n (-1) in
  let queue = Queue.create () in
  Queue.add start queue;
  label.(start) <- 0;
  let next = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
         if label.(w) < 0 then begin
           label.(w) <- !next;
           incr next;
           Queue.add w queue
         end)
      (List.sort compare adjacency.(v))
  done;
  if !next <> n then invalid_arg "Pattern.of_tree: graph is not connected";
  label

(* Main-path order: walk the path starting from the start node, always
   stepping to the unvisited main neighbor. *)
let trace_main_path neighbors main start =
  if not main.(start) then []
  else begin
    let visited = Array.make (Array.length main) false in
    let rec walk v acc =
      visited.(v) <- true;
      let next =
        List.find_opt (fun w -> main.(w) && not visited.(w)) neighbors.(v)
      in
      match next with None -> List.rev (v :: acc) | Some w -> walk w (v :: acc)
    in
    walk start []
  end

let of_tree ?main_path ?sites ~n ~edges ~start () =
  if n <= 0 then invalid_arg "Pattern.of_tree: empty pattern";
  if List.length edges <> n - 1 then invalid_arg "Pattern.of_tree: a tree needs n-1 edges";
  let adjacency = Array.make n [] in
  List.iter
    (fun (a, b) ->
       if a < 0 || a >= n || b < 0 || b >= n || a = b then
         invalid_arg "Pattern.of_tree: bad edge";
       adjacency.(a) <- b :: adjacency.(a);
       adjacency.(b) <- a :: adjacency.(b))
    edges;
  let label = bfs_labels n adjacency start in
  let neighbors = Array.make n [] in
  List.iter
    (fun (a, b) ->
       let la = label.(a) and lb = label.(b) in
       neighbors.(la) <- lb :: neighbors.(la);
       neighbors.(lb) <- la :: neighbors.(lb))
    edges;
  Array.iteri (fun i ns -> neighbors.(i) <- List.sort compare ns) neighbors;
  let main = Array.make n false in
  (match main_path with
   | None -> Array.fill main 0 n true
   | Some nodes -> List.iter (fun v -> main.(label.(v)) <- true) nodes);
  let relabeled_sites =
    Option.map
      (fun s ->
         let out = Array.make n 0 in
         Array.iteri (fun node site -> out.(label.(node)) <- site) s;
         out)
      sites
  in
  { size = n; neighbors; main; sites = relabeled_sites; main_order = trace_main_path neighbors main 0 }

let chain n =
  of_tree ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1))) ~start:0 ()

let neighbors t v = t.neighbors.(v)

let parent t v =
  if v = 0 then None else List.find_opt (fun w -> w < v) t.neighbors.(v)

let on_main_path t v = t.main.(v)

let site t v = Option.map (fun s -> s.(v)) t.sites

let main_path_labels t =
  List.filter (fun v -> t.main.(v)) (List.init t.size (fun i -> i))

let branch_regions t =
  let visited = Array.make t.size false in
  List.iter (fun v -> visited.(v) <- true) (main_path_labels t);
  (* Collect the off-path subtree hanging from [root]. *)
  let rec subtree v =
    visited.(v) <- true;
    v :: List.concat_map (fun w -> if visited.(w) then [] else subtree w) t.neighbors.(v)
  in
  let branches_of m =
    List.filter_map
      (fun w -> if t.main.(w) || visited.(w) then None else Some (List.sort compare (subtree w)))
      (List.sort compare t.neighbors.(m))
  in
  main_path_labels t :: List.concat_map branches_of t.main_order

let restrict t k =
  if k < 1 || k > t.size then invalid_arg "Pattern.restrict: size out of range";
  let neighbors = Array.init k (fun v -> List.filter (fun w -> w < k) t.neighbors.(v)) in
  let main = Array.init k (fun v -> t.main.(v)) in
  let sites = Option.map (fun s -> Array.sub s 0 k) t.sites in
  let main_order = List.filter (fun v -> v < k) t.main_order in
  { size = k; neighbors; main; sites; main_order }

(* Stage with [stage] active labels 0..stage-1, rooted at stage-1: emit
   (child, parent) edges in post-order, visiting larger subtrees first. *)
let schedule t ~stage =
  if stage < 2 || stage > t.size then invalid_arg "Pattern.schedule: stage out of range";
  let root = stage - 1 in
  let active w = w < stage in
  let rec subtree_size v from =
    1
    + List.fold_left
        (fun acc w -> if w = from || not (active w) then acc else acc + subtree_size w v)
        0 t.neighbors.(v)
  in
  let out = ref [] in
  let rec visit v from =
    let children = List.filter (fun w -> w <> from && active w) t.neighbors.(v) in
    let sized = List.map (fun w -> (subtree_size w v, w)) children in
    let ordered = List.sort (fun (sa, a) (sb, b) -> compare (sb, a) (sa, b)) sized in
    List.iter (fun (_, w) -> visit w v) ordered;
    if from >= 0 then out := (v, from) :: !out
  in
  visit root (-1);
  List.rev !out

let full_schedule t =
  List.filter_map
    (fun i ->
       let stage = t.size - i in
       if stage < 2 then None else Some (stage - 1, schedule t ~stage))
    (List.init (t.size - 1) (fun i -> i))

let validate t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    let edge_count =
      Array.fold_left (fun acc ns -> acc + List.length ns) 0 t.neighbors / 2
    in
    if edge_count = t.size - 1 then Ok () else Error "edge count is not n-1"
  in
  let* () =
    (* Every non-zero label must have exactly one lower-labeled neighbor:
       this is what makes descending-label removal always remove a leaf. *)
    let bad = ref None in
    for v = 1 to t.size - 1 do
      let lower = List.length (List.filter (fun w -> w < v) t.neighbors.(v)) in
      if lower <> 1 && !bad = None then
        bad := Some (Printf.sprintf "label %d has %d lower-labeled neighbors" v lower)
    done;
    match !bad with None -> Ok () | Some msg -> Error msg
  in
  let* () =
    let regions = branch_regions t in
    let all = List.sort compare (List.concat regions) in
    if all = List.init t.size (fun i -> i) then Ok ()
    else Error "branch regions do not partition the labels"
  in
  Ok "ok"

let pp fmt t =
  Format.fprintf fmt "@[<v>pattern on %d qumodes (main path: %d)@," t.size
    (List.length (main_path_labels t));
  for v = 0 to t.size - 1 do
    Format.fprintf fmt "  %d%s -> [%a]@," v
      (if t.main.(v) then "*" else "")
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Format.pp_print_int)
      t.neighbors.(v)
  done;
  Format.fprintf fmt "@]"
