(** Zigzag embedding of the Bosehedral elimination template into a 2-D
    lattice (paper §IV-B, Fig. 5).

    The main path snakes through the middle row of successive 3-row
    bands, aligned with the lattice's longer edge, turning at alternating
    ends; every off-path qumode attaches to the adjacent main-path node,
    or chains through a branch when the band arithmetic leaves it two
    steps away (the [rows mod 3] cases of Fig. 5 (b)). *)

val zigzag : Lattice.t -> Pattern.t
(** Spanning-tree pattern over the whole device, BFS-labeled from the
    start point. Use {!Pattern.restrict} to select a sub-pattern when the
    program needs fewer qumodes than the device has (paper §IV-C). *)

val for_program : Lattice.t -> int -> Pattern.t
(** [for_program device n] = zigzag pattern restricted to the [n]
    lowest-labeled qumodes. @raise Invalid_argument if the device has
    fewer than [n] qumodes. *)

val baseline : Lattice.t -> int -> Pattern.t
(** The baseline chain template laid along the device's snake path,
    truncated to [n] qumodes — what Reck/Clements-style decomposition
    uses (paper Fig. 4, top). *)

val of_coupling : Coupling.t -> Pattern.t
(** Generic embedding for arbitrary coupling graphs (the paper's
    triangular/hexagonal generalization, §IV): the main path is a long
    simple path found heuristically, and every off-path qumode attaches
    by multi-source BFS, so branches are as shallow as the layout
    allows. Restrict with {!Pattern.restrict} for smaller programs. *)

val of_coupling_for_program : Coupling.t -> int -> Pattern.t
(** [of_coupling] restricted to the [n] lowest-labeled qumodes. *)
