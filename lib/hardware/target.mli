(** First-class hardware targets: named, pluggable backend descriptions.

    The compiler's value claim is device-aware optimization, but until
    this module the device shape was implicit — a 2-D lattice threaded
    through [Compiler.compile] and a hard-coded zigzag embedding. A
    {!t} makes the target an explicit value: how to build the coupling
    graph for a program of [n] qumodes, which elimination-pattern
    embedding is native, how much mode routing the hardware affords,
    its circuit-depth ceiling, and its loss model. The rest of the
    stack derives everything from it in one place — the embedding
    ([Compiler.compile_for_target]), the dataflow backend
    ([Flow.backend_of_target]), pass-cache keys (the target name is
    folded into pass fingerprints), the lint engine's BH13xx pass, the
    [--target] CLI flags and the serve protocol's ["target"] field.

    Three targets are built in (catalogue in docs/TARGETS.md):

    - ["zigzag"] — the paper's 2-D nearest-neighbour lattice with the
      zigzag tree embedding (§IV-B). Compiling for it is bit-exact
      with [Compiler.compile] on the same lattice.
    - ["timebin-loop"] — a 1-D nearest-neighbour ring, the loop /
      time-bin interferometer regime (Leone & Turner,
      arXiv:2504.16880): one fibre loop gives wraparound adjacency and
      one hop of routing slack, but bounded storage caps the circuit
      depth.
    - ["orca-shallow"] — an ORCA-style shallow-circuit line (Brádler &
      Wallner, arXiv:2112.09766): chain coupling, no routing, and an
      aggressive depth ceiling — the regime where dropout must carry
      the depth budget. *)

(** How the target's physical layout scales with the program size [n].
    [Grid] targets have a native 2-D lattice and take the zigzag tree
    embedding; [Graph] targets supply an arbitrary coupling graph and
    take the generic {!Embedding.of_coupling} embedding. *)
type topology =
  | Grid of (int -> Lattice.t)
  | Graph of (int -> Coupling.t)

type t = {
  name : string;  (** Stable registry key, e.g. ["timebin-loop"]. *)
  doc : string;  (** One line, shown by [bosec targets]. *)
  topology : topology;
  routing_budget : int;
      (** Extra swap hops the hardware affords per rotation; a mode
          pair is feasible at coupling distance <= 1 + budget. *)
  max_depth : int -> int option;
      (** Circuit-depth ceiling as a function of the program size;
          [None] means unbounded. BH1102/BH1303 gate against it. *)
  noise : Bose_circuit.Noise.t;
  min_transmission : float;
      (** Loss-budget floor every mode's transmissivity must clear. *)
}

(** {2 Derived views} *)

val coupling : t -> int -> Coupling.t
(** The coupling graph for an [n]-qumode program (the lattice's graph
    for [Grid] targets). @raise Invalid_argument when [n < 1] or the
    constructor rejects [n]. *)

val device : t -> int -> Lattice.t option
(** The native lattice sized for [n] qumodes; [None] for [Graph]
    targets (they have no 2-D device — compile through the pattern). *)

val pattern : t -> int -> Pattern.t
(** The target's native elimination pattern for an [n]-qumode program:
    the zigzag tree restricted to [n] for [Grid] targets,
    {!Embedding.of_coupling_for_program} for [Graph] targets. *)

(** {2 Registry} *)

val register : t -> unit
(** Add a target to the registry.
    @raise Invalid_argument on an empty name, a name with spaces, or a
    name already registered — target names are stable cache-key and
    protocol currency, so collisions are programming errors. *)

val find : string -> t option
val names : unit -> string list
(** Registered names, sorted. *)

val all : unit -> t list
(** Registered targets, in name order. *)

val zigzag : t
val timebin_loop : t
val orca_shallow : t
(** The built-ins, pre-registered at module init. *)
