type t = { n : int; adjacency : int list array }

let bfs_reachable t start =
  let seen = Array.make t.n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    List.iter
      (fun w ->
         if not seen.(w) then begin
           seen.(w) <- true;
           Queue.add w queue
         end)
      t.adjacency.(v)
  done;
  !count

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Coupling.of_edges: need at least one qumode";
  let adjacency = Array.make n [] in
  List.iter
    (fun (a, b) ->
       if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Coupling.of_edges: vertex out of range";
       if a = b then invalid_arg "Coupling.of_edges: self-loop";
       adjacency.(a) <- b :: adjacency.(a);
       adjacency.(b) <- a :: adjacency.(b))
    edges;
  Array.iteri (fun i ns -> adjacency.(i) <- List.sort_uniq compare ns) adjacency;
  let t = { n; adjacency } in
  if n > 1 && bfs_reachable t 0 <> n then invalid_arg "Coupling.of_edges: graph is disconnected";
  t

let of_lattice lattice = of_edges ~n:(Lattice.size lattice) (Lattice.edges lattice)

let triangular ~rows ~cols =
  let lattice = Lattice.create ~rows ~cols in
  let diagonals = ref [] in
  for r = 0 to rows - 2 do
    for c = 0 to cols - 2 do
      diagonals := (Lattice.index lattice r c, Lattice.index lattice (r + 1) (c + 1)) :: !diagonals
    done
  done;
  of_edges ~n:(rows * cols) (Lattice.edges lattice @ !diagonals)

let hexagonal ~rows ~cols =
  if rows * cols < 1 then invalid_arg "Coupling.hexagonal: empty";
  let lattice = Lattice.create ~rows ~cols in
  let horizontal = ref [] and vertical = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 2 do
      horizontal := (Lattice.index lattice r c, Lattice.index lattice r (c + 1)) :: !horizontal
    done
  done;
  (* Brick-wall verticals: keep (r, c)-(r+1, c) only when r + c is even,
     giving the honeycomb's degree-3 structure. *)
  for r = 0 to rows - 2 do
    for c = 0 to cols - 1 do
      if (r + c) mod 2 = 0 then
        vertical := (Lattice.index lattice r c, Lattice.index lattice (r + 1) c) :: !vertical
    done
  done;
  of_edges ~n:(rows * cols) (!horizontal @ !vertical)

(* One shared spelling of the lattice-kind names, so `bosec analyze
   --coupling`, the layouts subcommand and the examples cannot drift
   apart. *)
let kind_names = [ "square"; "triangular"; "hexagonal" ]

let of_kind_string ~rows ~cols kind =
  match kind with
  | "square" -> Ok (of_lattice (Lattice.create ~rows ~cols))
  | "triangular" -> Ok (triangular ~rows ~cols)
  | "hexagonal" -> Ok (hexagonal ~rows ~cols)
  | other ->
    Error
      (Printf.sprintf "unknown coupling %s (expected %s)" other
         (String.concat " | " kind_names))

let size t = t.n
let neighbors t v = t.adjacency.(v)
let adjacent t a b = List.mem b t.adjacency.(a)

let edges t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    List.iter (fun w -> if w > v then acc := (v, w) :: !acc) t.adjacency.(v)
  done;
  !acc

let degree t v = List.length t.adjacency.(v)
let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (degree t v)
  done;
  !best

(* BFS returning distances and a parent tree. *)
let bfs t start =
  let dist = Array.make t.n (-1) in
  let parent = Array.make t.n (-1) in
  let queue = Queue.create () in
  dist.(start) <- 0;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
         if dist.(w) < 0 then begin
           dist.(w) <- dist.(v) + 1;
           parent.(w) <- v;
           Queue.add w queue
         end)
      t.adjacency.(v)
  done;
  (dist, parent)

let distance t a b =
  if a < 0 || a >= t.n || b < 0 || b >= t.n then
    invalid_arg "Coupling.distance: vertex out of range";
  if a = b then 0
  else begin
    let dist, _ = bfs t a in
    dist.(b)
  end

let distances t a =
  if a < 0 || a >= t.n then invalid_arg "Coupling.distances: vertex out of range";
  fst (bfs t a)

let farthest dist =
  let best = ref 0 in
  Array.iteri (fun v d -> if d > dist.(!best) then best := v) dist;
  !best

(* A dominating-path heuristic: walk from a peripheral node, always
   stepping to the neighbor whose closed neighborhood covers the most
   still-uncovered qumodes. Off-path qumodes end up adjacent to the path
   (or close to it), exactly the main-path + branches shape the
   Bosehedral template wants — which is why this is NOT a longest-path
   search: a Hamiltonian path would leave no qumodes to serve as
   branches. *)
let dominating_path t =
  if t.n = 1 then [ 0 ]
  else begin
    let dist0, _ = bfs t 0 in
    let start = farthest dist0 in
    let covered = Array.make t.n false in
    let on_path = Array.make t.n false in
    let cover v =
      covered.(v) <- true;
      List.iter (fun w -> covered.(w) <- true) t.adjacency.(v)
    in
    let gain v =
      let g = ref (if covered.(v) then 0 else 1) in
      List.iter (fun w -> if not covered.(w) then incr g) t.adjacency.(v);
      !g
    in
    let all_covered () =
      let ok = ref true in
      for v = 0 to t.n - 1 do
        if not covered.(v) then ok := false
      done;
      !ok
    in
    on_path.(start) <- true;
    cover start;
    let rec walk current acc =
      if all_covered () then List.rev acc
      else begin
        let candidates = List.filter (fun w -> not on_path.(w)) t.adjacency.(current) in
        match candidates with
        | [] -> List.rev acc
        | _ ->
          let best =
            List.fold_left
              (fun b w -> if gain w > gain b then w else b)
              (List.hd candidates) (List.tl candidates)
          in
          on_path.(best) <- true;
          cover best;
          walk best (best :: acc)
      end
    in
    walk start [ start ]
  end



let pp fmt t =
  Format.fprintf fmt "coupling graph: %d qumodes, %d edges, max degree %d" t.n
    (List.length (edges t)) (max_degree t)
