type t = { nrows : int; ncols : int }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Lattice.create: dimensions must be positive";
  { nrows = rows; ncols = cols }

let rows l = l.nrows
let cols l = l.ncols
let size l = l.nrows * l.ncols

let index l row col =
  if row < 0 || row >= l.nrows || col < 0 || col >= l.ncols then
    invalid_arg "Lattice.index: out of bounds";
  (row * l.ncols) + col

let coords l i =
  if i < 0 || i >= size l then invalid_arg "Lattice.coords: out of bounds";
  (i / l.ncols, i mod l.ncols)

let adjacent l a b =
  let ra, ca = coords l a and rb, cb = coords l b in
  abs (ra - rb) + abs (ca - cb) = 1

let neighbors l i =
  let r, c = coords l i in
  let candidates = [ (r - 1, c); (r, c - 1); (r, c + 1); (r + 1, c) ] in
  List.filter_map
    (fun (r, c) ->
       if r >= 0 && r < l.nrows && c >= 0 && c < l.ncols then Some (index l r c) else None)
    candidates

let edges l =
  let acc = ref [] in
  for i = size l - 1 downto 0 do
    List.iter (fun j -> if j > i then acc := (i, j) :: !acc) (neighbors l i)
  done;
  !acc

let snake_path l =
  List.concat
    (List.init l.nrows (fun r ->
         let row = List.init l.ncols (fun c -> index l r c) in
         if r mod 2 = 0 then row else List.rev row))

let pp fmt l = Format.fprintf fmt "%dx%d lattice (%d qumodes)" l.nrows l.ncols (size l)
