(* The construction works in a virtual orientation whose horizontal axis
   is the lattice's longer edge; [to_site] maps virtual coordinates back
   to flat device indices. Rows are grouped into 3-row bands with the
   main path on each band's middle row, vertical connectors at
   alternating ends, and the leftover 1 or 2 rows handled as in the
   paper's Fig. 5 (b): a leftover single row chains through the branch
   row below it; a leftover pair becomes a 2-row band with the main path
   on its lower row and branches above. *)

let build_virtual nr nc =
  let edges = ref [] in
  let mains = ref [] in
  let edge a b = edges := (a, b) :: !edges in
  let main v = mains := v :: !mains in
  let full_bands = nr / 3 and rem = nr mod 3 in
  if nr = 1 then begin
    for c = 0 to nc - 2 do
      edge (0, c) (0, c + 1)
    done;
    for c = 0 to nc - 1 do
      main (0, c)
    done
  end
  else if nr = 2 then begin
    for c = 0 to nc - 2 do
      edge (0, c) (0, c + 1)
    done;
    for c = 0 to nc - 1 do
      main (0, c);
      edge (1, c) (0, c)
    done
  end
  else begin
    (* End column of band b's main-path run. *)
    let end_col b = if b mod 2 = 0 then nc - 1 else 0 in
    let connector_col = Array.make nr (-1) in
    (* Full bands: horizontal main rows. *)
    for b = 0 to full_bands - 1 do
      let mr = (3 * b) + 1 in
      for c = 0 to nc - 2 do
        edge (mr, c) (mr, c + 1)
      done;
      for c = 0 to nc - 1 do
        main (mr, c)
      done
    done;
    (* Connectors between consecutive full bands. *)
    for b = 0 to full_bands - 2 do
      let e = end_col b in
      let mr = (3 * b) + 1 in
      edge (mr, e) (mr + 1, e);
      edge (mr + 1, e) (mr + 2, e);
      edge (mr + 2, e) (mr + 3, e);
      main (mr + 1, e);
      main (mr + 2, e);
      connector_col.(mr + 1) <- e;
      connector_col.(mr + 2) <- e
    done;
    (* Leftover rows. *)
    (match rem with
     | 0 -> ()
     | 1 ->
       (* Single extra row: chain each node through the branch below. *)
       for c = 0 to nc - 1 do
         edge (nr - 1, c) (nr - 2, c)
       done
     | 2 ->
       (* Two extra rows: 2-row band with main on its lower row. *)
       let e = end_col (full_bands - 1) in
       let emr = nr - 2 in
       edge (emr - 2, e) (emr - 1, e);
       edge (emr - 1, e) (emr, e);
       main (emr - 1, e);
       connector_col.(emr - 1) <- e;
       for c = 0 to nc - 2 do
         edge (emr, c) (emr, c + 1)
       done;
       for c = 0 to nc - 1 do
         main (emr, c);
         edge (nr - 1, c) (emr, c)
       done
     | _ -> assert false);
    (* Branch rows of full bands, skipping connector columns. *)
    for b = 0 to full_bands - 1 do
      let mr = (3 * b) + 1 in
      for c = 0 to nc - 1 do
        if connector_col.(mr - 1) <> c then edge (mr - 1, c) (mr, c);
        if mr + 1 < nr && connector_col.(mr + 1) <> c then edge (mr + 1, c) (mr, c)
      done
    done
  end;
  (!edges, !mains)

let zigzag lattice =
  let r = Lattice.rows lattice and c = Lattice.cols lattice in
  let transposed = r > c in
  let nr = if transposed then c else r
  and nc = if transposed then r else c in
  let to_site (vr, vc) =
    if transposed then Lattice.index lattice vc vr else Lattice.index lattice vr vc
  in
  let edges_rc, mains_rc = build_virtual nr nc in
  let n = Lattice.size lattice in
  let edges = List.map (fun (a, b) -> (to_site a, to_site b)) edges_rc in
  let main_path = List.map to_site mains_rc in
  let start = to_site (if nr >= 3 then (1, 0) else (0, 0)) in
  let sites = Array.init n (fun i -> i) in
  Pattern.of_tree ~main_path ~sites ~n ~edges ~start ()

let for_program lattice n =
  if n > Lattice.size lattice then
    invalid_arg "Embedding.for_program: program larger than device";
  Pattern.restrict (zigzag lattice) n

let of_coupling coupling =
  let n = Coupling.size coupling in
  let path = Coupling.dominating_path coupling in
  let on_path = Array.make n false in
  List.iter (fun v -> on_path.(v) <- true) path;
  let path_edges =
    let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
    pairs path
  in
  (* Multi-source BFS from the whole main path: every off-path qumode
     hangs off its BFS parent, keeping branches shallow. *)
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter (fun v -> Queue.add v queue) path;
  let visited = Array.copy on_path in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
         if not visited.(w) then begin
           visited.(w) <- true;
           parent.(w) <- v;
           Queue.add w queue
         end)
      (Coupling.neighbors coupling v)
  done;
  let branch_edges =
    List.filter_map
      (fun v -> if parent.(v) >= 0 then Some (v, parent.(v)) else None)
      (List.init n (fun v -> v))
  in
  let sites = Array.init n (fun i -> i) in
  Pattern.of_tree ~main_path:path ~sites ~n
    ~edges:(path_edges @ branch_edges)
    ~start:(List.hd path) ()

let of_coupling_for_program coupling n =
  if n > Coupling.size coupling then
    invalid_arg "Embedding.of_coupling_for_program: program larger than device";
  Pattern.restrict (of_coupling coupling) n

let baseline lattice n =
  if n > Lattice.size lattice then
    invalid_arg "Embedding.baseline: program larger than device";
  let path = Array.of_list (Lattice.snake_path lattice) in
  let edges = List.init (n - 1) (fun i -> (path.(i), path.(i + 1))) in
  let nodes = Array.sub path 0 n in
  (* Compress site ids to 0..n-1 for Pattern.of_tree. *)
  let id_of = Hashtbl.create n in
  Array.iteri (fun i site -> Hashtbl.add id_of site i) nodes;
  let compress s = Hashtbl.find id_of s in
  Pattern.of_tree
    ~main_path:(List.init n (fun i -> i))
    ~sites:nodes
    ~n
    ~edges:(List.map (fun (a, b) -> (compress a, compress b)) edges)
    ~start:(compress path.(0))
    ()
