(** Arbitrary qumode coupling graphs.

    The paper's design targets 2-D square lattices but notes the flow
    "can be generalized to other layouts like triangular or hexagonal
    arrays" (§IV) — this module provides those layouts plus fully
    general graphs, and {!Embedding.of_coupling} builds elimination
    patterns for them. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** @raise Invalid_argument on self-loops, out-of-range vertices, or a
    disconnected graph. Duplicate edges are merged. *)

val of_lattice : Lattice.t -> t

val triangular : rows:int -> cols:int -> t
(** Square grid plus one diagonal per cell (down-right), giving interior
    degree 6. *)

val hexagonal : rows:int -> cols:int -> t
(** Honeycomb-like coupling: the square grid keeps all horizontal edges
    but only every other vertical edge (brick-wall pattern), max
    degree 3. *)

val kind_names : string list
(** The lattice-kind spellings {!of_kind_string} accepts:
    ["square"; "triangular"; "hexagonal"]. *)

val of_kind_string : rows:int -> cols:int -> string -> (t, string) result
(** Parse a lattice-kind name into its coupling graph on a
    [rows]x[cols] grid — the one parser behind [bosec analyze
    --coupling], [bosec layouts] and the examples. [Error] carries a
    user-facing message naming the accepted kinds. *)

val size : t -> int
val adjacent : t -> int -> int -> bool
val neighbors : t -> int -> int list
val edges : t -> (int * int) list
val degree : t -> int -> int
val max_degree : t -> int

val distance : t -> int -> int -> int
(** BFS hop distance between two qumodes; [-1] when unreachable (cannot
    happen for graphs built by {!of_edges}, which rejects disconnected
    inputs, but kept total for defensive callers). O(V+E) per query.
    @raise Invalid_argument when either vertex is out of range. *)

val distances : t -> int -> int array
(** All hop distances from one source in a single BFS — what callers
    amortizing many queries per source (the flow feasibility memo)
    should use instead of repeated {!distance} calls.
    @raise Invalid_argument when the vertex is out of range. *)

val dominating_path : t -> int list
(** A simple path whose closed neighborhood covers most qumodes, found
    greedily from a peripheral start — the main amplitude-accumulation
    path for generic embeddings. Deliberately not a longest path:
    off-path qumodes are needed as branches. The walk can get cornered
    on low-degree layouts before covering everything; leftover qumodes
    become deeper branches in {!Embedding.of_coupling}. *)

val pp : Format.formatter -> t -> unit
