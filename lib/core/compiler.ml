module Mat = Bose_linalg.Mat
module Perm = Bose_linalg.Perm
module Lattice = Bose_hardware.Lattice
module Pattern = Bose_hardware.Pattern
module Plan = Bose_decomp.Plan
module Mapping = Bose_mapping.Mapping
module Dropout = Bose_dropout.Dropout
module Obs = Bose_obs.Obs
module Lint = Bose_lint.Lint
module Flow = Bose_flow.Flow
module Coupling = Bose_hardware.Coupling
module Target = Bose_hardware.Target
module Rng = Bose_util.Rng
module Pool = Bose_par.Pool

let c_compiles = Obs.Counter.make "compile.runs"
let c_batch_jobs = Obs.Counter.make "compile.batch_jobs"
let g_modes = Obs.Gauge.make "compile.modes"
let g_plan_rotations = Obs.Gauge.make "compile.plan_rotations"
let g_predicted_fidelity = Obs.Gauge.make "compile.predicted_fidelity"
let g_bytes_allocated = Obs.Gauge.make "compile.bytes_allocated"
let g_mats_allocated = Obs.Gauge.make "compile.mats_allocated"
let g_ws_hits = Obs.Gauge.make "compile.ws_hits"
let g_ws_misses = Obs.Gauge.make "compile.ws_misses"
let g_cache_hits = Obs.Gauge.make "compile.cache_hits"
let g_cache_misses = Obs.Gauge.make "compile.cache_misses"
let g_bytes_offheap = Obs.Gauge.make "mat.bytes_offheap"
let g_lock_releases = Obs.Gauge.make "mat.lock_releases"

type effort = Pass.effort = Fast | Standard

type timings = { decomposition_s : float; total_s : float }

type t = {
  config : Config.t;
  tau : float;
  device : Lattice.t;
  target : Target.t option;
  pattern : Pattern.t;
  mapping : Mapping.t;
  plan : Plan.t;
  policy : Dropout.policy option;
  timings : timings;
  trace : Lint.pipeline_trace;
}

(* The driver: build a compile context, execute the registered pipeline
   over it (optionally through an artifact cache), and assemble the
   result from the context's artifact cells. The per-stage work lives
   in Pass.{embed,map,decompose,dropout}; this function only sequences
   and observes. *)
let drive ?cache ?(disabled = []) ?target ?pool ~effort ~tau ~rng ~device ~config ~source u =
  let n = Mat.rows u in
  Obs.Counter.incr c_compiles;
  Obs.Gauge.observe_max g_modes (float_of_int n);
  (* One workspace per compile: mapping's candidate/polish eliminations
     share Mat.Slot.elimination, dropout's fidelity replays
     Mat.Slot.replay. Allocation gauges make workspace regressions
     visible in BENCH_TELEMETRY.json. *)
  let ws = Mat.workspace () in
  let bytes0 = Gc.allocated_bytes () in
  let mats0 = Mat.allocations () in
  let offheap0 = Mat.bytes_offheap () in
  let locks0 = Mat.lock_releases () in
  let ctx =
    Pass.context ~effort ~tau
      ?target:(Option.map (fun (t : Target.t) -> t.Target.name) target)
      ?pool ~rng ~device ~config ~source ~ws u
  in
  let trace = Pipeline.run ?cache ~disabled Pipeline.default ctx in
  let pattern = Pass.pattern_exn ctx in
  let mapping = Pass.mapping_exn ctx in
  let plan = Pass.plan_exn ctx in
  let policy = ctx.Pass.policy in
  Obs.Gauge.set g_plan_rotations (float_of_int (Plan.rotation_count plan));
  Obs.Gauge.set g_predicted_fidelity
    (match policy with None -> 1. | Some p -> p.Dropout.expected_fidelity);
  Obs.Gauge.set g_bytes_allocated (Gc.allocated_bytes () -. bytes0);
  Obs.Gauge.set g_mats_allocated (float_of_int (Mat.allocations () - mats0));
  Obs.Gauge.set g_ws_hits (float_of_int (Mat.workspace_hits ws));
  Obs.Gauge.set g_ws_misses (float_of_int (Mat.workspace_misses ws));
  Obs.Gauge.set g_cache_hits (float_of_int (Pipeline.hits trace));
  Obs.Gauge.set g_cache_misses (float_of_int (Pipeline.misses trace));
  Obs.Gauge.set g_bytes_offheap (float_of_int (Mat.bytes_offheap () - offheap0));
  Obs.Gauge.set g_lock_releases (float_of_int (Mat.lock_releases () - locks0));
  let stage = Pipeline.elapsed trace in
  {
    config;
    tau;
    device;
    target;
    pattern;
    mapping;
    plan;
    policy;
    (* Same brackets as the pre-pipeline Sys.time stamps: decomposition
       covers map + decompose, total additionally includes dropout. *)
    timings =
      {
        decomposition_s = stage "map" +. stage "decompose";
        total_s = stage "map" +. stage "decompose" +. stage "dropout";
      };
    trace = Pipeline.lint_trace ~disabled Pipeline.default trace;
  }

let compile ?(effort = Standard) ?(tau = 0.999) ?cache ?disabled_passes ?pool ~rng ~device
    ~config u =
  let n = Mat.rows u in
  if Mat.cols u <> n then invalid_arg "Compiler.compile: unitary must be square";
  if n > Lattice.size device then
    invalid_arg "Compiler.compile: program larger than device";
  Obs.Span.with_ "compile" (fun () ->
      drive ?cache ?disabled:disabled_passes ?pool ~effort ~tau ~rng ~device ~config
        ~source:Pass.Device u)

let compile_with_pattern ?(effort = Standard) ?(tau = 0.999) ?cache ?disabled_passes ?pool
    ~rng ~pattern ~config u =
  let n = Mat.rows u in
  if Mat.cols u <> n then invalid_arg "Compiler.compile_with_pattern: unitary must be square";
  if n <> Pattern.size pattern then
    invalid_arg "Compiler.compile_with_pattern: pattern size mismatch";
  let device = Lattice.create ~rows:1 ~cols:n in
  Obs.Span.with_ "compile" (fun () ->
      drive ?cache ?disabled:disabled_passes ?pool ~effort ~tau ~rng ~device ~config
        ~source:(Pass.Explicit pattern) u)

(* Target-directed compilation. Grid targets run through the same
   [source = Device] path as [compile] with the target-sized lattice —
   identical pass bodies and RNG draw order, so a zigzag compile is
   bit-identical to [compile ~device:(square-ish lattice)]; only the
   fingerprints (cache keys) carry the target identity. Graph targets
   have no lattice, so the target's derived elimination pattern goes in
   explicitly, with a placeholder 1×n device (the same convention as
   [compile_with_pattern]). *)
let compile_for_target ?(effort = Standard) ?(tau = 0.999) ?cache ?disabled_passes ?pool
    ~rng ~target ~config u =
  let n = Mat.rows u in
  if Mat.cols u <> n then invalid_arg "Compiler.compile_for_target: unitary must be square";
  let device, source =
    match Target.device target n with
    | Some lattice ->
      if n > Lattice.size lattice then
        invalid_arg "Compiler.compile_for_target: program larger than target device";
      (lattice, Pass.Device)
    | None -> (Lattice.create ~rows:1 ~cols:n, Pass.Explicit (Target.pattern target n))
  in
  Obs.Span.with_ "compile" (fun () ->
      drive ?cache ?disabled:disabled_passes ~target ?pool ~effort ~tau ~rng ~device
        ~config ~source u)

(* The same fields the passes fingerprint, folded once per job. Jobs
   with identical inputs get identical streams, so a cache replay of a
   duplicate job is indistinguishable from recompiling it. *)
let job_fingerprint ~effort ~tau ~config u =
  Pass.Fingerprint.(
    mat (string (float (string seed (Config.name config)) tau) (Pass.effort_name effort)) u)

let compile_batch ?(effort = Standard) ?(tau = 0.999) ?cache ?(jobs = 1) ~rng ~device
    job_list =
  if jobs < 1 then invalid_arg "Compiler.compile_batch: jobs must be >= 1";
  let n = List.length job_list in
  (* Content-keyed per-job RNG streams: one base draw from the caller's
     rng, XORed with each job's input fingerprint. Every job's stream
     is then a function of the batch seed and the job's own inputs —
     independent of job order, sharding, and cache replays — which is
     what makes [~jobs:n] output bit-identical to sequential. *)
  let base = Rng.bits64 rng in
  let stream_for (u, config) =
    Rng.of_key (Int64.logxor base (job_fingerprint ~effort ~tau ~config u))
  in
  let compile_job cache ((u, config) as job) =
    Obs.Counter.incr c_batch_jobs;
    compile ~effort ~tau ~cache ~rng:(stream_for job) ~device ~config u
  in
  let domains = min jobs n in
  if domains <= 1 then begin
    (* Sequential: one shared cache across the whole batch, so jobs
       with identical fingerprints replay each other's patterns,
       mappings, plans and policies instead of recompiling them. *)
    let cache = match cache with Some c -> c | None -> Pipeline.Cache.create () in
    Obs.Span.with_ "compile.batch" (fun () -> List.map (compile_job cache) job_list)
  end
  else
    Obs.Span.with_ "compile.batch" (fun () ->
        let arr = Array.of_list job_list in
        let out = Array.make n None in
        (* Each chunk gets its own cache (shared mutable caches would
           race across domains) and its own [Mat.workspace] via the
           per-compile workspace in [drive]. Chunk boundaries depend
           only on [domains] and [n], never on scheduling. *)
        let chunk_stats = Array.make domains None in
        Pool.with_pool ~domains (fun pool ->
            Pool.chunked_iter pool ~chunks:domains ~n (fun ~chunk ~lo ~hi ->
                let local = Pipeline.Cache.create () in
                for i = lo to hi - 1 do
                  out.(i) <- Some (compile_job local arr.(i))
                done;
                chunk_stats.(chunk) <- Some (Pipeline.Cache.stats local)));
        (* Surface domain-local hit rates through the caller's cache. *)
        (match cache with
         | None -> ()
         | Some c ->
           Array.iter
             (function None -> () | Some s -> Pipeline.Cache.absorb c s)
             chunk_stats);
        Array.to_list out
        |> List.map (function Some t -> t | None -> assert false))

let shot_mask rng t =
  match t.policy with
  | None -> None
  | Some policy ->
    if policy.Dropout.kept_count >= Plan.rotation_count t.plan then None
    else begin
      match t.config with
      | Config.Rot_cut -> Some (Dropout.hard_kept policy t.plan)
      | Config.Baseline | Config.Decomp_opt | Config.Full_opt ->
        Some (Dropout.sample_kept rng policy t.plan)
    end

let shot_circuit ?prelude rng t =
  Obs.Span.with_ "compile.shot_circuit" (fun () ->
      let kept = shot_mask rng t in
      Plan.to_circuit ?kept ?prelude t.plan)

let approx_unitary ?kept t =
  let u_app = Plan.reconstruct ?kept t.plan in
  (* u_app is fresh, so the two relabelings are applied in place. *)
  Perm.permute_cols_inplace (Perm.inverse t.mapping.Mapping.col_perm) u_app;
  Perm.permute_rows_inplace (Perm.inverse t.mapping.Mapping.row_perm) u_app;
  u_app

let predicted_fidelity t =
  match t.policy with None -> 1. | Some p -> p.Dropout.expected_fidelity

let beamsplitter_reduction t =
  match t.policy with None -> 0. | Some p -> Dropout.dropped_fraction p t.plan

let beamsplitters_kept t =
  match t.policy with
  | None -> Plan.rotation_count t.plan
  | Some p -> p.Dropout.kept_count

let small_angles t ~threshold = Plan.small_angle_count t.plan ~threshold

(* Static verification is delegated to the lint engine: one subject
   per compiled result, every artifact slotted in. The permuted
   unitary doubles as the plan's replay reference, and un-permuting it
   must recover the program unitary ([?unitary]) bit-exactly. *)
(* The compiled result's own hardware backend for dataflow analysis:
   the device lattice as coupling graph, with the pattern's embedding
   as the label → site map. The coupling is attached only when the
   device actually explains the embedding — every label has a site and
   every pattern tree edge sits on device-adjacent sites (the same
   invariant lint's BH0202 checks). [compile_with_pattern] results
   carry a placeholder 1×n device that generally fails this test (the
   explicit pattern may be embedded for a different topology), so they
   analyze without feasibility — depth, liveness and budgets are still
   reported. Target-compiled results short-circuit all of this: the
   target IS the backend (its coupling graph, routing budget, depth
   ceiling, noise model and loss floor), with the compile pattern's
   sites as the label → site map when the pattern carries one. *)
let flow_backend_from_device t =
  let n = Pattern.size t.pattern in
  let sites = Array.make n (-1) in
  let faithful = ref true in
  for label = 0 to n - 1 do
    match Pattern.site t.pattern label with
    | Some s -> sites.(label) <- s
    | None -> faithful := false
  done;
  let on_device s = s >= 0 && s < Lattice.size t.device in
  if !faithful then
    for m = 0 to n - 1 do
      if not (on_device sites.(m)) then faithful := false
      else
        List.iter
          (fun nb ->
             if
               nb > m
               && not
                    (on_device sites.(nb)
                     && Lattice.adjacent t.device sites.(m) sites.(nb))
             then faithful := false)
          (Pattern.neighbors t.pattern m)
    done;
  if !faithful then
    Flow.backend ~coupling:(Coupling.of_lattice t.device) ~sites ()
  else Flow.backend ()

let flow_backend t =
  match t.target with
  | Some target ->
    let n = Pattern.size t.pattern in
    let sites = Array.make n (-1) in
    let embedded = ref true in
    for label = 0 to n - 1 do
      match Pattern.site t.pattern label with
      | Some s -> sites.(label) <- s
      | None -> embedded := false
    done;
    Flow.backend_of_target ?sites:(if !embedded then Some sites else None) ~n target
  | None -> flow_backend_from_device t

let lint ?settings ?unitary t =
  let subject =
    {
      Lint.empty with
      Lint.unitary;
      pattern = Some t.pattern;
      mapping = Some t.mapping;
      plan = Some t.plan;
      reference = Some t.mapping.Mapping.permuted;
      policy = t.policy;
      pipeline = Some t.trace;
      backend = Some (flow_backend t);
      target_name = Option.map (fun (tg : Target.t) -> tg.Target.name) t.target;
    }
  in
  Lint.run ?settings subject

(* Dataflow analysis of the compiled plan under the policy's
   deterministic hard mask — what a shot of the program actually
   keeps — against the result's own backend (or [?backend]). *)
let analyze ?backend t =
  let b = match backend with Some b -> b | None -> flow_backend t in
  let kept = Option.map (fun p -> Dropout.hard_kept p t.plan) t.policy in
  Flow.analyze ?kept ~backend:b t.plan

let verify t =
  match List.find_opt Lint.Diag.is_error (lint t) with
  | None -> Ok ()
  | Some d -> Error (Format.asprintf "%a" Lint.Diag.pp d)

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>%a on %a: %d modes, %d rotations, keep %d (-%.1f%%), predicted fidelity %.4f, \
     decomp %.3fs total %.3fs@]"
    Config.pp t.config Lattice.pp t.device t.plan.Plan.modes
    (Plan.rotation_count t.plan) (beamsplitters_kept t)
    (100. *. beamsplitter_reduction t)
    (predicted_fidelity t) t.timings.decomposition_s t.timings.total_s
