module Mat = Bose_linalg.Mat
module Perm = Bose_linalg.Perm
module Lattice = Bose_hardware.Lattice
module Pattern = Bose_hardware.Pattern
module Embedding = Bose_hardware.Embedding
module Plan = Bose_decomp.Plan
module Eliminate = Bose_decomp.Eliminate
module Mapping = Bose_mapping.Mapping
module Dropout = Bose_dropout.Dropout
module Obs = Bose_obs.Obs
module Lint = Bose_lint.Lint

let c_compiles = Obs.Counter.make "compile.runs"
let g_modes = Obs.Gauge.make "compile.modes"
let g_plan_rotations = Obs.Gauge.make "compile.plan_rotations"
let g_predicted_fidelity = Obs.Gauge.make "compile.predicted_fidelity"
let g_bytes_allocated = Obs.Gauge.make "compile.bytes_allocated"
let g_mats_allocated = Obs.Gauge.make "compile.mats_allocated"
let g_ws_hits = Obs.Gauge.make "compile.ws_hits"
let g_ws_misses = Obs.Gauge.make "compile.ws_misses"

type effort = Fast | Standard

type timings = { decomposition_s : float; total_s : float }

type t = {
  config : Config.t;
  tau : float;
  device : Lattice.t;
  pattern : Pattern.t;
  mapping : Mapping.t;
  plan : Plan.t;
  policy : Dropout.policy option;
  timings : timings;
}

let mapping_candidates effort n =
  match effort with
  | Standard -> None (* Mapping.optimize defaults *)
  | Fast -> Some [ max 1 (n / 3); max 1 (n / 2) ]

let dropout_knobs effort n =
  match effort with
  | Standard -> ([ 1; 2; 5; 10; 20; 50; 100 ], 40)
  | Fast -> ([ 1; 20; 100 ], max 4 (min 10 (4000 / (n + 1))))

(* The polish hill-climb pays one O(N³) decomposition per trial: scale
   the trial count so the pass stays a modest fraction of compile time. *)
let polish_trials effort n =
  let base = match effort with Standard -> 500 | Fast -> 150 in
  min base (max 0 (600_000_000 / (n * n * n)))

let run_pipeline ~effort ~tau ~rng ~device ~config ~pattern u =
  let n = Mat.rows u in
  Obs.Counter.incr c_compiles;
  Obs.Gauge.observe_max g_modes (float_of_int n);
  (* One workspace per compile: mapping's candidate/polish eliminations
     share slot 0, dropout's fidelity replays slot 1. Allocation gauges
     make workspace regressions visible in BENCH_TELEMETRY.json. *)
  let ws = Mat.workspace () in
  let bytes0 = Gc.allocated_bytes () in
  let mats0 = Mat.allocations () in
  let t0 = Sys.time () in
  let mapping =
    Obs.Span.with_ "compile.map" (fun () ->
        if Config.uses_mapping config then begin
          let first =
            Mapping.optimize ~ws ?candidate_ks:(mapping_candidates effort n) pattern u
          in
          let trials = polish_trials effort n in
          if trials > 0 then
            Obs.Span.with_ "compile.map.polish" (fun () ->
                Mapping.polish ~ws ~trials ~tau ~rng pattern first)
          else first
        end
        else Mapping.trivial u)
  in
  let plan =
    Obs.Span.with_ "compile.decompose" (fun () ->
        Eliminate.decompose ~ws pattern mapping.Mapping.permuted)
  in
  let t1 = Sys.time () in
  let policy =
    Obs.Span.with_ "compile.dropout" (fun () ->
        if Config.uses_dropout config then begin
          let powers, iterations = dropout_knobs effort n in
          Some
            (Dropout.make_policy ~ws ~powers ~iterations rng plan mapping.Mapping.permuted
               ~tau)
        end
        else None)
  in
  let t2 = Sys.time () in
  Obs.Gauge.set g_plan_rotations (float_of_int (Plan.rotation_count plan));
  Obs.Gauge.set g_predicted_fidelity
    (match policy with None -> 1. | Some p -> p.Dropout.expected_fidelity);
  Obs.Gauge.set g_bytes_allocated (Gc.allocated_bytes () -. bytes0);
  Obs.Gauge.set g_mats_allocated (float_of_int (Mat.allocations () - mats0));
  Obs.Gauge.set g_ws_hits (float_of_int (Mat.workspace_hits ws));
  Obs.Gauge.set g_ws_misses (float_of_int (Mat.workspace_misses ws));
  {
    config;
    tau;
    device;
    pattern;
    mapping;
    plan;
    policy;
    timings = { decomposition_s = t1 -. t0; total_s = t2 -. t0 };
  }

let compile ?(effort = Standard) ?(tau = 0.999) ~rng ~device ~config u =
  let n = Mat.rows u in
  if Mat.cols u <> n then invalid_arg "Compiler.compile: unitary must be square";
  if n > Lattice.size device then
    invalid_arg "Compiler.compile: program larger than device";
  Obs.Span.with_ "compile" (fun () ->
      let pattern =
        Obs.Span.with_ "compile.embed" (fun () ->
            if Config.uses_tree_pattern config then Embedding.for_program device n
            else Embedding.baseline device n)
      in
      run_pipeline ~effort ~tau ~rng ~device ~config ~pattern u)

let compile_with_pattern ?(effort = Standard) ?(tau = 0.999) ~rng ~pattern ~config u =
  let n = Mat.rows u in
  if Mat.cols u <> n then invalid_arg "Compiler.compile_with_pattern: unitary must be square";
  if n <> Pattern.size pattern then
    invalid_arg "Compiler.compile_with_pattern: pattern size mismatch";
  let pattern = if Config.uses_tree_pattern config then pattern else Pattern.chain n in
  let device = Lattice.create ~rows:1 ~cols:n in
  Obs.Span.with_ "compile" (fun () ->
      run_pipeline ~effort ~tau ~rng ~device ~config ~pattern u)

let shot_mask rng t =
  match t.policy with
  | None -> None
  | Some policy ->
    if policy.Dropout.kept_count >= Plan.rotation_count t.plan then None
    else begin
      match t.config with
      | Config.Rot_cut -> Some (Dropout.hard_kept policy t.plan)
      | Config.Baseline | Config.Decomp_opt | Config.Full_opt ->
        Some (Dropout.sample_kept rng policy t.plan)
    end

let shot_circuit ?prelude rng t =
  Obs.Span.with_ "compile.shot_circuit" (fun () ->
      let kept = shot_mask rng t in
      Plan.to_circuit ?kept ?prelude t.plan)

let approx_unitary ?kept t =
  let u_app = Plan.reconstruct ?kept t.plan in
  (* u_app is fresh, so the two relabelings are applied in place. *)
  Perm.permute_cols_inplace (Perm.inverse t.mapping.Mapping.col_perm) u_app;
  Perm.permute_rows_inplace (Perm.inverse t.mapping.Mapping.row_perm) u_app;
  u_app

let predicted_fidelity t =
  match t.policy with None -> 1. | Some p -> p.Dropout.expected_fidelity

let beamsplitter_reduction t =
  match t.policy with None -> 0. | Some p -> Dropout.dropped_fraction p t.plan

let beamsplitters_kept t =
  match t.policy with
  | None -> Plan.rotation_count t.plan
  | Some p -> p.Dropout.kept_count

let small_angles t ~threshold = Plan.small_angle_count t.plan ~threshold

(* Static verification is delegated to the lint engine: one subject
   per compiled result, every artifact slotted in. The permuted
   unitary doubles as the plan's replay reference, and un-permuting it
   must recover the program unitary ([?unitary]) bit-exactly. *)
let lint ?settings ?unitary t =
  let subject =
    {
      Lint.empty with
      Lint.unitary;
      pattern = Some t.pattern;
      mapping = Some t.mapping;
      plan = Some t.plan;
      reference = Some t.mapping.Mapping.permuted;
      policy = t.policy;
    }
  in
  Lint.run ?settings subject

let verify t =
  match List.find_opt Lint.Diag.is_error (lint t) with
  | None -> Ok ()
  | Some d -> Error (Format.asprintf "%a" Lint.Diag.pp d)

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>%a on %a: %d modes, %d rotations, keep %d (-%.1f%%), predicted fidelity %.4f, \
     decomp %.3fs total %.3fs@]"
    Config.pp t.config Lattice.pp t.device t.plan.Plan.modes
    (Plan.rotation_count t.plan) (beamsplitters_kept t)
    (100. *. beamsplitter_reduction t)
    (predicted_fidelity t) t.timings.decomposition_s t.timings.total_s
