(** The pass-manager pipeline: an ordered registry of {!Pass.t} values
    executed over a shared compile context, with per-pass telemetry
    spans, a fingerprint-keyed artifact cache, and an execution trace
    the lint engine audits (BH09xx).

    [Compiler.compile] and [compile_with_pattern] are thin drivers over
    {!default}; [Compiler.compile_batch] shares one {!Cache.t} across a
    job list so identical fingerprints reuse recorded artifacts. *)

type t
(** An ordered pass registry. *)

val make : Pass.t list -> t
(** Validate and freeze a registry: pass names unique, at most one
    producer per artifact kind, every dependency produced by an earlier
    pass. @raise Invalid_argument otherwise. *)

val default : t
(** The paper pipeline: [embed → map → decompose → dropout]. *)

val passes : t -> Pass.t list
val names : t -> string list
val find : t -> string -> Pass.t option

val dep_names : Pass.t list -> Pass.t -> string list
(** Names of the passes (among the given list) producing the artifact
    kinds a pass depends on. *)

(** Bounded-LRU artifact cache keyed by
    ["<pass>:<input fingerprint>"]. Artifacts are deep-copied on both
    insert and hit ({!Pass.copy_artifact}), so cache contents never
    alias caller-visible matrices. A hit replays the recorded artifact
    and skips the pass body entirely — including its RNG draws: the
    cache canonicalizes a fingerprint to the first artifact computed
    for it. Per-compile hit/miss counts surface as the
    [compile.cache_hits]/[compile.cache_misses] gauges (METRICS.md);
    lifetime totals via {!Cache.stats} ([bosec compile --cache-stats]). *)
module Cache : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 256) bounds the entry count; the
      least-recently-used entry is evicted at the bound.
      @raise Invalid_argument if [capacity < 1]. *)

  val clear : t -> unit
  (** Drop every entry (statistics survive). *)

  type stats = {
    hits : int;
    misses : int;
    entries : int;
    evictions : int;
    capacity : int;
  }

  val stats : t -> stats
  (** Lifetime totals since [create]. *)

  val absorb : t -> stats -> unit
  (** Fold another cache's statistics into this one's lifetime totals
      ([hits]/[misses]/[evictions] add; [entries]/[capacity] are
      ignored). Used by [Compiler.compile_batch ~jobs] to surface the
      hit rates of its domain-local caches through the caller's cache. *)

  val pp : Format.formatter -> t -> unit
end

type exec = {
  pass : string;
  cache_hit : bool;  (** The pass replayed a cached artifact. *)
  elapsed_s : float;  (** [Sys.time] spent in the stage (lookup + body). *)
}

type trace = exec list
(** One {!exec} per executed pass, in execution order. Disabled passes
    do not appear (their neutral artifact comes from [Pass.skip]). *)

val elapsed : trace -> string -> float
val hits : trace -> int
val misses : trace -> int

val run :
  ?cache:Cache.t -> ?disabled:string list -> t -> Pass.ctx -> trace
(** Execute the registry front to back over the context: for each
    enabled pass, open its telemetry span, look its input fingerprint
    up in [cache] (when given), and either replay the recorded artifact
    or run the body and record the result. Disabled passes store their
    [Pass.skip] artifact without running, outside spans, cache and
    trace.
    @raise Invalid_argument for an unknown or mandatory name in
    [disabled]. *)

val lint_trace :
  ?disabled:string list -> t -> trace -> Bose_lint.Lint.pipeline_trace
(** Project a run onto the lint engine's pipeline-trace shape: the
    effective (post-disable) registry with resolved dependency names,
    plus the executed list. A clean run lints to zero BH09xx
    diagnostics, cold or cache-hit alike. *)
