module Rng = Bose_util.Rng
module Dist = Bose_util.Dist
module Cx = Bose_linalg.Cx
module Mat = Bose_linalg.Mat
module Perm = Bose_linalg.Perm
module Gate = Bose_circuit.Gate
module Circuit = Bose_circuit.Circuit
module Gaussian = Bose_gbs.Gaussian
module Fock = Bose_gbs.Fock
module Mapping = Bose_mapping.Mapping
module Plan = Bose_decomp.Plan
module Obs = Bose_obs.Obs

let c_realizations = Obs.Counter.make "run.realizations"

type program = {
  squeezing : Cx.t array;
  unitary : Mat.t;
  displacements : Cx.t array;
  thermal : float array;
}

let pure_program ~squeezing ~unitary ?displacements () =
  let n = Mat.rows unitary in
  {
    squeezing;
    unitary;
    displacements = (match displacements with Some d -> d | None -> Array.make n Cx.zero);
    thermal = Array.make n 0.;
  }

let program_modes p = Mat.rows p.unitary

let validate_program p =
  let n = program_modes p in
  if Mat.cols p.unitary <> n then invalid_arg "Runner: unitary must be square";
  if Array.length p.squeezing <> n then invalid_arg "Runner: squeezing length mismatch";
  if Array.length p.displacements <> n then
    invalid_arg "Runner: displacements length mismatch";
  if Array.length p.thermal <> n then invalid_arg "Runner: thermal length mismatch";
  Array.iter
    (fun x -> if x < 0. then invalid_arg "Runner: negative thermal occupation")
    p.thermal

(* State preparation and final displacements in physical qumode order,
   per the §V-B relabeling: logical input i sits on physical qumode
   col_perm(i); logical output i is read from physical row_perm(i). *)
let prelude_gates mapping p =
  let n = program_modes p in
  List.filter_map
    (fun i ->
       if Cx.abs p.squeezing.(i) = 0. then None
       else Some (Gate.Squeeze (Mapping.input_site mapping i, p.squeezing.(i))))
    (List.init n (fun i -> i))

let displacement_gates mapping p =
  let n = program_modes p in
  List.filter_map
    (fun i ->
       if Cx.abs p.displacements.(i) = 0. then None
       else Some (Gate.Displace (Perm.apply mapping.Mapping.row_perm i, p.displacements.(i))))
    (List.init n (fun i -> i))

let gate_counts p ~device =
  validate_program p;
  let rng = Rng.create 0 in
  let compiled =
    Compiler.compile ~rng ~device ~config:Config.Baseline p.unitary
  in
  let circuit =
    Circuit.add_all
      (Plan.to_circuit ~prelude:(prelude_gates compiled.Compiler.mapping p) compiled.Compiler.plan)
      (displacement_gates compiled.Compiler.mapping p)
  in
  Circuit.gate_counts circuit

let ideal_distribution ~max_photons p =
  validate_program p;
  Obs.Span.with_ "run.ideal_distribution" (fun () ->
      let n = program_modes p in
      let state = Gaussian.thermal n p.thermal in
      Array.iteri (fun i a -> if Cx.abs a > 0. then Gaussian.squeeze state i a) p.squeezing;
      Gaussian.interferometer state p.unitary;
      Array.iteri (fun i a -> if Cx.abs a > 0. then Gaussian.displace state i a) p.displacements;
      Fock.truncated ~max_photons state)

(* Relabel a physical output pattern to logical order; the tail outcome
   passes through unchanged. *)
let relabel mapping pattern =
  if pattern = Fock.tail then pattern
  else begin
    let arr = Array.of_list pattern in
    Array.to_list (Array.init (Array.length arr) (fun i ->
        arr.(Perm.apply mapping.Mapping.row_perm i)))
  end

let one_realization ~rng ~noise ~max_photons compiled p =
  Obs.Counter.incr c_realizations;
  Obs.Span.with_ "run.shot" @@ fun () ->
  let mapping = compiled.Compiler.mapping in
  let circuit =
    Circuit.add_all
      (Compiler.shot_circuit ~prelude:(prelude_gates mapping p) rng compiled)
      (displacement_gates mapping p)
  in
  (* Thermal input for logical mode i sits on its physical input site. *)
  let modes = Circuit.modes circuit in
  let nbar = Array.make modes 0. in
  Array.iteri (fun i x -> nbar.(Mapping.input_site mapping i) <- x) p.thermal;
  let state = Gaussian.thermal modes nbar in
  Gaussian.run_circuit ~noise state circuit;
  Dist.map_outcomes (relabel mapping) (Fock.truncated ~max_photons state)

let noisy_distribution ?(realizations = 16) ~rng ~noise ~max_photons compiled p =
  validate_program p;
  Obs.Span.with_ "run.noisy_distribution" @@ fun () ->
  let shots =
    match compiled.Compiler.policy with
    | None -> 1 (* deterministic circuit: one exact simulation suffices *)
    | Some policy ->
      if policy.Bose_dropout.Dropout.kept_count
         >= Plan.rotation_count compiled.Compiler.plan
      then 1
      else begin
        match compiled.Compiler.config with
        | Config.Rot_cut -> 1 (* hard threshold is deterministic too *)
        | Config.Baseline | Config.Decomp_opt | Config.Full_opt -> realizations
      end
  in
  let dists =
    List.init shots (fun _ -> (1., one_realization ~rng ~noise ~max_photons compiled p))
  in
  Dist.mix dists

let jsd_vs_ideal ?realizations ~rng ~noise ~max_photons compiled p =
  let ideal = ideal_distribution ~max_photons p in
  let noisy = noisy_distribution ?realizations ~rng ~noise ~max_photons compiled p in
  Dist.jsd ideal noisy
