(** The Bosehedral compile pipeline: elimination-pattern selection,
    qumode mapping, decomposition, and dropout-policy construction.

    [compile] consumes the program's high-level semantics — the N×N
    interferometer unitary — plus the device, and produces everything
    needed to generate per-shot circuits and to reason about the
    approximation at compile time (the paper's §III-B problem).

    {2 Pass contract}

    [compile] is a thin driver over the default pass-manager pipeline
    ({!Pipeline.default}): four registered {!Pass.t} stages executed in
    dependency order over a shared compile context, each wrapped in the
    telemetry span named below (see docs/METRICS.md), and the whole
    call in span ["compile"]:

    - {b embed} (["compile.embed"]): device + config → elimination
      pattern. With tree-pattern configs, a pattern tree embedded into
      the device's coupling graph; otherwise a chain. Every pattern
      edge must be a physically coupled qumode pair.
    - {b map} (["compile.map"], nested ["compile.map.polish"]):
      unitary + pattern → {!Bose_mapping.Mapping.t}. Chooses row/column
      permutations (zero-cost physical relabelings) and stores the
      permuted unitary; semantics are untouched — undoing the
      permutations must recover the input exactly.
    - {b decompose} (["compile.decompose"]): permuted unitary →
      {!Bose_decomp.Plan.t} along the pattern. The plan is exact:
      replaying it reconstructs the permuted unitary to ~1e-8; every
      rotation addresses a pattern edge.
    - {b dropout} (["compile.dropout"]): plan + τ → optional
      {!Bose_dropout.Dropout.policy}. Pure compile-time analysis of the
      plan's angles; it alters neither plan nor mapping, and its
      expected fidelity must be ≥ τ.

    {!verify} checks these invariants on a compiled result. Telemetry
    is observational only: with {!Bose_obs.Obs} enabled or disabled the
    passes produce identical plans, policies, and shot circuits
    (pinned by [test/test_obs.ml]).

    {2 Artifact cache}

    Pass [?cache] (a {!Pipeline.Cache.t}) to reuse recorded artifacts
    across compiles: each pass's inputs are content-fingerprinted
    ({!Pass.Fingerprint}), and a hit replays the recorded artifact —
    deep-copied, bit-identical — instead of running the pass. Hit and
    miss counts surface as the [compile.cache_hits] /
    [compile.cache_misses] gauges. Caching is opt-in: without [?cache]
    every compile runs cold (a hit skips the pass's RNG draws, so a
    shared default cache would perturb callers that stream the same RNG
    through subsequent sampling). *)

type effort = Pass.effort = Fast | Standard
(** [Fast] trims the mapping-K candidates and dropout search for large
    problems (used by the scalability study); [Standard] is the full
    search. *)

type timings = {
  decomposition_s : float;  (** Pattern + mapping + elimination time. *)
  total_s : float;  (** Including dropout-policy construction. *)
}

type t = {
  config : Config.t;
  tau : float;
  device : Bose_hardware.Lattice.t;
  target : Bose_hardware.Target.t option;
      (** The hardware target compiled for ({!compile_for_target});
          [None] for the device/pattern entry points. Drives the
          default {!analyze} backend and is folded into pass
          fingerprints, so artifact caches discriminate across
          targets. *)
  pattern : Bose_hardware.Pattern.t;
  mapping : Bose_mapping.Mapping.t;
  plan : Bose_decomp.Plan.t;  (** Decomposition of [mapping.permuted]. *)
  policy : Bose_dropout.Dropout.policy option;  (** [None] iff no dropout. *)
  timings : timings;
  trace : Bose_lint.Lint.pipeline_trace;
      (** Pass-manager execution record (registered passes with
          dependencies, executed passes with cache-hit flags), audited
          by the lint engine's [pipeline] checker (BH09xx). *)
}

val compile :
  ?effort:effort ->
  ?tau:float ->
  ?cache:Pipeline.Cache.t ->
  ?disabled_passes:string list ->
  ?pool:Bose_par.Pool.t ->
  rng:Bose_util.Rng.t ->
  device:Bose_hardware.Lattice.t ->
  config:Config.t ->
  Bose_linalg.Mat.t ->
  t
(** [compile ~rng ~device ~config u]. [tau] is the unitary-approximation
    accuracy threshold (default 0.999). The unitary's dimension must not
    exceed the device size. [?cache] reuses recorded artifacts across
    compiles (see the cache section above); [?disabled_passes] skips
    named skippable passes, storing their neutral artifact instead
    ([bosec compile --disable-pass]).

    [?pool] enables intra-compile parallelism ([bosec compile --jobs]):
    at N ≥ [Mat.blocking_threshold] the decompose pass's fused sweep
    engine chunks its bulk rotation passes across the pool. Scheduling
    only — compiled artifacts are bit-identical at every pool size
    (pinned by test/test_par.ml), and pass fingerprints ignore the
    pool, so artifact caches stay valid across job counts. Do not pass
    a pool whose domains are already inside a pool task (nested
    parallelism is rejected by [Bose_par.Pool.run]).
    @raise Invalid_argument on size mismatch, non-square input, or an
    unknown/mandatory name in [disabled_passes]. *)

val compile_with_pattern :
  ?effort:effort ->
  ?tau:float ->
  ?cache:Pipeline.Cache.t ->
  ?disabled_passes:string list ->
  ?pool:Bose_par.Pool.t ->
  rng:Bose_util.Rng.t ->
  pattern:Bose_hardware.Pattern.t ->
  config:Config.t ->
  Bose_linalg.Mat.t ->
  t
(** Compile against an explicit elimination pattern — e.g. one built by
    {!Bose_hardware.Embedding.of_coupling} for triangular, hexagonal or
    irregular devices. The [device] field of the result is a dummy 1-row
    lattice; connectivity is whatever the pattern encodes. With a
    [config] that does not use the tree pattern, the pattern is replaced
    by a chain over the same number of qumodes. *)

val compile_for_target :
  ?effort:effort ->
  ?tau:float ->
  ?cache:Pipeline.Cache.t ->
  ?disabled_passes:string list ->
  ?pool:Bose_par.Pool.t ->
  rng:Bose_util.Rng.t ->
  target:Bose_hardware.Target.t ->
  config:Config.t ->
  Bose_linalg.Mat.t ->
  t
(** Compile for a registered hardware target ([bosec compile --target]).
    Grid targets ({!Bose_hardware.Target.device} = [Some _]) run the
    exact [compile ~device] path with the target-sized lattice — the
    [zigzag] built-in is bit-identical to today's default compile —
    while graph targets go through the target's derived elimination
    pattern (the result's [device] is the same placeholder 1-row
    lattice as {!compile_with_pattern}). Either way the result's
    [target] field is set and the target name is folded into every pass
    fingerprint, so one {!Pipeline.Cache.t} (or disk cache keyed off
    these fingerprints) serves multiple targets without cross-talk.
    @raise Invalid_argument on a non-square input or a program larger
    than a grid target's device. *)

val compile_batch :
  ?effort:effort ->
  ?tau:float ->
  ?cache:Pipeline.Cache.t ->
  ?jobs:int ->
  rng:Bose_util.Rng.t ->
  device:Bose_hardware.Lattice.t ->
  (Bose_linalg.Mat.t * Config.t) list ->
  t list
(** Compile a job list. Results are in job order; the whole batch is
    wrapped in telemetry span ["compile.batch"], and each job
    increments the [compile.batch_jobs] counter.

    Sequentially ([jobs] absent or 1), the batch runs through one
    shared artifact cache (a fresh bounded cache when [?cache] is
    absent): jobs whose pass inputs fingerprint identically replay each
    other's artifacts instead of recompiling.

    With [~jobs:n > 1] the job list is sharded into contiguous chunks
    across a [Bose_par.Pool] of [min n (length jobs)] domains. Each
    domain compiles its chunk with its own workspace and its own
    domain-local artifact cache; at the join barrier the local caches'
    hit/miss statistics are folded into [?cache] (entries are not — a
    shared mutable cache would race). Every job draws from a private
    RNG stream keyed by the batch seed and the job's own content
    fingerprint, so the compiled plans and policies are bit-identical
    across all [jobs] values, cache configurations, and shardings.
    Pool telemetry lands in the [par.*] gauges (docs/METRICS.md).
    @raise Invalid_argument when [jobs < 1]. *)

val shot_mask : Bose_util.Rng.t -> t -> bool array option
(** Per-shot beamsplitter keep-mask: [None] when the configuration keeps
    everything; Rot-Cut masks are deterministic (hard threshold), the
    optimized configurations sample from the §VI distribution. *)

val shot_circuit :
  ?prelude:Bose_circuit.Gate.t list -> Bose_util.Rng.t -> t -> Bose_circuit.Circuit.t
(** Physical circuit for one shot, including the prelude (state
    preparation, already in physical qumode order). Timed by telemetry
    span ["compile.shot_circuit"]. *)

val approx_unitary : ?kept:bool array -> t -> Bose_linalg.Mat.t
(** Effective {e logical-space} unitary implemented by a shot with the
    given keep-mask (default: nothing dropped): permutations undone, so
    it is directly comparable with the input unitary. *)

val predicted_fidelity : t -> float
(** Compile-time estimate: the dropout policy's τ_K, or 1.0. *)

val beamsplitter_reduction : t -> float
(** Fraction of beamsplitters removed per shot (0 without dropout). *)

val beamsplitters_kept : t -> int

val small_angles : t -> threshold:float -> int
(** Rotations below an angle threshold in the compiled plan. *)

val lint :
  ?settings:Bose_lint.Lint.settings ->
  ?unitary:Bose_linalg.Mat.t ->
  t ->
  Bose_lint.Diag.t list
(** Run the full static-verification registry ({!Bose_lint.Lint.run})
    over the compiled result: the plan replays to the permuted unitary
    to ≤ 1e-8, every rotation addresses a pattern tree edge, the
    serialized plan round-trips, the dropout policy is well-shaped
    with expected fidelity ≥ τ, and the pass-manager trace shows every
    registered pass ran exactly once in dependency order (BH09xx —
    cache-hit compiles lint identical to cold). With [?unitary] (the
    program unitary
    handed to {!compile}), additionally checks that un-permuting the
    mapping recovers it bit-exactly and that the input itself is
    healthy (square, finite, unitary). Diagnostics carry the stable
    codes catalogued in docs/DIAGNOSTICS.md; a clean compile produces
    none. The subject carries the result's own hardware backend (see
    {!analyze}), so the BH11xx dataflow pass checks coupling
    feasibility against the device the program was compiled for. *)

val analyze : ?backend:Bose_flow.Flow.backend -> t -> Bose_flow.Flow.report
(** Dataflow analysis ({!Bose_flow.Flow.analyze}) of the compiled plan
    under the dropout policy's deterministic hard mask: ASAP/ALAP
    layering and commuting fronts, critical-path depth, per-mode
    liveness, sound fidelity/loss budget intervals, and coupling
    feasibility. The default backend is the compiled result's own: for
    target-compiled results, {!Bose_flow.Flow.backend_of_target} (the
    target's coupling graph, routing budget, depth ceiling, noise model
    and loss floor); otherwise the device lattice as coupling graph
    with the pattern's embedding as the label → site map (no depth
    limit, ideal noise). Pass [?backend] to ask "would this plan fit
    elsewhere?" instead. *)

val verify : t -> (unit, string) result
(** {!lint} shim, kept for callers that only need a yes/no: [Ok] when
    no [Error]-severity diagnostic fires, otherwise the first error
    rendered as a string. *)

val pp_summary : Format.formatter -> t -> unit
